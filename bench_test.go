package congestlb_test

// One benchmark per experiment in DESIGN.md's index: each bench regenerates
// the corresponding paper figure/table end to end (construction, exact
// solving, simulation, verification), so `go test -bench=.` re-derives the
// whole evaluation and times it.

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"congestlb"
	"congestlb/internal/congest"
	"congestlb/internal/congestalg"
	"congestlb/internal/core"
	"congestlb/internal/experiments"
	"congestlb/internal/fault"
)

// BenchmarkFaultOverhead prices the disabled fault layer: every injection
// point the hot paths now carry (the disk tier's error/corrupt/stall
// sites, the worker pools' panic sites) collapses to one atomic load and
// a nil check when no plan is armed. This bench pins that cost so a
// future "just check a map" regression shows up in the baseline archive.
func BenchmarkFaultOverhead(b *testing.B) {
	prev := fault.Set(nil)
	b.Cleanup(func() { fault.Set(prev) })
	data := []byte(`{"schema":"congestlb/solve-cache/v1","weight":42}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fault.Should(fault.DiskRead, "bench") {
			b.Fatal("disabled injector fired")
		}
		if err := fault.Err(fault.DiskWrite, "bench", 0); err != nil {
			b.Fatal(err)
		}
		if out := fault.Corrupt("bench", data); len(out) != len(data) {
			b.Fatal("disabled Corrupt rewrote data")
		}
		fault.MaybePanic(fault.SolverPanic, "bench")
		fault.Stall(fault.DiskSlow, "bench")
	}
}

// benchExperiment runs one registered experiment per iteration, failing the
// bench if its internal assertions fail.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(experiments.NewCtx(io.Discard, nil)); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkExpFigure1(b *testing.B)     { benchExperiment(b, "figure1") }
func BenchmarkExpFigure2(b *testing.B)     { benchExperiment(b, "figure2") }
func BenchmarkExpFigure3(b *testing.B)     { benchExperiment(b, "figure3") }
func BenchmarkExpFigure4(b *testing.B)     { benchExperiment(b, "figure4") }
func BenchmarkExpFigure5(b *testing.B)     { benchExperiment(b, "figure5") }
func BenchmarkExpFigure6(b *testing.B)     { benchExperiment(b, "figure6") }
func BenchmarkExpCodes(b *testing.B)       { benchExperiment(b, "codes") }
func BenchmarkExpProperties(b *testing.B)  { benchExperiment(b, "properties") }
func BenchmarkExpLemma1(b *testing.B)      { benchExperiment(b, "lemma1") }
func BenchmarkExpLemma2(b *testing.B)      { benchExperiment(b, "lemma2") }
func BenchmarkExpLemma3(b *testing.B)      { benchExperiment(b, "lemma3") }
func BenchmarkExpTheorem1(b *testing.B)    { benchExperiment(b, "theorem1") }
func BenchmarkExpTheorem2(b *testing.B)    { benchExperiment(b, "theorem2") }
func BenchmarkExpTheorem3(b *testing.B)    { benchExperiment(b, "theorem3") }
func BenchmarkExpTheorem5(b *testing.B)    { benchExperiment(b, "theorem5") }
func BenchmarkExpCutSize(b *testing.B)     { benchExperiment(b, "cutsize") }
func BenchmarkExpTwoParty(b *testing.B)    { benchExperiment(b, "twoparty") }
func BenchmarkExpRemark1(b *testing.B)     { benchExperiment(b, "remark1") }
func BenchmarkExpUpperBounds(b *testing.B) { benchExperiment(b, "upperbounds") }
func BenchmarkExpAblations(b *testing.B)   { benchExperiment(b, "ablations") }
func BenchmarkExpDiameter(b *testing.B)    { benchExperiment(b, "diameter") }
func BenchmarkExpSolver(b *testing.B)      { benchExperiment(b, "solver") }

// BenchmarkExpScaling times the scaling sweep whole (suite — the
// successor of the old flat BenchmarkExpScaling measurement; benchjson
// -compare maps the old name onto it) and each sweep point alone, so a
// perf change at one instance size is visible as that point's delta
// instead of vanishing into the sweep total.
func BenchmarkExpScaling(b *testing.B) {
	b.Run("suite", func(b *testing.B) { benchExperiment(b, "scaling") })
	for i, p := range experiments.ScalingPoints() {
		b.Run(fmt.Sprintf("n=%d", p.LinearN()), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for j := 0; j < b.N; j++ {
				if _, err := experiments.RunScalingPoint(experiments.NewCtx(io.Discard, nil), i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLabOverhead measures what the Lab handle adds to a full
// RunReduction on the figure instance, against the same reduction run
// straight through the core machinery (both warm their respective solve
// caches after the first iteration, so the steady state isolates the
// handle's session/context plumbing). The two numbers must stay within
// noise of each other — the Lab is indirection, not work.
func BenchmarkLabOverhead(b *testing.B) {
	p := congestlb.FigureParams(2)
	fam, err := congestlb.NewLinear(p)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	in, _, err := congestlb.RandomUniquelyIntersecting(fam.InputBits(), p.T, 0.3, rng)
	if err != nil {
		b.Fatal(err)
	}
	cfg := congestlb.CongestConfig{Seed: 7}

	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Simulate(fam, in, core.GossipPrograms, core.GossipOpt, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lab", func(b *testing.B) {
		lab, err := congestlb.New()
		if err != nil {
			b.Fatal(err)
		}
		defer lab.Close()
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := lab.RunReduction(ctx, fam, in, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkObsOverhead prices the observability layer on the same full
// RunReduction as BenchmarkLabOverhead: a plain Lab (the nil-registry
// fast path the gate holds to BenchmarkLabOverhead/lab's trajectory), a
// WithMetrics Lab (every counter/gauge/histogram live), and a metrics Lab
// with a progress observer attached. The off path must price at nothing —
// the handles are nil and every record site is a single pointer test —
// while the on paths bound what a dashboard costs.
func BenchmarkObsOverhead(b *testing.B) {
	p := congestlb.FigureParams(2)
	fam, err := congestlb.NewLinear(p)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	in, _, err := congestlb.RandomUniquelyIntersecting(fam.InputBits(), p.T, 0.3, rng)
	if err != nil {
		b.Fatal(err)
	}
	cfg := congestlb.CongestConfig{Seed: 7}

	run := func(b *testing.B, opts ...congestlb.Option) {
		b.Helper()
		lab, err := congestlb.New(opts...)
		if err != nil {
			b.Fatal(err)
		}
		defer lab.Close()
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := lab.RunReduction(ctx, fam, in, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b) })
	b.Run("metrics", func(b *testing.B) { run(b, congestlb.WithMetrics(true)) })
	b.Run("observed", func(b *testing.B) {
		run(b, congestlb.WithMetrics(true),
			congestlb.WithObserver(congestlb.ObserverFunc(func(congestlb.ProgressEvent) {})))
	})
}

// BenchmarkBatchedSweep is the engine-level half of the batching story: B
// identical-shape CONGEST runs as a loop of dedicated Networks versus one
// congest.RunBatch lockstep pass over a shared graph. The batch side must
// win on allocations (shared slabs, shared adjacency) and stay at least
// even on time.
func BenchmarkBatchedSweep(b *testing.B) {
	p := congestlb.FigureParams(2)
	fam, err := congestlb.NewLinear(p)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	in, _, err := congestlb.RandomUniquelyIntersecting(fam.InputBits(), p.T, 0.3, rng)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := fam.Build(in)
	if err != nil {
		b.Fatal(err)
	}
	const sweep = 8
	n := inst.Graph.N()

	b.Run("loop", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < sweep; j++ {
				net, err := congest.NewNetwork(inst.Graph, congestalg.NewRankGreedyPrograms(n), congest.Config{Seed: int64(j)})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := net.Run(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			items := make([]congest.BatchItem, sweep)
			for j := range items {
				items[j] = congest.BatchItem{
					Graph:    inst.Graph,
					Programs: congestalg.NewRankGreedyPrograms(n),
					Config:   congest.Config{Seed: int64(j)},
				}
			}
			_, errs, _ := congest.RunBatch(context.Background(), items)
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
