package congestlb_test

// One benchmark per experiment in DESIGN.md's index: each bench regenerates
// the corresponding paper figure/table end to end (construction, exact
// solving, simulation, verification), so `go test -bench=.` re-derives the
// whole evaluation and times it.

import (
	"io"
	"testing"

	"congestlb/internal/experiments"
)

// benchExperiment runs one registered experiment per iteration, failing the
// bench if its internal assertions fail.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(experiments.NewCtx(io.Discard, nil)); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkExpFigure1(b *testing.B)     { benchExperiment(b, "figure1") }
func BenchmarkExpFigure2(b *testing.B)     { benchExperiment(b, "figure2") }
func BenchmarkExpFigure3(b *testing.B)     { benchExperiment(b, "figure3") }
func BenchmarkExpFigure4(b *testing.B)     { benchExperiment(b, "figure4") }
func BenchmarkExpFigure5(b *testing.B)     { benchExperiment(b, "figure5") }
func BenchmarkExpFigure6(b *testing.B)     { benchExperiment(b, "figure6") }
func BenchmarkExpCodes(b *testing.B)       { benchExperiment(b, "codes") }
func BenchmarkExpProperties(b *testing.B)  { benchExperiment(b, "properties") }
func BenchmarkExpLemma1(b *testing.B)      { benchExperiment(b, "lemma1") }
func BenchmarkExpLemma2(b *testing.B)      { benchExperiment(b, "lemma2") }
func BenchmarkExpLemma3(b *testing.B)      { benchExperiment(b, "lemma3") }
func BenchmarkExpTheorem1(b *testing.B)    { benchExperiment(b, "theorem1") }
func BenchmarkExpTheorem2(b *testing.B)    { benchExperiment(b, "theorem2") }
func BenchmarkExpTheorem3(b *testing.B)    { benchExperiment(b, "theorem3") }
func BenchmarkExpTheorem5(b *testing.B)    { benchExperiment(b, "theorem5") }
func BenchmarkExpCutSize(b *testing.B)     { benchExperiment(b, "cutsize") }
func BenchmarkExpTwoParty(b *testing.B)    { benchExperiment(b, "twoparty") }
func BenchmarkExpRemark1(b *testing.B)     { benchExperiment(b, "remark1") }
func BenchmarkExpUpperBounds(b *testing.B) { benchExperiment(b, "upperbounds") }
func BenchmarkExpAblations(b *testing.B)   { benchExperiment(b, "ablations") }
func BenchmarkExpDiameter(b *testing.B)    { benchExperiment(b, "diameter") }
func BenchmarkExpSolver(b *testing.B)      { benchExperiment(b, "solver") }
func BenchmarkExpScaling(b *testing.B)     { benchExperiment(b, "scaling") }
