// Command benchjson converts `go test -bench` output into a stable JSON
// baseline, so CI can archive per-experiment performance numbers and humans
// can diff them across commits:
//
//	go test -bench=. -benchtime=3x -run=NONE . | benchjson -o BENCH_0001.json
//
// Only benchmark result lines are consumed; everything else (goos/goarch
// headers, PASS/ok trailers) is ignored. Benchmarks are emitted sorted by
// name, one object per benchmark with ns/op, B/op and allocs/op.
//
// It also consumes the experiment runner's JSON result envelope
// (cmd/experiments -json):
//
//	benchjson -experiments experiments.json [-require-disk-hits]
//	benchjson -experiments http://host:port/v1/experiments/last -bearer key
//
// prints a per-experiment summary (status, wall time, solver work, cache
// traffic including the persistent disk tier) and exits non-zero if the
// envelope is malformed or any experiment finished with a non-ok status —
// the CI gate for the sharded experiment smoke run. The -experiments
// value may be an http(s) URL, in which case the envelope is fetched live
// from a running congestlbd (-bearer supplies the tenant API key). -require-disk-hits
// additionally fails when the run served nothing from the disk tier, which
// is how CI asserts that a warm -cache-dir re-run actually skipped
// branch-and-bound.
//
// A v7 envelope additionally carries fault-containment failures blocks
// (per experiment and run-level); both are printed, and the run-level
// block must equal the sum of the per-experiment blocks. For chaos runs
// (cmd/experiments under CONGESTLB_FAULTS), -allow-failed tolerates
// experiments that finished non-ok — the structural invariants still
// gate — and -require-failures fails unless the run actually contained
// at least one fault, so a chaos job that silently ran clean cannot
// pass.
//
// A v6 envelope written by an observed run (cmd/experiments -metrics-addr)
// carries the run's metrics delta and span summary. When present, both are
// printed and cross-checked against the envelope's legacy counters — the
// solve-cache and build-cache hit/miss counters and the batch totals must
// agree exactly, since the registry instruments the very same code paths.
// -require-metrics fails when the block is absent (the observed-smoke
// assertion), and -scrape URL additionally fetches a live /metrics.json
// snapshot from a still-running (or -metrics-linger'ing) process and
// verifies the scraped cumulative counters cover at least the envelope's
// run delta — proving the ops endpoint serves the same registry the
// envelope snapshotted.
//
// Finally, -compare turns two archived baselines into an enforced
// trajectory instead of an archive:
//
//	benchjson -compare [-threshold 0.25] [-floor 1000000] old.json new.json
//
// prints per-benchmark ns/op and B/op deltas and exits non-zero if any
// benchmark regressed by more than the threshold (default 0.25 = +25%).
// -floor exempts benchmarks whose old ns/op is below the given value from
// the ns/op gate: at a 1-iteration smoke, microsecond-scale timings are
// noise-dominated and would trip any threshold spuriously. B/op is
// deterministic and gates regardless of the floor.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"congestlb/internal/obs"
	"congestlb/internal/runner"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// parseLine parses one `go test -bench` result line, reporting ok=false
// for non-benchmark lines.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	// Strip the -<GOMAXPROCS> suffix the bench runner appends on
	// multi-core machines (BenchmarkExpScaling/n=192-8), so baselines
	// recorded on different core counts stay comparable. Only an
	// all-digit suffix is a cpu count; sub-benchmark names keep their
	// own dashes.
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := Result{Name: name, Iterations: iters}
	// The remainder is unit pairs: value unit value unit ...
	for i := 2; i+1 < len(fields); i += 2 {
		value, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			v, err := strconv.ParseFloat(value, 64)
			if err != nil {
				return Result{}, false
			}
			r.NsPerOp = v
		case "B/op":
			v, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				return Result{}, false
			}
			r.BytesPerOp = v
		case "allocs/op":
			v, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				return Result{}, false
			}
			r.AllocsPerOp = v
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	return r, true
}

// convert reads bench output from r and writes the JSON baseline to w.
func convert(r io.Reader, w io.Writer) error {
	var results []Result
	scanner := bufio.NewScanner(r)
	for scanner.Scan() {
		if res, ok := parseLine(scanner.Text()); ok {
			results = append(results, res)
		}
	}
	if err := scanner.Err(); err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines found in input")
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// checkEnvelope validates an experiment result envelope: well-formed JSON
// with the expected schema, and every experiment ok. A human-readable
// summary is written to w either way; a non-nil error means CI must fail.
// With requireDiskHits, a run that served nothing from the persistent
// disk tier also fails — the warm-cache CI smoke's assertion. With
// requireMetrics, an envelope missing the v6 metrics block fails; with a
// non-empty scrapeURL, a live /metrics.json snapshot is fetched and
// cross-checked against the envelope's run delta.
//
// allowFailed is the chaos-CI switch: failed experiments are reported but
// do not fail the check — the structural invariants (failure counts,
// failures-block sums, metric consistency) still gate. requireFailures
// fails unless the run-level failures block is present and non-zero, the
// assertion that a chaos run actually injected something.
func checkEnvelope(r io.Reader, w io.Writer, requireDiskHits, requireBatched, requireMetrics, allowFailed, requireFailures bool, scrapeURL string) error {
	var env runner.Envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return fmt.Errorf("benchjson: envelope: %w", err)
	}
	if env.Schema != runner.Schema {
		return fmt.Errorf("benchjson: envelope schema %q, want %q", env.Schema, runner.Schema)
	}
	fmt.Fprintf(w, "%d experiment(s), jobs=%d, solver workers=%d, wall %.0f ms (sequential %.0f ms), cache %d hit / %d miss\n",
		len(env.Experiments), env.Jobs, env.SolverWorkers, env.WallMS, env.SequentialMS,
		env.Cache.Hits, env.Cache.Misses)
	fmt.Fprintf(w, "disk tier: %d hit / %d miss, %d written, %d evicted\n",
		env.Cache.DiskHits, env.Cache.DiskMisses, env.Cache.DiskWrites, env.Cache.DiskEvictions)
	fmt.Fprintf(w, "lbgraph build cache: %d hit / %d miss, %d entries\n",
		env.LBGraph.Hits, env.LBGraph.Misses, env.LBGraph.Entries)
	fmt.Fprintf(w, "batched simulation: %d instance(s) over %d lockstep pass(es)\n",
		env.Batch.BatchedInstances, env.Batch.BatchJobs)
	var failed []string
	cancelled := 0
	var failureSum runner.FailureStats
	for _, e := range env.Experiments {
		status := e.Status
		if e.Cancelled {
			status += " (cancelled)"
			cancelled++
		}
		fmt.Fprintf(w, "  %-12s %-6s %8.1f ms  %10d steps  %d hit / %d miss  %d builds (%d hit)  %d instance jobs  %d batched\n",
			e.ID, status, e.WallMS, e.SolveSteps, e.CacheHits, e.CacheMisses,
			e.LBGraphHits+e.LBGraphMisses, e.LBGraphHits, e.InstanceJobs, e.BatchedInstances)
		if e.Failures != nil {
			fmt.Fprintf(w, "  %-12s failures: %s\n", "", failureLine(*e.Failures))
			failureSum.Add(*e.Failures)
		}
		if e.Status != runner.StatusOK {
			failed = append(failed, fmt.Sprintf("%s: %s", e.ID, e.Error))
		}
	}
	// The run-level failures block must be exactly the sum of the
	// per-experiment blocks — both directions: a run block with no
	// per-experiment backing is as wrong as a missing run block.
	runFailures := runner.FailureStats{}
	if env.Failures != nil {
		runFailures = *env.Failures
	}
	if runFailures != failureSum {
		return fmt.Errorf("benchjson: run-level failures block %+v does not sum the per-experiment blocks %+v",
			runFailures, failureSum)
	}
	if env.Failures != nil {
		fmt.Fprintf(w, "failures (run): %s\n", failureLine(*env.Failures))
	}
	if requireFailures && !runFailures.Any() {
		return fmt.Errorf("benchjson: run reported no contained failures (chaos run expected)")
	}
	if env.Failed != len(failed) {
		return fmt.Errorf("benchjson: envelope claims %d failure(s) but lists %d", env.Failed, len(failed))
	}
	if env.Cancelled != cancelled {
		return fmt.Errorf("benchjson: envelope claims %d cancellation(s) but flags %d", env.Cancelled, cancelled)
	}
	var batchJobs, batchedInstances int64
	for _, e := range env.Experiments {
		batchJobs += e.BatchJobs
		batchedInstances += e.BatchedInstances
	}
	if env.Batch.BatchJobs != batchJobs || env.Batch.BatchedInstances != batchedInstances {
		return fmt.Errorf("benchjson: envelope batch block %d/%d does not sum the per-experiment counters %d/%d",
			env.Batch.BatchJobs, env.Batch.BatchedInstances, batchJobs, batchedInstances)
	}
	if len(failed) > 0 && !allowFailed {
		return fmt.Errorf("benchjson: %d experiment(s) not ok:\n  %s", len(failed), strings.Join(failed, "\n  "))
	}
	if len(failed) > 0 {
		fmt.Fprintf(w, "%d failed experiment(s) tolerated (-allow-failed)\n", len(failed))
	}
	if requireDiskHits && env.Cache.DiskHits == 0 {
		return fmt.Errorf("benchjson: run reported no disk-tier hits (warm cache expected)")
	}
	if requireBatched && env.Batch.BatchedInstances == 0 {
		return fmt.Errorf("benchjson: run batched no simulations (batched sweep expected)")
	}
	if requireMetrics && env.Metrics == nil {
		return fmt.Errorf("benchjson: envelope carries no metrics block (observed run expected)")
	}
	if env.Metrics != nil {
		if err := checkMetrics(env, w); err != nil {
			return err
		}
	}
	if scrapeURL != "" {
		if env.Metrics == nil {
			return fmt.Errorf("benchjson: -scrape needs an envelope with a metrics block")
		}
		if err := checkScrape(env, scrapeURL, w); err != nil {
			return err
		}
	}
	return nil
}

// failureLine renders a FailureStats block on one line.
func failureLine(f runner.FailureStats) string {
	return fmt.Sprintf("%d panic(s) recovered, %d solver worker panic(s), %d degraded solve(s), %d disk retry(ies), %d quarantined",
		f.PanicsRecovered, f.SolverWorkerPanics, f.DegradedSolves, f.DiskRetries, f.DiskQuarantined)
}

// checkMetrics prints the v6 metrics/span block and enforces its
// sum-consistency with the envelope's legacy counters: the registry sits
// on the same code paths the legacy per-session counters instrument, so a
// single observed run's deltas must match them exactly. The build-cache
// check is skipped for runs with no registry-visible build traffic — a
// run solved entirely through bypass (uncached-builds) sessions books
// nothing in the registry while the envelope still reports the bypass
// builds.
func checkMetrics(env runner.Envelope, w io.Writer) error {
	m := *env.Metrics
	fmt.Fprintf(w, "metrics delta: %d counter(s), %d gauge(s), %d histogram(s); %d span name(s)\n",
		len(m.Counters), len(m.Gauges), len(m.Histograms), len(env.Spans))
	names := make([]string, 0, len(m.Counters))
	for name := range m.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "  %-32s %d\n", name, m.Counters[name])
	}
	for _, sp := range env.Spans {
		fmt.Fprintf(w, "  span %-27s %6d call(s)  %10.1f ms total  %8.1f ms max\n",
			sp.Name, sp.Count, float64(sp.TotalNS)/1e6, float64(sp.MaxNS)/1e6)
	}
	type pair struct {
		name    string
		metrics int64
		legacy  int64
	}
	checks := []pair{
		{obs.MSolveCacheHits, m.Counter(obs.MSolveCacheHits), int64(env.Cache.Hits)},
		{obs.MSolveCacheMisses, m.Counter(obs.MSolveCacheMisses), int64(env.Cache.Misses)},
		{obs.MBatchPasses, m.Counter(obs.MBatchPasses), env.Batch.BatchJobs},
		{obs.MBatchInstances, m.Counter(obs.MBatchInstances), env.Batch.BatchedInstances},
		// The fault-containment counters are booked at the same sites the
		// cache stats are, so equality is exact. (sched_job_panics has no
		// envelope twin: the envelope counts body panics the scheduler
		// never sees, so the two are deliberately not cross-checked.)
		{obs.MSolveCacheDiskRetries, m.Counter(obs.MSolveCacheDiskRetries), int64(env.Cache.DiskRetries)},
		{obs.MSolveCacheDiskQuarantined, m.Counter(obs.MSolveCacheDiskQuarantined), int64(env.Cache.DiskQuarantined)},
		{obs.MSolverWorkerPanics, m.Counter(obs.MSolverWorkerPanics), int64(env.Cache.WorkerPanics)},
	}
	if m.Counter(obs.MBuildCacheHits)+m.Counter(obs.MBuildCacheMisses) > 0 {
		checks = append(checks,
			pair{obs.MBuildCacheHits, m.Counter(obs.MBuildCacheHits), int64(env.LBGraph.Hits)},
			pair{obs.MBuildCacheMisses, m.Counter(obs.MBuildCacheMisses), int64(env.LBGraph.Misses)})
	}
	for _, c := range checks {
		if c.metrics != c.legacy {
			return fmt.Errorf("benchjson: metrics %s = %d disagrees with the envelope's legacy counter %d",
				c.name, c.metrics, c.legacy)
		}
	}
	if len(env.Spans) == 0 {
		return fmt.Errorf("benchjson: observed envelope recorded no spans (at least the run span is expected)")
	}
	fmt.Fprintf(w, "metrics block consistent with legacy counters (%d check(s))\n", len(checks))
	return nil
}

// checkScrape fetches a live /metrics.json snapshot and verifies the
// scraped cumulative counters cover at least the envelope's run delta.
// ≥, not ==: the scrape is process-cumulative (and may land after further
// traffic), while the envelope records one run's delta.
func checkScrape(env runner.Envelope, url string, w io.Writer) error {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return fmt.Errorf("benchjson: scrape: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("benchjson: scrape %s: %s", url, resp.Status)
	}
	var live obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&live); err != nil {
		return fmt.Errorf("benchjson: scrape %s: %w", url, err)
	}
	short := 0
	for name, delta := range env.Metrics.Counters {
		if live.Counter(name) < delta {
			fmt.Fprintf(w, "  scrape: %s = %d < envelope delta %d\n", name, live.Counter(name), delta)
			short++
		}
	}
	if short > 0 {
		return fmt.Errorf("benchjson: scraped snapshot misses %d counter(s) the envelope recorded", short)
	}
	fmt.Fprintf(w, "scraped %s: all %d envelope counter(s) covered\n", url, len(env.Metrics.Counters))
	return nil
}

// openEnvelope opens the -experiments source: a local envelope file, or —
// when the value is an http(s) URL — a live congestlbd endpoint
// (GET /v1/experiments/last serves the bare envelope). bearer, when
// non-empty, is sent as the Authorization bearer token; congestlbd needs
// it to resolve the tenant. The caller closes the reader.
func openEnvelope(src, bearer string) (io.ReadCloser, error) {
	if !strings.HasPrefix(src, "http://") && !strings.HasPrefix(src, "https://") {
		return os.Open(src)
	}
	req, err := http.NewRequest(http.MethodGet, src, nil)
	if err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", src, err)
	}
	if bearer != "" {
		req.Header.Set("Authorization", "Bearer "+bearer)
	}
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", src, err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("benchjson: %s: %s", src, resp.Status)
	}
	return resp.Body, nil
}

// readBaseline loads a benchjson baseline file (the convert output).
func readBaseline(path string) (map[string]Result, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var results []Result
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, nil, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	byName := make(map[string]Result, len(results))
	names := make([]string, 0, len(results))
	for _, r := range results {
		if _, dup := byName[r.Name]; !dup {
			names = append(names, r.Name)
		}
		byName[r.Name] = r
	}
	return byName, names, nil
}

// pctDelta formats new relative to old as a signed percentage.
func pctDelta(oldV, newV float64) string {
	if oldV == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(newV-oldV)/oldV)
}

// compareBaselines diffs two baselines benchmark by benchmark and fails on
// any ns/op or B/op regression beyond threshold (a fraction: 0.25 = +25%).
// Benchmarks present in only one file are reported but never fail the
// comparison — the suite is allowed to grow and shrink. Benchmarks whose
// old ns/op is below floor are exempt from the ns/op gate only: at the
// 1-iteration CI smoke a microsecond-scale bench's timing is
// noise-dominated (a single cold-cache miss reads as a 3x "regression"),
// but B/op stays deterministic and gates at every size.
func compareBaselines(oldPath, newPath string, threshold, floor float64, w io.Writer) error {
	oldBy, oldNames, err := readBaseline(oldPath)
	if err != nil {
		return err
	}
	newBy, newNames, err := readBaseline(newPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-32s %14s %14s %9s %12s %12s %9s\n",
		"benchmark", "old ns/op", "new ns/op", "Δ", "old B/op", "new B/op", "Δ")
	var regressions []string
	consumed := make(map[string]bool, len(oldNames))
	for _, name := range oldNames {
		oldR := oldBy[name]
		newR, ok := newBy[name]
		matched := name
		if !ok {
			// A benchmark promoted to sub-benchmarks keeps its whole-run
			// measurement under <name>/suite; compare against that so the
			// trajectory survives the rename.
			matched = name + "/suite"
			newR, ok = newBy[matched]
		}
		if !ok {
			fmt.Fprintf(w, "%-32s %14.0f %14s (removed)\n", name, oldR.NsPerOp, "-")
			continue
		}
		consumed[matched] = true
		fmt.Fprintf(w, "%-32s %14.0f %14.0f %9s %12d %12d %9s\n",
			name, oldR.NsPerOp, newR.NsPerOp, pctDelta(oldR.NsPerOp, newR.NsPerOp),
			oldR.BytesPerOp, newR.BytesPerOp,
			pctDelta(float64(oldR.BytesPerOp), float64(newR.BytesPerOp)))
		if oldR.NsPerOp >= floor && newR.NsPerOp > oldR.NsPerOp*(1+threshold) {
			regressions = append(regressions, fmt.Sprintf("%s: ns/op %s", name, pctDelta(oldR.NsPerOp, newR.NsPerOp)))
		}
		if oldR.BytesPerOp > 0 && float64(newR.BytesPerOp) > float64(oldR.BytesPerOp)*(1+threshold) {
			regressions = append(regressions, fmt.Sprintf("%s: B/op %s", name, pctDelta(float64(oldR.BytesPerOp), float64(newR.BytesPerOp))))
		}
	}
	for _, name := range newNames {
		if _, ok := oldBy[name]; !ok && !consumed[name] {
			fmt.Fprintf(w, "%-32s %14s %14.0f (new)\n", name, "-", newBy[name].NsPerOp)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("benchjson: %d regression(s) beyond +%.0f%%:\n  %s",
			len(regressions), threshold*100, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(w, "no regression beyond +%.0f%%\n", threshold*100)
	return nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	experimentsEnv := flag.String("experiments", "", "validate an experiment result envelope instead of converting bench output: a file (cmd/experiments -json) or an http(s) URL (congestlbd /v1/experiments/last)")
	bearer := flag.String("bearer", "", "with -experiments URL: send this API key as the Authorization bearer token")
	requireDiskHits := flag.Bool("require-disk-hits", false, "with -experiments: fail unless the run served at least one solve from the disk tier")
	requireBatched := flag.Bool("require-batched", false, "with -experiments: fail unless the run batched at least one simulation instance")
	requireMetrics := flag.Bool("require-metrics", false, "with -experiments: fail unless the envelope carries the v6 metrics block")
	allowFailed := flag.Bool("allow-failed", false, "with -experiments: tolerate failed experiments (chaos runs); structural invariants still gate")
	requireFailures := flag.Bool("require-failures", false, "with -experiments: fail unless the run-level failures block is present and non-zero")
	scrape := flag.String("scrape", "", "with -experiments: fetch this /metrics.json URL and verify the live counters cover the envelope's delta")
	compare := flag.Bool("compare", false, "compare two baseline files (old.json new.json) and fail on regressions beyond -threshold")
	threshold := flag.Float64("threshold", 0.25, "with -compare: allowed ns/op and B/op growth as a fraction (0.25 = +25%)")
	floor := flag.Float64("floor", 0, "with -compare: exempt benchmarks whose old ns/op is below this from the ns/op gate (1-iteration timing noise; B/op still gates)")
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if *compare {
		args := flag.Args()
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two baseline files: old.json new.json")
			os.Exit(1)
		}
		if err := compareBaselines(args[0], args[1], *threshold, *floor, w); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *experimentsEnv != "" {
		f, err := openEnvelope(*experimentsEnv, *bearer)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := checkEnvelope(f, w, *requireDiskHits, *requireBatched, *requireMetrics, *allowFailed, *requireFailures, *scrape); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := convert(os.Stdin, w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
