// Command benchjson converts `go test -bench` output into a stable JSON
// baseline, so CI can archive per-experiment performance numbers and humans
// can diff them across commits:
//
//	go test -bench=. -benchtime=3x -run=NONE . | benchjson -o BENCH_0001.json
//
// Only benchmark result lines are consumed; everything else (goos/goarch
// headers, PASS/ok trailers) is ignored. Benchmarks are emitted sorted by
// name, one object per benchmark with ns/op, B/op and allocs/op.
//
// It also consumes the experiment runner's JSON result envelope
// (cmd/experiments -json):
//
//	benchjson -experiments experiments.json
//
// prints a per-experiment summary (status, wall time, solver work, cache
// traffic) and exits non-zero if the envelope is malformed or any
// experiment finished with a non-ok status — the CI gate for the sharded
// experiment smoke run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"congestlb/internal/runner"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// parseLine parses one `go test -bench` result line, reporting ok=false
// for non-benchmark lines.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	// The remainder is unit pairs: value unit value unit ...
	for i := 2; i+1 < len(fields); i += 2 {
		value, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			v, err := strconv.ParseFloat(value, 64)
			if err != nil {
				return Result{}, false
			}
			r.NsPerOp = v
		case "B/op":
			v, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				return Result{}, false
			}
			r.BytesPerOp = v
		case "allocs/op":
			v, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				return Result{}, false
			}
			r.AllocsPerOp = v
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	return r, true
}

// convert reads bench output from r and writes the JSON baseline to w.
func convert(r io.Reader, w io.Writer) error {
	var results []Result
	scanner := bufio.NewScanner(r)
	for scanner.Scan() {
		if res, ok := parseLine(scanner.Text()); ok {
			results = append(results, res)
		}
	}
	if err := scanner.Err(); err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines found in input")
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// checkEnvelope validates an experiment result envelope: well-formed JSON
// with the expected schema, and every experiment ok. A human-readable
// summary is written to w either way; a non-nil error means CI must fail.
func checkEnvelope(r io.Reader, w io.Writer) error {
	var env runner.Envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return fmt.Errorf("benchjson: envelope: %w", err)
	}
	if env.Schema != runner.Schema {
		return fmt.Errorf("benchjson: envelope schema %q, want %q", env.Schema, runner.Schema)
	}
	fmt.Fprintf(w, "%d experiment(s), jobs=%d, wall %.0f ms (sequential %.0f ms), cache %d hit / %d miss\n",
		len(env.Experiments), env.Jobs, env.WallMS, env.SequentialMS,
		env.Cache.Hits, env.Cache.Misses)
	var failed []string
	for _, e := range env.Experiments {
		fmt.Fprintf(w, "  %-12s %-6s %8.1f ms  %10d steps  %d hit / %d miss\n",
			e.ID, e.Status, e.WallMS, e.SolveSteps, e.CacheHits, e.CacheMisses)
		if e.Status != runner.StatusOK {
			failed = append(failed, fmt.Sprintf("%s: %s", e.ID, e.Error))
		}
	}
	if env.Failed != len(failed) {
		return fmt.Errorf("benchjson: envelope claims %d failure(s) but lists %d", env.Failed, len(failed))
	}
	if len(failed) > 0 {
		return fmt.Errorf("benchjson: %d experiment(s) not ok:\n  %s", len(failed), strings.Join(failed, "\n  "))
	}
	return nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	experimentsEnv := flag.String("experiments", "", "validate an experiment result envelope (cmd/experiments -json) instead of converting bench output")
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if *experimentsEnv != "" {
		f, err := os.Open(*experimentsEnv)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := checkEnvelope(f, w); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := convert(os.Stdin, w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
