package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: congestlb
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkExpFigure1     	       3	     35387 ns/op	    9384 B/op	     198 allocs/op
BenchmarkExpScaling     	       3	 630305076 ns/op	357125218 B/op	 1910071 allocs/op
PASS
ok  	congestlb	4.168s
`

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkExpFigure1     \t       3\t     35387 ns/op\t    9384 B/op\t     198 allocs/op")
	if !ok {
		t.Fatal("benchmark line rejected")
	}
	if r.Name != "BenchmarkExpFigure1" || r.Iterations != 3 || r.NsPerOp != 35387 ||
		r.BytesPerOp != 9384 || r.AllocsPerOp != 198 {
		t.Fatalf("parsed wrong: %+v", r)
	}
	for _, junk := range []string{"", "PASS", "goos: linux", "ok  \tcongestlb\t4.1s", "Benchmark only"} {
		if _, ok := parseLine(junk); ok {
			t.Fatalf("non-benchmark line accepted: %q", junk)
		}
	}
}

func TestConvert(t *testing.T) {
	var buf bytes.Buffer
	if err := convert(strings.NewReader(sample), &buf); err != nil {
		t.Fatal(err)
	}
	var results []Result
	if err := json.Unmarshal(buf.Bytes(), &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	// Sorted by name.
	if results[0].Name != "BenchmarkExpFigure1" || results[1].Name != "BenchmarkExpScaling" {
		t.Fatalf("wrong order: %+v", results)
	}
	if results[1].AllocsPerOp != 1910071 {
		t.Fatalf("scaling allocs wrong: %+v", results[1])
	}
}

func TestConvertEmptyInput(t *testing.T) {
	var buf bytes.Buffer
	if err := convert(strings.NewReader("PASS\n"), &buf); err == nil {
		t.Fatal("empty input accepted")
	}
}
