package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"congestlb/internal/lbgraph"
	"congestlb/internal/mis/cache"
	"congestlb/internal/obs"
	"congestlb/internal/runner"
)

const sample = `goos: linux
goarch: amd64
pkg: congestlb
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkExpFigure1     	       3	     35387 ns/op	    9384 B/op	     198 allocs/op
BenchmarkExpScaling     	       3	 630305076 ns/op	357125218 B/op	 1910071 allocs/op
PASS
ok  	congestlb	4.168s
`

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkExpFigure1     \t       3\t     35387 ns/op\t    9384 B/op\t     198 allocs/op")
	if !ok {
		t.Fatal("benchmark line rejected")
	}
	if r.Name != "BenchmarkExpFigure1" || r.Iterations != 3 || r.NsPerOp != 35387 ||
		r.BytesPerOp != 9384 || r.AllocsPerOp != 198 {
		t.Fatalf("parsed wrong: %+v", r)
	}
	for _, junk := range []string{"", "PASS", "goos: linux", "ok  \tcongestlb\t4.1s", "Benchmark only"} {
		if _, ok := parseLine(junk); ok {
			t.Fatalf("non-benchmark line accepted: %q", junk)
		}
	}
}

func TestConvert(t *testing.T) {
	var buf bytes.Buffer
	if err := convert(strings.NewReader(sample), &buf); err != nil {
		t.Fatal(err)
	}
	var results []Result
	if err := json.Unmarshal(buf.Bytes(), &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	// Sorted by name.
	if results[0].Name != "BenchmarkExpFigure1" || results[1].Name != "BenchmarkExpScaling" {
		t.Fatalf("wrong order: %+v", results)
	}
	if results[1].AllocsPerOp != 1910071 {
		t.Fatalf("scaling allocs wrong: %+v", results[1])
	}
}

func TestConvertEmptyInput(t *testing.T) {
	var buf bytes.Buffer
	if err := convert(strings.NewReader("PASS\n"), &buf); err == nil {
		t.Fatal("empty input accepted")
	}
}

func envelopeJSON(t *testing.T, env runner.Envelope) string {
	t.Helper()
	data, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestCheckEnvelopeOK(t *testing.T) {
	env := runner.Envelope{
		Schema: runner.Schema,
		Jobs:   4,
		WallMS: 120,
		OK:     2,
		Experiments: []runner.ExperimentResult{
			{ID: "figure1", Status: runner.StatusOK, WallMS: 60, CacheMisses: 3},
			{ID: "codes", Status: runner.StatusOK, WallMS: 60},
		},
	}
	var buf bytes.Buffer
	if err := checkEnvelope(strings.NewReader(envelopeJSON(t, env)), &buf, false, false, false, false, false, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"figure1", "codes", "jobs=4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestCheckEnvelopeFailsOnNonOK(t *testing.T) {
	env := runner.Envelope{
		Schema: runner.Schema,
		OK:     1,
		Failed: 1,
		Experiments: []runner.ExperimentResult{
			{ID: "figure1", Status: runner.StatusOK},
			{ID: "theorem5", Status: runner.StatusFailed, Error: "accounting violated"},
		},
	}
	var buf bytes.Buffer
	err := checkEnvelope(strings.NewReader(envelopeJSON(t, env)), &buf, false, false, false, false, false, "")
	if err == nil {
		t.Fatal("failed experiment accepted")
	}
	if !strings.Contains(err.Error(), "theorem5: accounting violated") {
		t.Fatalf("error does not name the failure: %v", err)
	}
}

func TestCheckEnvelopeRequireDiskHits(t *testing.T) {
	env := runner.Envelope{
		Schema:      runner.Schema,
		OK:          1,
		Experiments: []runner.ExperimentResult{{ID: "figure1", Status: runner.StatusOK}},
	}
	var buf bytes.Buffer
	if err := checkEnvelope(strings.NewReader(envelopeJSON(t, env)), &buf, true, false, false, false, false, ""); err == nil {
		t.Fatal("cold run accepted with -require-disk-hits")
	}
	env.Cache.DiskHits = 3
	if err := checkEnvelope(strings.NewReader(envelopeJSON(t, env)), &buf, true, false, false, false, false, ""); err != nil {
		t.Fatalf("warm run rejected: %v", err)
	}
}

// writeBaseline marshals results to a temp baseline file.
func writeBaseline(t *testing.T, results []Result) string {
	t.Helper()
	data, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareBaselinesPassAndDeltas(t *testing.T) {
	oldPath := writeBaseline(t, []Result{
		{Name: "BenchmarkA", Iterations: 3, NsPerOp: 1000, BytesPerOp: 500},
		{Name: "BenchmarkGone", Iterations: 3, NsPerOp: 10},
	})
	newPath := writeBaseline(t, []Result{
		{Name: "BenchmarkA", Iterations: 3, NsPerOp: 1100, BytesPerOp: 450},
		{Name: "BenchmarkNew", Iterations: 3, NsPerOp: 20},
	})
	var buf bytes.Buffer
	if err := compareBaselines(oldPath, newPath, 0.25, 0, &buf); err != nil {
		t.Fatalf("+10%% within +25%% threshold rejected: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"+10.0%", "-10.0%", "(removed)", "(new)", "no regression"} {
		if !strings.Contains(out, want) {
			t.Fatalf("comparison output missing %q:\n%s", want, out)
		}
	}
}

func TestCompareBaselinesFailsOnRegression(t *testing.T) {
	oldPath := writeBaseline(t, []Result{{Name: "BenchmarkA", Iterations: 3, NsPerOp: 1000, BytesPerOp: 100}})
	var buf bytes.Buffer

	slow := writeBaseline(t, []Result{{Name: "BenchmarkA", Iterations: 3, NsPerOp: 1500, BytesPerOp: 100}})
	err := compareBaselines(oldPath, slow, 0.25, 0, &buf)
	if err == nil || !strings.Contains(err.Error(), "ns/op") {
		t.Fatalf("+50%% ns/op regression not flagged: %v", err)
	}

	fat := writeBaseline(t, []Result{{Name: "BenchmarkA", Iterations: 3, NsPerOp: 1000, BytesPerOp: 200}})
	err = compareBaselines(oldPath, fat, 0.25, 0, &buf)
	if err == nil || !strings.Contains(err.Error(), "B/op") {
		t.Fatalf("+100%% B/op regression not flagged: %v", err)
	}

	// A looser threshold lets the same delta through.
	if err := compareBaselines(oldPath, slow, 0.60, 0, &buf); err != nil {
		t.Fatalf("+50%% rejected at +60%% threshold: %v", err)
	}
}

// TestCompareBaselinesFloorExemptsShortBenches: benchmarks whose old
// ns/op sits below the floor never gate on timing — a 1-iteration smoke
// cannot time a microsecond bench meaningfully — but their B/op (which
// is deterministic) still gates.
func TestCompareBaselinesFloorExemptsShortBenches(t *testing.T) {
	oldPath := writeBaseline(t, []Result{
		{Name: "BenchmarkTiny", Iterations: 1, NsPerOp: 35_000, BytesPerOp: 100},
		{Name: "BenchmarkBig", Iterations: 1, NsPerOp: 50_000_000, BytesPerOp: 1000},
	})
	noisy := writeBaseline(t, []Result{
		{Name: "BenchmarkTiny", Iterations: 1, NsPerOp: 110_000, BytesPerOp: 110}, // 3x ns: pure noise
		{Name: "BenchmarkBig", Iterations: 1, NsPerOp: 51_000_000, BytesPerOp: 1000},
	})
	var buf bytes.Buffer
	if err := compareBaselines(oldPath, noisy, 0.25, 1_000_000, &buf); err != nil {
		t.Fatalf("sub-floor timing noise gated the comparison: %v", err)
	}
	// Without the floor the same data must fail on ns/op.
	if err := compareBaselines(oldPath, noisy, 0.25, 0, &buf); err == nil {
		t.Fatal("regression beyond threshold accepted at floor 0")
	}
	// The floor must not shield real regressions in long benches.
	slowBig := writeBaseline(t, []Result{
		{Name: "BenchmarkTiny", Iterations: 1, NsPerOp: 35_000, BytesPerOp: 100},
		{Name: "BenchmarkBig", Iterations: 1, NsPerOp: 90_000_000, BytesPerOp: 1000},
	})
	if err := compareBaselines(oldPath, slowBig, 0.25, 1_000_000, &buf); err == nil {
		t.Fatal("long-bench regression accepted with floor set")
	}
	// ...nor an allocation regression in a sub-floor bench: B/op is
	// deterministic even at one iteration, so it gates regardless.
	fatTiny := writeBaseline(t, []Result{
		{Name: "BenchmarkTiny", Iterations: 1, NsPerOp: 35_000, BytesPerOp: 10_000},
		{Name: "BenchmarkBig", Iterations: 1, NsPerOp: 50_000_000, BytesPerOp: 1000},
	})
	err := compareBaselines(oldPath, fatTiny, 0.25, 1_000_000, &buf)
	if err == nil || !strings.Contains(err.Error(), "B/op") {
		t.Fatalf("sub-floor B/op regression not flagged: %v", err)
	}
}

func TestCompareBaselinesBadInput(t *testing.T) {
	good := writeBaseline(t, []Result{{Name: "BenchmarkA", Iterations: 1, NsPerOp: 1}})
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := compareBaselines(good, bad, 0.25, 0, &buf); err == nil {
		t.Fatal("garbage new baseline accepted")
	}
	if err := compareBaselines(filepath.Join(t.TempDir(), "missing.json"), good, 0.25, 0, &buf); err == nil {
		t.Fatal("missing old baseline accepted")
	}
}

func TestCheckEnvelopeRejectsGarbage(t *testing.T) {
	var buf bytes.Buffer
	if err := checkEnvelope(strings.NewReader("not json"), &buf, false, false, false, false, false, ""); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := checkEnvelope(strings.NewReader(`{"schema":"something/else"}`), &buf, false, false, false, false, false, ""); err == nil {
		t.Fatal("wrong schema accepted")
	}
	// An envelope whose summary counters disagree with its records is
	// corrupt even if every listed experiment looks ok.
	env := runner.Envelope{
		Schema:      runner.Schema,
		Failed:      1,
		Experiments: []runner.ExperimentResult{{ID: "figure1", Status: runner.StatusOK}},
	}
	if err := checkEnvelope(strings.NewReader(envelopeJSON(t, env)), &buf, false, false, false, false, false, ""); err == nil {
		t.Fatal("inconsistent envelope accepted")
	}
}

// TestCheckEnvelopeFailures: the v7 failures blocks are printed, the
// run-level block must sum the per-experiment blocks exactly, and the
// chaos flags behave: -allow-failed tolerates non-ok experiments while
// -require-failures rejects a run that contained nothing.
func TestCheckEnvelopeFailures(t *testing.T) {
	env := runner.Envelope{
		Schema: runner.Schema,
		OK:     1,
		Failed: 1,
		Experiments: []runner.ExperimentResult{
			{ID: "figure1", Status: runner.StatusOK,
				Failures: &runner.FailureStats{DiskRetries: 2}},
			{ID: "scaling", Status: runner.StatusFailed, Error: "panic in job",
				Failures: &runner.FailureStats{PanicsRecovered: 1, SolverWorkerPanics: 1}},
		},
		Failures: &runner.FailureStats{PanicsRecovered: 1, SolverWorkerPanics: 1, DiskRetries: 2},
	}
	var buf bytes.Buffer
	// Without -allow-failed the failed experiment still gates.
	if err := checkEnvelope(strings.NewReader(envelopeJSON(t, env)), &buf, false, false, false, false, false, ""); err == nil {
		t.Fatal("failed experiment accepted without -allow-failed")
	}
	buf.Reset()
	if err := checkEnvelope(strings.NewReader(envelopeJSON(t, env)), &buf, false, false, false, true, true, ""); err != nil {
		t.Fatalf("chaos envelope rejected: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"failures (run):", "1 panic(s) recovered", "2 disk retry(ies)", "tolerated"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}

	// A run-level block that does not sum the per-experiment blocks is
	// corrupt in either direction.
	short := env
	short.Failures = &runner.FailureStats{PanicsRecovered: 1}
	if err := checkEnvelope(strings.NewReader(envelopeJSON(t, short)), &buf, false, false, false, true, false, ""); err == nil {
		t.Fatal("short run-level failures block accepted")
	}
	missing := env
	missing.Failures = nil
	if err := checkEnvelope(strings.NewReader(envelopeJSON(t, missing)), &buf, false, false, false, true, false, ""); err == nil {
		t.Fatal("missing run-level failures block accepted")
	}

	// -require-failures rejects a clean run.
	clean := runner.Envelope{
		Schema:      runner.Schema,
		OK:          1,
		Experiments: []runner.ExperimentResult{{ID: "figure1", Status: runner.StatusOK}},
	}
	if err := checkEnvelope(strings.NewReader(envelopeJSON(t, clean)), &buf, false, false, false, false, true, ""); err == nil {
		t.Fatal("clean run accepted with -require-failures")
	}
	if err := checkEnvelope(strings.NewReader(envelopeJSON(t, clean)), &buf, false, false, false, false, false, ""); err != nil {
		t.Fatalf("clean run rejected without -require-failures: %v", err)
	}
}

// TestParseLineStripsCPUSuffix: the -<GOMAXPROCS> suffix a multi-core
// bench run appends must not enter baseline names, and nested
// sub-benchmark names survive intact.
func TestParseLineStripsCPUSuffix(t *testing.T) {
	r, ok := parseLine("BenchmarkExpScaling/n=192-8         1  412000000 ns/op  357125218 B/op  1910071 allocs/op")
	if !ok {
		t.Fatal("nested benchmark line rejected")
	}
	if r.Name != "BenchmarkExpScaling/n=192" {
		t.Fatalf("name %q, want cpu suffix stripped", r.Name)
	}
	r, ok = parseLine("BenchmarkExpFigure1-16     3  35387 ns/op")
	if !ok || r.Name != "BenchmarkExpFigure1" {
		t.Fatalf("flat name with suffix: %+v ok=%v", r, ok)
	}
	// No suffix (1-core runs): name unchanged.
	r, ok = parseLine("BenchmarkExpFigure1     3  35387 ns/op")
	if !ok || r.Name != "BenchmarkExpFigure1" {
		t.Fatalf("suffix-free name mangled: %+v ok=%v", r, ok)
	}
}

// TestCompareBaselinesSuiteFallback: an old flat benchmark compares
// against its new <name>/suite sub-benchmark after a b.Run promotion, and
// the consumed sub-benchmark is not double-reported as new.
func TestCompareBaselinesSuiteFallback(t *testing.T) {
	oldPath := writeBaseline(t, []Result{
		{Name: "BenchmarkExpScaling", Iterations: 3, NsPerOp: 1000, BytesPerOp: 500},
	})
	newPath := writeBaseline(t, []Result{
		{Name: "BenchmarkExpScaling/n=192", Iterations: 3, NsPerOp: 600, BytesPerOp: 300},
		{Name: "BenchmarkExpScaling/suite", Iterations: 3, NsPerOp: 900, BytesPerOp: 450},
	})
	var buf bytes.Buffer
	if err := compareBaselines(oldPath, newPath, 0.25, 0, &buf); err != nil {
		t.Fatalf("suite fallback comparison failed: %v", err)
	}
	out := buf.String()
	if strings.Contains(out, "(removed)") {
		t.Fatalf("promoted benchmark reported removed:\n%s", out)
	}
	if !strings.Contains(out, "-10.0%") {
		t.Fatalf("suite delta not computed against old flat name:\n%s", out)
	}
	if !strings.Contains(out, "BenchmarkExpScaling/n=192") || !strings.Contains(out, "(new)") {
		t.Fatalf("per-point sub-benchmark should report as new:\n%s", out)
	}
	if strings.Contains(out, "BenchmarkExpScaling/suite  ") && strings.Count(out, "BenchmarkExpScaling/suite") > 1 {
		t.Fatalf("consumed suite name double-reported:\n%s", out)
	}

	// The fallback still gates: a regressed suite fails.
	slowPath := writeBaseline(t, []Result{
		{Name: "BenchmarkExpScaling/suite", Iterations: 3, NsPerOp: 2000, BytesPerOp: 500},
	})
	if err := compareBaselines(oldPath, slowPath, 0.25, 0, &buf); err == nil {
		t.Fatal("suite regression accepted through the fallback")
	}
}

// observedEnvelope builds a consistent v6 envelope with a metrics block
// whose counters mirror the legacy fields exactly.
func observedEnvelope() runner.Envelope {
	return runner.Envelope{
		Schema:  runner.Schema,
		OK:      1,
		Cache:   cache.Stats{Hits: 3, Misses: 5},
		LBGraph: lbgraph.CacheStats{Hits: 2, Misses: 4},
		Batch:   runner.BatchTotals{BatchJobs: 1, BatchedInstances: 6},
		Experiments: []runner.ExperimentResult{
			{ID: "scaling", Status: runner.StatusOK, BatchJobs: 1, BatchedInstances: 6},
		},
		Metrics: &obs.Snapshot{Counters: map[string]int64{
			obs.MSolveCacheHits:   3,
			obs.MSolveCacheMisses: 5,
			obs.MBuildCacheHits:   2,
			obs.MBuildCacheMisses: 4,
			obs.MBatchPasses:      1,
			obs.MBatchInstances:   6,
		}},
		Spans: []obs.SpanStat{{Name: "run", Count: 1, TotalNS: 1e6, MaxNS: 1e6}},
	}
}

// TestCheckEnvelopeMetrics: a v6 metrics block is printed and enforced
// against the legacy counters; -require-metrics fails unobserved runs.
func TestCheckEnvelopeMetrics(t *testing.T) {
	var buf bytes.Buffer
	env := observedEnvelope()
	if err := checkEnvelope(strings.NewReader(envelopeJSON(t, env)), &buf, false, false, true, false, false, ""); err != nil {
		t.Fatalf("consistent observed envelope rejected: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"metrics delta", obs.MSolveCacheMisses, "span run", "consistent with legacy counters"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}

	// Any disagreement between the registry delta and the legacy counters
	// is corruption: the two instrument the same code paths.
	env = observedEnvelope()
	env.Metrics.Counters[obs.MSolveCacheMisses] = 99
	err := checkEnvelope(strings.NewReader(envelopeJSON(t, env)), &buf, false, false, false, false, false, "")
	if err == nil || !strings.Contains(err.Error(), obs.MSolveCacheMisses) {
		t.Fatalf("metrics/legacy disagreement not flagged: %v", err)
	}

	env = observedEnvelope()
	env.Metrics.Counters[obs.MBatchPasses] = 7
	if err := checkEnvelope(strings.NewReader(envelopeJSON(t, env)), &buf, false, false, false, false, false, ""); err == nil {
		t.Fatal("batch-pass disagreement accepted")
	}

	// A run whose registry saw no build traffic (bypass sessions) skips the
	// build-cache check even though the envelope reports bypass builds.
	env = observedEnvelope()
	delete(env.Metrics.Counters, obs.MBuildCacheHits)
	delete(env.Metrics.Counters, obs.MBuildCacheMisses)
	if err := checkEnvelope(strings.NewReader(envelopeJSON(t, env)), &buf, false, false, false, false, false, ""); err != nil {
		t.Fatalf("bypass-build envelope rejected: %v", err)
	}

	// An observed envelope without spans is broken: the run span always
	// records.
	env = observedEnvelope()
	env.Spans = nil
	if err := checkEnvelope(strings.NewReader(envelopeJSON(t, env)), &buf, false, false, false, false, false, ""); err == nil {
		t.Fatal("span-free observed envelope accepted")
	}

	// -require-metrics gates unobserved runs; without it they pass.
	plain := observedEnvelope()
	plain.Metrics, plain.Spans = nil, nil
	if err := checkEnvelope(strings.NewReader(envelopeJSON(t, plain)), &buf, false, false, true, false, false, ""); err == nil {
		t.Fatal("unobserved run accepted with -require-metrics")
	}
	if err := checkEnvelope(strings.NewReader(envelopeJSON(t, plain)), &buf, false, false, false, false, false, ""); err != nil {
		t.Fatalf("unobserved run rejected without the flag: %v", err)
	}
}

// TestCheckEnvelopeScrape: the -scrape cross-check accepts a live
// snapshot that covers the envelope's delta (cumulative ≥ delta) and
// rejects one that falls short or cannot be fetched.
func TestCheckEnvelopeScrape(t *testing.T) {
	env := observedEnvelope()
	live := obs.Snapshot{Counters: map[string]int64{}}
	for name, v := range env.Metrics.Counters {
		live.Counters[name] = v + 1 // cumulative: later traffic is fine
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(live)
	}))
	defer srv.Close()

	var buf bytes.Buffer
	if err := checkEnvelope(strings.NewReader(envelopeJSON(t, env)), &buf, false, false, false, false, false, srv.URL); err != nil {
		t.Fatalf("covering scrape rejected: %v", err)
	}
	if !strings.Contains(buf.String(), "covered") {
		t.Fatalf("scrape summary missing:\n%s", buf.String())
	}

	live.Counters[obs.MSolveCacheMisses] = 0 // scraped registry can't have seen less
	err := checkEnvelope(strings.NewReader(envelopeJSON(t, env)), &buf, false, false, false, false, false, srv.URL)
	if err == nil || !strings.Contains(err.Error(), "misses") {
		t.Fatalf("short scrape not flagged: %v", err)
	}

	srv.Close()
	if err := checkEnvelope(strings.NewReader(envelopeJSON(t, env)), &buf, false, false, false, false, false, srv.URL); err == nil {
		t.Fatal("dead endpoint accepted")
	}

	// -scrape against an unobserved envelope has nothing to compare.
	plain := observedEnvelope()
	plain.Metrics, plain.Spans = nil, nil
	if err := checkEnvelope(strings.NewReader(envelopeJSON(t, plain)), &buf, false, false, false, false, false, srv.URL); err == nil {
		t.Fatal("-scrape accepted an envelope without metrics")
	}
}

// TestCheckEnvelopeBatch: the batch block must sum the per-experiment
// counters, and -require-batched fails unbatched runs.
func TestCheckEnvelopeBatch(t *testing.T) {
	env := runner.Envelope{
		Schema: runner.Schema,
		OK:     2,
		Batch:  runner.BatchTotals{BatchJobs: 2, BatchedInstances: 7},
		Experiments: []runner.ExperimentResult{
			{ID: "scaling", Status: runner.StatusOK, BatchJobs: 1, BatchedInstances: 3},
			{ID: "upperbounds", Status: runner.StatusOK, BatchJobs: 1, BatchedInstances: 4},
		},
	}
	var buf bytes.Buffer
	if err := checkEnvelope(strings.NewReader(envelopeJSON(t, env)), &buf, false, true, false, false, false, ""); err != nil {
		t.Fatalf("batched envelope rejected: %v", err)
	}
	if !strings.Contains(buf.String(), "7 instance(s) over 2 lockstep pass(es)") {
		t.Fatalf("summary missing batch line:\n%s", buf.String())
	}

	env.Batch.BatchedInstances = 6 // disagree with the records
	if err := checkEnvelope(strings.NewReader(envelopeJSON(t, env)), &buf, false, false, false, false, false, ""); err == nil {
		t.Fatal("inconsistent batch block accepted")
	}

	unbatched := runner.Envelope{
		Schema:      runner.Schema,
		OK:          1,
		Experiments: []runner.ExperimentResult{{ID: "cutsize", Status: runner.StatusOK}},
	}
	if err := checkEnvelope(strings.NewReader(envelopeJSON(t, unbatched)), &buf, false, true, false, false, false, ""); err == nil {
		t.Fatal("unbatched run accepted with -require-batched")
	}
	if err := checkEnvelope(strings.NewReader(envelopeJSON(t, unbatched)), &buf, false, false, false, false, false, ""); err != nil {
		t.Fatalf("unbatched run rejected without the flag: %v", err)
	}
}

func TestOpenEnvelopeFileAndURL(t *testing.T) {
	env := runner.Envelope{
		Schema:      runner.Schema,
		OK:          1,
		Experiments: []runner.ExperimentResult{{ID: "figure1", Status: runner.StatusOK}},
	}
	data := envelopeJSON(t, env)

	path := filepath.Join(t.TempDir(), "env.json")
	if err := os.WriteFile(path, []byte(data), 0o600); err != nil {
		t.Fatal(err)
	}
	rc, err := openEnvelope(path, "")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := checkEnvelope(rc, &buf, false, false, false, false, false, ""); err != nil {
		t.Fatalf("file envelope rejected: %v", err)
	}
	rc.Close()

	// URL path: the server stands in for congestlbd's
	// GET /v1/experiments/last and demands the bearer key, like the
	// daemon's tenant auth does.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Authorization") != "Bearer secret" {
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
		w.Write([]byte(data))
	}))
	defer srv.Close()

	if _, err := openEnvelope(srv.URL, ""); err == nil {
		t.Fatal("missing bearer accepted")
	}
	rc, err = openEnvelope(srv.URL, "secret")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	buf.Reset()
	if err := checkEnvelope(rc, &buf, false, false, false, false, false, ""); err != nil {
		t.Fatalf("URL envelope rejected: %v", err)
	}
	if !strings.Contains(buf.String(), "figure1") {
		t.Fatalf("summary missing experiment:\n%s", buf.String())
	}
}
