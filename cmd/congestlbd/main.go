// Command congestlbd is the multi-tenant solve/experiment daemon: an
// HTTP (JSON + SSE) service over per-tenant congestlb.Labs.
//
// Usage:
//
//	congestlbd [-addr :8080] [-config tenants.json]
//	           [-tenant name:key[:max_jobs]]... [-shared-tier-entries n]
//	           [-max-inflight n] [-queue n] [-executors n]
//	           [-drain-timeout 30s]
//
// Tenants come from -config (a serve.Config JSON file) and/or repeated
// -tenant flags; at least one tenant is required. Each tenant gets a
// private Lab — its own solve/build caches, solver-worker default and
// experiment pool, bounded by its quota — while one shared
// content-addressed tier underneath dedups identical solves across
// tenants: a graph any tenant already paid to solve costs everyone else
// zero branch-and-bound steps (visible as "shared_hits" in solve
// responses).
//
// The API surface (see docs/service.md for the reference and curl
// examples):
//
//	POST   /v1/solve             exact MaxIS on a submitted graph
//	POST   /v1/reduce            Theorem 5 reduction run (+ gap audit)
//	POST   /v1/experiments       experiment suite → v7 envelope
//	GET    /v1/experiments/last  bare envelope (benchjson -experiments URL)
//	GET    /v1/jobs/{id}         job status/result
//	GET    /v1/jobs/{id}/stream  live incumbent progress (SSE)
//	DELETE /v1/jobs/{id}         cancel a job
//	GET    /v1/status            admission/queue/tier snapshot
//	GET    /healthz              liveness
//	/metrics, /metrics.json, /spans.json, /debug/pprof/*  ops surface
//
// Backpressure: requests are admitted against per-tenant and global
// in-flight bounds and a bounded accept queue; the excess gets 429 with
// a Retry-After header. SIGTERM/SIGINT drains gracefully — new work is
// refused, queued and running jobs finish, tenant Labs close, the
// process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"congestlb/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "congestlbd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until ctx fires (the signal), then
// drains. Split from main so tests can drive the full lifecycle with a
// cancellable context instead of process signals.
func run(ctx context.Context, args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("congestlbd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	configPath := fs.String("config", "", "serve.Config JSON file (tenants + limits)")
	var tenantFlags []string
	fs.Func("tenant", "tenant shorthand name:key[:max_jobs] (repeatable)", func(s string) error {
		tenantFlags = append(tenantFlags, s)
		return nil
	})
	tierEntries := fs.Int("shared-tier-entries", 0, "cross-tenant solve tier entry bound (0 = default)")
	maxInflight := fs.Int("max-inflight", 0, "global admitted-job bound (0 = default)")
	queueDepth := fs.Int("queue", 0, "accept queue bound (0 = max-inflight)")
	executors := fs.Int("executors", 0, "executor goroutines (0 = max-inflight)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight HTTP requests at shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg serve.Config
	if *configPath != "" {
		var err error
		cfg, err = serve.LoadConfig(*configPath)
		if err != nil {
			return err
		}
	}
	for _, s := range tenantFlags {
		tc, err := serve.ParseTenantFlag(s)
		if err != nil {
			return err
		}
		cfg.Tenants = append(cfg.Tenants, tc)
	}
	if *tierEntries > 0 {
		cfg.SharedTierEntries = *tierEntries
	}
	if *maxInflight > 0 {
		cfg.MaxInflight = *maxInflight
	}
	if *queueDepth > 0 {
		cfg.QueueDepth = *queueDepth
	}
	if *executors > 0 {
		cfg.Executors = *executors
	}

	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	hs, err := serve.StartHTTP(*addr, srv.Handler())
	if err != nil {
		srv.Close()
		return err
	}
	fmt.Fprintf(stderr, "congestlbd: serving %d tenants on %s\n", len(cfg.Tenants), hs.URL())

	<-ctx.Done()
	fmt.Fprintln(stderr, "congestlbd: draining")
	// Drain order: stop taking new jobs and finish the admitted ones
	// first (srv.Close), then let the HTTP layer flush the responses of
	// requests that were waiting on those jobs.
	cerr := srv.Close()
	herr := hs.Shutdown(*drainTimeout)
	fmt.Fprintln(stderr, "congestlbd: drained")
	if cerr != nil {
		return cerr
	}
	return herr
}
