package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// lineWriter captures stderr lines and signals when the serving banner
// (with the bound address) appears.
type lineWriter struct {
	mu    sync.Mutex
	buf   strings.Builder
	ready chan string
	sent  bool
}

func newLineWriter() *lineWriter { return &lineWriter{ready: make(chan string, 1)} }

func (w *lineWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if !w.sent {
		for _, line := range strings.Split(w.buf.String(), "\n") {
			if strings.Contains(line, "serving") {
				if i := strings.Index(line, "http://"); i >= 0 {
					w.sent = true
					w.ready <- strings.TrimSpace(line[i:])
					break
				}
			}
		}
	}
	return len(p), nil
}

func (w *lineWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestRunLifecycle drives the full daemon lifecycle: start on a free
// port, answer a request, drain on context cancellation (the test's
// stand-in for SIGTERM) and return nil — the exit-0 path.
func TestRunLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := newLineWriter()
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-tenant", "alice:ka"}, w)
	}()

	var base string
	select {
	case base = <-w.ready:
	case err := <-errc:
		t.Fatalf("daemon exited early: %v\nstderr:\n%s", err, w.String())
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never announced its address\nstderr:\n%s", w.String())
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}

	// A real request proves the tenant map made it from the flag to the
	// running service.
	body := strings.NewReader(`{"graph":{"n":3,"edges":[[0,1],[1,2]]}}`)
	req, _ := http.NewRequest("POST", base+"/v1/solve", body)
	req.Header.Set("Authorization", "Bearer ka")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		Status string          `json:"status"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || view.Status != "done" {
		t.Fatalf("solve status %d view %+v", resp.StatusCode, view)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("drain returned %v\nstderr:\n%s", err, w.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never drained\nstderr:\n%s", w.String())
	}
	if out := w.String(); !strings.Contains(out, "draining") || !strings.Contains(out, "drained") {
		t.Fatalf("drain banners missing:\n%s", out)
	}
}

func TestRunConfigFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.json")
	cfg := `{"tenants":[{"name":"a","api_key":"k1"},{"name":"b","api_key":"k2","quota":{"max_concurrent_jobs":1}}]}`
	if err := os.WriteFile(path, []byte(cfg), 0o600); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	w := newLineWriter()
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-config", path}, w)
	}()
	select {
	case base := <-w.ready:
		if !strings.Contains(w.String(), "serving 2 tenants") {
			t.Fatalf("tenant count banner wrong:\n%s", w.String())
		}
		_ = base
	case err := <-errc:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never started")
	}
	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	ctx := context.Background()
	cases := [][]string{
		{"-addr", "127.0.0.1:0"},                                      // no tenants
		{"-addr", "127.0.0.1:0", "-tenant", "nokey"},                  // malformed tenant
		{"-addr", "127.0.0.1:0", "-config", "/no/such"},               // missing config
		{"-addr", "127.0.0.1:0", "-tenant", "a:k:-3"},                 // bad max_jobs
		{"-addr", "127.0.0.1:0", "-tenant", "a:k", "-tenant", "a:k2"}, // dup name
	}
	for _, args := range cases {
		if err := run(ctx, args, &strings.Builder{}); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestTenantFlagRoundTrip(t *testing.T) {
	// Guard the documented shorthand: quota lands where admission reads it.
	ctx, cancel := context.WithCancel(context.Background())
	w := newLineWriter()
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-tenant", "alice:ka:2", "-max-inflight", "4"}, w)
	}()
	var base string
	select {
	case base = <-w.ready:
	case err := <-errc:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never started")
	}
	req, _ := http.NewRequest("GET", base+"/v1/status", nil)
	req.Header.Set("X-API-Key", "ka")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(raw), `"name": "alice"`) && !strings.Contains(string(raw), `"name":"alice"`) {
		t.Fatalf("status %d body %s", resp.StatusCode, raw)
	}
	cancel()
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}
