// Command experiments regenerates the paper's figures and result tables.
//
// Usage:
//
//	experiments [-id figure1,theorem5] [-jobs 4] [-solver-workers 4]
//	            [-cache-dir .solvecache] [-timeout 90s]
//	            [-metrics-addr 127.0.0.1:9090] [-metrics-linger 5s]
//	            [-o report.md] [-json out.json] [-list]
//
// Without -id it runs every registered experiment and emits a combined
// markdown report (the source of EXPERIMENTS.md's measured columns). Each
// invocation runs inside its own congestlb.Lab built from the flags: -jobs
// sizes the Lab's worker pool (experiments and their per-instance sweep
// jobs share it; the markdown report is byte-identical whatever the pool
// size), -solver-workers its branch-and-bound default (results are
// deterministic at any setting), and -cache-dir its persistent solve-cache
// tier — re-runs with the same directory serve previously solved graphs
// from disk and skip branch-and-bound entirely. Lower-bound graph
// constructions are memoised in the Lab's build cache, so repeated sweep
// points and cross-experiment reuse skip rebuilds.
//
// -timeout bounds the whole run with a context deadline. On expiry the
// run stops cooperatively — in-flight simulations at a round boundary,
// in-flight solves on the solver's batched step cadence, queued work
// before it starts — and the command exits non-zero after writing
// whatever report sections completed plus a complete JSON envelope in
// which every unfinished experiment is recorded with "cancelled": true.
//
// -cpuprofile and -memprofile write pprof profiles for the run. Both are
// written on every exit path the command controls — a clean run AND a
// -timeout cancellation — so a run that spends its budget inside a stuck
// sweep still yields the profile explaining where the time went. See
// docs/performance.md for the profiling workflow.
//
// -metrics-addr switches the Lab's observability on (congestlb.WithMetrics)
// and serves its ops endpoint on the given address for the duration of the
// run: Prometheus text at /metrics, JSON snapshots at /metrics.json and
// /spans.json, pprof under /debug/pprof/. The bound address is printed to
// stderr (pass port 0 to let the kernel pick). Because a fast suite can
// finish before a scraper ever polls, -metrics-linger keeps the endpoint
// (and the process) alive for the given extra duration after the run —
// CI's smoke test scrapes the final counters through it.
//
// -json writes the structured result envelope (schema v7) — one record
// per experiment with status, wall time, cancellation flag, instance-job
// count, exactly-attributed solver steps, solve-cache and build-cache
// statistics and a failures block when faults were contained, plus
// run-level disk-tier and build-cache traffic and, with -metrics-addr,
// the run's metrics delta and span summary — which cmd/benchjson
// -experiments validates and CI archives.
//
// Setting CONGESTLB_FAULTS="<seed>:<plan>" arms the deterministic
// fault-injection layer for the run (chaos testing; see
// docs/robustness.md). Contained faults surface in the report's FAILED
// lines and the envelope's failures blocks; a malformed spec aborts the
// run before any experiment starts.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"congestlb"
	"congestlb/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	ids := fs.String("id", "", "comma-separated experiment IDs (default: all)")
	out := fs.String("o", "", "write the report to this file instead of stdout")
	jsonOut := fs.String("json", "", "write the JSON result envelope to this file")
	jobs := fs.Int("jobs", 0, "experiment worker-pool size (default GOMAXPROCS)")
	solverWorkers := fs.Int("solver-workers", 0, "branch-and-bound workers per exact solve (default GOMAXPROCS)")
	cacheDir := fs.String("cache-dir", "", "persistent solve-cache directory; re-runs serve solved graphs from disk")
	timeout := fs.Duration("timeout", 0, "abort the run after this duration; unfinished experiments are recorded as cancelled (0 = no limit)")
	metricsAddr := fs.String("metrics-addr", "", "enable per-Lab metrics and serve the ops endpoint (/metrics, /metrics.json, /spans.json, /debug/pprof/) on this address for the run")
	metricsLinger := fs.Duration("metrics-linger", 0, "keep the -metrics-addr endpoint alive this long after the run finishes, for scrapers")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file (written on clean exit and on -timeout)")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit (written on clean exit and on -timeout)")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Chaos harness: a fault-injection spec in CONGESTLB_FAULTS arms the
	// deterministic fault layer for the whole run (see docs/robustness.md).
	// A malformed spec is a hard error — a chaos run that silently ran
	// clean would pass for a real one.
	if spec := os.Getenv(congestlb.FaultEnv); spec != "" {
		if err := congestlb.EnableFaults(spec); err != nil {
			return fmt.Errorf("%s: %w", congestlb.FaultEnv, err)
		}
		fmt.Fprintf(os.Stderr, "experiments: fault injection armed: %s\n", spec)
	}

	// Profiling wraps everything below through defers, so the profiles
	// land on every controlled exit path: a clean run, an experiment
	// failure, and the -timeout cancellation alike (the deadline cancels
	// the run cooperatively and run() returns normally, which is exactly
	// what lets these defers fire).
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialise final live-heap state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		}()
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	if *list {
		for _, e := range congestlb.AllExperiments() {
			fmt.Fprintf(w, "%-12s %s (%s)\n", e.ID, e.Title, e.PaperRef)
		}
		return nil
	}

	lab, err := congestlb.New(
		congestlb.WithJobs(*jobs),
		congestlb.WithSolverWorkers(*solverWorkers),
		congestlb.WithSolveCacheDir(*cacheDir),
		congestlb.WithMetrics(*metricsAddr != ""),
	)
	if err != nil {
		return err
	}
	defer lab.Close()

	if *metricsAddr != "" {
		hs, err := serve.StartHTTP(*metricsAddr, lab.MetricsHandler())
		if err != nil {
			return fmt.Errorf("metrics-addr: %w", err)
		}
		// The bound address goes to stderr so scripts using port 0 can
		// find the endpoint without parsing the report stream.
		fmt.Fprintf(os.Stderr, "experiments: metrics endpoint on http://%s/metrics\n", hs.Addr())
		defer func() {
			// Hold the endpoint open past the run so a scraper polling on
			// an interval still sees the final counters, then drain like
			// congestlbd does: in-flight scrapes finish, stragglers are cut.
			if *metricsLinger > 0 {
				time.Sleep(*metricsLinger)
			}
			if err := hs.Shutdown(5 * time.Second); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: metrics endpoint:", err)
			}
		}()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var selected []string
	if *ids != "" {
		for _, id := range strings.Split(*ids, ",") {
			selected = append(selected, strings.TrimSpace(id))
		}
	}
	if *ids == "" {
		fmt.Fprintf(w, "# Regenerated results — Beyond Alice and Bob (PODC 2020)\n\n")
	}

	env, runErr := lab.RunExperiments(ctx, selected, w)
	if env.Cancelled > 0 {
		// The deadline fired: the report above holds only the sections that
		// completed, and the envelope flags the rest. Say so explicitly —
		// a partial result must never pass for a full one.
		runErr = errors.Join(runErr, fmt.Errorf(
			"timed out after %v: envelope is partial (%d of %d experiment(s) cancelled)",
			*timeout, env.Cancelled, len(env.Experiments)))
	}
	// A run that never started (unknown -id, closed Lab) returns a
	// zero-value envelope; writing that out would hand downstream tooling
	// a syntactically valid file with an empty schema tag where before
	// there was no file at all. The schema tag marks a real run.
	if *jsonOut != "" && env.Schema != "" {
		// Joined with runErr: a broken -json path must not hide which
		// experiments failed (or vice versa).
		runErr = errors.Join(runErr, writeEnvelope(*jsonOut, env))
	}
	return runErr
}

func writeEnvelope(path string, env congestlb.ExperimentEnvelope) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(env); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
