// Command experiments regenerates the paper's figures and result tables.
//
// Usage:
//
//	experiments [-id figure1,theorem5] [-o report.md] [-list]
//
// Without -id it runs every registered experiment and emits a combined
// markdown report (the source of EXPERIMENTS.md's measured columns).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"congestlb/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	ids := fs.String("id", "", "comma-separated experiment IDs (default: all)")
	out := fs.String("o", "", "write the report to this file instead of stdout")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(w, "%-12s %s (%s)\n", e.ID, e.Title, e.PaperRef)
		}
		return nil
	}

	if *ids == "" {
		fmt.Fprintf(w, "# Regenerated results — Beyond Alice and Bob (PODC 2020)\n\n")
		return experiments.RunAll(w)
	}
	for _, id := range strings.Split(*ids, ",") {
		id = strings.TrimSpace(id)
		e, ok := experiments.ByID(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		fmt.Fprintf(w, "## %s — %s\n\n*Reproduces: %s*\n\n", e.ID, e.Title, e.PaperRef)
		if err := e.Run(w); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
