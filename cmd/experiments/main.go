// Command experiments regenerates the paper's figures and result tables.
//
// Usage:
//
//	experiments [-id figure1,theorem5] [-jobs 4] [-solver-workers 4]
//	            [-cache-dir .solvecache] [-o report.md] [-json out.json] [-list]
//
// Without -id it runs every registered experiment and emits a combined
// markdown report (the source of EXPERIMENTS.md's measured columns).
// Experiments execute as shardable jobs over a worker pool (-jobs, default
// GOMAXPROCS), and the sweep loops inside each experiment fan their
// per-instance work (one build + simulate + solve per sweep point) back
// into the same pool, so -jobs above the experiment count keeps buying
// parallelism; the markdown report is byte-identical whatever the pool
// size. -solver-workers sets the branch-and-bound parallelism of every
// exact solve (default GOMAXPROCS; results are deterministic at any
// setting). -cache-dir attaches the persistent solve-cache tier: re-runs
// with the same directory serve previously solved graphs from disk and
// skip branch-and-bound entirely. Lower-bound graph constructions are
// memoised process-wide in the lbgraph build cache, so repeated sweep
// points and cross-experiment reuse skip rebuilds. -json additionally
// writes the structured result envelope (schema v3) — one record per
// experiment with status, wall time, instance-job count, exactly-
// attributed solver steps, solve-cache and build-cache statistics, plus
// run-level disk-tier and build-cache traffic — which cmd/benchjson
// -experiments validates and CI archives.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"congestlb/internal/experiments"
	"congestlb/internal/mis"
	"congestlb/internal/mis/cache"
	"congestlb/internal/runner"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	ids := fs.String("id", "", "comma-separated experiment IDs (default: all)")
	out := fs.String("o", "", "write the report to this file instead of stdout")
	jsonOut := fs.String("json", "", "write the JSON result envelope to this file")
	jobs := fs.Int("jobs", 0, "experiment worker-pool size (default GOMAXPROCS)")
	solverWorkers := fs.Int("solver-workers", 0, "branch-and-bound workers per exact solve (default GOMAXPROCS)")
	cacheDir := fs.String("cache-dir", "", "persistent solve-cache directory; re-runs serve solved graphs from disk")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *solverWorkers > 0 {
		// Package default too, so solves outside the runner's sessions
		// (facade helpers, programs built without a session) agree.
		defer mis.SetDefaultWorkers(mis.SetDefaultWorkers(*solverWorkers))
	}
	if *cacheDir != "" {
		if err := cache.Shared().SetDir(*cacheDir, 0); err != nil {
			return err
		}
		defer cache.Shared().SetDir("", 0)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(w, "%-12s %s (%s)\n", e.ID, e.Title, e.PaperRef)
		}
		return nil
	}

	var selected []string
	if *ids != "" {
		for _, id := range strings.Split(*ids, ",") {
			selected = append(selected, strings.TrimSpace(id))
		}
	}
	exps, err := experiments.Select(selected)
	if err != nil {
		return err
	}
	if *ids == "" {
		fmt.Fprintf(w, "# Regenerated results — Beyond Alice and Bob (PODC 2020)\n\n")
	}

	env, runErr := runner.Run(exps, runner.Options{Jobs: *jobs, SolverWorkers: *solverWorkers}, w)
	if *jsonOut != "" {
		// Joined with runErr: a broken -json path must not hide which
		// experiments failed (or vice versa).
		runErr = errors.Join(runErr, writeEnvelope(*jsonOut, env))
	}
	return runErr
}

func writeEnvelope(path string, env runner.Envelope) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(env); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
