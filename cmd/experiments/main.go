// Command experiments regenerates the paper's figures and result tables.
//
// Usage:
//
//	experiments [-id figure1,theorem5] [-jobs 4] [-o report.md] [-json out.json] [-list]
//
// Without -id it runs every registered experiment and emits a combined
// markdown report (the source of EXPERIMENTS.md's measured columns).
// Experiments execute as shardable jobs over a worker pool (-jobs, default
// GOMAXPROCS); the markdown report is byte-identical whatever the pool
// size. -json additionally writes the structured result envelope — one
// record per experiment with status, wall time, solver steps and solve
// cache statistics — which cmd/benchjson -experiments validates and CI
// archives.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"congestlb/internal/experiments"
	"congestlb/internal/runner"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	ids := fs.String("id", "", "comma-separated experiment IDs (default: all)")
	out := fs.String("o", "", "write the report to this file instead of stdout")
	jsonOut := fs.String("json", "", "write the JSON result envelope to this file")
	jobs := fs.Int("jobs", 0, "experiment worker-pool size (default GOMAXPROCS)")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(w, "%-12s %s (%s)\n", e.ID, e.Title, e.PaperRef)
		}
		return nil
	}

	var selected []string
	if *ids != "" {
		for _, id := range strings.Split(*ids, ",") {
			selected = append(selected, strings.TrimSpace(id))
		}
	}
	exps, err := experiments.Select(selected)
	if err != nil {
		return err
	}
	if *ids == "" {
		fmt.Fprintf(w, "# Regenerated results — Beyond Alice and Bob (PODC 2020)\n\n")
	}

	env, runErr := runner.Run(exps, runner.Options{Jobs: *jobs}, w)
	if *jsonOut != "" {
		// Joined with runErr: a broken -json path must not hide which
		// experiments failed (or vice versa).
		runErr = errors.Join(runErr, writeEnvelope(*jsonOut, env))
	}
	return runErr
}

func writeEnvelope(path string, env runner.Envelope) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(env); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
