package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"congestlb/internal/runner"
)

func TestExperimentsList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"figure1", "theorem5", "cutsize"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list missing %s:\n%s", id, out)
		}
	}
}

func TestExperimentsSingle(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-id", "figure1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "C(1)") {
		t.Fatalf("figure1 output unexpected:\n%s", buf.String())
	}
}

func TestExperimentsMultiple(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-id", "figure2, codes"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "## figure2") || !strings.Contains(out, "## codes") {
		t.Fatalf("multi-id output unexpected:\n%.300s", out)
	}
}

func TestExperimentsShardedMatchesSequential(t *testing.T) {
	ids := "figure1,codes,cutsize,twoparty"
	var sequential bytes.Buffer
	if err := run([]string{"-id", ids, "-jobs", "1"}, &sequential); err != nil {
		t.Fatal(err)
	}
	var sharded bytes.Buffer
	if err := run([]string{"-id", ids, "-jobs", "4"}, &sharded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sequential.Bytes(), sharded.Bytes()) {
		t.Fatal("-jobs 4 markdown differs from -jobs 1")
	}
}

func TestExperimentsJSONEnvelope(t *testing.T) {
	path := filepath.Join(t.TempDir(), "env.json")
	var buf bytes.Buffer
	if err := run([]string{"-id", "figure1,codes", "-jobs", "2", "-json", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var env runner.Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("envelope is not valid JSON: %v", err)
	}
	if env.Schema != runner.Schema {
		t.Fatalf("schema %q", env.Schema)
	}
	if env.OK != 2 || env.Failed != 0 || len(env.Experiments) != 2 {
		t.Fatalf("envelope counts: %+v", env)
	}
	if env.Experiments[0].ID != "figure1" || env.Experiments[1].ID != "codes" {
		t.Fatalf("envelope order: %s, %s", env.Experiments[0].ID, env.Experiments[1].ID)
	}
}

func TestExperimentsUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-id", "nope"}, &buf); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

func TestExperimentsToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.md")
	var buf bytes.Buffer
	if err := run([]string{"-id", "figure1", "-o", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "figure1") {
		t.Fatal("file report missing content")
	}
}
