package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"congestlb/internal/mis/cache"
	"congestlb/internal/runner"
)

func TestExperimentsList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"figure1", "theorem5", "cutsize"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list missing %s:\n%s", id, out)
		}
	}
}

func TestExperimentsSingle(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-id", "figure1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "C(1)") {
		t.Fatalf("figure1 output unexpected:\n%s", buf.String())
	}
}

func TestExperimentsMultiple(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-id", "figure2, codes"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "## figure2") || !strings.Contains(out, "## codes") {
		t.Fatalf("multi-id output unexpected:\n%.300s", out)
	}
}

func TestExperimentsShardedMatchesSequential(t *testing.T) {
	ids := "figure1,codes,cutsize,twoparty"
	var sequential bytes.Buffer
	if err := run([]string{"-id", ids, "-jobs", "1"}, &sequential); err != nil {
		t.Fatal(err)
	}
	var sharded bytes.Buffer
	if err := run([]string{"-id", ids, "-jobs", "4"}, &sharded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sequential.Bytes(), sharded.Bytes()) {
		t.Fatal("-jobs 4 markdown differs from -jobs 1")
	}
}

func TestExperimentsJSONEnvelope(t *testing.T) {
	path := filepath.Join(t.TempDir(), "env.json")
	var buf bytes.Buffer
	if err := run([]string{"-id", "figure1,codes", "-jobs", "2", "-json", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var env runner.Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("envelope is not valid JSON: %v", err)
	}
	if env.Schema != runner.Schema {
		t.Fatalf("schema %q", env.Schema)
	}
	if env.OK != 2 || env.Failed != 0 || len(env.Experiments) != 2 {
		t.Fatalf("envelope counts: %+v", env)
	}
	if env.Experiments[0].ID != "figure1" || env.Experiments[1].ID != "codes" {
		t.Fatalf("envelope order: %s, %s", env.Experiments[0].ID, env.Experiments[1].ID)
	}
}

// TestExperimentsCacheDirWarmRun is the persistence story end to end: a
// cold run with -cache-dir writes solve entries; a second run over the
// same directory (with the in-memory cache emptied, as a new process
// would be) reports disk hits and no fresh solver work for those graphs.
func TestExperimentsCacheDirWarmRun(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "solvecache")
	ids := "figure1,twoparty"

	cache.Shared().Reset()
	coldPath := filepath.Join(t.TempDir(), "cold.json")
	if err := run([]string{"-id", ids, "-cache-dir", dir, "-json", coldPath}, io.Discard); err != nil {
		t.Fatal(err)
	}
	cold := readEnvelope(t, coldPath)
	if cold.Cache.DiskWrites == 0 {
		t.Fatalf("cold run persisted nothing: %+v", cold.Cache)
	}
	if cold.Cache.DiskHits != 0 {
		t.Fatalf("cold run claims disk hits: %+v", cold.Cache)
	}

	// Simulate a fresh process: drop the in-memory tier, keep the disk.
	cache.Shared().Reset()
	warmPath := filepath.Join(t.TempDir(), "warm.json")
	if err := run([]string{"-id", ids, "-cache-dir", dir, "-json", warmPath}, io.Discard); err != nil {
		t.Fatal(err)
	}
	warm := readEnvelope(t, warmPath)
	if warm.Cache.DiskHits == 0 {
		t.Fatalf("warm run served nothing from disk: %+v", warm.Cache)
	}
	if warm.Cache.StepsSolved >= cold.Cache.StepsSolved {
		t.Fatalf("warm run did not skip solver work: cold %d steps, warm %d",
			cold.Cache.StepsSolved, warm.Cache.StepsSolved)
	}
	cache.Shared().Reset()
}

func readEnvelope(t *testing.T, path string) runner.Envelope {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var env runner.Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("envelope %s: %v", path, err)
	}
	return env
}

// TestExperimentsSolverWorkersFlag pins -solver-workers into the envelope
// and keeps the report identical to the default run (deterministic
// solver).
func TestExperimentsSolverWorkersFlag(t *testing.T) {
	var def, par bytes.Buffer
	path := filepath.Join(t.TempDir(), "env.json")
	if err := run([]string{"-id", "figure1", "-jobs", "1"}, &def); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-id", "figure1", "-jobs", "1", "-solver-workers", "4", "-json", path}, &par); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(def.Bytes(), par.Bytes()) {
		t.Fatal("-solver-workers changed the report")
	}
	if env := readEnvelope(t, path); env.SolverWorkers != 4 {
		t.Fatalf("envelope solver_workers = %d, want 4", env.SolverWorkers)
	}
}

// TestExperimentsTimeoutPartialEnvelope pins the -timeout contract with an
// already-expired deadline (deterministic: nothing gets to run): the
// command exits non-zero with a partial-envelope note, the envelope is
// still complete — one record per selected experiment — and every
// unfinished experiment is flagged cancelled.
func TestExperimentsTimeoutPartialEnvelope(t *testing.T) {
	path := filepath.Join(t.TempDir(), "env.json")
	var buf bytes.Buffer
	err := run([]string{"-id", "figure1,codes", "-timeout", "1ns", "-json", path}, &buf)
	if err == nil {
		t.Fatal("expired -timeout did not fail the run")
	}
	if !strings.Contains(err.Error(), "envelope is partial") {
		t.Fatalf("missing partial-envelope note: %v", err)
	}
	env := readEnvelope(t, path)
	if len(env.Experiments) != 2 {
		t.Fatalf("partial envelope lost records: %+v", env)
	}
	if env.Cancelled != 2 || env.Failed != 2 {
		t.Fatalf("cancelled=%d failed=%d, want 2/2", env.Cancelled, env.Failed)
	}
	for _, r := range env.Experiments {
		if !r.Cancelled {
			t.Fatalf("%s not flagged cancelled: %+v", r.ID, r)
		}
		if r.Status != runner.StatusFailed {
			t.Fatalf("%s status %q", r.ID, r.Status)
		}
	}
	if !strings.Contains(buf.String(), "**FAILED**") {
		t.Fatalf("report missing cancellation markers:\n%s", buf.String())
	}
}

// TestExperimentsTimeoutGenerous pins the other side: a deadline far above
// the run's cost changes nothing.
func TestExperimentsTimeoutGenerous(t *testing.T) {
	var plain, timed bytes.Buffer
	if err := run([]string{"-id", "figure1", "-jobs", "1"}, &plain); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-id", "figure1", "-jobs", "1", "-timeout", "10m"}, &timed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), timed.Bytes()) {
		t.Fatal("generous -timeout changed the report")
	}
}

func TestExperimentsUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-id", "nope"}, &buf); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

func TestExperimentsToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.md")
	var buf bytes.Buffer
	if err := run([]string{"-id", "figure1", "-o", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "figure1") {
		t.Fatal("file report missing content")
	}
}

// TestExperimentsProfileFlags: -cpuprofile/-memprofile write non-empty
// pprof files on a clean run AND when -timeout cancels the run — the
// profile of a stuck sweep is precisely the artefact the flags exist for.
func TestExperimentsProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := run([]string{"-id", "figure1", "-cpuprofile", cpu, "-memprofile", mem}, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}

	// The timeout path: the run errors, the profiles still land.
	cpu2 := filepath.Join(dir, "cpu-timeout.pprof")
	mem2 := filepath.Join(dir, "mem-timeout.pprof")
	err := run([]string{"-id", "scaling,theorem5,upperbounds", "-timeout", "1ms",
		"-cpuprofile", cpu2, "-memprofile", mem2}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("1ms timeout did not cancel the run: %v", err)
	}
	for _, p := range []string{cpu2, mem2} {
		st, statErr := os.Stat(p)
		if statErr != nil {
			t.Fatalf("profile not written on timeout: %v", statErr)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty after timeout", p)
		}
	}
}
