package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestExperimentsList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"figure1", "theorem5", "cutsize"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list missing %s:\n%s", id, out)
		}
	}
}

func TestExperimentsSingle(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-id", "figure1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "C(1)") {
		t.Fatalf("figure1 output unexpected:\n%s", buf.String())
	}
}

func TestExperimentsMultiple(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-id", "figure2, codes"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "## figure2") || !strings.Contains(out, "## codes") {
		t.Fatalf("multi-id output unexpected:\n%.300s", out)
	}
}

func TestExperimentsUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-id", "nope"}, &buf); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

func TestExperimentsToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.md")
	var buf bytes.Buffer
	if err := run([]string{"-id", "figure1", "-o", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "figure1") {
		t.Fatal("file report missing content")
	}
}
