// Command gapcheck verifies the gap predicate of a lower-bound family over
// many random promise inputs by exact MaxIS solving: intersecting inputs
// must reach Beta, pairwise-disjoint inputs must stay at or below SmallMax.
//
// Usage:
//
//	gapcheck -family linear -t 3 -alpha 1 -ell 4 -trials 20 -seed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"congestlb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gapcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("gapcheck", flag.ContinueOnError)
	family := fs.String("family", "linear", "family: linear or quadratic")
	t := fs.Int("t", 3, "number of players")
	alpha := fs.Int("alpha", 1, "code message length")
	ell := fs.Int("ell", 4, "code distance")
	trials := fs.Int("trials", 10, "random instances per case")
	seed := fs.Int64("seed", 7, "random seed")
	density := fs.Float64("density", 0.4, "density of extra 1 bits")
	if err := fs.Parse(args); err != nil {
		return err
	}

	lab, err := congestlb.New()
	if err != nil {
		return err
	}
	defer lab.Close()
	ctx := context.Background()

	p := congestlb.Params{T: *t, Alpha: *alpha, Ell: *ell}
	var fam congestlb.Family
	switch *family {
	case "linear":
		l, err := congestlb.NewLinear(p)
		if err != nil {
			return err
		}
		fam = l
	case "quadratic":
		q, err := congestlb.NewQuadratic(p)
		if err != nil {
			return err
		}
		fam = q
	default:
		return fmt.Errorf("unknown family %q", *family)
	}
	gap := fam.Gap()
	fmt.Fprintf(w, "family %s: Beta=%d SmallMax=%d γ=%.3f valid=%v\n",
		fam.Name(), gap.Beta, gap.SmallMax, gap.Ratio(), gap.Valid())

	rng := rand.New(rand.NewSource(*seed))
	var minInter, maxDis int64 = 1 << 62, 0
	for trial := 0; trial < *trials; trial++ {
		inter, _, err := congestlb.RandomUniquelyIntersecting(fam.InputBits(), p.T, *density, rng)
		if err != nil {
			return err
		}
		optI, err := lab.VerifyGap(ctx, fam, inter)
		if err != nil {
			return fmt.Errorf("trial %d intersecting: %w", trial, err)
		}
		if optI < minInter {
			minInter = optI
		}

		dis, err := congestlb.RandomPairwiseDisjoint(fam.InputBits(), p.T, *density, rng)
		if err != nil {
			return err
		}
		optD, err := lab.VerifyGap(ctx, fam, dis)
		if err != nil {
			return fmt.Errorf("trial %d disjoint: %w", trial, err)
		}
		if optD > maxDis {
			maxDis = optD
		}
		fmt.Fprintf(w, "trial %2d: intersecting OPT=%d (≥%d ok)  disjoint OPT=%d (≤%d ok)\n",
			trial, optI, gap.Beta, optD, gap.SmallMax)
	}
	fmt.Fprintf(w, "summary over %d trials: min intersecting OPT=%d, max disjoint OPT=%d — gap verified\n",
		*trials, minInter, maxDis)
	return nil
}
