package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestGapcheckLinear(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-family", "linear", "-t", "2", "-alpha", "1", "-ell", "3",
		"-trials", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "gap verified") {
		t.Fatalf("missing verification summary:\n%s", out)
	}
	if strings.Count(out, ": intersecting OPT=") != 3 {
		t.Fatalf("expected 3 trial lines:\n%s", out)
	}
}

func TestGapcheckQuadratic(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-family", "quadratic", "-t", "2", "-alpha", "1", "-ell", "2",
		"-trials", "2"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "gap verified") {
		t.Fatal("quadratic gapcheck did not verify")
	}
}

func TestGapcheckErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-family", "bogus"},
		{"-t", "0"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}
