// Command lbgen builds a lower-bound graph instance and reports its
// structure, optionally emitting Graphviz DOT.
//
// Usage:
//
//	lbgen -family linear -t 3 -alpha 1 -ell 4 -case intersecting -seed 1 [-dot] [-solve]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"congestlb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lbgen:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("lbgen", flag.ContinueOnError)
	family := fs.String("family", "linear", "family: linear or quadratic")
	t := fs.Int("t", 2, "number of players t >= 2")
	alpha := fs.Int("alpha", 1, "code message length α >= 1")
	ell := fs.Int("ell", 3, "code distance ℓ >= 1")
	inputCase := fs.String("case", "intersecting", "input case: intersecting, disjoint or fixed")
	seed := fs.Int64("seed", 1, "random seed for the input strings")
	density := fs.Float64("density", 0.3, "density of extra 1 bits in the inputs")
	dot := fs.Bool("dot", false, "emit Graphviz DOT of the built instance")
	solve := fs.Bool("solve", false, "solve MaxIS exactly and report the optimum")
	if err := fs.Parse(args); err != nil {
		return err
	}

	p := congestlb.Params{T: *t, Alpha: *alpha, Ell: *ell}
	var fam congestlb.Family
	switch *family {
	case "linear":
		l, err := congestlb.NewLinear(p)
		if err != nil {
			return err
		}
		fam = l
	case "quadratic":
		q, err := congestlb.NewQuadratic(p)
		if err != nil {
			return err
		}
		fam = q
	default:
		return fmt.Errorf("unknown family %q", *family)
	}

	rng := rand.New(rand.NewSource(*seed))
	var in congestlb.Inputs
	var err error
	switch *inputCase {
	case "intersecting":
		in, _, err = congestlb.RandomUniquelyIntersecting(fam.InputBits(), p.T, *density, rng)
	case "disjoint":
		in, err = congestlb.RandomPairwiseDisjoint(fam.InputBits(), p.T, *density, rng)
	case "fixed":
		in, err = congestlb.RandomPairwiseDisjoint(fam.InputBits(), p.T, 0, rng) // all-zeros
	default:
		return fmt.Errorf("unknown case %q", *inputCase)
	}
	if err != nil {
		return err
	}

	inst, err := congestlb.BuildInstance(fam, in)
	if err != nil {
		return err
	}
	g, part := inst.Graph, inst.Partition
	gap := fam.Gap()

	fmt.Fprintf(w, "family:      %s\n", fam.Name())
	fmt.Fprintf(w, "params:      %s\n", p)
	fmt.Fprintf(w, "input bits:  %d per player (case %s)\n", fam.InputBits(), *inputCase)
	fmt.Fprintf(w, "nodes:       %d\n", g.N())
	fmt.Fprintf(w, "edges:       %d\n", g.M())
	fmt.Fprintf(w, "max degree:  %d\n", g.MaxDegree())
	fmt.Fprintf(w, "cut size:    %d\n", part.CutSize(g))
	fmt.Fprintf(w, "gap:         Beta=%d SmallMax=%d (γ=%.3f, valid=%v)\n",
		gap.Beta, gap.SmallMax, gap.Ratio(), gap.Valid())
	fmt.Fprintf(w, "round LB:    %.4g (Corollary 1 with constant 1)\n",
		congestlb.RoundLowerBound(fam.InputBits(), p.T, part.CutSize(g), g.N()))

	if *solve {
		lab, err := congestlb.New()
		if err != nil {
			return err
		}
		defer lab.Close()
		sol, err := lab.ExactMaxIS(context.Background(), inst)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "exact OPT:   %d (|set|=%d)\n", sol.Weight, len(sol.Set))
	}
	if *dot {
		fmt.Fprint(w, g.DOT(fam.Name(), part))
	}
	return nil
}
