package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestLbgenLinear(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-family", "linear", "-t", "2", "-alpha", "1", "-ell", "3",
		"-case", "intersecting", "-solve"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"family:", "nodes:", "cut size:", "exact OPT:", "gap:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLbgenQuadraticDOT(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-family", "quadratic", "-t", "2", "-alpha", "1", "-ell", "2",
		"-case", "disjoint", "-dot"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "graph \"quadratic[") {
		t.Fatalf("DOT output missing:\n%.200s", buf.String())
	}
}

func TestLbgenFixedCase(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-case", "fixed"}, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestLbgenErrors(t *testing.T) {
	tests := [][]string{
		{"-family", "bogus"},
		{"-case", "bogus"},
		{"-t", "1"},
		{"-alpha", "0"},
	}
	for _, args := range tests {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}
