// Command simulate runs the Theorem 5 simulation end to end: it builds a
// lower-bound instance, runs a CONGEST algorithm on it with every
// cut-crossing message charged to a shared blackboard, and prints the full
// accounting report.
//
// Usage:
//
//	simulate -t 2 -alpha 1 -ell 3 -case disjoint -seed 3 [-parallel]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"congestlb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	t := fs.Int("t", 2, "number of players")
	alpha := fs.Int("alpha", 1, "code message length")
	ell := fs.Int("ell", 3, "code distance")
	inputCase := fs.String("case", "intersecting", "input case: intersecting or disjoint")
	seed := fs.Int64("seed", 3, "random seed")
	bandwidth := fs.Int64("bandwidth", 0, "CONGEST bandwidth B in bits (0 = default Θ(log n))")
	parallel := fs.Bool("parallel", false, "use the goroutine-per-node engine")
	if err := fs.Parse(args); err != nil {
		return err
	}

	p := congestlb.Params{T: *t, Alpha: *alpha, Ell: *ell}
	fam, err := congestlb.NewLinear(p)
	if err != nil {
		return err
	}
	if !fam.Gap().Valid() {
		return fmt.Errorf("params %s have a vacuous gap (need ℓ > αt); the decision step would be unsound", p)
	}

	rng := rand.New(rand.NewSource(*seed))
	var in congestlb.Inputs
	switch *inputCase {
	case "intersecting":
		in, _, err = congestlb.RandomUniquelyIntersecting(fam.InputBits(), p.T, 0.3, rng)
	case "disjoint":
		in, err = congestlb.RandomPairwiseDisjoint(fam.InputBits(), p.T, 0.3, rng)
	default:
		return fmt.Errorf("unknown case %q", *inputCase)
	}
	if err != nil {
		return err
	}

	lab, err := congestlb.New()
	if err != nil {
		return err
	}
	defer lab.Close()
	cfg := congestlb.CongestConfig{BandwidthBits: *bandwidth, Seed: *seed, Parallel: *parallel}
	report, err := lab.RunReduction(context.Background(), fam, in, cfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "family:            %s\n", report.Family)
	fmt.Fprintf(w, "players t:         %d\n", report.Players)
	fmt.Fprintf(w, "nodes n:           %d\n", report.N)
	fmt.Fprintf(w, "cut size:          %d\n", report.CutSize)
	fmt.Fprintf(w, "bandwidth B:       %d bits\n", report.Bandwidth)
	fmt.Fprintf(w, "rounds T:          %d\n", report.Rounds)
	fmt.Fprintf(w, "blackboard:        %d writes, %d bits\n", report.BlackboardWrites, report.BlackboardBits)
	fmt.Fprintf(w, "accounting bound:  T·|cut|·B = %d bits\n", report.AccountingBound)
	fmt.Fprintf(w, "accounting holds:  %v\n", report.AccountingHolds())
	fmt.Fprintf(w, "all-edge traffic:  %d bits (for contrast)\n", report.CongestTotalBits)
	fmt.Fprintf(w, "computed OPT:      %d (Beta=%d, SmallMax=%d)\n",
		report.Opt, fam.Gap().Beta, fam.Gap().SmallMax)
	fmt.Fprintf(w, "decision:          pairwise-disjoint=%v, truth=%v, correct=%v\n",
		report.Decision, report.Truth, report.Correct())
	if !report.AccountingHolds() || !report.Correct() {
		return fmt.Errorf("simulation unsound")
	}
	return nil
}
