package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSimulateBothCases(t *testing.T) {
	for _, c := range []string{"intersecting", "disjoint"} {
		var buf bytes.Buffer
		err := run([]string{"-t", "2", "-alpha", "1", "-ell", "3", "-case", c}, &buf)
		if err != nil {
			t.Fatalf("case %s: %v", c, err)
		}
		out := buf.String()
		for _, want := range []string{"accounting holds:  true", "correct=true"} {
			if !strings.Contains(out, want) {
				t.Fatalf("case %s missing %q:\n%s", c, want, out)
			}
		}
	}
}

func TestSimulateParallelEngine(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-t", "2", "-alpha", "1", "-ell", "3", "-case", "disjoint", "-parallel"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSimulateRejectsVacuousGap(t *testing.T) {
	var buf bytes.Buffer
	// ℓ=2, t=2, α=1: ℓ ≤ αt, gap vacuous.
	if err := run([]string{"-t", "2", "-alpha", "1", "-ell", "2"}, &buf); err == nil {
		t.Fatal("vacuous gap accepted")
	}
}

func TestSimulateRejectsBadCase(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-case", "bogus"}, &buf); err == nil {
		t.Fatal("bad case accepted")
	}
}
