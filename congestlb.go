// Package congestlb is a from-scratch, stdlib-only reproduction of
//
//	Beyond Alice and Bob: Improved Inapproximability for
//	Maximum Independent Set in CONGEST
//	Yuval Efron, Ofer Grossman, Seri Khoury — PODC 2020
//
// as a usable Go library. It provides:
//
//   - the CONGEST model simulator (synchronous rounds, Θ(log n)-bit
//     bandwidth, bit-exact accounting) and reference MaxIS algorithms
//     (Luby, deterministic rank-greedy, gossip-and-solve-exactly);
//   - the shared-blackboard multi-party communication model with the
//     promise pairwise disjointness problem;
//   - the paper's two families of lower bound graphs — the linear family
//     of Section 4 and the quadratic family of Section 5 — with their gap
//     predicates, constructive witnesses and the Remark 1 unweighted
//     blow-up;
//   - the reduction machinery: the Theorem 5 simulation that runs any
//     CONGEST algorithm as a blackboard protocol while charging every
//     cut-crossing message, and the Corollary 1 / Theorem 1-2 round
//     lower-bound calculators.
//
// The package is a facade: implementation lives in internal/ packages and
// is re-exported here via type aliases, so the whole library is usable
// through this single import.
//
// # Quick start
//
// The service handle is Lab (see lab.go and docs/api.md): an isolated
// instance of the library's caches, solver configuration and worker pool,
// with context-first methods for everything long-running. Two Labs in one
// process share nothing; cancelling a context stops simulations at round
// boundaries and branch-and-bound solves on their batched step cadence,
// returning the best incumbent with ctx.Err().
//
//	lab, _ := congestlb.New(congestlb.WithSolverWorkers(4))
//	defer lab.Close()
//	p := congestlb.Params{T: 2, Alpha: 1, Ell: 3}
//	fam, _ := congestlb.NewLinear(p)
//	in, _, _ := congestlb.RandomUniquelyIntersecting(fam.InputBits(), p.T, 0.3, rng)
//	report, _ := lab.RunReduction(ctx, fam, in, congestlb.CongestConfig{})
//	fmt.Println(report.Opt, report.AccountingHolds())
//
// The historical package-level entry points (RunReduction, ExactMaxIS,
// the Set*/Shared* configuration globals, …) remain as deprecated
// wrappers over a default Lab backed by the process-wide shared caches.
//
// See examples/ for runnable programs and EXPERIMENTS.md for the
// regenerated paper results.
//
// # Performance
//
// The CONGEST simulator's round loop is (near-)zero-allocation: delivered
// payloads live in a per-round byte arena, inboxes/outboxes are recycled,
// duplicate-send checks use a stamped array, adjacency validation hits the
// graph's bitset rows, and the parallel engine is a persistent worker pool
// over contiguous node ranges (bit-identical to the sequential engine).
// Reference algorithms encode messages into per-program scratch buffers,
// and the gossip/collect baselines rebuild the learned graph label-free
// via graphs.NewWithN/AddNodeID. Exact MaxIS solves are memoised in a
// content-addressed cache (with an optional persistent disk tier) and the
// lower-bound graph constructions in a content-addressed build cache with
// copy-on-return instances; the experiment suite shards both across whole
// experiments and within each experiment's sweep loop over one worker
// pool, with markdown reports byte-identical to sequential runs. Relative
// to the seed implementation this is a 4-4.6× wall-clock speedup and a
// 22-115× allocation reduction on the two heaviest experiments;
// docs/performance.md describes the architecture, the regression
// guard-rails, and how to reproduce the profiles and the BENCH_0001.json
// baseline.
package congestlb

import (
	"context"
	"fmt"
	"math/rand"

	"congestlb/internal/bitvec"
	"congestlb/internal/cc"
	"congestlb/internal/congest"
	"congestlb/internal/congestalg"
	"congestlb/internal/core"
	"congestlb/internal/graphs"
	"congestlb/internal/lbgraph"
	"congestlb/internal/mis"
	"congestlb/internal/mis/cache"
)

// Graph-side types.
type (
	// Graph is a vertex-weighted undirected graph.
	Graph = graphs.Graph
	// NodeID identifies a node within a Graph.
	NodeID = graphs.NodeID
	// Edge is an undirected edge with U < V.
	Edge = graphs.Edge
	// Partition assigns nodes to players (Definition 4's V = ∪̇ V^i).
	Partition = graphs.Partition
)

// Input-side types.
type (
	// Vector is a {0,1}^k input string.
	Vector = bitvec.Vector
	// Inputs is the tuple x̄ = (x^1..x^t).
	Inputs = bitvec.Inputs
	// Matrix addresses a k²-bit string by index pairs, as the quadratic
	// family's inputs are indexed.
	Matrix = bitvec.Matrix
)

// Construction types.
type (
	// Params selects a member of the lower-bound constructions.
	Params = lbgraph.Params
	// LinearFamily is the Section 4 construction {G_x̄} (Theorem 1).
	LinearFamily = lbgraph.Linear
	// QuadraticFamily is the Section 5 construction {F_x̄} (Theorem 2).
	QuadraticFamily = lbgraph.Quadratic
	// BlowupResult is Remark 1's unweighted transform output.
	BlowupResult = lbgraph.BlowupResult
)

// Framework types.
type (
	// Family is a family of lower bound graphs (Definition 4).
	Family = core.Family
	// Instance is a built G_x̄ with partition and clique cover.
	Instance = core.Instance
	// GapPredicate holds the β / γβ thresholds of Definition 6.
	GapPredicate = core.GapPredicate
	// SimulationReport is the outcome of a Theorem 5 simulation run.
	SimulationReport = core.SimulationReport
	// SplitBestReport is the outcome of the Section 1 limitation protocol.
	SplitBestReport = core.SplitBestReport
)

// CONGEST-side types.
type (
	// CongestConfig parameterises a simulation (bandwidth, seed, hooks).
	CongestConfig = congest.Config
	// Network is a bound CONGEST simulation.
	Network = congest.Network
	// NodeProgram is the per-node state machine interface.
	NodeProgram = congest.NodeProgram
	// Message is a single CONGEST message.
	Message = congest.Message
	// NodeInfo is the static per-node knowledge.
	NodeInfo = congest.NodeInfo
	// RunResult is a finished CONGEST run with stats and outputs.
	RunResult = congest.Result
	// BatchStats describes one lockstep batched engine pass
	// (Lab.RunReductionBatch, congest.RunBatch).
	BatchStats = congest.BatchStats
)

// Communication-complexity types.
type (
	// Blackboard is the shared-blackboard transcript with bit accounting.
	Blackboard = cc.Blackboard
	// Protocol computes promise pairwise disjointness over a blackboard.
	Protocol = cc.Protocol
)

// Solver types.
type (
	// Solution is an independent set with its weight.
	Solution = mis.Solution
	// SolverOptions configures the exact MaxIS solver (clique cover, step
	// budget, branch-and-bound worker count).
	SolverOptions = mis.Options
	// SolveCacheStats is a snapshot of the shared solve cache's counters,
	// including the persistent disk tier's.
	SolveCacheStats = cache.Stats
	// SolveSession is a per-caller view of the solve cache with exact
	// traffic attribution and a solver worker default; see NewSolveSession.
	SolveSession = cache.Session
	// BuildCacheStats is a snapshot of the shared lower-bound-graph build
	// cache's counters (lbgraph constructions memoised content-addressed,
	// returned as private deep copies).
	BuildCacheStats = lbgraph.CacheStats
	// BuildSession is a per-caller view of the build cache with exact
	// traffic attribution; see NewBuildSession.
	BuildSession = lbgraph.CacheSession
)

// SetSolverWorkers sets the process-wide branch-and-bound worker default
// used by exact solves that do not pin SolverOptions.Workers, returning
// the previous setting (0 = GOMAXPROCS at solve time). Results are
// deterministic at any worker count.
//
// Deprecated: process-wide configuration cannot isolate concurrent
// workloads. Create a Lab with New(WithSolverWorkers(n)) — or call
// (*Lab).SetSolverWorkers on your own Lab — instead.
func SetSolverWorkers(n int) int { return DefaultLab().SetSolverWorkers(n) }

// SolverWorkers reports the current process-wide worker default (0 =
// GOMAXPROCS at solve time).
//
// Deprecated: use (*Lab).SolverWorkers on your own Lab.
func SolverWorkers() int { return DefaultLab().SolverWorkers() }

// SetSolveCacheDir attaches a persistent on-disk tier to the shared solve
// cache (pass "" to detach): solves of content-identical graphs in later
// processes are served from disk instead of re-running branch-and-bound.
//
// Deprecated: re-pointing the process-wide cache directory mid-run races
// with in-flight sessions on the shared cache. Create a Lab with
// New(WithSolveCacheDir(dir)) — its tier is private and its lifetime is
// the Lab's.
func SetSolveCacheDir(dir string) error { return DefaultLab().SetSolveCacheDir(dir) }

// SharedSolveCacheStats snapshots the shared solve cache's counters.
//
// Deprecated: use (*Lab).SolveCacheStats on your own Lab.
func SharedSolveCacheStats() SolveCacheStats { return DefaultLab().SolveCacheStats() }

// NewSolveSession returns a view of the shared solve cache that counts
// exactly the traffic routed through it and stamps the given solver worker
// count (0 = default) onto its solves. Pass it to the *With program
// constructors and protocol runners for per-caller attribution.
//
// Deprecated: use (*Lab).NewSolveSession on your own Lab, which stamps the
// Lab's worker default and books against the Lab's private cache. (This
// is the one deprecated function that is not a DefaultLab() wrapper: it
// keeps constructing a raw shared-cache session because its explicit
// workers parameter has no Lab equivalent — the Lab's own default is the
// replacement for per-session worker counts.)
func NewSolveSession(workers int) *SolveSession { return cache.NewSession(nil, workers) }

// SharedBuildCacheStats snapshots the shared lower-bound-graph build
// cache's counters. Family Build/BuildFixed calls are memoised there
// content-addressed (construction kind, parameters, codeword table,
// ablation flags) and served as private deep copies, so repeated sweep
// points and cross-experiment reuse skip the Θ(k²)-edge rebuild entirely.
//
// Deprecated: use (*Lab).BuildCacheStats on your own Lab.
func SharedBuildCacheStats() BuildCacheStats { return DefaultLab().BuildCacheStats() }

// SetBuildCacheEnabled switches the shared build cache on or off and
// returns the previous setting. Builds are deterministic, so the cache is
// semantically transparent; disabling exists for A/B measurements.
//
// Deprecated: use New(WithBuildCache(false)) or
// (*Lab).SetBuildCacheEnabled on your own Lab; the process-wide switch
// flips the cache under every caller at once.
func SetBuildCacheEnabled(on bool) bool { return DefaultLab().SetBuildCacheEnabled(on) }

// NewBuildSession returns a view of the shared build cache that counts
// exactly the construction traffic routed through it. Pass it to the
// families' BuildWith/BuildFixedWith methods for per-caller attribution.
//
// Deprecated: use (*Lab).NewBuildSession on your own Lab.
func NewBuildSession() *BuildSession { return DefaultLab().NewBuildSession() }

// NewLinear constructs the Section 4 family for the given parameters.
func NewLinear(p Params) (*LinearFamily, error) { return lbgraph.NewLinear(p) }

// NewQuadratic constructs the Section 5 family for the given parameters.
func NewQuadratic(p Params) (*QuadraticFamily, error) { return lbgraph.NewQuadratic(p) }

// UnweightedLinearFamily is the Remark 1 family: the linear construction
// pushed through the weighted→unweighted blow-up.
type UnweightedLinearFamily = lbgraph.UnweightedLinear

// NewUnweightedLinear constructs the Remark 1 unweighted family.
func NewUnweightedLinear(p Params) (*UnweightedLinearFamily, error) {
	return lbgraph.NewUnweightedLinear(p)
}

// FigureParams returns the ℓ=2, α=1, k=3 preset used in the paper's
// figures.
func FigureParams(t int) Params { return lbgraph.FigureParams(t) }

// ParamsForK realises the paper's asymptotic parameter schedule for a
// target k.
func ParamsForK(k, t int) (Params, error) { return lbgraph.ParamsForK(k, t) }

// SmallestValidLinear returns the smallest ℓ with a separating linear gap
// for given t and α.
func SmallestValidLinear(t, alpha int) Params { return lbgraph.SmallestValidLinear(t, alpha) }

// BuildBase constructs the paper's base graph H (Figure 1) for parameters p.
func BuildBase(p Params) (*Graph, error) { return lbgraph.BuildBase(p) }

// Blowup applies Remark 1's weighted→unweighted transform.
func Blowup(g *Graph, part *Partition) (BlowupResult, error) { return lbgraph.Blowup(g, part) }

// RandomUniquelyIntersecting samples t strings of length k sharing exactly
// one common index (the FALSE case of promise pairwise disjointness).
// density controls extra single-owner 1 bits.
func RandomUniquelyIntersecting(k, t int, density float64, rng *rand.Rand) (Inputs, int, error) {
	return bitvec.RandomUniquelyIntersecting(k, t, bitvec.GenOptions{Density: density}, rng)
}

// RandomPairwiseDisjoint samples t pairwise-disjoint strings of length k
// (the TRUE case).
func RandomPairwiseDisjoint(k, t int, density float64, rng *rand.Rand) (Inputs, error) {
	return bitvec.RandomPairwiseDisjoint(k, t, bitvec.GenOptions{Density: density}, rng)
}

// RandomPromiseInstance samples either case with the given bias toward the
// disjoint one, returning the ground truth.
func RandomPromiseInstance(k, t int, density, disjointBias float64, rng *rand.Rand) (Inputs, bool, error) {
	return bitvec.RandomPromiseInstance(k, t, bitvec.GenOptions{Density: density}, disjointBias, rng)
}

// ExactMaxIS solves an instance exactly using its natural clique cover.
// Repeated solves of content-identical instances are served from the
// shared content-addressed solve cache.
//
// Deprecated: use (*Lab).ExactMaxIS, which takes a context (cancellation
// returns the best incumbent with ctx.Err()) and a private cache.
func ExactMaxIS(inst Instance) (Solution, error) {
	return DefaultLab().ExactMaxIS(context.Background(), inst)
}

// ExactMaxISGraph solves an arbitrary graph exactly (greedy clique cover),
// through the shared content-addressed solve cache.
//
// Deprecated: use (*Lab).ExactMaxISGraph.
func ExactMaxISGraph(g *Graph) (Solution, error) {
	return DefaultLab().ExactMaxISGraph(context.Background(), g)
}

// VerifyIndependent checks a set is independent and returns its weight.
func VerifyIndependent(g *Graph, set []NodeID) (int64, error) { return mis.Verify(g, set) }

// RunReduction executes the Theorem 5 simulation with the standard
// gossip-and-solve-exactly CONGEST algorithm: it builds G_x̄, runs the
// algorithm, charges every cut-crossing message to a blackboard, decides
// promise pairwise disjointness via the gap predicate and reports the full
// accounting.
//
// Deprecated: use (*Lab).RunReduction, which takes a context (cancelling
// it stops the round loop between rounds) and runs through the Lab's
// private caches.
func RunReduction(fam Family, in Inputs, cfg CongestConfig) (SimulationReport, error) {
	return DefaultLab().RunReduction(context.Background(), fam, in, cfg)
}

// Simulate is RunReduction with a caller-chosen CONGEST algorithm and
// output interpretation.
//
// Deprecated: use (*Lab).Simulate.
func Simulate(fam Family, in Inputs, factory core.ProgramFactory, extract core.OptExtractor, cfg CongestConfig) (SimulationReport, error) {
	return DefaultLab().Simulate(context.Background(), fam, in, factory, extract, cfg)
}

// VerifyGap builds the instance for in, solves it exactly, and checks the
// correct side of the family's gap predicate, returning the optimum. Only
// the optimum value is consumed, so the solve is flagged WeightOnly — the
// parallel engine skips its canonicalisation tail.
//
// Deprecated: use (*Lab).VerifyGap.
func VerifyGap(fam Family, in Inputs) (int64, error) {
	return DefaultLab().VerifyGap(context.Background(), fam, in)
}

// AuditLocality mechanically checks Definition 4's locality condition on
// two input tuples differing only in player i's string.
func AuditLocality(fam Family, a, b Inputs, i int) error { return core.AuditLocality(fam, a, b, i) }

// SplitBest runs the Section 1 limitation protocol: every player solves
// its own part locally and announces one value, achieving a
// 1/t-approximation for t·O(log n) bits.
//
// Deprecated: use (*Lab).SplitBest.
func SplitBest(inst Instance) (SplitBestReport, error) {
	return DefaultLab().SplitBest(context.Background(), inst)
}

// NewCongestNetwork binds node programs to a graph under a config.
func NewCongestNetwork(g *Graph, programs []NodeProgram, cfg CongestConfig) (*Network, error) {
	return congest.NewNetwork(g, programs, cfg)
}

// LubyPrograms returns the randomised maximal-IS programs for an n-node
// network.
func LubyPrograms(n int) []NodeProgram { return congestalg.NewLubyPrograms(n) }

// RankGreedyPrograms returns the deterministic weighted-greedy programs.
func RankGreedyPrograms(n int) []NodeProgram { return congestalg.NewRankGreedyPrograms(n) }

// GossipExactPrograms returns the learn-everything-and-solve programs.
func GossipExactPrograms(n int) []NodeProgram { return congestalg.NewGossipExactPrograms(n) }

// LeaderBFSPrograms returns the min-ID leader election + BFS tree programs.
func LeaderBFSPrograms(n int) []NodeProgram { return congestalg.NewLeaderBFSPrograms(n) }

// CollectSolvePrograms returns the BFS-tree convergecast exact-MaxIS
// programs (the textbook universal O(n²)-round algorithm).
func CollectSolvePrograms(n int) []NodeProgram { return congestalg.NewCollectSolvePrograms(n) }

// BFSResult is the per-node output of LeaderBFSPrograms.
type BFSResult = congestalg.BFSResult

// BFSResults extracts the typed outputs of a LeaderBFS run.
func BFSResults(result RunResult) ([]BFSResult, error) { return congestalg.BFSResults(result) }

// Tracer collects per-round traffic statistics; pass its Hook in a
// CongestConfig.
type Tracer = congest.Tracer

// MembershipSet extracts the chosen set from a Luby/RankGreedy run.
func MembershipSet(result RunResult) []NodeID { return congestalg.MembershipSet(result) }

// PromiseDisjointnessLowerBound is Theorem 3's Ω(k/(t log t)) formula,
// evaluated with constant 1.
func PromiseDisjointnessLowerBound(k, t int) float64 { return cc.LowerBoundBits(k, t) }

// RoundLowerBound is Corollary 1: CC_f(k,t)/(|cut|·log₂ n).
func RoundLowerBound(k, t, cut, n int) float64 { return core.RoundLowerBound(k, t, cut, n) }

// Theorem1Bound evaluates Ω(n/log³n) with constant 1.
func Theorem1Bound(n float64) float64 { return core.Theorem1Bound(n) }

// Theorem2Bound evaluates Ω(n²/log³n) with constant 1.
func Theorem2Bound(n float64) float64 { return core.Theorem2Bound(n) }

// PlayersForEpsilon returns the paper's t for a target ε (Lemmas 2-3).
func PlayersForEpsilon(epsilon float64, quadratic bool) int {
	return core.PlayersForEpsilon(epsilon, quadratic)
}

// Version identifies the library release.
const Version = "1.0.0"

// BuildInstance is a convenience that constructs and validates an instance
// for a family and input, with a descriptive error context.
func BuildInstance(fam Family, in Inputs) (Instance, error) {
	inst, err := fam.Build(in)
	if err != nil {
		return Instance{}, fmt.Errorf("congestlb: building %s: %w", fam.Name(), err)
	}
	if err := inst.Graph.Validate(); err != nil {
		return Instance{}, fmt.Errorf("congestlb: built graph invalid: %w", err)
	}
	return inst, nil
}
