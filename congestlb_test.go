package congestlb_test

import (
	"context"
	"math/rand"
	"testing"

	"congestlb"
)

// newTestLab returns a fresh isolated Lab, closed with the test.
func newTestLab(t *testing.T, opts ...congestlb.Option) *congestlb.Lab {
	t.Helper()
	lab, err := congestlb.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lab.Close() })
	return lab
}

// These tests exercise the public facade end to end, doubling as the
// library's integration suite.

func TestPublicQuickstartFlow(t *testing.T) {
	p := congestlb.Params{T: 2, Alpha: 1, Ell: 3}
	fam, err := congestlb.NewLinear(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))

	in, _, err := congestlb.RandomUniquelyIntersecting(fam.InputBits(), p.T, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := congestlb.BuildInstance(fam, in)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Graph.N() != p.LinearN() {
		t.Fatalf("instance has %d nodes, want %d", inst.Graph.N(), p.LinearN())
	}
	sol, err := newTestLab(t).ExactMaxIS(context.Background(), inst)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Weight < fam.Gap().Beta {
		t.Fatalf("intersecting OPT %d below Beta %d", sol.Weight, fam.Gap().Beta)
	}
	if _, err := congestlb.VerifyIndependent(inst.Graph, sol.Set); err != nil {
		t.Fatal(err)
	}
}

func TestPublicReductionFlow(t *testing.T) {
	p := congestlb.Params{T: 2, Alpha: 1, Ell: 3}
	fam, err := congestlb.NewLinear(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	in, err := congestlb.RandomPairwiseDisjoint(fam.InputBits(), p.T, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	report, err := newTestLab(t).RunReduction(context.Background(), fam, in, congestlb.CongestConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Correct() || !report.AccountingHolds() {
		t.Fatalf("reduction run unsound: %+v", report)
	}
	lower := congestlb.RoundLowerBound(fam.InputBits(), p.T, report.CutSize, report.N)
	if lower <= 0 {
		t.Fatalf("round lower bound %f not positive", lower)
	}
}

func TestPublicGapVerification(t *testing.T) {
	p := congestlb.SmallestValidLinear(3, 1)
	fam, err := congestlb.NewLinear(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	in, truth, err := congestlb.RandomPromiseInstance(fam.InputBits(), p.T, 0.4, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := newTestLab(t).VerifyGap(context.Background(), fam, in)
	if err != nil {
		t.Fatal(err)
	}
	gap := fam.Gap()
	if truth && opt > gap.SmallMax {
		t.Fatalf("disjoint OPT %d above SmallMax", opt)
	}
	if !truth && opt < gap.Beta {
		t.Fatalf("intersecting OPT %d below Beta", opt)
	}
}

func TestPublicQuadraticFlow(t *testing.T) {
	p := congestlb.FigureParams(2)
	fam, err := congestlb.NewQuadratic(p)
	if err != nil {
		t.Fatal(err)
	}
	if fam.InputBits() != p.K()*p.K() {
		t.Fatalf("quadratic InputBits = %d, want k²", fam.InputBits())
	}
	rng := rand.New(rand.NewSource(4))
	in, _, err := congestlb.RandomUniquelyIntersecting(fam.InputBits(), p.T, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := congestlb.BuildInstance(fam, in)
	if err != nil {
		t.Fatal(err)
	}
	witness, err := fam.WitnessLarge(in, inst)
	if err != nil {
		t.Fatal(err)
	}
	w, err := congestlb.VerifyIndependent(inst.Graph, witness)
	if err != nil {
		t.Fatal(err)
	}
	if w < p.QuadraticBeta() {
		t.Fatalf("witness weight %d below Beta %d", w, p.QuadraticBeta())
	}
}

func TestPublicBlowupFlow(t *testing.T) {
	p := congestlb.FigureParams(2)
	fam, err := congestlb.NewLinear(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	in, _, err := congestlb.RandomUniquelyIntersecting(fam.InputBits(), p.T, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := congestlb.BuildInstance(fam, in)
	if err != nil {
		t.Fatal(err)
	}
	res, err := congestlb.Blowup(inst.Graph, inst.Partition)
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.Graph.N()) != inst.Graph.TotalWeight() {
		t.Fatalf("blow-up has %d nodes, want total weight %d", res.Graph.N(), inst.Graph.TotalWeight())
	}
}

func TestPublicCongestAlgorithms(t *testing.T) {
	p := congestlb.FigureParams(2)
	fam, err := congestlb.NewLinear(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	in, _, err := congestlb.RandomUniquelyIntersecting(fam.InputBits(), p.T, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := congestlb.BuildInstance(fam, in)
	if err != nil {
		t.Fatal(err)
	}
	n := inst.Graph.N()
	for _, tc := range []struct {
		name     string
		programs []congestlb.NodeProgram
	}{
		{name: "luby", programs: congestlb.LubyPrograms(n)},
		{name: "rank-greedy", programs: congestlb.RankGreedyPrograms(n)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net, err := congestlb.NewCongestNetwork(inst.Graph, tc.programs, congestlb.CongestConfig{Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			result, err := net.Run()
			if err != nil {
				t.Fatal(err)
			}
			set := congestlb.MembershipSet(result)
			if _, err := congestlb.VerifyIndependent(inst.Graph, set); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPublicCollectSolveAndTracer(t *testing.T) {
	p := congestlb.FigureParams(2)
	fam, err := congestlb.NewLinear(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	in, _, err := congestlb.RandomUniquelyIntersecting(fam.InputBits(), p.T, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := congestlb.BuildInstance(fam, in)
	if err != nil {
		t.Fatal(err)
	}
	var tr congestlb.Tracer
	net, err := congestlb.NewCongestNetwork(inst.Graph,
		congestlb.CollectSolvePrograms(inst.Graph.N()),
		congestlb.CongestConfig{Hook: tr.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	result, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	set := congestlb.MembershipSet(result)
	weight, err := congestlb.VerifyIndependent(inst.Graph, set)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := newTestLab(t).ExactMaxIS(context.Background(), inst)
	if err != nil {
		t.Fatal(err)
	}
	if weight != opt.Weight {
		t.Fatalf("collect-solve weight %d, optimum %d", weight, opt.Weight)
	}
	if _, bits := tr.Total(); bits != result.Stats.TotalBits {
		t.Fatal("tracer disagrees with engine stats")
	}
}

func TestPublicSplitBest(t *testing.T) {
	p := congestlb.Params{T: 2, Alpha: 1, Ell: 3}
	fam, err := congestlb.NewLinear(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	in, _, err := congestlb.RandomUniquelyIntersecting(fam.InputBits(), p.T, 0.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := congestlb.BuildInstance(fam, in)
	if err != nil {
		t.Fatal(err)
	}
	report, err := newTestLab(t).SplitBest(context.Background(), inst)
	if err != nil {
		t.Fatal(err)
	}
	if report.Ratio() < 0.5 {
		t.Fatalf("two-party split-best ratio %f below 1/2", report.Ratio())
	}
}

func TestPublicLeaderBFS(t *testing.T) {
	p := congestlb.FigureParams(2)
	fam, err := congestlb.NewLinear(p)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := fam.BuildFixed()
	if err != nil {
		t.Fatal(err)
	}
	net, err := congestlb.NewCongestNetwork(inst.Graph,
		congestlb.LeaderBFSPrograms(inst.Graph.N()), congestlb.CongestConfig{})
	if err != nil {
		t.Fatal(err)
	}
	result, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	bfs, err := congestlb.BFSResults(result)
	if err != nil {
		t.Fatal(err)
	}
	for u, r := range bfs {
		if r.Leader != 0 {
			t.Fatalf("node %d elected %d", u, r.Leader)
		}
	}
}

func TestPublicBounds(t *testing.T) {
	if congestlb.Theorem1Bound(1<<20) <= 0 || congestlb.Theorem2Bound(1<<20) <= 0 {
		t.Fatal("bounds must be positive for large n")
	}
	if congestlb.PromiseDisjointnessLowerBound(1000, 4) != 1000.0/8.0 {
		t.Fatal("CC bound formula wrong")
	}
	if congestlb.PlayersForEpsilon(0.5, false) != 4 {
		t.Fatal("PlayersForEpsilon wrong")
	}
	if _, err := congestlb.ParamsForK(256, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := congestlb.BuildBase(congestlb.FigureParams(2)); err != nil {
		t.Fatal(err)
	}
}
