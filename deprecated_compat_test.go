package congestlb_test

// Back-compat coverage for the deprecated package-level wrappers: until
// they are removed they must keep behaving exactly like the default Lab
// they now delegate to. This file is the one sanctioned caller of the
// deprecated API (see deprecationExempt in deprecation_test.go).

import (
	"math/rand"
	"testing"

	"congestlb"
)

// TestDeprecatedWrappersDelegateToDefaultLab pins the wrappers to the
// default Lab: configuration set through the old globals is visible
// through the Lab handle and vice versa, and the old entry points still
// produce sound results.
func TestDeprecatedWrappersDelegateToDefaultLab(t *testing.T) {
	prev := congestlb.SetSolverWorkers(3)
	defer congestlb.SetSolverWorkers(prev)
	if got := congestlb.DefaultLab().SolverWorkers(); got != 3 {
		t.Fatalf("default Lab did not observe deprecated SetSolverWorkers: %d", got)
	}
	if got := congestlb.SolverWorkers(); got != 3 {
		t.Fatalf("deprecated accessor: %d", got)
	}
	if prevLab := congestlb.DefaultLab().SetSolverWorkers(1); prevLab != 3 {
		t.Fatalf("Lab setter returned %d, want 3", prevLab)
	}
	if got := congestlb.SolverWorkers(); got != 1 {
		t.Fatalf("deprecated accessor did not observe Lab setter: %d", got)
	}

	prevBuild := congestlb.SetBuildCacheEnabled(true)
	defer congestlb.SetBuildCacheEnabled(prevBuild)

	p := congestlb.Params{T: 2, Alpha: 1, Ell: 3}
	fam, err := congestlb.NewLinear(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))
	in, _, err := congestlb.RandomUniquelyIntersecting(fam.InputBits(), p.T, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := congestlb.BuildInstance(fam, in)
	if err != nil {
		t.Fatal(err)
	}

	before := congestlb.SharedSolveCacheStats()
	sol, err := congestlb.ExactMaxIS(inst)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Weight < fam.Gap().Beta {
		t.Fatalf("deprecated ExactMaxIS unsound: OPT %d < Beta %d", sol.Weight, fam.Gap().Beta)
	}
	after := congestlb.SharedSolveCacheStats()
	if after.Hits+after.Misses == before.Hits+before.Misses {
		t.Fatal("deprecated ExactMaxIS bypassed the shared cache")
	}
	if labStats := congestlb.DefaultLab().SolveCacheStats(); labStats != after {
		t.Fatalf("default Lab stats %+v diverge from deprecated accessor %+v", labStats, after)
	}

	if opt, err := congestlb.VerifyGap(fam, in); err != nil || opt != sol.Weight {
		t.Fatalf("deprecated VerifyGap: opt=%d err=%v, want %d", opt, err, sol.Weight)
	}
	report, err := congestlb.RunReduction(fam, in, congestlb.CongestConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Correct() || !report.AccountingHolds() {
		t.Fatalf("deprecated RunReduction unsound: %+v", report)
	}
	split, err := congestlb.SplitBest(inst)
	if err != nil {
		t.Fatal(err)
	}
	if split.Opt != sol.Weight {
		t.Fatalf("deprecated SplitBest OPT %d, want %d", split.Opt, sol.Weight)
	}
	if sess := congestlb.NewSolveSession(2); sess == nil {
		t.Fatal("deprecated NewSolveSession returned nil")
	}
	if sess := congestlb.NewBuildSession(); sess == nil {
		t.Fatal("deprecated NewBuildSession returned nil")
	}
	if st := congestlb.SharedBuildCacheStats(); st != congestlb.DefaultLab().BuildCacheStats() {
		t.Fatal("deprecated build-cache stats diverge from the default Lab's")
	}
}
