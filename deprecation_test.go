package congestlb_test

// The deprecation-usage gate (run in CI next to go vet): no code in this
// repository outside the back-compat wrappers themselves — not the cmd/
// binaries, not the examples, not these integration tests — may call the
// deprecated package-level congestlb functions. The deprecated set is not
// hardcoded: it is recovered from the facade sources by their
// "Deprecated:" doc comments, so marking a new function deprecated
// automatically extends the gate. (internal/ packages cannot import the
// facade at all — that would be an import cycle — so scanning cmd/,
// examples/ and the root test files covers every possible caller.)

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// deprecationExempt lists files allowed to call deprecated functions:
// the dedicated back-compat test keeps the wrappers' behaviour covered
// until they are removed.
var deprecationExempt = map[string]bool{
	"deprecated_compat_test.go": true,
}

// deprecatedFacadeFuncs parses the root package sources and returns every
// exported function marked "Deprecated:".
func deprecatedFacadeFuncs(t *testing.T) map[string]bool {
	t.Helper()
	fset := token.NewFileSet()
	deprecated := map[string]bool{}
	matches, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range matches {
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !fd.Name.IsExported() || fd.Doc == nil {
				continue
			}
			if strings.Contains(fd.Doc.Text(), "Deprecated:") {
				deprecated[fd.Name.Name] = true
			}
		}
	}
	if len(deprecated) == 0 {
		t.Fatal("no deprecated facade functions found — the scanner is broken")
	}
	return deprecated
}

// TestNoDeprecatedGlobalUsage walks cmd/, examples/ and the root test
// files and fails on any qualified call of a deprecated facade function.
func TestNoDeprecatedGlobalUsage(t *testing.T) {
	deprecated := deprecatedFacadeFuncs(t)
	var files []string
	for _, dir := range []string{"cmd", "examples"} {
		if err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".go") {
				files = append(files, path)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	rootTests, err := filepath.Glob("*_test.go")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, rootTests...)

	fset := token.NewFileSet()
	var violations []string
	for _, path := range files {
		if deprecationExempt[filepath.Base(path)] {
			continue
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		// Resolve the local name the congestlb import is bound to (it can
		// be aliased); files that do not import the facade cannot violate.
		pkgName := ""
		for _, imp := range f.Imports {
			ipath, _ := strconv.Unquote(imp.Path.Value)
			if ipath != "congestlb" {
				continue
			}
			pkgName = "congestlb"
			if imp.Name != nil {
				pkgName = imp.Name.Name
			}
		}
		if pkgName == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok || ident.Name != pkgName || !deprecated[sel.Sel.Name] {
				return true
			}
			violations = append(violations, fmt.Sprintf("%s: %s.%s",
				fset.Position(sel.Pos()), pkgName, sel.Sel.Name))
			return true
		})
	}
	if len(violations) > 0 {
		t.Fatalf("deprecated congestlb globals still in use — migrate to the Lab API:\n  %s",
			strings.Join(violations, "\n  "))
	}
}
