// Algorithms: drive the CONGEST simulator directly — leader election +
// BFS, Luby's maximal independent set, and the deterministic weighted
// greedy — on a hard instance, with per-round traffic tracing.
//
// Run with:
//
//	go run ./examples/algorithms
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"congestlb"
)

func main() {
	p := congestlb.Params{T: 3, Alpha: 1, Ell: 4}
	fam, err := congestlb.NewLinear(p)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	in, _, err := congestlb.RandomUniquelyIntersecting(fam.InputBits(), p.T, 0.4, rng)
	if err != nil {
		log.Fatal(err)
	}
	inst, err := congestlb.BuildInstance(fam, in)
	if err != nil {
		log.Fatal(err)
	}
	g := inst.Graph
	n := g.N()
	fmt.Printf("network: %s — n=%d, m=%d, Δ=%d, diameter=%d\n\n",
		fam.Name(), n, g.M(), g.MaxDegree(), g.Diameter())

	// Leader election + BFS tree, with a tracer watching the traffic.
	var tr congestlb.Tracer
	net, err := congestlb.NewCongestNetwork(g, congestlb.LeaderBFSPrograms(n),
		congestlb.CongestConfig{Hook: tr.Hook()})
	if err != nil {
		log.Fatal(err)
	}
	result, err := net.Run()
	if err != nil {
		log.Fatal(err)
	}
	bfs, err := congestlb.BFSResults(result)
	if err != nil {
		log.Fatal(err)
	}
	maxDist := 0
	for _, r := range bfs {
		if r.Dist > maxDist {
			maxDist = r.Dist
		}
	}
	peak := tr.PeakRound()
	fmt.Printf("LeaderBFS: leader=%d, eccentricity=%d, rounds=%d\n",
		bfs[0].Leader, maxDist, result.Stats.Rounds)
	fmt.Printf("  peak traffic: round %d with %d messages / %d bits\n\n",
		peak.Round, peak.Messages, peak.Bits)

	// Luby's MIS (randomised).
	net, err = congestlb.NewCongestNetwork(g, congestlb.LubyPrograms(n),
		congestlb.CongestConfig{Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	result, err = net.Run()
	if err != nil {
		log.Fatal(err)
	}
	set := congestlb.MembershipSet(result)
	lubyWeight, err := congestlb.VerifyIndependent(g, set)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Luby MIS: |set|=%d, weight=%d, rounds=%d\n", len(set), lubyWeight, result.Stats.Rounds)

	// Deterministic weighted greedy.
	net, err = congestlb.NewCongestNetwork(g, congestlb.RankGreedyPrograms(n),
		congestlb.CongestConfig{})
	if err != nil {
		log.Fatal(err)
	}
	result, err = net.Run()
	if err != nil {
		log.Fatal(err)
	}
	set = congestlb.MembershipSet(result)
	greedyWeight, err := congestlb.VerifyIndependent(g, set)
	if err != nil {
		log.Fatal(err)
	}
	lab, err := congestlb.New()
	if err != nil {
		log.Fatal(err)
	}
	defer lab.Close()
	opt, err := lab.ExactMaxIS(context.Background(), inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RankGreedy: |set|=%d, weight=%d, rounds=%d\n", len(set), greedyWeight, result.Stats.Rounds)
	fmt.Printf("\nexact OPT=%d — Luby reaches %.0f%%, greedy %.0f%%; closing the rest of the gap\n",
		opt.Weight, 100*float64(lubyWeight)/float64(opt.Weight), 100*float64(greedyWeight)/float64(opt.Weight))
	fmt.Println("beyond (1/2+ε) is exactly what Theorem 1 proves needs Ω(n/log³n) rounds.")
}
