// Figures: rebuild the exact objects drawn in the paper's Figures 1-6 and
// print their structure, including Graphviz DOT for the base graph.
//
// Run with:
//
//	go run ./examples/figures
package main

import (
	"fmt"
	"log"

	"congestlb"
)

func main() {
	p := congestlb.FigureParams(2)

	// Figure 1: the base graph H with ℓ=2, α=1, k=3.
	base, err := congestlb.BuildBase(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 1 — base graph H: %d nodes, %d edges\n", base.N(), base.M())
	fam, err := congestlb.NewLinear(p)
	if err != nil {
		log.Fatal(err)
	}
	for m := 0; m < p.K(); m++ {
		fmt.Printf("  C(%d) = %v\n", m+1, fam.Codeword(m))
	}
	v1, _ := base.NodeByLabel("v[i=1,m=1]")
	fmt.Printf("  v1 neighbours (%d):", base.Degree(v1))
	for _, u := range base.Neighbors(v1) {
		fmt.Printf(" %s", base.Label(u))
	}
	fmt.Println()

	// Figure 2: inter-copy wiring.
	inst, err := fam.BuildFixed()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFigure 2 — wiring between C¹_1 and C²_1 (edge iff r≠s):\n")
	for r := 0; r < p.Q(); r++ {
		fmt.Printf("  σ¹(1,%d):", r+1)
		for s := 0; s < p.Q(); s++ {
			if inst.Graph.HasEdge(fam.SigmaNode(0, 0, r), fam.SigmaNode(1, 0, s)) {
				fmt.Printf(" σ²(1,%d)", s+1)
			}
		}
		fmt.Println()
	}

	// Figure 3: the t=3 construction and its highlighted independent set.
	p3 := congestlb.FigureParams(3)
	fam3, err := congestlb.NewLinear(p3)
	if err != nil {
		log.Fatal(err)
	}
	inst3, err := fam3.BuildFixed()
	if err != nil {
		log.Fatal(err)
	}
	var highlighted []congestlb.NodeID
	for i := 0; i < 3; i++ {
		highlighted = append(highlighted, fam3.ANode(i, 0))
		highlighted = append(highlighted, fam3.CodeNodes(i, 0)...)
	}
	w, err := congestlb.VerifyIndependent(inst3.Graph, highlighted)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFigure 3 — t=3: {v^i_1} ∪ Code^i_1 over all i is independent (weight %d in the fixed graph)\n", w)

	// Figures 4-6: the quadratic construction.
	quad, err := congestlb.NewQuadratic(p)
	if err != nil {
		log.Fatal(err)
	}
	instQ, err := quad.BuildFixed()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFigures 4-5 — quadratic F for t=2: %d nodes, %d fixed edges, cut %d\n",
		instQ.Graph.N(), instQ.Graph.M(), instQ.Partition.CutSize(instQ.Graph))
	fmt.Printf("  A-clique nodes carry fixed weight ℓ=%d; inputs are k²=%d bits per player\n",
		p.Ell, quad.InputBits())
	fmt.Printf("  (Figure 6: each 0 bit x^i_(m1,m2) adds the edge {v^(i,1)_m1, v^(i,2)_m2})\n")

	// DOT export of the base graph, ready for `dot -Tsvg`.
	fmt.Printf("\n--- Graphviz DOT of H (Figure 1) ---\n%s", base.DOT("H", nil))
}
