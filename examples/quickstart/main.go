// Quickstart: create a Lab, build a lower-bound instance, solve it
// exactly, and see the gap predicate separate the two promise cases.
//
// The Lab is the library's service handle: it owns a private solve cache,
// build cache and solver configuration (congestlb.New takes functional
// options for all of them), and every long-running method takes a
// context.Context for cancellation. Two Labs in one process share nothing.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"congestlb"
)

func main() {
	ctx := context.Background()
	lab, err := congestlb.New() // e.g. congestlb.WithSolverWorkers(4), congestlb.WithSolveCacheDir(".solvecache")
	if err != nil {
		log.Fatal(err)
	}
	defer lab.Close()

	// t=2 players, α=1, ℓ=3: the smallest linear construction whose gap
	// predicate genuinely separates (ℓ > αt). k=4, n=48.
	p := congestlb.Params{T: 2, Alpha: 1, Ell: 3}
	fam, err := congestlb.NewLinear(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Family %s\n", fam.Name())
	fmt.Printf("  players t=%d, input bits k=%d, nodes n=%d\n", p.T, fam.InputBits(), p.LinearN())
	gap := fam.Gap()
	fmt.Printf("  gap predicate: intersecting ⇒ OPT ≥ %d; disjoint ⇒ OPT ≤ %d (γ=%.3f)\n\n",
		gap.Beta, gap.SmallMax, gap.Ratio())

	rng := rand.New(rand.NewSource(42))

	// Case 1: uniquely intersecting input strings → large independent set.
	inter, m, err := congestlb.RandomUniquelyIntersecting(fam.InputBits(), p.T, 0.3, rng)
	if err != nil {
		log.Fatal(err)
	}
	instI, err := lab.BuildInstance(fam, inter)
	if err != nil {
		log.Fatal(err)
	}
	solI, err := lab.ExactMaxIS(ctx, instI)
	if err != nil {
		log.Fatal(err)
	}
	witness, err := fam.WitnessLarge(inter, instI)
	if err != nil {
		log.Fatal(err)
	}
	wWeight, err := congestlb.VerifyIndependent(instI.Graph, witness)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uniquely intersecting at index %d:\n", m+1)
	fmt.Printf("  exact OPT = %d (≥ Beta %d ✓), Property-1 witness weight = %d\n\n",
		solI.Weight, gap.Beta, wWeight)

	// Case 2: pairwise disjoint input strings → small independent set.
	dis, err := congestlb.RandomPairwiseDisjoint(fam.InputBits(), p.T, 0.3, rng)
	if err != nil {
		log.Fatal(err)
	}
	instD, err := lab.BuildInstance(fam, dis)
	if err != nil {
		log.Fatal(err)
	}
	solD, err := lab.ExactMaxIS(ctx, instD)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pairwise disjoint:\n")
	fmt.Printf("  exact OPT = %d (≤ SmallMax %d ✓)\n\n", solD.Weight, gap.SmallMax)

	// The punchline: any CONGEST algorithm distinguishing the two cases
	// solves promise pairwise disjointness, so Corollary 1 lower-bounds
	// its rounds.
	cut := instD.Partition.CutSize(instD.Graph)
	fmt.Printf("Corollary 1: rounds ≥ CC(k,t)/(|cut|·log n) = %.4g (cut=%d)\n",
		congestlb.RoundLowerBound(fam.InputBits(), p.T, cut, instD.Graph.N()), cut)
	fmt.Printf("Theorem 1 shape at n=2^20: Ω(n/log³n) = %.4g rounds\n",
		congestlb.Theorem1Bound(1<<20))
}
