// Reduction: the Theorem 5 simulation live — a real CONGEST algorithm
// runs on G_x̄ while every message crossing the player partition is
// charged, bit for bit, to a shared blackboard; the resulting transcript
// is checked against the T·|cut|·B accounting bound and the induced
// protocol's answer against the ground truth.
//
// Run with:
//
//	go run ./examples/reduction
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"congestlb"
)

func main() {
	p := congestlb.Params{T: 2, Alpha: 1, Ell: 3}
	fam, err := congestlb.NewLinear(p)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	lab, err := congestlb.New()
	if err != nil {
		log.Fatal(err)
	}
	defer lab.Close()

	for _, tc := range []struct {
		name      string
		intersect bool
	}{
		{name: "uniquely intersecting (f = FALSE)", intersect: true},
		{name: "pairwise disjoint (f = TRUE)", intersect: false},
	} {
		var in congestlb.Inputs
		var err error
		if tc.intersect {
			in, _, err = congestlb.RandomUniquelyIntersecting(fam.InputBits(), p.T, 0.3, rng)
		} else {
			in, err = congestlb.RandomPairwiseDisjoint(fam.InputBits(), p.T, 0.3, rng)
		}
		if err != nil {
			log.Fatal(err)
		}

		report, err := lab.RunReduction(context.Background(), fam, in, congestlb.CongestConfig{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%s\n", tc.name)
		fmt.Printf("  CONGEST run:   %d rounds, %d total bits on all edges\n",
			report.Rounds, report.CongestTotalBits)
		fmt.Printf("  blackboard:    %d writes, %d bits (only cut-crossing messages)\n",
			report.BlackboardWrites, report.BlackboardBits)
		fmt.Printf("  accounting:    %d ≤ T·|cut|·B = %d·%d·%d = %d  → holds: %v\n",
			report.BlackboardBits, report.Rounds, report.CutSize, report.Bandwidth,
			report.AccountingBound, report.AccountingHolds())
		fmt.Printf("  decision:      OPT=%d ⇒ pairwise-disjoint=%v (truth %v, correct %v)\n\n",
			report.Opt, report.Decision, report.Truth, report.Correct())
	}

	fmt.Println("This is the engine of every lower bound in the paper: if a CONGEST algorithm")
	fmt.Println("decided the gap in T rounds, the players could run it as a blackboard protocol")
	fmt.Println("of T·|cut|·O(log n) bits — contradicting the Ω(k/(t log t)) communication bound")
	fmt.Println("once T is too small. Hence Theorems 1 and 2.")
}
