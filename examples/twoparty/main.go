// Twoparty: the limitation that motivates the whole paper. With two
// players, "solve your own half and take the best" is a 1/2-approximation
// costing O(log n) bits — so no two-party reduction can prove hardness at
// or below factor 1/2. With t players the same protocol only guarantees
// 1/t, which is why going multi-party unlocks (1/2+ε) hardness.
//
// Run with:
//
//	go run ./examples/twoparty
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"congestlb"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	lab, err := congestlb.New()
	if err != nil {
		log.Fatal(err)
	}
	defer lab.Close()
	fmt.Println("The split-best protocol on uniquely-intersecting hard instances:")
	fmt.Println()

	for _, p := range []congestlb.Params{
		{T: 2, Alpha: 1, Ell: 3},
		{T: 3, Alpha: 1, Ell: 4},
		{T: 4, Alpha: 1, Ell: 5},
	} {
		fam, err := congestlb.NewLinear(p)
		if err != nil {
			log.Fatal(err)
		}
		in, _, err := congestlb.RandomUniquelyIntersecting(fam.InputBits(), p.T, 0.4, rng)
		if err != nil {
			log.Fatal(err)
		}
		inst, err := congestlb.BuildInstance(fam, in)
		if err != nil {
			log.Fatal(err)
		}
		report, err := lab.SplitBest(context.Background(), inst)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%d (n=%d):\n", p.T, inst.Graph.N())
		fmt.Printf("  local optima: %v\n", report.PlayerValues)
		fmt.Printf("  best local %d vs global OPT %d → ratio %.3f (floor 1/t = %.3f)\n",
			report.Best, report.Opt, report.Ratio(), 1/float64(p.T))
		fmt.Printf("  communication: %d bits total — one value per player\n\n", report.Bits)
	}

	fmt.Println("Consequence: a 2-party reduction can never separate below 1/2, because this")
	fmt.Println("protocol already achieves 1/2 with one round's worth of communication. The")
	fmt.Println("paper's t-party framework (t = 2/ε players) weakens the barrier to 1/t and")
	fmt.Println("proves (1/2+ε)-hardness — beyond anything reachable with Alice and Bob alone.")
}
