// Unweighted: Remark 1's transform — the weighted hard instances become
// unweighted ones by blowing every weight-ℓ node up into an ℓ-node
// independent set, with bicliques replacing edges. The optimum is
// preserved exactly; the node count (and hence the lower bound) pays one
// log factor.
//
// Run with:
//
//	go run ./examples/unweighted
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"congestlb"
)

func main() {
	p := congestlb.FigureParams(2)
	fam, err := congestlb.NewLinear(p)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	lab, err := congestlb.New()
	if err != nil {
		log.Fatal(err)
	}
	defer lab.Close()

	for _, tc := range []struct {
		name      string
		intersect bool
	}{
		{name: "uniquely intersecting", intersect: true},
		{name: "pairwise disjoint", intersect: false},
	} {
		var in congestlb.Inputs
		var err error
		if tc.intersect {
			in, _, err = congestlb.RandomUniquelyIntersecting(fam.InputBits(), p.T, 0.4, rng)
		} else {
			in, err = congestlb.RandomPairwiseDisjoint(fam.InputBits(), p.T, 0.4, rng)
		}
		if err != nil {
			log.Fatal(err)
		}
		inst, err := congestlb.BuildInstance(fam, in)
		if err != nil {
			log.Fatal(err)
		}
		res, err := congestlb.Blowup(inst.Graph, inst.Partition)
		if err != nil {
			log.Fatal(err)
		}
		weighted, err := lab.ExactMaxIS(context.Background(), inst)
		if err != nil {
			log.Fatal(err)
		}
		unweighted, err := lab.ExactMaxISGraph(context.Background(), res.Graph)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", tc.name)
		fmt.Printf("  weighted:   n=%d, OPT=%d\n", inst.Graph.N(), weighted.Weight)
		fmt.Printf("  unweighted: n′=%d (total weight), OPT=%d — preserved: %v\n\n",
			res.Graph.N(), unweighted.Weight, weighted.Weight == unweighted.Weight)
	}

	fmt.Println("n grows from Θ(k) to Θ(k·ℓ) = Θ(k log k), so the round lower bounds of")
	fmt.Println("Theorems 1-2 hold for unweighted MaxIS too, one logarithmic factor weaker.")
}
