package congestlb

import "congestlb/internal/fault"

// Fault containment (see docs/robustness.md).
//
// Every layer of a Lab that executes user work — scheduler jobs,
// experiment bodies, exact-solver workers, the pipelined and batched
// CONGEST engines — recovers panics into a *PanicError that fails only
// the owning job or solve; the pool, the Lab, and sibling tenants keep
// running. The chaos harness behind EnableFaults injects deterministic
// faults (disk errors, corrupt cache entries, panics, stalls) to prove
// it.

// PanicError is the structured error a recovered panic surfaces as: the
// owning work identity (Op, e.g. "experiment:scaling" or "solver worker
// w1"), the panic value, and the stack captured at recovery. Error()
// excludes the stack so failure report lines stay byte-stable; inspect
// the Stack field (errors.As) when debugging.
type PanicError = fault.PanicError

// FaultEnv is the environment variable cmd/experiments reads a fault-
// injection spec from ("<seed>:<plan>", e.g.
// "42:disk-read=0.25,job-panic@scaling*1"). See docs/robustness.md for
// the plan syntax.
const FaultEnv = fault.EnvVar

// EnableFaults installs a process-wide deterministic fault-injection
// plan ("" disables injection). Decisions are pure functions of the
// spec's seed and each site's content key, so a plan reproduces exactly
// across runs and worker counts. Chaos testing only: the plan is
// process-global, not per-Lab.
func EnableFaults(spec string) error {
	if spec == "" {
		fault.Set(nil)
		return nil
	}
	inj, err := fault.Parse(spec)
	if err != nil {
		return err
	}
	fault.Set(inj)
	return nil
}
