module congestlb

go 1.21
