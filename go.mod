module congestlb

go 1.22
