// Package bitvec implements the input side of the multi-party communication
// problems in Efron, Grossman and Khoury (PODC 2020): length-k bit strings
// x^i ∈ {0,1}^k held by each of t players, with the disjointness predicates
// and the promise-instance distributions used by the reductions.
//
// The linear construction (Section 4) uses strings of length k; the
// quadratic construction (Section 5) uses strings of length k², addressed
// by index pairs (m1, m2) ∈ [k]×[k]. The Matrix type provides that
// addressing on top of Vector.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vector is a fixed-length bit string. The zero value is an empty (length
// zero) vector; use New for a sized one.
type Vector struct {
	n     int
	words []uint64
}

// New returns an all-zeros vector of length n. It panics for negative n.
func New(n int) *Vector {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative length %d", n))
	}
	return &Vector{
		n:     n,
		words: make([]uint64, (n+wordBits-1)/wordBits),
	}
}

// FromBits builds a vector from a literal 0/1 slice. Values other than 0
// and 1 are rejected.
func FromBits(bits []int) (*Vector, error) {
	v := New(len(bits))
	for i, b := range bits {
		switch b {
		case 0:
		case 1:
			v.Set(i)
		default:
			return nil, fmt.Errorf("bitvec: bit %d has value %d, want 0 or 1", i, b)
		}
	}
	return v, nil
}

// MustFromBits is FromBits panicking on error, for test fixtures.
func MustFromBits(bits []int) *Vector {
	v, err := FromBits(bits)
	if err != nil {
		panic(err)
	}
	return v
}

// Len returns the vector length k.
func (v *Vector) Len() int { return v.n }

// Get returns the bit at index i as a bool.
func (v *Vector) Get(i int) bool {
	v.checkIndex(i)
	return v.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Set sets bit i to 1.
func (v *Vector) Set(i int) {
	v.checkIndex(i)
	v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear sets bit i to 0.
func (v *Vector) Clear(i int) {
	v.checkIndex(i)
	v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

func (v *Vector) checkIndex(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Count returns the number of 1 bits.
func (v *Vector) Count() int {
	total := 0
	for _, w := range v.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Ones returns the indices of all 1 bits in increasing order.
func (v *Vector) Ones() []int {
	out := make([]int, 0, v.Count())
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	out := New(v.n)
	copy(out.words, v.words)
	return out
}

// Equal reports whether two vectors have identical length and bits.
func (v *Vector) Equal(u *Vector) bool {
	if v.n != u.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != u.words[i] {
			return false
		}
	}
	return true
}

// Disjoint reports whether v and u share no common 1 index, i.e.
// Σ_j v_j·u_j = 0 per the paper's definition. Lengths must match.
func (v *Vector) Disjoint(u *Vector) bool {
	v.checkSameLen(u)
	for i := range v.words {
		if v.words[i]&u.words[i] != 0 {
			return false
		}
	}
	return true
}

// IntersectionIndices returns the sorted indices where both v and u are 1.
func (v *Vector) IntersectionIndices(u *Vector) []int {
	v.checkSameLen(u)
	var out []int
	for wi := range v.words {
		w := v.words[wi] & u.words[wi]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

func (v *Vector) checkSameLen(u *Vector) {
	if v.n != u.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, u.n))
	}
}

// String renders the vector as a 0/1 string, index 0 first. Long vectors
// are truncated with an ellipsis for readability in logs.
func (v *Vector) String() string {
	const maxRender = 128
	var sb strings.Builder
	limit := v.n
	if limit > maxRender {
		limit = maxRender
	}
	for i := 0; i < limit; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	if v.n > maxRender {
		fmt.Fprintf(&sb, "...(+%d)", v.n-maxRender)
	}
	return sb.String()
}

// Inputs is a t-tuple of equal-length vectors: the vector of inputs
// x̄ = (x^1, ..., x^t) handed to the players.
type Inputs []*Vector

// Validate checks that all strings exist and share a common length.
func (in Inputs) Validate() error {
	if len(in) == 0 {
		return fmt.Errorf("bitvec: empty input tuple")
	}
	k := in[0].Len()
	for i, v := range in {
		if v == nil {
			return fmt.Errorf("bitvec: input %d is nil", i)
		}
		if v.Len() != k {
			return fmt.Errorf("bitvec: input %d has length %d, want %d", i, v.Len(), k)
		}
	}
	return nil
}

// Players returns t, the number of strings.
func (in Inputs) Players() int { return len(in) }

// Len returns k, the common string length (0 for an empty tuple).
func (in Inputs) Len() int {
	if len(in) == 0 {
		return 0
	}
	return in[0].Len()
}

// PairwiseDisjoint reports whether every pair of distinct strings is
// disjoint — the TRUE case of the promise pairwise disjointness function.
func (in Inputs) PairwiseDisjoint() bool {
	for i := 0; i < len(in); i++ {
		for j := i + 1; j < len(in); j++ {
			if !in[i].Disjoint(in[j]) {
				return false
			}
		}
	}
	return true
}

// UniqueIntersection returns (m, true) if there is an index m with
// x^1_m = ... = x^t_m = 1, choosing the smallest such m.
func (in Inputs) UniqueIntersection() (int, bool) {
	if len(in) == 0 {
		return 0, false
	}
	acc := in[0].Clone()
	for _, v := range in[1:] {
		for wi := range acc.words {
			acc.words[wi] &= v.words[wi]
		}
	}
	ones := acc.Ones()
	if len(ones) == 0 {
		return 0, false
	}
	return ones[0], true
}

// SatisfiesPromise reports whether the tuple is a legal input for the
// promise pairwise disjointness function: either pairwise disjoint, or all
// strings share a common index.
func (in Inputs) SatisfiesPromise() bool {
	if in.PairwiseDisjoint() {
		return true
	}
	_, ok := in.UniqueIntersection()
	return ok
}

// PromisePairwiseDisjointness evaluates Definition 2's function: TRUE when
// the strings are pairwise disjoint, FALSE when they are uniquely
// intersecting. The error reports a promise violation.
func (in Inputs) PromisePairwiseDisjointness() (bool, error) {
	if err := in.Validate(); err != nil {
		return false, err
	}
	if in.PairwiseDisjoint() {
		return true, nil
	}
	if _, ok := in.UniqueIntersection(); ok {
		return false, nil
	}
	return false, fmt.Errorf("bitvec: inputs violate the pairwise-disjointness promise")
}
