package bitvec

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAndBasicOps(t *testing.T) {
	v := New(130) // spans three words
	if v.Len() != 130 {
		t.Fatalf("Len = %d", v.Len())
	}
	if v.Count() != 0 {
		t.Fatalf("fresh vector Count = %d", v.Count())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		v.Set(i)
		if !v.Get(i) {
			t.Fatalf("Get(%d) false after Set", i)
		}
	}
	if v.Count() != 8 {
		t.Fatalf("Count = %d, want 8", v.Count())
	}
	v.Clear(64)
	if v.Get(64) {
		t.Fatal("Get(64) true after Clear")
	}
	wantOnes := []int{0, 1, 63, 65, 127, 128, 129}
	ones := v.Ones()
	if len(ones) != len(wantOnes) {
		t.Fatalf("Ones = %v", ones)
	}
	for i := range ones {
		if ones[i] != wantOnes[i] {
			t.Fatalf("Ones = %v, want %v", ones, wantOnes)
		}
	}
}

func TestIndexPanics(t *testing.T) {
	v := New(10)
	for _, idx := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Get(%d) did not panic", idx)
				}
			}()
			v.Get(idx)
		}()
	}
}

func TestFromBits(t *testing.T) {
	v, err := FromBits([]int{1, 0, 1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := v.String(); got != "10110" {
		t.Fatalf("String = %q", got)
	}
	if _, err := FromBits([]int{0, 2}); err == nil {
		t.Fatal("FromBits with 2 should fail")
	}
}

func TestStringTruncates(t *testing.T) {
	v := New(200)
	s := v.String()
	if !strings.Contains(s, "...(+72)") {
		t.Fatalf("long String not truncated: %q", s)
	}
}

func TestCloneIndependent(t *testing.T) {
	v := MustFromBits([]int{1, 0, 1})
	u := v.Clone()
	u.Set(1)
	if v.Get(1) {
		t.Fatal("Clone shares storage with original")
	}
	if !v.Equal(v.Clone()) {
		t.Fatal("Clone not Equal to original")
	}
}

func TestEqual(t *testing.T) {
	a := MustFromBits([]int{1, 0, 1})
	b := MustFromBits([]int{1, 0, 1})
	c := MustFromBits([]int{1, 1, 1})
	d := MustFromBits([]int{1, 0})
	if !a.Equal(b) {
		t.Fatal("identical vectors not Equal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Fatal("different vectors Equal")
	}
}

func TestDisjointAndIntersection(t *testing.T) {
	tests := []struct {
		name     string
		x, y     []int
		disjoint bool
		common   []int
	}{
		{name: "disjoint", x: []int{1, 0, 1, 0}, y: []int{0, 1, 0, 1}, disjoint: true},
		{name: "one common", x: []int{1, 1, 0, 0}, y: []int{0, 1, 1, 0}, disjoint: false, common: []int{1}},
		{name: "all zero", x: []int{0, 0, 0, 0}, y: []int{0, 0, 0, 0}, disjoint: true},
		{name: "two common", x: []int{1, 1, 1, 0}, y: []int{1, 0, 1, 0}, disjoint: false, common: []int{0, 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			x, y := MustFromBits(tt.x), MustFromBits(tt.y)
			if got := x.Disjoint(y); got != tt.disjoint {
				t.Fatalf("Disjoint = %v, want %v", got, tt.disjoint)
			}
			common := x.IntersectionIndices(y)
			if len(common) != len(tt.common) {
				t.Fatalf("IntersectionIndices = %v, want %v", common, tt.common)
			}
			for i := range common {
				if common[i] != tt.common[i] {
					t.Fatalf("IntersectionIndices = %v, want %v", common, tt.common)
				}
			}
		})
	}
}

func TestDisjointLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Disjoint with mismatched lengths did not panic")
		}
	}()
	New(3).Disjoint(New(4))
}

func TestInputsValidate(t *testing.T) {
	good := Inputs{New(5), New(5), New(5)}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid inputs rejected: %v", err)
	}
	if err := (Inputs{}).Validate(); err == nil {
		t.Fatal("empty inputs accepted")
	}
	if err := (Inputs{New(5), nil}).Validate(); err == nil {
		t.Fatal("nil input accepted")
	}
	if err := (Inputs{New(5), New(6)}).Validate(); err == nil {
		t.Fatal("ragged inputs accepted")
	}
}

func TestPromiseEvaluation(t *testing.T) {
	tests := []struct {
		name        string
		rows        [][]int
		promiseOK   bool
		wantValue   bool // TRUE = pairwise disjoint
		wantErrEval bool
	}{
		{
			name:      "pairwise disjoint",
			rows:      [][]int{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}},
			promiseOK: true,
			wantValue: true,
		},
		{
			name:      "uniquely intersecting",
			rows:      [][]int{{1, 1, 0}, {0, 1, 0}, {0, 1, 1}},
			promiseOK: true,
			wantValue: false,
		},
		{
			name:      "all zeros is disjoint",
			rows:      [][]int{{0, 0, 0}, {0, 0, 0}},
			promiseOK: true,
			wantValue: true,
		},
		{
			name:        "promise violated: pairwise hit without common index",
			rows:        [][]int{{1, 1, 0}, {1, 0, 0}, {0, 0, 1}},
			promiseOK:   false,
			wantErrEval: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in := make(Inputs, len(tt.rows))
			for i, r := range tt.rows {
				in[i] = MustFromBits(r)
			}
			if got := in.SatisfiesPromise(); got != tt.promiseOK {
				t.Fatalf("SatisfiesPromise = %v, want %v", got, tt.promiseOK)
			}
			val, err := in.PromisePairwiseDisjointness()
			if tt.wantErrEval {
				if err == nil {
					t.Fatal("expected promise violation error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if val != tt.wantValue {
				t.Fatalf("function value = %v, want %v", val, tt.wantValue)
			}
		})
	}
}

func TestUniqueIntersection(t *testing.T) {
	in := Inputs{
		MustFromBits([]int{0, 1, 1, 0}),
		MustFromBits([]int{0, 1, 1, 1}),
		MustFromBits([]int{1, 1, 1, 0}),
	}
	m, ok := in.UniqueIntersection()
	if !ok || m != 1 {
		t.Fatalf("UniqueIntersection = (%d,%v), want (1,true)", m, ok)
	}
	none := Inputs{MustFromBits([]int{1, 0}), MustFromBits([]int{0, 1})}
	if _, ok := none.UniqueIntersection(); ok {
		t.Fatal("disjoint inputs report an intersection")
	}
}

func TestGeneratorsKeepPromise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(200)
		tp := 2 + rng.Intn(5)
		density := rng.Float64()

		dis, err := RandomPairwiseDisjoint(k, tp, GenOptions{Density: density}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !dis.PairwiseDisjoint() {
			t.Fatalf("trial %d: generated instance not pairwise disjoint", trial)
		}

		inter, m, err := RandomUniquelyIntersecting(k, tp, GenOptions{Density: density}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !inter.SatisfiesPromise() {
			t.Fatalf("trial %d: intersecting instance violates promise", trial)
		}
		for i, v := range inter {
			if !v.Get(m) {
				t.Fatalf("trial %d: player %d missing common index %d", trial, i, m)
			}
		}
		val, err := inter.PromisePairwiseDisjointness()
		if err != nil {
			t.Fatal(err)
		}
		if val {
			t.Fatalf("trial %d: intersecting instance evaluated as disjoint", trial)
		}
	}
}

func TestRandomPromiseInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sawTrue, sawFalse := false, false
	for trial := 0; trial < 100; trial++ {
		in, truth, err := RandomPromiseInstance(50, 3, GenOptions{Density: 0.3}, 0.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		got, err := in.PromisePairwiseDisjointness()
		if err != nil {
			t.Fatal(err)
		}
		if got != truth {
			t.Fatalf("trial %d: ground truth %v, evaluation %v", trial, truth, got)
		}
		if truth {
			sawTrue = true
		} else {
			sawFalse = true
		}
	}
	if !sawTrue || !sawFalse {
		t.Fatal("coin never produced both cases in 100 trials")
	}
}

func TestGeneratorParamValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomPairwiseDisjoint(0, 2, GenOptions{}, rng); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, _, err := RandomUniquelyIntersecting(5, 0, GenOptions{}, rng); err == nil {
		t.Fatal("t=0 accepted")
	}
}

func TestMatrix(t *testing.T) {
	m := NewMatrix(4)
	if m.K() != 4 {
		t.Fatalf("K = %d", m.K())
	}
	m.Set(1, 2)
	m.Set(3, 0)
	if !m.Get(1, 2) || !m.Get(3, 0) {
		t.Fatal("Set bits not visible")
	}
	if m.Get(2, 1) {
		t.Fatal("transposed bit set")
	}
	if m.Vector().Count() != 2 {
		t.Fatalf("underlying count = %d", m.Vector().Count())
	}
	m.Clear(1, 2)
	if m.Get(1, 2) {
		t.Fatal("Clear did not clear")
	}
	m.SetAll()
	if m.Vector().Count() != 16 {
		t.Fatalf("SetAll count = %d", m.Vector().Count())
	}
}

func TestMatrixFromVector(t *testing.T) {
	v := New(9)
	m, err := MatrixFromVector(v, 3)
	if err != nil {
		t.Fatal(err)
	}
	m.Set(2, 2)
	if !v.Get(8) {
		t.Fatal("matrix does not share the vector")
	}
	if _, err := MatrixFromVector(New(8), 3); err == nil {
		t.Fatal("wrong-size vector accepted")
	}
}

func TestMatrixPanicsOutOfRange(t *testing.T) {
	m := NewMatrix(3)
	defer func() {
		if recover() == nil {
			t.Fatal("Get(3,0) did not panic")
		}
	}()
	m.Get(3, 0)
}

func TestVectorQuickProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Rand:     rand.New(rand.NewSource(5)),
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := 1 + r.Intn(300)
			bits := make([]int, n)
			for i := range bits {
				bits[i] = r.Intn(2)
			}
			vals[0] = reflect.ValueOf(bits)
		},
	}
	t.Run("count equals ones length", func(t *testing.T) {
		prop := func(bits []int) bool {
			v := MustFromBits(bits)
			return v.Count() == len(v.Ones())
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("self disjoint iff empty", func(t *testing.T) {
		prop := func(bits []int) bool {
			v := MustFromBits(bits)
			return v.Disjoint(v) == (v.Count() == 0)
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("intersection symmetric", func(t *testing.T) {
		prop := func(bits []int) bool {
			v := MustFromBits(bits)
			u := New(len(bits))
			for i := 0; i < len(bits); i += 2 {
				u.Set(i)
			}
			a := v.IntersectionIndices(u)
			b := u.IntersectionIndices(v)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Error(err)
		}
	})
}

func BenchmarkDisjoint(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in, err := RandomPairwiseDisjoint(1<<16, 2, GenOptions{Density: 0.5}, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in[0].Disjoint(in[1])
	}
}
