package bitvec

import (
	"fmt"
	"math/rand"
)

// GenOptions controls random instance generation. The zero value asks for
// a bare instance: no extra 1 bits beyond what the case requires.
type GenOptions struct {
	// Density is the probability that a candidate position is assigned to
	// some player as a 1 bit (before promise repair). 0 means no extra
	// ones: disjoint instances are all-zeros, intersecting instances have
	// exactly the common index set.
	Density float64
}

// RandomPairwiseDisjoint returns t strings of length k that are pairwise
// disjoint. With nonzero density, each index is given to at most one
// player, chosen uniformly, with probability density — which keeps every
// pair of strings disjoint by construction.
func RandomPairwiseDisjoint(k, t int, opts GenOptions, rng *rand.Rand) (Inputs, error) {
	if err := checkKT(k, t); err != nil {
		return nil, err
	}
	in := make(Inputs, t)
	for i := range in {
		in[i] = New(k)
	}
	if opts.Density > 0 {
		for idx := 0; idx < k; idx++ {
			if rng.Float64() < opts.Density {
				in[rng.Intn(t)].Set(idx)
			}
		}
	}
	return in, nil
}

// RandomUniquelyIntersecting returns t strings of length k that all share
// the 1 bit at a uniformly random index m, and are otherwise pairwise
// disjoint (extra ones per density are assigned to at most one player per
// index). It also returns the chosen intersection index.
func RandomUniquelyIntersecting(k, t int, opts GenOptions, rng *rand.Rand) (Inputs, int, error) {
	if err := checkKT(k, t); err != nil {
		return nil, 0, err
	}
	in, err := RandomPairwiseDisjoint(k, t, opts, rng)
	if err != nil {
		return nil, 0, err
	}
	m := rng.Intn(k)
	for i := range in {
		// Clear any density-assigned neighbours of m? Not needed: setting
		// index m for everyone preserves the promise since the remaining
		// indices stay single-owner.
		in[i].Set(m)
	}
	return in, m, nil
}

// RandomPromiseInstance flips a fair coin (or the given bias toward the
// disjoint case) and returns either a pairwise-disjoint or a uniquely-
// intersecting instance, together with the ground-truth value of the
// promise pairwise disjointness function (TRUE = disjoint).
func RandomPromiseInstance(k, t int, opts GenOptions, disjointBias float64, rng *rand.Rand) (Inputs, bool, error) {
	if rng.Float64() < disjointBias {
		in, err := RandomPairwiseDisjoint(k, t, opts, rng)
		return in, true, err
	}
	in, _, err := RandomUniquelyIntersecting(k, t, opts, rng)
	return in, false, err
}

func checkKT(k, t int) error {
	if k < 1 {
		return fmt.Errorf("bitvec: k=%d must be >= 1", k)
	}
	if t < 1 {
		return fmt.Errorf("bitvec: t=%d must be >= 1", t)
	}
	return nil
}

// Matrix addresses a length k² vector by index pairs (m1, m2) ∈ [k]×[k],
// exactly as the quadratic construction (Section 5) indexes its input
// strings x^i_(m1,m2). Indices are 0-based; the pair (m1, m2) maps to the
// flat index m1*k + m2.
type Matrix struct {
	k   int
	vec *Vector
}

// NewMatrix returns an all-zeros k×k bit matrix.
func NewMatrix(k int) *Matrix {
	if k < 0 {
		panic(fmt.Sprintf("bitvec: negative matrix dimension %d", k))
	}
	return &Matrix{k: k, vec: New(k * k)}
}

// MatrixFromVector wraps an existing length-k² vector. The vector is shared,
// not copied.
func MatrixFromVector(v *Vector, k int) (*Matrix, error) {
	if v.Len() != k*k {
		return nil, fmt.Errorf("bitvec: vector length %d is not k²=%d", v.Len(), k*k)
	}
	return &Matrix{k: k, vec: v}, nil
}

// K returns the matrix dimension.
func (m *Matrix) K() int { return m.k }

// Vector returns the underlying flat vector (shared).
func (m *Matrix) Vector() *Vector { return m.vec }

// Get returns the bit at (m1, m2).
func (m *Matrix) Get(m1, m2 int) bool {
	m.checkPair(m1, m2)
	return m.vec.Get(m1*m.k + m2)
}

// Set sets the bit at (m1, m2) to 1.
func (m *Matrix) Set(m1, m2 int) {
	m.checkPair(m1, m2)
	m.vec.Set(m1*m.k + m2)
}

// Clear sets the bit at (m1, m2) to 0.
func (m *Matrix) Clear(m1, m2 int) {
	m.checkPair(m1, m2)
	m.vec.Clear(m1*m.k + m2)
}

func (m *Matrix) checkPair(m1, m2 int) {
	if m1 < 0 || m1 >= m.k || m2 < 0 || m2 >= m.k {
		panic(fmt.Sprintf("bitvec: pair (%d,%d) out of range [0,%d)²", m1, m2, m.k))
	}
}

// SetAll sets every bit to 1. In the quadratic construction an all-ones
// string means "no input edges between A^(i,1) and A^(i,2)".
func (m *Matrix) SetAll() {
	for i := 0; i < m.k*m.k; i++ {
		m.vec.Set(i)
	}
}
