// Package cc implements the number-in-hand multi-party communication
// complexity model in its shared-blackboard variant (Definition 1 of Efron,
// Grossman and Khoury, PODC 2020): t players each hold a string
// x^i ∈ {0,1}^k and exchange information by writing to a blackboard visible
// to everyone. The cost of a protocol run is the total number of bits
// written.
//
// The package provides the blackboard with bit-exact accounting, concrete
// protocols for the promise pairwise disjointness function (Definition 2),
// a correctness/cost harness, and the Ω(k/(t log t)) lower-bound formula of
// Chakrabarti, Khot and Sun (Theorem 3) used by every reduction.
package cc

import (
	"fmt"
	"math"
	"strconv"

	"congestlb/internal/bitvec"
)

// Tag identifies a CONGEST message charged to the blackboard by the
// Theorem 5 simulation: the round it was sent in and the edge it crossed.
// Tagged entries carry no label string on the hot path; Entries()
// synthesises one ("r<round>:<from>-><to>") on demand.
type Tag struct {
	Round    int
	From, To int
}

// Label renders the tag in the transcript label format.
func (t Tag) Label() string {
	buf := make([]byte, 0, 24)
	buf = append(buf, 'r')
	buf = strconv.AppendInt(buf, int64(t.Round), 10)
	buf = append(buf, ':')
	buf = strconv.AppendInt(buf, int64(t.From), 10)
	buf = append(buf, '-', '>')
	buf = strconv.AppendInt(buf, int64(t.To), 10)
	return string(buf)
}

// Entry is one write to the shared blackboard.
type Entry struct {
	// Player is the writing player in [0, t).
	Player int
	// Label annotates the write for transcript inspection; it carries no
	// cost. For entries written by WriteTagged it is synthesised from
	// Tag when the transcript is read back via Entries.
	Label string
	// Tag carries the structured annotation of WriteTagged entries.
	Tag Tag
	// Tagged reports whether this entry was written by WriteTagged.
	Tagged bool
	// Data is the payload. Only Bits of it are charged, supporting
	// sub-byte messages (e.g. a single decision bit).
	Data []byte
	// Bits is the number of bits charged for this entry.
	Bits int64
}

// rec is the compact internal form of a transcript entry: pointer-free
// (nothing for the garbage collector to scan in a transcript of hundreds
// of thousands of writes) and payload-addressed by offset into the shared
// payload buffer, so appending never copies more than the new bytes.
// labelIdx is 1+index into the labels table for explicitly-labelled
// writes, 0 for tagged writes (whose label is synthesised from the tag).
type rec struct {
	player          int32
	round, from, to int32
	off, length     int32
	labelIdx        int32
	bits            int64
}

// Blackboard is the append-only shared transcript. The zero value is an
// empty blackboard ready for use.
//
// Writes are allocation-free in steady state: payloads are appended to an
// internal buffer addressed by offset, entries are compact pointer-free
// records, and the per-message annotation of the Theorem 5 simulation is a
// numeric Tag whose label string materialises only when the transcript is
// inspected via Entries.
type Blackboard struct {
	recs    []rec
	labels  []string
	payload []byte
	bits    int64
	// hwPayload is the payload high-water mark recorded by Reset. Because
	// Reset must drop (not truncate) the payload buffer — transcript views
	// alias it — the next use would regrow it from nothing by doubling;
	// instead the first write after a Reset allocates the buffer at the
	// previous transcript's full size in one step.
	hwPayload int
}

func (b *Blackboard) append(player, labelIdx int32, tag Tag, data []byte, bits int64) {
	if b.payload == nil && b.hwPayload > 0 {
		b.payload = make([]byte, 0, b.hwPayload)
	}
	off := int32(len(b.payload))
	b.payload = append(b.payload, data...)
	b.recs = append(b.recs, rec{
		player:   player,
		round:    int32(tag.Round),
		from:     int32(tag.From),
		to:       int32(tag.To),
		off:      off,
		length:   int32(len(data)),
		labelIdx: labelIdx,
		bits:     bits,
	})
	b.bits += bits
}

// Write appends an entry of the given bit size. bits must be positive and
// no larger than 8*len(data) (data must actually carry the bits charged).
// The data is copied; callers may reuse their buffer.
func (b *Blackboard) Write(player int, label string, data []byte, bits int64) error {
	if err := b.check(data, bits); err != nil {
		return err
	}
	b.labels = append(b.labels, label)
	b.append(int32(player), int32(len(b.labels)), Tag{}, data, bits)
	return nil
}

// WriteTagged appends an entry annotated with a numeric tag instead of a
// label string — the zero-allocation path the CONGEST simulation charges
// every cut-crossing message through. The data is copied; callers may
// reuse their buffer.
func (b *Blackboard) WriteTagged(player int, tag Tag, data []byte, bits int64) error {
	if err := b.check(data, bits); err != nil {
		return err
	}
	b.append(int32(player), 0, tag, data, bits)
	return nil
}

func (b *Blackboard) check(data []byte, bits int64) error {
	if bits <= 0 {
		return fmt.Errorf("cc: write of %d bits", bits)
	}
	if bits > int64(len(data))*8 {
		return fmt.Errorf("cc: %d bits charged but payload only holds %d", bits, len(data)*8)
	}
	return nil
}

// entryAt expands the compact record i into the public Entry form. The
// returned Data aliases the payload buffer current at call time; contents
// stay valid because the buffer is append-only until Reset, which drops
// (rather than reuses) it.
func (b *Blackboard) entryAt(i int) Entry {
	r := b.recs[i]
	e := Entry{
		Player: int(r.player),
		Data:   b.payload[r.off : r.off+r.length : r.off+r.length],
		Bits:   r.bits,
	}
	if r.labelIdx == 0 {
		e.Tagged = true
		e.Tag = Tag{Round: int(r.round), From: int(r.from), To: int(r.to)}
		e.Label = e.Tag.Label()
	} else {
		e.Label = b.labels[r.labelIdx-1]
	}
	return e
}

// WriteBit appends a single-bit entry.
func (b *Blackboard) WriteBit(player int, label string, bit bool) error {
	var payload byte
	if bit {
		payload = 1
	}
	return b.Write(player, label, []byte{payload}, 1)
}

// WriteVector appends a full bit string, charged at its exact length.
func (b *Blackboard) WriteVector(player int, label string, v *bitvec.Vector) error {
	k := v.Len()
	data := make([]byte, (k+7)/8)
	for _, i := range v.Ones() {
		data[i/8] |= 1 << (uint(i) % 8)
	}
	return b.Write(player, label, data, int64(k))
}

// Bits returns the total number of bits written so far — the |π_Q(x̄)| of
// Definition 1 for the run in progress.
func (b *Blackboard) Bits() int64 { return b.bits }

// Entries returns the transcript in the public Entry form, with labels
// synthesised for tagged entries.
func (b *Blackboard) Entries() []Entry {
	out := make([]Entry, len(b.recs))
	for i := range out {
		out[i] = b.entryAt(i)
	}
	return out
}

// Len returns the number of entries written.
func (b *Blackboard) Len() int { return len(b.recs) }

// Reset clears the blackboard for reuse, remembering the transcript's size
// as a high-water mark that pre-sizes the next use.
func (b *Blackboard) Reset() {
	if len(b.payload) > b.hwPayload {
		b.hwPayload = len(b.payload)
	}
	b.recs = b.recs[:0]
	b.labels = b.labels[:0]
	b.bits = 0
	// Drop (don't truncate) the payload buffer: transcript views handed
	// out by Entries alias it and must survive the reuse.
	b.payload = nil
}

// PayloadBytes returns the current payload buffer length — the transcript
// volume in bytes (bits are charged separately and may be fewer).
func (b *Blackboard) PayloadBytes() int { return len(b.payload) }

// Grow pre-sizes the blackboard for a transcript of the given entry count
// and payload volume, so a simulation whose scale is known up front (e.g.
// from the previous run's high-water mark) appends without any
// grow-and-copy. Growing the payload is only safe while the transcript is
// empty — handed-out entry views alias a non-empty buffer — so a non-empty
// blackboard only grows its record table.
func (b *Blackboard) Grow(entries, payloadBytes int) {
	if entries > cap(b.recs) {
		grown := make([]rec, len(b.recs), entries)
		copy(grown, b.recs)
		b.recs = grown
	}
	if len(b.payload) == 0 && payloadBytes > cap(b.payload) {
		b.payload = nil // drop the undersized block before re-allocating
		b.payload = make([]byte, 0, payloadBytes)
	}
}

// ReadVector decodes entry index idx back into a bit vector of length k.
// Protocol implementations use it to model players reading the blackboard.
func (b *Blackboard) ReadVector(idx, k int) (*bitvec.Vector, error) {
	if idx < 0 || idx >= len(b.recs) {
		return nil, fmt.Errorf("cc: entry %d out of range [0,%d)", idx, len(b.recs))
	}
	r := b.recs[idx]
	if r.bits != int64(k) {
		return nil, fmt.Errorf("cc: entry %d holds %d bits, want %d", idx, r.bits, k)
	}
	data := b.payload[r.off : r.off+r.length]
	v := bitvec.New(k)
	for i := 0; i < k; i++ {
		if data[i/8]&(1<<(uint(i)%8)) != 0 {
			v.Set(i)
		}
	}
	return v, nil
}

// Protocol computes the promise pairwise disjointness function over a
// shared blackboard. Run must return TRUE when the inputs are pairwise
// disjoint and FALSE when uniquely intersecting; behaviour outside the
// promise is unconstrained, mirroring Definition 2.
type Protocol interface {
	// Name identifies the protocol in reports.
	Name() string
	// Run executes the protocol, writing all communication to bb.
	Run(in bitvec.Inputs, bb *Blackboard) (bool, error)
}

// WriteAll is the baseline protocol: every player writes its entire input
// string; the function value is then computed from the transcript alone.
// Cost: exactly t·k bits. It makes the trivial upper bound of the
// communication-complexity sandwich concrete.
type WriteAll struct{}

var _ Protocol = WriteAll{}

// Name implements Protocol.
func (WriteAll) Name() string { return "write-all" }

// Run implements Protocol.
func (WriteAll) Run(in bitvec.Inputs, bb *Blackboard) (bool, error) {
	if err := in.Validate(); err != nil {
		return false, err
	}
	k := in.Len()
	start := bb.Len()
	for i, v := range in {
		if err := bb.WriteVector(i, fmt.Sprintf("x^%d", i+1), v); err != nil {
			return false, err
		}
	}
	// Every player can now evaluate f from the blackboard; do it from the
	// transcript to honour the model (no hidden state).
	read := make(bitvec.Inputs, len(in))
	for i := range in {
		v, err := bb.ReadVector(start+i, k)
		if err != nil {
			return false, err
		}
		read[i] = v
	}
	return read.PairwiseDisjoint(), nil
}

// FirstPlayerProbe is the promise-exploiting protocol: player 1 writes x^1
// (k bits); player 2 writes one bit — whether x^1 ∩ x^2 ≠ ∅. Under the
// promise this single probe decides the function: a unique intersection
// index lies in every pairwise intersection, and pairwise disjointness
// empties all of them. Cost: exactly k+1 bits, demonstrating the Θ(k)
// upper bound against the Ω(k/(t log t)) lower bound.
type FirstPlayerProbe struct{}

var _ Protocol = FirstPlayerProbe{}

// Name implements Protocol.
func (FirstPlayerProbe) Name() string { return "first-player-probe" }

// Run implements Protocol.
func (FirstPlayerProbe) Run(in bitvec.Inputs, bb *Blackboard) (bool, error) {
	if err := in.Validate(); err != nil {
		return false, err
	}
	if in.Players() < 2 {
		return false, fmt.Errorf("cc: first-player-probe needs t >= 2, got %d", in.Players())
	}
	k := in.Len()
	start := bb.Len()
	if err := bb.WriteVector(0, "x^1", in[0]); err != nil {
		return false, err
	}
	// Player 2 reads x^1 off the blackboard and probes its own string.
	x1, err := bb.ReadVector(start, k)
	if err != nil {
		return false, err
	}
	hit := !x1.Disjoint(in[1])
	if err := bb.WriteBit(1, "x^1∩x^2≠∅", hit); err != nil {
		return false, err
	}
	return !hit, nil
}

// AllPlayersProbe is the genuinely multi-party version of the probe:
// player 1 writes x^1 (k bits) and every other player writes one bit —
// whether its own string intersects x^1. Under the promise, all probe bits
// agree: a unique intersection index lies in every pairwise intersection,
// and pairwise disjointness empties all of them. The value is TRUE
// (pairwise disjoint) iff no player reports a hit. Cost: exactly k+t−1
// bits.
type AllPlayersProbe struct{}

var _ Protocol = AllPlayersProbe{}

// Name implements Protocol.
func (AllPlayersProbe) Name() string { return "all-players-probe" }

// Run implements Protocol.
func (AllPlayersProbe) Run(in bitvec.Inputs, bb *Blackboard) (bool, error) {
	if err := in.Validate(); err != nil {
		return false, err
	}
	if in.Players() < 2 {
		return false, fmt.Errorf("cc: all-players-probe needs t >= 2, got %d", in.Players())
	}
	k := in.Len()
	start := bb.Len()
	if err := bb.WriteVector(0, "x^1", in[0]); err != nil {
		return false, err
	}
	x1, err := bb.ReadVector(start, k)
	if err != nil {
		return false, err
	}
	anyHit := false
	for i := 1; i < in.Players(); i++ {
		hit := !x1.Disjoint(in[i])
		if err := bb.WriteBit(i, fmt.Sprintf("x^1∩x^%d≠∅", i+1), hit); err != nil {
			return false, err
		}
		if hit {
			anyHit = true
		}
	}
	return !anyHit, nil
}

// TruncatedProbe is a deliberately under-communicating protocol used to
// probe the lower bound empirically: player 1 writes only the first
// PrefixBits bits of x^1, and player 2 reports whether the prefixes
// intersect. On pairwise-disjoint inputs it is always correct; on
// uniquely-intersecting inputs it errs whenever the common index lies
// beyond the prefix. Shrinking the prefix below Θ(k) therefore drives the
// error above any constant — the behaviour Theorem 3 mandates for every
// protocol that communicates o(k/(t log t)) bits.
type TruncatedProbe struct {
	// PrefixBits is the number of bits of x^1 announced; clamped to
	// [1, k].
	PrefixBits int
}

var _ Protocol = TruncatedProbe{}

// Name implements Protocol.
func (p TruncatedProbe) Name() string {
	return fmt.Sprintf("truncated-probe(%d)", p.PrefixBits)
}

// Run implements Protocol.
func (p TruncatedProbe) Run(in bitvec.Inputs, bb *Blackboard) (bool, error) {
	if err := in.Validate(); err != nil {
		return false, err
	}
	if in.Players() < 2 {
		return false, fmt.Errorf("cc: truncated-probe needs t >= 2, got %d", in.Players())
	}
	k := in.Len()
	prefix := p.PrefixBits
	if prefix < 1 {
		prefix = 1
	}
	if prefix > k {
		prefix = k
	}
	trunc := bitvec.New(prefix)
	for _, i := range in[0].Ones() {
		if i < prefix {
			trunc.Set(i)
		}
	}
	start := bb.Len()
	if err := bb.WriteVector(0, fmt.Sprintf("x^1[:%d]", prefix), trunc); err != nil {
		return false, err
	}
	seen, err := bb.ReadVector(start, prefix)
	if err != nil {
		return false, err
	}
	hit := false
	for _, i := range in[1].Ones() {
		if i < prefix && seen.Get(i) {
			hit = true
			break
		}
	}
	if err := bb.WriteBit(1, "prefix hit", hit); err != nil {
		return false, err
	}
	return !hit, nil
}

// LowerBoundBits returns the Chakrabarti-Khot-Sun communication lower bound
// k/(t·log₂t) for promise pairwise disjointness with t players on length-k
// strings (Theorem 3; stated up to a constant factor, reported here with
// constant 1). For t = 2 the log factor is 1 and the bound reads k/2,
// consistent with the classical Ω(k) two-party set-disjointness bound.
func LowerBoundBits(k, t int) float64 {
	if k < 1 || t < 2 {
		return 0
	}
	logT := math.Log2(float64(t))
	if logT < 1 {
		logT = 1
	}
	return float64(k) / (float64(t) * logT)
}

// RunReport is the outcome of auditing one protocol over many instances.
type RunReport struct {
	Protocol string
	// Trials is the number of instances evaluated.
	Trials int
	// Wrong counts trials where the protocol returned the wrong value.
	Wrong int
	// MaxBits is the worst-case transcript length observed — the
	// protocol's empirical Cost(Q).
	MaxBits int64
	// TotalBits accumulates transcript lengths for averaging.
	TotalBits int64
}

// AvgBits returns the mean transcript length across trials.
func (r RunReport) AvgBits() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.TotalBits) / float64(r.Trials)
}

// Audit runs the protocol on each provided instance with its ground-truth
// function value and accumulates correctness and cost statistics.
func Audit(p Protocol, instances []bitvec.Inputs, truths []bool) (RunReport, error) {
	if len(instances) != len(truths) {
		return RunReport{}, fmt.Errorf("cc: %d instances but %d truths", len(instances), len(truths))
	}
	report := RunReport{Protocol: p.Name()}
	var bb Blackboard
	for i, in := range instances {
		bb.Reset()
		got, err := p.Run(in, &bb)
		if err != nil {
			return RunReport{}, fmt.Errorf("cc: %s on instance %d: %w", p.Name(), i, err)
		}
		report.Trials++
		if got != truths[i] {
			report.Wrong++
		}
		if bb.Bits() > report.MaxBits {
			report.MaxBits = bb.Bits()
		}
		report.TotalBits += bb.Bits()
	}
	return report, nil
}
