package cc

import (
	"math"
	"math/rand"
	"testing"

	"congestlb/internal/bitvec"
)

func TestBlackboardAccounting(t *testing.T) {
	var bb Blackboard
	if bb.Bits() != 0 || bb.Len() != 0 {
		t.Fatal("fresh blackboard not empty")
	}
	if err := bb.Write(0, "msg", []byte{0xFF}, 5); err != nil {
		t.Fatal(err)
	}
	if err := bb.WriteBit(1, "bit", true); err != nil {
		t.Fatal(err)
	}
	if bb.Bits() != 6 {
		t.Fatalf("Bits = %d, want 6", bb.Bits())
	}
	if bb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", bb.Len())
	}
	entries := bb.Entries()
	if entries[0].Player != 0 || entries[1].Player != 1 {
		t.Fatalf("entries players wrong: %+v", entries)
	}
	bb.Reset()
	if bb.Bits() != 0 || bb.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestBlackboardWriteValidation(t *testing.T) {
	var bb Blackboard
	if err := bb.Write(0, "zero", []byte{1}, 0); err == nil {
		t.Fatal("zero-bit write accepted")
	}
	if err := bb.Write(0, "neg", []byte{1}, -3); err == nil {
		t.Fatal("negative-bit write accepted")
	}
	if err := bb.Write(0, "overrun", []byte{1}, 9); err == nil {
		t.Fatal("bits exceeding payload accepted")
	}
}

func TestBlackboardEntriesAreCopies(t *testing.T) {
	var bb Blackboard
	payload := []byte{0xAB}
	if err := bb.Write(0, "m", payload, 8); err != nil {
		t.Fatal(err)
	}
	payload[0] = 0 // caller mutates after write
	if bb.Entries()[0].Data[0] != 0xAB {
		t.Fatal("blackboard shares caller's payload")
	}
}

func TestWriteAndReadVectorRoundTrip(t *testing.T) {
	var bb Blackboard
	v := bitvec.MustFromBits([]int{1, 0, 0, 1, 1, 0, 1, 0, 1, 1, 0})
	if err := bb.WriteVector(2, "x", v); err != nil {
		t.Fatal(err)
	}
	if bb.Bits() != int64(v.Len()) {
		t.Fatalf("vector write charged %d bits, want %d", bb.Bits(), v.Len())
	}
	got, err := bb.ReadVector(0, v.Len())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v) {
		t.Fatalf("round trip: got %v want %v", got, v)
	}
	if _, err := bb.ReadVector(0, 5); err == nil {
		t.Fatal("wrong-length read accepted")
	}
	if _, err := bb.ReadVector(7, 11); err == nil {
		t.Fatal("out-of-range read accepted")
	}
}

// makeInstances builds a mixed batch of promise instances with truths.
func makeInstances(t *testing.T, k, players, trials int, seed int64) ([]bitvec.Inputs, []bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	instances := make([]bitvec.Inputs, 0, trials)
	truths := make([]bool, 0, trials)
	for i := 0; i < trials; i++ {
		in, truth, err := bitvec.RandomPromiseInstance(k, players, bitvec.GenOptions{Density: 0.4}, 0.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		instances = append(instances, in)
		truths = append(truths, truth)
	}
	return instances, truths
}

func TestWriteAllCorrectAndExactCost(t *testing.T) {
	const k, players, trials = 64, 4, 60
	instances, truths := makeInstances(t, k, players, trials, 31)
	report, err := Audit(WriteAll{}, instances, truths)
	if err != nil {
		t.Fatal(err)
	}
	if report.Wrong != 0 {
		t.Fatalf("write-all wrong on %d/%d instances", report.Wrong, report.Trials)
	}
	if want := int64(k * players); report.MaxBits != want {
		t.Fatalf("write-all max cost %d, want %d", report.MaxBits, want)
	}
	if report.AvgBits() != float64(k*players) {
		t.Fatalf("write-all avg cost %f", report.AvgBits())
	}
}

func TestFirstPlayerProbeCorrectAndCheap(t *testing.T) {
	const k, players, trials = 128, 5, 80
	instances, truths := makeInstances(t, k, players, trials, 17)
	report, err := Audit(FirstPlayerProbe{}, instances, truths)
	if err != nil {
		t.Fatal(err)
	}
	if report.Wrong != 0 {
		t.Fatalf("probe wrong on %d/%d instances", report.Wrong, report.Trials)
	}
	if want := int64(k + 1); report.MaxBits != want {
		t.Fatalf("probe cost %d, want %d", report.MaxBits, want)
	}
}

func TestAllPlayersProbeCorrectAndExactCost(t *testing.T) {
	const k, players, trials = 96, 6, 60
	instances, truths := makeInstances(t, k, players, trials, 43)
	report, err := Audit(AllPlayersProbe{}, instances, truths)
	if err != nil {
		t.Fatal(err)
	}
	if report.Wrong != 0 {
		t.Fatalf("all-players-probe wrong on %d/%d instances", report.Wrong, report.Trials)
	}
	if want := int64(k + players - 1); report.MaxBits != want {
		t.Fatalf("all-players-probe cost %d, want %d", report.MaxBits, want)
	}
}

func TestAllPlayersProbeAgreesWithFirstPlayerProbe(t *testing.T) {
	const k, players = 64, 4
	instances, truths := makeInstances(t, k, players, 40, 47)
	for i, in := range instances {
		var bb1, bb2 Blackboard
		a, err := (FirstPlayerProbe{}).Run(in, &bb1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := (AllPlayersProbe{}).Run(in, &bb2)
		if err != nil {
			t.Fatal(err)
		}
		if a != b || a != truths[i] {
			t.Fatalf("instance %d: first=%v all=%v truth=%v", i, a, b, truths[i])
		}
	}
}

func TestAllPlayersProbeNeedsTwoPlayers(t *testing.T) {
	var bb Blackboard
	if _, err := (AllPlayersProbe{}).Run(bitvec.Inputs{bitvec.New(4)}, &bb); err == nil {
		t.Fatal("t=1 accepted")
	}
}

func TestFirstPlayerProbeNeedsTwoPlayers(t *testing.T) {
	var bb Blackboard
	in := bitvec.Inputs{bitvec.New(4)}
	if _, err := (FirstPlayerProbe{}).Run(in, &bb); err == nil {
		t.Fatal("t=1 accepted")
	}
}

func TestProtocolsOnHandCraftedCases(t *testing.T) {
	tests := []struct {
		name string
		rows [][]int
		want bool
	}{
		{
			name: "pairwise disjoint",
			rows: [][]int{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}},
			want: true,
		},
		{
			name: "uniquely intersecting",
			rows: [][]int{{0, 1, 1, 0}, {0, 0, 1, 0}, {1, 0, 1, 0}},
			want: false,
		},
		{
			name: "all empty strings",
			rows: [][]int{{0, 0, 0, 0}, {0, 0, 0, 0}},
			want: true,
		},
	}
	protocols := []Protocol{WriteAll{}, FirstPlayerProbe{}}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in := make(bitvec.Inputs, len(tt.rows))
			for i, r := range tt.rows {
				in[i] = bitvec.MustFromBits(r)
			}
			for _, p := range protocols {
				var bb Blackboard
				got, err := p.Run(in, &bb)
				if err != nil {
					t.Fatalf("%s: %v", p.Name(), err)
				}
				if got != tt.want {
					t.Fatalf("%s = %v, want %v", p.Name(), got, tt.want)
				}
			}
		})
	}
}

func TestLowerBoundBits(t *testing.T) {
	tests := []struct {
		k, t int
		want float64
	}{
		{k: 100, t: 2, want: 50},                       // log2(2)=1 → k/2
		{k: 100, t: 4, want: 100.0 / 8.0},              // 4·log2(4)=8
		{k: 1000, t: 8, want: 1000.0 / 24.0},           // 8·3
		{k: 0, t: 4, want: 0},                          // degenerate
		{k: 100, t: 1, want: 0},                        // no multi-party problem
		{k: 90, t: 3, want: 90.0 / (3 * math.Log2(3))}, // fractional log
	}
	for _, tt := range tests {
		if got := LowerBoundBits(tt.k, tt.t); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("LowerBoundBits(%d,%d) = %f, want %f", tt.k, tt.t, got, tt.want)
		}
	}
}

func TestUpperBoundsRespectLowerBound(t *testing.T) {
	// Sanity of the sandwich: the measured protocol costs must be at least
	// the information-theoretic lower bound (with constant 1 this is
	// comfortably true for both protocols, k+1 ≥ k/(t log t)).
	const k, players = 256, 4
	instances, truths := makeInstances(t, k, players, 40, 5)
	lower := LowerBoundBits(k, players)
	for _, p := range []Protocol{WriteAll{}, FirstPlayerProbe{}} {
		report, err := Audit(p, instances, truths)
		if err != nil {
			t.Fatal(err)
		}
		if float64(report.MaxBits) < lower {
			t.Fatalf("%s cost %d below lower bound %f", p.Name(), report.MaxBits, lower)
		}
	}
}

func TestAuditLengthMismatch(t *testing.T) {
	if _, err := Audit(WriteAll{}, make([]bitvec.Inputs, 2), make([]bool, 3)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func BenchmarkFirstPlayerProbe(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in, _, err := bitvec.RandomUniquelyIntersecting(4096, 4, bitvec.GenOptions{Density: 0.3}, rng)
	if err != nil {
		b.Fatal(err)
	}
	var bb Blackboard
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb.Reset()
		if _, err := (FirstPlayerProbe{}).Run(in, &bb); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBlackboardGrowPreSizes(t *testing.T) {
	var bb Blackboard
	bb.Grow(16, 1024)
	if err := bb.Write(0, "x", []byte{1, 2, 3}, 24); err != nil {
		t.Fatal(err)
	}
	if bb.PayloadBytes() != 3 || bb.Len() != 1 || bb.Bits() != 24 {
		t.Fatalf("accounting after Grow: payload=%d len=%d bits=%d", bb.PayloadBytes(), bb.Len(), bb.Bits())
	}
	// Growing a non-empty blackboard must not move the payload buffer:
	// handed-out entry views alias it.
	view := bb.Entries()[0]
	bb.Grow(1024, 1<<20)
	if &view.Data[0] != &bb.Entries()[0].Data[0] {
		t.Fatal("Grow moved a live payload buffer")
	}
}

func TestBlackboardResetHighWaterReuse(t *testing.T) {
	var bb Blackboard
	payload := make([]byte, 100)
	for i := 0; i < 50; i++ {
		if err := bb.Write(0, "w", payload, 800); err != nil {
			t.Fatal(err)
		}
	}
	grown := bb.PayloadBytes()
	bb.Reset()
	if bb.Len() != 0 || bb.Bits() != 0 || bb.PayloadBytes() != 0 {
		t.Fatalf("reset left state: len=%d bits=%d payload=%d", bb.Len(), bb.Bits(), bb.PayloadBytes())
	}
	// The first write after Reset must land in a buffer pre-sized to the
	// previous transcript's full volume — no append-doubling on the way
	// back to steady state.
	if err := bb.Write(0, "w", payload, 800); err != nil {
		t.Fatal(err)
	}
	if got := cap(bb.payload); got < grown {
		t.Fatalf("post-reset payload capacity %d below high-water %d", got, grown)
	}
	// And the transcript content is fresh, not stale.
	if bb.Len() != 1 {
		t.Fatalf("len after reset+write = %d", bb.Len())
	}
}

func TestBlackboardResetKeepsOldViewsValid(t *testing.T) {
	var bb Blackboard
	if err := bb.Write(0, "keep", []byte{42}, 8); err != nil {
		t.Fatal(err)
	}
	view := bb.Entries()[0]
	bb.Reset()
	for i := 0; i < 8; i++ {
		if err := bb.Write(0, "new", []byte{byte(i)}, 8); err != nil {
			t.Fatal(err)
		}
	}
	if view.Data[0] != 42 {
		t.Fatalf("pre-reset view corrupted: %v", view.Data)
	}
}
