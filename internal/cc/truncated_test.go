package cc

import (
	"math/rand"
	"testing"

	"congestlb/internal/bitvec"
)

func TestTruncatedProbeFullPrefixIsExact(t *testing.T) {
	const k, players = 128, 3
	instances, truths := makeInstances(t, k, players, 50, 61)
	report, err := Audit(TruncatedProbe{PrefixBits: k}, instances, truths)
	if err != nil {
		t.Fatal(err)
	}
	if report.Wrong != 0 {
		t.Fatalf("full-prefix probe wrong on %d instances", report.Wrong)
	}
	if report.MaxBits != int64(k+1) {
		t.Fatalf("full-prefix cost %d, want %d", report.MaxBits, k+1)
	}
}

func TestTruncatedProbeErrsOnLateIntersection(t *testing.T) {
	// Intersection at the last index; a half prefix must answer wrongly.
	k := 16
	x1 := bitvec.New(k)
	x2 := bitvec.New(k)
	x1.Set(k - 1)
	x2.Set(k - 1)
	in := bitvec.Inputs{x1, x2}
	var bb Blackboard
	got, err := (TruncatedProbe{PrefixBits: k / 2}).Run(in, &bb)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("half prefix should miss the late intersection and wrongly answer TRUE")
	}
	if bb.Bits() != int64(k/2+1) {
		t.Fatalf("cost %d, want %d", bb.Bits(), k/2+1)
	}
}

func TestTruncatedProbeAlwaysRightOnDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 40; trial++ {
		in, err := bitvec.RandomPairwiseDisjoint(64, 2, bitvec.GenOptions{Density: 0.5}, rng)
		if err != nil {
			t.Fatal(err)
		}
		var bb Blackboard
		got, err := (TruncatedProbe{PrefixBits: 8}).Run(in, &bb)
		if err != nil {
			t.Fatal(err)
		}
		if !got {
			t.Fatal("disjoint input answered FALSE")
		}
	}
}

func TestTruncatedProbeErrorGrowsAsPrefixShrinks(t *testing.T) {
	// On uniformly-placed intersections, the error rate of prefix p is
	// about (k-p)/k on intersecting instances. Check monotonicity
	// coarsely over many trials.
	const k, trials = 256, 300
	rng := rand.New(rand.NewSource(71))
	errorRate := func(prefix int) float64 {
		wrong := 0
		for i := 0; i < trials; i++ {
			in, _, err := bitvec.RandomUniquelyIntersecting(k, 2, bitvec.GenOptions{Density: 0.2}, rng)
			if err != nil {
				t.Fatal(err)
			}
			var bb Blackboard
			got, err := (TruncatedProbe{PrefixBits: prefix}).Run(in, &bb)
			if err != nil {
				t.Fatal(err)
			}
			if got { // TRUE = disjoint is wrong here
				wrong++
			}
		}
		return float64(wrong) / trials
	}
	quarter := errorRate(k / 4)
	full := errorRate(k)
	if full != 0 {
		t.Fatalf("full prefix erred at rate %f", full)
	}
	if quarter < 0.5 {
		t.Fatalf("quarter prefix error rate %f, expected ≈0.75", quarter)
	}
}

func TestTruncatedProbeClampsPrefix(t *testing.T) {
	in := bitvec.Inputs{bitvec.New(8), bitvec.New(8)}
	for _, prefix := range []int{-5, 0, 100} {
		var bb Blackboard
		if _, err := (TruncatedProbe{PrefixBits: prefix}).Run(in, &bb); err != nil {
			t.Fatalf("prefix %d: %v", prefix, err)
		}
	}
}

func TestTruncatedProbeNeedsTwoPlayers(t *testing.T) {
	var bb Blackboard
	if _, err := (TruncatedProbe{PrefixBits: 4}).Run(bitvec.Inputs{bitvec.New(8)}, &bb); err == nil {
		t.Fatal("t=1 accepted")
	}
}
