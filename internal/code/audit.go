package code

import (
	"fmt"
	"math/rand"
)

// AuditReport summarises a distance audit of a code: how many message pairs
// were checked, the minimum observed distance and the pair achieving it.
type AuditReport struct {
	// PairsChecked is the number of distinct message pairs whose distance
	// was measured.
	PairsChecked int
	// MinDistance is the smallest pairwise distance observed.
	MinDistance int
	// ArgMin is the message pair (m1, m2) achieving MinDistance.
	ArgMin [2]int
	// Exhaustive reports whether every pair was checked (true) or only a
	// random sample (false).
	Exhaustive bool
}

// Satisfies reports whether the audit observed no pair below the declared
// distance d.
func (r AuditReport) Satisfies(d int) bool { return r.MinDistance >= d }

// String implements fmt.Stringer.
func (r AuditReport) String() string {
	mode := "sampled"
	if r.Exhaustive {
		mode = "exhaustive"
	}
	return fmt.Sprintf("audit(%s): %d pairs, min distance %d at (%d,%d)",
		mode, r.PairsChecked, r.MinDistance, r.ArgMin[0], r.ArgMin[1])
}

// AuditExhaustive measures the distance of every pair of distinct messages.
// It is quadratic in NumMessages and intended for codes with at most a few
// thousand messages; it returns an error above the safety threshold.
func AuditExhaustive(c Code) (AuditReport, error) {
	n := c.NumMessages()
	const maxMessages = 1 << 13
	if n > maxMessages {
		return AuditReport{}, fmt.Errorf("code: refusing exhaustive audit of %d messages (max %d); use AuditSampled", n, maxMessages)
	}
	words := make([][]int, n)
	for m := 0; m < n; m++ {
		w, err := c.Encode(m)
		if err != nil {
			return AuditReport{}, fmt.Errorf("code: audit encode %d: %w", m, err)
		}
		words[m] = w
	}
	report := AuditReport{MinDistance: int(^uint(0) >> 1), Exhaustive: true}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := Distance(words[i], words[j])
			report.PairsChecked++
			if d < report.MinDistance {
				report.MinDistance = d
				report.ArgMin = [2]int{i, j}
			}
		}
	}
	if report.PairsChecked == 0 {
		report.MinDistance = 0
	}
	return report, nil
}

// AuditSampled measures the distance of `pairs` uniformly random pairs of
// distinct messages, using the given random source for reproducibility.
func AuditSampled(c Code, pairs int, rng *rand.Rand) (AuditReport, error) {
	n := c.NumMessages()
	if n < 2 {
		return AuditReport{Exhaustive: true}, nil
	}
	report := AuditReport{MinDistance: int(^uint(0) >> 1)}
	for i := 0; i < pairs; i++ {
		m1 := rng.Intn(n)
		m2 := rng.Intn(n - 1)
		if m2 >= m1 {
			m2++
		}
		w1, err := c.Encode(m1)
		if err != nil {
			return AuditReport{}, fmt.Errorf("code: audit encode %d: %w", m1, err)
		}
		w2, err := c.Encode(m2)
		if err != nil {
			return AuditReport{}, fmt.Errorf("code: audit encode %d: %w", m2, err)
		}
		d := Distance(w1, w2)
		report.PairsChecked++
		if d < report.MinDistance {
			report.MinDistance = d
			report.ArgMin = [2]int{m1, m2}
		}
	}
	if report.PairsChecked == 0 {
		report.MinDistance = 0
	}
	return report, nil
}

// ValidateWord checks that a codeword has the declared length and that all
// symbols are within the alphabet [1, q].
func ValidateWord(c Code, word []int) error {
	_, m, _, q := c.Params()
	if len(word) != m {
		return fmt.Errorf("code: word length %d, want %d", len(word), m)
	}
	for h, s := range word {
		if s < 1 || s > q {
			return fmt.Errorf("code: symbol %d at position %d outside alphabet [1,%d]", s, h, q)
		}
	}
	return nil
}
