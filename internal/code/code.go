// Package code implements the code-mappings of Definition 3 in Efron,
// Grossman and Khoury (PODC 2020) and the large-distance codes whose
// existence Theorem 4 asserts (Lemma 19.11 in Arora-Barak).
//
// A code-mapping with parameters (L, M, d, Σ) is a function C: Σ^L → Σ^M
// such that distinct inputs map to codewords at Hamming distance at least d.
// The paper instantiates L = α, M = ℓ+α, d = ℓ and |Σ| = ℓ+α via
// Reed-Solomon codes; this package provides that instantiation over GF(q)
// for the smallest prime q ≥ M (see DESIGN.md for why the small alphabet
// relaxation preserves every property the constructions need), plus trivial
// reference codes used in tests.
//
// Symbols are represented as integers in [1, q] — matching the paper's
// Σ = {1, ..., ℓ+α} convention, where the symbol at position h of a codeword
// names one node of the code-gadget clique C_h.
package code

import (
	"errors"
	"fmt"

	"congestlb/internal/field"
)

// Code is a code-mapping per Definition 3. Messages are indexed 0-based:
// message m ∈ [0, NumMessages()) corresponds to the paper's m'th element of
// Σ^α under a fixed ordering.
type Code interface {
	// Params returns the code parameters: message length L, codeword
	// length M, guaranteed minimum distance d, and alphabet size q.
	Params() (l, m, d, q int)
	// NumMessages returns how many distinct messages the code accepts;
	// Encode accepts m in [0, NumMessages()).
	NumMessages() int
	// Encode returns the codeword of message index m as a length-M slice
	// of symbols in [1, q]. The returned slice is freshly allocated.
	Encode(m int) ([]int, error)
}

// Distance returns the Hamming distance between two equal-length words.
// It panics if the lengths differ, which is a programming error.
func Distance(x, y []int) int {
	if len(x) != len(y) {
		panic(fmt.Sprintf("code: distance of words with lengths %d and %d", len(x), len(y)))
	}
	d := 0
	for i := range x {
		if x[i] != y[i] {
			d++
		}
	}
	return d
}

// ErrMessageRange is returned when Encode is called with an out-of-range
// message index.
var ErrMessageRange = errors.New("code: message index out of range")

// ReedSolomon is the code-mapping of Theorem 4: messages of length L over
// GF(q) are interpreted as coefficient vectors of polynomials of degree < L,
// evaluated at M distinct points of GF(q). Distinct messages yield
// polynomials differing in a polynomial of degree < L, which has at most
// L-1 roots, so the distance is at least M-L+1 ≥ M-L = d.
//
// Every codeword is additionally offset by the fixed polynomial g(x) = x^L.
// Adding a fixed polynomial to all codewords preserves pairwise distances,
// and makes the small presets reproduce the paper's figures exactly: with
// L=1, M=3, q=3 the codeword of message 1 is "2,3,1", matching Figure 1's
// C(1) = "2,3,1".
type ReedSolomon struct {
	f           field.Field
	l, m        int
	points      []uint64 // the M evaluation points, x_h = h mod q for h = 1..M
	numMessages int
}

var _ Code = (*ReedSolomon)(nil)

// NewReedSolomon constructs a Reed-Solomon code-mapping with message length
// l over GF(q) with codeword length m. It requires 1 <= l <= m <= q and
// prime q. numMessages limits how many messages are usable; pass 0 to allow
// the full q^l message space.
func NewReedSolomon(l, m int, q uint64, numMessages int) (*ReedSolomon, error) {
	if l < 1 {
		return nil, fmt.Errorf("code: message length L=%d must be >= 1", l)
	}
	if m < l {
		return nil, fmt.Errorf("code: codeword length M=%d must be >= L=%d", m, l)
	}
	if uint64(m) > q {
		return nil, fmt.Errorf("code: codeword length M=%d exceeds alphabet size q=%d", m, q)
	}
	f, err := field.New(q)
	if err != nil {
		return nil, fmt.Errorf("code: alphabet size: %w", err)
	}
	maxMessages := messageSpaceSize(q, l)
	if numMessages == 0 {
		numMessages = maxMessages
	}
	if numMessages < 1 || numMessages > maxMessages {
		return nil, fmt.Errorf("code: numMessages=%d out of range [1, %d]", numMessages, maxMessages)
	}
	points := make([]uint64, m)
	for h := 0; h < m; h++ {
		// x_h = (h+1) mod q; distinct because m <= q.
		points[h] = uint64(h+1) % q
	}
	return &ReedSolomon{
		f:           f,
		l:           l,
		m:           m,
		points:      points,
		numMessages: numMessages,
	}, nil
}

// messageSpaceSize returns min(q^l, 1<<31-1) guarding against overflow.
func messageSpaceSize(q uint64, l int) int {
	const cap31 = 1<<31 - 1
	size := uint64(1)
	for i := 0; i < l; i++ {
		size *= q
		if size > cap31 {
			return cap31
		}
	}
	return int(size)
}

// Params implements Code. The guaranteed distance is d = M - L, per
// Theorem 4 (the true RS distance is M-L+1, but the paper's constructions
// only rely on M-L).
func (rs *ReedSolomon) Params() (l, m, d, q int) {
	return rs.l, rs.m, rs.m - rs.l, int(rs.f.P())
}

// NumMessages implements Code.
func (rs *ReedSolomon) NumMessages() int { return rs.numMessages }

// Encode implements Code. Message index m is decomposed into base-q digits
// c_0..c_{L-1}; the codeword is p(x_h)+1 for h = 1..M where
// p(x) = x^L + Σ_j c_j x^j.
func (rs *ReedSolomon) Encode(m int) ([]int, error) {
	if m < 0 || m >= rs.numMessages {
		return nil, fmt.Errorf("%w: %d not in [0, %d)", ErrMessageRange, m, rs.numMessages)
	}
	q := rs.f.P()
	// coeffs[0..L-1] are the message digits; coeffs[L] = 1 is the fixed
	// offset monomial x^L shared by all codewords.
	coeffs := make([]uint64, rs.l+1)
	digits := uint64(m)
	for j := 0; j < rs.l; j++ {
		coeffs[j] = digits % q
		digits /= q
	}
	coeffs[rs.l] = 1
	word := make([]int, rs.m)
	for h, x := range rs.points {
		word[h] = int(rs.f.EvalPoly(coeffs, x)) + 1
	}
	return word, nil
}

// MustEncode is Encode for indices known to be valid; it panics on error.
func (rs *ReedSolomon) MustEncode(m int) []int {
	w, err := rs.Encode(m)
	if err != nil {
		panic(err)
	}
	return w
}

// Identity is the trivial code-mapping with L = M = 1 over alphabet [q]:
// message m maps to the single-symbol word (m+1). Its distance is 1. It
// exists to exercise the Code interface in tests with the simplest possible
// implementation.
type Identity struct {
	q int
}

var _ Code = (*Identity)(nil)

// NewIdentity returns the identity code over an alphabet of size q >= 1.
func NewIdentity(q int) (*Identity, error) {
	if q < 1 {
		return nil, fmt.Errorf("code: identity alphabet size %d must be >= 1", q)
	}
	return &Identity{q: q}, nil
}

// Params implements Code.
func (c *Identity) Params() (l, m, d, q int) { return 1, 1, 1, c.q }

// NumMessages implements Code.
func (c *Identity) NumMessages() int { return c.q }

// Encode implements Code.
func (c *Identity) Encode(m int) ([]int, error) {
	if m < 0 || m >= c.q {
		return nil, fmt.Errorf("%w: %d not in [0, %d)", ErrMessageRange, m, c.q)
	}
	return []int{m + 1}, nil
}

// FirstSymbol is a deliberately weak code used by the ablation studies:
// message m maps to (m+1, 1, 1, ..., 1), so distinct codewords differ only
// in the first position and the pairwise distance is exactly 1. Plugging it
// into the lower-bound constructions breaks Property 2 (no large matching
// between Code^i_m1 and Code^j_m2), which lets the disjoint-case MaxIS blow
// past the Claim 5 bound — demonstrating why the constructions need
// large-distance codes.
type FirstSymbol struct {
	q, m int
}

var _ Code = (*FirstSymbol)(nil)

// NewFirstSymbol returns the weak code with codeword length m over alphabet
// size q; it admits q messages.
func NewFirstSymbol(q, m int) (*FirstSymbol, error) {
	if q < 1 || m < 1 {
		return nil, fmt.Errorf("code: first-symbol params q=%d m=%d must be >= 1", q, m)
	}
	return &FirstSymbol{q: q, m: m}, nil
}

// Params implements Code. The honest guaranteed distance is 1.
func (c *FirstSymbol) Params() (l, m, d, q int) { return 1, c.m, 1, c.q }

// NumMessages implements Code.
func (c *FirstSymbol) NumMessages() int { return c.q }

// Encode implements Code.
func (c *FirstSymbol) Encode(m int) ([]int, error) {
	if m < 0 || m >= c.q {
		return nil, fmt.Errorf("%w: %d not in [0, %d)", ErrMessageRange, m, c.q)
	}
	word := make([]int, c.m)
	for i := range word {
		word[i] = 1
	}
	word[0] = m + 1
	return word, nil
}

// Repetition is the M-fold repetition code over alphabet [q]: message m maps
// to (m+1, ..., m+1). Its distance is exactly M. Used as a reference code
// with easily predictable distance in tests.
type Repetition struct {
	q, m int
}

var _ Code = (*Repetition)(nil)

// NewRepetition returns the M-fold repetition code over alphabet size q.
func NewRepetition(q, m int) (*Repetition, error) {
	if q < 1 || m < 1 {
		return nil, fmt.Errorf("code: repetition params q=%d m=%d must be >= 1", q, m)
	}
	return &Repetition{q: q, m: m}, nil
}

// Params implements Code.
func (c *Repetition) Params() (l, m, d, q int) { return 1, c.m, c.m, c.q }

// NumMessages implements Code.
func (c *Repetition) NumMessages() int { return c.q }

// Encode implements Code.
func (c *Repetition) Encode(m int) ([]int, error) {
	if m < 0 || m >= c.q {
		return nil, fmt.Errorf("%w: %d not in [0, %d)", ErrMessageRange, m, c.q)
	}
	word := make([]int, c.m)
	for i := range word {
		word[i] = m + 1
	}
	return word, nil
}
