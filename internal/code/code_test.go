package code

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestDistance(t *testing.T) {
	tests := []struct {
		name string
		x, y []int
		want int
	}{
		{name: "equal", x: []int{1, 2, 3}, y: []int{1, 2, 3}, want: 0},
		{name: "all differ", x: []int{1, 2, 3}, y: []int{3, 1, 2}, want: 3},
		{name: "one differs", x: []int{1, 2, 3}, y: []int{1, 9, 3}, want: 1},
		{name: "empty", x: nil, y: nil, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Distance(tt.x, tt.y); got != tt.want {
				t.Fatalf("Distance = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestDistancePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Distance with mismatched lengths did not panic")
		}
	}()
	Distance([]int{1}, []int{1, 2})
}

func TestNewReedSolomonValidation(t *testing.T) {
	tests := []struct {
		name        string
		l, m        int
		q           uint64
		numMessages int
		wantErr     bool
	}{
		{name: "figure preset", l: 1, m: 3, q: 3, numMessages: 3, wantErr: false},
		{name: "full message space", l: 2, m: 4, q: 5, numMessages: 0, wantErr: false},
		{name: "L too small", l: 0, m: 3, q: 3, wantErr: true},
		{name: "M below L", l: 3, m: 2, q: 5, wantErr: true},
		{name: "M above q", l: 1, m: 6, q: 5, wantErr: true},
		{name: "composite q", l: 1, m: 3, q: 4, wantErr: true},
		{name: "too many messages", l: 1, m: 3, q: 3, numMessages: 4, wantErr: true},
		{name: "negative messages", l: 1, m: 3, q: 3, numMessages: -1, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewReedSolomon(tt.l, tt.m, tt.q, tt.numMessages)
			if (err != nil) != tt.wantErr {
				t.Fatalf("NewReedSolomon error = %v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestReedSolomonMatchesFigure1(t *testing.T) {
	// The paper's Figure 1 preset: ℓ=2, α=1 so L=1, M=3, q=3, k=3, and
	// the code-mapping of message 1 is "2,3,1".
	rs, err := NewReedSolomon(1, 3, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{
		{2, 3, 1}, // C(1) in the paper's 1-based indexing = message 0 here
		{3, 1, 2},
		{1, 2, 3},
	}
	for m, w := range want {
		got, err := rs.Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		if Distance(got, w) != 0 {
			t.Fatalf("Encode(%d) = %v, want %v", m, got, w)
		}
	}
}

func TestReedSolomonParams(t *testing.T) {
	rs, err := NewReedSolomon(2, 7, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	l, m, d, q := rs.Params()
	if l != 2 || m != 7 || d != 5 || q != 11 {
		t.Fatalf("Params = (%d,%d,%d,%d), want (2,7,5,11)", l, m, d, q)
	}
	if rs.NumMessages() != 121 {
		t.Fatalf("NumMessages = %d, want 121", rs.NumMessages())
	}
}

func TestReedSolomonEncodeRange(t *testing.T) {
	rs, err := NewReedSolomon(1, 3, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Encode(-1); !errors.Is(err, ErrMessageRange) {
		t.Fatalf("Encode(-1) error = %v, want ErrMessageRange", err)
	}
	if _, err := rs.Encode(3); !errors.Is(err, ErrMessageRange) {
		t.Fatalf("Encode(3) error = %v, want ErrMessageRange", err)
	}
}

func TestReedSolomonDistanceExhaustive(t *testing.T) {
	// Theorem 4: distance >= M-L for every pair. Check exhaustively on a
	// spread of parameter choices.
	tests := []struct {
		l, m int
		q    uint64
	}{
		{l: 1, m: 3, q: 3},
		{l: 1, m: 5, q: 5},
		{l: 2, m: 4, q: 5},
		{l: 2, m: 5, q: 7},
		{l: 3, m: 7, q: 7},
		{l: 2, m: 11, q: 11},
		{l: 3, m: 9, q: 13},
	}
	for _, tt := range tests {
		rs, err := NewReedSolomon(tt.l, tt.m, tt.q, 0)
		if err != nil {
			t.Fatal(err)
		}
		report, err := AuditExhaustive(rs)
		if err != nil {
			t.Fatal(err)
		}
		if wantD := tt.m - tt.l; report.MinDistance < wantD {
			t.Fatalf("RS(L=%d,M=%d,q=%d): %v, want min distance >= %d",
				tt.l, tt.m, tt.q, report, wantD)
		}
		// RS actually achieves M-L+1.
		if wantExact := tt.m - tt.l + 1; report.MinDistance != wantExact {
			t.Fatalf("RS(L=%d,M=%d,q=%d): min distance %d, want exactly %d",
				tt.l, tt.m, tt.q, report.MinDistance, wantExact)
		}
	}
}

func TestReedSolomonDistanceSampledLarge(t *testing.T) {
	rs, err := NewReedSolomon(3, 97, 97, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	report, err := AuditSampled(rs, 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Satisfies(97 - 3) {
		t.Fatalf("large RS code: %v, want min distance >= 94", report)
	}
}

func TestReedSolomonWordsValid(t *testing.T) {
	rs, err := NewReedSolomon(2, 6, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < rs.NumMessages(); m++ {
		w, err := rs.Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateWord(rs, w); err != nil {
			t.Fatalf("message %d: %v", m, err)
		}
	}
}

func TestReedSolomonDeterministic(t *testing.T) {
	rs, err := NewReedSolomon(2, 5, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 10; m++ {
		a := rs.MustEncode(m)
		b := rs.MustEncode(m)
		if Distance(a, b) != 0 {
			t.Fatalf("Encode(%d) not deterministic: %v vs %v", m, a, b)
		}
	}
}

func TestReedSolomonInjective(t *testing.T) {
	rs, err := NewReedSolomon(2, 4, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]int)
	for m := 0; m < rs.NumMessages(); m++ {
		w := rs.MustEncode(m)
		key := ""
		for _, s := range w {
			key += string(rune('A' + s))
		}
		if prev, dup := seen[key]; dup {
			t.Fatalf("messages %d and %d share codeword %v", prev, m, w)
		}
		seen[key] = m
	}
}

func TestReedSolomonQuickDistance(t *testing.T) {
	rs, err := NewReedSolomon(2, 13, 13, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := rs.NumMessages()
	cfg := &quick.Config{
		MaxCount: 300,
		Rand:     rand.New(rand.NewSource(7)),
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Intn(n))
			vals[1] = reflect.ValueOf(r.Intn(n))
		},
	}
	prop := func(m1, m2 int) bool {
		w1, w2 := rs.MustEncode(m1), rs.MustEncode(m2)
		d := Distance(w1, w2)
		if m1 == m2 {
			return d == 0
		}
		return d >= 13-2
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestIdentityCode(t *testing.T) {
	c, err := NewIdentity(4)
	if err != nil {
		t.Fatal(err)
	}
	l, m, d, q := c.Params()
	if l != 1 || m != 1 || d != 1 || q != 4 {
		t.Fatalf("identity params (%d,%d,%d,%d)", l, m, d, q)
	}
	w, err := c.Encode(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 1 || w[0] != 3 {
		t.Fatalf("identity Encode(2) = %v", w)
	}
	if _, err := c.Encode(4); err == nil {
		t.Fatal("identity Encode(4) should fail")
	}
	if _, err := NewIdentity(0); err == nil {
		t.Fatal("NewIdentity(0) should fail")
	}
}

func TestRepetitionCode(t *testing.T) {
	c, err := NewRepetition(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	report, err := AuditExhaustive(c)
	if err != nil {
		t.Fatal(err)
	}
	if report.MinDistance != 5 {
		t.Fatalf("repetition distance = %d, want 5", report.MinDistance)
	}
	if _, err := NewRepetition(0, 1); err == nil {
		t.Fatal("NewRepetition(0,1) should fail")
	}
}

func TestAuditExhaustiveRefusesHuge(t *testing.T) {
	rs, err := NewReedSolomon(3, 101, 101, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AuditExhaustive(rs); err == nil {
		t.Fatal("AuditExhaustive should refuse 101^3 messages")
	}
}

func TestAuditSampledTinySpace(t *testing.T) {
	c, err := NewIdentity(1)
	if err != nil {
		t.Fatal(err)
	}
	report, err := AuditSampled(c, 100, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if report.PairsChecked != 0 {
		t.Fatalf("single-message audit checked %d pairs", report.PairsChecked)
	}
}

func TestValidateWord(t *testing.T) {
	rs, err := NewReedSolomon(1, 3, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateWord(rs, []int{1, 2}); err == nil {
		t.Fatal("short word should fail validation")
	}
	if err := ValidateWord(rs, []int{1, 2, 4}); err == nil {
		t.Fatal("out-of-alphabet symbol should fail validation")
	}
	if err := ValidateWord(rs, []int{0, 2, 3}); err == nil {
		t.Fatal("symbol 0 should fail validation")
	}
	if err := ValidateWord(rs, []int{1, 2, 3}); err != nil {
		t.Fatalf("valid word rejected: %v", err)
	}
}

func BenchmarkReedSolomonEncode(b *testing.B) {
	rs, err := NewReedSolomon(2, 16, 17, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = rs.MustEncode(i % rs.NumMessages())
	}
}
