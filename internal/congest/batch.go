package congest

import (
	"context"
	"fmt"
	"math/rand"

	"congestlb/internal/fault"
	"congestlb/internal/graphs"
	"congestlb/internal/obs"
)

// The batch engine: RunBatch advances B instances in lockstep through one
// round-major engine pass, amortising dispatch over the whole sweep and
// laying node state out structure-of-arrays — inboxes, outboxes and the
// duplicate-destination marks of all instances live in three flat slabs
// indexed off(i)+node, with one stamp counter serving the entire batch.
// Instances that share a *graphs.Graph (a sweep over one built instance,
// one graph family repeated) share its adjacency bitsets untouched; each
// instance keeps a private payload arena, Stats and error, so per-instance
// Results are bit-identical to running the same Network alone. Instances
// that fail — validation, MaxRounds, a hook error — drop out of the
// lockstep individually; the rest keep running.

// BatchItem is one instance of a batched run. Config.Parallel and
// Config.Workers are ignored: batching and pipelining are the two ends of
// the same trade ("split one big instance across workers; batch many
// small ones"), so batched instances always run the lockstep engine.
type BatchItem struct {
	Graph    *graphs.Graph
	Programs []NodeProgram
	Config   Config
}

// BatchStats describes one RunBatch pass.
type BatchStats struct {
	// Instances is the number of items submitted.
	Instances int
	// SharedGraphs counts items whose *graphs.Graph pointer appeared
	// earlier in the batch — adjacency those instances share instead of
	// duplicating.
	SharedGraphs int
	// EngineRounds is the number of lockstep rounds the engine stepped
	// (the longest instance's round count); TotalRounds sums the
	// per-instance counts. TotalRounds/EngineRounds is the dispatch
	// amortisation the batch bought.
	EngineRounds int
	TotalRounds  int64
}

// batchInst is one instance's engine state. inboxes/outboxes/seen are
// views into the batch's shared slabs.
type batchInst struct {
	g         *graphs.Graph
	programs  []NodeProgram
	buffered  []BufferedProgram
	hook      MessageHook
	bw        int64
	maxRounds int
	inboxes   [][]Message
	outboxes  [][]Message
	seen      []int64
	arena     byteArena
	stats     Stats
}

// RunBatch runs every item to termination through one lockstep engine
// pass and returns per-item results and errors (results[i] is zero iff
// errs[i] is non-nil). Each item behaves exactly as a dedicated
// Network.RunCtx would: same round counts, stats, outputs, hook call
// sequence and error strings. The context is observed once per lockstep
// round — the same cadence as the sequential engine — and cancels every
// still-live instance. A nil ctx means Background. Items whose
// Config.Metrics is nil inherit engine metrics from a context-bound
// obs.Registry (obs.NewContext), if any, so direct RunBatch callers
// under an observed run are accounted without stamping every item.
func RunBatch(ctx context.Context, items []BatchItem) ([]Result, []error, BatchStats) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctxMetrics := NewEngineMetrics(obs.FromContext(ctx)); ctxMetrics != nil {
		for i := range items {
			if items[i].Config.Metrics == nil {
				items[i].Config.Metrics = ctxMetrics
			}
		}
	}
	results := make([]Result, len(items))
	errs := make([]error, len(items))
	bstats := BatchStats{Instances: len(items)}

	// Admission: the NewNetwork checks, applied per item so one invalid
	// item fails alone instead of sinking the sweep.
	insts := make([]*batchInst, len(items))
	seenGraphs := make(map[*graphs.Graph]bool, len(items))
	total := 0
	live := 0
	// bm records the pass-level batch metrics; the items of one pass come
	// from one caller, so the first item carrying handles speaks for all.
	var bm *EngineMetrics
	for i, it := range items {
		if bm == nil {
			bm = it.Config.Metrics
		}
		if it.Graph == nil {
			errs[i] = fmt.Errorf("congest: nil graph")
			continue
		}
		if seenGraphs[it.Graph] {
			bstats.SharedGraphs++
		} else {
			seenGraphs[it.Graph] = true
		}
		size := it.Graph.N()
		if len(it.Programs) != size {
			errs[i] = fmt.Errorf("congest: %d programs for %d nodes", len(it.Programs), size)
			continue
		}
		nilProg := false
		for u, pr := range it.Programs {
			if pr == nil {
				errs[i] = fmt.Errorf("congest: nil program at node %d", u)
				nilProg = true
				break
			}
		}
		if nilProg {
			continue
		}
		bw := it.Config.BandwidthBits
		if bw == 0 {
			bw = DefaultBandwidth(size)
		}
		if bw < 1 {
			errs[i] = fmt.Errorf("congest: bandwidth %d bits must be >= 1", bw)
			continue
		}
		maxRounds := it.Config.MaxRounds
		if maxRounds == 0 {
			maxRounds = 4*size*size + 64
		}
		buffered := make([]BufferedProgram, size)
		for u, pr := range it.Programs {
			if bp, ok := pr.(BufferedProgram); ok {
				buffered[u] = bp
			}
		}
		insts[i] = &batchInst{
			g:         it.Graph,
			programs:  it.Programs,
			buffered:  buffered,
			hook:      it.Config.Hook,
			bw:        bw,
			maxRounds: maxRounds,
		}
		total += size
		live++
	}

	// The structure-of-arrays slabs: one allocation per state kind for
	// the whole batch, sliced into per-instance windows.
	inSlab := make([][]Message, total)
	outSlab := make([][]Message, total)
	seenSlab := make([]int64, total)
	off := 0
	for i, inst := range insts {
		if inst == nil {
			continue
		}
		size := inst.g.N()
		inst.inboxes = inSlab[off : off+size : off+size]
		inst.outboxes = outSlab[off : off+size : off+size]
		inst.seen = seenSlab[off : off+size : off+size]
		off += size
		seed := items[i].Config.Seed
		for u := 0; u < size; u++ {
			inst.programs[u].Init(NodeInfo{
				ID:        u,
				Weight:    inst.g.Weight(u),
				Neighbors: inst.g.Neighbors(u),
				N:         size,
				Rand:      rand.New(rand.NewSource(seed ^ (int64(u)+1)*0x5DEECE66D)),
			})
		}
	}

	ctxDone := ctx.Done()
	var stamp int64 // shared across the batch; only ever grows
	for round := 1; live > 0; round++ {
		if ctxDone != nil {
			select {
			case <-ctxDone:
				for i, inst := range insts {
					if inst != nil {
						errs[i] = fmt.Errorf("congest: run cancelled in round %d: %w", round, ctx.Err())
						insts[i] = nil
					}
				}
				live = 0
				continue
			default:
			}
		}
		for i, inst := range insts {
			if inst == nil {
				continue
			}
			finished, err := stepRoundSafe(inst, i, round, &stamp)
			if err != nil {
				errs[i] = err
				insts[i] = nil
				live--
				continue
			}
			if finished {
				results[i] = inst.collect()
				items[i].Config.Metrics.recordRun(inst.stats)
				bstats.TotalRounds += int64(inst.stats.Rounds)
				if inst.stats.Rounds > bstats.EngineRounds {
					bstats.EngineRounds = inst.stats.Rounds
				}
				insts[i] = nil
				live--
			}
		}
	}
	bm.recordBatch(bstats)
	return results, errs, bstats
}

// stepRoundSafe is stepRound with panic containment: a panicking node
// program drops only its own instance out of the lockstep pass (the
// per-instance error contract RunBatch already has for validation
// failures) while the sibling instances keep stepping. The instance slabs
// are per-instance, so a half-stepped panicked instance cannot corrupt
// its neighbours.
func stepRoundSafe(b *batchInst, i, round int, stamp *int64) (finished bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			finished = false
			err = fault.NewPanicError(fmt.Sprintf("batch instance %d (round %d)", i, round), r)
		}
	}()
	return b.stepRound(round, stamp)
}

// stepRound advances the instance by one round, mirroring the sequential
// RunCtx loop body: MaxRounds check, termination check, compute, then
// validate/account/deliver in sender-ID order out of the instance's
// arena. finished=true means the instance terminated at this round
// boundary with stats.Rounds recorded.
func (b *batchInst) stepRound(round int, stamp *int64) (finished bool, err error) {
	if round > b.maxRounds {
		return false, fmt.Errorf("%w: %d", ErrMaxRounds, b.maxRounds)
	}
	size := len(b.programs)
	allDone := true
	for u := 0; u < size; u++ {
		if !b.programs[u].Done() {
			allDone = false
			break
		}
	}
	if allDone {
		b.stats.Rounds = round - 1
		return true, nil
	}

	for u := 0; u < size; u++ {
		if b.programs[u].Done() {
			b.outboxes[u] = b.outboxes[u][:0]
			continue
		}
		if bp := b.buffered[u]; bp != nil {
			b.outboxes[u] = bp.AppendRound(round, b.inboxes[u], b.outboxes[u][:0])
		} else {
			b.outboxes[u] = b.programs[u].Round(round, b.inboxes[u])
		}
	}

	b.arena.reset()
	for u := 0; u < size; u++ {
		b.inboxes[u] = b.inboxes[u][:0]
	}
	for u := 0; u < size; u++ {
		*stamp++
		for _, msg := range b.outboxes[u] {
			if verr := validateMsg(b.g, b.bw, u, msg, round, b.seen, *stamp); verr != nil {
				return false, verr
			}
			b.stats.Messages++
			bits := msg.Bits()
			b.stats.TotalBits += bits
			if bits > b.stats.MaxMessageBits {
				b.stats.MaxMessageBits = bits
			}
			delivered := Message{From: msg.From, To: msg.To, Data: b.arena.copy(msg.Data)}
			if b.hook != nil {
				if herr := b.hook(round, delivered); herr != nil {
					return false, fmt.Errorf("congest: hook: %w", herr)
				}
			}
			b.inboxes[msg.To] = append(b.inboxes[msg.To], delivered)
		}
	}
	return false, nil
}

func (b *batchInst) collect() Result {
	outputs := make([]any, len(b.programs))
	for u := range outputs {
		outputs[u] = b.programs[u].Output()
	}
	return Result{Stats: b.stats, Outputs: outputs}
}
