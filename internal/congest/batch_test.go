package congest

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// runSolo executes one BatchItem as a dedicated Network — the reference
// the batch engine must match bit-for-bit.
func runSolo(t *testing.T, item BatchItem) (Result, error) {
	t.Helper()
	net, err := NewNetwork(item.Graph, item.Programs, item.Config)
	if err != nil {
		return Result{}, err
	}
	return net.Run()
}

// batchItems builds a mixed sweep: different graphs, program kinds, seeds
// and termination times, including two items sharing one graph pointer.
func batchItems(t *testing.T) []BatchItem {
	t.Helper()
	shared := ring(t, 12)
	stag := func(n int) []NodeProgram {
		out := make([]NodeProgram, n)
		for i := range out {
			out[i] = &staggered{}
		}
		return out
	}
	return []BatchItem{
		{Graph: shared, Programs: floodPrograms(12), Config: Config{Seed: 3}},
		{Graph: star(t, 9), Programs: floodPrograms(9), Config: Config{Seed: 5}},
		{Graph: shared, Programs: stag(12), Config: Config{Seed: 7}},
		{Graph: ring(t, 5), Programs: stag(5), Config: Config{Seed: 11}},
	}
}

// TestBatchMatchesIndividualRuns is the tentpole contract: every item of
// a RunBatch pass returns the result (and hook transcript) a dedicated
// Network.Run would, and the batch stats add up.
func TestBatchMatchesIndividualRuns(t *testing.T) {
	// Reference transcripts from solo runs.
	solo := make([]Result, 4)
	soloTx := make([][]hookRec, 4)
	items := batchItems(t)
	for i := range items {
		i := i
		items[i].Config.Hook = func(round int, msg Message) error {
			soloTx[i] = append(soloTx[i], hookRec{round: round, from: msg.From, to: msg.To, data: string(msg.Data)})
			return nil
		}
		res, err := runSolo(t, items[i])
		if err != nil {
			t.Fatalf("item %d solo: %v", i, err)
		}
		solo[i] = res
	}

	batchTx := make([][]hookRec, 4)
	items = batchItems(t) // fresh programs
	for i := range items {
		i := i
		items[i].Config.Hook = func(round int, msg Message) error {
			batchTx[i] = append(batchTx[i], hookRec{round: round, from: msg.From, to: msg.To, data: string(msg.Data)})
			return nil
		}
	}
	results, errs, stats := RunBatch(context.Background(), items)
	var totalRounds int64
	maxRounds := 0
	for i := range items {
		if errs[i] != nil {
			t.Fatalf("item %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(solo[i], results[i]) {
			t.Fatalf("item %d diverged:\nsolo  %+v\nbatch %+v", i, solo[i], results[i])
		}
		if !reflect.DeepEqual(soloTx[i], batchTx[i]) {
			t.Fatalf("item %d hook transcript diverged (%d vs %d records)", i, len(soloTx[i]), len(batchTx[i]))
		}
		totalRounds += int64(results[i].Stats.Rounds)
		if results[i].Stats.Rounds > maxRounds {
			maxRounds = results[i].Stats.Rounds
		}
	}
	want := BatchStats{Instances: 4, SharedGraphs: 1, EngineRounds: maxRounds, TotalRounds: totalRounds}
	if stats != want {
		t.Fatalf("batch stats %+v, want %+v", stats, want)
	}
}

// TestBatchPerItemErrors: invalid and misbehaving items fail individually
// with the same error strings as solo runs; the healthy items still
// complete with identical results.
func TestBatchPerItemErrors(t *testing.T) {
	g := ring(t, 6)
	bad := func() []NodeProgram {
		programs := make([]NodeProgram, 6)
		programs[0] = &misbehaver{msg: Message{From: 0, To: 3, Data: []byte{1}}}
		for i := 1; i < 6; i++ {
			programs[i] = &silent{}
		}
		return programs
	}
	never := func() []NodeProgram {
		programs := make([]NodeProgram, 6)
		for i := range programs {
			programs[i] = &chatterbox{}
		}
		return programs
	}
	items := []BatchItem{
		{Graph: nil, Programs: nil, Config: Config{}},
		{Graph: g, Programs: bad(), Config: Config{}},
		{Graph: g, Programs: floodPrograms(6), Config: Config{Seed: 9}},
		{Graph: g, Programs: never(), Config: Config{MaxRounds: 10}},
		{Graph: g, Programs: floodPrograms(5), Config: Config{}},
	}
	_, soloBadErr := runSolo(t, BatchItem{Graph: g, Programs: bad(), Config: Config{}})
	soloGood, err := runSolo(t, BatchItem{Graph: g, Programs: floodPrograms(6), Config: Config{Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}

	results, errs, stats := RunBatch(context.Background(), items)
	if errs[0] == nil {
		t.Fatal("nil graph accepted")
	}
	if errs[1] == nil || errs[1].Error() != soloBadErr.Error() {
		t.Fatalf("misbehaving item error %q, solo %q", errs[1], soloBadErr)
	}
	if errs[2] != nil {
		t.Fatalf("healthy item failed: %v", errs[2])
	}
	if !reflect.DeepEqual(soloGood, results[2]) {
		t.Fatalf("healthy item diverged:\nsolo  %+v\nbatch %+v", soloGood, results[2])
	}
	if !errors.Is(errs[3], ErrMaxRounds) {
		t.Fatalf("chatterbox item error %v, want ErrMaxRounds", errs[3])
	}
	if errs[4] == nil {
		t.Fatal("program count mismatch accepted")
	}
	if stats.Instances != 5 || stats.SharedGraphs != 3 {
		t.Fatalf("stats %+v: want 5 instances, 3 shared graph references", stats)
	}
}

// TestBatchCancelled: a fired context fails every still-live instance
// with the sequential engine's cancellation error.
func TestBatchCancelled(t *testing.T) {
	g := ring(t, 6)
	programs := make([]NodeProgram, 6)
	for i := range programs {
		programs[i] = &chatterbox{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, errs, _ := RunBatch(ctx, []BatchItem{{Graph: g, Programs: programs, Config: Config{}}})
	if !errors.Is(errs[0], context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", errs[0])
	}
}

// TestBatchEmpty: the degenerate pass is a no-op, not a panic.
func TestBatchEmpty(t *testing.T) {
	results, errs, stats := RunBatch(context.Background(), nil)
	if len(results) != 0 || len(errs) != 0 || stats.Instances != 0 {
		t.Fatalf("empty batch: results=%d errs=%d stats=%+v", len(results), len(errs), stats)
	}
}
