// Package congest simulates the CONGEST model of distributed computing:
// a synchronous network of n nodes with unique O(log n)-bit identifiers,
// where in every round each node may send a (possibly different) B-bit
// message to each of its neighbours, with B = O(log n).
//
// The simulator enforces the bandwidth bound bit-exactly, accounts every
// message, and exposes a per-message hook that the reduction framework
// (internal/core) uses to route cut-edge messages onto a communication-
// complexity blackboard, realising the simulation argument of Theorem 5 in
// Efron, Grossman and Khoury (PODC 2020).
//
// Node behaviour is written as a NodeProgram state machine. The engine can
// run programs sequentially (fully deterministic), or on a two-stage
// pipeline over persistent workers holding contiguous node ranges, where
// round k+1's compute overlaps round k's delivery (deterministic too:
// message delivery is ordered by node ID, per-node randomness comes from
// per-node seeded generators, and a barrier protocol keeps transcripts
// bit-identical — see pipeline.go). Many small instances can additionally
// run through one lockstep engine pass via RunBatch (see batch.go).
//
// The round loop is (near-)zero-allocation: delivered payloads live in a
// per-round byte arena reused across rounds, inbox/outbox backing arrays
// are recycled, duplicate-send detection uses a stamped array instead of
// per-round maps, and adjacency checks hit the graph's bitset rows
// directly. See docs/performance.md for the architecture and measurements.
package congest

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sync/atomic"

	"congestlb/internal/graphs"
)

// Message is a payload sent over one edge in one round.
type Message struct {
	// From and To are the endpoint node IDs; To must be a neighbour of
	// From in the network graph.
	From, To graphs.NodeID
	// Data is the payload; its bit size is 8*len(Data) and must not
	// exceed the per-edge bandwidth. Delivered payloads are only valid
	// for the duration of the Round (or hook) call that receives them:
	// the engine recycles the backing storage, so programs that keep a
	// payload across rounds must copy it.
	Data []byte
}

// Bits returns the bandwidth charge of the message.
func (m Message) Bits() int64 { return int64(len(m.Data)) * 8 }

// NodeInfo is the static knowledge a node starts with: its own identifier,
// weight, neighbourhood, the network size (a standard CONGEST assumption),
// and a private random generator.
type NodeInfo struct {
	ID        graphs.NodeID
	Weight    int64
	Neighbors []graphs.NodeID
	// N is the number of nodes in the network.
	N int
	// Rand is the node's private randomness, seeded deterministically
	// from the engine seed and the node ID.
	Rand *rand.Rand
}

// NodeProgram is the per-node state machine. Implementations must not
// retain or mutate the inbox slice — or any message payload in it — across
// calls: the engine reuses both between rounds.
type NodeProgram interface {
	// Init is called once before the first round.
	Init(info NodeInfo)
	// Round consumes the messages delivered this round (sent by
	// neighbours in the previous round; empty in round 1) and returns the
	// messages to send. Returning a message to a non-neighbour or two
	// messages to the same neighbour is an error. Returned payloads only
	// need to stay valid until the program's next Round call: the engine
	// copies them into its delivery arena, so programs may (and should)
	// encode payloads into per-program scratch buffers.
	Round(round int, inbox []Message) []Message
	// Done reports whether the node has terminated. A terminated node
	// stops sending; the run ends when every node is done.
	Done() bool
	// Output returns the node's final output (algorithm-specific).
	Output() any
}

// BufferedProgram is an optional NodeProgram extension for allocation-free
// sending: the engine calls AppendRound with a reusable outbox slice (length
// zero, capacity recycled across rounds) instead of Round, so steady-state
// rounds need no outbox allocation at all. Round and AppendRound must be
// behaviourally identical; Round is still used by engines unaware of the
// extension.
type BufferedProgram interface {
	NodeProgram
	// AppendRound is Round, but appends the outgoing messages to out
	// (always non-nil with length 0) and returns it.
	AppendRound(round int, inbox []Message, out []Message) []Message
}

// MessageHook observes every delivered message. The reduction framework
// uses it to charge cut-edge messages to a blackboard. The message payload
// is only valid for the duration of the call; hooks that retain it must
// copy.
type MessageHook func(round int, msg Message) error

// Config parameterises a simulation run.
type Config struct {
	// BandwidthBits is B, the per-edge per-direction bit budget per
	// round. 0 selects the CONGEST default 32·⌈log₂(n+2)⌉ bits — a
	// Θ(log n) bandwidth with a constant generous enough to carry a node
	// ID plus a small header in one message even on tiny test networks.
	BandwidthBits int64
	// MaxRounds aborts runs that fail to terminate; 0 means 4·n²+64,
	// comfortably above the O(n²) universal upper bound the paper cites.
	MaxRounds int
	// Seed drives all node randomness; runs with equal seeds are
	// identical.
	Seed int64
	// Parallel selects the pipelined engine: node ranges are computed by
	// a persistent worker set, and round k+1's compute overlaps round k's
	// delivery. Results are bit-identical to the sequential engine; only
	// wall-clock differs. The CONGESTLB_PIPELINE environment variable
	// overrides this field for every run ("1"/"on"/"force" enables,
	// "0"/"off" disables) — the forcing lever the determinism CI uses.
	Parallel bool
	// Workers caps the pipelined engine's worker count; 0 means
	// GOMAXPROCS. The determinism suites pin 1/2/4/8 regardless of host
	// core count. With one effective worker the sequential engine runs —
	// the pipeline would have nothing to overlap.
	Workers int
	// Hook, if set, observes every delivered message.
	Hook MessageHook
	// Metrics, if set, receives the run's cost counters on successful
	// completion (see EngineMetrics). internal/core stamps it from a
	// context-bound observability registry; direct engine users may set
	// it themselves. Nil costs nothing.
	Metrics *EngineMetrics
}

// DefaultBandwidth returns the default B for an n-node network.
func DefaultBandwidth(n int) int64 {
	return 32 * int64(math.Ceil(math.Log2(float64(n+2))))
}

// Stats aggregates the cost of a run.
type Stats struct {
	// Rounds is the number of rounds executed.
	Rounds int
	// Messages is the total number of messages delivered.
	Messages int64
	// TotalBits is the total payload volume delivered.
	TotalBits int64
	// MaxMessageBits is the largest single message observed.
	MaxMessageBits int64
}

// Result is the outcome of a completed run.
type Result struct {
	Stats Stats
	// Outputs holds each node's Output(), indexed by node ID.
	Outputs []any
}

// ErrBandwidthExceeded reports a message larger than B.
var ErrBandwidthExceeded = errors.New("congest: message exceeds bandwidth")

// ErrMaxRounds reports a run that did not terminate in time.
var ErrMaxRounds = errors.New("congest: exceeded maximum rounds")

// byteArena is a bump allocator for message payloads: copy carves a stable
// copy of p out of a backing block reused across rounds. Old blocks
// orphaned by growth stay valid for the slices already issued (the garbage
// collector reclaims them once those die), so growth never invalidates a
// delivered payload; in steady state, once the block covers the peak round
// volume, copy allocates nothing.
type byteArena struct {
	buf []byte
	off int
}

func (a *byteArena) copy(p []byte) []byte {
	if a.off+len(p) > len(a.buf) {
		size := 2 * (a.off + len(p))
		if size < 4096 {
			size = 4096
		}
		a.buf = make([]byte, size)
		a.off = 0
	}
	dst := a.buf[a.off : a.off+len(p) : a.off+len(p)]
	copy(dst, p)
	a.off += len(p)
	return dst
}

// reset recycles the arena for the next round. Slices issued before the
// reset must no longer be read.
func (a *byteArena) reset() { a.off = 0 }

// Network binds a graph to one NodeProgram per node.
type Network struct {
	g        *graphs.Graph
	programs []NodeProgram
	// buffered[u] is programs[u] if it implements BufferedProgram, else
	// nil; resolved once so the round loop avoids per-call type asserts.
	buffered []BufferedProgram
	cfg      Config
	bw       int64

	// Reusable per-run state (see Run).
	inboxes  [][]Message
	outboxes [][]Message
	arena    byteArena
	// seen/seenStamp implement duplicate-destination detection without a
	// per-node-per-round map: seen[v] == seenStamp means v already
	// received a message from the outbox currently being validated.
	seen      []int64
	seenStamp int64
	// pipe holds the pipelined engine's state, retained across Run calls
	// like the sequential buffers above (nil until the first pipelined run).
	pipe *pipeline
}

// NewNetwork validates the wiring and prepares a run. programs[u] drives
// node u; len(programs) must equal g.N().
func NewNetwork(g *graphs.Graph, programs []NodeProgram, cfg Config) (*Network, error) {
	if g == nil {
		return nil, fmt.Errorf("congest: nil graph")
	}
	if len(programs) != g.N() {
		return nil, fmt.Errorf("congest: %d programs for %d nodes", len(programs), g.N())
	}
	for u, p := range programs {
		if p == nil {
			return nil, fmt.Errorf("congest: nil program at node %d", u)
		}
	}
	bw := cfg.BandwidthBits
	if bw == 0 {
		bw = DefaultBandwidth(g.N())
	}
	if bw < 1 {
		return nil, fmt.Errorf("congest: bandwidth %d bits must be >= 1", bw)
	}
	buffered := make([]BufferedProgram, len(programs))
	for u, p := range programs {
		if bp, ok := p.(BufferedProgram); ok {
			buffered[u] = bp
		}
	}
	return &Network{g: g, programs: programs, buffered: buffered, cfg: cfg, bw: bw}, nil
}

// Bandwidth returns the effective per-edge bit budget B.
func (n *Network) Bandwidth() int64 { return n.bw }

// Graph returns the underlying graph.
func (n *Network) Graph() *graphs.Graph { return n.g }

// Run executes the simulation to termination and returns outputs and stats.
func (n *Network) Run() (Result, error) {
	return n.RunCtx(context.Background())
}

// RunCtx is Run under a context: the synchronous round loop checks the
// context once per round and aborts with ctx.Err() when it fires, so a
// caller can cancel (or deadline) a long simulation between rounds. Node
// programs are never interrupted mid-round — a run observes cancellation
// only at round boundaries, which keeps partial state impossible. A nil
// ctx means Background.
func (n *Network) RunCtx(ctx context.Context) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctxDone := ctx.Done()
	size := n.g.N()
	maxRounds := n.cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 4*size*size + 64
	}
	for u := 0; u < size; u++ {
		n.programs[u].Init(NodeInfo{
			ID:        u,
			Weight:    n.g.Weight(u),
			Neighbors: n.g.Neighbors(u),
			N:         size,
			Rand:      rand.New(rand.NewSource(n.cfg.Seed ^ (int64(u)+1)*0x5DEECE66D)),
		})
	}

	var stats Stats
	// Run state is retained across Run calls on the same Network: repeated
	// runs (benchmark iterations, replayed simulations) reuse the inbox/
	// outbox backing arrays and the arena block at their previous
	// high-water capacity instead of re-growing them by doubling. Stale
	// `seen` stamps are harmless because seenStamp only ever increases.
	if len(n.inboxes) != size {
		n.inboxes = make([][]Message, size)
		n.outboxes = make([][]Message, size)
		n.seen = make([]int64, size)
		n.seenStamp = 0
	} else {
		for u := 0; u < size; u++ {
			n.inboxes[u] = n.inboxes[u][:0]
			n.outboxes[u] = n.outboxes[u][:0]
		}
	}

	if workers := n.effectiveWorkers(); workers > 1 {
		return n.runPipelined(ctx, workers, maxRounds)
	}
	// Fresh Networks seed their arena from the process-wide high-water
	// mark, so the first rounds of a new run skip the grow-and-orphan
	// doubling the previous runs already paid for. The seed is capped at
	// this network's own per-round ceiling — 2m directed messages of at
	// most B bits each — so a small network never inherits a huge run's
	// block (with concurrent Networks that would multiply peak RSS for no
	// benefit).
	if n.arena.buf == nil {
		hw := arenaHighWater.Load()
		if ceil := int64(2*n.g.M()) * ((n.bw + 7) / 8); hw > ceil {
			hw = ceil
		}
		if hw > 0 {
			n.arena.buf = make([]byte, hw)
		}
	}
	defer n.recordArenaHighWater()
	n.arena.reset()

	for round := 1; ; round++ {
		if ctxDone != nil {
			select {
			case <-ctxDone:
				return Result{}, fmt.Errorf("congest: run cancelled in round %d: %w", round, ctx.Err())
			default:
			}
		}
		if round > maxRounds {
			return Result{}, fmt.Errorf("%w: %d", ErrMaxRounds, maxRounds)
		}
		allDone := true
		for u := 0; u < size; u++ {
			if !n.programs[u].Done() {
				allDone = false
				break
			}
		}
		if allDone {
			stats.Rounds = round - 1
			n.cfg.Metrics.recordRun(stats)
			return n.collect(stats), nil
		}

		n.stepRange(round, 0, size)

		// All Round calls of this round have returned, so the payloads
		// delivered last round are dead: recycle their arena, then
		// validate, account, and deliver this round's sends out of it.
		// Iterating senders in ID order leaves every inbox sorted by
		// sender — the deterministic delivery order — with no sort pass.
		n.arena.reset()
		for u := 0; u < size; u++ {
			n.inboxes[u] = n.inboxes[u][:0]
		}
		for u := 0; u < size; u++ {
			n.seenStamp++
			for _, msg := range n.outboxes[u] {
				if err := validateMsg(n.g, n.bw, u, msg, round, n.seen, n.seenStamp); err != nil {
					return Result{}, err
				}
				stats.Messages++
				stats.TotalBits += msg.Bits()
				if msg.Bits() > stats.MaxMessageBits {
					stats.MaxMessageBits = msg.Bits()
				}
				delivered := Message{From: msg.From, To: msg.To, Data: n.arena.copy(msg.Data)}
				if n.cfg.Hook != nil {
					if err := n.cfg.Hook(round, delivered); err != nil {
						return Result{}, fmt.Errorf("congest: hook: %w", err)
					}
				}
				n.inboxes[msg.To] = append(n.inboxes[msg.To], delivered)
			}
		}
	}
}

// validateMsg enforces the CONGEST sending rules for one outbox message of
// sender u in the given round: no forged sender, neighbours only, at most
// one message per destination (seen[v] == stamp marks v as already served
// from this outbox), and the bandwidth bound. Shared by the sequential
// delivery loop, the pipelined engine's compute-stage validation, and the
// batch engine, so all three report byte-identical errors.
func validateMsg(g *graphs.Graph, bw int64, u int, msg Message, round int, seen []int64, stamp int64) error {
	if msg.From != u {
		return fmt.Errorf("congest: node %d forged sender %d in round %d", u, msg.From, round)
	}
	if !g.HasEdge(u, msg.To) {
		return fmt.Errorf("congest: node %d sent to non-neighbour %d in round %d", u, msg.To, round)
	}
	if seen[msg.To] == stamp {
		return fmt.Errorf("congest: node %d sent two messages to %d in round %d", u, msg.To, round)
	}
	seen[msg.To] = stamp
	if msg.Bits() > bw {
		return fmt.Errorf("%w: %d bits > B=%d (node %d→%d, round %d)",
			ErrBandwidthExceeded, msg.Bits(), bw, msg.From, msg.To, round)
	}
	return nil
}

// effectiveWorkers resolves Config.Parallel/Workers and the
// CONGESTLB_PIPELINE override into the engine to use: 1 means the
// sequential loop, >1 the pipelined engine with that many workers. The
// environment variable is read per Run (not cached) so tests can flip it
// with t.Setenv.
func (n *Network) effectiveWorkers() int {
	parallel := n.cfg.Parallel
	switch os.Getenv("CONGESTLB_PIPELINE") {
	case "1", "on", "force":
		parallel = true
	case "0", "off":
		parallel = false
	}
	if !parallel {
		return 1
	}
	w := n.cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n.g.N() {
		w = n.g.N()
	}
	if w < 1 {
		w = 1
	}
	return w
}

// arenaHighWater remembers the delivery-arena block size recent Runs in
// this process settled on. New Networks pre-size their arena from it, so a
// fresh Network serving a workload the process has seen before reaches its
// steady state without any doubling steps.
var arenaHighWater atomic.Int64

// recordArenaHighWater folds this run's settled arena size into the
// process-wide estimate. Growth takes effect immediately; shrinkage decays
// — a run that settled below the stored estimate pulls it a quarter of the
// way down. A one-off huge run (a big batch, a scaling sweep) therefore
// stops inflating fresh Networks after a handful of small runs, instead of
// pinning the estimate at its lifetime peak forever. Runs that delivered
// nothing at all carry no sizing information and leave the estimate alone.
func (n *Network) recordArenaHighWater() {
	size := int64(len(n.arena.buf))
	if size == 0 {
		return
	}
	for {
		cur := arenaHighWater.Load()
		target := size
		if size < cur {
			// size + 3/4 of the gap: floors to size itself once the gap
			// closes, so the estimate converges exactly instead of
			// stalling a few bytes high on integer division.
			target = size + (cur-size)*3/4
		}
		if target == cur || arenaHighWater.CompareAndSwap(cur, target) {
			return
		}
	}
}

// stepRange invokes Round (or AppendRound) for nodes [lo, hi) in ID order.
// Distinct ranges touch disjoint engine and program state, so the worker
// pool can run them concurrently.
func (n *Network) stepRange(round, lo, hi int) {
	for u := lo; u < hi; u++ {
		if n.programs[u].Done() {
			n.outboxes[u] = n.outboxes[u][:0]
			continue
		}
		if bp := n.buffered[u]; bp != nil {
			n.outboxes[u] = bp.AppendRound(round, n.inboxes[u], n.outboxes[u][:0])
		} else {
			n.outboxes[u] = n.programs[u].Round(round, n.inboxes[u])
		}
	}
}

// splitByDegree partitions [0, g.N()) into at most `workers` contiguous,
// non-empty ranges of roughly equal cumulative degree, returned as bounds
// (range w is [bounds[w], bounds[w+1])). A node's per-round work in the
// message-bound programs scales with its degree (inbox size, outbox size,
// forwarding queues), so equal-degree ranges balance skewed constructions
// — a hub-heavy lower-bound graph no longer serialises on the worker that
// happened to draw the hubs, which equal-count splitting does. Each node
// costs degree+1, so isolated nodes still carry weight and every split is
// well-defined on edgeless graphs.
func splitByDegree(g *graphs.Graph, workers int) []int {
	size := g.N()
	var total int64
	for u := 0; u < size; u++ {
		total += int64(g.Degree(u)) + 1
	}
	bounds := make([]int, 1, workers+1)
	var cum int64
	for u := 0; u < size; u++ {
		cum += int64(g.Degree(u)) + 1
		w := len(bounds) // ranges closed so far + 1
		remainingWorkers := workers - w
		// Close the current range once it reached its fair share, but
		// never so late that the remaining workers outnumber the
		// remaining nodes.
		if u+1 < size && w < workers &&
			(cum*int64(workers) >= int64(w)*total || size-(u+1) <= remainingWorkers) {
			bounds = append(bounds, u+1)
		}
	}
	return append(bounds, size)
}

func (n *Network) collect(stats Stats) Result {
	outputs := make([]any, n.g.N())
	for u := range outputs {
		outputs[u] = n.programs[u].Output()
	}
	return Result{Stats: stats, Outputs: outputs}
}
