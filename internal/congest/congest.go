// Package congest simulates the CONGEST model of distributed computing:
// a synchronous network of n nodes with unique O(log n)-bit identifiers,
// where in every round each node may send a (possibly different) B-bit
// message to each of its neighbours, with B = O(log n).
//
// The simulator enforces the bandwidth bound bit-exactly, accounts every
// message, and exposes a per-message hook that the reduction framework
// (internal/core) uses to route cut-edge messages onto a communication-
// complexity blackboard, realising the simulation argument of Theorem 5 in
// Efron, Grossman and Khoury (PODC 2020).
//
// Node behaviour is written as a NodeProgram state machine. The engine can
// run programs sequentially (fully deterministic) or with one goroutine per
// node per round (deterministic too: message delivery is ordered by node
// ID, and per-node randomness comes from per-node seeded generators).
package congest

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"congestlb/internal/graphs"
)

// Message is a payload sent over one edge in one round.
type Message struct {
	// From and To are the endpoint node IDs; To must be a neighbour of
	// From in the network graph.
	From, To graphs.NodeID
	// Data is the payload; its bit size is 8*len(Data) and must not
	// exceed the per-edge bandwidth.
	Data []byte
}

// Bits returns the bandwidth charge of the message.
func (m Message) Bits() int64 { return int64(len(m.Data)) * 8 }

// NodeInfo is the static knowledge a node starts with: its own identifier,
// weight, neighbourhood, the network size (a standard CONGEST assumption),
// and a private random generator.
type NodeInfo struct {
	ID        graphs.NodeID
	Weight    int64
	Neighbors []graphs.NodeID
	// N is the number of nodes in the network.
	N int
	// Rand is the node's private randomness, seeded deterministically
	// from the engine seed and the node ID.
	Rand *rand.Rand
}

// NodeProgram is the per-node state machine. Implementations must not
// retain or mutate the inbox slice across calls.
type NodeProgram interface {
	// Init is called once before the first round.
	Init(info NodeInfo)
	// Round consumes the messages delivered this round (sent by
	// neighbours in the previous round; empty in round 1) and returns the
	// messages to send. Returning a message to a non-neighbour or two
	// messages to the same neighbour is an error.
	Round(round int, inbox []Message) []Message
	// Done reports whether the node has terminated. A terminated node
	// stops sending; the run ends when every node is done.
	Done() bool
	// Output returns the node's final output (algorithm-specific).
	Output() any
}

// MessageHook observes every delivered message. The reduction framework
// uses it to charge cut-edge messages to a blackboard.
type MessageHook func(round int, msg Message) error

// Config parameterises a simulation run.
type Config struct {
	// BandwidthBits is B, the per-edge per-direction bit budget per
	// round. 0 selects the CONGEST default 32·⌈log₂(n+2)⌉ bits — a
	// Θ(log n) bandwidth with a constant generous enough to carry a node
	// ID plus a small header in one message even on tiny test networks.
	BandwidthBits int64
	// MaxRounds aborts runs that fail to terminate; 0 means 4·n²+64,
	// comfortably above the O(n²) universal upper bound the paper cites.
	MaxRounds int
	// Seed drives all node randomness; runs with equal seeds are
	// identical.
	Seed int64
	// Parallel selects the goroutine-per-node engine. Results are
	// bit-identical to the sequential engine; only wall-clock differs.
	Parallel bool
	// Hook, if set, observes every delivered message.
	Hook MessageHook
}

// DefaultBandwidth returns the default B for an n-node network.
func DefaultBandwidth(n int) int64 {
	return 32 * int64(math.Ceil(math.Log2(float64(n+2))))
}

// Stats aggregates the cost of a run.
type Stats struct {
	// Rounds is the number of rounds executed.
	Rounds int
	// Messages is the total number of messages delivered.
	Messages int64
	// TotalBits is the total payload volume delivered.
	TotalBits int64
	// MaxMessageBits is the largest single message observed.
	MaxMessageBits int64
}

// Result is the outcome of a completed run.
type Result struct {
	Stats Stats
	// Outputs holds each node's Output(), indexed by node ID.
	Outputs []any
}

// ErrBandwidthExceeded reports a message larger than B.
var ErrBandwidthExceeded = errors.New("congest: message exceeds bandwidth")

// ErrMaxRounds reports a run that did not terminate in time.
var ErrMaxRounds = errors.New("congest: exceeded maximum rounds")

// Network binds a graph to one NodeProgram per node.
type Network struct {
	g        *graphs.Graph
	programs []NodeProgram
	cfg      Config
	bw       int64
	neighbor []map[graphs.NodeID]bool // adjacency lookup per node
}

// NewNetwork validates the wiring and prepares a run. programs[u] drives
// node u; len(programs) must equal g.N().
func NewNetwork(g *graphs.Graph, programs []NodeProgram, cfg Config) (*Network, error) {
	if g == nil {
		return nil, fmt.Errorf("congest: nil graph")
	}
	if len(programs) != g.N() {
		return nil, fmt.Errorf("congest: %d programs for %d nodes", len(programs), g.N())
	}
	for u, p := range programs {
		if p == nil {
			return nil, fmt.Errorf("congest: nil program at node %d", u)
		}
	}
	bw := cfg.BandwidthBits
	if bw == 0 {
		bw = DefaultBandwidth(g.N())
	}
	if bw < 1 {
		return nil, fmt.Errorf("congest: bandwidth %d bits must be >= 1", bw)
	}
	neighbor := make([]map[graphs.NodeID]bool, g.N())
	for u := 0; u < g.N(); u++ {
		set := make(map[graphs.NodeID]bool, g.Degree(u))
		g.ForEachNeighbor(u, func(v graphs.NodeID) { set[v] = true })
		neighbor[u] = set
	}
	return &Network{g: g, programs: programs, cfg: cfg, bw: bw, neighbor: neighbor}, nil
}

// Bandwidth returns the effective per-edge bit budget B.
func (n *Network) Bandwidth() int64 { return n.bw }

// Graph returns the underlying graph.
func (n *Network) Graph() *graphs.Graph { return n.g }

// Run executes the simulation to termination and returns outputs and stats.
func (n *Network) Run() (Result, error) {
	size := n.g.N()
	maxRounds := n.cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = 4*size*size + 64
	}
	for u := 0; u < size; u++ {
		n.programs[u].Init(NodeInfo{
			ID:        u,
			Weight:    n.g.Weight(u),
			Neighbors: n.g.Neighbors(u),
			N:         size,
			Rand:      rand.New(rand.NewSource(n.cfg.Seed ^ (int64(u)+1)*0x5DEECE66D)),
		})
	}

	var stats Stats
	inboxes := make([][]Message, size)
	outboxes := make([][]Message, size)
	for round := 1; ; round++ {
		if round > maxRounds {
			return Result{}, fmt.Errorf("%w: %d", ErrMaxRounds, maxRounds)
		}
		allDone := true
		for u := 0; u < size; u++ {
			if !n.programs[u].Done() {
				allDone = false
				break
			}
		}
		if allDone {
			stats.Rounds = round - 1
			return n.collect(stats), nil
		}

		if n.cfg.Parallel {
			n.stepParallel(round, inboxes, outboxes)
		} else {
			n.stepSequential(round, inboxes, outboxes)
		}

		// Validate, account, and deliver.
		for u := 0; u < size; u++ {
			inboxes[u] = inboxes[u][:0]
		}
		for u := 0; u < size; u++ {
			seen := make(map[graphs.NodeID]bool, len(outboxes[u]))
			for _, msg := range outboxes[u] {
				if msg.From != u {
					return Result{}, fmt.Errorf("congest: node %d forged sender %d in round %d", u, msg.From, round)
				}
				if !n.neighbor[u][msg.To] {
					return Result{}, fmt.Errorf("congest: node %d sent to non-neighbour %d in round %d", u, msg.To, round)
				}
				if seen[msg.To] {
					return Result{}, fmt.Errorf("congest: node %d sent two messages to %d in round %d", u, msg.To, round)
				}
				seen[msg.To] = true
				if msg.Bits() > n.bw {
					return Result{}, fmt.Errorf("%w: %d bits > B=%d (node %d→%d, round %d)",
						ErrBandwidthExceeded, msg.Bits(), n.bw, msg.From, msg.To, round)
				}
				stats.Messages++
				stats.TotalBits += msg.Bits()
				if msg.Bits() > stats.MaxMessageBits {
					stats.MaxMessageBits = msg.Bits()
				}
				if n.cfg.Hook != nil {
					if err := n.cfg.Hook(round, msg); err != nil {
						return Result{}, fmt.Errorf("congest: hook: %w", err)
					}
				}
				inboxes[msg.To] = append(inboxes[msg.To], msg)
			}
		}
		// Deterministic delivery order regardless of engine: sort each
		// inbox by sender.
		for u := 0; u < size; u++ {
			inbox := inboxes[u]
			sort.Slice(inbox, func(a, b int) bool { return inbox[a].From < inbox[b].From })
		}
	}
}

// stepSequential invokes each node's Round in ID order.
func (n *Network) stepSequential(round int, inboxes, outboxes [][]Message) {
	for u := 0; u < n.g.N(); u++ {
		if n.programs[u].Done() {
			outboxes[u] = nil
			continue
		}
		outboxes[u] = n.programs[u].Round(round, inboxes[u])
	}
}

// stepParallel invokes every node's Round concurrently. Each goroutine
// touches only its own node's state and outbox slot, and the caller waits
// for all of them, so there are no leaks and no races.
func (n *Network) stepParallel(round int, inboxes, outboxes [][]Message) {
	var wg sync.WaitGroup
	for u := 0; u < n.g.N(); u++ {
		if n.programs[u].Done() {
			outboxes[u] = nil
			continue
		}
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			outboxes[u] = n.programs[u].Round(round, inboxes[u])
		}(u)
	}
	wg.Wait()
}

func (n *Network) collect(stats Stats) Result {
	outputs := make([]any, n.g.N())
	for u := range outputs {
		outputs[u] = n.programs[u].Output()
	}
	return Result{Stats: stats, Outputs: outputs}
}
