package congest

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"congestlb/internal/graphs"
)

// floodMin floods the minimum known node ID; every node outputs the global
// minimum once stable for two rounds. A classic warm-up CONGEST program.
type floodMin struct {
	info   NodeInfo
	min    int
	stable int
	done   bool
}

func (f *floodMin) Init(info NodeInfo) {
	f.info = info
	f.min = info.ID
	f.stable = 0
	f.done = false
}

func (f *floodMin) Round(round int, inbox []Message) []Message {
	changed := false
	for _, m := range inbox {
		got := int(m.Data[0])<<8 | int(m.Data[1])
		if got < f.min {
			f.min = got
			changed = true
		}
	}
	if changed || round == 1 {
		f.stable = 0
	} else {
		f.stable++
	}
	// After n rounds the minimum has reached everyone on a connected graph.
	if round > f.info.N {
		f.done = true
		return nil
	}
	out := make([]Message, 0, len(f.info.Neighbors))
	payload := []byte{byte(f.min >> 8), byte(f.min & 0xFF)}
	for _, v := range f.info.Neighbors {
		out = append(out, Message{From: f.info.ID, To: v, Data: payload})
	}
	return out
}

func (f *floodMin) Done() bool  { return f.done }
func (f *floodMin) Output() any { return f.min }

// silent terminates immediately without sending anything.
type silent struct{ done bool }

func (s *silent) Init(NodeInfo) {}
func (s *silent) Round(int, []Message) []Message {
	s.done = true
	return nil
}
func (s *silent) Done() bool  { return s.done }
func (s *silent) Output() any { return nil }

// misbehaver sends one configurable illegal message then stops.
type misbehaver struct {
	msg  Message
	sent bool
}

func (m *misbehaver) Init(NodeInfo) {}
func (m *misbehaver) Round(int, []Message) []Message {
	if m.sent {
		return nil
	}
	m.sent = true
	return []Message{m.msg}
}
func (m *misbehaver) Done() bool  { return m.sent }
func (m *misbehaver) Output() any { return nil }

// ring builds a cycle of n unit-weight nodes.
func ring(t *testing.T, n int) *graphs.Graph {
	t.Helper()
	g := graphs.New(n)
	for i := 0; i < n; i++ {
		g.MustAddNode(fmt.Sprintf("r%d", i), 1)
	}
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n)
	}
	return g
}

func floodPrograms(n int) []NodeProgram {
	programs := make([]NodeProgram, n)
	for i := range programs {
		programs[i] = &floodMin{}
	}
	return programs
}

func TestNewNetworkValidation(t *testing.T) {
	g := ring(t, 4)
	if _, err := NewNetwork(nil, nil, Config{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := NewNetwork(g, make([]NodeProgram, 3), Config{}); err == nil {
		t.Fatal("program count mismatch accepted")
	}
	if _, err := NewNetwork(g, make([]NodeProgram, 4), Config{}); err == nil {
		t.Fatal("nil programs accepted")
	}
	if _, err := NewNetwork(g, floodPrograms(4), Config{BandwidthBits: -5}); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
}

func TestFloodMinConverges(t *testing.T) {
	g := ring(t, 9)
	net, err := NewNetwork(g, floodPrograms(9), Config{})
	if err != nil {
		t.Fatal(err)
	}
	result, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	for u, out := range result.Outputs {
		if out.(int) != 0 {
			t.Fatalf("node %d output %v, want 0", u, out)
		}
	}
	if result.Stats.Rounds == 0 || result.Stats.Messages == 0 {
		t.Fatalf("stats look empty: %+v", result.Stats)
	}
	// Each of the 9 alive rounds sends 2 messages per node of 16 bits.
	if result.Stats.TotalBits != result.Stats.Messages*16 {
		t.Fatalf("bit accounting inconsistent: %+v", result.Stats)
	}
	if result.Stats.MaxMessageBits != 16 {
		t.Fatalf("MaxMessageBits = %d, want 16", result.Stats.MaxMessageBits)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	g := ring(t, 16)
	run := func(parallel bool) Result {
		net, err := NewNetwork(g, floodPrograms(16), Config{Parallel: parallel, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		result, err := net.Run()
		if err != nil {
			t.Fatal(err)
		}
		return result
	}
	seq := run(false)
	par := run(true)
	if !reflect.DeepEqual(seq.Outputs, par.Outputs) {
		t.Fatalf("outputs differ: seq=%v par=%v", seq.Outputs, par.Outputs)
	}
	if seq.Stats != par.Stats {
		t.Fatalf("stats differ: seq=%+v par=%+v", seq.Stats, par.Stats)
	}
}

func TestImmediateTermination(t *testing.T) {
	g := ring(t, 3)
	programs := []NodeProgram{&silent{}, &silent{}, &silent{}}
	net, err := NewNetwork(g, programs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	result, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	if result.Stats.Messages != 0 {
		t.Fatalf("silent run sent %d messages", result.Stats.Messages)
	}
	if result.Stats.Rounds != 1 {
		t.Fatalf("silent run took %d rounds, want 1", result.Stats.Rounds)
	}
}

func TestBandwidthEnforced(t *testing.T) {
	g := ring(t, 3)
	big := make([]byte, 100) // 800 bits, far over any sane B
	programs := []NodeProgram{
		&misbehaver{msg: Message{From: 0, To: 1, Data: big}},
		&silent{}, &silent{},
	}
	net, err := NewNetwork(g, programs, Config{BandwidthBits: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); !errors.Is(err, ErrBandwidthExceeded) {
		t.Fatalf("error = %v, want ErrBandwidthExceeded", err)
	}
}

func TestNonNeighborRejected(t *testing.T) {
	g := ring(t, 5) // 0 and 2 are not adjacent
	programs := []NodeProgram{
		&misbehaver{msg: Message{From: 0, To: 2, Data: []byte{1}}},
		&silent{}, &silent{}, &silent{}, &silent{},
	}
	net, err := NewNetwork(g, programs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); err == nil {
		t.Fatal("non-neighbour send accepted")
	}
}

func TestForgedSenderRejected(t *testing.T) {
	g := ring(t, 3)
	programs := []NodeProgram{
		&misbehaver{msg: Message{From: 2, To: 1, Data: []byte{1}}},
		&silent{}, &silent{},
	}
	net, err := NewNetwork(g, programs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); err == nil {
		t.Fatal("forged sender accepted")
	}
}

func TestDuplicateMessageRejected(t *testing.T) {
	g := ring(t, 3)
	dup := &duplicateSender{}
	programs := []NodeProgram{dup, &silent{}, &silent{}}
	net, err := NewNetwork(g, programs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); err == nil {
		t.Fatal("duplicate messages to one neighbour accepted")
	}
}

type duplicateSender struct{ sent bool }

func (d *duplicateSender) Init(NodeInfo) {}
func (d *duplicateSender) Round(int, []Message) []Message {
	d.sent = true
	return []Message{
		{From: 0, To: 1, Data: []byte{1}},
		{From: 0, To: 1, Data: []byte{2}},
	}
}
func (d *duplicateSender) Done() bool  { return d.sent }
func (d *duplicateSender) Output() any { return nil }

// chatterbox never terminates.
type chatterbox struct{ info NodeInfo }

func (c *chatterbox) Init(info NodeInfo) { c.info = info }
func (c *chatterbox) Round(int, []Message) []Message {
	out := make([]Message, 0, len(c.info.Neighbors))
	for _, v := range c.info.Neighbors {
		out = append(out, Message{From: c.info.ID, To: v, Data: []byte{0}})
	}
	return out
}
func (c *chatterbox) Done() bool  { return false }
func (c *chatterbox) Output() any { return nil }

func TestMaxRoundsAborts(t *testing.T) {
	g := ring(t, 3)
	programs := []NodeProgram{&chatterbox{}, &chatterbox{}, &chatterbox{}}
	net, err := NewNetwork(g, programs, Config{MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("error = %v, want ErrMaxRounds", err)
	}
}

// TestRunCtxCancelStopsRoundLoop: a cancelled context aborts a
// non-terminating run at a round boundary with the context's error —
// before the MaxRounds failsafe would fire.
func TestRunCtxCancelStopsRoundLoop(t *testing.T) {
	g := ring(t, 3)
	programs := []NodeProgram{&chatterbox{}, &chatterbox{}, &chatterbox{}}
	net, err := NewNetwork(g, programs, Config{MaxRounds: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := net.RunCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	// And a background context leaves behaviour untouched: same run, same
	// MaxRounds abort as Run.
	net2, err := NewNetwork(g, []NodeProgram{&chatterbox{}, &chatterbox{}, &chatterbox{}}, Config{MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net2.RunCtx(context.Background()); !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("error = %v, want ErrMaxRounds", err)
	}
}

func TestHookSeesEveryMessage(t *testing.T) {
	g := ring(t, 6)
	var hooked int64
	var hookedBits int64
	cfg := Config{Hook: func(round int, msg Message) error {
		hooked++
		hookedBits += msg.Bits()
		return nil
	}}
	net, err := NewNetwork(g, floodPrograms(6), cfg)
	if err != nil {
		t.Fatal(err)
	}
	result, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	if hooked != result.Stats.Messages {
		t.Fatalf("hook saw %d messages, stats say %d", hooked, result.Stats.Messages)
	}
	if hookedBits != result.Stats.TotalBits {
		t.Fatalf("hook saw %d bits, stats say %d", hookedBits, result.Stats.TotalBits)
	}
}

func TestHookErrorAborts(t *testing.T) {
	g := ring(t, 4)
	boom := errors.New("boom")
	cfg := Config{Hook: func(int, Message) error { return boom }}
	net, err := NewNetwork(g, floodPrograms(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); !errors.Is(err, boom) {
		t.Fatalf("error = %v, want wrapped boom", err)
	}
}

func TestDefaultBandwidthGrowsLogarithmically(t *testing.T) {
	if DefaultBandwidth(2) <= 0 {
		t.Fatal("bandwidth must be positive")
	}
	if DefaultBandwidth(1<<10) >= DefaultBandwidth(1<<20) {
		t.Fatal("bandwidth should grow with n")
	}
	// B = 32·ceil(log2(n+2)): for n=1022, log2(1024)=10 → 320.
	if got := DefaultBandwidth(1022); got != 320 {
		t.Fatalf("DefaultBandwidth(1022) = %d, want 320", got)
	}
}

func TestSeedDeterminism(t *testing.T) {
	g := ring(t, 8)
	run := func(seed int64) Stats {
		net, err := NewNetwork(g, floodPrograms(8), Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		result, err := net.Run()
		if err != nil {
			t.Fatal(err)
		}
		return result.Stats
	}
	if run(1) != run(1) {
		t.Fatal("same seed, different stats")
	}
}

func BenchmarkFloodRing256(b *testing.B) {
	g := graphs.New(256)
	for i := 0; i < 256; i++ {
		g.MustAddNode(fmt.Sprintf("r%d", i), 1)
	}
	for i := 0; i < 256; i++ {
		g.MustAddEdge(i, (i+1)%256)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := NewNetwork(g, floodPrograms(256), Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := net.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// star builds a hub-and-spoke graph: node 0 adjacent to all others.
func star(t *testing.T, n int) *graphs.Graph {
	t.Helper()
	g := graphs.New(n)
	for i := 0; i < n; i++ {
		g.MustAddNode(fmt.Sprintf("s%d", i), 1)
	}
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, i)
	}
	return g
}

func TestSplitByDegreeCoversContiguously(t *testing.T) {
	for _, tc := range []struct {
		name    string
		g       *graphs.Graph
		workers int
	}{
		{"ring/4", ring(t, 64), 4},
		{"ring/1", ring(t, 64), 1},
		{"ring/n", ring(t, 8), 8},
		{"star/4", star(t, 65), 4},
		{"star/2", star(t, 3), 2},
		{"edgeless/3", func() *graphs.Graph {
			g := graphs.New(9)
			for i := 0; i < 9; i++ {
				g.MustAddNode(fmt.Sprintf("i%d", i), 1)
			}
			return g
		}(), 3},
	} {
		bounds := splitByDegree(tc.g, tc.workers)
		if bounds[0] != 0 || bounds[len(bounds)-1] != tc.g.N() {
			t.Fatalf("%s: bounds %v do not cover [0,%d)", tc.name, bounds, tc.g.N())
		}
		if len(bounds)-1 > tc.workers {
			t.Fatalf("%s: %d ranges for %d workers", tc.name, len(bounds)-1, tc.workers)
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Fatalf("%s: empty or decreasing range in %v", tc.name, bounds)
			}
		}
	}
}

// TestSplitByDegreeBalancesSkew is the satellite property: on a star, the
// hub's degree dominates, so degree-weighted splitting must give the hub's
// worker far fewer nodes than an equal-count split would.
func TestSplitByDegreeBalancesSkew(t *testing.T) {
	n, workers := 1025, 4
	g := star(t, n)
	bounds := splitByDegree(g, workers)
	hubRange := bounds[1] - bounds[0]
	equalCount := (n + workers - 1) / workers
	if hubRange >= equalCount/4 {
		t.Fatalf("hub range holds %d nodes; equal-count chunking would hold %d — no degree balancing",
			hubRange, equalCount)
	}
	// Cumulative degree+1 per range should be near total/workers for every
	// range (within a factor of two).
	total := 0
	for u := 0; u < n; u++ {
		total += g.Degree(u) + 1
	}
	fair := total / workers
	for w := 0; w+1 < len(bounds); w++ {
		load := 0
		for u := bounds[w]; u < bounds[w+1]; u++ {
			load += g.Degree(u) + 1
		}
		if load > 2*fair+n { // hub alone may exceed fair share; allow one node's slack
			t.Fatalf("range %d load %d far above fair share %d (bounds %v)", w, load, fair, bounds)
		}
	}
}

// TestRunStateRetainedAcrossRuns re-runs one Network and requires identical
// results — the retained inbox/outbox/arena state must be invisible.
func TestRunStateRetainedAcrossRuns(t *testing.T) {
	g := ring(t, 48)
	net, err := NewNetwork(g, floodPrograms(48), Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	first, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	second, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("re-run diverged:\nfirst  %+v\nsecond %+v", first, second)
	}
}
