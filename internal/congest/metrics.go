package congest

import "congestlb/internal/obs"

// EngineMetrics is the round engines' resolved observability handle
// set. Resolve one from a registry with NewEngineMetrics and stamp it
// onto Config.Metrics (internal/core does this automatically from a
// context-bound registry); all three engines — sequential, pipelined,
// and the lockstep batch engine — record into it.
//
// Only successfully completed runs are recorded: a cancelled or failed
// simulation books nothing, so engine_runs counts results callers
// actually received and the rounds/messages/bits counters stay the sum
// over those results' Stats. A nil *EngineMetrics is a no-op sink, the
// usual nil-registry fast path.
type EngineMetrics struct {
	runs, rounds, messages, bits        *obs.Counter
	batchPasses, batchInst, batchShared *obs.Counter
	occupancy                           *obs.Histogram
}

// NewEngineMetrics resolves the engine handles from a registry (nil
// registry → nil metrics).
func NewEngineMetrics(r *obs.Registry) *EngineMetrics {
	if r == nil {
		return nil
	}
	return &EngineMetrics{
		runs:        r.Counter(obs.MEngineRuns),
		rounds:      r.Counter(obs.MEngineRounds),
		messages:    r.Counter(obs.MEngineMessages),
		bits:        r.Counter(obs.MEngineBits),
		batchPasses: r.Counter(obs.MBatchPasses),
		batchInst:   r.Counter(obs.MBatchInstances),
		batchShared: r.Counter(obs.MBatchSharedGraphs),
		occupancy:   r.Histogram(obs.MBatchOccupancy),
	}
}

// recordRun books one completed simulation's cost.
func (m *EngineMetrics) recordRun(st Stats) {
	if m == nil {
		return
	}
	m.runs.Inc()
	m.rounds.Add(int64(st.Rounds))
	m.messages.Add(st.Messages)
	m.bits.Add(st.TotalBits)
}

// recordBatch books one completed RunBatch pass's occupancy and
// graph-sharing numbers (per-instance run costs are booked separately
// via recordRun as each instance finishes).
func (m *EngineMetrics) recordBatch(bs BatchStats) {
	if m == nil {
		return
	}
	m.batchPasses.Inc()
	m.batchInst.Add(int64(bs.Instances))
	m.batchShared.Add(int64(bs.SharedGraphs))
	m.occupancy.Observe(int64(bs.Instances))
}
