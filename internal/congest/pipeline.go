package congest

import (
	"context"
	"fmt"
	"sync"

	"congestlb/internal/fault"
)

// The pipelined engine: the round loop split into a compute stage (node
// programs fill per-node outboxes) and a delivery stage (inbox scatter),
// run as a two-stage pipeline over persistent workers holding fixed
// contiguous node ranges. Step r fuses
//
//	deliver(r-1): scatter round r-1's validated sends into inboxes
//	compute(r):   run round r's programs against those inboxes
//
// per worker — a worker first delivers into its own destination range,
// then computes its own sender range — while the main goroutine replays
// round r-1's messages to Config.Hook in exact sequential order,
// overlapped with the workers. One barrier per step, so round r's compute
// overlaps round r-1's delivery, hook accounting and everyone else's
// scatter instead of serialising behind them.
//
// What keeps the transcript bit-identical to the sequential engine:
//
//   - Outboxes and compute arenas are double-buffered by round parity:
//     compute(r) writes parity r%2 while deliver(r-1) and the hook pass
//     read parity (r-1)%2, so no stage of a step reads a buffer another
//     stage of the same step writes.
//   - Payloads are copied into the owning worker's per-parity arena at
//     compute time, so delivery is a pure scatter of stable slices.
//   - A delivery worker scans all senders in ID order and picks out the
//     messages addressed to its own destination range, so every inbox
//     ends up in sender-ID order — exactly the sequential delivery order.
//   - Validation runs in the compute stage, per sender; the winning error
//     is the lowest-ranked worker's first error, which (ranges being
//     ordered by node ID) is the first error in sender order — the one
//     the sequential loop reports.
//   - Hook errors of round r-1 outrank validation errors of round r,
//     matching the sequential event order, and every abort path (hook
//     error, context, MaxRounds, termination) first runs a delivery-only
//     step for the last computed round so the hook transcript ends at the
//     same message the sequential engine's would.
//
// Divergence from sequential exists only on already-failing runs: on a
// validation error in round r the hook never observes round r's valid
// prefix (the sequential loop interleaves hook calls with validation),
// and node programs may have computed one round the sequential engine
// would not have reached. Neither is observable through a successful
// Result.

// pipeCmd tells a worker what one step consists of.
type pipeCmd struct {
	// round is the step index: deliver covers round-1, compute covers
	// round.
	round   int
	deliver bool
	compute bool
}

// pipeline is the engine state retained on the Network across Runs, so
// repeated pipelined runs (benchmark iterations) reuse outbox backing
// arrays, arenas and stamp slabs like the sequential buffers.
type pipeline struct {
	n       *Network
	workers int
	bounds  []int // contiguous range bounds, len(bounds)-1 ranges
	// outboxes[p][u] is node u's validated round-r outbox for r%2 == p,
	// payloads stable in the owning worker's arena of the same parity.
	outboxes [2][][]Message
	arenas   [][2]byteArena // per worker, per parity compute arenas
	seen     [][]int64      // per worker duplicate-destination marks
	stamps   []int64        // per worker stamp counters; only ever grow
	stats    []Stats        // per worker delivery accounting
	errs     []error        // per worker first validation error of a step
	ndone    []int          // per worker Done-program count after compute
	cmds     []chan pipeCmd
	barrier  sync.WaitGroup // per-step completion
	exit     sync.WaitGroup // worker lifecycle
}

// pipelineFor returns the Network's retained pipeline, rebuilding it when
// the worker count changed since the last run.
func (n *Network) pipelineFor(workers int) *pipeline {
	if p := n.pipe; p != nil && p.workers == workers {
		return p
	}
	size := n.g.N()
	bounds := splitByDegree(n.g, workers)
	nw := len(bounds) - 1
	p := &pipeline{
		n:       n,
		workers: workers,
		bounds:  bounds,
		arenas:  make([][2]byteArena, nw),
		seen:    make([][]int64, nw),
		stamps:  make([]int64, nw),
		stats:   make([]Stats, nw),
		errs:    make([]error, nw),
		ndone:   make([]int, nw),
	}
	p.outboxes[0] = make([][]Message, size)
	p.outboxes[1] = make([][]Message, size)
	for w := range p.seen {
		p.seen[w] = make([]int64, size)
	}
	n.pipe = p
	return p
}

// runPipelined executes the run on the two-stage pipeline. Invariant on
// entering iteration `round`: rounds 1..round-1 are computed and
// validated, rounds 1..round-2 delivered and hooked.
func (n *Network) runPipelined(ctx context.Context, workers, maxRounds int) (Result, error) {
	size := n.g.N()
	p := n.pipelineFor(workers)
	p.reset()
	nw := len(p.bounds) - 1
	p.cmds = make([]chan pipeCmd, nw)
	for w := 0; w < nw; w++ {
		p.cmds[w] = make(chan pipeCmd, 1)
		p.exit.Add(1)
		go p.worker(w)
	}
	defer func() {
		for _, ch := range p.cmds {
			close(ch)
		}
		// Join the workers before returning: the buffers they touch are
		// reused by the Network's next run.
		p.exit.Wait()
	}()

	ctxDone := ctx.Done()
	hook := n.cfg.Hook

	allDone := true
	for u := 0; u < size; u++ {
		if !n.programs[u].Done() {
			allDone = false
			break
		}
	}

	// finish delivers (and hooks) the last computed round round-1, which
	// the fused step deferred into the step the abort pre-empted. The
	// sequential loop delivers round r-1 before evaluating round r's
	// checks, so every exit must too.
	finish := func(round int) error {
		if round < 2 {
			return nil
		}
		return p.runStep(pipeCmd{round: round, deliver: true}, hook)
	}

	for round := 1; ; round++ {
		if ctxDone != nil {
			select {
			case <-ctxDone:
				if herr := finish(round); herr != nil {
					return Result{}, herr
				}
				return Result{}, fmt.Errorf("congest: run cancelled in round %d: %w", round, ctx.Err())
			default:
			}
		}
		if round > maxRounds {
			if herr := finish(round); herr != nil {
				return Result{}, herr
			}
			return Result{}, fmt.Errorf("%w: %d", ErrMaxRounds, maxRounds)
		}
		if allDone {
			if herr := finish(round); herr != nil {
				return Result{}, herr
			}
			stats := p.mergeStats()
			stats.Rounds = round - 1
			n.cfg.Metrics.recordRun(stats)
			return n.collect(stats), nil
		}
		if herr := p.runStep(pipeCmd{round: round, deliver: round > 1, compute: true}, hook); herr != nil {
			return Result{}, herr
		}
		if err := p.firstError(); err != nil {
			return Result{}, err
		}
		allDone = p.doneCount() == size
	}
}

// reset recycles the retained buffers for a new run. Outbox slices keep
// their capacity; seen marks stay valid because stamps only ever grow.
func (p *pipeline) reset() {
	for u := range p.outboxes[0] {
		p.outboxes[0][u] = p.outboxes[0][u][:0]
		p.outboxes[1][u] = p.outboxes[1][u][:0]
	}
	for w := range p.stats {
		p.stats[w] = Stats{}
		p.errs[w] = nil
		p.ndone[w] = 0
	}
}

// runStep dispatches one fused step to every worker, replays the
// delivered round to the hook on this goroutine meanwhile, and waits for
// the barrier. The returned error is the hook's (round-1's event, so it
// outranks the step's compute-stage validation errors).
func (p *pipeline) runStep(cmd pipeCmd, hook MessageHook) error {
	p.barrier.Add(len(p.cmds))
	for _, ch := range p.cmds {
		ch <- cmd
	}
	var hookErr error
	if cmd.deliver && hook != nil {
		hookErr = p.hookPass(hook, cmd.round-1)
	}
	p.barrier.Wait()
	return hookErr
}

// hookPass replays round's messages to the hook in global sender-ID order
// — the exact sequence the sequential delivery loop produces. It reads
// the same parity buffer the delivery workers are scattering from
// (read-read), never the one being computed.
func (p *pipeline) hookPass(hook MessageHook, round int) error {
	out := p.outboxes[round&1]
	for u := range out {
		for _, msg := range out[u] {
			if err := hook(round, msg); err != nil {
				return fmt.Errorf("congest: hook: %w", err)
			}
		}
	}
	return nil
}

func (p *pipeline) worker(w int) {
	defer p.exit.Done()
	for cmd := range p.cmds[w] {
		p.step(w, cmd)
	}
}

// step runs one fused deliver/compute command with panic containment: a
// panicking node program fails this worker's range (p.errs[w], surfaced
// by firstError like any program error) instead of killing the process.
// Deferred registration order matters — the recover handler is deferred
// after barrier.Done, so it runs first (LIFO) and the barrier is always
// released, panicking or not; the run then shuts down through the normal
// error path with the pipeline's channels still drained.
func (p *pipeline) step(w int, cmd pipeCmd) {
	lo, hi := p.bounds[w], p.bounds[w+1]
	defer p.barrier.Done()
	defer func() {
		if r := recover(); r != nil && p.errs[w] == nil {
			p.errs[w] = fault.NewPanicError(fmt.Sprintf("pipeline worker %d (nodes %d-%d, round %d)", w, lo, hi-1, cmd.round), r)
		}
	}()
	if cmd.deliver {
		p.deliverRange(w, lo, hi, cmd.round-1)
	}
	if cmd.compute {
		p.computeRange(w, lo, hi, cmd.round)
	}
}

// deliverRange scatters round's sends addressed to destinations [lo, hi)
// into their inboxes, scanning all senders in ID order so each inbox ends
// up sorted by sender. Payloads were arena-copied at compute time, so
// this is header movement only.
func (p *pipeline) deliverRange(w, lo, hi, round int) {
	n := p.n
	out := p.outboxes[round&1]
	st := &p.stats[w]
	for v := lo; v < hi; v++ {
		n.inboxes[v] = n.inboxes[v][:0]
	}
	for u := range out {
		for _, msg := range out[u] {
			if msg.To < lo || hi <= msg.To {
				continue
			}
			st.Messages++
			bits := msg.Bits()
			st.TotalBits += bits
			if bits > st.MaxMessageBits {
				st.MaxMessageBits = bits
			}
			n.inboxes[msg.To] = append(n.inboxes[msg.To], msg)
		}
	}
}

// computeRange runs round for senders [lo, hi): invokes the programs,
// validates their outboxes (recording the worker's first error), and
// copies payloads into this worker's arena of the round's parity so the
// next step's delivery and hook stages read stable data while the
// programs already compute the round after.
func (p *pipeline) computeRange(w, lo, hi, round int) {
	n := p.n
	arena := &p.arenas[w][round&1]
	arena.reset()
	out := p.outboxes[round&1]
	seen := p.seen[w]
	done := 0
	var firstErr error
	for u := lo; u < hi; u++ {
		prog := n.programs[u]
		if prog.Done() {
			out[u] = out[u][:0]
			done++
			continue
		}
		var msgs []Message
		if bp := n.buffered[u]; bp != nil {
			msgs = bp.AppendRound(round, n.inboxes[u], out[u][:0])
		} else {
			msgs = prog.Round(round, n.inboxes[u])
		}
		if firstErr == nil {
			p.stamps[w]++
			stamp := p.stamps[w]
			for i := range msgs {
				if err := validateMsg(n.g, n.bw, u, msgs[i], round, seen, stamp); err != nil {
					firstErr = err
					break
				}
			}
		}
		if firstErr == nil {
			for i := range msgs {
				msgs[i].Data = arena.copy(msgs[i].Data)
			}
			out[u] = msgs
		} else {
			out[u] = out[u][:0]
		}
		if prog.Done() {
			done++
		}
	}
	p.errs[w] = firstErr
	p.ndone[w] = done
}

// firstError returns the step's winning validation error: the first
// worker's (lowest node range, hence first in sender order), like the
// sequential loop's early return.
func (p *pipeline) firstError() error {
	for _, err := range p.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (p *pipeline) doneCount() int {
	total := 0
	for _, d := range p.ndone {
		total += d
	}
	return total
}

func (p *pipeline) mergeStats() Stats {
	var s Stats
	for _, st := range p.stats {
		s.Messages += st.Messages
		s.TotalBits += st.TotalBits
		if st.MaxMessageBits > s.MaxMessageBits {
			s.MaxMessageBits = st.MaxMessageBits
		}
	}
	return s
}
