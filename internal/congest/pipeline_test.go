package congest

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"congestlb/internal/graphs"
)

// staggered sends its ID to every neighbour for id%4+1 rounds, then
// terminates — nodes drop out of the round loop at different times, which
// exercises the pipeline's per-worker done counting and the final
// delivery-only step.
type staggered struct {
	info NodeInfo
	last int
	done bool
}

func (s *staggered) Init(info NodeInfo) {
	s.info = info
	s.last = info.ID%4 + 1
	s.done = false
}

func (s *staggered) Round(round int, inbox []Message) []Message {
	if round > s.last {
		s.done = true
		return nil
	}
	out := make([]Message, 0, len(s.info.Neighbors))
	for _, v := range s.info.Neighbors {
		out = append(out, Message{From: s.info.ID, To: v, Data: []byte{byte(s.info.ID), byte(round)}})
	}
	return out
}

func (s *staggered) Done() bool  { return s.done }
func (s *staggered) Output() any { return s.last }

// hookRec is one hook observation; the transcript — the ordered sequence
// of hookRecs — is the engine-equivalence currency of this file.
type hookRec struct {
	round    int
	from, to int
	data     string
}

// runTranscript executes one run recording the full hook transcript.
func runTranscript(t *testing.T, g *graphs.Graph, programs []NodeProgram, cfg Config) (Result, []hookRec, error) {
	t.Helper()
	var tx []hookRec
	userHook := cfg.Hook
	cfg.Hook = func(round int, msg Message) error {
		tx = append(tx, hookRec{round: round, from: msg.From, to: msg.To, data: string(msg.Data)})
		if userHook != nil {
			return userHook(round, msg)
		}
		return nil
	}
	net, err := NewNetwork(g, programs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	result, err := net.Run()
	return result, tx, err
}

// TestPipelineMatchesSequential is the tentpole determinism contract:
// result, stats and the complete message transcript must be bit-identical
// to the sequential engine at workers 1, 2, 4 and 8, on both a uniform
// ring and a hub-skewed star, for uniform and staggered termination.
func TestPipelineMatchesSequential(t *testing.T) {
	cases := []struct {
		name     string
		g        *graphs.Graph
		programs func(n int) []NodeProgram
	}{
		{"ring/flood", ring(t, 24), floodPrograms},
		{"star/flood", star(t, 25), floodPrograms},
		{"ring/staggered", ring(t, 24), func(n int) []NodeProgram {
			out := make([]NodeProgram, n)
			for i := range out {
				out[i] = &staggered{}
			}
			return out
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.g.N()
			seqRes, seqTx, err := runTranscript(t, tc.g, tc.programs(n), Config{Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
					res, tx, err := runTranscript(t, tc.g, tc.programs(n),
						Config{Seed: 7, Parallel: true, Workers: workers})
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(seqRes, res) {
						t.Fatalf("result diverged:\nseq %+v\npipe %+v", seqRes, res)
					}
					if !reflect.DeepEqual(seqTx, tx) {
						t.Fatalf("hook transcript diverged (%d vs %d records)", len(seqTx), len(tx))
					}
				})
			}
		})
	}
}

// TestPipelineErrorsMatchSequential: every validation failure mode must
// produce byte-identical error strings under the pipeline, and the
// winning error must be the first in sender order even when a
// higher-ranked worker's range also contains one.
func TestPipelineErrorsMatchSequential(t *testing.T) {
	mkPrograms := func(n int, bad map[int]Message) []NodeProgram {
		programs := make([]NodeProgram, n)
		for i := range programs {
			if msg, ok := bad[i]; ok {
				programs[i] = &misbehaver{msg: msg}
			} else {
				programs[i] = &silent{}
			}
		}
		return programs
	}
	cases := []struct {
		name string
		bad  map[int]Message
	}{
		{"forged", map[int]Message{2: {From: 5, To: 3, Data: []byte{1}}}},
		{"non-neighbour", map[int]Message{2: {From: 2, To: 7, Data: []byte{1}}}},
		{"bandwidth", map[int]Message{2: {From: 2, To: 3, Data: make([]byte, 100)}}},
		// Two misbehavers in different worker ranges: node 3's error must
		// win over node 13's at every worker count.
		{"first-in-sender-order", map[int]Message{
			3:  {From: 3, To: 9, Data: []byte{1}},
			13: {From: 13, To: 2, Data: []byte{1}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := ring(t, 16)
			seqNet, err := NewNetwork(g, mkPrograms(16, tc.bad), Config{})
			if err != nil {
				t.Fatal(err)
			}
			_, seqErr := seqNet.Run()
			if seqErr == nil {
				t.Fatal("sequential run accepted the bad message")
			}
			for _, workers := range []int{2, 4, 8} {
				net, err := NewNetwork(g, mkPrograms(16, tc.bad), Config{Parallel: true, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				_, pipeErr := net.Run()
				if pipeErr == nil || pipeErr.Error() != seqErr.Error() {
					t.Fatalf("workers=%d error %q, sequential %q", workers, pipeErr, seqErr)
				}
			}
		})
	}
}

// TestPipelineDuplicateRejected covers the seen-stamp path separately:
// duplicateSender hardcodes From: 0, so it must sit at node 0.
func TestPipelineDuplicateRejected(t *testing.T) {
	g := ring(t, 8)
	mk := func() []NodeProgram {
		programs := make([]NodeProgram, 8)
		programs[0] = &duplicateSender{}
		for i := 1; i < 8; i++ {
			programs[i] = &silent{}
		}
		return programs
	}
	seqNet, _ := NewNetwork(g, mk(), Config{})
	_, seqErr := seqNet.Run()
	net, _ := NewNetwork(g, mk(), Config{Parallel: true, Workers: 4})
	if _, err := net.Run(); err == nil || err.Error() != seqErr.Error() {
		t.Fatalf("pipeline error %q, sequential %q", err, seqErr)
	}
}

// TestPipelineMaxRounds: the failsafe fires with the same error, and the
// hook transcript still covers rounds 1..MaxRounds exactly like the
// sequential engine (the final round's delivery is owed by the abort
// path).
func TestPipelineMaxRounds(t *testing.T) {
	mk := func(n int) []NodeProgram {
		programs := make([]NodeProgram, n)
		for i := range programs {
			programs[i] = &chatterbox{}
		}
		return programs
	}
	g := ring(t, 12)
	_, seqTx, seqErr := runTranscript(t, g, mk(12), Config{MaxRounds: 10})
	if !errors.Is(seqErr, ErrMaxRounds) {
		t.Fatalf("sequential error = %v", seqErr)
	}
	_, tx, err := runTranscript(t, g, mk(12), Config{MaxRounds: 10, Parallel: true, Workers: 4})
	if !errors.Is(err, ErrMaxRounds) || err.Error() != seqErr.Error() {
		t.Fatalf("pipeline error %q, sequential %q", err, seqErr)
	}
	if !reflect.DeepEqual(seqTx, tx) {
		t.Fatalf("transcript diverged on MaxRounds abort: %d vs %d records", len(seqTx), len(tx))
	}
}

// TestPipelineCancel: a cancelled context aborts with the same error as
// the sequential engine.
func TestPipelineCancel(t *testing.T) {
	g := ring(t, 12)
	programs := make([]NodeProgram, 12)
	for i := range programs {
		programs[i] = &chatterbox{}
	}
	net, err := NewNetwork(g, programs, Config{Parallel: true, Workers: 4, MaxRounds: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := net.RunCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

// TestPipelineHookErrorAborts: hook failures abort with the wrapped error
// under the pipeline too.
func TestPipelineHookErrorAborts(t *testing.T) {
	g := ring(t, 8)
	boom := errors.New("boom")
	cfg := Config{Parallel: true, Workers: 4, Hook: func(int, Message) error { return boom }}
	net, err := NewNetwork(g, floodPrograms(8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); !errors.Is(err, boom) {
		t.Fatalf("error = %v, want wrapped boom", err)
	}
}

// TestPipelineRunStateRetainedAcrossRuns: repeated pipelined runs on one
// Network reuse the retained double buffers invisibly.
func TestPipelineRunStateRetainedAcrossRuns(t *testing.T) {
	g := ring(t, 24)
	net, err := NewNetwork(g, floodPrograms(24), Config{Seed: 7, Parallel: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	first, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	second, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("pipelined re-run diverged:\nfirst  %+v\nsecond %+v", first, second)
	}
}

// TestPipelineEnvOverride: CONGESTLB_PIPELINE flips engine selection per
// Run — "force" turns pipelining on for configs that never asked for it,
// "off" disables it — which is the lever the determinism CI pulls.
func TestPipelineEnvOverride(t *testing.T) {
	g := ring(t, 16)
	net, err := NewNetwork(g, floodPrograms(16), Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if w := net.effectiveWorkers(); w != 1 {
		t.Fatalf("no Parallel, no override: workers = %d, want 1", w)
	}
	t.Setenv("CONGESTLB_PIPELINE", "force")
	if w := net.effectiveWorkers(); w != 4 {
		t.Fatalf("forced: workers = %d, want 4", w)
	}
	t.Setenv("CONGESTLB_PIPELINE", "off")
	parNet, err := NewNetwork(g, floodPrograms(16), Config{Parallel: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if w := parNet.effectiveWorkers(); w != 1 {
		t.Fatalf("disabled: workers = %d, want 1", w)
	}
	// And a forced run is still bit-identical to sequential.
	t.Setenv("CONGESTLB_PIPELINE", "force")
	forced, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv("CONGESTLB_PIPELINE", "off")
	seq, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(forced, seq) {
		t.Fatalf("forced pipeline diverged from sequential:\nforced %+v\nseq    %+v", forced, seq)
	}
}

// TestArenaHighWaterDecays is the retention fix: after a big run inflates
// the process-wide arena estimate, a stream of small runs must pull it
// back down to the small instance's envelope instead of every fresh small
// Network inheriting (ceiling-capped) blocks sized for the big run
// forever.
func TestArenaHighWaterDecays(t *testing.T) {
	// Inflate: a dense flood on a moderately large ring settles on a
	// multi-kilobyte arena block.
	big := ring(t, 256)
	bigNet, err := NewNetwork(big, floodPrograms(256), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bigNet.Run(); err != nil {
		t.Fatal(err)
	}
	inflated := arenaHighWater.Load()

	// The small instance's own per-round ceiling: 2m directed messages of
	// at most B bytes.
	smallG := ring(t, 8)
	bw := DefaultBandwidth(8)
	ceil := int64(2*smallG.M()) * ((bw + 7) / 8)
	if inflated <= ceil {
		t.Skipf("big run settled at %d bytes, below the small ceiling %d — nothing to decay", inflated, ceil)
	}

	// Steady state: each fresh small Network seeds at most ceil bytes and
	// records its settled size back, decaying the estimate geometrically.
	for i := 0; i < 64; i++ {
		net, err := NewNetwork(smallG, floodPrograms(8), Config{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.Run(); err != nil {
			t.Fatal(err)
		}
	}
	settled := arenaHighWater.Load()
	if settled > ceil {
		t.Fatalf("arena high-water stuck at %d bytes after small runs; want <= small ceiling %d (was %d)",
			settled, ceil, inflated)
	}
	// And a fresh small Network now seeds within its own envelope.
	net, err := NewNetwork(smallG, floodPrograms(8), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	if got := int64(len(net.arena.buf)); got > ceil {
		t.Fatalf("fresh small Network arena %d bytes exceeds its ceiling %d", got, ceil)
	}
}
