package congest

// RoundStat aggregates the traffic of one round.
type RoundStat struct {
	// Round is the 1-based round number.
	Round int
	// Messages is the number of messages delivered that round.
	Messages int64
	// Bits is their total payload volume.
	Bits int64
}

// Tracer collects per-round traffic statistics through the engine's
// message hook. The zero value is ready to use:
//
//	var tr congest.Tracer
//	cfg := congest.Config{Hook: tr.Hook()}
//
// Hook invocation contract (all three engines): hooks are always called
// from exactly one goroutine, in global sender-ID order within a round,
// rounds ascending — so Tracer needs no locking. The goroutine differs
// by engine: the sequential engine calls hooks inline from its delivery
// loop; the pipelined engine replays each round's messages on the main
// run goroutine (hookPass) concurrently with the delivery workers —
// both read the same already-computed parity buffer, the workers never
// write it — so the hook still sees the exact sequential order but runs
// overlapped with inbox scatter; the batch engine calls each item's
// hook from its single lockstep loop. Consequently a hook must not
// mutate engine or program state, and the Message passed to it (its
// Data slice is arena-backed) is valid only for the duration of the
// call. One Tracer must not be shared across concurrently running
// instances; per-item Tracers under RunBatch are fine.
type Tracer struct {
	stats []RoundStat
}

// Hook returns a MessageHook that records every delivered message.
func (t *Tracer) Hook() MessageHook {
	return func(round int, msg Message) error {
		if len(t.stats) == 0 || t.stats[len(t.stats)-1].Round != round {
			t.stats = append(t.stats, RoundStat{Round: round})
		}
		last := &t.stats[len(t.stats)-1]
		last.Messages++
		last.Bits += msg.Bits()
		return nil
	}
}

// Rounds returns the per-round statistics in round order (rounds with no
// traffic are absent).
func (t *Tracer) Rounds() []RoundStat {
	return append([]RoundStat(nil), t.stats...)
}

// PeakRound returns the round with the most bits, or a zero RoundStat when
// no traffic was recorded.
func (t *Tracer) PeakRound() RoundStat {
	var peak RoundStat
	for _, s := range t.stats {
		if s.Bits > peak.Bits {
			peak = s
		}
	}
	return peak
}

// Total returns the summed messages and bits across all rounds.
func (t *Tracer) Total() (messages, bits int64) {
	for _, s := range t.stats {
		messages += s.Messages
		bits += s.Bits
	}
	return messages, bits
}

// Reset clears the collected statistics.
func (t *Tracer) Reset() { t.stats = t.stats[:0] }
