package congest

// RoundStat aggregates the traffic of one round.
type RoundStat struct {
	// Round is the 1-based round number.
	Round int
	// Messages is the number of messages delivered that round.
	Messages int64
	// Bits is their total payload volume.
	Bits int64
}

// Tracer collects per-round traffic statistics through the engine's
// message hook. The zero value is ready to use:
//
//	var tr congest.Tracer
//	cfg := congest.Config{Hook: tr.Hook()}
//
// Tracer is not safe for concurrent use with other hooks mutating it; the
// engine invokes hooks from the delivery loop only, which is single
// threaded even under the parallel engine.
type Tracer struct {
	stats []RoundStat
}

// Hook returns a MessageHook that records every delivered message.
func (t *Tracer) Hook() MessageHook {
	return func(round int, msg Message) error {
		if len(t.stats) == 0 || t.stats[len(t.stats)-1].Round != round {
			t.stats = append(t.stats, RoundStat{Round: round})
		}
		last := &t.stats[len(t.stats)-1]
		last.Messages++
		last.Bits += msg.Bits()
		return nil
	}
}

// Rounds returns the per-round statistics in round order (rounds with no
// traffic are absent).
func (t *Tracer) Rounds() []RoundStat {
	return append([]RoundStat(nil), t.stats...)
}

// PeakRound returns the round with the most bits, or a zero RoundStat when
// no traffic was recorded.
func (t *Tracer) PeakRound() RoundStat {
	var peak RoundStat
	for _, s := range t.stats {
		if s.Bits > peak.Bits {
			peak = s
		}
	}
	return peak
}

// Total returns the summed messages and bits across all rounds.
func (t *Tracer) Total() (messages, bits int64) {
	for _, s := range t.stats {
		messages += s.Messages
		bits += s.Bits
	}
	return messages, bits
}

// Reset clears the collected statistics.
func (t *Tracer) Reset() { t.stats = t.stats[:0] }
