package congest

import "testing"

func TestTracerCollectsPerRoundStats(t *testing.T) {
	g := ring(t, 8)
	var tr Tracer
	net, err := NewNetwork(g, floodPrograms(8), Config{Hook: tr.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	result, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	rounds := tr.Rounds()
	if len(rounds) == 0 {
		t.Fatal("tracer recorded nothing")
	}
	messages, bits := tr.Total()
	if messages != result.Stats.Messages {
		t.Fatalf("tracer total %d messages, stats %d", messages, result.Stats.Messages)
	}
	if bits != result.Stats.TotalBits {
		t.Fatalf("tracer total %d bits, stats %d", bits, result.Stats.TotalBits)
	}
	for i := 1; i < len(rounds); i++ {
		if rounds[i].Round <= rounds[i-1].Round {
			t.Fatal("rounds out of order")
		}
	}
	peak := tr.PeakRound()
	if peak.Bits == 0 {
		t.Fatal("peak round empty")
	}
	tr.Reset()
	if len(tr.Rounds()) != 0 {
		t.Fatal("Reset did not clear")
	}
}

// TestTracerPipelinedEngine pins the Tracer contract under the pipelined
// engine: hooks run on the engine's own goroutine in the sequential
// delivery order, so an unlocked Tracer observes the identical per-round
// trace at any worker count.
func TestTracerPipelinedEngine(t *testing.T) {
	var ref Tracer
	net, err := NewNetwork(ring(t, 16), floodPrograms(16), Config{Seed: 21, Hook: ref.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	want := ref.Rounds()

	for _, workers := range []int{2, 4, 8} {
		var tr Tracer
		net, err := NewNetwork(ring(t, 16), floodPrograms(16),
			Config{Seed: 21, Parallel: true, Workers: workers, Hook: tr.Hook()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.Run(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := tr.Rounds()
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d traced rounds, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d round %d: %+v, want %+v", workers, want[i].Round, got[i], want[i])
			}
		}
	}
}

func TestTracerZeroValue(t *testing.T) {
	var tr Tracer
	if peak := tr.PeakRound(); peak.Bits != 0 || peak.Round != 0 {
		t.Fatal("zero tracer peak not zero")
	}
	m, b := tr.Total()
	if m != 0 || b != 0 {
		t.Fatal("zero tracer totals not zero")
	}
}
