package congest

import "testing"

func TestTracerCollectsPerRoundStats(t *testing.T) {
	g := ring(t, 8)
	var tr Tracer
	net, err := NewNetwork(g, floodPrograms(8), Config{Hook: tr.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	result, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	rounds := tr.Rounds()
	if len(rounds) == 0 {
		t.Fatal("tracer recorded nothing")
	}
	messages, bits := tr.Total()
	if messages != result.Stats.Messages {
		t.Fatalf("tracer total %d messages, stats %d", messages, result.Stats.Messages)
	}
	if bits != result.Stats.TotalBits {
		t.Fatalf("tracer total %d bits, stats %d", bits, result.Stats.TotalBits)
	}
	for i := 1; i < len(rounds); i++ {
		if rounds[i].Round <= rounds[i-1].Round {
			t.Fatal("rounds out of order")
		}
	}
	peak := tr.PeakRound()
	if peak.Bits == 0 {
		t.Fatal("peak round empty")
	}
	tr.Reset()
	if len(tr.Rounds()) != 0 {
		t.Fatal("Reset did not clear")
	}
}

// TestTracerPipelinedEngine pins the Tracer contract under the pipelined
// engine: hooks run on the engine's own goroutine in the sequential
// delivery order, so an unlocked Tracer observes the identical per-round
// trace at any worker count.
func TestTracerPipelinedEngine(t *testing.T) {
	var ref Tracer
	net, err := NewNetwork(ring(t, 16), floodPrograms(16), Config{Seed: 21, Hook: ref.Hook()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(); err != nil {
		t.Fatal(err)
	}
	want := ref.Rounds()

	for _, workers := range []int{2, 4, 8} {
		var tr Tracer
		net, err := NewNetwork(ring(t, 16), floodPrograms(16),
			Config{Seed: 21, Parallel: true, Workers: workers, Hook: tr.Hook()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.Run(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := tr.Rounds()
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d traced rounds, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d round %d: %+v, want %+v", workers, want[i].Round, got[i], want[i])
			}
		}
	}
}

// TestTracerBatchEngine pins the Tracer contract under RunBatch: each
// item's hook fires from the single lockstep loop, so unlocked per-item
// Tracers observe exactly the trace a dedicated solo run produces, even
// when the items share one graph.
func TestTracerBatchEngine(t *testing.T) {
	g := ring(t, 12)
	seeds := []int64{3, 7, 21}

	want := make([][]RoundStat, len(seeds))
	for i, seed := range seeds {
		var tr Tracer
		net, err := NewNetwork(g, floodPrograms(12), Config{Seed: seed, Hook: tr.Hook()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.Run(); err != nil {
			t.Fatal(err)
		}
		want[i] = tr.Rounds()
	}

	tracers := make([]Tracer, len(seeds))
	items := make([]BatchItem, len(seeds))
	for i, seed := range seeds {
		items[i] = BatchItem{
			Graph:    g,
			Programs: floodPrograms(12),
			Config:   Config{Seed: seed, Hook: tracers[i].Hook()},
		}
	}
	_, errs, _ := RunBatch(nil, items)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
	}
	for i := range seeds {
		got := tracers[i].Rounds()
		if len(got) != len(want[i]) {
			t.Fatalf("item %d: %d traced rounds, want %d", i, len(got), len(want[i]))
		}
		for r := range want[i] {
			if got[r] != want[i][r] {
				t.Fatalf("item %d round %d: %+v, want %+v", i, want[i][r].Round, got[r], want[i][r])
			}
		}
	}
}

func TestTracerZeroValue(t *testing.T) {
	var tr Tracer
	if peak := tr.PeakRound(); peak.Bits != 0 || peak.Round != 0 {
		t.Fatal("zero tracer peak not zero")
	}
	m, b := tr.Total()
	if m != 0 || b != 0 {
		t.Fatal("zero tracer totals not zero")
	}
}
