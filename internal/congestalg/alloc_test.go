package congestalg

import (
	"math/rand"
	"testing"

	"congestlb/internal/congest"
	"congestlb/internal/graphs"
)

// The wire append/decode round-trips are the per-message hot path of every
// CONGEST program; they must not touch the heap when fed a scratch buffer.
func TestWireAppendDecodeAllocationFree(t *testing.T) {
	scratch := make([]byte, 0, nodeRecordLen)
	nr := nodeRecord{id: 513, weight: 70000, degree: 12}
	er := edgeRecord{u: 3, v: 700}

	allocs := testing.AllocsPerRun(100, func() {
		scratch = appendStatus(scratch[:0], stateIn, 0xDEADBEEF)
		if _, _, err := decodeStatus(scratch); err != nil {
			t.Fatal(err)
		}
		scratch = appendNodeRecord(scratch[:0], nr)
		if _, _, _, err := decodeRecord(scratch); err != nil {
			t.Fatal(err)
		}
		scratch = appendEdgeRecord(scratch[:0], er)
		if _, _, _, err := decodeRecord(scratch); err != nil {
			t.Fatal(err)
		}
		scratch = appendBFS(scratch[:0], 7, 3)
		if _, _, err := decodeBFS(scratch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("wire round-trips allocated %.1f times per run, want 0", allocs)
	}
}

// allocTestGraph builds the deterministic ~64-node random graph shared by
// the allocation and determinism tests.
func allocTestGraph(t *testing.T, n int, seed int64) *graphs.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graphs.NewWithN(n)
	for i := 0; i < n; i++ {
		g.AddNodeID(int64(rng.Intn(50) + 1))
	}
	// A Hamiltonian path keeps the graph connected, then random chords.
	for i := 1; i < n; i++ {
		g.MustAddEdge(i-1, i)
	}
	for u := 0; u < n; u++ {
		for v := u + 2; v < n; v++ {
			if rng.Float64() < 0.08 {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

// TestRunAllocationBudget pins the allocation count of a mid-size
// Network.Run: the round loop is arena- and buffer-recycled, so the only
// allocations left are the O(n) per-run setup (program Init state, per-node
// randomness, inbox/outbox tables) — nothing proportional to rounds ×
// messages. The budget is deliberately generous headroom over the measured
// value (~1k) while still catching any per-message regression, which
// costs tens of thousands of allocations at this size.
func TestRunAllocationBudget(t *testing.T) {
	const n = 64
	g := allocTestGraph(t, n, 1729)

	const budget = 3000
	allocs := testing.AllocsPerRun(5, func() {
		net, err := congest.NewNetwork(g, NewRankGreedyPrograms(n), congest.Config{Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > budget {
		t.Fatalf("Network.Run allocated %.0f times, budget %d", allocs, budget)
	}
}
