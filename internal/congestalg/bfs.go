package congestalg

import (
	"encoding/binary"
	"fmt"

	"congestlb/internal/congest"
	"congestlb/internal/graphs"
)

// BFSResult is the per-node output of the LeaderBFS program.
type BFSResult struct {
	// Leader is the elected leader: the minimum node ID in the node's
	// connected component.
	Leader graphs.NodeID
	// Dist is the hop distance to the leader.
	Dist int
	// Parent is the BFS-tree parent (-1 at the leader itself).
	Parent graphs.NodeID
}

// LeaderBFS elects the minimum-ID node as leader and builds a BFS tree
// rooted at it, the standard preamble of centralised CONGEST algorithms
// (including the collect-and-solve universal algorithm). Each round every
// active node broadcasts its best known (leader, dist) pair; improvements
// adopt the sender as parent. The program self-terminates after n rounds,
// by which time the flood has stabilised on any connected graph.
//
// Output: BFSResult.
type LeaderBFS struct {
	info    congest.NodeInfo
	leader  int
	dist    int
	parent  int
	done    bool
	sendBuf []byte
}

var _ congest.BufferedProgram = (*LeaderBFS)(nil)

// NewLeaderBFSPrograms returns one LeaderBFS program per node.
func NewLeaderBFSPrograms(n int) []congest.NodeProgram {
	programs := make([]congest.NodeProgram, n)
	for i := range programs {
		programs[i] = &LeaderBFS{}
	}
	return programs
}

// Init implements congest.NodeProgram.
func (b *LeaderBFS) Init(info congest.NodeInfo) {
	b.info = info
	b.leader = info.ID
	b.dist = 0
	b.parent = -1
	b.done = false
	b.sendBuf = make([]byte, 0, bfsLen)
}

// Round implements congest.NodeProgram.
func (b *LeaderBFS) Round(round int, inbox []congest.Message) []congest.Message {
	return b.AppendRound(round, inbox, nil)
}

// AppendRound implements congest.BufferedProgram.
func (b *LeaderBFS) AppendRound(round int, inbox []congest.Message, out []congest.Message) []congest.Message {
	for _, m := range inbox {
		leader, dist, err := decodeBFS(m.Data)
		if err != nil {
			continue // tolerate garbage; flooding is self-correcting
		}
		if leader < b.leader || (leader == b.leader && dist+1 < b.dist) {
			b.leader = leader
			b.dist = dist + 1
			b.parent = m.From
		}
	}
	if round > b.info.N {
		b.done = true
		return out
	}
	b.sendBuf = appendBFS(b.sendBuf[:0], b.leader, b.dist)
	for _, v := range b.info.Neighbors {
		out = append(out, congest.Message{From: b.info.ID, To: v, Data: b.sendBuf})
	}
	return out
}

// Done implements congest.NodeProgram.
func (b *LeaderBFS) Done() bool { return b.done }

// Output implements congest.NodeProgram.
func (b *LeaderBFS) Output() any {
	return BFSResult{Leader: b.leader, Dist: b.dist, Parent: b.parent}
}

// bfsLen is the wire size of a BFS flood message.
const bfsLen = 5

// appendBFS packs (leader, dist) into 5 bytes appended to dst.
func appendBFS(dst []byte, leader, dist int) []byte {
	return append(dst, wireStatus+100, // distinct tag, private to this program
		byte(leader>>8), byte(leader), byte(dist>>8), byte(dist))
}

func encodeBFS(leader, dist int) []byte {
	return appendBFS(make([]byte, 0, bfsLen), leader, dist)
}

func decodeBFS(data []byte) (leader, dist int, err error) {
	if len(data) != 5 || data[0] != wireStatus+100 {
		return 0, 0, fmt.Errorf("congestalg: malformed BFS message % x", data)
	}
	return int(binary.BigEndian.Uint16(data[1:])), int(binary.BigEndian.Uint16(data[3:])), nil
}

// BFSResults extracts the typed outputs of a LeaderBFS run.
func BFSResults(result congest.Result) ([]BFSResult, error) {
	out := make([]BFSResult, len(result.Outputs))
	for u, o := range result.Outputs {
		r, ok := o.(BFSResult)
		if !ok {
			return nil, fmt.Errorf("congestalg: node %d produced %T, want BFSResult", u, o)
		}
		out[u] = r
	}
	return out, nil
}
