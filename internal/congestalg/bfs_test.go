package congestalg

import (
	"math/rand"
	"testing"

	"congestlb/internal/congest"
)

func TestLeaderBFSOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(50)
		g := randomGraph(n, 0.1, 3, rng)
		result := runPrograms(t, g, NewLeaderBFSPrograms(n), congest.Config{})
		results, err := BFSResults(result)
		if err != nil {
			t.Fatal(err)
		}
		truth := g.BFS(0) // node 0 is always the minimum ID
		for u, r := range results {
			if r.Leader != 0 {
				t.Fatalf("trial %d: node %d elected leader %d", trial, u, r.Leader)
			}
			if r.Dist != truth[u] {
				t.Fatalf("trial %d: node %d dist %d, BFS says %d", trial, u, r.Dist, truth[u])
			}
			if u == 0 {
				if r.Parent != -1 || r.Dist != 0 {
					t.Fatalf("leader has parent %d dist %d", r.Parent, r.Dist)
				}
				continue
			}
			// Parent must be a neighbour one hop closer to the leader.
			if !g.HasEdge(u, r.Parent) {
				t.Fatalf("trial %d: node %d parent %d not a neighbour", trial, u, r.Parent)
			}
			if truth[r.Parent] != r.Dist-1 {
				t.Fatalf("trial %d: node %d parent %d at dist %d, want %d",
					trial, u, r.Parent, truth[r.Parent], r.Dist-1)
			}
		}
	}
}

func TestLeaderBFSTreeIsSpanning(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	g := randomGraph(40, 0.1, 2, rng)
	result := runPrograms(t, g, NewLeaderBFSPrograms(40), congest.Config{})
	results, err := BFSResults(result)
	if err != nil {
		t.Fatal(err)
	}
	// Following parent pointers from any node must reach the leader
	// within n hops.
	for u := range results {
		cur, hops := u, 0
		for results[cur].Parent != -1 {
			cur = results[cur].Parent
			hops++
			if hops > 40 {
				t.Fatalf("parent chain from %d does not terminate", u)
			}
		}
		if cur != 0 {
			t.Fatalf("parent chain from %d ends at %d, not the leader", u, cur)
		}
	}
}

func TestBFSWireRoundTrip(t *testing.T) {
	data := encodeBFS(513, 77)
	leader, dist, err := decodeBFS(data)
	if err != nil || leader != 513 || dist != 77 {
		t.Fatalf("round trip: %d %d %v", leader, dist, err)
	}
	if _, _, err := decodeBFS([]byte{1, 2}); err == nil {
		t.Fatal("malformed BFS message accepted")
	}
}

func TestBFSResultsRejectsWrongOutputs(t *testing.T) {
	result := congest.Result{Outputs: []any{BFSResult{}, "nope"}}
	if _, err := BFSResults(result); err == nil {
		t.Fatal("wrong output type accepted")
	}
}
