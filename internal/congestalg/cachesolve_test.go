package congestalg

import (
	"math/rand"
	"testing"

	"congestlb/internal/congest"
	"congestlb/internal/mis/cache"
)

// TestGossipExactSolvesOncePerDistinctGraph is the tentpole property of the
// solve cache: in one GossipExact run every node reconstructs the identical
// network graph, so the n local solves must collapse to exactly one
// branch-and-bound (one cache miss) plus n-1 hits.
func TestGossipExactSolvesOncePerDistinctGraph(t *testing.T) {
	g := randomGraph(14, 0.3, 6, rand.New(rand.NewSource(21)))
	n := g.N()

	cache.Shared().Reset()
	result := runPrograms(t, g, NewGossipExactPrograms(n), congest.Config{Seed: 9})
	if _, err := ExactSetFromOutputs(result); err != nil {
		t.Fatal(err)
	}
	stats := cache.Shared().Stats()
	if stats.Misses != 1 {
		t.Fatalf("expected exactly one exact solve for one distinct graph, got %d misses (%+v)",
			stats.Misses, stats)
	}
	if stats.Hits != uint64(n-1) {
		t.Fatalf("expected %d cache hits (one per remaining node), got %d (%+v)",
			n-1, stats.Hits, stats)
	}

	// A second run of the same network is pure hits: the graph content is
	// unchanged, so even the first node's solve is served from cache.
	result = runPrograms(t, g, NewGossipExactPrograms(n), congest.Config{Seed: 10})
	if _, err := ExactSetFromOutputs(result); err != nil {
		t.Fatal(err)
	}
	stats = cache.Shared().Stats()
	if stats.Misses != 1 || stats.Hits != uint64(2*n-1) {
		t.Fatalf("second run should be all hits: %+v", stats)
	}
	cache.Shared().Reset()
}

// TestGossipExactCachedMatchesUncached runs the same GossipExact network
// with the cache disabled and enabled and requires identical outputs and
// identical run statistics: the cache must be invisible to every consumer
// of the results.
func TestGossipExactCachedMatchesUncached(t *testing.T) {
	g := randomGraph(12, 0.35, 5, rand.New(rand.NewSource(33)))
	n := g.N()

	prev := cache.SetEnabled(false)
	defer cache.SetEnabled(prev)
	uncached := runPrograms(t, g, NewGossipExactPrograms(n), congest.Config{Seed: 4})
	uncachedSet, err := ExactSetFromOutputs(uncached)
	if err != nil {
		t.Fatal(err)
	}

	cache.SetEnabled(true)
	cache.Shared().Reset()
	cached := runPrograms(t, g, NewGossipExactPrograms(n), congest.Config{Seed: 4})
	cachedSet, err := ExactSetFromOutputs(cached)
	if err != nil {
		t.Fatal(err)
	}
	cache.Shared().Reset()

	if uncached.Stats != cached.Stats {
		t.Fatalf("run stats changed under caching: %+v vs %+v", uncached.Stats, cached.Stats)
	}
	if len(uncachedSet) != len(cachedSet) {
		t.Fatalf("solution size changed under caching: %v vs %v", uncachedSet, cachedSet)
	}
	for i := range uncachedSet {
		if uncachedSet[i] != cachedSet[i] {
			t.Fatalf("solution changed under caching: %v vs %v", uncachedSet, cachedSet)
		}
	}
}

// TestCollectSolveUsesCache pins the other exact algorithm to the cache as
// well: the root's single solve registers in the shared counters.
func TestCollectSolveUsesCache(t *testing.T) {
	g := randomGraph(10, 0.3, 5, rand.New(rand.NewSource(55)))
	cache.Shared().Reset()
	result := runPrograms(t, g, NewCollectSolvePrograms(g.N()), congest.Config{Seed: 2})
	set := MembershipSet(result)
	if len(set) == 0 {
		t.Fatal("collect-solve produced an empty set")
	}
	stats := cache.Shared().Stats()
	if stats.Misses != 1 {
		t.Fatalf("collect-solve root solve not routed through the cache: %+v", stats)
	}
	cache.Shared().Reset()
}
