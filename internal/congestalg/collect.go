package congestalg

import (
	"encoding/binary"
	"fmt"
	"sort"

	"congestlb/internal/congest"
	"congestlb/internal/graphs"
	"congestlb/internal/mis"
	"congestlb/internal/mis/cache"
)

// CollectSolve is the textbook universal CONGEST algorithm behind the
// paper's "any problem can be solved in O(n²) rounds" remark, implemented
// as written in the textbooks rather than by gossip:
//
//  1. elect the min-ID leader and grow a BFS tree (n rounds);
//  2. announce parents so every node learns its children (1 round);
//  3. convergecast the whole graph up the tree, pipelined one record per
//     round per tree edge, with subtree-done markers for termination;
//  4. the root solves maximum-weight independent set locally and
//     downcasts the membership list.
//
// Compared with GossipExact it sends records only on tree edges, so its
// total traffic is Θ(n+m) records instead of Θ(m·(n+m)) — the round count
// stays Θ(n+m+D) = O(n²).
//
// On disconnected graphs each component elects its own leader and solves
// its own subgraph; the union of the per-component optima is the global
// optimum, so outputs remain exact.
//
// Output: bool — membership in the computed optimum independent set.
type CollectSolve struct {
	info congest.NodeInfo

	// BFS phase state.
	leader, dist, parent int

	// Tree structure, learned in the parent-announcement round.
	children  []graphs.NodeID
	childDone map[graphs.NodeID]bool

	// Upcast state. Queued payloads are arena-retained: the engine
	// recycles inbox storage between rounds.
	arena     recArena
	upQueue   [][]byte
	ownQueued bool
	sentDone  bool

	// Root collection.
	nodes map[int]nodeRecord
	edges map[edgeRecord]bool

	// Downcast state.
	downQueue [][]byte
	member    bool
	endSeen   bool
	failed    error
	done      bool

	// sendBuf is the scratch buffer for broadcast payloads (BFS floods
	// and the parent announcement), reused across rounds.
	sendBuf []byte

	// sess routes the root's exact solve (nil = shared solve cache).
	sess *cache.Session
}

var _ congest.BufferedProgram = (*CollectSolve)(nil)

// NewCollectSolvePrograms returns one CollectSolve program per node.
func NewCollectSolvePrograms(n int) []congest.NodeProgram {
	return NewCollectSolveProgramsWith(nil, n)
}

// NewCollectSolveProgramsWith is NewCollectSolvePrograms with the root's
// exact solve routed through the given solve session (nil = the shared
// cache), so callers get exact attribution of the solver work their run
// triggers.
func NewCollectSolveProgramsWith(sess *cache.Session, n int) []congest.NodeProgram {
	programs := make([]congest.NodeProgram, n)
	for i := range programs {
		programs[i] = &CollectSolve{sess: sess}
	}
	return programs
}

// Wire tags private to this program (BFS reuses encodeBFS).
const (
	collectParent byte = 200 + iota
	collectDone
	collectMember
	collectEnd
)

// Static single-byte payloads; outgoing payloads are copied by the engine
// at delivery, so sharing them across nodes and rounds is safe.
var (
	collectDoneMsg = []byte{collectDone}
	collectEndMsg  = []byte{collectEnd}
)

// Init implements congest.NodeProgram. It resets all run state so a
// Network can be Run repeatedly.
func (cs *CollectSolve) Init(info congest.NodeInfo) {
	cs.info = info
	cs.leader = info.ID
	cs.dist = 0
	cs.parent = -1
	cs.children = nil
	cs.childDone = make(map[graphs.NodeID]bool)
	cs.arena = recArena{}
	cs.upQueue = nil
	cs.ownQueued = false
	cs.sentDone = false
	cs.nodes = make(map[int]nodeRecord)
	cs.edges = make(map[edgeRecord]bool)
	cs.downQueue = nil
	cs.member = false
	cs.endSeen = false
	cs.failed = nil
	cs.done = false
	cs.sendBuf = make([]byte, 0, nodeRecordLen)
}

// Round implements congest.NodeProgram.
func (cs *CollectSolve) Round(round int, inbox []congest.Message) []congest.Message {
	return cs.AppendRound(round, inbox, nil)
}

// AppendRound implements congest.BufferedProgram.
func (cs *CollectSolve) AppendRound(round int, inbox []congest.Message, out []congest.Message) []congest.Message {
	n := cs.info.N
	switch {
	case round <= n:
		return cs.bfsRound(inbox, out)
	case round == n+1:
		// BFS has stabilised; announce the parent to all neighbours.
		cs.sendBuf = appendParent(cs.sendBuf[:0], cs.parent)
		for _, v := range cs.info.Neighbors {
			out = append(out, congest.Message{From: cs.info.ID, To: v, Data: cs.sendBuf})
		}
		return out
	default:
		return cs.treeRound(inbox, out)
	}
}

func (cs *CollectSolve) bfsRound(inbox []congest.Message, out []congest.Message) []congest.Message {
	for _, m := range inbox {
		leader, dist, err := decodeBFS(m.Data)
		if err != nil {
			continue
		}
		if leader < cs.leader || (leader == cs.leader && dist+1 < cs.dist) {
			cs.leader = leader
			cs.dist = dist + 1
			cs.parent = m.From
		}
	}
	cs.sendBuf = appendBFS(cs.sendBuf[:0], cs.leader, cs.dist)
	for _, v := range cs.info.Neighbors {
		out = append(out, congest.Message{From: cs.info.ID, To: v, Data: cs.sendBuf})
	}
	return out
}

// treeRound drives the upcast and downcast phases.
func (cs *CollectSolve) treeRound(inbox []congest.Message, out []congest.Message) []congest.Message {
	for _, m := range inbox {
		cs.consume(m)
	}
	if cs.failed != nil {
		cs.done = true
		return out
	}
	if !cs.ownQueued {
		cs.queueOwnRecords()
	}

	// Upcast: one item per round toward the parent.
	if cs.parent != -1 {
		switch {
		case len(cs.upQueue) > 0:
			out = append(out, congest.Message{From: cs.info.ID, To: cs.parent, Data: cs.upQueue[0]})
			cs.upQueue = cs.upQueue[1:]
		case !cs.sentDone && cs.allChildrenDone():
			out = append(out, congest.Message{From: cs.info.ID, To: cs.parent, Data: collectDoneMsg})
			cs.sentDone = true
		}
	} else if cs.downQueue == nil && cs.allChildrenDone() && len(cs.upQueue) == 0 {
		// Root with a complete picture: solve and start the downcast.
		cs.solveAtRoot()
	}

	// Downcast: broadcast one item per round to every child.
	if len(cs.downQueue) > 0 {
		item := cs.downQueue[0]
		cs.downQueue = cs.downQueue[1:]
		for _, child := range cs.children {
			out = append(out, congest.Message{From: cs.info.ID, To: child, Data: item})
		}
		if len(cs.downQueue) == 0 && cs.endSeen {
			cs.done = true
		}
	} else if cs.endSeen && cs.parent != -1 {
		cs.done = true
	}
	return out
}

// consume dispatches one received message by tag. Payloads that must
// survive past this round (relayed records and downcast items) are copied
// into the program arena.
func (cs *CollectSolve) consume(m congest.Message) {
	if len(m.Data) == 0 {
		return
	}
	switch m.Data[0] {
	case collectParent:
		if decodeParent(m.Data) == cs.info.ID {
			cs.children = append(cs.children, m.From)
		}
	case collectDone:
		cs.childDone[m.From] = true
	case wireNode, wireEdge:
		if cs.parent == -1 {
			cs.storeRecord(m.Data)
		} else {
			cs.upQueue = append(cs.upQueue, cs.arena.retain(m.Data))
		}
	case collectMember:
		id := int(binary.BigEndian.Uint16(m.Data[1:]))
		if id == cs.info.ID {
			cs.member = true
		}
		if len(cs.children) > 0 {
			cs.downQueue = append(cs.downQueue, cs.arena.retain(m.Data))
		}
	case collectEnd:
		cs.endSeen = true
		if len(cs.children) > 0 {
			cs.downQueue = append(cs.downQueue, cs.arena.retain(m.Data))
		}
	}
}

// queueOwnRecords seeds the upcast (or root store) with this node's own
// record and its owned edges (those toward higher IDs).
func (cs *CollectSolve) queueOwnRecords() {
	cs.ownQueued = true
	own := [][]byte{encodeNodeRecord(nodeRecord{
		id:     cs.info.ID,
		weight: cs.info.Weight,
		degree: len(cs.info.Neighbors),
	})}
	for _, v := range cs.info.Neighbors {
		if cs.info.ID < v {
			own = append(own, encodeEdgeRecord(edgeRecord{u: cs.info.ID, v: v}))
		}
	}
	if cs.parent == -1 {
		for _, item := range own {
			cs.storeRecord(item)
		}
		return
	}
	cs.upQueue = append(cs.upQueue, own...)
}

func (cs *CollectSolve) storeRecord(data []byte) {
	nr, er, kind, err := decodeRecord(data)
	if err != nil {
		cs.failed = err
		return
	}
	switch kind {
	case wireNode:
		cs.nodes[nr.id] = nr
	case wireEdge:
		cs.edges[er] = true
	}
}

func (cs *CollectSolve) allChildrenDone() bool {
	for _, c := range cs.children {
		if !cs.childDone[c] {
			return false
		}
	}
	return true
}

// solveAtRoot rebuilds the component's subgraph (label-free, pre-sized),
// solves it exactly, and fills the downcast queue with the membership list.
func (cs *CollectSolve) solveAtRoot() {
	ids := make([]int, 0, len(cs.nodes))
	for id := range cs.nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	local := make(map[int]int, len(ids))
	sub := graphs.NewWithN(len(ids))
	for i, id := range ids {
		local[id] = i
		sub.AddNodeID(cs.nodes[id].weight)
	}
	for e := range cs.edges {
		lu, okU := local[e.u]
		lv, okV := local[e.v]
		if !okU || !okV {
			cs.failed = fmt.Errorf("congestalg: collect at %d: edge {%d,%d} with unknown endpoint",
				cs.info.ID, e.u, e.v)
			return
		}
		if err := sub.AddEdge(lu, lv); err != nil {
			cs.failed = fmt.Errorf("congestalg: collect at %d: %w", cs.info.ID, err)
			return
		}
	}
	sol, err := cs.sess.Exact(sub, mis.Options{})
	if err != nil {
		cs.failed = fmt.Errorf("congestalg: collect at %d: solve: %w", cs.info.ID, err)
		return
	}
	cs.downQueue = make([][]byte, 0, len(sol.Set)+1)
	for _, lu := range sol.Set {
		id := ids[lu]
		if id == cs.info.ID {
			cs.member = true
		}
		item := make([]byte, 3)
		item[0] = collectMember
		binary.BigEndian.PutUint16(item[1:], uint16(id))
		cs.downQueue = append(cs.downQueue, item)
	}
	cs.downQueue = append(cs.downQueue, collectEndMsg)
	cs.endSeen = true
}

// Done implements congest.NodeProgram.
func (cs *CollectSolve) Done() bool { return cs.done }

// Output implements congest.NodeProgram.
func (cs *CollectSolve) Output() any {
	if cs.failed != nil {
		return cs.failed
	}
	return cs.member
}

// appendParent packs a parent announcement into 3 bytes appended to dst.
func appendParent(dst []byte, parent int) []byte {
	p := uint16(parent + 1) // -1 maps to 0
	return append(dst, collectParent, byte(p>>8), byte(p))
}

func decodeParent(data []byte) int {
	return int(binary.BigEndian.Uint16(data[1:])) - 1
}
