package congestalg

import (
	"fmt"
	"math/rand"
	"testing"

	"congestlb/internal/congest"
	"congestlb/internal/graphs"
	"congestlb/internal/mis"
)

func collectWeight(t *testing.T, g *graphs.Graph, cfg congest.Config) (int64, congest.Stats) {
	t.Helper()
	result := runPrograms(t, g, NewCollectSolvePrograms(g.N()), cfg)
	set := MembershipSet(result)
	for _, out := range result.Outputs {
		if err, isErr := out.(error); isErr {
			t.Fatal(err)
		}
	}
	weight, err := mis.Verify(g, set)
	if err != nil {
		t.Fatal(err)
	}
	return weight, result.Stats
}

func TestCollectSolveFindsOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(16)
		g := randomGraph(n, 0.3, 6, rng)
		got, _ := collectWeight(t, g, congest.Config{BandwidthBits: 96})
		want, err := mis.Exhaustive(g)
		if err != nil {
			t.Fatal(err)
		}
		if got != want.Weight {
			t.Fatalf("trial %d (n=%d): collect weight %d, optimum %d", trial, n, got, want.Weight)
		}
	}
}

func TestCollectSolveSingleAndIsolatedNodes(t *testing.T) {
	g := graphs.New(3)
	for i := 0; i < 3; i++ {
		g.MustAddNode(fmt.Sprintf("iso%d", i), int64(i+1))
	}
	got, _ := collectWeight(t, g, congest.Config{BandwidthBits: 96})
	if got != 6 {
		t.Fatalf("isolated nodes weight %d, want 6", got)
	}
}

// TestCollectSolveTwoTriangles exercises a disconnected graph: two
// triangles with no edges between them. Per-component roots must produce
// the union optimum.
func TestCollectSolveTwoTriangles(t *testing.T) {
	g := graphs.New(6)
	for i := 0; i < 6; i++ {
		g.MustAddNode(fmt.Sprintf("n%d", i), int64(1+i%3))
	}
	if err := g.AddClique([]graphs.NodeID{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddClique([]graphs.NodeID{3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	got, _ := collectWeight(t, g, congest.Config{BandwidthBits: 96})
	// Each triangle contributes its heaviest node (weight 3).
	if got != 6 {
		t.Fatalf("two triangles weight %d, want 6", got)
	}
}

func TestCollectSolveCheaperThanGossip(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	g := randomGraph(18, 0.3, 4, rng)

	_, collectStats := collectWeight(t, g, congest.Config{BandwidthBits: 96})

	gossipResult := runPrograms(t, g, NewGossipExactPrograms(18), congest.Config{BandwidthBits: 96})
	gossipSet, err := ExactSetFromOutputs(gossipResult)
	if err != nil {
		t.Fatal(err)
	}
	gossipWeight, err := mis.Verify(g, gossipSet)
	if err != nil {
		t.Fatal(err)
	}
	collectW, _ := collectWeight(t, g, congest.Config{BandwidthBits: 96})
	if collectW != gossipWeight {
		t.Fatalf("collect %d vs gossip %d", collectW, gossipWeight)
	}
	// The tree-based algorithm must move far fewer bits than flooding.
	if collectStats.TotalBits >= gossipResult.Stats.TotalBits {
		t.Fatalf("collect used %d bits, gossip %d — tree should be cheaper",
			collectStats.TotalBits, gossipResult.Stats.TotalBits)
	}
}

func TestCollectSolveOnPathGraph(t *testing.T) {
	// A path stresses deep trees: the convergecast pipeline runs the full
	// depth.
	const n = 24
	g := graphs.New(n)
	for i := 0; i < n; i++ {
		g.MustAddNode(fmt.Sprintf("p%d", i), int64(1+i%4))
	}
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	got, _ := collectWeight(t, g, congest.Config{BandwidthBits: 96})
	want, err := mis.Exhaustive(g)
	if err != nil {
		t.Fatal(err)
	}
	if got != want.Weight {
		t.Fatalf("path: collect %d, optimum %d", got, want.Weight)
	}
}
