package congestalg

import (
	"fmt"
	"math/rand"
	"testing"

	"congestlb/internal/congest"
	"congestlb/internal/graphs"
	"congestlb/internal/mis"
)

// randomGraph builds a connected random weighted graph: a random spanning
// tree plus extra edges with the given probability.
func randomGraph(n int, extraProb float64, maxW int64, rng *rand.Rand) *graphs.Graph {
	g := graphs.New(n)
	for i := 0; i < n; i++ {
		g.MustAddNode(fmt.Sprintf("n%d", i), 1+rng.Int63n(maxW))
	}
	for i := 1; i < n; i++ {
		g.MustAddEdge(i, rng.Intn(i))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < extraProb {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

func runPrograms(t *testing.T, g *graphs.Graph, programs []congest.NodeProgram, cfg congest.Config) congest.Result {
	t.Helper()
	net, err := congest.NewNetwork(g, programs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	result, err := net.Run()
	if err != nil {
		t.Fatal(err)
	}
	return result
}

func TestWireStatusRoundTrip(t *testing.T) {
	for _, state := range []byte{stateUndecided, stateIn, stateOut} {
		for _, value := range []uint32{0, 1, 1 << 20, ^uint32(0)} {
			data := encodeStatus(state, value)
			gotState, gotValue, err := decodeStatus(data)
			if err != nil {
				t.Fatal(err)
			}
			if gotState != state || gotValue != value {
				t.Fatalf("round trip (%d,%d) -> (%d,%d)", state, value, gotState, gotValue)
			}
		}
	}
	if _, _, err := decodeStatus([]byte{9, 9}); err == nil {
		t.Fatal("malformed status accepted")
	}
}

func TestWireRecordRoundTrip(t *testing.T) {
	nr := nodeRecord{id: 513, weight: 70000, degree: 12}
	gotN, gotE, kind, err := decodeRecord(encodeNodeRecord(nr))
	if err != nil || kind != wireNode || gotN != nr {
		t.Fatalf("node record round trip: %v %v %d %v", gotN, gotE, kind, err)
	}
	er := edgeRecord{u: 3, v: 700}
	gotN, gotE, kind, err = decodeRecord(encodeEdgeRecord(er))
	if err != nil || kind != wireEdge || gotE != er {
		t.Fatalf("edge record round trip: %v %v %d %v", gotN, gotE, kind, err)
	}
	if _, _, _, err := decodeRecord(nil); err == nil {
		t.Fatal("empty record accepted")
	}
	if _, _, _, err := decodeRecord([]byte{wireNode, 1}); err == nil {
		t.Fatal("short node record accepted")
	}
	if _, _, _, err := decodeRecord([]byte{wireEdge, 1}); err == nil {
		t.Fatal("short edge record accepted")
	}
	if _, _, _, err := decodeRecord([]byte{99, 0, 0, 0, 0}); err == nil {
		t.Fatal("unknown record type accepted")
	}
}

func TestLubyProducesMaximalIS(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(60)
		g := randomGraph(n, 0.15, 5, rng)
		result := runPrograms(t, g, NewLubyPrograms(n), congest.Config{Seed: int64(trial)})
		set := MembershipSet(result)
		maximal, err := mis.IsMaximal(g, set)
		if err != nil {
			t.Fatalf("trial %d: invalid set: %v", trial, err)
		}
		if !maximal {
			t.Fatalf("trial %d: Luby set not maximal", trial)
		}
	}
}

func TestLubyIsolatedNodes(t *testing.T) {
	g := graphs.New(3)
	for i := 0; i < 3; i++ {
		g.MustAddNode(fmt.Sprintf("iso%d", i), 1)
	}
	result := runPrograms(t, g, NewLubyPrograms(3), congest.Config{})
	set := MembershipSet(result)
	if len(set) != 3 {
		t.Fatalf("isolated nodes: set = %v, want all three", set)
	}
}

func TestLubyDifferentSeedsBothValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(40, 0.2, 3, rng)
	for seed := int64(0); seed < 5; seed++ {
		result := runPrograms(t, g, NewLubyPrograms(40), congest.Config{Seed: seed})
		if maximal, err := mis.IsMaximal(g, MembershipSet(result)); err != nil || !maximal {
			t.Fatalf("seed %d: maximal=%v err=%v", seed, maximal, err)
		}
	}
}

func TestRankGreedyMatchesSequentialGreedyWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(50)
		g := randomGraph(n, 0.2, 9, rng)
		result := runPrograms(t, g, NewRankGreedyPrograms(n), congest.Config{})
		set := MembershipSet(result)
		maximal, err := mis.IsMaximal(g, set)
		if err != nil {
			t.Fatalf("trial %d: invalid: %v", trial, err)
		}
		if !maximal {
			t.Fatalf("trial %d: not maximal", trial)
		}
		// The heaviest node overall always joins (it dominates everyone).
		heaviest := 0
		for u := 1; u < n; u++ {
			if g.Weight(u) > g.Weight(heaviest) ||
				(g.Weight(u) == g.Weight(heaviest) && u > heaviest) {
				heaviest = u
			}
		}
		found := false
		for _, u := range set {
			if u == heaviest {
				found = true
			}
		}
		if !found {
			t.Fatalf("trial %d: heaviest node %d missing from greedy set", trial, heaviest)
		}
	}
}

func TestRankGreedyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(30, 0.3, 7, rng)
	first := MembershipSet(runPrograms(t, g, NewRankGreedyPrograms(30), congest.Config{Seed: 1}))
	second := MembershipSet(runPrograms(t, g, NewRankGreedyPrograms(30), congest.Config{Seed: 99}))
	if len(first) != len(second) {
		t.Fatalf("rank greedy not deterministic: %v vs %v", first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("rank greedy not deterministic: %v vs %v", first, second)
		}
	}
}

func TestGossipExactFindsOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(14)
		g := randomGraph(n, 0.3, 6, rng)
		result := runPrograms(t, g, NewGossipExactPrograms(n), congest.Config{BandwidthBits: 80})
		set, err := ExactSetFromOutputs(result)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		gotWeight, err := mis.Verify(g, set)
		if err != nil {
			t.Fatalf("trial %d: invalid set: %v", trial, err)
		}
		want, err := mis.Exhaustive(g)
		if err != nil {
			t.Fatal(err)
		}
		if gotWeight != want.Weight {
			t.Fatalf("trial %d: gossip weight %d, optimum %d", trial, gotWeight, want.Weight)
		}
	}
}

func TestGossipExactRoundsScaleWithEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := randomGraph(20, 0.4, 4, rng)
	result := runPrograms(t, g, NewGossipExactPrograms(20), congest.Config{BandwidthBits: 80})
	// Gossip needs at least max over nodes of records-to-transfer rounds;
	// n + m is the coarse upper bound used by the paper's O(n²) framing.
	if result.Stats.Rounds > 20+g.M()+g.Diameter()+4 {
		t.Fatalf("gossip took %d rounds for n=20 m=%d", result.Stats.Rounds, g.M())
	}
}

func TestGossipExactAgreementAcrossNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	g := randomGraph(12, 0.3, 5, rng)
	result := runPrograms(t, g, NewGossipExactPrograms(12), congest.Config{BandwidthBits: 80})
	if _, err := ExactSetFromOutputs(result); err != nil {
		t.Fatal(err)
	}
}

func TestMembershipSetIgnoresNonBool(t *testing.T) {
	result := congest.Result{Outputs: []any{true, nil, false, true}}
	set := MembershipSet(result)
	if len(set) != 2 || set[0] != 0 || set[1] != 3 {
		t.Fatalf("MembershipSet = %v", set)
	}
}

func BenchmarkLuby128(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(128, 0.05, 4, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := congest.NewNetwork(g, NewLubyPrograms(128), congest.Config{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := net.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGossipExact16(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	g := randomGraph(16, 0.3, 4, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := congest.NewNetwork(g, NewGossipExactPrograms(16), congest.Config{BandwidthBits: 80})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := net.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
