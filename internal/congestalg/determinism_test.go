package congestalg

import (
	"reflect"
	"testing"

	"congestlb/internal/congest"
)

// TestParallelEnginesBitIdentical protects the worker-pool engine: on a
// ~64-node random graph, Luby, RankGreedy, and GossipExact must produce
// bit-identical Results (outputs and stats) under Parallel true and false.
func TestParallelEnginesBitIdentical(t *testing.T) {
	const n = 64
	g := allocTestGraph(t, n, 4242)

	cases := []struct {
		name string
		make func() []congest.NodeProgram
		bw   int64
	}{
		{name: "luby", make: func() []congest.NodeProgram { return NewLubyPrograms(n) }},
		{name: "rank-greedy", make: func() []congest.NodeProgram { return NewRankGreedyPrograms(n) }},
		{name: "gossip-exact", make: func() []congest.NodeProgram { return NewGossipExactPrograms(n) }, bw: 96},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(parallel bool) congest.Result {
				net, err := congest.NewNetwork(g, tc.make(), congest.Config{
					Seed:          1234,
					Parallel:      parallel,
					BandwidthBits: tc.bw,
				})
				if err != nil {
					t.Fatal(err)
				}
				result, err := net.Run()
				if err != nil {
					t.Fatal(err)
				}
				return result
			}
			seq := run(false)
			par := run(true)
			if seq.Stats != par.Stats {
				t.Fatalf("stats differ:\n  sequential %+v\n  parallel   %+v", seq.Stats, par.Stats)
			}
			if !reflect.DeepEqual(seq.Outputs, par.Outputs) {
				t.Fatalf("outputs differ between engines")
			}
		})
	}
}
