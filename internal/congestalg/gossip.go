package congestalg

import (
	"fmt"
	"sort"

	"congestlb/internal/congest"
	"congestlb/internal/graphs"
	"congestlb/internal/mis"
)

// GossipExact learns the entire graph at every node by pipelined gossip and
// then solves maximum-weight independent set locally with the exact solver.
// It realises the universal upper bound the paper cites ("any problem can
// be solved in O(n²) rounds in the CONGEST model"): each edge carries one
// record per round, there are n node records and m edge records, so the
// algorithm finishes in O(n + m + D) = O(n²) rounds.
//
// Termination detection is information-theoretic rather than coordinated:
// node records carry degrees, so once a node holds all n node records it
// knows m = Σdeg/2 and can tell when its edge-record collection is
// complete.
//
// Output: []graphs.NodeID — the (identical) optimum independent set
// computed at every node, or an error value if the local solve failed.
type GossipExact struct {
	info congest.NodeInfo

	nodes map[int]nodeRecord
	edges map[edgeRecord]bool

	// sendQueue[v] holds encoded records not yet forwarded to neighbour v.
	sendQueue map[graphs.NodeID][][]byte

	solved bool
	result []graphs.NodeID
	errVal error
}

var _ congest.NodeProgram = (*GossipExact)(nil)

// NewGossipExactPrograms returns one GossipExact program per node.
func NewGossipExactPrograms(n int) []congest.NodeProgram {
	programs := make([]congest.NodeProgram, n)
	for i := range programs {
		programs[i] = &GossipExact{}
	}
	return programs
}

// Init implements congest.NodeProgram.
func (g *GossipExact) Init(info congest.NodeInfo) {
	g.info = info
	g.nodes = make(map[int]nodeRecord, info.N)
	g.edges = make(map[edgeRecord]bool)
	g.sendQueue = make(map[graphs.NodeID][][]byte, len(info.Neighbors))

	self := nodeRecord{id: info.ID, weight: info.Weight, degree: len(info.Neighbors)}
	g.nodes[info.ID] = self
	g.enqueueForAll(encodeNodeRecord(self), -1)
	for _, v := range info.Neighbors {
		if info.ID < v {
			e := edgeRecord{u: info.ID, v: v}
			g.edges[e] = true
			g.enqueueForAll(encodeEdgeRecord(e), -1)
		}
	}
}

// enqueueForAll queues payload for every neighbour except the source it
// came from (-1 for own records).
func (g *GossipExact) enqueueForAll(payload []byte, except graphs.NodeID) {
	for _, v := range g.info.Neighbors {
		if v == except {
			continue
		}
		g.sendQueue[v] = append(g.sendQueue[v], payload)
	}
}

// Round implements congest.NodeProgram.
func (g *GossipExact) Round(round int, inbox []congest.Message) []congest.Message {
	for _, m := range inbox {
		nr, er, err := decodeRecord(m.Data)
		if err != nil {
			g.fail(fmt.Errorf("gossip at node %d: %w", g.info.ID, err))
			return nil
		}
		switch {
		case nr != nil:
			if _, known := g.nodes[nr.id]; !known {
				g.nodes[nr.id] = *nr
				g.enqueueForAll(m.Data, m.From)
			}
		case er != nil:
			if !g.edges[*er] {
				g.edges[*er] = true
				g.enqueueForAll(m.Data, m.From)
			}
		}
	}

	out := make([]congest.Message, 0, len(g.info.Neighbors))
	for _, v := range g.info.Neighbors {
		queue := g.sendQueue[v]
		if len(queue) == 0 {
			continue
		}
		out = append(out, congest.Message{From: g.info.ID, To: v, Data: queue[0]})
		g.sendQueue[v] = queue[1:]
	}

	if !g.solved && g.complete() {
		g.solve()
	}
	return out
}

// complete reports whether the full graph is known locally.
func (g *GossipExact) complete() bool {
	if len(g.nodes) != g.info.N {
		return false
	}
	degSum := 0
	for _, r := range g.nodes {
		degSum += r.degree
	}
	return len(g.edges) == degSum/2
}

// solve reconstructs the graph and runs the exact MaxIS solver. Every node
// performs the identical deterministic computation, so all outputs agree.
func (g *GossipExact) solve() {
	g.solved = true
	rebuilt := graphs.New(g.info.N)
	for id := 0; id < g.info.N; id++ {
		r, ok := g.nodes[id]
		if !ok {
			g.fail(fmt.Errorf("gossip at node %d: node record %d missing", g.info.ID, id))
			return
		}
		rebuilt.MustAddNode(fmt.Sprintf("n%d", id), r.weight)
	}
	for e := range g.edges {
		if err := rebuilt.AddEdge(e.u, e.v); err != nil {
			g.fail(fmt.Errorf("gossip at node %d: rebuild edge: %w", g.info.ID, err))
			return
		}
	}
	sol, err := mis.Exact(rebuilt, mis.Options{})
	if err != nil {
		g.fail(fmt.Errorf("gossip at node %d: local solve: %w", g.info.ID, err))
		return
	}
	set := append([]graphs.NodeID(nil), sol.Set...)
	sort.Ints(set)
	g.result = set
}

func (g *GossipExact) fail(err error) {
	g.solved = true
	g.errVal = err
}

// Done implements congest.NodeProgram: finished once solved and with all
// queues drained.
func (g *GossipExact) Done() bool {
	if !g.solved {
		return false
	}
	for _, q := range g.sendQueue {
		if len(q) > 0 {
			return false
		}
	}
	return true
}

// Output implements congest.NodeProgram.
func (g *GossipExact) Output() any {
	if g.errVal != nil {
		return g.errVal
	}
	return g.result
}

// ExactSetFromOutputs extracts the common solution from a GossipExact run,
// verifying that every node agrees.
func ExactSetFromOutputs(result congest.Result) ([]graphs.NodeID, error) {
	var ref []graphs.NodeID
	for u, out := range result.Outputs {
		switch val := out.(type) {
		case error:
			return nil, fmt.Errorf("congestalg: node %d failed: %w", u, val)
		case []graphs.NodeID:
			if ref == nil {
				ref = val
				continue
			}
			if len(val) != len(ref) {
				return nil, fmt.Errorf("congestalg: node %d disagrees on solution size", u)
			}
			for i := range val {
				if val[i] != ref[i] {
					return nil, fmt.Errorf("congestalg: node %d disagrees on solution", u)
				}
			}
		default:
			return nil, fmt.Errorf("congestalg: node %d produced unexpected output %T", u, out)
		}
	}
	if ref == nil {
		return nil, fmt.Errorf("congestalg: no outputs")
	}
	return ref, nil
}
