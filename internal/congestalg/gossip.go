package congestalg

import (
	"fmt"
	"sort"

	"congestlb/internal/congest"
	"congestlb/internal/graphs"
	"congestlb/internal/mis"
	"congestlb/internal/mis/cache"
)

// GossipExact learns the entire graph at every node by pipelined gossip and
// then solves maximum-weight independent set locally with the exact solver.
// It realises the universal upper bound the paper cites ("any problem can
// be solved in O(n²) rounds in the CONGEST model"): each edge carries one
// record per round, there are n node records and m edge records, so the
// algorithm finishes in O(n + m + D) = O(n²) rounds.
//
// Termination detection is information-theoretic rather than coordinated:
// node records carry degrees, so once a node holds all n node records it
// knows m = Σdeg/2 and can tell when its edge-record collection is
// complete.
//
// Rather than buffering records and rebuilding the graph when gossip
// completes, the program reconstructs the network graph incrementally as
// records arrive, in a pre-sized label-free graphs.Graph (NewWithN +
// AddNodeID): arrival-time deduplication doubles as the rebuild, and the
// local solve runs directly on the reconstructed graph with no label
// formatting at all.
//
// Output: []graphs.NodeID — the (identical) optimum independent set
// computed at every node, or an error value if the local solve failed.
type GossipExact struct {
	info congest.NodeInfo

	// rebuilt is the incrementally reconstructed network graph; known
	// marks node IDs whose records arrived, degSum their degree total.
	rebuilt    *graphs.Graph
	known      []bool
	knownCount int
	degSum     int

	// buf retains record payloads beyond the engine's per-round delivery
	// window (append-only; records are addressed by offset, so growth
	// never invalidates a queued reference). queues[i] holds packed
	// (offset<<8 | length) references to records not yet forwarded to
	// neighbour i, qhead[i] the next to send — pointer-free queues that
	// cost 8 bytes per pending record and nothing to the garbage
	// collector.
	buf    []byte
	queues [][]uint64
	qhead  []int

	solved bool
	result []graphs.NodeID
	errVal error

	// sess routes the local solve (nil = shared solve cache).
	sess *cache.Session
}

var _ congest.BufferedProgram = (*GossipExact)(nil)

// NewGossipExactPrograms returns one GossipExact program per node.
func NewGossipExactPrograms(n int) []congest.NodeProgram {
	return NewGossipExactProgramsWith(nil, n)
}

// NewGossipExactProgramsWith is NewGossipExactPrograms with every node's
// local solve routed through the given solve session (nil = the shared
// cache), so callers get exact attribution of the solver work their run
// triggers.
func NewGossipExactProgramsWith(sess *cache.Session, n int) []congest.NodeProgram {
	programs := make([]congest.NodeProgram, n)
	for i := range programs {
		programs[i] = &GossipExact{sess: sess}
	}
	return programs
}

// Init implements congest.NodeProgram.
func (g *GossipExact) Init(info congest.NodeInfo) {
	g.info = info
	g.rebuilt = graphs.NewWithN(info.N)
	for i := 0; i < info.N; i++ {
		g.rebuilt.AddNodeID(0)
	}
	g.known = make([]bool, info.N)
	g.knownCount = 0
	g.degSum = 0
	g.buf = nil
	g.queues = make([][]uint64, len(info.Neighbors))
	g.qhead = make([]int, len(info.Neighbors))
	g.solved = false
	g.result = nil
	g.errVal = nil

	self := nodeRecord{id: info.ID, weight: info.Weight, degree: len(info.Neighbors)}
	g.storeNode(self)
	g.enqueueForAll(g.retain(encodeNodeRecord(self)), -1)
	for _, v := range info.Neighbors {
		if info.ID < v {
			e := edgeRecord{u: info.ID, v: v}
			g.rebuilt.MustAddEdge(e.u, e.v)
			g.enqueueForAll(g.retain(encodeEdgeRecord(e)), -1)
		}
	}
}

// retain appends data to the program's record store and returns the packed
// (offset<<8 | length) reference that addresses it.
func (g *GossipExact) retain(data []byte) uint64 {
	off := len(g.buf)
	g.buf = append(g.buf, data...)
	return uint64(off)<<8 | uint64(len(data))
}

// payload resolves a packed reference back to its bytes.
func (g *GossipExact) payload(ref uint64) []byte {
	off, length := ref>>8, ref&0xFF
	return g.buf[off : off+length : off+length]
}

// storeNode records a newly learned node: its weight lands in the rebuilt
// graph, its degree in the termination accounting.
func (g *GossipExact) storeNode(r nodeRecord) {
	g.known[r.id] = true
	g.knownCount++
	g.degSum += r.degree
	g.rebuilt.SetWeight(r.id, r.weight)
}

// enqueueForAll queues a retained record reference for every neighbour
// except the one at index except (-1 for own records).
func (g *GossipExact) enqueueForAll(ref uint64, except int) {
	for i := range g.queues {
		if i == except {
			continue
		}
		g.queues[i] = append(g.queues[i], ref)
	}
}

// Round implements congest.NodeProgram.
func (g *GossipExact) Round(round int, inbox []congest.Message) []congest.Message {
	return g.AppendRound(round, inbox, nil)
}

// AppendRound implements congest.BufferedProgram.
func (g *GossipExact) AppendRound(round int, inbox []congest.Message, out []congest.Message) []congest.Message {
	for _, m := range inbox {
		nr, er, kind, err := decodeRecord(m.Data)
		if err != nil {
			g.fail(fmt.Errorf("gossip at node %d: %w", g.info.ID, err))
			return out
		}
		from := neighborIndex(g.info.Neighbors, m.From)
		switch kind {
		case wireNode:
			if nr.id < 0 || nr.id >= g.info.N {
				g.fail(fmt.Errorf("gossip at node %d: node record %d out of range", g.info.ID, nr.id))
				return out
			}
			if !g.known[nr.id] {
				g.storeNode(nr)
				g.enqueueForAll(g.retain(m.Data), from)
			}
		case wireEdge:
			if !g.rebuilt.HasEdge(er.u, er.v) {
				if err := g.rebuilt.AddEdge(er.u, er.v); err != nil {
					g.fail(fmt.Errorf("gossip at node %d: rebuild edge: %w", g.info.ID, err))
					return out
				}
				g.enqueueForAll(g.retain(m.Data), from)
			}
		}
	}

	for i, v := range g.info.Neighbors {
		if g.qhead[i] < len(g.queues[i]) {
			out = append(out, congest.Message{From: g.info.ID, To: v, Data: g.payload(g.queues[i][g.qhead[i]])})
			g.qhead[i]++
		}
	}

	if !g.solved && g.complete() {
		g.solve()
	}
	return out
}

// complete reports whether the full graph is known locally.
func (g *GossipExact) complete() bool {
	return g.knownCount == g.info.N && g.rebuilt.M() == g.degSum/2
}

// solve runs the exact MaxIS solver on the reconstructed graph. Every node
// performs the identical deterministic computation, so all outputs agree —
// which is exactly why the solve goes through the content-addressed cache:
// all n nodes reconstruct the same graph, so one node pays for the
// branch-and-bound and the other n-1 hit the cached solution.
func (g *GossipExact) solve() {
	g.solved = true
	sol, err := g.sess.Exact(g.rebuilt, mis.Options{})
	if err != nil {
		g.fail(fmt.Errorf("gossip at node %d: local solve: %w", g.info.ID, err))
		return
	}
	set := append([]graphs.NodeID(nil), sol.Set...)
	sort.Ints(set)
	g.result = set
}

func (g *GossipExact) fail(err error) {
	g.solved = true
	g.errVal = err
}

// Done implements congest.NodeProgram: finished once solved and with all
// queues drained.
func (g *GossipExact) Done() bool {
	if !g.solved {
		return false
	}
	for i := range g.queues {
		if g.qhead[i] < len(g.queues[i]) {
			return false
		}
	}
	return true
}

// Output implements congest.NodeProgram.
func (g *GossipExact) Output() any {
	if g.errVal != nil {
		return g.errVal
	}
	return g.result
}

// ExactSetFromOutputs extracts the common solution from a GossipExact run,
// verifying that every node agrees.
func ExactSetFromOutputs(result congest.Result) ([]graphs.NodeID, error) {
	var ref []graphs.NodeID
	for u, out := range result.Outputs {
		switch val := out.(type) {
		case error:
			return nil, fmt.Errorf("congestalg: node %d failed: %w", u, val)
		case []graphs.NodeID:
			if ref == nil {
				ref = val
				continue
			}
			if len(val) != len(ref) {
				return nil, fmt.Errorf("congestalg: node %d disagrees on solution size", u)
			}
			for i := range val {
				if val[i] != ref[i] {
					return nil, fmt.Errorf("congestalg: node %d disagrees on solution", u)
				}
			}
		default:
			return nil, fmt.Errorf("congestalg: node %d produced unexpected output %T", u, out)
		}
	}
	if ref == nil {
		return nil, fmt.Errorf("congestalg: no outputs")
	}
	return ref, nil
}
