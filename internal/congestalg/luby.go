package congestalg

import (
	"congestlb/internal/congest"
	"congestlb/internal/graphs"
)

// Luby is the randomised maximal-independent-set program. Phases take two
// rounds: in draw rounds every undecided node broadcasts a fresh random
// value; in decide rounds a node whose (value, ID) is a strict local
// maximum among undecided neighbours joins the set, and nodes adjacent to a
// joiner drop out at the start of the next draw round.
//
// Ties are impossible because the comparison key includes the node ID, so
// every undecided neighbourhood makes progress and the program terminates
// in at most n phases (O(log n) in expectation).
//
// Output: bool — membership in the constructed maximal independent set.
type Luby struct {
	info  congest.NodeInfo
	state byte
	value uint32
	// neighborState/neighborValue mirror the latest broadcast of each
	// neighbour.
	neighborState map[graphs.NodeID]byte
	neighborValue map[graphs.NodeID]uint32
}

var _ congest.NodeProgram = (*Luby)(nil)

// NewLubyPrograms returns one Luby program per node of an n-node network.
func NewLubyPrograms(n int) []congest.NodeProgram {
	programs := make([]congest.NodeProgram, n)
	for i := range programs {
		programs[i] = &Luby{}
	}
	return programs
}

// Init implements congest.NodeProgram.
func (l *Luby) Init(info congest.NodeInfo) {
	l.info = info
	l.state = stateUndecided
	l.neighborState = make(map[graphs.NodeID]byte, len(info.Neighbors))
	l.neighborValue = make(map[graphs.NodeID]uint32, len(info.Neighbors))
	for _, v := range info.Neighbors {
		l.neighborState[v] = stateUndecided
	}
	// Isolated nodes join immediately.
	if len(info.Neighbors) == 0 {
		l.state = stateIn
	}
}

// Round implements congest.NodeProgram.
func (l *Luby) Round(round int, inbox []congest.Message) []congest.Message {
	for _, m := range inbox {
		state, value, err := decodeStatus(m.Data)
		if err != nil {
			// A malformed message indicates a simulator bug; halting the
			// node surfaces it as missing progress in tests.
			l.state = stateOut
			continue
		}
		l.neighborState[m.From] = state
		l.neighborValue[m.From] = value
	}

	if round%2 == 1 { // draw round
		// React to joins announced in the previous decide round.
		if l.state == stateUndecided {
			for _, st := range l.neighborState {
				if st == stateIn {
					l.state = stateOut
					break
				}
			}
		}
		if l.state == stateUndecided {
			l.value = uint32(l.info.Rand.Int31())
		}
	} else { // decide round
		if l.state == stateUndecided && l.localMax() {
			l.state = stateIn
		}
	}
	return l.broadcastStatus()
}

// localMax reports whether (value, ID) strictly dominates every undecided
// neighbour's latest draw.
func (l *Luby) localMax() bool {
	for v, st := range l.neighborState {
		if st != stateUndecided {
			continue
		}
		nv := l.neighborValue[v]
		if nv > l.value || (nv == l.value && v > l.info.ID) {
			return false
		}
	}
	return true
}

func (l *Luby) broadcastStatus() []congest.Message {
	out := make([]congest.Message, 0, len(l.info.Neighbors))
	payload := encodeStatus(l.state, l.value)
	for _, v := range l.info.Neighbors {
		out = append(out, congest.Message{From: l.info.ID, To: v, Data: payload})
	}
	return out
}

// Done implements congest.NodeProgram: a node halts once it is decided and
// knows all neighbours are decided too.
func (l *Luby) Done() bool {
	if l.state == stateUndecided {
		return false
	}
	for _, st := range l.neighborState {
		if st == stateUndecided {
			return false
		}
	}
	return true
}

// Output implements congest.NodeProgram.
func (l *Luby) Output() any { return l.state == stateIn }

// RankGreedy is the deterministic weighted MIS program: the rank of a node
// is the static pair (weight, ID), and an undecided node joins when it
// dominates all undecided neighbours. It emulates the sequential greedy
// algorithm that scans nodes in decreasing weight order.
//
// Output: bool — membership in the constructed maximal independent set.
type RankGreedy struct {
	info  congest.NodeInfo
	state byte
	// rank is weight truncated to 32 bits; the simulator's constructions
	// use weights ≤ ℓ which fit comfortably.
	rank          uint32
	neighborState map[graphs.NodeID]byte
	neighborRank  map[graphs.NodeID]uint32
	heardFrom     map[graphs.NodeID]bool
}

var _ congest.NodeProgram = (*RankGreedy)(nil)

// NewRankGreedyPrograms returns one RankGreedy program per node.
func NewRankGreedyPrograms(n int) []congest.NodeProgram {
	programs := make([]congest.NodeProgram, n)
	for i := range programs {
		programs[i] = &RankGreedy{}
	}
	return programs
}

// Init implements congest.NodeProgram.
func (r *RankGreedy) Init(info congest.NodeInfo) {
	r.info = info
	r.state = stateUndecided
	r.rank = uint32(info.Weight)
	r.neighborState = make(map[graphs.NodeID]byte, len(info.Neighbors))
	r.neighborRank = make(map[graphs.NodeID]uint32, len(info.Neighbors))
	r.heardFrom = make(map[graphs.NodeID]bool, len(info.Neighbors))
	for _, v := range info.Neighbors {
		r.neighborState[v] = stateUndecided
	}
	if len(info.Neighbors) == 0 {
		r.state = stateIn
	}
}

// Round implements congest.NodeProgram.
func (r *RankGreedy) Round(round int, inbox []congest.Message) []congest.Message {
	for _, m := range inbox {
		state, rank, err := decodeStatus(m.Data)
		if err != nil {
			r.state = stateOut
			continue
		}
		r.neighborState[m.From] = state
		r.neighborRank[m.From] = rank
		r.heardFrom[m.From] = true
	}

	// Round 1 only announces ranks; decisions start once every neighbour's
	// rank is known (round ≥ 2).
	if round >= 2 && r.state == stateUndecided {
		for _, st := range r.neighborState {
			if st == stateIn {
				r.state = stateOut
				break
			}
		}
	}
	if round >= 2 && r.state == stateUndecided && len(r.heardFrom) == len(r.info.Neighbors) && r.localMax() {
		r.state = stateIn
	}

	out := make([]congest.Message, 0, len(r.info.Neighbors))
	payload := encodeStatus(r.state, r.rank)
	for _, v := range r.info.Neighbors {
		out = append(out, congest.Message{From: r.info.ID, To: v, Data: payload})
	}
	return out
}

func (r *RankGreedy) localMax() bool {
	for v, st := range r.neighborState {
		if st != stateUndecided {
			continue
		}
		nr := r.neighborRank[v]
		if nr > r.rank || (nr == r.rank && v > r.info.ID) {
			return false
		}
	}
	return true
}

// Done implements congest.NodeProgram.
func (r *RankGreedy) Done() bool {
	if r.state == stateUndecided {
		return false
	}
	for _, st := range r.neighborState {
		if st == stateUndecided {
			return false
		}
	}
	return true
}

// Output implements congest.NodeProgram.
func (r *RankGreedy) Output() any { return r.state == stateIn }

// MembershipSet extracts the independent set from a run of Luby or
// RankGreedy programs: the IDs of all nodes whose output is true.
func MembershipSet(result congest.Result) []graphs.NodeID {
	var set []graphs.NodeID
	for u, out := range result.Outputs {
		if member, ok := out.(bool); ok && member {
			set = append(set, u)
		}
	}
	return set
}
