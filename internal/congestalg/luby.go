package congestalg

import (
	"sort"

	"congestlb/internal/congest"
	"congestlb/internal/graphs"
)

// neighborIndex returns the position of v in the sorted neighbour list, or
// -1 when v is not a neighbour. Programs use it to keep per-neighbour state
// in flat slices instead of maps.
func neighborIndex(neighbors []graphs.NodeID, v graphs.NodeID) int {
	i := sort.SearchInts(neighbors, v)
	if i < len(neighbors) && neighbors[i] == v {
		return i
	}
	return -1
}

// Luby is the randomised maximal-independent-set program. Phases take two
// rounds: in draw rounds every undecided node broadcasts a fresh random
// value; in decide rounds a node whose (value, ID) is a strict local
// maximum among undecided neighbours joins the set, and nodes adjacent to a
// joiner drop out at the start of the next draw round.
//
// Ties are impossible because the comparison key includes the node ID, so
// every undecided neighbourhood makes progress and the program terminates
// in at most n phases (O(log n) in expectation).
//
// Output: bool — membership in the constructed maximal independent set.
type Luby struct {
	info  congest.NodeInfo
	state byte
	value uint32
	// neighborState/neighborValue mirror the latest broadcast of each
	// neighbour, indexed by position in info.Neighbors.
	neighborState []byte
	neighborValue []uint32
	// sendBuf is the scratch buffer the broadcast payload is encoded
	// into; the engine copies payloads at delivery, so reusing it across
	// rounds is safe and allocation-free.
	sendBuf []byte
}

var _ congest.BufferedProgram = (*Luby)(nil)

// NewLubyPrograms returns one Luby program per node of an n-node network.
func NewLubyPrograms(n int) []congest.NodeProgram {
	programs := make([]congest.NodeProgram, n)
	for i := range programs {
		programs[i] = &Luby{}
	}
	return programs
}

// Init implements congest.NodeProgram.
func (l *Luby) Init(info congest.NodeInfo) {
	l.info = info
	l.state = stateUndecided
	l.neighborState = make([]byte, len(info.Neighbors))
	l.neighborValue = make([]uint32, len(info.Neighbors))
	l.sendBuf = make([]byte, 0, statusLen)
	for i := range l.neighborState {
		l.neighborState[i] = stateUndecided
	}
	// Isolated nodes join immediately.
	if len(info.Neighbors) == 0 {
		l.state = stateIn
	}
}

// Round implements congest.NodeProgram.
func (l *Luby) Round(round int, inbox []congest.Message) []congest.Message {
	return l.AppendRound(round, inbox, nil)
}

// AppendRound implements congest.BufferedProgram.
func (l *Luby) AppendRound(round int, inbox []congest.Message, out []congest.Message) []congest.Message {
	for _, m := range inbox {
		state, value, err := decodeStatus(m.Data)
		if err != nil {
			// A malformed message indicates a simulator bug; halting the
			// node surfaces it as missing progress in tests.
			l.state = stateOut
			continue
		}
		if i := neighborIndex(l.info.Neighbors, m.From); i >= 0 {
			l.neighborState[i] = state
			l.neighborValue[i] = value
		}
	}

	if round%2 == 1 { // draw round
		// React to joins announced in the previous decide round.
		if l.state == stateUndecided {
			for _, st := range l.neighborState {
				if st == stateIn {
					l.state = stateOut
					break
				}
			}
		}
		if l.state == stateUndecided {
			l.value = uint32(l.info.Rand.Int31())
		}
	} else { // decide round
		if l.state == stateUndecided && l.localMax() {
			l.state = stateIn
		}
	}
	return l.appendBroadcast(out)
}

// localMax reports whether (value, ID) strictly dominates every undecided
// neighbour's latest draw.
func (l *Luby) localMax() bool {
	for i, st := range l.neighborState {
		if st != stateUndecided {
			continue
		}
		nv := l.neighborValue[i]
		if nv > l.value || (nv == l.value && l.info.Neighbors[i] > l.info.ID) {
			return false
		}
	}
	return true
}

func (l *Luby) appendBroadcast(out []congest.Message) []congest.Message {
	l.sendBuf = appendStatus(l.sendBuf[:0], l.state, l.value)
	for _, v := range l.info.Neighbors {
		out = append(out, congest.Message{From: l.info.ID, To: v, Data: l.sendBuf})
	}
	return out
}

// Done implements congest.NodeProgram: a node halts once it is decided and
// knows all neighbours are decided too.
func (l *Luby) Done() bool {
	if l.state == stateUndecided {
		return false
	}
	for _, st := range l.neighborState {
		if st == stateUndecided {
			return false
		}
	}
	return true
}

// Output implements congest.NodeProgram.
func (l *Luby) Output() any { return l.state == stateIn }

// RankGreedy is the deterministic weighted MIS program: the rank of a node
// is the static pair (weight, ID), and an undecided node joins when it
// dominates all undecided neighbours. It emulates the sequential greedy
// algorithm that scans nodes in decreasing weight order.
//
// Output: bool — membership in the constructed maximal independent set.
type RankGreedy struct {
	info  congest.NodeInfo
	state byte
	// rank is weight truncated to 32 bits; the simulator's constructions
	// use weights ≤ ℓ which fit comfortably.
	rank          uint32
	neighborState []byte
	neighborRank  []uint32
	heard         []bool
	heardCount    int
	sendBuf       []byte
}

var _ congest.BufferedProgram = (*RankGreedy)(nil)

// NewRankGreedyPrograms returns one RankGreedy program per node.
func NewRankGreedyPrograms(n int) []congest.NodeProgram {
	programs := make([]congest.NodeProgram, n)
	for i := range programs {
		programs[i] = &RankGreedy{}
	}
	return programs
}

// Init implements congest.NodeProgram.
func (r *RankGreedy) Init(info congest.NodeInfo) {
	r.info = info
	r.state = stateUndecided
	r.rank = uint32(info.Weight)
	r.neighborState = make([]byte, len(info.Neighbors))
	r.neighborRank = make([]uint32, len(info.Neighbors))
	r.heard = make([]bool, len(info.Neighbors))
	r.heardCount = 0
	r.sendBuf = make([]byte, 0, statusLen)
	for i := range r.neighborState {
		r.neighborState[i] = stateUndecided
	}
	if len(info.Neighbors) == 0 {
		r.state = stateIn
	}
}

// Round implements congest.NodeProgram.
func (r *RankGreedy) Round(round int, inbox []congest.Message) []congest.Message {
	return r.AppendRound(round, inbox, nil)
}

// AppendRound implements congest.BufferedProgram.
func (r *RankGreedy) AppendRound(round int, inbox []congest.Message, out []congest.Message) []congest.Message {
	for _, m := range inbox {
		state, rank, err := decodeStatus(m.Data)
		if err != nil {
			r.state = stateOut
			continue
		}
		if i := neighborIndex(r.info.Neighbors, m.From); i >= 0 {
			r.neighborState[i] = state
			r.neighborRank[i] = rank
			if !r.heard[i] {
				r.heard[i] = true
				r.heardCount++
			}
		}
	}

	// Round 1 only announces ranks; decisions start once every neighbour's
	// rank is known (round ≥ 2).
	if round >= 2 && r.state == stateUndecided {
		for _, st := range r.neighborState {
			if st == stateIn {
				r.state = stateOut
				break
			}
		}
	}
	if round >= 2 && r.state == stateUndecided && r.heardCount == len(r.info.Neighbors) && r.localMax() {
		r.state = stateIn
	}

	r.sendBuf = appendStatus(r.sendBuf[:0], r.state, r.rank)
	for _, v := range r.info.Neighbors {
		out = append(out, congest.Message{From: r.info.ID, To: v, Data: r.sendBuf})
	}
	return out
}

func (r *RankGreedy) localMax() bool {
	for i, st := range r.neighborState {
		if st != stateUndecided {
			continue
		}
		nr := r.neighborRank[i]
		if nr > r.rank || (nr == r.rank && r.info.Neighbors[i] > r.info.ID) {
			return false
		}
	}
	return true
}

// Done implements congest.NodeProgram.
func (r *RankGreedy) Done() bool {
	if r.state == stateUndecided {
		return false
	}
	for _, st := range r.neighborState {
		if st == stateUndecided {
			return false
		}
	}
	return true
}

// Output implements congest.NodeProgram.
func (r *RankGreedy) Output() any { return r.state == stateIn }

// MembershipSet extracts the independent set from a run of Luby or
// RankGreedy programs: the IDs of all nodes whose output is true.
func MembershipSet(result congest.Result) []graphs.NodeID {
	var set []graphs.NodeID
	for u, out := range result.Outputs {
		if member, ok := out.(bool); ok && member {
			set = append(set, u)
		}
	}
	return set
}
