package congestalg

import (
	"math/rand"
	"reflect"
	"testing"

	"congestlb/internal/congest"
)

// The goroutine-per-node engine must be bit-identical to the sequential
// one for every algorithm in the package (determinism relies on per-node
// seeded randomness and ordered delivery, not on scheduling).

func TestParallelEngineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	g := randomGraph(24, 0.2, 4, rng)

	algorithms := []struct {
		name string
		make func() []congest.NodeProgram
		bw   int64
	}{
		{name: "luby", make: func() []congest.NodeProgram { return NewLubyPrograms(24) }},
		{name: "rank-greedy", make: func() []congest.NodeProgram { return NewRankGreedyPrograms(24) }},
		{name: "leader-bfs", make: func() []congest.NodeProgram { return NewLeaderBFSPrograms(24) }},
		{name: "gossip-exact", make: func() []congest.NodeProgram { return NewGossipExactPrograms(24) }, bw: 96},
		{name: "collect-solve", make: func() []congest.NodeProgram { return NewCollectSolvePrograms(24) }, bw: 96},
	}
	for _, a := range algorithms {
		a := a
		t.Run(a.name, func(t *testing.T) {
			run := func(parallel bool) congest.Result {
				net, err := congest.NewNetwork(g, a.make(), congest.Config{
					Parallel:      parallel,
					Seed:          5,
					BandwidthBits: a.bw,
				})
				if err != nil {
					t.Fatal(err)
				}
				result, err := net.Run()
				if err != nil {
					t.Fatal(err)
				}
				return result
			}
			seq := run(false)
			par := run(true)
			if seq.Stats != par.Stats {
				t.Fatalf("stats diverge: seq=%+v par=%+v", seq.Stats, par.Stats)
			}
			if !reflect.DeepEqual(seq.Outputs, par.Outputs) {
				t.Fatalf("outputs diverge between engines")
			}
		})
	}
}
