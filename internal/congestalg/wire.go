// Package congestalg implements CONGEST algorithms for (approximate)
// maximum independent set, written against the internal/congest simulator:
//
//   - Luby: the classical randomised maximal-independent-set algorithm
//     (local maximum of fresh random draws), O(log n) phases w.h.p.
//   - RankGreedy: the deterministic weighted variant — a node joins when
//     its (weight, ID) rank is a local maximum among undecided neighbours;
//     it computes the sequential greedy-by-weight MIS distributively.
//   - GossipExact: every node learns the entire graph by pipelined gossip
//     (one record per edge per round) and solves MaxIS locally — the
//     universal "any problem is solvable in O(n²) rounds" upper bound the
//     paper cites to frame its near-quadratic lower bound.
//
// These are the concrete algorithms that the reduction framework
// (internal/core) feeds through Theorem 5's simulation argument, and the
// baselines for the upper-bound experiments.
package congestalg

import (
	"encoding/binary"
	"fmt"
)

// Wire formats are deliberately compact so every message fits in the
// simulator's default Θ(log n) bandwidth: node IDs use 2 bytes (n < 65536)
// and weights 4 bytes.

const (
	wireStatus byte = iota + 1 // state byte + value
	wireNode                   // node record: id, weight, degree
	wireEdge                   // edge record: u, v
)

// node states shared by Luby and RankGreedy.
const (
	stateUndecided byte = iota + 1
	stateIn
	stateOut
)

// statusLen is the wire size of a status message.
const statusLen = 6

// appendStatus packs (state, value32) into 6 bytes appended to dst. It is
// the allocation-free form used by the hot paths: programs feed it a
// per-program scratch buffer truncated to length 0.
func appendStatus(dst []byte, state byte, value uint32) []byte {
	return append(dst, wireStatus, state,
		byte(value>>24), byte(value>>16), byte(value>>8), byte(value))
}

// encodeStatus is appendStatus into a fresh buffer.
func encodeStatus(state byte, value uint32) []byte {
	return appendStatus(make([]byte, 0, statusLen), state, value)
}

// decodeStatus unpacks a status message.
func decodeStatus(data []byte) (state byte, value uint32, err error) {
	if len(data) != 6 || data[0] != wireStatus {
		return 0, 0, fmt.Errorf("congestalg: malformed status message % x", data)
	}
	return data[1], binary.BigEndian.Uint32(data[2:]), nil
}

// nodeRecord is a gossiped "I exist" record.
type nodeRecord struct {
	id     int
	weight int64
	degree int
}

// edgeRecord is a gossiped edge, u < v.
type edgeRecord struct {
	u, v int
}

// Wire sizes of the two record types.
const (
	nodeRecordLen = 9
	edgeRecordLen = 5
)

// appendNodeRecord packs a node record into 9 bytes appended to dst.
func appendNodeRecord(dst []byte, r nodeRecord) []byte {
	return append(dst, wireNode,
		byte(r.id>>8), byte(r.id),
		byte(r.weight>>24), byte(r.weight>>16), byte(r.weight>>8), byte(r.weight),
		byte(r.degree>>8), byte(r.degree))
}

// encodeNodeRecord is appendNodeRecord into a fresh buffer.
func encodeNodeRecord(r nodeRecord) []byte {
	return appendNodeRecord(make([]byte, 0, nodeRecordLen), r)
}

// appendEdgeRecord packs an edge record into 5 bytes appended to dst.
func appendEdgeRecord(dst []byte, r edgeRecord) []byte {
	return append(dst, wireEdge,
		byte(r.u>>8), byte(r.u),
		byte(r.v>>8), byte(r.v))
}

// encodeEdgeRecord is appendEdgeRecord into a fresh buffer.
func encodeEdgeRecord(r edgeRecord) []byte {
	return appendEdgeRecord(make([]byte, 0, edgeRecordLen), r)
}

// decodeRecord unpacks either record type by value (no heap traffic); kind
// is wireNode or wireEdge and selects which return value is meaningful.
func decodeRecord(data []byte) (nr nodeRecord, er edgeRecord, kind byte, err error) {
	if len(data) == 0 {
		return nr, er, 0, fmt.Errorf("congestalg: empty record")
	}
	switch data[0] {
	case wireNode:
		if len(data) != nodeRecordLen {
			return nr, er, 0, fmt.Errorf("congestalg: malformed node record % x", data)
		}
		nr = nodeRecord{
			id:     int(binary.BigEndian.Uint16(data[1:])),
			weight: int64(binary.BigEndian.Uint32(data[3:])),
			degree: int(binary.BigEndian.Uint16(data[7:])),
		}
		return nr, er, wireNode, nil
	case wireEdge:
		if len(data) != edgeRecordLen {
			return nr, er, 0, fmt.Errorf("congestalg: malformed edge record % x", data)
		}
		er = edgeRecord{
			u: int(binary.BigEndian.Uint16(data[1:])),
			v: int(binary.BigEndian.Uint16(data[3:])),
		}
		return nr, er, wireEdge, nil
	default:
		return nr, er, 0, fmt.Errorf("congestalg: unknown record type %d", data[0])
	}
}

// recArena retains small payloads beyond the engine's per-round delivery
// window (which recycles inbox backing storage): retain copies data into a
// chunk owned by the program and returns a stable slice. Chunks are never
// reallocated in place, so previously returned slices stay valid.
type recArena struct {
	chunk []byte
}

const recArenaChunk = 4096

func (a *recArena) retain(data []byte) []byte {
	if len(a.chunk)+len(data) > cap(a.chunk) {
		size := recArenaChunk
		if len(data) > size {
			size = len(data)
		}
		a.chunk = make([]byte, 0, size)
	}
	off := len(a.chunk)
	a.chunk = append(a.chunk, data...)
	return a.chunk[off:len(a.chunk):len(a.chunk)]
}
