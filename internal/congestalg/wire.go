// Package congestalg implements CONGEST algorithms for (approximate)
// maximum independent set, written against the internal/congest simulator:
//
//   - Luby: the classical randomised maximal-independent-set algorithm
//     (local maximum of fresh random draws), O(log n) phases w.h.p.
//   - RankGreedy: the deterministic weighted variant — a node joins when
//     its (weight, ID) rank is a local maximum among undecided neighbours;
//     it computes the sequential greedy-by-weight MIS distributively.
//   - GossipExact: every node learns the entire graph by pipelined gossip
//     (one record per edge per round) and solves MaxIS locally — the
//     universal "any problem is solvable in O(n²) rounds" upper bound the
//     paper cites to frame its near-quadratic lower bound.
//
// These are the concrete algorithms that the reduction framework
// (internal/core) feeds through Theorem 5's simulation argument, and the
// baselines for the upper-bound experiments.
package congestalg

import (
	"encoding/binary"
	"fmt"
)

// Wire formats are deliberately compact so every message fits in the
// simulator's default Θ(log n) bandwidth: node IDs use 2 bytes (n < 65536)
// and weights 4 bytes.

const (
	wireStatus byte = iota + 1 // state byte + value
	wireNode                   // node record: id, weight, degree
	wireEdge                   // edge record: u, v
)

// node states shared by Luby and RankGreedy.
const (
	stateUndecided byte = iota + 1
	stateIn
	stateOut
)

// encodeStatus packs (state, value32) into 6 bytes.
func encodeStatus(state byte, value uint32) []byte {
	buf := make([]byte, 6)
	buf[0] = wireStatus
	buf[1] = state
	binary.BigEndian.PutUint32(buf[2:], value)
	return buf
}

// decodeStatus unpacks a status message.
func decodeStatus(data []byte) (state byte, value uint32, err error) {
	if len(data) != 6 || data[0] != wireStatus {
		return 0, 0, fmt.Errorf("congestalg: malformed status message % x", data)
	}
	return data[1], binary.BigEndian.Uint32(data[2:]), nil
}

// nodeRecord is a gossiped "I exist" record.
type nodeRecord struct {
	id     int
	weight int64
	degree int
}

// edgeRecord is a gossiped edge, u < v.
type edgeRecord struct {
	u, v int
}

// encodeNodeRecord packs a node record into 9 bytes.
func encodeNodeRecord(r nodeRecord) []byte {
	buf := make([]byte, 9)
	buf[0] = wireNode
	binary.BigEndian.PutUint16(buf[1:], uint16(r.id))
	binary.BigEndian.PutUint32(buf[3:], uint32(r.weight))
	binary.BigEndian.PutUint16(buf[7:], uint16(r.degree))
	return buf
}

// encodeEdgeRecord packs an edge record into 5 bytes.
func encodeEdgeRecord(r edgeRecord) []byte {
	buf := make([]byte, 5)
	buf[0] = wireEdge
	binary.BigEndian.PutUint16(buf[1:], uint16(r.u))
	binary.BigEndian.PutUint16(buf[3:], uint16(r.v))
	return buf
}

// decodeRecord unpacks either record type, returning exactly one of them.
func decodeRecord(data []byte) (*nodeRecord, *edgeRecord, error) {
	if len(data) == 0 {
		return nil, nil, fmt.Errorf("congestalg: empty record")
	}
	switch data[0] {
	case wireNode:
		if len(data) != 9 {
			return nil, nil, fmt.Errorf("congestalg: malformed node record % x", data)
		}
		return &nodeRecord{
			id:     int(binary.BigEndian.Uint16(data[1:])),
			weight: int64(binary.BigEndian.Uint32(data[3:])),
			degree: int(binary.BigEndian.Uint16(data[7:])),
		}, nil, nil
	case wireEdge:
		if len(data) != 5 {
			return nil, nil, fmt.Errorf("congestalg: malformed edge record % x", data)
		}
		return nil, &edgeRecord{
			u: int(binary.BigEndian.Uint16(data[1:])),
			v: int(binary.BigEndian.Uint16(data[3:])),
		}, nil
	default:
		return nil, nil, fmt.Errorf("congestalg: unknown record type %d", data[0])
	}
}
