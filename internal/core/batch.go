package core

import (
	"context"
	"fmt"

	"congestlb/internal/bitvec"
	"congestlb/internal/cc"
	"congestlb/internal/congest"
	"congestlb/internal/obs"
)

// BatchSim is one Theorem 5 simulation of a batched sweep: a pre-built
// instance plus the algorithm and extraction that SimulateBuiltCtx would
// apply to it. Instances of one sweep typically share a *graphs.Graph
// (the same built instance run under several algorithms), which the batch
// engine detects and shares instead of duplicating.
type BatchSim struct {
	Fam     Family
	In      bitvec.Inputs
	Inst    Instance
	Factory ProgramFactory
	Extract OptExtractor
	Cfg     congest.Config
}

// SimulateBatch runs every simulation through one congest.RunBatch
// lockstep pass and returns per-sim reports and errors (reports[i] is
// meaningful iff errs[i] is nil), plus the engine's batch statistics.
//
// Each report is field-for-field identical to what SimulateBuiltCtx would
// return for the same sim, with one exception: SolveCacheHits/Misses stay
// zero. The shared solve cache's counter deltas cannot be attributed to
// one instance of an interleaved lockstep pass; callers that need
// attribution take the delta across the whole batch (the experiment
// runner books it per batch job) or route solves through a private
// session cache as congestlb.Lab does.
func SimulateBatch(ctx context.Context, sims []BatchSim) ([]SimulationReport, []error, congest.BatchStats) {
	reports := make([]SimulationReport, len(sims))
	errs := make([]error, len(sims))

	// The whole lockstep pass is one "simulate" span; per-sim engine
	// metrics come from each sim's own Cfg.Metrics, defaulted from the
	// context registry like SimulateBuiltCtx.
	var sp obs.Span
	ctx, sp = obs.Begin(ctx, "simulate")
	defer sp.End()
	em := congest.NewEngineMetrics(obs.FromContext(ctx))

	// Per-sim pre-work mirroring SimulateBuiltCtx: truth evaluation,
	// blackboard pre-sized from the process high-water mark, the
	// cut-routing hook. Sims that fail pre-work never enter the engine.
	type prep struct {
		board  cc.Blackboard
		writes int64
		truth  bool
	}
	preps := make([]*prep, len(sims))
	items := make([]congest.BatchItem, 0, len(sims))
	itemSim := make([]int, 0, len(sims)) // engine item -> sim index
	for i := range sims {
		s := &sims[i]
		truth, err := s.In.PromisePairwiseDisjointness()
		if err != nil {
			errs[i] = fmt.Errorf("core: inputs: %w", err)
			continue
		}
		p := &prep{truth: truth}
		p.board.Grow(int(boardHWEntries.Load()), int(boardHWPayload.Load()))
		preps[i] = p

		part := s.Inst.Partition
		userHook := s.Cfg.Hook
		cfg := s.Cfg
		if cfg.Metrics == nil {
			cfg.Metrics = em
		}
		cfg.Hook = func(round int, msg congest.Message) error {
			if part.Of(msg.From) != part.Of(msg.To) {
				tag := cc.Tag{Round: round, From: msg.From, To: msg.To}
				if err := p.board.WriteTagged(part.Of(msg.From), tag, msg.Data, msg.Bits()); err != nil {
					return err
				}
				p.writes++
			}
			if userHook != nil {
				return userHook(round, msg)
			}
			return nil
		}
		items = append(items, congest.BatchItem{
			Graph:    s.Inst.Graph,
			Programs: s.Factory(s.Inst),
			Config:   cfg,
		})
		itemSim = append(itemSim, i)
	}

	results, runErrs, bstats := congest.RunBatch(ctx, items)

	for k, i := range itemSim {
		if runErrs[k] != nil {
			errs[i] = fmt.Errorf("core: run: %w", runErrs[k])
			continue
		}
		s := &sims[i]
		p := preps[i]
		opt, err := s.Extract(results[k], s.Inst)
		if err != nil {
			errs[i] = fmt.Errorf("core: extract: %w", err)
			continue
		}
		decision, err := s.Fam.Gap().Decide(opt)
		if err != nil {
			errs[i] = err
			continue
		}
		storeMax(&boardHWEntries, int64(p.board.Len()))
		storeMax(&boardHWPayload, int64(p.board.PayloadBytes()))

		g := s.Inst.Graph
		bw := s.Cfg.BandwidthBits
		if bw == 0 {
			bw = congest.DefaultBandwidth(g.N())
		}
		cut := s.Inst.Partition.CutSize(g)
		reports[i] = SimulationReport{
			Family:           s.Fam.Name(),
			Players:          s.Fam.Players(),
			N:                g.N(),
			CutSize:          cut,
			Bandwidth:        bw,
			Rounds:           results[k].Stats.Rounds,
			BlackboardBits:   p.board.Bits(),
			BlackboardWrites: p.writes,
			CongestTotalBits: results[k].Stats.TotalBits,
			AccountingBound:  int64(results[k].Stats.Rounds) * int64(cut) * bw,
			Opt:              opt,
			Decision:         decision,
			Truth:            p.truth,
		}
	}
	return reports, errs, bstats
}
