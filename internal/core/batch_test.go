package core_test

import (
	"context"
	"math/rand"
	"testing"

	"congestlb/internal/bitvec"
	"congestlb/internal/congest"
	"congestlb/internal/core"
)

// TestSimulateBatchMatchesSolo pins the batch contract at the reduction
// layer: every report of a SimulateBatch pass is field-for-field the
// report SimulateBuiltCtx produces for the same sim (solve-cache
// attribution aside, which batching documents as unattributed), and the
// engine stats reflect the shared built instance.
func TestSimulateBatchMatchesSolo(t *testing.T) {
	l := mustLinear(t)
	rng := rand.New(rand.NewSource(17))
	k := testParams.K()

	inter, _, err := bitvec.RandomUniquelyIntersecting(k, testParams.T, bitvec.GenOptions{Density: 0.3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	dis, err := bitvec.RandomPairwiseDisjoint(k, testParams.T, bitvec.GenOptions{Density: 0.3}, rng)
	if err != nil {
		t.Fatal(err)
	}

	interInst, err := l.Build(inter)
	if err != nil {
		t.Fatal(err)
	}
	disInst, err := l.Build(dis)
	if err != nil {
		t.Fatal(err)
	}

	// The same built intersecting instance twice (graph shared by
	// pointer) plus the disjoint one.
	sims := []core.BatchSim{
		{Fam: l, In: inter, Inst: interInst, Factory: core.GossipPrograms, Extract: core.GossipOpt, Cfg: congest.Config{Seed: 2}},
		{Fam: l, In: dis, Inst: disInst, Factory: core.GossipPrograms, Extract: core.GossipOpt, Cfg: congest.Config{Seed: 2}},
		{Fam: l, In: inter, Inst: interInst, Factory: core.GossipPrograms, Extract: core.GossipOpt, Cfg: congest.Config{Seed: 9}},
	}

	want := make([]core.SimulationReport, len(sims))
	for i, s := range sims {
		rep, err := core.SimulateBuilt(s.Fam, s.In, s.Inst, s.Factory, s.Extract, s.Cfg)
		if err != nil {
			t.Fatalf("sim %d solo: %v", i, err)
		}
		// Batch reports document solve-cache attribution as zero.
		rep.SolveCacheHits, rep.SolveCacheMisses = 0, 0
		want[i] = rep
	}

	reports, errs, stats := core.SimulateBatch(context.Background(), sims)
	for i := range sims {
		if errs[i] != nil {
			t.Fatalf("sim %d: %v", i, errs[i])
		}
		if reports[i] != want[i] {
			t.Fatalf("sim %d diverged:\nbatch %+v\nsolo  %+v", i, reports[i], want[i])
		}
	}
	if stats.Instances != 3 || stats.SharedGraphs != 1 {
		t.Fatalf("batch stats %+v: want 3 instances, 1 shared graph", stats)
	}
	if stats.TotalRounds == 0 || stats.EngineRounds == 0 {
		t.Fatalf("batch stats %+v: rounds not recorded", stats)
	}
}

// TestSimulateBatchPerSimErrors: a sim with invalid inputs fails alone
// while the rest of the batch completes.
func TestSimulateBatchPerSimErrors(t *testing.T) {
	l := mustLinear(t)
	rng := rand.New(rand.NewSource(19))
	k := testParams.K()
	in, _, err := bitvec.RandomUniquelyIntersecting(k, testParams.T, bitvec.GenOptions{Density: 0.3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := l.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	bad := bitvec.Inputs{bitvec.New(k), bitvec.New(k + 1)}
	sims := []core.BatchSim{
		{Fam: l, In: bad, Inst: inst, Factory: core.GossipPrograms, Extract: core.GossipOpt, Cfg: congest.Config{}},
		{Fam: l, In: in, Inst: inst, Factory: core.GossipPrograms, Extract: core.GossipOpt, Cfg: congest.Config{}},
	}
	reports, errs, stats := core.SimulateBatch(context.Background(), sims)
	if errs[0] == nil {
		t.Fatal("mismatched inputs accepted")
	}
	if errs[1] != nil {
		t.Fatalf("healthy sim failed: %v", errs[1])
	}
	if !reports[1].Correct() || !reports[1].AccountingHolds() {
		t.Fatalf("healthy sim report degenerate: %+v", reports[1])
	}
	if stats.Instances != 1 {
		t.Fatalf("stats %+v: the failed sim never entered the engine", stats)
	}
}
