package core

import (
	"math"

	"congestlb/internal/cc"
)

// This file holds the arithmetic of Corollary 1 and Theorems 1-2: the
// round lower bounds obtained by dividing the communication complexity of
// promise pairwise disjointness by the per-round information capacity of
// the cut.

// RoundLowerBound evaluates Corollary 1:
//
//	rounds = CC_f(k,t) / (|cut| · log₂|V|)
//
// with CC_f(k,t) = k/(t·log₂t) per Theorem 3. All quantities are reported
// with constant factors 1 (the paper's bounds are asymptotic).
func RoundLowerBound(k, t, cut, n int) float64 {
	if cut <= 0 || n < 2 {
		return 0
	}
	return cc.LowerBoundBits(k, t) / (float64(cut) * math.Log2(float64(n)))
}

// Theorem1Bound is the headline linear bound Ω(n/log³n) for
// (1/2+ε)-approximate MaxIS, evaluated with constant 1.
func Theorem1Bound(n float64) float64 {
	if n < 2 {
		return 0
	}
	l := math.Log2(n)
	return n / (l * l * l)
}

// Theorem2Bound is the headline quadratic bound Ω(n²/log³n) for
// (3/4+ε)-approximate MaxIS, evaluated with constant 1.
func Theorem2Bound(n float64) float64 {
	if n < 2 {
		return 0
	}
	l := math.Log2(n)
	return n * n / (l * l * l)
}

// PriorLinearBound is Bachrach et al.'s Ω(n/log⁶n) bound for
// (5/6+ε)-approximation, included for the comparison tables.
func PriorLinearBound(n float64) float64 {
	if n < 2 {
		return 0
	}
	l := math.Log2(n)
	return n / math.Pow(l, 6)
}

// PriorQuadraticBound is Bachrach et al.'s Ω(n²/log⁷n) bound for
// (7/8+ε)-approximation.
func PriorQuadraticBound(n float64) float64 {
	if n < 2 {
		return 0
	}
	l := math.Log2(n)
	return n * n / math.Pow(l, 7)
}

// TwoPartyApproximationFloor returns the approximation factor below which
// the t-party framework cannot prove hardness: 1/t (Section 1's limitation
// argument — the players can locally compute optima of their own parts and
// take the best, a (1/t)-approximation costing O(t·log n) bits).
func TwoPartyApproximationFloor(t int) float64 {
	if t < 1 {
		return 0
	}
	return 1 / float64(t)
}

// PlayersForEpsilon returns the paper's choice of t for a target ε:
// the first integer ≥ 2/ε for the linear family (Lemma 2: (1/2+ε)), and
// the first integer ≥ 3/(4ε) - 1 for the quadratic family (Lemma 3:
// (3/4+ε)).
func PlayersForEpsilon(epsilon float64, quadratic bool) int {
	if epsilon <= 0 {
		return 0
	}
	var t float64
	if quadratic {
		t = 3/(4*epsilon) - 1
	} else {
		t = 2 / epsilon
	}
	n := int(math.Ceil(t))
	if n < 2 {
		n = 2
	}
	return n
}
