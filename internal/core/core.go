// Package core implements the multi-party reduction framework of Efron,
// Grossman and Khoury (PODC 2020): families of lower bound graphs
// (Definition 4), gap predicates for γ-approximate MaxIS families
// (Definitions 5-6), the simulation argument that turns a CONGEST algorithm
// into a shared-blackboard protocol (Theorem 5), and the round-lower-bound
// calculators that combine it with communication complexity (Corollary 1,
// Theorems 1-2).
//
// The package is the seam between the two models: internal/congest
// simulates the distributed side, internal/cc accounts the communication
// side, and Simulate runs them joined — every message crossing the player
// partition is charged, bit-exactly, to a blackboard, and the resulting
// transcript length is checked against the T·|cut|·B accounting bound that
// the paper's lower bounds rest on.
package core

import (
	"errors"
	"fmt"

	"congestlb/internal/bitvec"
	"congestlb/internal/graphs"
)

// Instance is a built lower-bound graph G_x̄ together with the player
// partition of Definition 4 and the construction's natural clique cover
// (used to make exact MaxIS solving tractable).
type Instance struct {
	Graph     *graphs.Graph
	Partition *graphs.Partition
	// CliqueCover partitions the nodes into cliques (the A^i and C^i_h of
	// the constructions). May be nil if a family has no natural cover.
	CliqueCover [][]graphs.NodeID
}

// Family is a family of lower bound graphs with respect to the promise
// pairwise disjointness function and a MaxIS gap predicate — the object
// Definition 4 quantifies over, specialised per Definition 6.
type Family interface {
	// Name identifies the family in reports.
	Name() string
	// Players returns t, the number of players/parts.
	Players() int
	// InputBits returns the per-player input length (k for the linear
	// family, k² for the quadratic one).
	InputBits() int
	// Build constructs G_x̄ from the input vector x̄.
	Build(in bitvec.Inputs) (Instance, error)
	// Gap returns the family's gap predicate thresholds.
	Gap() GapPredicate
	// WitnessLarge returns, for a uniquely-intersecting input, an
	// independent set of weight at least Gap().Beta — the constructive
	// half of the gap argument (Property 1 / Claims 1, 3, 6).
	WitnessLarge(in bitvec.Inputs, inst Instance) ([]graphs.NodeID, error)
}

// GapPredicate carries the thresholds of a γ-approximate MaxIS family
// (Definition 6): on uniquely-intersecting inputs the MaxIS weight is at
// least Beta; on pairwise-disjoint inputs it is at most SmallMax = γ·β.
type GapPredicate struct {
	Beta     int64
	SmallMax int64
}

// Ratio returns γ = SmallMax/Beta, the approximation factor separated by
// the predicate.
func (g GapPredicate) Ratio() float64 {
	if g.Beta == 0 {
		return 0
	}
	return float64(g.SmallMax) / float64(g.Beta)
}

// Valid reports whether the predicate actually separates (Beta > SmallMax).
// Small parameterisations of the constructions can be built and audited
// even when their gap is vacuous; only valid gaps yield lower bounds.
func (g GapPredicate) Valid() bool { return g.Beta > g.SmallMax }

// ErrGapViolated reports a MaxIS value falling strictly between the two
// thresholds, which the promise makes impossible for honest families.
var ErrGapViolated = errors.New("core: MaxIS weight inside the forbidden gap")

// Decide maps a MaxIS weight to the value of the promise pairwise
// disjointness function: TRUE (pairwise disjoint) for weight ≤ SmallMax,
// FALSE (uniquely intersecting) for weight ≥ Beta.
func (g GapPredicate) Decide(opt int64) (bool, error) {
	switch {
	case opt >= g.Beta:
		return false, nil
	case opt <= g.SmallMax:
		return true, nil
	default:
		return false, fmt.Errorf("%w: %d in (%d,%d)", ErrGapViolated, opt, g.SmallMax, g.Beta)
	}
}

// AuditLocality mechanically checks condition 1 of Definition 4 on a pair
// of input vectors differing only in player i's string: the two built
// graphs must agree on everything except node weights inside V^i and edges
// inside V^i × V^i. This is exactly what lets player i build its part
// without communication.
func AuditLocality(fam Family, a, b bitvec.Inputs, i int) error {
	if len(a) != len(b) {
		return fmt.Errorf("core: input tuples of different arity")
	}
	for j := range a {
		if j != i && !a[j].Equal(b[j]) {
			return fmt.Errorf("core: inputs differ at player %d, expected only %d", j, i)
		}
	}
	instA, err := fam.Build(a)
	if err != nil {
		return fmt.Errorf("core: build a: %w", err)
	}
	instB, err := fam.Build(b)
	if err != nil {
		return fmt.Errorf("core: build b: %w", err)
	}
	ga, gb := instA.Graph, instB.Graph
	if ga.N() != gb.N() {
		return fmt.Errorf("core: node counts differ: %d vs %d", ga.N(), gb.N())
	}
	pa := instA.Partition
	for u := 0; u < ga.N(); u++ {
		if ga.Label(u) != gb.Label(u) {
			return fmt.Errorf("core: node %d labelled %q vs %q", u, ga.Label(u), gb.Label(u))
		}
		if pa.Of(u) != instB.Partition.Of(u) {
			return fmt.Errorf("core: node %d owned by %d vs %d", u, pa.Of(u), instB.Partition.Of(u))
		}
		if ga.Weight(u) != gb.Weight(u) && pa.Of(u) != i {
			return fmt.Errorf("core: weight of node %d (player %d) depends on player %d's input",
				u, pa.Of(u), i)
		}
	}
	// Edge differences must lie inside V^i × V^i.
	diff := func(x, y *graphs.Graph) error {
		for _, e := range x.Edges() {
			if !y.HasEdge(e.U, e.V) {
				if pa.Of(e.U) != i || pa.Of(e.V) != i {
					return fmt.Errorf("core: edge {%d,%d} across players %d,%d depends on player %d's input",
						e.U, e.V, pa.Of(e.U), pa.Of(e.V), i)
				}
			}
		}
		return nil
	}
	if err := diff(ga, gb); err != nil {
		return err
	}
	return diff(gb, ga)
}

// AuditGap builds the instance for an input tuple, computes the exact
// MaxIS weight, and checks the appropriate side of the gap predicate,
// returning the measured optimum. The solver uses the family's clique
// cover. Intended for small, exactly-solvable parameterisations.
func AuditGap(fam Family, in bitvec.Inputs, exact func(Instance) (int64, error)) (int64, error) {
	inst, err := fam.Build(in)
	if err != nil {
		return 0, err
	}
	return AuditGapBuilt(fam, in, inst, exact)
}

// AuditGapBuilt is AuditGap over a caller-built instance of fam for in,
// for callers that construct instances through an attributed build-cache
// session.
func AuditGapBuilt(fam Family, in bitvec.Inputs, inst Instance, exact func(Instance) (int64, error)) (int64, error) {
	truth, err := in.PromisePairwiseDisjointness()
	if err != nil {
		return 0, err
	}
	opt, err := exact(inst)
	if err != nil {
		return 0, err
	}
	gap := fam.Gap()
	if truth { // pairwise disjoint → small side
		if opt > gap.SmallMax {
			return opt, fmt.Errorf("core: disjoint input has MaxIS %d > SmallMax %d", opt, gap.SmallMax)
		}
		return opt, nil
	}
	// uniquely intersecting → large side
	if opt < gap.Beta {
		return opt, fmt.Errorf("core: intersecting input has MaxIS %d < Beta %d", opt, gap.Beta)
	}
	return opt, nil
}
