package core_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"congestlb/internal/bitvec"
	"congestlb/internal/congest"
	"congestlb/internal/core"
	"congestlb/internal/lbgraph"
	"congestlb/internal/mis"
)

// testParams is a small linear parameterisation with a genuinely valid gap
// (t=2, ℓ=3 > αt=2): n=48, k=4.
var testParams = lbgraph.Params{T: 2, Alpha: 1, Ell: 3}

func mustLinear(t *testing.T) *lbgraph.Linear {
	t.Helper()
	l, err := lbgraph.NewLinear(testParams)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestGapPredicate(t *testing.T) {
	gap := core.GapPredicate{Beta: 14, SmallMax: 13}
	if !gap.Valid() {
		t.Fatal("14 > 13 should be valid")
	}
	if gap.Ratio() != 13.0/14.0 {
		t.Fatalf("Ratio = %f", gap.Ratio())
	}
	if v, err := gap.Decide(20); err != nil || v {
		t.Fatalf("Decide(20) = %v,%v, want FALSE (intersecting)", v, err)
	}
	if v, err := gap.Decide(5); err != nil || !v {
		t.Fatalf("Decide(5) = %v,%v, want TRUE (disjoint)", v, err)
	}
	vacuous := core.GapPredicate{Beta: 10, SmallMax: 10}
	if vacuous.Valid() {
		t.Fatal("Beta == SmallMax should be invalid")
	}
	interior := core.GapPredicate{Beta: 20, SmallMax: 10}
	if _, err := interior.Decide(15); !errors.Is(err, core.ErrGapViolated) {
		t.Fatalf("interior Decide error = %v", err)
	}
	if (core.GapPredicate{}).Ratio() != 0 {
		t.Fatal("zero Beta ratio should be 0")
	}
}

// exactSolver returns the standard exact-MaxIS callback for AuditGap.
func exactSolver(inst core.Instance) (int64, error) {
	sol, err := mis.Exact(inst.Graph, mis.Options{CliqueCover: inst.CliqueCover})
	if err != nil {
		return 0, err
	}
	return sol.Weight, nil
}

func TestAuditGapBothCases(t *testing.T) {
	l := mustLinear(t)
	rng := rand.New(rand.NewSource(3))
	k := testParams.K()

	inter, _, err := bitvec.RandomUniquelyIntersecting(k, testParams.T, bitvec.GenOptions{Density: 0.4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.AuditGap(l, inter, exactSolver)
	if err != nil {
		t.Fatal(err)
	}
	if opt < l.Gap().Beta {
		t.Fatalf("intersecting OPT %d below Beta %d", opt, l.Gap().Beta)
	}

	dis, err := bitvec.RandomPairwiseDisjoint(k, testParams.T, bitvec.GenOptions{Density: 0.4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	opt, err = core.AuditGap(l, dis, exactSolver)
	if err != nil {
		t.Fatal(err)
	}
	if opt > l.Gap().SmallMax {
		t.Fatalf("disjoint OPT %d above SmallMax %d", opt, l.Gap().SmallMax)
	}
}

func TestAuditGapRejectsBrokenSolver(t *testing.T) {
	l := mustLinear(t)
	rng := rand.New(rand.NewSource(5))
	inter, _, err := bitvec.RandomUniquelyIntersecting(testParams.K(), testParams.T, bitvec.GenOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// A solver reporting an implausibly small optimum must be caught.
	broken := func(core.Instance) (int64, error) { return 1, nil }
	if _, err := core.AuditGap(l, inter, broken); err == nil {
		t.Fatal("broken solver passed the gap audit")
	}
}

func TestSimulateTheorem5EndToEnd(t *testing.T) {
	l := mustLinear(t)
	rng := rand.New(rand.NewSource(7))
	k := testParams.K()

	cases := []struct {
		name  string
		build func() (bitvec.Inputs, error)
		truth bool
	}{
		{
			name: "uniquely intersecting",
			build: func() (bitvec.Inputs, error) {
				in, _, err := bitvec.RandomUniquelyIntersecting(k, testParams.T, bitvec.GenOptions{Density: 0.3}, rng)
				return in, err
			},
			truth: false,
		},
		{
			name: "pairwise disjoint",
			build: func() (bitvec.Inputs, error) {
				return bitvec.RandomPairwiseDisjoint(k, testParams.T, bitvec.GenOptions{Density: 0.3}, rng)
			},
			truth: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			report, err := core.Simulate(l, in, core.GossipPrograms, core.GossipOpt, congest.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if report.Truth != tc.truth {
				t.Fatalf("truth = %v, want %v", report.Truth, tc.truth)
			}
			if !report.Correct() {
				t.Fatalf("protocol decided %v, truth %v (opt=%d)", report.Decision, report.Truth, report.Opt)
			}
			if !report.AccountingHolds() {
				t.Fatalf("Theorem 5 accounting violated: %d bits > %d",
					report.BlackboardBits, report.AccountingBound)
			}
			if report.BlackboardBits == 0 {
				t.Fatal("no cut traffic recorded; the reduction saw no communication")
			}
			if report.BlackboardBits >= report.CongestTotalBits {
				t.Fatal("cut traffic should be a strict subset of all traffic")
			}
			if report.CutSize == 0 || report.Rounds == 0 {
				t.Fatalf("degenerate report: %+v", report)
			}
		})
	}
}

func TestSimulateRejectsPromiseViolation(t *testing.T) {
	l := mustLinear(t)
	k := testParams.K()
	// x1 and x2 intersect at 0 but also have private structure violating
	// nothing... make a genuine violation: x1∩x2 ≠ ∅ but no common index
	// across all players is impossible at t=2 — any pairwise hit is a
	// common index. Violate differently: three players needed; here use
	// mismatched lengths instead.
	bad := bitvec.Inputs{bitvec.New(k), bitvec.New(k + 1)}
	if _, err := core.Simulate(l, bad, core.GossipPrograms, core.GossipOpt, congest.Config{}); err == nil {
		t.Fatal("mismatched inputs accepted")
	}
}

func TestRoundLowerBound(t *testing.T) {
	// Corollary 1 arithmetic: k=1000, t=2, cut=10, n=1024 →
	// (1000/2)/(10·10) = 5.
	if got := core.RoundLowerBound(1000, 2, 10, 1024); math.Abs(got-5) > 1e-9 {
		t.Fatalf("RoundLowerBound = %f, want 5", got)
	}
	if core.RoundLowerBound(1000, 2, 0, 1024) != 0 {
		t.Fatal("zero cut should yield 0")
	}
	if core.RoundLowerBound(1000, 2, 10, 1) != 0 {
		t.Fatal("degenerate n should yield 0")
	}
}

func TestTheoremBoundsShape(t *testing.T) {
	// Theorem 1: Ω(n/log³n) grows near-linearly; at n=2^20 a doubling
	// multiplies the bound by 2·(20/21)³ ≈ 1.73. Theorem 2 grows
	// near-quadratically: 4·(20/21)³ ≈ 3.46.
	n := 1 << 20
	t1a, t1b := core.Theorem1Bound(float64(n)), core.Theorem1Bound(float64(2*n))
	if ratio := t1b / t1a; ratio < 1.6 || ratio > 2.0 {
		t.Fatalf("Theorem1 doubling ratio %f outside (1.6,2.0)", ratio)
	}
	t2a, t2b := core.Theorem2Bound(float64(n)), core.Theorem2Bound(float64(2*n))
	if ratio := t2b / t2a; ratio < 3.2 || ratio > 4.0 {
		t.Fatalf("Theorem2 doubling ratio %f outside (3.2,4.0)", ratio)
	}
	// The improvement over Bachrach et al.: log³ vs log⁶ — three log
	// factors at the same approximation regime.
	if core.Theorem1Bound(1<<20) <= core.PriorLinearBound(1<<20) {
		t.Fatal("Theorem 1 should dominate the prior linear bound")
	}
	if core.Theorem2Bound(1<<20) <= core.PriorQuadraticBound(1<<20) {
		t.Fatal("Theorem 2 should dominate the prior quadratic bound")
	}
	if core.Theorem1Bound(1) != 0 || core.Theorem2Bound(0) != 0 {
		t.Fatal("degenerate n should yield 0")
	}
}

func TestPlayersForEpsilon(t *testing.T) {
	tests := []struct {
		eps       float64
		quadratic bool
		want      int
	}{
		{eps: 0.25, quadratic: false, want: 8}, // 2/ε
		{eps: 0.5, quadratic: false, want: 4},
		{eps: 1.0 / 3, quadratic: false, want: 6},
		{eps: 0.25, quadratic: true, want: 2},  // 3/(4ε)−1 = 2
		{eps: 0.05, quadratic: true, want: 14}, // 15−1
		{eps: 0, quadratic: false, want: 0},
	}
	for _, tt := range tests {
		if got := core.PlayersForEpsilon(tt.eps, tt.quadratic); got != tt.want {
			t.Errorf("PlayersForEpsilon(%f,%v) = %d, want %d", tt.eps, tt.quadratic, got, tt.want)
		}
	}
}

func TestTwoPartyApproximationFloor(t *testing.T) {
	if core.TwoPartyApproximationFloor(2) != 0.5 {
		t.Fatal("2-party floor should be 1/2")
	}
	if core.TwoPartyApproximationFloor(4) != 0.25 {
		t.Fatal("4-party floor should be 1/4")
	}
	if core.TwoPartyApproximationFloor(0) != 0 {
		t.Fatal("degenerate t")
	}
}

func TestCutEdgesOf(t *testing.T) {
	l := mustLinear(t)
	inst, err := l.BuildFixed()
	if err != nil {
		t.Fatal(err)
	}
	cut := core.CutEdgesOf(inst)
	if len(cut) != inst.Partition.CutSize(inst.Graph) {
		t.Fatalf("CutEdgesOf length %d vs CutSize %d", len(cut), inst.Partition.CutSize(inst.Graph))
	}
	for _, e := range cut {
		if inst.Partition.Of(e.U) == inst.Partition.Of(e.V) {
			t.Fatal("non-cut edge reported")
		}
	}
}
