package core_test

import (
	"errors"
	"math/rand"
	"testing"

	"congestlb/internal/bitvec"
	"congestlb/internal/congest"
	"congestlb/internal/core"
	"congestlb/internal/graphs"
	"congestlb/internal/lbgraph"
)

// Failure-injection tests: the reduction must reject unsound runs rather
// than report them.

func TestSimulateRejectsOverBudgetAlgorithm(t *testing.T) {
	// A bandwidth too small for the gossip records must surface as
	// ErrBandwidthExceeded through the whole stack.
	l := mustLinear(t)
	rng := rand.New(rand.NewSource(1))
	in, _, err := bitvec.RandomUniquelyIntersecting(testParams.K(), testParams.T, bitvec.GenOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.Simulate(l, in, core.GossipPrograms, core.GossipOpt,
		congest.Config{BandwidthBits: 8})
	if !errors.Is(err, congest.ErrBandwidthExceeded) {
		t.Fatalf("error = %v, want ErrBandwidthExceeded", err)
	}
}

// TestSimulateRejectsLyingExtractor feeds Simulate an extractor that
// reports a value inside the forbidden gap; the gap predicate must reject
// it. A wide-gap parameterisation (testParams' interval is empty) makes
// the interior non-empty.
func TestSimulateRejectsLyingExtractor(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	wide := lbgraph.Params{T: 2, Alpha: 1, Ell: 10}
	lw, err := lbgraph.NewLinear(wide)
	if err != nil {
		t.Fatal(err)
	}
	inWide, _, err := bitvec.RandomUniquelyIntersecting(wide.K(), wide.T, bitvec.GenOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	interior := lw.Gap().SmallMax + 1
	if interior >= lw.Gap().Beta {
		t.Fatalf("test setup: gap not wide enough (%d..%d)", lw.Gap().SmallMax, lw.Gap().Beta)
	}
	liar := func(congest.Result, core.Instance) (int64, error) { return interior, nil }
	// The algorithm's behaviour is irrelevant here — run silent programs
	// so the test stays fast.
	silentFactory := func(inst core.Instance) []congest.NodeProgram {
		programs := make([]congest.NodeProgram, inst.Graph.N())
		for i := range programs {
			programs[i] = &silentProgram{}
		}
		return programs
	}
	_, err = core.Simulate(lw, inWide, silentFactory, liar, congest.Config{})
	if !errors.Is(err, core.ErrGapViolated) {
		t.Fatalf("error = %v, want ErrGapViolated", err)
	}
}

// silentProgram terminates immediately without sending anything.
type silentProgram struct{ done bool }

func (s *silentProgram) Init(congest.NodeInfo) {}
func (s *silentProgram) Round(int, []congest.Message) []congest.Message {
	s.done = true
	return nil
}
func (s *silentProgram) Done() bool  { return s.done }
func (s *silentProgram) Output() any { return nil }

func TestGossipOptRejectsDependentSet(t *testing.T) {
	// WitnessOpt/GossipOpt re-verify independence; feed them a result
	// claiming an adjacent pair.
	g := graphs.New(2)
	a := g.MustAddNode("a", 1)
	b := g.MustAddNode("b", 1)
	g.MustAddEdge(a, b)
	part := graphs.MustNewPartition(2, 2)
	inst := core.Instance{Graph: g, Partition: part}

	bad := congest.Result{Outputs: []any{
		[]graphs.NodeID{a, b},
		[]graphs.NodeID{a, b},
	}}
	if _, err := core.GossipOpt(bad, inst); err == nil {
		t.Fatal("dependent set accepted by GossipOpt")
	}

	badBool := congest.Result{Outputs: []any{true, true}}
	if _, err := core.WitnessOpt(badBool, inst); err == nil {
		t.Fatal("dependent membership accepted by WitnessOpt")
	}
}

func TestAuditLocalityCatchesCheatingFamily(t *testing.T) {
	// A family whose cut depends on the inputs violates Definition 4;
	// AuditLocality must catch it.
	cheat := &cheatingFamily{}
	a := bitvec.Inputs{bitvec.MustFromBits([]int{1}), bitvec.MustFromBits([]int{0})}
	b := bitvec.Inputs{bitvec.MustFromBits([]int{0}), bitvec.MustFromBits([]int{0})}
	if err := core.AuditLocality(cheat, a, b, 0); err == nil {
		t.Fatal("cheating family passed the locality audit")
	}
}

// cheatingFamily puts an input-dependent edge ACROSS the partition.
type cheatingFamily struct{}

func (f *cheatingFamily) Name() string   { return "cheater" }
func (f *cheatingFamily) Players() int   { return 2 }
func (f *cheatingFamily) InputBits() int { return 1 }
func (f *cheatingFamily) Gap() core.GapPredicate {
	return core.GapPredicate{Beta: 2, SmallMax: 1}
}

func (f *cheatingFamily) Build(in bitvec.Inputs) (core.Instance, error) {
	g := graphs.New(2)
	a := g.MustAddNode("a", 1)
	b := g.MustAddNode("b", 1)
	part := graphs.MustNewPartition(2, 2)
	part.MustAssign(b, 1)
	if in[0].Get(0) { // cross-player edge depending on player 0's input
		g.MustAddEdge(a, b)
	}
	return core.Instance{Graph: g, Partition: part}, nil
}

func (f *cheatingFamily) WitnessLarge(bitvec.Inputs, core.Instance) ([]graphs.NodeID, error) {
	return nil, nil
}
