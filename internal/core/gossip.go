package core

import (
	"fmt"

	"congestlb/internal/congest"
	"congestlb/internal/congestalg"
	"congestlb/internal/mis"
	"congestlb/internal/mis/cache"
)

// This file wires the GossipExact CONGEST algorithm into the reduction as
// the standard "algorithm under simulation": it computes the exact MaxIS
// value, so the induced blackboard protocol decides promise pairwise
// disjointness with certainty, exercising Theorem 5 end to end.

// GossipPrograms is the ProgramFactory running GossipExact on an instance.
func GossipPrograms(inst Instance) []congest.NodeProgram {
	return congestalg.NewGossipExactPrograms(inst.Graph.N())
}

// GossipProgramsWith returns a GossipPrograms variant whose local solves
// run through the given solve session (nil = the shared cache), for
// callers that need exact attribution of the solver work a simulation
// triggers.
func GossipProgramsWith(sess *cache.Session) ProgramFactory {
	return func(inst Instance) []congest.NodeProgram {
		return congestalg.NewGossipExactProgramsWith(sess, inst.Graph.N())
	}
}

// GossipOpt extracts the exact MaxIS weight from a finished GossipExact
// run, re-verifying the witness against the instance.
func GossipOpt(result congest.Result, inst Instance) (int64, error) {
	set, err := congestalg.ExactSetFromOutputs(result)
	if err != nil {
		return 0, err
	}
	weight, err := mis.Verify(inst.Graph, set)
	if err != nil {
		return 0, fmt.Errorf("core: gossip produced a dependent set: %w", err)
	}
	return weight, nil
}

// CollectPrograms is the ProgramFactory running the BFS-tree
// collect-and-solve algorithm — the textbook universal O(n²)-round
// algorithm. Its membership outputs are exact, so WitnessOpt extracts the
// true optimum from its runs.
func CollectPrograms(inst Instance) []congest.NodeProgram {
	return congestalg.NewCollectSolvePrograms(inst.Graph.N())
}

// CollectProgramsWith is CollectPrograms with the root's solve routed
// through the given solve session (nil = the shared cache).
func CollectProgramsWith(sess *cache.Session) ProgramFactory {
	return func(inst Instance) []congest.NodeProgram {
		return congestalg.NewCollectSolveProgramsWith(sess, inst.Graph.N())
	}
}

// WitnessOpt is an OptExtractor for algorithms whose outputs are
// per-node booleans (Luby, RankGreedy, CollectSolve): it sums the weight
// of the chosen set. For the exact algorithms the value is the optimum;
// for the heuristics it is only the achieved weight — useful for
// upper-bound experiments, not for exact gap decisions.
func WitnessOpt(result congest.Result, inst Instance) (int64, error) {
	set := congestalg.MembershipSet(result)
	weight, err := mis.Verify(inst.Graph, set)
	if err != nil {
		return 0, fmt.Errorf("core: algorithm produced a dependent set: %w", err)
	}
	return weight, nil
}
