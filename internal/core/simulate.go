package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"congestlb/internal/bitvec"
	"congestlb/internal/cc"
	"congestlb/internal/congest"
	"congestlb/internal/graphs"
	"congestlb/internal/mis/cache"
	"congestlb/internal/obs"
)

// SimulationReport is the outcome of one run of the Theorem 5 simulation:
// a CONGEST algorithm executed on G_x̄ with every cut-crossing message
// written to a shared blackboard.
type SimulationReport struct {
	// Family and Players identify the construction.
	Family  string
	Players int
	// N and CutSize describe the instance.
	N       int
	CutSize int
	// Bandwidth is the CONGEST per-edge bit budget B.
	Bandwidth int64
	// Rounds is the number of CONGEST rounds the algorithm used (T).
	Rounds int
	// BlackboardBits is the transcript length of the induced protocol —
	// the quantity Theorem 5 bounds by Rounds·CutSize·Bandwidth.
	BlackboardBits int64
	// BlackboardWrites is the number of cut-crossing messages.
	BlackboardWrites int64
	// CongestTotalBits is the total volume sent on all edges (local
	// simulation included), for contrast with BlackboardBits.
	CongestTotalBits int64
	// AccountingBound is Rounds·CutSize·Bandwidth.
	AccountingBound int64
	// SolveCacheHits and SolveCacheMisses are the shared exact-solve
	// cache's counter deltas observed across this run: in a GossipExact
	// run the n per-node solves of the identical learned graph show up as
	// one miss and n-1 hits. The deltas are exact for a sequential caller;
	// when several simulations run concurrently (the sharded experiment
	// runner) they are attributed approximately, since the counters are
	// process-global. Callers that route solves through a private cache
	// (congestlb.Lab.RunReduction) overwrite both fields from their
	// session's exact per-call counters, since the shared deltas would
	// describe someone else's traffic entirely.
	SolveCacheHits, SolveCacheMisses uint64
	// Opt is the MaxIS value extracted from the algorithm's outputs.
	Opt int64
	// Decision is the protocol's answer to promise pairwise disjointness,
	// derived from Opt through the family's gap predicate.
	Decision bool
	// Truth is the ground-truth function value.
	Truth bool
}

// AccountingHolds reports the Theorem 5 inequality
// BlackboardBits ≤ Rounds·CutSize·Bandwidth.
func (r SimulationReport) AccountingHolds() bool {
	return r.BlackboardBits <= r.AccountingBound
}

// Correct reports whether the induced protocol answered correctly.
func (r SimulationReport) Correct() bool { return r.Decision == r.Truth }

// boardHWEntries/boardHWPayload remember the largest blackboard transcript
// (entry count / payload bytes) any Simulate call in this process
// produced; the next call pre-sizes its fresh blackboard accordingly.
var boardHWEntries, boardHWPayload atomic.Int64

// storeMax raises v to at least x.
func storeMax(v *atomic.Int64, x int64) {
	for {
		cur := v.Load()
		if x <= cur || v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// ProgramFactory builds the CONGEST node programs that will run on a built
// instance (one program per node).
type ProgramFactory func(inst Instance) []congest.NodeProgram

// OptExtractor interprets the outputs of a finished run as the MaxIS value
// of the instance (e.g. the weight of the set computed by GossipExact).
type OptExtractor func(result congest.Result, inst Instance) (int64, error)

// Simulate realises Theorem 5 for one input vector: it builds G_x̄, runs
// the given CONGEST algorithm on it, routes every message crossing the
// player partition onto a cc.Blackboard, and decides the promise pairwise
// disjointness function from the algorithm's output via the gap predicate.
//
// The returned report carries both sides of the accounting identity — the
// actual transcript length and the Rounds·|cut|·B bound — so callers (and
// tests) can confirm the inequality the paper's lower bounds rest on.
func Simulate(fam Family, in bitvec.Inputs, factory ProgramFactory, extract OptExtractor, cfg congest.Config) (SimulationReport, error) {
	return SimulateCtx(context.Background(), fam, in, factory, extract, cfg)
}

// SimulateCtx is Simulate under a context: the CONGEST round loop observes
// cancellation at round boundaries, and solve sessions bound to the same
// context (cache.Session.WithContext) stop any in-flight branch-and-bound
// the node programs run. A cancelled simulation returns ctx.Err() wrapped
// with where the run stopped.
func SimulateCtx(ctx context.Context, fam Family, in bitvec.Inputs, factory ProgramFactory, extract OptExtractor, cfg congest.Config) (SimulationReport, error) {
	inst, err := fam.Build(in)
	if err != nil {
		return SimulationReport{}, fmt.Errorf("core: build: %w", err)
	}
	return SimulateBuiltCtx(ctx, fam, in, inst, factory, extract, cfg)
}

// SimulateBuilt is Simulate over a caller-built instance of fam for in.
// Callers that construct instances through an attributed build-cache
// session (the sharded experiment sweeps) use this form so the build
// traffic books under their session; Simulate itself is the convenience
// wrapper that builds through the family.
func SimulateBuilt(fam Family, in bitvec.Inputs, inst Instance, factory ProgramFactory, extract OptExtractor, cfg congest.Config) (SimulationReport, error) {
	return SimulateBuiltCtx(context.Background(), fam, in, inst, factory, extract, cfg)
}

// SimulateBuiltCtx is SimulateBuilt under a context (see SimulateCtx).
// When the context carries an obs.Registry (obs.NewContext), the run is
// wrapped in a "simulate" span and — unless the caller stamped
// cfg.Metrics itself — the engine records its round/message/bit totals
// into that registry.
func SimulateBuiltCtx(ctx context.Context, fam Family, in bitvec.Inputs, inst Instance, factory ProgramFactory, extract OptExtractor, cfg congest.Config) (SimulationReport, error) {
	var sp obs.Span
	ctx, sp = obs.Begin(ctx, "simulate")
	defer sp.End()
	if cfg.Metrics == nil {
		cfg.Metrics = congest.NewEngineMetrics(obs.FromContext(ctx))
	}
	truth, err := in.PromisePairwiseDisjointness()
	if err != nil {
		return SimulationReport{}, fmt.Errorf("core: inputs: %w", err)
	}
	g, part := inst.Graph, inst.Partition

	// Pre-size the transcript from the previous simulation's high-water
	// mark: reduction runs at one scale are typically repeated (benchmark
	// iterations, experiment sweeps), and the blackboard otherwise regrows
	// from nothing by append-doubling on every run.
	var board cc.Blackboard
	board.Grow(int(boardHWEntries.Load()), int(boardHWPayload.Load()))
	var writes int64
	userHook := cfg.Hook
	cfg.Hook = func(round int, msg congest.Message) error {
		if part.Of(msg.From) != part.Of(msg.To) {
			// The owner of the sender writes the message on the shared
			// blackboard, where the owner of the receiver reads it. The
			// structured tag replaces the old per-message label string:
			// it renders identically on transcript inspection but costs
			// no allocation per cut-crossing message.
			tag := cc.Tag{Round: round, From: msg.From, To: msg.To}
			if err := board.WriteTagged(part.Of(msg.From), tag, msg.Data, msg.Bits()); err != nil {
				return err
			}
			writes++
		}
		if userHook != nil {
			return userHook(round, msg)
		}
		return nil
	}

	programs := factory(inst)
	net, err := congest.NewNetwork(g, programs, cfg)
	if err != nil {
		return SimulationReport{}, fmt.Errorf("core: network: %w", err)
	}
	cacheBefore := cache.Shared().Stats()
	result, err := net.RunCtx(ctx)
	if err != nil {
		return SimulationReport{}, fmt.Errorf("core: run: %w", err)
	}
	cacheAfter := cache.Shared().Stats()
	opt, err := extract(result, inst)
	if err != nil {
		return SimulationReport{}, fmt.Errorf("core: extract: %w", err)
	}
	decision, err := fam.Gap().Decide(opt)
	if err != nil {
		return SimulationReport{}, err
	}

	storeMax(&boardHWEntries, int64(board.Len()))
	storeMax(&boardHWPayload, int64(board.PayloadBytes()))

	cut := part.CutSize(g)
	report := SimulationReport{
		Family:           fam.Name(),
		Players:          fam.Players(),
		N:                g.N(),
		CutSize:          cut,
		Bandwidth:        net.Bandwidth(),
		Rounds:           result.Stats.Rounds,
		BlackboardBits:   board.Bits(),
		BlackboardWrites: writes,
		CongestTotalBits: result.Stats.TotalBits,
		AccountingBound:  int64(result.Stats.Rounds) * int64(cut) * net.Bandwidth(),
		SolveCacheHits:   cacheAfter.Hits - cacheBefore.Hits,
		SolveCacheMisses: cacheAfter.Misses - cacheBefore.Misses,
		Opt:              opt,
		Decision:         decision,
		Truth:            truth,
	}
	return report, nil
}

// CutEdgesOf is a convenience wrapper exposing the partition cut of an
// instance (the c of the r·c·log n accounting).
func CutEdgesOf(inst Instance) []graphs.Edge {
	return inst.Partition.CutEdges(inst.Graph)
}
