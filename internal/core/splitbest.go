package core

import (
	"fmt"

	"congestlb/internal/cc"
	"congestlb/internal/graphs"
	"congestlb/internal/mis"
	"congestlb/internal/mis/cache"
)

// SplitBestReport is the outcome of the Section 1 limitation protocol.
type SplitBestReport struct {
	// PlayerValues are the local optima w(OPT(G[V^i])).
	PlayerValues []int64
	// Best is the maximum of the local optima — the protocol's output.
	Best int64
	// Bits is the blackboard cost: one value announcement per player.
	Bits int64
	// Opt is the global optimum (computed for comparison, not part of
	// the protocol).
	Opt int64
}

// Ratio returns Best/Opt, the achieved approximation.
func (r SplitBestReport) Ratio() float64 {
	if r.Opt == 0 {
		return 1
	}
	return float64(r.Best) / float64(r.Opt)
}

// SplitBest runs the protocol behind the paper's limitation argument
// ("the two-party framework cannot show any lower bound against
// (1/2)-approximation"): each player solves MaxIS exactly on its own part
// G[V^i] with zero communication, writes the value on the blackboard
// (O(log n) bits), and everyone outputs the maximum.
//
// Since the V^i partition the nodes, some part carries at least a 1/t
// fraction of the global optimum's weight, so Best ≥ Opt/t — with only
// t·O(log n) bits of communication. For t = 2 this is the 1/2-approximation
// that caps the two-party framework; more players weaken the cap to 1/t,
// which is exactly why the multi-party framework can push below 1/2.
func SplitBest(inst Instance) (SplitBestReport, error) {
	return SplitBestWith(nil, inst)
}

// SplitBestWith is SplitBest with every exact solve routed through the
// given solve session (nil = the shared cache), so callers get exact
// attribution of the protocol's solver work.
func SplitBestWith(sess *cache.Session, inst Instance) (SplitBestReport, error) {
	g, part := inst.Graph, inst.Partition
	if err := part.Validate(g); err != nil {
		return SplitBestReport{}, err
	}
	t := part.T()
	var board cc.Blackboard
	values := make([]int64, t)
	for i := 0; i < t; i++ {
		nodes := part.PlayerNodes(i)
		sub, _, err := g.InducedSubgraph(nodes)
		if err != nil {
			return SplitBestReport{}, fmt.Errorf("core: player %d subgraph: %w", i, err)
		}
		sol, err := sess.Exact(sub, mis.Options{CliqueCover: coverWithin(inst, nodes)})
		if err != nil {
			return SplitBestReport{}, fmt.Errorf("core: player %d local solve: %w", i, err)
		}
		values[i] = sol.Weight
		// Announce the value: 8 bytes, charged at 64 = O(log n) bits.
		payload := make([]byte, 8)
		for b := 0; b < 8; b++ {
			payload[b] = byte(sol.Weight >> (8 * b))
		}
		if err := board.Write(i, fmt.Sprintf("w(OPT(G[V^%d]))", i+1), payload, 64); err != nil {
			return SplitBestReport{}, err
		}
	}
	best := values[0]
	for _, v := range values[1:] {
		if v > best {
			best = v
		}
	}
	globalSol, err := sess.Exact(g, mis.Options{CliqueCover: inst.CliqueCover})
	if err != nil {
		return SplitBestReport{}, fmt.Errorf("core: global solve: %w", err)
	}
	return SplitBestReport{
		PlayerValues: values,
		Best:         best,
		Bits:         board.Bits(),
		Opt:          globalSol.Weight,
	}, nil
}

// coverWithin restricts an instance's clique cover to the given nodes,
// renumbered to the induced subgraph's IDs (which follow the order of
// `nodes`). Returns nil (solver falls back to greedy) when the instance
// has no cover.
func coverWithin(inst Instance, nodes []graphs.NodeID) [][]graphs.NodeID {
	if inst.CliqueCover == nil {
		return nil
	}
	newID := make(map[graphs.NodeID]graphs.NodeID, len(nodes))
	for i, u := range nodes {
		newID[u] = i
	}
	var out [][]graphs.NodeID
	for _, part := range inst.CliqueCover {
		var mapped []graphs.NodeID
		for _, u := range part {
			if id, in := newID[u]; in {
				mapped = append(mapped, id)
			}
		}
		if len(mapped) > 0 {
			out = append(out, mapped)
		}
	}
	return out
}
