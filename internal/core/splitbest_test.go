package core_test

import (
	"math/rand"
	"testing"

	"congestlb/internal/bitvec"
	"congestlb/internal/core"
	"congestlb/internal/lbgraph"
)

func TestSplitBestAchievesOneOverT(t *testing.T) {
	// The limitation protocol must achieve ≥ 1/t of the optimum with only
	// t·64 bits, on both promise cases and for several t.
	for _, p := range []lbgraph.Params{
		{T: 2, Alpha: 1, Ell: 3},
		{T: 3, Alpha: 1, Ell: 4},
		lbgraph.FigureParams(4),
	} {
		l, err := lbgraph.NewLinear(p)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(p.T)))
		for trial := 0; trial < 3; trial++ {
			in, _, err := bitvec.RandomPromiseInstance(p.K(), p.T, bitvec.GenOptions{Density: 0.4}, 0.5, rng)
			if err != nil {
				t.Fatal(err)
			}
			inst, err := l.Build(in)
			if err != nil {
				t.Fatal(err)
			}
			report, err := core.SplitBest(inst)
			if err != nil {
				t.Fatal(err)
			}
			if report.Bits != int64(p.T)*64 {
				t.Fatalf("%v: protocol cost %d bits, want %d", p, report.Bits, p.T*64)
			}
			if report.Best > report.Opt {
				t.Fatalf("%v: local best %d exceeds global opt %d", p, report.Best, report.Opt)
			}
			floor := 1 / float64(p.T)
			if report.Ratio() < floor {
				t.Fatalf("%v: ratio %f below 1/t = %f", p, report.Ratio(), floor)
			}
			if len(report.PlayerValues) != p.T {
				t.Fatalf("%v: %d player values", p, len(report.PlayerValues))
			}
		}
	}
}

func TestSplitBestTwoPartyHalf(t *testing.T) {
	// At t=2 the protocol always achieves ≥ 1/2 — the exact limitation the
	// paper's Section 1 describes for the two-party framework.
	p := lbgraph.Params{T: 2, Alpha: 1, Ell: 3}
	l, err := lbgraph.NewLinear(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 6; trial++ {
		in, _, err := bitvec.RandomPromiseInstance(p.K(), p.T, bitvec.GenOptions{Density: 0.5}, 0.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := l.Build(in)
		if err != nil {
			t.Fatal(err)
		}
		report, err := core.SplitBest(inst)
		if err != nil {
			t.Fatal(err)
		}
		if report.Ratio() < 0.5 {
			t.Fatalf("trial %d: two-party split-best ratio %f < 1/2", trial, report.Ratio())
		}
	}
}
