package experiments

import (
	"fmt"

	"congestlb/internal/bitvec"
	"congestlb/internal/code"
	"congestlb/internal/core"
	"congestlb/internal/lbgraph"
)

// The ablation experiment removes one design choice of the construction at
// a time and shows the gap predicate breaking — mechanically confirming
// that the error-correcting code, the inter-copy wiring, and the
// input-dependent weights are each load-bearing in the proofs.

func init() {
	register(Experiment{
		ID:       "ablations",
		Title:    "Design-choice ablations: code distance, wiring, and weights are all load-bearing",
		PaperRef: "Properties 1-3 / Claims 1-5 (what breaks without each ingredient)",
		Run:      runAblations,
	})
}

func runAblations(w *Ctx) error {
	var c check

	// The disjoint input used throughout: one weight-ℓ node per player at
	// different indices.
	buildDisjoint := func(p lbgraph.Params) bitvec.Inputs {
		x1 := bitvec.New(p.K())
		x1.Set(0)
		x2 := bitvec.New(p.K())
		x2.Set(1)
		return bitvec.Inputs{x1, x2}
	}

	// solveOpt is the per-variant instance job body: build the variant's
	// instance through the attributed cache session and solve for the
	// optimum, into the given slot.
	solveOpt := func(fam interface {
		BuildWith(*lbgraph.CacheSession, bitvec.Inputs) (core.Instance, error)
	}, in bitvec.Inputs, slot *int64) func() error {
		return func() error {
			inst, err := fam.BuildWith(w.Builds, in)
			if err != nil {
				return err
			}
			opt, err := w.exactInstanceOpt(inst)
			if err != nil {
				return err
			}
			*slot = opt
			return nil
		}
	}

	tab := newTable("ablation", "params", "disjoint-case OPT", "Claim 5 bound", "gap intact?")

	// Every ablation variant is an independent instance job; the builds
	// and solves overlap on the pool, and the table flushes in the fixed
	// presentation order after Gather.
	pBase := lbgraph.Params{T: 2, Alpha: 1, Ell: 4}
	faithful, err := lbgraph.NewLinear(pBase)
	if err != nil {
		return err
	}
	var optF int64
	w.Go(solveOpt(faithful, buildDisjoint(pBase), &optF))

	// Ablation 1: replace Reed-Solomon with a distance-1 code.
	weak, err := code.NewFirstSymbol(pBase.Q(), pBase.M())
	if err != nil {
		return err
	}
	weakFam, err := lbgraph.NewLinearVariant(pBase, lbgraph.LinearOptions{Code: weak})
	if err != nil {
		return err
	}
	var optW int64
	w.Go(solveOpt(weakFam, buildDisjoint(pBase), &optW))

	// Ablation 2: drop the inter-copy wiring.
	pWire := lbgraph.Params{T: 2, Alpha: 1, Ell: 3}
	noWire, err := lbgraph.NewLinearVariant(pWire, lbgraph.LinearOptions{OmitInterCopyWiring: true})
	if err != nil {
		return err
	}
	var optN int64
	w.Go(solveOpt(noWire, buildDisjoint(pWire), &optN))

	// Ablation 3: uniform weights — the two cases become indistinguishable.
	uniform, err := lbgraph.NewLinearVariant(pWire, lbgraph.LinearOptions{UniformWeights: true})
	if err != nil {
		return err
	}
	inter := bitvec.Inputs{bitvec.New(pWire.K()), bitvec.New(pWire.K())}
	inter[0].Set(2)
	inter[1].Set(2) // uniquely intersecting at index 2
	var optUI, optUD int64
	w.Go(solveOpt(uniform, inter, &optUI))
	w.Go(solveOpt(uniform, buildDisjoint(pWire), &optUD))

	if err := w.Gather(); err != nil {
		return err
	}

	c.assert(optF <= pBase.LinearSmallMax(), "faithful construction broke Claim 5")
	tab.add("(none — faithful)", pBase.String(), optF, pBase.LinearSmallMax(), optF <= pBase.LinearSmallMax())
	c.assert(optW > pBase.LinearSmallMax(),
		"weak code should break the bound (got %d ≤ %d)", optW, pBase.LinearSmallMax())
	tab.add("distance-1 code (Property 2 gone)", pBase.String(), optW, pBase.LinearSmallMax(), optW <= pBase.LinearSmallMax())
	c.assert(optN >= pWire.LinearBeta(),
		"no-wiring disjoint OPT %d should reach Beta %d", optN, pWire.LinearBeta())
	tab.add("no inter-copy wiring", pWire.String(),
		fmt.Sprintf("%d (reaches Beta=%d!)", optN, pWire.LinearBeta()),
		pWire.LinearSmallMax(), optN <= pWire.LinearSmallMax())
	c.assert(optUI == optUD, "uniform weights: cases still differ (%d vs %d)", optUI, optUD)
	tab.add("uniform weights", pWire.String(),
		fmt.Sprintf("intersecting %d = disjoint %d", optUI, optUD), "—", false)

	tab.write(w)
	fmt.Fprintf(w, "Each removal breaks the reduction in the exact way the proofs predict: a weak code "+
		"voids Property 2's matching (the disjoint optimum overshoots Claim 5); removing the wiring lets "+
		"every player keep a full Property-1 set (the disjoint optimum reaches Beta); removing the weights "+
		"decouples the graph from x̄ entirely (the cases collapse).\n\n")

	// Quadratic-family ablations: the input-edge encoding is the coupling.
	qp := lbgraph.FigureParams(2)
	qTab := newTable("quadratic ablation", "intersecting-case OPT", "Claim 6 threshold β", "witness survives?")

	interIn := func() bitvec.Inputs {
		in := make(bitvec.Inputs, qp.T)
		for i := range in {
			m := bitvec.NewMatrix(qp.K())
			m.SetAll()
			in[i] = m.Vector()
		}
		return in // all-ones: uniquely intersecting at every pair; no input edges
	}

	faithfulQ, err := lbgraph.NewQuadratic(qp)
	if err != nil {
		return err
	}
	var optQ int64
	w.Go(solveOpt(faithfulQ, interIn(), &optQ))

	inverted, err := lbgraph.NewQuadraticVariant(qp, lbgraph.QuadraticOptions{InvertInputEdges: true})
	if err != nil {
		return err
	}
	var optInv int64
	w.Go(solveOpt(inverted, interIn(), &optInv))

	noInputs, err := lbgraph.NewQuadraticVariant(qp, lbgraph.QuadraticOptions{OmitInputEdges: true})
	if err != nil {
		return err
	}
	// With no input edges the graph is x̄-independent: build with a
	// pairwise-disjoint input and observe the intersecting-case optimum
	// anyway.
	disIn := make(bitvec.Inputs, qp.T)
	for i := range disIn {
		disIn[i] = bitvec.New(qp.K() * qp.K())
	}
	var optNo int64
	w.Go(solveOpt(noInputs, disIn, &optNo))

	if err := w.Gather(); err != nil {
		return err
	}

	c.assert(optQ >= qp.QuadraticBeta(), "faithful quadratic lost its witness")
	qTab.add("(none — faithful)", optQ, qp.QuadraticBeta(), optQ >= qp.QuadraticBeta())
	c.assert(optInv < qp.QuadraticBeta(),
		"inverted input edges should destroy the witness (got %d ≥ %d)", optInv, qp.QuadraticBeta())
	qTab.add("input edges on 1 bits (inverted)", optInv, qp.QuadraticBeta(), optInv >= qp.QuadraticBeta())
	c.assert(optNo >= qp.QuadraticBeta(),
		"without input edges even disjoint inputs should reach Beta (got %d)", optNo)
	qTab.add("no input edges (disjoint input!)", optNo, qp.QuadraticBeta(), optNo >= qp.QuadraticBeta())

	qTab.write(w)
	fmt.Fprintf(w, "In the quadratic family the inputs act only through the A^(i,1)×A^(i,2) edges: "+
		"inverting the encoding wires the witness pair together exactly when it should be free "+
		"(the intersecting case collapses), and dropping the edges makes the disjoint case as large "+
		"as the intersecting one — either way the predicate stops computing pairwise disjointness.\n")
	return c.err()
}
