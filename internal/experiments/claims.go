package experiments

import (
	"fmt"
	"math/rand"

	"congestlb/internal/bitvec"
	"congestlb/internal/code"
	"congestlb/internal/core"
	"congestlb/internal/lbgraph"
	"congestlb/internal/mis"
)

// The claim/lemma experiments verify the combinatorial heart of the paper
// on real built instances: exact MaxIS values against the claimed
// thresholds, across random promise inputs.

func init() {
	register(Experiment{
		ID:       "properties",
		Title:    "Structural Properties 1-3 of the fixed construction",
		PaperRef: "Properties 1, 2, 3 (Section 4.1)",
		Run:      runProperties,
	})
	register(Experiment{
		ID:       "lemma1",
		Title:    "Two-party warm-up: gap 4ℓ+2α vs 3ℓ+2α+1 ⇒ (3/4+ε)-hardness",
		PaperRef: "Lemma 1, Claims 1-2 (Section 4.2.1)",
		Run:      runLemma1,
	})
	register(Experiment{
		ID:       "lemma2",
		Title:    "Hardness amplification: t(2ℓ+α) vs (t+1)ℓ+αt² ⇒ (1/2+ε)-hardness",
		PaperRef: "Lemma 2, Claims 3-5 (Section 4.2.2)",
		Run:      runLemma2,
	})
	register(Experiment{
		ID:       "lemma3",
		Title:    "Quadratic family: t(4ℓ+2α) vs 3(t+1)ℓ+3αt³ ⇒ (3/4+ε)-hardness",
		PaperRef: "Lemma 3, Claims 6-7 (Section 5.2)",
		Run:      runLemma3,
	})
	register(Experiment{
		ID:       "codes",
		Title:    "Large-distance codes: Reed-Solomon achieves d = M−L",
		PaperRef: "Definition 3, Theorem 4 (Section 2.2)",
		Run:      runCodes,
	})
}

// exactInstanceOpt solves an instance with its natural cover through the
// context's solve session (its method-value form is a core.AuditGap
// oracle). Callers consume the weight alone, so the solve is flagged
// WeightOnly — the parallel engine skips its canonicalisation tail.
func (w *Ctx) exactInstanceOpt(inst core.Instance) (int64, error) {
	sol, err := w.Solve.Exact(inst.Graph, mis.Options{CliqueCover: inst.CliqueCover, WeightOnly: true})
	if err != nil {
		return 0, err
	}
	return sol.Weight, nil
}

func runProperties(w *Ctx) error {
	var c check
	tab := newTable("params", "Property 1 (witness IS)", "Property 2 (matching ≥ ℓ)", "Property 3 (≤ α overlaps)")
	params := []lbgraph.Params{
		lbgraph.FigureParams(2),
		lbgraph.FigureParams(3),
		{T: 2, Alpha: 2, Ell: 2},
		{T: 3, Alpha: 1, Ell: 4},
	}
	// One job per parameterisation: all three property checks of a params
	// value are independent of the other sweep points, and the per-point
	// RNG is seeded inside the job (the sequential stream is one fixed
	// seed per point either way).
	type propResult struct {
		p1, p2, pairs int
		p3            bool
	}
	results := make([]propResult, len(params))
	for pi, p := range params {
		l, err := lbgraph.NewLinear(p)
		if err != nil {
			return err
		}
		w.Go(func() error {
			inst, err := l.BuildFixedWith(w.Builds)
			if err != nil {
				return err
			}
			res := propResult{}
			// Property 1 at every m.
			for m := 0; m < p.K(); m++ {
				var set []int
				for i := 0; i < p.T; i++ {
					set = append(set, l.ANode(i, m))
					set = append(set, l.CodeNodes(i, m)...)
				}
				if inst.Graph.IsIndependentSet(set) {
					res.p1++
				}
			}

			// Property 2 at every pair (via codeword distance + explicit edges).
			for m1 := 0; m1 < p.K(); m1++ {
				for m2 := m1 + 1; m2 < p.K(); m2++ {
					res.pairs++
					w1, w2 := l.Codeword(m1), l.Codeword(m2)
					matching := 0
					for h := 0; h < p.M(); h++ {
						if w1[h] != w2[h] && inst.Graph.HasEdge(l.SigmaNode(0, h, w1[h]-1), l.SigmaNode(1, h, w2[h]-1)) {
							matching++
						}
					}
					if matching >= p.Ell {
						res.p2++
					}
				}
			}

			// Property 3 on exact optima of random weighted instances.
			rng := rand.New(rand.NewSource(1))
			res.p3 = true
			for trial := 0; trial < 2; trial++ {
				in, _, err := bitvec.RandomPromiseInstance(p.K(), p.T, bitvec.GenOptions{Density: 0.5}, 0.5, rng)
				if err != nil {
					return err
				}
				built, err := l.BuildWith(w.Builds, in)
				if err != nil {
					return err
				}
				sol, err := w.Solve.Exact(built.Graph, mis.Options{CliqueCover: built.CliqueCover})
				if err != nil {
					return err
				}
				inSet := map[int]bool{}
				for _, u := range sol.Set {
					inSet[u] = true
				}
				for m1 := 0; m1 < p.K() && res.p3; m1++ {
					for m2 := 0; m2 < p.K() && res.p3; m2++ {
						if m1 == m2 {
							continue
						}
						w1, w2 := l.Codeword(m1), l.Codeword(m2)
						both := 0
						for h := 0; h < p.M(); h++ {
							if inSet[l.SigmaNode(0, h, w1[h]-1)] && inSet[l.SigmaNode(1, h, w2[h]-1)] {
								both++
							}
						}
						if both > p.Alpha {
							res.p3 = false
						}
					}
				}
			}
			results[pi] = res
			return nil
		})
	}
	if err := w.Gather(); err != nil {
		return err
	}
	for pi, p := range params {
		res := results[pi]
		c.assert(res.p1 == p.K(), "%v: Property 1 held for %d/%d messages", p, res.p1, p.K())
		c.assert(res.p2 == res.pairs, "%v: Property 2 held for %d/%d pairs", p, res.p2, res.pairs)
		c.assert(res.p3, "%v: Property 3 violated", p)
		tab.add(p.String(), fmt.Sprintf("%d/%d", res.p1, p.K()), fmt.Sprintf("%d/%d", res.p2, res.pairs), res.p3)
	}
	tab.write(w)
	return c.err()
}

func runLemma1(w *Ctx) error {
	var c check
	p := lbgraph.Params{T: 2, Alpha: 1, Ell: 3}
	l, err := lbgraph.NewLinear(p)
	if err != nil {
		return err
	}
	ell, alpha := int64(p.Ell), int64(p.Alpha)
	claim1 := 4*ell + 2*alpha
	claim2 := 3*ell + 2*alpha + 1

	rng := rand.New(rand.NewSource(11))
	const trials = 10
	// Inputs are drawn sequentially in the original interleaved order
	// (intersecting then disjoint per trial, preserving the RNG stream);
	// each trial's two build-and-solve pairs run as one job.
	type trialOpts struct{ inter, dis int64 }
	opts := make([]trialOpts, trials)
	for trial := 0; trial < trials; trial++ {
		inter, _, err := bitvec.RandomUniquelyIntersecting(p.K(), p.T, bitvec.GenOptions{Density: 0.4}, rng)
		if err != nil {
			return err
		}
		dis, err := bitvec.RandomPairwiseDisjoint(p.K(), p.T, bitvec.GenOptions{Density: 0.4}, rng)
		if err != nil {
			return err
		}
		w.Go(func() error {
			instI, err := l.BuildWith(w.Builds, inter)
			if err != nil {
				return err
			}
			optI, err := w.exactInstanceOpt(instI)
			if err != nil {
				return err
			}
			instD, err := l.BuildWith(w.Builds, dis)
			if err != nil {
				return err
			}
			optD, err := w.exactInstanceOpt(instD)
			if err != nil {
				return err
			}
			opts[trial] = trialOpts{inter: optI, dis: optD}
			return nil
		})
	}
	if err := w.Gather(); err != nil {
		return err
	}
	minInter, maxDis := int64(1<<62), int64(0)
	for _, o := range opts {
		if o.inter < minInter {
			minInter = o.inter
		}
		if o.dis > maxDis {
			maxDis = o.dis
		}
	}
	c.assert(minInter >= claim1, "Claim 1 violated: min intersecting OPT %d < %d", minInter, claim1)
	c.assert(maxDis <= claim2, "Claim 2 violated: max disjoint OPT %d > %d", maxDis, claim2)

	tab := newTable("quantity", "paper", "measured")
	tab.add("intersecting OPT ≥ 4ℓ+2α", claim1, fmt.Sprintf("min %d over %d trials", minInter, trials))
	tab.add("disjoint OPT ≤ 3ℓ+2α+1", claim2, fmt.Sprintf("max %d over %d trials", maxDis, trials))
	tab.add("separation ratio γ", fmt.Sprintf("%.3f (→3/4 as ℓ/α→∞)", float64(claim2)/float64(claim1)),
		fmt.Sprintf("%.3f", float64(maxDis)/float64(minInter)))
	tab.write(w)
	fmt.Fprintf(w, "Limit behaviour: (3ℓ+2α)/(4ℓ+2α) → 3/4, giving (3/4+ε)-hardness for any ε>0 (Lemma 1).\n")
	return c.err()
}

func runLemma2(w *Ctx) error {
	var c check
	// Formula table: the γ thresholds as functions of t, in the ℓ/α→∞
	// limit and at buildable sizes.
	formula := newTable("t", "ε=2/t", "γ limit (t+1)/(2t)", "γ at ℓ=αt+1 (buildable)", "γ at ℓ=100α")
	for _, t := range []int{2, 3, 4, 6, 8, 16} {
		small := lbgraph.SmallestValidLinear(t, 1)
		big := lbgraph.Params{T: t, Alpha: 1, Ell: 100}
		formula.add(
			t,
			2.0/float64(t),
			float64(t+1)/float64(2*t),
			float64(small.LinearSmallMax())/float64(small.LinearBeta()),
			float64(big.LinearSmallMax())/float64(big.LinearBeta()),
		)
	}
	formula.write(w)
	fmt.Fprintf(w, "As t grows the separable factor approaches 1/2 — the content of Theorem 1 via t = 2/ε (Lemma 2).\n\n")

	// Mechanical verification at buildable sizes: one job per
	// parameterisation — each sweep point seeds its own RNG, so the whole
	// trial loop moves into the job.
	params := []lbgraph.Params{
		lbgraph.SmallestValidLinear(3, 1),
		{T: 2, Alpha: 1, Ell: 3},
	}
	type gapRange struct{ minI, maxD int64 }
	ranges := make([]gapRange, len(params))
	for pi, p := range params {
		l, err := lbgraph.NewLinear(p)
		if err != nil {
			return err
		}
		w.Go(func() error {
			rng := rand.New(rand.NewSource(int64(p.T) * 7))
			r := gapRange{minI: 1 << 62, maxD: 0}
			const trials = 5
			for trial := 0; trial < trials; trial++ {
				inter, _, err := bitvec.RandomUniquelyIntersecting(p.K(), p.T, bitvec.GenOptions{Density: 0.3}, rng)
				if err != nil {
					return err
				}
				instI, err := l.BuildWith(w.Builds, inter)
				if err != nil {
					return err
				}
				optI, err := core.AuditGapBuilt(l, inter, instI, w.exactInstanceOpt)
				if err != nil {
					return fmt.Errorf("%v intersecting: %w", p, err)
				}
				if optI < r.minI {
					r.minI = optI
				}
				dis, err := bitvec.RandomPairwiseDisjoint(p.K(), p.T, bitvec.GenOptions{Density: 0.3}, rng)
				if err != nil {
					return err
				}
				instD, err := l.BuildWith(w.Builds, dis)
				if err != nil {
					return err
				}
				optD, err := core.AuditGapBuilt(l, dis, instD, w.exactInstanceOpt)
				if err != nil {
					return fmt.Errorf("%v disjoint: %w", p, err)
				}
				if optD > r.maxD {
					r.maxD = optD
				}
			}
			ranges[pi] = r
			return nil
		})
	}
	if err := w.Gather(); err != nil {
		return err
	}
	measured := newTable("params", "case", "Beta / SmallMax", "exact OPT range", "verdict")
	for pi, p := range params {
		r := ranges[pi]
		c.assert(r.minI >= p.LinearBeta(), "%v: Claim 3 violated (%d < %d)", p, r.minI, p.LinearBeta())
		c.assert(r.maxD <= p.LinearSmallMax(), "%v: Claim 5 violated (%d > %d)", p, r.maxD, p.LinearSmallMax())
		measured.add(p.String(), "intersecting", fmt.Sprintf("β=%d", p.LinearBeta()), fmt.Sprintf("min %d", r.minI), "Claim 3 ✓")
		measured.add(p.String(), "disjoint", fmt.Sprintf("γβ=%d", p.LinearSmallMax()), fmt.Sprintf("max %d", r.maxD), "Claim 5 ✓")
	}
	measured.write(w)
	return c.err()
}

func runLemma3(w *Ctx) error {
	var c check
	formula := newTable("t", "ε", "γ limit 3(t+1)/(4t)", "γ at ℓ=100αt³")
	for _, t := range []int{2, 4, 8, 14, 32} {
		big := lbgraph.Params{T: t, Alpha: 1, Ell: 100 * t * t * t}
		formula.add(
			t,
			3.0/(4.0*float64(t+1)),
			3.0*float64(t+1)/(4.0*float64(t)),
			float64(big.QuadraticSmallMax())/float64(big.QuadraticBeta()),
		)
	}
	formula.write(w)
	fmt.Fprintf(w, "As t grows the separable factor approaches 3/4 — the content of Theorem 2 via t = 3/(4ε)−1 (Lemma 3).\n\n")

	// Mechanical verification of Claims 6-7 at buildable sizes: one job
	// per parameterisation, per-point RNG seeded inside the job.
	params := []lbgraph.Params{lbgraph.FigureParams(2), lbgraph.FigureParams(3)}
	type gapRange struct{ minI, maxD int64 }
	ranges := make([]gapRange, len(params))
	for pi, p := range params {
		f, err := lbgraph.NewQuadratic(p)
		if err != nil {
			return err
		}
		w.Go(func() error {
			rng := rand.New(rand.NewSource(int64(p.T) * 13))
			r := gapRange{minI: 1 << 62, maxD: 0}
			const trials = 3
			for trial := 0; trial < trials; trial++ {
				inter, _, err := bitvec.RandomUniquelyIntersecting(f.InputBits(), p.T, bitvec.GenOptions{Density: 0.3}, rng)
				if err != nil {
					return err
				}
				instI, err := f.BuildWith(w.Builds, inter)
				if err != nil {
					return err
				}
				optI, err := w.exactInstanceOpt(instI)
				if err != nil {
					return err
				}
				if optI < r.minI {
					r.minI = optI
				}
				dis, err := bitvec.RandomPairwiseDisjoint(f.InputBits(), p.T, bitvec.GenOptions{Density: 0.3}, rng)
				if err != nil {
					return err
				}
				instD, err := f.BuildWith(w.Builds, dis)
				if err != nil {
					return err
				}
				optD, err := w.exactInstanceOpt(instD)
				if err != nil {
					return err
				}
				if optD > r.maxD {
					r.maxD = optD
				}
			}
			ranges[pi] = r
			return nil
		})
	}
	if err := w.Gather(); err != nil {
		return err
	}
	measured := newTable("params", "n", "min intersecting OPT (≥ β?)", "max disjoint OPT (≤ bound?)")
	for pi, p := range params {
		r := ranges[pi]
		c.assert(r.minI >= p.QuadraticBeta(), "%v: Claim 6 violated (%d < %d)", p, r.minI, p.QuadraticBeta())
		c.assert(r.maxD <= p.QuadraticSmallMax(), "%v: Claim 7 violated (%d > %d)", p, r.maxD, p.QuadraticSmallMax())
		measured.add(p.String(), p.QuadraticN(),
			fmt.Sprintf("%d ≥ %d ✓", r.minI, p.QuadraticBeta()),
			fmt.Sprintf("%d ≤ %d ✓", r.maxD, p.QuadraticSmallMax()))
	}
	measured.write(w)
	return c.err()
}

func runCodes(w *Ctx) error {
	var c check
	tab := newTable("L=α", "M=ℓ+α", "q", "messages", "guaranteed d=M−L", "measured min distance", "mode")
	presets := []struct {
		l, m int
		q    uint64
	}{
		{l: 1, m: 3, q: 3},
		{l: 1, m: 5, q: 5},
		{l: 2, m: 4, q: 5},
		{l: 2, m: 8, q: 11},
		{l: 3, m: 9, q: 13},
		{l: 2, m: 16, q: 17},
	}
	rng := rand.New(rand.NewSource(17))
	type codeResult struct {
		messages int
		report   code.AuditReport
		mode     string
	}
	results := make([]codeResult, len(presets))
	for i, pr := range presets {
		rs, err := code.NewReedSolomon(pr.l, pr.m, pr.q, 0)
		if err != nil {
			return err
		}
		if rs.NumMessages() <= 4096 {
			// Exhaustive audits are RNG-free and shard as jobs.
			w.Go(func() error {
				report, err := code.AuditExhaustive(rs)
				if err != nil {
					return err
				}
				results[i] = codeResult{messages: rs.NumMessages(), report: report, mode: "exhaustive"}
				return nil
			})
			continue
		}
		// Sampled audits consume the shared RNG and must stay on the
		// submission goroutine to keep the stream sequential.
		report, err := code.AuditSampled(rs, 5000, rng)
		if err != nil {
			return err
		}
		results[i] = codeResult{messages: rs.NumMessages(), report: report, mode: "sampled(5000)"}
	}
	if err := w.Gather(); err != nil {
		return err
	}
	for i, pr := range presets {
		res := results[i]
		want := pr.m - pr.l
		c.assert(res.report.MinDistance >= want,
			"RS(L=%d,M=%d,q=%d): min distance %d < %d", pr.l, pr.m, pr.q, res.report.MinDistance, want)
		tab.add(pr.l, pr.m, pr.q, res.messages, want, res.report.MinDistance, res.mode)
	}
	tab.write(w)
	fmt.Fprintf(w, "Reed-Solomon over GF(q) with the fixed offset x^L meets Theorem 4's distance bound (achieving M−L+1).\n")
	return c.err()
}
