package experiments

import (
	"fmt"
	"math/rand"

	"congestlb/internal/bitvec"
	"congestlb/internal/code"
	"congestlb/internal/core"
	"congestlb/internal/lbgraph"
	"congestlb/internal/mis"
)

// The claim/lemma experiments verify the combinatorial heart of the paper
// on real built instances: exact MaxIS values against the claimed
// thresholds, across random promise inputs.

func init() {
	register(Experiment{
		ID:       "properties",
		Title:    "Structural Properties 1-3 of the fixed construction",
		PaperRef: "Properties 1, 2, 3 (Section 4.1)",
		Run:      runProperties,
	})
	register(Experiment{
		ID:       "lemma1",
		Title:    "Two-party warm-up: gap 4ℓ+2α vs 3ℓ+2α+1 ⇒ (3/4+ε)-hardness",
		PaperRef: "Lemma 1, Claims 1-2 (Section 4.2.1)",
		Run:      runLemma1,
	})
	register(Experiment{
		ID:       "lemma2",
		Title:    "Hardness amplification: t(2ℓ+α) vs (t+1)ℓ+αt² ⇒ (1/2+ε)-hardness",
		PaperRef: "Lemma 2, Claims 3-5 (Section 4.2.2)",
		Run:      runLemma2,
	})
	register(Experiment{
		ID:       "lemma3",
		Title:    "Quadratic family: t(4ℓ+2α) vs 3(t+1)ℓ+3αt³ ⇒ (3/4+ε)-hardness",
		PaperRef: "Lemma 3, Claims 6-7 (Section 5.2)",
		Run:      runLemma3,
	})
	register(Experiment{
		ID:       "codes",
		Title:    "Large-distance codes: Reed-Solomon achieves d = M−L",
		PaperRef: "Definition 3, Theorem 4 (Section 2.2)",
		Run:      runCodes,
	})
}

// exactInstanceOpt solves an instance with its natural cover through the
// context's solve session (its method-value form is a core.AuditGap
// oracle).
func (w *Ctx) exactInstanceOpt(inst core.Instance) (int64, error) {
	sol, err := w.Solve.Exact(inst.Graph, mis.Options{CliqueCover: inst.CliqueCover})
	if err != nil {
		return 0, err
	}
	return sol.Weight, nil
}

func runProperties(w *Ctx) error {
	var c check
	tab := newTable("params", "Property 1 (witness IS)", "Property 2 (matching ≥ ℓ)", "Property 3 (≤ α overlaps)")
	for _, p := range []lbgraph.Params{
		lbgraph.FigureParams(2),
		lbgraph.FigureParams(3),
		{T: 2, Alpha: 2, Ell: 2},
		{T: 3, Alpha: 1, Ell: 4},
	} {
		l, err := lbgraph.NewLinear(p)
		if err != nil {
			return err
		}
		inst, err := l.BuildFixed()
		if err != nil {
			return err
		}
		// Property 1 at every m.
		p1 := 0
		for m := 0; m < p.K(); m++ {
			var set []int
			for i := 0; i < p.T; i++ {
				set = append(set, l.ANode(i, m))
				set = append(set, l.CodeNodes(i, m)...)
			}
			if inst.Graph.IsIndependentSet(set) {
				p1++
			}
		}
		c.assert(p1 == p.K(), "%v: Property 1 held for %d/%d messages", p, p1, p.K())

		// Property 2 at every pair (via codeword distance + explicit edges).
		p2, pairs := 0, 0
		for m1 := 0; m1 < p.K(); m1++ {
			for m2 := m1 + 1; m2 < p.K(); m2++ {
				pairs++
				w1, w2 := l.Codeword(m1), l.Codeword(m2)
				matching := 0
				for h := 0; h < p.M(); h++ {
					if w1[h] != w2[h] && inst.Graph.HasEdge(l.SigmaNode(0, h, w1[h]-1), l.SigmaNode(1, h, w2[h]-1)) {
						matching++
					}
				}
				if matching >= p.Ell {
					p2++
				}
			}
		}
		c.assert(p2 == pairs, "%v: Property 2 held for %d/%d pairs", p, p2, pairs)

		// Property 3 on exact optima of random weighted instances.
		rng := rand.New(rand.NewSource(1))
		p3 := true
		for trial := 0; trial < 2; trial++ {
			in, _, err := bitvec.RandomPromiseInstance(p.K(), p.T, bitvec.GenOptions{Density: 0.5}, 0.5, rng)
			if err != nil {
				return err
			}
			built, err := l.Build(in)
			if err != nil {
				return err
			}
			sol, err := w.Solve.Exact(built.Graph, mis.Options{CliqueCover: built.CliqueCover})
			if err != nil {
				return err
			}
			inSet := map[int]bool{}
			for _, u := range sol.Set {
				inSet[u] = true
			}
			for m1 := 0; m1 < p.K() && p3; m1++ {
				for m2 := 0; m2 < p.K() && p3; m2++ {
					if m1 == m2 {
						continue
					}
					w1, w2 := l.Codeword(m1), l.Codeword(m2)
					both := 0
					for h := 0; h < p.M(); h++ {
						if inSet[l.SigmaNode(0, h, w1[h]-1)] && inSet[l.SigmaNode(1, h, w2[h]-1)] {
							both++
						}
					}
					if both > p.Alpha {
						p3 = false
					}
				}
			}
		}
		c.assert(p3, "%v: Property 3 violated", p)
		tab.add(p.String(), fmt.Sprintf("%d/%d", p1, p.K()), fmt.Sprintf("%d/%d", p2, pairs), p3)
	}
	tab.write(w)
	return c.err()
}

func runLemma1(w *Ctx) error {
	var c check
	p := lbgraph.Params{T: 2, Alpha: 1, Ell: 3}
	l, err := lbgraph.NewLinear(p)
	if err != nil {
		return err
	}
	ell, alpha := int64(p.Ell), int64(p.Alpha)
	claim1 := 4*ell + 2*alpha
	claim2 := 3*ell + 2*alpha + 1

	rng := rand.New(rand.NewSource(11))
	const trials = 10
	minInter, maxDis := int64(1<<62), int64(0)
	for trial := 0; trial < trials; trial++ {
		inter, _, err := bitvec.RandomUniquelyIntersecting(p.K(), p.T, bitvec.GenOptions{Density: 0.4}, rng)
		if err != nil {
			return err
		}
		instI, err := l.Build(inter)
		if err != nil {
			return err
		}
		optI, err := w.exactInstanceOpt(instI)
		if err != nil {
			return err
		}
		if optI < minInter {
			minInter = optI
		}
		dis, err := bitvec.RandomPairwiseDisjoint(p.K(), p.T, bitvec.GenOptions{Density: 0.4}, rng)
		if err != nil {
			return err
		}
		instD, err := l.Build(dis)
		if err != nil {
			return err
		}
		optD, err := w.exactInstanceOpt(instD)
		if err != nil {
			return err
		}
		if optD > maxDis {
			maxDis = optD
		}
	}
	c.assert(minInter >= claim1, "Claim 1 violated: min intersecting OPT %d < %d", minInter, claim1)
	c.assert(maxDis <= claim2, "Claim 2 violated: max disjoint OPT %d > %d", maxDis, claim2)

	tab := newTable("quantity", "paper", "measured")
	tab.add("intersecting OPT ≥ 4ℓ+2α", claim1, fmt.Sprintf("min %d over %d trials", minInter, trials))
	tab.add("disjoint OPT ≤ 3ℓ+2α+1", claim2, fmt.Sprintf("max %d over %d trials", maxDis, trials))
	tab.add("separation ratio γ", fmt.Sprintf("%.3f (→3/4 as ℓ/α→∞)", float64(claim2)/float64(claim1)),
		fmt.Sprintf("%.3f", float64(maxDis)/float64(minInter)))
	tab.write(w)
	fmt.Fprintf(w, "Limit behaviour: (3ℓ+2α)/(4ℓ+2α) → 3/4, giving (3/4+ε)-hardness for any ε>0 (Lemma 1).\n")
	return c.err()
}

func runLemma2(w *Ctx) error {
	var c check
	// Formula table: the γ thresholds as functions of t, in the ℓ/α→∞
	// limit and at buildable sizes.
	formula := newTable("t", "ε=2/t", "γ limit (t+1)/(2t)", "γ at ℓ=αt+1 (buildable)", "γ at ℓ=100α")
	for _, t := range []int{2, 3, 4, 6, 8, 16} {
		small := lbgraph.SmallestValidLinear(t, 1)
		big := lbgraph.Params{T: t, Alpha: 1, Ell: 100}
		formula.add(
			t,
			2.0/float64(t),
			float64(t+1)/float64(2*t),
			float64(small.LinearSmallMax())/float64(small.LinearBeta()),
			float64(big.LinearSmallMax())/float64(big.LinearBeta()),
		)
	}
	formula.write(w)
	fmt.Fprintf(w, "As t grows the separable factor approaches 1/2 — the content of Theorem 1 via t = 2/ε (Lemma 2).\n\n")

	// Mechanical verification at buildable sizes.
	measured := newTable("params", "case", "Beta / SmallMax", "exact OPT range", "verdict")
	for _, p := range []lbgraph.Params{
		lbgraph.SmallestValidLinear(3, 1),
		{T: 2, Alpha: 1, Ell: 3},
	} {
		l, err := lbgraph.NewLinear(p)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(int64(p.T) * 7))
		var minI, maxD int64 = 1 << 62, 0
		const trials = 5
		for trial := 0; trial < trials; trial++ {
			inter, _, err := bitvec.RandomUniquelyIntersecting(p.K(), p.T, bitvec.GenOptions{Density: 0.3}, rng)
			if err != nil {
				return err
			}
			optI, err := core.AuditGap(l, inter, w.exactInstanceOpt)
			if err != nil {
				return fmt.Errorf("%v intersecting: %w", p, err)
			}
			if optI < minI {
				minI = optI
			}
			dis, err := bitvec.RandomPairwiseDisjoint(p.K(), p.T, bitvec.GenOptions{Density: 0.3}, rng)
			if err != nil {
				return err
			}
			optD, err := core.AuditGap(l, dis, w.exactInstanceOpt)
			if err != nil {
				return fmt.Errorf("%v disjoint: %w", p, err)
			}
			if optD > maxD {
				maxD = optD
			}
		}
		c.assert(minI >= p.LinearBeta(), "%v: Claim 3 violated (%d < %d)", p, minI, p.LinearBeta())
		c.assert(maxD <= p.LinearSmallMax(), "%v: Claim 5 violated (%d > %d)", p, maxD, p.LinearSmallMax())
		measured.add(p.String(), "intersecting", fmt.Sprintf("β=%d", p.LinearBeta()), fmt.Sprintf("min %d", minI), "Claim 3 ✓")
		measured.add(p.String(), "disjoint", fmt.Sprintf("γβ=%d", p.LinearSmallMax()), fmt.Sprintf("max %d", maxD), "Claim 5 ✓")
	}
	measured.write(w)
	return c.err()
}

func runLemma3(w *Ctx) error {
	var c check
	formula := newTable("t", "ε", "γ limit 3(t+1)/(4t)", "γ at ℓ=100αt³")
	for _, t := range []int{2, 4, 8, 14, 32} {
		big := lbgraph.Params{T: t, Alpha: 1, Ell: 100 * t * t * t}
		formula.add(
			t,
			3.0/(4.0*float64(t+1)),
			3.0*float64(t+1)/(4.0*float64(t)),
			float64(big.QuadraticSmallMax())/float64(big.QuadraticBeta()),
		)
	}
	formula.write(w)
	fmt.Fprintf(w, "As t grows the separable factor approaches 3/4 — the content of Theorem 2 via t = 3/(4ε)−1 (Lemma 3).\n\n")

	// Mechanical verification of Claims 6-7 at buildable sizes.
	measured := newTable("params", "n", "min intersecting OPT (≥ β?)", "max disjoint OPT (≤ bound?)")
	for _, p := range []lbgraph.Params{lbgraph.FigureParams(2), lbgraph.FigureParams(3)} {
		f, err := lbgraph.NewQuadratic(p)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(int64(p.T) * 13))
		var minI, maxD int64 = 1 << 62, 0
		const trials = 3
		for trial := 0; trial < trials; trial++ {
			inter, _, err := bitvec.RandomUniquelyIntersecting(f.InputBits(), p.T, bitvec.GenOptions{Density: 0.3}, rng)
			if err != nil {
				return err
			}
			instI, err := f.Build(inter)
			if err != nil {
				return err
			}
			optI, err := w.exactInstanceOpt(instI)
			if err != nil {
				return err
			}
			if optI < minI {
				minI = optI
			}
			dis, err := bitvec.RandomPairwiseDisjoint(f.InputBits(), p.T, bitvec.GenOptions{Density: 0.3}, rng)
			if err != nil {
				return err
			}
			instD, err := f.Build(dis)
			if err != nil {
				return err
			}
			optD, err := w.exactInstanceOpt(instD)
			if err != nil {
				return err
			}
			if optD > maxD {
				maxD = optD
			}
		}
		c.assert(minI >= p.QuadraticBeta(), "%v: Claim 6 violated (%d < %d)", p, minI, p.QuadraticBeta())
		c.assert(maxD <= p.QuadraticSmallMax(), "%v: Claim 7 violated (%d > %d)", p, maxD, p.QuadraticSmallMax())
		measured.add(p.String(), p.QuadraticN(),
			fmt.Sprintf("%d ≥ %d ✓", minI, p.QuadraticBeta()),
			fmt.Sprintf("%d ≤ %d ✓", maxD, p.QuadraticSmallMax()))
	}
	measured.write(w)
	return c.err()
}

func runCodes(w *Ctx) error {
	var c check
	tab := newTable("L=α", "M=ℓ+α", "q", "messages", "guaranteed d=M−L", "measured min distance", "mode")
	presets := []struct {
		l, m int
		q    uint64
	}{
		{l: 1, m: 3, q: 3},
		{l: 1, m: 5, q: 5},
		{l: 2, m: 4, q: 5},
		{l: 2, m: 8, q: 11},
		{l: 3, m: 9, q: 13},
		{l: 2, m: 16, q: 17},
	}
	rng := rand.New(rand.NewSource(17))
	for _, pr := range presets {
		rs, err := code.NewReedSolomon(pr.l, pr.m, pr.q, 0)
		if err != nil {
			return err
		}
		var report code.AuditReport
		mode := "exhaustive"
		if rs.NumMessages() <= 4096 {
			report, err = code.AuditExhaustive(rs)
		} else {
			mode = "sampled(5000)"
			report, err = code.AuditSampled(rs, 5000, rng)
		}
		if err != nil {
			return err
		}
		want := pr.m - pr.l
		c.assert(report.MinDistance >= want,
			"RS(L=%d,M=%d,q=%d): min distance %d < %d", pr.l, pr.m, pr.q, report.MinDistance, want)
		tab.add(pr.l, pr.m, pr.q, rs.NumMessages(), want, report.MinDistance, mode)
	}
	tab.write(w)
	fmt.Fprintf(w, "Reed-Solomon over GF(q) with the fixed offset x^L meets Theorem 4's distance bound (achieving M−L+1).\n")
	return c.err()
}
