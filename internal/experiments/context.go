package experiments

import (
	"context"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"congestlb/internal/bitvec"
	"congestlb/internal/congest"
	"congestlb/internal/core"
	"congestlb/internal/fault"
	"congestlb/internal/lbgraph"
	"congestlb/internal/mis/cache"
	"congestlb/internal/obs"
)

// This file is the execution machinery handed to every experiment: the
// Ctx (report writer + attributed cache sessions) and the intra-experiment
// job scheduler behind Ctx.Go/Ctx.Gather.
//
// # Intra-experiment sharding
//
// Experiment bodies decompose into independent per-instance jobs — one
// sweep point, one promise case, one ablation variant — following the
// per-instance decomposition of the paper's two-party reduction framing.
// The contract that keeps markdown reports byte-identical to a sequential
// run at any pool size:
//
//   - Input generation stays sequential. Anything consuming the
//     experiment's rand.Rand (or other ordered state) runs in the
//     submission loop on the experiment goroutine, so the RNG stream is
//     exactly the sequential one. Only the heavy, deterministic work —
//     build, simulate, solve — goes inside the job closure.
//   - Jobs never touch the Ctx writer, the shared table or the check
//     accumulator. Each job fills its own result slot (a captured
//     variable or slice element); after Gather the experiment flushes the
//     slots in sweep order.
//   - Gather returns the error of the earliest-submitted failing job —
//     the same error a sequential early-returning loop reports — so a
//     failing experiment renders the identical **FAILED** line.
//
// # Deadlock avoidance for nested jobs
//
// Experiments themselves run as jobs on the same Scheduler pool (the
// runner submits one job per experiment), so a naive "submit and block"
// Gather could strand every worker waiting on queued jobs no worker is
// free to run. The rule that makes the nesting safe: a gatherer never
// blocks on a job that is still queued — it claims the job (atomic
// queued→running transition) and runs it inline on its own goroutine,
// and only ever blocks on jobs some other worker is actively executing.
// Blocking therefore always waits on a goroutine that is making progress
// (instance jobs never gather further), so the pool cannot deadlock at
// any worker count, including one.

// jobQueued/jobRunning/jobDone are the instanceJob lifecycle states.
const (
	jobQueued int32 = iota
	jobRunning
	jobDone
)

// instanceJob is one unit of intra-experiment (or experiment-level) work
// submitted to a Scheduler.
type instanceJob struct {
	state atomic.Int32
	fn    func() error
	err   error
	done  chan struct{}
	// enqNS/om carry the scheduler's observability handles when a
	// registry is attached (SetRegistry): enqNS is the enqueue instant,
	// and whoever wins the claim books the enqueue→claim wait. Both stay
	// zero-valued — and cost nothing — without a registry.
	enqNS int64
	om    *schedMetrics
}

// claim runs the job if it is still queued, transitioning it to done.
// Exactly one caller — a pool worker or the job's gatherer — wins the
// queued→running race.
func (j *instanceJob) claim() bool {
	if !j.state.CompareAndSwap(jobQueued, jobRunning) {
		return false
	}
	if j.om != nil {
		// Booked at claim, not at queue pop: a gatherer-claimed job's wait
		// ends the moment the claim wins, even though its queue carcass is
		// popped (and discarded) by a worker later.
		j.om.wait.Observe(time.Now().UnixNano() - j.enqNS)
	}
	j.err = j.run()
	j.state.Store(jobDone)
	close(j.done)
	return true
}

// run executes the job's function with panic containment: a panicking
// job fails with a *fault.PanicError instead of killing the pool worker
// (or gatherer) that happened to claim it. This is the scheduler's half
// of the Lab-wide fault-isolation contract — a tenant's panic must never
// take down the shared pool.
func (j *instanceJob) run() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fault.NewPanicError("job", r)
			if j.om != nil {
				j.om.panics.Inc()
			}
		}
	}()
	fault.Stall(fault.WorkerStall, "sched")
	return j.fn()
}

// Scheduler is the shared worker pool that executes experiment-level jobs
// (the runner's) and per-instance jobs (Ctx.Go's). Instance jobs live on
// their own queue, drained before experiment-level jobs: a freed worker
// finishes the sweeps of experiments already in flight before opening a
// new experiment, so intra-experiment parallelism materialises even while
// an experiment backlog exists (with one FIFO the backlog would starve
// every sweep until fewer experiments than workers remained). See the
// file comment for the nesting/deadlock-avoidance rule.
type Scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	inst    []*instanceJob // per-instance jobs: drained first
	exp     []*instanceJob // experiment-level jobs
	closed  bool
	workers int
	wg      sync.WaitGroup
	// om holds the observability handles attached by SetRegistry.
	om atomic.Pointer[schedMetrics]
}

// schedMetrics is the scheduler's resolved registry handle set: the
// queue-depth gauge counts jobs sitting in the two queues (a job
// claimed inline by its gatherer still occupies a queue slot until a
// worker pops its carcass), the jobs counter counts every submission,
// and the wait histogram records enqueue→claim latency — the admission
// signal the planned congestlbd service needs.
type schedMetrics struct {
	depth  *obs.Gauge
	jobs   *obs.Counter
	wait   *obs.Histogram
	panics *obs.Counter
}

// SetRegistry attaches (or with nil detaches) an observability
// registry. Jobs already queued keep their old handles (or none);
// attach before submitting, as the Lab does at run start.
func (s *Scheduler) SetRegistry(r *obs.Registry) {
	if r == nil {
		s.om.Store(nil)
		return
	}
	s.om.Store(&schedMetrics{
		depth:  r.Gauge(obs.MSchedQueueDepth),
		jobs:   r.Counter(obs.MSchedJobs),
		wait:   r.Histogram(obs.MSchedJobWaitNS),
		panics: r.Counter(obs.MSchedJobPanics),
	})
}

// NewScheduler starts a pool of the given size (values < 1 mean 1).
// Callers must Close it to stop the workers.
func NewScheduler(workers int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	s := &Scheduler{workers: workers}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Workers reports the pool size the scheduler was started with.
func (s *Scheduler) Workers() int { return s.workers }

// QueueDepth reports the number of submitted jobs that no worker (or
// inline-claiming gatherer) has started yet. Claimed carcasses still
// sitting in a queue slot are excluded — the count is work actually
// waiting, which is what admission control wants; the MSchedQueueDepth
// gauge deliberately differs by counting slots instead (see
// schedMetrics).
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.inst {
		if j != nil && j.state.Load() == jobQueued {
			n++
		}
	}
	for _, j := range s.exp {
		if j != nil && j.state.Load() == jobQueued {
			n++
		}
	}
	return n
}

// worker drains the queue until the scheduler closes. Jobs claimed inline
// by their gatherer are skipped — the atomic claim makes the race benign.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		j := s.next()
		if j == nil {
			return
		}
		j.claim()
	}
}

// next pops the next job — oldest instance job first, then oldest
// experiment job — blocking while both queues are empty and the
// scheduler is open. nil means closed.
func (s *Scheduler) next() *instanceJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if len(s.inst) > 0 {
			j := s.inst[0]
			s.inst[0] = nil
			s.inst = s.inst[1:]
			if m := s.om.Load(); m != nil {
				m.depth.Add(-1)
			}
			return j
		}
		if len(s.exp) > 0 {
			j := s.exp[0]
			s.exp[0] = nil
			s.exp = s.exp[1:]
			if m := s.om.Load(); m != nil {
				m.depth.Add(-1)
			}
			return j
		}
		if s.closed {
			return nil
		}
		s.cond.Wait()
	}
}

// submit enqueues an instance job and wakes a worker. Like Submit, it
// panics on a closed pool: the job could only ever run through its
// gatherer's inline claim, and an entry point that half-works after Close
// hides lifecycle bugs.
func (s *Scheduler) submit(j *instanceJob) {
	if m := s.om.Load(); m != nil {
		j.om, j.enqNS = m, time.Now().UnixNano()
		m.jobs.Inc()
		m.depth.Add(1)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		panic("experiments: Ctx.Go on closed Scheduler")
	}
	s.inst = append(s.inst, j)
	s.mu.Unlock()
	s.cond.Signal()
}

// Submit enqueues fn as a pool job and returns a function that blocks
// until it has run. This is the runner's experiment-level entry point; the
// returned wait must not be called from a pool worker (experiment-level
// jobs are waited on by the runner's flush goroutine, which is outside
// the pool — instance-level jobs use Ctx.Gather, which helps instead of
// blocking).
func (s *Scheduler) Submit(fn func()) (wait func()) {
	j := &instanceJob{fn: func() error { fn(); return nil }, done: make(chan struct{})}
	if m := s.om.Load(); m != nil {
		j.om, j.enqNS = m, time.Now().UnixNano()
		m.jobs.Inc()
		m.depth.Add(1)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		// Enforce the documented contract loudly: a closed pool's workers
		// have exited, so the job could never run and the returned wait
		// would block forever — a silent deadlock is strictly worse.
		panic("experiments: Submit on closed Scheduler")
	}
	s.exp = append(s.exp, j)
	s.mu.Unlock()
	s.cond.Signal()
	return func() { <-j.done }
}

// Close stops the workers after the queue drains. Submitted jobs all
// complete; submitting after Close panics.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
}

// Ctx is the execution context handed to every experiment run: the report
// writer (embedded, so a *Ctx is written to directly), the solve session
// through which the experiment's exact MaxIS work is routed, the build
// session attributing its lower-bound graph constructions, and the
// scheduler behind Ctx.Go/Ctx.Gather. The sessions carry the run's solver
// worker count into every branch-and-bound call and book the cache
// traffic the experiment generates — which is what makes the runner's
// per-experiment envelope attribution exact at any -jobs count.
type Ctx struct {
	io.Writer
	// Solve memoises and attributes this run's exact solves; never nil
	// when built by NewCtx.
	Solve *cache.Session
	// Builds memoises and attributes this run's lower-bound graph
	// constructions; never nil when built by NewCtx.
	Builds *lbgraph.CacheSession

	// sched executes Go's jobs; nil runs them inline at submission (the
	// sequential mode of experiments.RunAll and direct Run calls).
	sched   *Scheduler
	pending []*instanceJob
	jobs    int64
	// panics counts gathered jobs that failed with a recovered panic
	// (*fault.PanicError) — the per-experiment attribution the runner's
	// envelope failures block reports.
	panics int64
	// batchJobs/batchedInstances count the lockstep batch passes this run
	// submitted (through GoBatch or NoteBatch) and the simulation
	// instances they carried — the envelope's batch accounting.
	batchJobs        int64
	batchedInstances int64
	// ctx is the run's cancellation signal (WithContext; nil = Background).
	// Go-submitted jobs check it before running, so on cancellation the
	// queued backlog drains as cancelled instead of executing; experiments
	// thread it into their simulations via Context().
	ctx context.Context
}

// NewCtx builds an experiment context. A nil writer discards the report;
// nil sessions get fresh ones over the shared caches. Without a scheduler
// (WithScheduler), Go runs jobs inline — exactly the sequential pipeline.
func NewCtx(w io.Writer, solve *cache.Session) *Ctx {
	if w == nil {
		w = io.Discard
	}
	if solve == nil {
		solve = cache.NewSession(nil, 0)
	}
	return &Ctx{Writer: w, Solve: solve, Builds: lbgraph.NewCacheSession(nil)}
}

// WithScheduler routes this context's Go jobs through the given pool and
// returns the context. A nil scheduler keeps the inline mode.
func (w *Ctx) WithScheduler(s *Scheduler) *Ctx {
	w.sched = s
	return w
}

// WithContext binds the run's context.Context: queued Go jobs drain as
// cancelled once it fires, and experiments pass Context() into their
// simulations and solves. Set it before the experiment starts (not
// synchronised). A nil ctx keeps Background.
func (w *Ctx) WithContext(ctx context.Context) *Ctx {
	w.ctx = ctx
	return w
}

// WithBuilds replaces the build-cache session (nil keeps the current one),
// so the runner can attribute lower-bound graph constructions to a
// caller-chosen cache — the per-Lab isolation seam.
func (w *Ctx) WithBuilds(b *lbgraph.CacheSession) *Ctx {
	if b != nil {
		w.Builds = b
	}
	return w
}

// Context returns the run's cancellation context (Background when none was
// bound). Experiments pass it to core.SimulateBuiltCtx and friends so a
// cancelled run stops between CONGEST rounds, not only between jobs.
func (w *Ctx) Context() context.Context {
	if w.ctx == nil {
		return context.Background()
	}
	return w.ctx
}

// Go submits one per-instance job. With a scheduler the job runs on the
// shared pool; without one it runs inline immediately, making the
// sequential and sharded paths the same code. fn must not write to the
// Ctx or mutate experiment state shared with other jobs — it computes
// into its own result slot, which the experiment reads after Gather.
// Go/Gather are experiment-goroutine-only: jobs must not call them.
//
// With a bound context (WithContext), every job re-checks it at claim
// time: jobs still queued when the context fires run nothing and report
// ctx.Err() — the queued backlog drains as cancelled, whoever claims it.
func (w *Ctx) Go(fn func() error) {
	w.jobs++
	run := fn
	if ctx := w.ctx; ctx != nil {
		run = func() error {
			if err := ctx.Err(); err != nil {
				return err
			}
			// One span per instance job, parented to the experiment span the
			// runner opened in this ctx. Without a registry obs.Begin is a
			// single context lookup.
			_, sp := obs.Begin(ctx, "job")
			defer sp.End()
			return fn()
		}
	}
	if w.sched == nil {
		// Inline mode runs through the same containment wrapper as the
		// pool path, so a panicking job produces the identical
		// *fault.PanicError (and FAILED report line) at any -jobs count.
		j := &instanceJob{fn: run}
		j.err = j.run()
		j.state.Store(jobDone)
		w.pending = append(w.pending, j)
		return
	}
	j := &instanceJob{fn: run, done: make(chan struct{})}
	w.pending = append(w.pending, j)
	w.sched.submit(j)
}

// Gather waits for every outstanding Go job and returns the error of the
// earliest-submitted failing one (nil if all succeeded) — matching the
// error a sequential early-returning loop reports, which keeps failure
// output byte-identical. It first claims every still-queued job of this
// context and runs it inline (the deadlock-avoidance rule: never block
// on work no worker owns), and only then blocks on the jobs other
// workers are executing — so the gatherer's own work overlaps with
// theirs instead of serialising behind the first running job.
func (w *Ctx) Gather() error {
	if w.sched != nil {
		for _, j := range w.pending {
			j.claim()
		}
		for _, j := range w.pending {
			<-j.done // immediate for everything claimed above
		}
	}
	var first error
	for _, j := range w.pending {
		if j.err != nil {
			var pe *fault.PanicError
			if errors.As(j.err, &pe) {
				w.panics++
			}
			if first == nil {
				first = j.err
			}
		}
	}
	w.pending = w.pending[:0]
	return first
}

// PanicsRecovered reports how many of this context's gathered jobs failed
// with a recovered panic (*fault.PanicError) over the context's lifetime —
// the runner copies it into the envelope's per-experiment failures block.
func (w *Ctx) PanicsRecovered() int64 { return w.panics }

// InstanceJobs reports how many jobs Go has submitted over the context's
// lifetime — the per-instance count the runner records in the envelope.
func (w *Ctx) InstanceJobs() int64 { return w.jobs }

// BatchJobs and BatchedInstances report the batched-simulation accounting
// over the context's lifetime: how many lockstep batch passes ran and how
// many simulation instances rode them instead of occupying a pool job
// each.
func (w *Ctx) BatchJobs() int64        { return w.batchJobs }
func (w *Ctx) BatchedInstances() int64 { return w.batchedInstances }

// NoteBatch records one congest.RunBatch pass of the given instance count
// run directly by the experiment body (outside GoBatch), so the envelope
// accounting covers hand-rolled batches too. Experiment-goroutine-only,
// like Go.
func (w *Ctx) NoteBatch(instances int) {
	w.batchJobs++
	w.batchedInstances += int64(instances)
}

// BatchPoint is one sweep point of a batched simulation sweep: the family
// and inputs, a Build callback producing the (cached) instance, the
// algorithm, and the slot the report lands in. Points of one sweep that
// Build the same underlying instance share its graph inside the engine by
// pointer identity.
type BatchPoint struct {
	Fam     core.Family
	In      bitvec.Inputs
	Build   func() (core.Instance, error)
	Factory core.ProgramFactory
	Extract core.OptExtractor
	Cfg     congest.Config
	Report  *core.SimulationReport
}

// GoBatch submits a sweep of simulation points, fusing them into one
// core.SimulateBatch lockstep pass per call instead of one pool job per
// point — the batched counterpart of a w.Go-per-point loop. Points whose
// Cfg.Parallel is set opt out of the fusion: a point big enough for the
// pipelined engine wants a dedicated job, not a lockstep slot, so it is
// submitted as its own Go job in position. The fused job is submitted at
// the first batched point's position, which keeps Gather's
// earliest-error contract exact for the sweep shapes the experiments use
// (parallel points, if any, after the batched ones); within the fused job
// the earliest point's error wins, matching a sequential point loop.
//
// Like Go, GoBatch is experiment-goroutine-only and the points' Build
// callbacks and Report slots must not be shared with other jobs.
func (w *Ctx) GoBatch(points []BatchPoint) {
	batched := make([]BatchPoint, 0, len(points))
	for _, pt := range points {
		if !pt.Cfg.Parallel {
			batched = append(batched, pt)
		}
	}
	first := true
	for _, pt := range points {
		if pt.Cfg.Parallel {
			pt := pt
			w.Go(func() error {
				inst, err := pt.Build()
				if err != nil {
					return err
				}
				rep, err := core.SimulateBuiltCtx(w.Context(), pt.Fam, pt.In, inst, pt.Factory, pt.Extract, pt.Cfg)
				if err != nil {
					return err
				}
				if pt.Report != nil {
					*pt.Report = rep
				}
				return nil
			})
			continue
		}
		if !first {
			continue
		}
		first = false
		w.NoteBatch(len(batched))
		w.Go(func() error {
			pointErrs := make([]error, len(batched))
			sims := make([]core.BatchSim, 0, len(batched))
			simPoint := make([]int, 0, len(batched))
			for bi, pt := range batched {
				inst, err := pt.Build()
				if err != nil {
					pointErrs[bi] = err
					continue
				}
				sims = append(sims, core.BatchSim{
					Fam: pt.Fam, In: pt.In, Inst: inst,
					Factory: pt.Factory, Extract: pt.Extract, Cfg: pt.Cfg,
				})
				simPoint = append(simPoint, bi)
			}
			reports, errs, _ := core.SimulateBatch(w.Context(), sims)
			for k, bi := range simPoint {
				if errs[k] != nil {
					pointErrs[bi] = errs[k]
					continue
				}
				if batched[bi].Report != nil {
					*batched[bi].Report = reports[k]
				}
			}
			for _, err := range pointErrs {
				if err != nil {
					return err
				}
			}
			return nil
		})
	}
}
