package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"congestlb/internal/bitvec"
	"congestlb/internal/congest"
	"congestlb/internal/core"
	"congestlb/internal/lbgraph"
)

// TestCtxGoInlineMatchesScheduled pins the two execution modes to the
// same observable results: slot contents and the Gather error.
func TestCtxGoInlineMatchesScheduled(t *testing.T) {
	run := func(sched *Scheduler) ([]int, error) {
		w := NewCtx(nil, nil).WithScheduler(sched)
		results := make([]int, 8)
		for i := 0; i < 8; i++ {
			i := i
			w.Go(func() error {
				results[i] = i * i
				if i == 3 || i == 5 {
					return fmt.Errorf("job %d failed", i)
				}
				return nil
			})
		}
		err := w.Gather()
		return results, err
	}

	inline, inlineErr := run(nil)
	for _, workers := range []int{1, 2, 4} {
		s := NewScheduler(workers)
		sharded, shardedErr := run(s)
		s.Close()
		for i := range inline {
			if inline[i] != sharded[i] {
				t.Fatalf("workers=%d: slot %d = %d, inline %d", workers, i, sharded[i], inline[i])
			}
		}
		if inlineErr == nil || shardedErr == nil || inlineErr.Error() != shardedErr.Error() {
			t.Fatalf("workers=%d: error %v, inline %v", workers, shardedErr, inlineErr)
		}
	}
	// The earliest-submitted failure wins, matching a sequential
	// early-returning loop.
	if inlineErr.Error() != "job 3 failed" {
		t.Fatalf("Gather returned %v, want the earliest failure", inlineErr)
	}
}

// TestSchedulerNestedJobsNoDeadlock is the deadlock-avoidance rule under
// maximum pressure: more gathering jobs than workers, each submitting
// nested instance jobs into the same single-worker pool. Without the
// claim-inline rule this configuration deadlocks immediately.
func TestSchedulerNestedJobsNoDeadlock(t *testing.T) {
	s := NewScheduler(1)
	defer s.Close()

	const outer, inner = 6, 10
	var ran atomic.Int64
	waits := make([]func(), outer)
	for o := 0; o < outer; o++ {
		waits[o] = s.Submit(func() {
			w := NewCtx(nil, nil).WithScheduler(s)
			for i := 0; i < inner; i++ {
				w.Go(func() error {
					ran.Add(1)
					return nil
				})
			}
			if err := w.Gather(); err != nil {
				t.Error(err)
			}
		})
	}
	for _, wait := range waits {
		wait()
	}
	if got := ran.Load(); got != outer*inner {
		t.Fatalf("ran %d nested jobs, want %d", got, outer*inner)
	}
}

// TestCtxCancelDrainsQueuedJobs pins the cancellation half of the
// scheduler contract: jobs still queued when the context fires never run
// their bodies — whoever claims them (a pool worker or the gatherer)
// observes the dead context and reports ctx.Err() — and Gather returns
// without deadlock at every pool size, including the single-worker pool
// where the gatherer must claim everything inline.
func TestCtxCancelDrainsQueuedJobs(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			s := NewScheduler(workers)
			defer s.Close()

			ctx, cancel := context.WithCancel(context.Background())
			// Pin every pool worker on a gate so the cancel provably lands
			// while the real jobs are still queued behind them.
			gate := make(chan struct{})
			started := make(chan struct{}, workers)
			w := NewCtx(nil, nil).WithScheduler(s).WithContext(ctx)
			for i := 0; i < workers; i++ {
				w.Go(func() error {
					started <- struct{}{}
					<-gate
					return nil
				})
			}
			for i := 0; i < workers; i++ {
				<-started
			}
			var ran atomic.Int64
			const queued = 16
			for i := 0; i < queued; i++ {
				w.Go(func() error {
					ran.Add(1)
					return nil
				})
			}
			cancel()
			close(gate)
			err := w.Gather()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Gather = %v, want context.Canceled from a drained job", err)
			}
			if got := ran.Load(); got != 0 {
				t.Fatalf("%d queued job bodies ran after cancellation", got)
			}
		})
	}
}

// TestSchedulerNestedJobsCancelNoDeadlock extends the nested-gather
// deadlock test with cancellation: outer experiment jobs gather nested
// instance jobs on a single-worker pool while the context dies under
// them. Everything must drain — cancelled or completed — with no worker
// stranded.
func TestSchedulerNestedJobsCancelNoDeadlock(t *testing.T) {
	s := NewScheduler(1)
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const outer, inner = 6, 10
	var cancelled, completed atomic.Int64
	waits := make([]func(), outer)
	for o := 0; o < outer; o++ {
		o := o
		waits[o] = s.Submit(func() {
			if o == 2 {
				// Cancel from inside the pool, mid-backlog: the remaining
				// outer jobs' nested work must drain as cancelled.
				cancel()
			}
			w := NewCtx(nil, nil).WithScheduler(s).WithContext(ctx)
			for i := 0; i < inner; i++ {
				w.Go(func() error {
					completed.Add(1)
					return nil
				})
			}
			if err := w.Gather(); err != nil {
				if !errors.Is(err, context.Canceled) {
					t.Errorf("gather error %v, want context.Canceled", err)
				}
				cancelled.Add(1)
			}
		})
	}
	for _, wait := range waits {
		wait()
	}
	if cancelled.Load() == 0 {
		t.Fatal("cancellation never observed by any nested gather")
	}
	if completed.Load()+cancelled.Load()*inner < outer*inner-inner {
		t.Fatalf("work lost: %d completed, %d gathers cancelled", completed.Load(), cancelled.Load())
	}
}

// TestCtxGatherReusable pins Gather's reset semantics: a second batch of
// jobs after a Gather is independent of the first.
func TestCtxGatherReusable(t *testing.T) {
	s := NewScheduler(2)
	defer s.Close()
	w := NewCtx(nil, nil).WithScheduler(s)

	w.Go(func() error { return errors.New("first batch") })
	if err := w.Gather(); err == nil {
		t.Fatal("first batch error lost")
	}
	w.Go(func() error { return nil })
	if err := w.Gather(); err != nil {
		t.Fatalf("second batch inherited the first batch's error: %v", err)
	}
	if w.InstanceJobs() != 2 {
		t.Fatalf("InstanceJobs = %d, want 2", w.InstanceJobs())
	}
}

// TestCtxGoBatchMatchesPerPointJobs pins the batched submission path: a
// GoBatch sweep produces the same reports a w.Go-per-point loop would,
// fuses the non-parallel points into one pool job, and books the batch
// accounting.
func TestCtxGoBatchMatchesPerPointJobs(t *testing.T) {
	p := lbgraph.Params{T: 2, Alpha: 1, Ell: 3}
	l, err := lbgraph.NewLinear(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	inputs := make([]bitvec.Inputs, 3)
	for i := range inputs {
		if inputs[i], _, err = bitvec.RandomUniquelyIntersecting(p.K(), p.T, bitvec.GenOptions{Density: 0.3}, rng); err != nil {
			t.Fatal(err)
		}
	}

	solo := make([]core.SimulationReport, len(inputs))
	w := NewCtx(nil, nil)
	for i, in := range inputs {
		inst, err := l.BuildWith(w.Builds, in)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := core.SimulateBuilt(l, in, inst, core.CollectProgramsWith(w.Solve), core.WitnessOpt, congest.Config{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		rep.SolveCacheHits, rep.SolveCacheMisses = 0, 0
		solo[i] = rep
	}

	for _, workers := range []int{0, 1, 2} {
		var sched *Scheduler
		if workers > 0 {
			sched = NewScheduler(workers)
		}
		w := NewCtx(nil, nil).WithScheduler(sched)
		reports := make([]core.SimulationReport, len(inputs))
		points := make([]BatchPoint, len(inputs))
		for i, in := range inputs {
			in := in
			cfg := congest.Config{Seed: 11}
			if i == len(inputs)-1 {
				cfg.Parallel = true // opts out of the fusion as its own job
			}
			points[i] = BatchPoint{
				Fam: l, In: in,
				Build:   func() (core.Instance, error) { return l.BuildWith(w.Builds, in) },
				Factory: core.CollectProgramsWith(w.Solve),
				Extract: core.WitnessOpt,
				Cfg:     cfg,
				Report:  &reports[i],
			}
		}
		w.GoBatch(points)
		if err := w.Gather(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if sched != nil {
			sched.Close()
		}
		for i := range inputs {
			got := reports[i]
			if i < len(inputs)-1 {
				// Batched points leave solve-cache attribution zero.
				if got != solo[i] {
					t.Fatalf("workers=%d point %d diverged:\nbatch %+v\nsolo  %+v", workers, i, got, solo[i])
				}
			} else {
				got.SolveCacheHits, got.SolveCacheMisses = 0, 0
				if got != solo[i] {
					t.Fatalf("workers=%d parallel point diverged:\nbatch %+v\nsolo  %+v", workers, got, solo[i])
				}
			}
		}
		// One fused job for the two batched points plus one parallel job.
		if w.InstanceJobs() != 2 {
			t.Fatalf("workers=%d: %d instance jobs, want 2", workers, w.InstanceJobs())
		}
		if w.BatchJobs() != 1 || w.BatchedInstances() != 2 {
			t.Fatalf("workers=%d: batch accounting %d jobs / %d instances, want 1/2",
				workers, w.BatchJobs(), w.BatchedInstances())
		}
	}
}

// TestCtxGoBatchEarliestError: the fused job reports the earliest
// point's error, matching a sequential point loop.
func TestCtxGoBatchEarliestError(t *testing.T) {
	p := lbgraph.Params{T: 2, Alpha: 1, Ell: 3}
	l, err := lbgraph.NewLinear(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(67))
	in, _, err := bitvec.RandomUniquelyIntersecting(p.K(), p.T, bitvec.GenOptions{Density: 0.3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := NewCtx(nil, nil)
	good := func() (core.Instance, error) { return l.BuildWith(w.Builds, in) }
	w.GoBatch([]BatchPoint{
		{Fam: l, In: in, Build: good, Factory: core.CollectProgramsWith(w.Solve), Extract: core.WitnessOpt},
		{Fam: l, In: in, Build: func() (core.Instance, error) {
			return core.Instance{}, errors.New("build of point 1 failed")
		}, Factory: core.CollectProgramsWith(w.Solve), Extract: core.WitnessOpt},
		{Fam: l, In: in, Build: func() (core.Instance, error) {
			return core.Instance{}, errors.New("build of point 2 failed")
		}, Factory: core.CollectProgramsWith(w.Solve), Extract: core.WitnessOpt},
	})
	if err := w.Gather(); err == nil || err.Error() != "build of point 1 failed" {
		t.Fatalf("Gather returned %v, want the earliest point's error", err)
	}
}
