package experiments

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestCtxGoInlineMatchesScheduled pins the two execution modes to the
// same observable results: slot contents and the Gather error.
func TestCtxGoInlineMatchesScheduled(t *testing.T) {
	run := func(sched *Scheduler) ([]int, error) {
		w := NewCtx(nil, nil).WithScheduler(sched)
		results := make([]int, 8)
		for i := 0; i < 8; i++ {
			i := i
			w.Go(func() error {
				results[i] = i * i
				if i == 3 || i == 5 {
					return fmt.Errorf("job %d failed", i)
				}
				return nil
			})
		}
		err := w.Gather()
		return results, err
	}

	inline, inlineErr := run(nil)
	for _, workers := range []int{1, 2, 4} {
		s := NewScheduler(workers)
		sharded, shardedErr := run(s)
		s.Close()
		for i := range inline {
			if inline[i] != sharded[i] {
				t.Fatalf("workers=%d: slot %d = %d, inline %d", workers, i, sharded[i], inline[i])
			}
		}
		if inlineErr == nil || shardedErr == nil || inlineErr.Error() != shardedErr.Error() {
			t.Fatalf("workers=%d: error %v, inline %v", workers, shardedErr, inlineErr)
		}
	}
	// The earliest-submitted failure wins, matching a sequential
	// early-returning loop.
	if inlineErr.Error() != "job 3 failed" {
		t.Fatalf("Gather returned %v, want the earliest failure", inlineErr)
	}
}

// TestSchedulerNestedJobsNoDeadlock is the deadlock-avoidance rule under
// maximum pressure: more gathering jobs than workers, each submitting
// nested instance jobs into the same single-worker pool. Without the
// claim-inline rule this configuration deadlocks immediately.
func TestSchedulerNestedJobsNoDeadlock(t *testing.T) {
	s := NewScheduler(1)
	defer s.Close()

	const outer, inner = 6, 10
	var ran atomic.Int64
	waits := make([]func(), outer)
	for o := 0; o < outer; o++ {
		waits[o] = s.Submit(func() {
			w := NewCtx(nil, nil).WithScheduler(s)
			for i := 0; i < inner; i++ {
				w.Go(func() error {
					ran.Add(1)
					return nil
				})
			}
			if err := w.Gather(); err != nil {
				t.Error(err)
			}
		})
	}
	for _, wait := range waits {
		wait()
	}
	if got := ran.Load(); got != outer*inner {
		t.Fatalf("ran %d nested jobs, want %d", got, outer*inner)
	}
}

// TestCtxGatherReusable pins Gather's reset semantics: a second batch of
// jobs after a Gather is independent of the first.
func TestCtxGatherReusable(t *testing.T) {
	s := NewScheduler(2)
	defer s.Close()
	w := NewCtx(nil, nil).WithScheduler(s)

	w.Go(func() error { return errors.New("first batch") })
	if err := w.Gather(); err == nil {
		t.Fatal("first batch error lost")
	}
	w.Go(func() error { return nil })
	if err := w.Gather(); err != nil {
		t.Fatalf("second batch inherited the first batch's error: %v", err)
	}
	if w.InstanceJobs() != 2 {
		t.Fatalf("InstanceJobs = %d, want 2", w.InstanceJobs())
	}
}
