package experiments

import (
	"fmt"

	"congestlb/internal/lbgraph"
)

// The diameter experiment verifies the paper's side remark that the lower
// bounds hold "even for constant diameter graphs": the hard instances must
// have diameter bounded by a small constant, independent of the
// parameters — otherwise the bounds would be artefacts of long paths.

func init() {
	register(Experiment{
		ID:       "diameter",
		Title:    "The hard instances have constant diameter",
		PaperRef: "Section 1 ('even for constant diameter graphs')",
		Run:      runDiameter,
	})
}

func runDiameter(w *Ctx) error {
	var c check
	const maxAllowed = 5
	tab := newTable("family", "params", "n", "connected", "diameter")
	linParams := []lbgraph.Params{
		lbgraph.FigureParams(2),
		lbgraph.FigureParams(3),
		{T: 2, Alpha: 1, Ell: 3},
		{T: 3, Alpha: 1, Ell: 4},
		{T: 2, Alpha: 2, Ell: 4},
	}
	quadParams := []lbgraph.Params{lbgraph.FigureParams(2), {T: 2, Alpha: 1, Ell: 3}}
	// One instance job per family member: build (cache-served on repeat
	// sweeps) plus the all-pairs BFS behind Diameter.
	type diamResult struct {
		n, d      int
		connected bool
	}
	linResults := make([]diamResult, len(linParams))
	for i, p := range linParams {
		l, err := lbgraph.NewLinear(p)
		if err != nil {
			return err
		}
		w.Go(func() error {
			inst, err := l.BuildFixedWith(w.Builds)
			if err != nil {
				return err
			}
			linResults[i] = diamResult{n: inst.Graph.N(), d: inst.Graph.Diameter(), connected: inst.Graph.IsConnected()}
			return nil
		})
	}
	// The fixed quadratic graph is disconnected between its halves until
	// input edges arrive; measure with the all-ones input which has NO
	// input edges, and with one 0 bit which connects the halves.
	quadResults := make([]diamResult, len(quadParams))
	for i, p := range quadParams {
		f, err := lbgraph.NewQuadratic(p)
		if err != nil {
			return err
		}
		w.Go(func() error {
			inst, err := f.BuildFixedWith(w.Builds)
			if err != nil {
				return err
			}
			quadResults[i] = diamResult{n: inst.Graph.N(), d: inst.Graph.Diameter(), connected: inst.Graph.IsConnected()}
			return nil
		})
	}
	if err := w.Gather(); err != nil {
		return err
	}
	for i, p := range linParams {
		r := linResults[i]
		c.assert(r.connected, "linear %v disconnected", p)
		c.assert(r.d >= 0 && r.d <= maxAllowed, "linear %v diameter %d", p, r.d)
		tab.add("linear", p.String(), r.n, r.connected, r.d)
	}
	for i, p := range quadParams {
		r := quadResults[i]
		tab.add("quadratic (fixed, halves unlinked)", p.String(), r.n, r.connected, r.d)
	}
	tab.write(w)
	fmt.Fprintf(w, "The linear instances are connected with diameter ≤ "+fmt.Sprint(maxAllowed)+" across all parameterisations — "+
		"the distance between any two nodes routes through at most A^i → Code^i → Code^j → A^j. The "+
		"quadratic fixed graph keeps its two halves apart until input edges join them (a single 0 bit "+
		"suffices); within each half the diameter is the linear one. Hardness therefore does not rely on "+
		"large diameter, matching the paper's remark.\n")
	return c.err()
}
