// Package experiments regenerates every figure and result of Efron,
// Grossman and Khoury (PODC 2020) as reproducible, self-verifying
// experiment runs emitting markdown reports. DESIGN.md carries the index:
// one experiment per paper object (Figures 1-6, Theorems 1-5 as consumed,
// Lemmas 1-3, Remark 1, the Section 1 limitation, and the cut-size
// measurement), each with a bench target in bench_test.go and a row in
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Experiment is one reproducible unit: it runs, verifies its own
// assertions (returning an error on any mismatch), and writes a markdown
// section with the regenerated figures/tables.
type Experiment struct {
	// ID is the stable identifier used by cmd/experiments and the bench
	// harness (e.g. "figure1", "theorem2").
	ID string
	// Title is the human heading.
	Title string
	// PaperRef names the object in the paper this regenerates.
	PaperRef string
	// Run executes the experiment, writing its report to the context.
	Run func(w *Ctx) error
}

// registry holds all experiments keyed by ID.
var registry = map[string]Experiment{}

// register is called from the per-experiment files' declarations.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate ID " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// Select resolves a list of experiment IDs, preserving the given order.
// Unknown IDs are reported in one error. An empty list selects everything
// (in ID order), so callers can pass a user's -id flag through directly.
func Select(ids []string) ([]Experiment, error) {
	if len(ids) == 0 {
		return All(), nil
	}
	out := make([]Experiment, 0, len(ids))
	var unknown []string
	for _, id := range ids {
		e, ok := registry[id]
		if !ok {
			unknown = append(unknown, id)
			continue
		}
		out = append(out, e)
	}
	if len(unknown) > 0 {
		return nil, fmt.Errorf("unknown experiment(s) %s (use -list)", strings.Join(unknown, ", "))
	}
	return out, nil
}

// IDs returns the sorted experiment identifiers.
func IDs() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.ID
	}
	return out
}

// RunAll executes every experiment in ID order, writing a combined report.
// It keeps going after failures and returns a joined error.
func RunAll(w io.Writer) error {
	var failures []string
	for _, e := range All() {
		fmt.Fprintf(w, "## %s — %s\n\n*Reproduces: %s*\n\n", e.ID, e.Title, e.PaperRef)
		if err := e.Run(NewCtx(w, nil)); err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", e.ID, err))
			fmt.Fprintf(w, "**FAILED**: %v\n\n", err)
			continue
		}
		fmt.Fprintf(w, "\n")
	}
	if len(failures) > 0 {
		return fmt.Errorf("experiments failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// table accumulates rows for a markdown table.
type table struct {
	headers []string
	rows    [][]string
}

func newTable(headers ...string) *table {
	return &table{headers: headers}
}

func (t *table) add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

func (t *table) write(w io.Writer) {
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.headers, " | "))
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "|%s|\n", strings.Join(sep, "|"))
	for _, row := range t.rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	fmt.Fprintln(w)
}

// check records a named assertion; any failure fails the experiment.
type check struct {
	failures []string
}

func (c *check) assert(ok bool, format string, args ...any) {
	if !ok {
		c.failures = append(c.failures, fmt.Sprintf(format, args...))
	}
}

func (c *check) err() error {
	if len(c.failures) == 0 {
		return nil
	}
	return fmt.Errorf("%d assertion(s) failed:\n  %s", len(c.failures), strings.Join(c.failures, "\n  "))
}
