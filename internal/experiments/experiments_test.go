package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// DESIGN.md's experiment index: every ID must be present.
	want := []string{
		"figure1", "figure2", "figure3", "figure4", "figure5", "figure6",
		"codes", "properties",
		"lemma1", "lemma2", "lemma3",
		"theorem1", "theorem2", "theorem3", "theorem5",
		"cutsize", "twoparty", "remark1", "upperbounds",
		"ablations", "diameter", "solver", "scaling",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d: %v", len(All()), len(want), IDs())
	}
}

func TestIDsSorted(t *testing.T) {
	ids := IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("IDs not sorted: %v", ids)
		}
	}
}

func TestByIDMissing(t *testing.T) {
	if _, ok := ByID("no-such-experiment"); ok {
		t.Fatal("bogus ID found")
	}
}

// longExperiments are the two full-reduction sweeps that dominate the
// suite's runtime; they are skipped under -short so `go test -short ./...`
// stays fast.
var longExperiments = map[string]bool{"scaling": true, "theorem5": true}

// TestEveryExperimentRunsClean executes each experiment and requires all
// internal assertions to pass and a non-trivial report to be produced.
func TestEveryExperimentRunsClean(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if testing.Short() && longExperiments[e.ID] {
				t.Skipf("skipping long experiment %s in -short mode", e.ID)
			}
			var buf bytes.Buffer
			if err := e.Run(NewCtx(&buf, nil)); err != nil {
				t.Fatalf("experiment %s failed: %v", e.ID, err)
			}
			out := buf.String()
			if len(out) < 40 {
				t.Fatalf("experiment %s produced almost no output: %q", e.ID, out)
			}
			if !strings.Contains(out, "|") {
				t.Fatalf("experiment %s produced no table", e.ID)
			}
		})
	}
}

func TestRunAllAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll executes every experiment, including the long sweeps; skipped in -short mode")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, e := range All() {
		if !strings.Contains(out, "## "+e.ID) {
			t.Errorf("combined report missing section for %s", e.ID)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := newTable("a", "b")
	tab.add(1, 2.5)
	tab.add("x", true)
	var buf bytes.Buffer
	tab.write(&buf)
	out := buf.String()
	for _, want := range []string{"| a | b |", "|---|---|", "| 1 | 2.5 |", "| x | true |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestCheckCollectsFailures(t *testing.T) {
	var c check
	c.assert(true, "fine")
	if c.err() != nil {
		t.Fatal("no failures should yield nil")
	}
	c.assert(false, "bad %d", 1)
	c.assert(false, "bad %d", 2)
	err := c.err()
	if err == nil {
		t.Fatal("failures should yield error")
	}
	if !strings.Contains(err.Error(), "bad 1") || !strings.Contains(err.Error(), "bad 2") {
		t.Fatalf("error missing failures: %v", err)
	}
}

func TestRegisterPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	register(Experiment{ID: "figure1", Run: func(*Ctx) error { return nil }})
}
