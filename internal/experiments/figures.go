package experiments

import (
	"fmt"

	"congestlb/internal/bitvec"
	"congestlb/internal/lbgraph"
	"congestlb/internal/mis"
)

// The figure experiments rebuild the exact objects drawn in the paper's
// Figures 1-6 (all with ℓ=2, α=1, k=3) and verify every structural claim
// their captions make.

func init() {
	register(Experiment{
		ID:       "figure1",
		Title:    "Base graph H with ℓ=2, α=1, k=3 and C(1)=\"2,3,1\"",
		PaperRef: "Figure 1",
		Run:      runFigure1,
	})
	register(Experiment{
		ID:       "figure2",
		Title:    "Inter-copy wiring: complete bipartite minus the natural matching",
		PaperRef: "Figure 2",
		Run:      runFigure2,
	})
	register(Experiment{
		ID:       "figure3",
		Title:    "Three-player construction and its highlighted independent set",
		PaperRef: "Figure 3",
		Run:      runFigure3,
	})
	register(Experiment{
		ID:       "figure4",
		Title:    "Quadratic construction: one player's pair of copies V^(1,1) ∪ V^(1,2)",
		PaperRef: "Figure 4",
		Run:      runFigure4,
	})
	register(Experiment{
		ID:       "figure5",
		Title:    "Full quadratic fixed graph F for t=2",
		PaperRef: "Figure 5",
		Run:      runFigure5,
	})
	register(Experiment{
		ID:       "figure6",
		Title:    "Input edges: a 0 bit x¹_(1,1) creates the edge {v^(1,1)_1, v^(1,2)_1}",
		PaperRef: "Figure 6",
		Run:      runFigure6,
	})
}

func runFigure1(w *Ctx) error {
	var c check
	p := lbgraph.FigureParams(2)
	l, err := lbgraph.NewLinear(p)
	if err != nil {
		return err
	}
	base, err := lbgraph.BuildBaseWith(w.Builds, p)
	if err != nil {
		return err
	}
	c.assert(base.N() == 12, "H should have 12 nodes, has %d", base.N())
	c.assert(base.M() == 30, "H should have 30 edges, has %d", base.M())

	tab := newTable("message m", "codeword C(m)", "nodes of Code_m")
	for m := 0; m < p.K(); m++ {
		word := l.Codeword(m)
		c.assert(len(word) == 3, "codeword length %d", len(word))
		nodes := ""
		for h, sym := range word {
			if h > 0 {
				nodes += ", "
			}
			nodes += fmt.Sprintf("σ(%d,%d)", h+1, sym)
		}
		tab.add(m+1, fmt.Sprint(word), nodes)
	}
	tab.write(w)

	// The caption's golden fact: C(1) = "2,3,1".
	w1 := l.Codeword(0)
	c.assert(w1[0] == 2 && w1[1] == 3 && w1[2] == 1, "C(1) = %v, want [2 3 1]", w1)

	// v1 is adjacent to Code \ Code_1 (6 nodes) and its A-clique (2).
	v1, _ := base.NodeByLabel("v[i=1,m=1]")
	c.assert(base.Degree(v1) == 8, "deg(v1) = %d, want 8", base.Degree(v1))
	for h := 1; h <= 3; h++ {
		for r := 1; r <= 3; r++ {
			u, ok := base.NodeByLabel(fmt.Sprintf("sigma[i=1,h=%d,r=%d]", h, r))
			c.assert(ok, "missing sigma node")
			inCode1 := w1[h-1] == r
			c.assert(base.HasEdge(v1, u) != inCode1,
				"v1-σ(%d,%d) adjacency wrong (inCode1=%v)", h, r, inCode1)
		}
	}
	fmt.Fprintf(w, "Verified: |V(H)|=12, |E(H)|=30, C(1)=%v, v1 adjacent to exactly Code∖Code₁.\n", w1)
	return c.err()
}

func runFigure2(w *Ctx) error {
	var c check
	p := lbgraph.FigureParams(2)
	l, err := lbgraph.NewLinear(p)
	if err != nil {
		return err
	}
	inst, err := l.BuildFixedWith(w.Builds)
	if err != nil {
		return err
	}
	tab := newTable("pair", "edge present")
	edges, nonEdges := 0, 0
	for r := 0; r < p.Q(); r++ {
		for s := 0; s < p.Q(); s++ {
			has := inst.Graph.HasEdge(l.SigmaNode(0, 0, r), l.SigmaNode(1, 0, s))
			tab.add(fmt.Sprintf("σ¹(1,%d)–σ²(1,%d)", r+1, s+1), has)
			c.assert(has == (r != s), "edge (r=%d,s=%d) = %v", r, s, has)
			if has {
				edges++
			} else {
				nonEdges++
			}
		}
	}
	tab.write(w)
	fmt.Fprintf(w, "Between C¹_1 and C²_1: %d edges, %d matching non-edges (q=%d).\n",
		edges, nonEdges, p.Q())
	c.assert(edges == p.Q()*(p.Q()-1), "edge count %d", edges)
	c.assert(nonEdges == p.Q(), "non-edge count %d", nonEdges)
	return c.err()
}

func runFigure3(w *Ctx) error {
	var c check
	p := lbgraph.FigureParams(3)
	l, err := lbgraph.NewLinear(p)
	if err != nil {
		return err
	}
	inst, err := l.BuildFixedWith(w.Builds)
	if err != nil {
		return err
	}
	// The figure highlights {v¹₁, v²₁, v³₁} ∪ Code¹₁ ∪ Code²₁ ∪ Code³₁.
	var set []int
	for i := 0; i < 3; i++ {
		set = append(set, l.ANode(i, 0))
		set = append(set, l.CodeNodes(i, 0)...)
	}
	independent := inst.Graph.IsIndependentSet(set)
	c.assert(independent, "highlighted set is not independent")
	weight, err := mis.Verify(inst.Graph, set)
	if err != nil {
		return err
	}
	tab := newTable("quantity", "value")
	tab.add("n = t(k+Mq)", inst.Graph.N())
	tab.add("highlighted set size", len(set))
	tab.add("highlighted set weight (fixed graph)", weight)
	tab.add("independent", independent)
	tab.write(w)
	fmt.Fprintf(w, "Verified Figure 3's caption: the union across all three players of {v^i_1} ∪ Code^i_1 is an independent set.\n")
	return c.err()
}

func runFigure4(w *Ctx) error {
	var c check
	p := lbgraph.FigureParams(2)
	f, err := lbgraph.NewQuadratic(p)
	if err != nil {
		return err
	}
	inst, err := f.BuildFixedWith(w.Builds)
	if err != nil {
		return err
	}
	g := inst.Graph
	// V^1 = V^(1,1) ∪ V^(1,2): two topologically identical copies of H.
	tab := newTable("copy", "A-clique size", "code cliques", "A-node weight")
	for b := 0; b < 2; b++ {
		aSize := 0
		for m := 0; m < p.K(); m++ {
			aSize++
			c.assert(g.Weight(f.ANode(0, b, m)) == int64(p.Ell),
				"A-node weight wrong in copy b=%d", b)
		}
		tab.add(fmt.Sprintf("V^(1,%d)", b+1), aSize, p.M(), p.Ell)
	}
	tab.write(w)
	// Per the caption: v^(1,1)_1 avoids Code^(1,1)_1 and v^(1,2)_1 avoids
	// Code^(1,2)_1, mirroring Figure 1 in both copies.
	for b := 0; b < 2; b++ {
		for _, u := range f.CodeNodes(0, b, 0) {
			c.assert(!g.HasEdge(f.ANode(0, b, 0), u), "v^(1,%d)_1 adjacent to its own codeword node", b+1)
		}
	}
	fmt.Fprintf(w, "Verified: player 1 holds two identical copies of H with A-nodes of fixed weight ℓ=%d.\n", p.Ell)
	return c.err()
}

func runFigure5(w *Ctx) error {
	var c check
	p := lbgraph.FigureParams(2)
	f, err := lbgraph.NewQuadratic(p)
	if err != nil {
		return err
	}
	inst, err := f.BuildFixedWith(w.Builds)
	if err != nil {
		return err
	}
	g, part := inst.Graph, inst.Partition
	c.assert(g.N() == p.QuadraticN(), "N = %d", g.N())
	// G¹ spans the b=0 halves, G² the b=1 halves; wiring exists only
	// within a half.
	sameHalf := g.HasEdge(f.SigmaNode(0, 0, 0, 0), f.SigmaNode(1, 0, 0, 1))
	crossHalf := g.HasEdge(f.SigmaNode(0, 0, 0, 0), f.SigmaNode(1, 1, 0, 1))
	c.assert(sameHalf, "same-half wiring missing")
	c.assert(!crossHalf, "cross-half wiring exists")

	tab := newTable("quantity", "value")
	tab.add("players t", p.T)
	tab.add("n = 2t(k+Mq)", g.N())
	tab.add("cut size", part.CutSize(g))
	tab.add("fixed edges", g.M())
	tab.write(w)
	fmt.Fprintf(w, "Verified: F is two copies of G with per-half inter-player wiring only; all fixed edges are input-independent.\n")
	return c.err()
}

func runFigure6(w *Ctx) error {
	var c check
	p := lbgraph.FigureParams(2)
	f, err := lbgraph.NewQuadratic(p)
	if err != nil {
		return err
	}
	// The caption's instance: first bit of x¹ is 0, everything else 1.
	in := make(bitvec.Inputs, p.T)
	for i := range in {
		m := bitvec.NewMatrix(p.K())
		m.SetAll()
		in[i] = m.Vector()
	}
	m0, err := bitvec.MatrixFromVector(in[0], p.K())
	if err != nil {
		return err
	}
	m0.Clear(0, 0)

	inst, err := f.BuildWith(w.Builds, in)
	if err != nil {
		return err
	}
	g := inst.Graph
	tab := newTable("player", "input edges added")
	for i := 0; i < p.T; i++ {
		count := 0
		for m1 := 0; m1 < p.K(); m1++ {
			for m2 := 0; m2 < p.K(); m2++ {
				if g.HasEdge(f.ANode(i, 0, m1), f.ANode(i, 1, m2)) {
					count++
				}
			}
		}
		tab.add(fmt.Sprintf("x^%d", i+1), count)
		if i == 0 {
			c.assert(count == 1, "player 1 should contribute exactly 1 input edge, has %d", count)
		} else {
			c.assert(count == 0, "player %d should contribute none, has %d", i+1, count)
		}
	}
	tab.write(w)
	c.assert(g.HasEdge(f.ANode(0, 0, 0), f.ANode(0, 1, 0)),
		"the edge {v^(1,1)_1, v^(1,2)_1} is missing")
	fmt.Fprintf(w, "Verified: exactly the 0 bits of x̄ materialise as A^(i,1)×A^(i,2) edges.\n")
	return c.err()
}
