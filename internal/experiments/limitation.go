package experiments

import (
	"fmt"
	"math/rand"

	"congestlb/internal/bitvec"
	"congestlb/internal/congest"
	"congestlb/internal/congestalg"
	"congestlb/internal/core"
	"congestlb/internal/lbgraph"
	"congestlb/internal/mis"
)

// Limitation-side experiments: the Section 1 limitation argument, the
// Remark 1 unweighted transform, and the upper-bound side — what real
// CONGEST algorithms achieve on the hard instances.

func init() {
	register(Experiment{
		ID:       "twoparty",
		Title:    "The limitation: t players get a 1/t-approximation with t·O(log n) bits",
		PaperRef: "Section 1, 'Limitations of the two-party framework'",
		Run:      runTwoParty,
	})
	register(Experiment{
		ID:       "remark1",
		Title:    "Unweighted instances via blow-up: gap preserved, n grows by Θ(log k)",
		PaperRef: "Remark 1",
		Run:      runRemark1,
	})
	register(Experiment{
		ID:       "upperbounds",
		Title:    "CONGEST algorithms on the hard instances: rounds vs quality",
		PaperRef: "Section 1 upper-bound context ([5,18] and the O(n²) universal algorithm)",
		Run:      runUpperBounds,
	})
}

func runTwoParty(w *Ctx) error {
	var c check
	tab := newTable("t", "n", "protocol bits", "best local / global OPT", "floor 1/t")
	rng := rand.New(rand.NewSource(31))
	params := []lbgraph.Params{
		{T: 2, Alpha: 1, Ell: 3},
		{T: 3, Alpha: 1, Ell: 4},
		lbgraph.FigureParams(4),
	}
	// One job per player count: inputs are drawn sequentially, the build
	// and the t+1 exact solves of the protocol run on the pool.
	type splitResult struct {
		report core.SplitBestReport
		n      int
	}
	results := make([]splitResult, len(params))
	for i, p := range params {
		l, err := lbgraph.NewLinear(p)
		if err != nil {
			return err
		}
		in, _, err := bitvec.RandomUniquelyIntersecting(p.K(), p.T, bitvec.GenOptions{Density: 0.4}, rng)
		if err != nil {
			return err
		}
		w.Go(func() error {
			inst, err := l.BuildWith(w.Builds, in)
			if err != nil {
				return err
			}
			report, err := core.SplitBestWith(w.Solve, inst)
			if err != nil {
				return err
			}
			results[i] = splitResult{report: report, n: inst.Graph.N()}
			return nil
		})
	}
	if err := w.Gather(); err != nil {
		return err
	}
	for i, p := range params {
		report := results[i].report
		floor := 1 / float64(p.T)
		c.assert(report.Ratio() >= floor, "t=%d: ratio %f below 1/t", p.T, report.Ratio())
		c.assert(report.Bits == int64(p.T)*64, "t=%d: cost %d bits", p.T, report.Bits)
		tab.add(p.T, results[i].n, report.Bits,
			fmt.Sprintf("%d/%d = %.3f", report.Best, report.Opt, report.Ratio()), floor)
	}
	tab.write(w)
	fmt.Fprintf(w, "Each player solves its own part locally and announces one value: a 1/t-approximation "+
		"for O(t·log n) bits. At t=2 this is the 1/2 barrier that blocks two-party reductions below "+
		"(1/2)-approximation; using t players relaxes the barrier to 1/t, which is why the multi-party "+
		"framework can reach (1/2+ε) and beyond.\n")
	return c.err()
}

func runRemark1(w *Ctx) error {
	var c check
	p := lbgraph.FigureParams(2)
	l, err := lbgraph.NewLinear(p)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(37))
	tab := newTable("case", "weighted n", "unweighted n′", "weighted OPT", "unweighted OPT", "equal")
	cases := []struct {
		name      string
		intersect bool
	}{
		{name: "uniquely intersecting", intersect: true},
		{name: "pairwise disjoint", intersect: false},
	}
	type blowupResult struct {
		weightedN, unweightedN     int
		weightedOpt, unweightedOpt int64
	}
	results := make([]blowupResult, len(cases))
	for ci, tc := range cases {
		var in bitvec.Inputs
		if tc.intersect {
			in, _, err = bitvec.RandomUniquelyIntersecting(p.K(), p.T, bitvec.GenOptions{Density: 0.4}, rng)
		} else {
			in, err = bitvec.RandomPairwiseDisjoint(p.K(), p.T, bitvec.GenOptions{Density: 0.4}, rng)
		}
		if err != nil {
			return err
		}
		w.Go(func() error {
			inst, err := l.BuildWith(w.Builds, in)
			if err != nil {
				return err
			}
			res, err := lbgraph.Blowup(inst.Graph, inst.Partition)
			if err != nil {
				return err
			}
			// Both sides consume the optimum value alone, so the solves
			// are weight-only.
			weighted, err := w.Solve.Exact(inst.Graph, mis.Options{CliqueCover: inst.CliqueCover, WeightOnly: true})
			if err != nil {
				return err
			}
			unweighted, err := w.Solve.Exact(res.Graph, mis.Options{CliqueCover: lbgraph.BlowupCover(inst.CliqueCover, res), WeightOnly: true})
			if err != nil {
				return err
			}
			results[ci] = blowupResult{
				weightedN:     inst.Graph.N(),
				unweightedN:   res.Graph.N(),
				weightedOpt:   weighted.Weight,
				unweightedOpt: unweighted.Weight,
			}
			return nil
		})
	}
	if err := w.Gather(); err != nil {
		return err
	}
	for ci, tc := range cases {
		r := results[ci]
		equal := r.weightedOpt == r.unweightedOpt
		c.assert(equal, "%s: OPT changed %d → %d", tc.name, r.weightedOpt, r.unweightedOpt)
		tab.add(tc.name, r.weightedN, r.unweightedN, r.weightedOpt, r.unweightedOpt, equal)
	}
	tab.write(w)
	fmt.Fprintf(w, "Replacing each weight-ℓ node by an ℓ-node independent set (bicliques for edges) preserves "+
		"the optimum exactly. The node count grows from Θ(k) to Θ(k·ℓ) = Θ(k log k), costing the lower bound "+
		"one log factor, exactly as Remark 1 states.\n\n")

	// End-to-end: the unweighted family runs through the full Theorem 5
	// reduction — a CONGEST algorithm on the blown-up instance decides the
	// same promise function within the same accounting bound.
	up := lbgraph.Params{T: 2, Alpha: 1, Ell: 3}
	ufam, err := lbgraph.NewUnweightedLinear(up)
	if err != nil {
		return err
	}
	uin, _, err := bitvec.RandomUniquelyIntersecting(up.K(), up.T, bitvec.GenOptions{Density: 0.3}, rng)
	if err != nil {
		return err
	}
	var report core.SimulationReport
	w.Go(func() error {
		uinst, err := ufam.BuildWith(w.Builds, uin)
		if err != nil {
			return err
		}
		report, err = core.SimulateBuiltCtx(w.Context(), ufam, uin, uinst, core.CollectProgramsWith(w.Solve), core.WitnessOpt, congest.Config{Seed: 13})
		return err
	})
	if err := w.Gather(); err != nil {
		return err
	}
	c.assert(report.AccountingHolds(), "unweighted simulation: accounting violated")
	c.assert(report.Correct(), "unweighted simulation: wrong decision")
	fmt.Fprintf(w, "Live reduction on the unweighted family (%s): n=%d, T=%d rounds, blackboard %d ≤ "+
		"T·|cut|·B = %d bits, decision correct: %v.\n",
		report.Family, report.N, report.Rounds, report.BlackboardBits,
		report.AccountingBound, report.Correct())
	return c.err()
}

func runUpperBounds(w *Ctx) error {
	var c check
	p := lbgraph.Params{T: 2, Alpha: 1, Ell: 3}
	l, err := lbgraph.NewLinear(p)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(41))
	in, _, err := bitvec.RandomUniquelyIntersecting(p.K(), p.T, bitvec.GenOptions{Density: 0.4}, rng)
	if err != nil {
		return err
	}

	type algo struct {
		name     string
		programs func(n int) []congest.NodeProgram
		exact    bool
		setsOut  bool // outputs are []NodeID rather than membership bools
	}
	algos := []algo{
		{name: "Luby MIS (randomised, maximal)", programs: congestalg.NewLubyPrograms},
		{name: "RankGreedy (deterministic, weight-greedy)", programs: congestalg.NewRankGreedyPrograms},
		{name: "GossipExact (flooding, exact)", programs: func(n int) []congest.NodeProgram {
			return congestalg.NewGossipExactProgramsWith(w.Solve, n)
		}, exact: true, setsOut: true},
		{name: "CollectSolve (BFS-tree convergecast, exact)", programs: func(n int) []congest.NodeProgram {
			return congestalg.NewCollectSolveProgramsWith(w.Solve, n)
		}, exact: true},
	}

	// One job for the reference optimum; the four algorithm runs fuse
	// into a single lockstep congest.RunBatch job sharing one built graph
	// — the programs only read NodeInfo.Neighbors, so sharing adjacency
	// across batch items is safe and the engine counts it as sharing.
	var opt int64
	w.Go(func() error {
		inst, err := l.BuildWith(w.Builds, in)
		if err != nil {
			return err
		}
		optSol, err := w.Solve.Exact(inst.Graph, mis.Options{CliqueCover: inst.CliqueCover, WeightOnly: true})
		if err != nil {
			return err
		}
		opt = optSol.Weight
		return nil
	})
	type algoResult struct {
		rounds    int
		totalBits int64
		achieved  int64
	}
	results := make([]algoResult, len(algos))
	w.NoteBatch(len(algos))
	w.Go(func() error {
		inst, err := l.BuildWith(w.Builds, in)
		if err != nil {
			return err
		}
		items := make([]congest.BatchItem, len(algos))
		for ai, a := range algos {
			items[ai] = congest.BatchItem{
				Graph:    inst.Graph,
				Programs: a.programs(inst.Graph.N()),
				Config:   congest.Config{Seed: 3},
			}
		}
		batchResults, errs, _ := congest.RunBatch(w.Context(), items)
		for ai, a := range algos {
			if errs[ai] != nil {
				return errs[ai]
			}
			result := batchResults[ai]
			var set []int
			if a.setsOut {
				set, err = congestalg.ExactSetFromOutputs(result)
				if err != nil {
					return err
				}
			} else {
				set = congestalg.MembershipSet(result)
			}
			achieved, err := mis.Verify(inst.Graph, set)
			if err != nil {
				return err
			}
			results[ai] = algoResult{rounds: result.Stats.Rounds, totalBits: result.Stats.TotalBits, achieved: achieved}
		}
		return nil
	})
	if err := w.Gather(); err != nil {
		return err
	}

	tab := newTable("algorithm", "rounds", "total bits", "achieved weight", "quality vs OPT", "exact?")
	for ai, a := range algos {
		r := results[ai]
		if a.exact {
			c.assert(r.achieved == opt, "%s achieved %d, optimum %d", a.name, r.achieved, opt)
		} else {
			c.assert(r.achieved <= opt, "heuristic beat the optimum?")
		}
		tab.add(a.name, r.rounds, r.totalBits, r.achieved,
			fmt.Sprintf("%.3f", float64(r.achieved)/float64(opt)), a.exact)
	}
	tab.write(w)
	fmt.Fprintf(w, "The fast algorithms terminate in few rounds but only guarantee Δ-flavoured quality; "+
		"exactness needs the heavyweight universal algorithm — the regime the paper's lower bounds target: "+
		"any algorithm beating (1/2+ε) must pay nearly linear rounds, and (3/4+ε) nearly quadratic.\n")
	return c.err()
}
