package experiments

import (
	"testing"

	"congestlb/internal/obs"
)

// TestSchedulerQueueDepthGauge pins the scheduler's observability
// contract: the queue-depth gauge counts exactly the jobs sitting in
// the queues — rising as a Ctx fans out nested Go jobs while the pool
// is busy, draining to zero once everything ran — and the jobs counter
// and wait histogram see every submission.
func TestSchedulerQueueDepthGauge(t *testing.T) {
	reg := obs.NewRegistry()
	sched := NewScheduler(1)
	sched.SetRegistry(reg)
	depth := reg.Gauge(obs.MSchedQueueDepth)

	// Park the single worker inside a job, so everything submitted next
	// is guaranteed to sit in the queue when we read the gauge.
	started := make(chan struct{})
	block := make(chan struct{})
	release := sched.Submit(func() { close(started); <-block })
	<-started

	const n = 6
	w := NewCtx(nil, nil).WithScheduler(sched)
	for i := 0; i < n; i++ {
		w.Go(func() error { return nil })
	}
	if got := depth.Value(); got != n {
		t.Fatalf("queue depth with %d queued jobs = %d", n, got)
	}

	close(block)
	release()
	if err := w.Gather(); err != nil {
		t.Fatal(err)
	}
	// Gather may have claimed jobs inline, leaving carcasses for the
	// worker to pop; Close drains the queue before stopping it, so after
	// Close the gauge must be back at zero.
	sched.Close()
	if got := depth.Value(); got != 0 {
		t.Fatalf("queue depth after drain = %d, want 0", got)
	}

	snap := reg.Snapshot()
	if got := snap.Counter(obs.MSchedJobs); got != n+1 {
		t.Fatalf("jobs counter = %d, want %d", got, n+1)
	}
	waits := snap.Histograms[obs.MSchedJobWaitNS]
	if waits.Count != n+1 {
		t.Fatalf("wait histogram saw %d claims, want %d", waits.Count, n+1)
	}
}

// TestSchedulerRegistryDetach: SetRegistry(nil) stops recording without
// disturbing jobs already in flight.
func TestSchedulerRegistryDetach(t *testing.T) {
	reg := obs.NewRegistry()
	sched := NewScheduler(2)
	sched.SetRegistry(reg)
	sched.Submit(func() {})()
	sched.SetRegistry(nil)
	sched.Submit(func() {})()
	sched.Close()
	if got := reg.Snapshot().Counter(obs.MSchedJobs); got != 1 {
		t.Fatalf("jobs counter after detach = %d, want 1", got)
	}
}
