package experiments

import (
	"fmt"
	"math/rand"

	"congestlb/internal/bitvec"
	"congestlb/internal/congest"
	"congestlb/internal/core"
	"congestlb/internal/lbgraph"
)

// The scaling experiment runs the full Theorem 5 reduction at increasing
// instance sizes and reports how the accounting quantities move: k grows
// linearly with n while the cut stays polylogarithmic — the shape that
// turns the communication bound into a near-linear round bound.

func init() {
	register(Experiment{
		ID:       "scaling",
		Title:    "Reduction accounting across instance sizes",
		PaperRef: "Theorems 1 and 5 (the shape of the bound)",
		Run:      runScaling,
	})
}

// ScalingPoints returns the sweep's parameterisations in sweep order —
// the axis the per-point benchmarks iterate.
func ScalingPoints() []lbgraph.Params {
	return []lbgraph.Params{
		{T: 2, Alpha: 1, Ell: 3}, // n=48,  k=4
		{T: 3, Alpha: 1, Ell: 4}, // n=90,  k=5
		{T: 4, Alpha: 1, Ell: 5}, // n=192, k=6
	}
}

// scalingInputs draws point i's inputs off the sweep RNG. The stream is
// shared across the sweep, so drawing point i requires having drawn
// 0..i-1 first.
func scalingInputs(p lbgraph.Params, rng *rand.Rand) (bitvec.Inputs, error) {
	in, _, err := bitvec.RandomUniquelyIntersecting(p.K(), p.T, bitvec.GenOptions{Density: 0.3}, rng)
	return in, err
}

// scalingConfig is point i's engine configuration: the shared seed, with
// the pipelined engine requested on the largest point — the only one big
// enough to amortise worker dispatch — which also routes it around the
// lockstep batch as a dedicated job.
func scalingConfig(i, total int) congest.Config {
	cfg := congest.Config{Seed: 11}
	if i == total-1 {
		cfg.Parallel = true
	}
	return cfg
}

// RunScalingPoint runs sweep point i alone — build plus full Theorem 5
// simulation with the exact inputs, seed and engine configuration the
// experiment uses — by replaying the sweep RNG up to the point. This is
// the unit the per-point scaling benchmarks measure.
func RunScalingPoint(w *Ctx, i int) (core.SimulationReport, error) {
	points := ScalingPoints()
	if i < 0 || i >= len(points) {
		return core.SimulationReport{}, fmt.Errorf("experiments: scaling point %d of %d", i, len(points))
	}
	rng := rand.New(rand.NewSource(73))
	var in bitvec.Inputs
	for j := 0; j <= i; j++ {
		var err error
		if in, err = scalingInputs(points[j], rng); err != nil {
			return core.SimulationReport{}, err
		}
	}
	p := points[i]
	l, err := lbgraph.NewLinear(p)
	if err != nil {
		return core.SimulationReport{}, err
	}
	inst, err := l.BuildWith(w.Builds, in)
	if err != nil {
		return core.SimulationReport{}, err
	}
	return core.SimulateBuiltCtx(w.Context(), l, in, inst, core.CollectProgramsWith(w.Solve), core.WitnessOpt, scalingConfig(i, len(points)))
}

func runScaling(w *Ctx) error {
	var c check
	rng := rand.New(rand.NewSource(73))
	tab := newTable("params", "n", "k", "∣cut∣", "rounds T", "blackboard bits", "bound T·∣cut∣·B", "utilisation")
	params := ScalingPoints()
	// Inputs are drawn sequentially (the RNG stream must match the
	// sequential run); the sweep itself is one batched GoBatch call: the
	// small points run the lockstep batch engine in a single pool job, the
	// largest point opts into the pipelined engine as its own job
	// (scalingConfig). CollectSolve keeps the sweep fast: its traffic
	// rides the BFS tree instead of flooding every edge.
	reports := make([]core.SimulationReport, len(params))
	points := make([]BatchPoint, len(params))
	for i, p := range params {
		l, err := lbgraph.NewLinear(p)
		if err != nil {
			return err
		}
		in, err := scalingInputs(p, rng)
		if err != nil {
			return err
		}
		points[i] = BatchPoint{
			Fam: l, In: in,
			Build:   func() (core.Instance, error) { return l.BuildWith(w.Builds, in) },
			Factory: core.CollectProgramsWith(w.Solve),
			Extract: core.WitnessOpt,
			Cfg:     scalingConfig(i, len(params)),
			Report:  &reports[i],
		}
	}
	w.GoBatch(points)
	if err := w.Gather(); err != nil {
		return err
	}
	for i, p := range params {
		report := reports[i]
		c.assert(report.AccountingHolds(), "%v: accounting violated", p)
		c.assert(report.Correct(), "%v: wrong decision", p)
		util := float64(report.BlackboardBits) / float64(report.AccountingBound)
		tab.add(p.String(), report.N, p.K(), report.CutSize, report.Rounds,
			report.BlackboardBits, report.AccountingBound, util)
	}
	tab.write(w)
	fmt.Fprintf(w, "As the construction grows, k tracks n while the cut stays polylogarithmic in k — the "+
		"T·|cut|·B budget therefore forces T to grow nearly linearly in n once the Ω(k/(t log t)) "+
		"communication bound must fit through the cut. The utilisation column shows the actual algorithm "+
		"using only a fraction of the budget: the bound is conservative in the right direction.\n")
	return c.err()
}
