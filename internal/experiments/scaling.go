package experiments

import (
	"fmt"
	"math/rand"

	"congestlb/internal/bitvec"
	"congestlb/internal/congest"
	"congestlb/internal/core"
	"congestlb/internal/lbgraph"
)

// The scaling experiment runs the full Theorem 5 reduction at increasing
// instance sizes and reports how the accounting quantities move: k grows
// linearly with n while the cut stays polylogarithmic — the shape that
// turns the communication bound into a near-linear round bound.

func init() {
	register(Experiment{
		ID:       "scaling",
		Title:    "Reduction accounting across instance sizes",
		PaperRef: "Theorems 1 and 5 (the shape of the bound)",
		Run:      runScaling,
	})
}

func runScaling(w *Ctx) error {
	var c check
	rng := rand.New(rand.NewSource(73))
	tab := newTable("params", "n", "k", "∣cut∣", "rounds T", "blackboard bits", "bound T·∣cut∣·B", "utilisation")
	params := []lbgraph.Params{
		{T: 2, Alpha: 1, Ell: 3}, // n=48,  k=4
		{T: 3, Alpha: 1, Ell: 4}, // n=90,  k=5
		{T: 4, Alpha: 1, Ell: 5}, // n=192, k=6
	}
	// Each sweep point is one instance job: inputs are drawn sequentially
	// (the RNG stream must match the sequential run), the build and the
	// full CONGEST simulation run on the pool, and the rows flush in sweep
	// order after Gather.
	reports := make([]core.SimulationReport, len(params))
	for i, p := range params {
		l, err := lbgraph.NewLinear(p)
		if err != nil {
			return err
		}
		in, _, err := bitvec.RandomUniquelyIntersecting(p.K(), p.T, bitvec.GenOptions{Density: 0.3}, rng)
		if err != nil {
			return err
		}
		w.Go(func() error {
			inst, err := l.BuildWith(w.Builds, in)
			if err != nil {
				return err
			}
			// CollectSolve keeps the sweep fast: its traffic rides the
			// BFS tree instead of flooding every edge.
			report, err := core.SimulateBuiltCtx(w.Context(), l, in, inst, core.CollectProgramsWith(w.Solve), core.WitnessOpt, congest.Config{Seed: 11})
			if err != nil {
				return err
			}
			reports[i] = report
			return nil
		})
	}
	if err := w.Gather(); err != nil {
		return err
	}
	for i, p := range params {
		report := reports[i]
		c.assert(report.AccountingHolds(), "%v: accounting violated", p)
		c.assert(report.Correct(), "%v: wrong decision", p)
		util := float64(report.BlackboardBits) / float64(report.AccountingBound)
		tab.add(p.String(), report.N, p.K(), report.CutSize, report.Rounds,
			report.BlackboardBits, report.AccountingBound, util)
	}
	tab.write(w)
	fmt.Fprintf(w, "As the construction grows, k tracks n while the cut stays polylogarithmic in k — the "+
		"T·|cut|·B budget therefore forces T to grow nearly linearly in n once the Ω(k/(t log t)) "+
		"communication bound must fit through the cut. The utilisation column shows the actual algorithm "+
		"using only a fraction of the budget: the bound is conservative in the right direction.\n")
	return c.err()
}
