package experiments

import (
	"fmt"
	"math/rand"

	"congestlb/internal/bitvec"
	"congestlb/internal/lbgraph"
	"congestlb/internal/mis"
)

// The solver experiment is an ablation of our own verification engine: the
// exact MaxIS solver's clique-cover upper bound is what makes mechanical
// verification of Claims 1-7 tractable. It compares branch-and-bound work
// with the construction's natural cover (the A^i and C^i_h cliques)
// against the generic greedy cover.

func init() {
	register(Experiment{
		ID:       "solver",
		Title:    "Verification-engine ablation: natural vs greedy clique cover in the exact solver",
		PaperRef: "methodology (what makes checking Claims 1-7 feasible)",
		Run:      runSolver,
	})
}

func runSolver(w *Ctx) error {
	var c check
	tab := newTable("params", "n", "case", "steps (natural cover)", "steps (greedy cover)", "same optimum")
	rng := rand.New(rand.NewSource(59))
	params := []lbgraph.Params{
		{T: 2, Alpha: 1, Ell: 3},
		{T: 3, Alpha: 1, Ell: 4},
	}
	cases := []struct {
		name      string
		intersect bool
	}{
		{name: "intersecting", intersect: true},
		{name: "disjoint", intersect: false},
	}
	// One job per (params, case) cell: inputs are drawn sequentially in
	// the original nesting order, the build and both cover solves run on
	// the pool, rows flush in sweep order.
	type coverCompare struct {
		n                int
		natural, greedy  mis.Solution
	}
	results := make([]coverCompare, len(params)*len(cases))
	for pi, p := range params {
		l, err := lbgraph.NewLinear(p)
		if err != nil {
			return err
		}
		for ci, tc := range cases {
			var in bitvec.Inputs
			if tc.intersect {
				in, _, err = bitvec.RandomUniquelyIntersecting(p.K(), p.T, bitvec.GenOptions{Density: 0.4}, rng)
			} else {
				in, err = bitvec.RandomPairwiseDisjoint(p.K(), p.T, bitvec.GenOptions{Density: 0.4}, rng)
			}
			if err != nil {
				return err
			}
			slot := pi*len(cases) + ci
			w.Go(func() error {
				inst, err := l.BuildWith(w.Builds, in)
				if err != nil {
					return err
				}
				natural, err := w.Solve.Exact(inst.Graph, mis.Options{CliqueCover: inst.CliqueCover})
				if err != nil {
					return err
				}
				greedy, err := w.Solve.Exact(inst.Graph, mis.Options{})
				if err != nil {
					return err
				}
				results[slot] = coverCompare{n: inst.Graph.N(), natural: natural, greedy: greedy}
				return nil
			})
		}
	}
	if err := w.Gather(); err != nil {
		return err
	}
	for pi, p := range params {
		for ci, tc := range cases {
			r := results[pi*len(cases)+ci]
			c.assert(r.natural.Weight == r.greedy.Weight,
				"%v %s: covers disagree on optimum (%d vs %d)", p, tc.name, r.natural.Weight, r.greedy.Weight)
			tab.add(p.String(), r.n, tc.name, r.natural.Steps, r.greedy.Steps,
				r.natural.Weight == r.greedy.Weight)
		}
	}
	tab.write(w)
	fmt.Fprintf(w, "Both covers prove the same optima (a correctness cross-check of the solver itself); "+
		"the construction-aware cover is what keeps verification fast enough to run inside the test "+
		"suite on every build.\n")
	return c.err()
}
