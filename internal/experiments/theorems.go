package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"congestlb/internal/bitvec"
	"congestlb/internal/cc"
	"congestlb/internal/congest"
	"congestlb/internal/core"
	"congestlb/internal/lbgraph"
)

// The theorem experiments regenerate the paper's headline results: the
// round lower-bound tables of Theorems 1 and 2, the communication
// complexity sandwich of Theorem 3, the live accounting of Theorem 5, and
// the cut-size measurement that feeds Corollary 1.

func init() {
	register(Experiment{
		ID:       "theorem1",
		Title:    "Linear lower bound: (1/2+ε)-approx MaxIS needs Ω(n/log³n) rounds",
		PaperRef: "Theorem 1 (Section 4)",
		Run:      runTheorem1,
	})
	register(Experiment{
		ID:       "theorem2",
		Title:    "Quadratic lower bound: (3/4+ε)-approx MaxIS needs Ω(n²/log³n) rounds",
		PaperRef: "Theorem 2 (Section 5)",
		Run:      runTheorem2,
	})
	register(Experiment{
		ID:       "theorem3",
		Title:    "Promise pairwise disjointness: Ω(k/(t log t)) vs O(k) protocols",
		PaperRef: "Theorem 3 (Chakrabarti-Khot-Sun), Definition 2",
		Run:      runTheorem3,
	})
	register(Experiment{
		ID:       "theorem5",
		Title:    "Simulation accounting: blackboard bits ≤ T·|cut|·B on live runs",
		PaperRef: "Theorem 5 (Section 3)",
		Run:      runTheorem5,
	})
	register(Experiment{
		ID:       "cutsize",
		Title:    "Cut size: measured |cut(G_x̄)| vs the paper's Θ(t²log²k) claim",
		PaperRef: "Proofs of Theorems 1-2 (cut accounting)",
		Run:      runCutSize,
	})
}

func runTheorem1(w *Ctx) error {
	var c check
	// The asymptotic table: the paper's bound across network sizes, next
	// to the bound Bachrach et al. had at the weaker approximation factor.
	asym := newTable("n", "Ω(n/log³n) (Thm 1, ½+ε)", "Ω(n/log⁶n) (prior, 5/6+ε)", "improvement")
	for _, exp := range []int{10, 14, 18, 22, 26} {
		n := float64(int64(1) << exp)
		now, prior := core.Theorem1Bound(n), core.PriorLinearBound(n)
		asym.add(fmt.Sprintf("2^%d", exp), now, prior, fmt.Sprintf("%.0fx", now/prior))
		c.assert(now > prior, "new bound should dominate prior at n=2^%d", exp)
	}
	asym.write(w)

	// Corollary 1 instantiated on real built instances: measure the cut,
	// plug in CC(k,t) = k/(t log t), divide by cut·log n. One instance job
	// per parameterisation; the builds are served from the build cache on
	// repeat runs.
	params := []lbgraph.Params{
		{T: 2, Alpha: 1, Ell: 3},
		{T: 3, Alpha: 1, Ell: 4},
		{T: 4, Alpha: 1, Ell: 5},
		{T: 2, Alpha: 2, Ell: 4},
	}
	type measured struct{ cut, n int }
	rows := make([]measured, len(params))
	for i, p := range params {
		l, err := lbgraph.NewLinear(p)
		if err != nil {
			return err
		}
		w.Go(func() error {
			built, err := l.BuildFixedWith(w.Builds)
			if err != nil {
				return err
			}
			rows[i] = measured{cut: built.Partition.CutSize(built.Graph), n: built.Graph.N()}
			return nil
		})
	}
	if err := w.Gather(); err != nil {
		return err
	}
	inst := newTable("params", "n", "k", "∣cut∣", "CC bound (bits)", "round LB k/(t·logt·∣cut∣·log n)")
	for i, p := range params {
		cut, n := rows[i].cut, rows[i].n
		k := p.K()
		lb := core.RoundLowerBound(k, p.T, cut, n)
		inst.add(p.String(), n, k, cut, cc.LowerBoundBits(k, p.T), lb)
		c.assert(cut > 0, "cut must be positive")
	}
	inst.write(w)
	fmt.Fprintf(w, "At buildable sizes the k/(cut·polylog) ratio is tiny — the bound is asymptotic. "+
		"The shape is what matters: k = Θ(n) grows linearly while the cut stays polylogarithmic in k, "+
		"so the derived round bound grows nearly linearly in n, as Theorem 1 states.\n")
	return c.err()
}

func runTheorem2(w *Ctx) error {
	var c check
	asym := newTable("n", "Ω(n²/log³n) (Thm 2, 3/4+ε)", "Ω(n²/log⁷n) (prior, 7/8+ε)", "O(n²) universal upper bound")
	for _, exp := range []int{10, 14, 18, 22} {
		n := float64(int64(1) << exp)
		now, prior := core.Theorem2Bound(n), core.PriorQuadraticBound(n)
		asym.add(fmt.Sprintf("2^%d", exp), now, prior, n*n)
		c.assert(now > prior, "new bound should dominate prior at n=2^%d", exp)
		c.assert(now < n*n, "lower bound cannot exceed the universal upper bound")
	}
	asym.write(w)

	params := []lbgraph.Params{
		lbgraph.FigureParams(2),
		lbgraph.FigureParams(3),
		{T: 2, Alpha: 1, Ell: 4},
	}
	type measured struct{ cut, n, k2 int }
	rows := make([]measured, len(params))
	for i, p := range params {
		f, err := lbgraph.NewQuadratic(p)
		if err != nil {
			return err
		}
		w.Go(func() error {
			built, err := f.BuildFixedWith(w.Builds)
			if err != nil {
				return err
			}
			rows[i] = measured{
				cut: built.Partition.CutSize(built.Graph),
				n:   built.Graph.N(),
				k2:  f.InputBits(),
			}
			return nil
		})
	}
	if err := w.Gather(); err != nil {
		return err
	}
	inst := newTable("params", "n", "input bits k²", "∣cut∣", "round LB k²/(t·logt·∣cut∣·log n)")
	for i, p := range params {
		m := rows[i]
		inst.add(p.String(), m.n, m.k2, m.cut, core.RoundLowerBound(m.k2, p.T, m.cut, m.n))
	}
	inst.write(w)
	fmt.Fprintf(w, "The quadratic family feeds k² = Θ(n²) input bits through the same polylog cut, "+
		"lifting the round bound from near-linear to near-quadratic — within log³n of the O(n²) ceiling.\n")
	return c.err()
}

func runTheorem3(w *Ctx) error {
	var c check
	tab := newTable("k", "t", "Ω(k/(t log t)) bits", "write-all cost t·k", "probe cost k+1", "protocols correct")
	rng := rand.New(rand.NewSource(23))
	configs := []struct{ k, t int }{
		{k: 64, t: 2}, {k: 256, t: 3}, {k: 1024, t: 4}, {k: 4096, t: 8},
	}
	// Instance generation consumes the shared RNG and stays sequential;
	// the protocol audits — the per-configuration work — run as jobs.
	type audits struct{ writeAll, probe cc.RunReport }
	results := make([]audits, len(configs))
	for i, cfg := range configs {
		instances := make([]bitvec.Inputs, 0, 30)
		truths := make([]bool, 0, 30)
		for j := 0; j < 30; j++ {
			in, truth, err := bitvec.RandomPromiseInstance(cfg.k, cfg.t, bitvec.GenOptions{Density: 0.4}, 0.5, rng)
			if err != nil {
				return err
			}
			instances = append(instances, in)
			truths = append(truths, truth)
		}
		w.Go(func() error {
			writeAll, err := cc.Audit(cc.WriteAll{}, instances, truths)
			if err != nil {
				return err
			}
			probe, err := cc.Audit(cc.FirstPlayerProbe{}, instances, truths)
			if err != nil {
				return err
			}
			results[i] = audits{writeAll: writeAll, probe: probe}
			return nil
		})
	}
	if err := w.Gather(); err != nil {
		return err
	}
	for i, cfg := range configs {
		writeAll, probe := results[i].writeAll, results[i].probe
		c.assert(writeAll.Wrong == 0 && probe.Wrong == 0, "protocol errors at k=%d t=%d", cfg.k, cfg.t)
		lower := cc.LowerBoundBits(cfg.k, cfg.t)
		c.assert(float64(probe.MaxBits) >= lower, "probe cost below the information bound")
		tab.add(cfg.k, cfg.t, lower, writeAll.MaxBits, probe.MaxBits,
			fmt.Sprintf("%d+%d/60", 30-writeAll.Wrong, 30-probe.Wrong))
	}
	tab.write(w)
	fmt.Fprintf(w, "The sandwich: the best upper bound (k+1 bits) sits a t·log t factor above the CKS lower bound, "+
		"confirming the promise problem costs Θ̃(k) bits — the fuel of every reduction in the paper.\n\n")

	// Empirical converse: protocols communicating o(k) bits must err. The
	// truncated probe announces only a prefix of x^1; its error on
	// uniformly-placed intersections grows as the prefix shrinks, exactly
	// as the Ω(k/(t log t)) bound (for error ≤ 1/3) demands. Inputs are
	// drawn sequentially per prefix; each prefix's 200 probe trials are
	// one job.
	const k, trials = 512, 200
	rng2 := rand.New(rand.NewSource(47))
	prefixes := []int{k, 3 * k / 4, k / 2, k / 4, k / 16}
	wrongs := make([]int, len(prefixes))
	for i, prefix := range prefixes {
		inputs := make([]bitvec.Inputs, trials)
		for tr := 0; tr < trials; tr++ {
			in, _, err := bitvec.RandomUniquelyIntersecting(k, 2, bitvec.GenOptions{Density: 0.2}, rng2)
			if err != nil {
				return err
			}
			inputs[tr] = in
		}
		w.Go(func() error {
			wrong := 0
			for _, in := range inputs {
				var bb cc.Blackboard
				got, err := cc.TruncatedProbe{PrefixBits: prefix}.Run(in, &bb)
				if err != nil {
					return err
				}
				if got {
					wrong++
				}
			}
			wrongs[i] = wrong
			return nil
		})
	}
	if err := w.Gather(); err != nil {
		return err
	}
	trunc := newTable("prefix bits announced", "cost (bits)", "error rate on intersecting inputs", "≤1/3 error feasible?")
	for i, prefix := range prefixes {
		rate := float64(wrongs[i]) / trials
		trunc.add(prefix, prefix+1, rate, rate <= 1.0/3)
		if prefix == k {
			c.assert(rate == 0, "full prefix erred at rate %f", rate)
		}
		if prefix == k/16 {
			c.assert(rate > 1.0/3, "tiny prefix error rate %f should exceed 1/3", rate)
		}
	}
	trunc.write(w)
	fmt.Fprintf(w, "Cutting the announced bits cuts correctness: at k/4 bits the error is ≈3/4 — no "+
		"amount of cleverness recovers constant success below Θ(k) communication, which is what makes "+
		"the reduction's Ω(k/(t log t)) fuel non-negotiable.\n")
	return c.err()
}

func runTheorem5(w *Ctx) error {
	var c check
	p := lbgraph.Params{T: 2, Alpha: 1, Ell: 3}
	l, err := lbgraph.NewLinear(p)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(29))
	tab := newTable("algorithm", "case", "rounds T", "∣cut∣", "B", "blackboard bits", "bound T·∣cut∣·B", "holds", "decision correct")
	algos := []struct {
		name    string
		factory core.ProgramFactory
		extract core.OptExtractor
	}{
		{name: "GossipExact", factory: core.GossipProgramsWith(w.Solve), extract: core.GossipOpt},
		{name: "CollectSolve", factory: core.CollectProgramsWith(w.Solve), extract: core.WitnessOpt},
	}
	cases := []struct {
		name      string
		intersect bool
	}{
		{name: "uniquely intersecting", intersect: true},
		{name: "pairwise disjoint", intersect: false},
	}
	// The whole (case × algorithm) grid is one batched sweep: input
	// generation stays on the RNG stream, and both algorithms of a case
	// share one memoised build — the same *Graph by pointer, which the
	// batch engine shares instead of duplicating adjacency.
	reports := make([]core.SimulationReport, len(cases)*len(algos))
	points := make([]BatchPoint, 0, len(cases)*len(algos))
	for ci, tc := range cases {
		var in bitvec.Inputs
		if tc.intersect {
			in, _, err = bitvec.RandomUniquelyIntersecting(p.K(), p.T, bitvec.GenOptions{Density: 0.3}, rng)
		} else {
			in, err = bitvec.RandomPairwiseDisjoint(p.K(), p.T, bitvec.GenOptions{Density: 0.3}, rng)
		}
		if err != nil {
			return err
		}
		// Case-scoped build memo: Build callbacks run sequentially inside
		// the batch job, so an unlocked closure is race-free.
		var (
			built     core.Instance
			builtErr  error
			haveBuilt bool
		)
		build := func() (core.Instance, error) {
			if !haveBuilt {
				built, builtErr = l.BuildWith(w.Builds, in)
				haveBuilt = true
			}
			return built, builtErr
		}
		for ai, a := range algos {
			points = append(points, BatchPoint{
				Fam: l, In: in, Build: build,
				Factory: a.factory, Extract: a.extract,
				Cfg:    congest.Config{Seed: 5},
				Report: &reports[ci*len(algos)+ai],
			})
		}
	}
	w.GoBatch(points)
	if err := w.Gather(); err != nil {
		return err
	}
	for ci, tc := range cases {
		for ai, a := range algos {
			report := reports[ci*len(algos)+ai]
			c.assert(report.AccountingHolds(), "%s/%s: accounting violated", a.name, tc.name)
			c.assert(report.Correct(), "%s/%s: wrong decision", a.name, tc.name)
			tab.add(a.name, tc.name, report.Rounds, report.CutSize, report.Bandwidth,
				report.BlackboardBits, report.AccountingBound, report.AccountingHolds(), report.Correct())
		}
	}
	tab.write(w)
	fmt.Fprintf(w, "Two different real CONGEST algorithms (flooding gossip and BFS-tree collect-and-solve) "+
		"ran on G_x̄ with every cut-crossing message charged to a shared blackboard. The transcript lengths "+
		"respect Theorem 5's T·|cut|·B bound — the inequality is algorithm-independent, exactly as the "+
		"simulation argument requires — and both induced protocols decide promise pairwise disjointness "+
		"correctly in both cases.\n")
	return c.err()
}

func runCutSize(w *Ctx) error {
	var c check
	tab := newTable("params", "k", "measured ∣cut∣", "paper claim t²log²k", "counted t(t−1)/2·M·q(q−1)", "measured/claim")
	params := []lbgraph.Params{
		{T: 2, Alpha: 1, Ell: 3},
		{T: 3, Alpha: 1, Ell: 4},
		{T: 2, Alpha: 2, Ell: 4},
		{T: 4, Alpha: 1, Ell: 5},
		{T: 2, Alpha: 2, Ell: 8},
	}
	cuts := make([]int, len(params))
	for i, p := range params {
		l, err := lbgraph.NewLinear(p)
		if err != nil {
			return err
		}
		w.Go(func() error {
			inst, err := l.BuildFixedWith(w.Builds)
			if err != nil {
				return err
			}
			cuts[i] = inst.Partition.CutSize(inst.Graph)
			return nil
		})
	}
	if err := w.Gather(); err != nil {
		return err
	}
	for i, p := range params {
		measured := cuts[i]
		counted := (p.T * (p.T - 1) / 2) * p.M() * p.Q() * (p.Q() - 1)
		c.assert(measured == counted, "%v: measured %d != counted %d", p, measured, counted)
		logK := math.Log2(float64(p.K()))
		if logK < 1 {
			logK = 1
		}
		claim := float64(p.T*p.T) * logK * logK
		tab.add(p.String(), p.K(), measured, claim, counted, float64(measured)/claim)
	}
	tab.write(w)
	fmt.Fprintf(w, "The construction as written has |cut| = t(t−1)/2 · (ℓ+α) · q(q−1) = Θ(t²·log³k) at the "+
		"paper's parameter schedule (ℓ+α = log k positions, each contributing ≈log²k edges) — one log factor "+
		"above the Θ(t²log²k) stated in the proofs of Theorems 1-2. With the measured cut the derived bounds "+
		"read Ω(n/log⁴n) and Ω(n²/log⁴n); Claims 1-7 and the framework are unaffected. See DESIGN.md.\n")
	return c.err()
}
