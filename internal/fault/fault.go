// Package fault is the Lab's deterministic fault-injection layer.
//
// Production code marks its fault points with the package-level helpers
// (Should, Err, Corrupt, MaybePanic, Stall). With no injector installed —
// the production default — every helper is a single atomic pointer load
// returning the zero decision, so the instrumented paths stay effectively
// free (see BenchmarkFaultOverhead).
//
// A chaos run installs an Injector parsed from a plan spec:
//
//	<seed>:<point>[@match][*count][=rate][,<point>...]
//
// e.g. "42:disk-read=0.25,worker-panic@w1*1". Decisions are pure functions
// of (seed, point, site key, attempt): the same spec fires at the same
// content-addressed sites regardless of goroutine scheduling, worker
// count, or wall-clock, which is what lets the chaos suite assert exact
// failure attribution. The only scheduling-dependent construct is *count
// (an atomic budget of at-most-count firings), used to inject "exactly
// one" fault without caring which racing site claims it.
//
// The package also owns PanicError, the structured error every recovery
// site in the repo (scheduler jobs, experiment bodies, solver workers,
// pipeline/batch engines) converts panics into. It lives here — not in
// the congestlb facade — so that leaf packages can return it without an
// import cycle; the facade re-exports it as congestlb.PanicError.
package fault

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Point names an instrumented fault site class.
type Point uint8

const (
	// DiskRead fails a solve-cache disk-tier read attempt.
	DiskRead Point = iota
	// DiskWrite fails a solve-cache disk-tier write attempt.
	DiskWrite
	// DiskSlow stalls a disk-tier operation (exercises latency paths).
	DiskSlow
	// DiskCorrupt flips bytes in a loaded disk-tier entry before it is
	// parsed (exercises the quarantine path).
	DiskCorrupt
	// JobPanic panics inside an experiment body or scheduler job.
	JobPanic
	// SolverPanic panics inside an exact-solver worker.
	SolverPanic
	// WorkerStall stalls a solver worker at a frame boundary.
	WorkerStall
	numPoints
)

var pointNames = [numPoints]string{
	DiskRead:    "disk-read",
	DiskWrite:   "disk-write",
	DiskSlow:    "disk-slow",
	DiskCorrupt: "disk-corrupt",
	JobPanic:    "job-panic",
	SolverPanic: "worker-panic",
	WorkerStall: "worker-stall",
}

func (p Point) String() string {
	if int(p) < len(pointNames) {
		return pointNames[p]
	}
	return "fault-point-" + strconv.Itoa(int(p))
}

// EnvVar is the environment variable cmd/experiments (and the chaos CI
// job) reads a fault spec from.
const EnvVar = "CONGESTLB_FAULTS"

// ErrInjected is the sentinel wrapped by every injected I/O error, so
// tests can tell injected failures from real ones.
var ErrInjected = errors.New("injected fault")

// stallDuration is how long a fired WorkerStall/DiskSlow point sleeps:
// long enough to reorder goroutines, short enough to keep chaos suites
// fast even at high rates.
const stallDuration = time.Millisecond

// rule is one parsed plan entry: point[@match][*count][=rate].
type rule struct {
	point Point
	match string // substring the site key must contain; "" matches all
	rate  float64
	max   int64 // at-most-N firings; 0 = unlimited
	fired atomic.Int64
}

// Injector holds a parsed fault plan. Decisions are deterministic in
// (seed, point, key, attempt) except for *count budgets, which are
// first-come-first-served across racing sites.
type Injector struct {
	seed  uint64
	spec  string
	rules []*rule
	fired [numPoints]atomic.Int64
}

// Parse builds an Injector from a "<seed>:<plan>" spec.
func Parse(spec string) (*Injector, error) {
	seedStr, plan, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("fault: spec %q: want \"<seed>:<plan>\"", spec)
	}
	seed, err := strconv.ParseUint(strings.TrimSpace(seedStr), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("fault: spec %q: bad seed: %v", spec, err)
	}
	in := &Injector{seed: seed, spec: spec}
	for _, entry := range strings.Split(plan, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		r, err := parseRule(entry)
		if err != nil {
			return nil, fmt.Errorf("fault: spec %q: %v", spec, err)
		}
		in.rules = append(in.rules, r)
	}
	if len(in.rules) == 0 {
		return nil, fmt.Errorf("fault: spec %q: empty plan", spec)
	}
	return in, nil
}

// parseRule parses one plan entry: point[@match][*count][=rate].
func parseRule(entry string) (*rule, error) {
	r := &rule{rate: 1}
	rest := entry
	if head, rateStr, ok := strings.Cut(rest, "="); ok {
		rate, err := strconv.ParseFloat(rateStr, 64)
		if err != nil || rate < 0 || rate > 1 {
			return nil, fmt.Errorf("entry %q: rate must be in [0,1]", entry)
		}
		r.rate, rest = rate, head
	}
	if head, maxStr, ok := strings.Cut(rest, "*"); ok {
		max, err := strconv.ParseInt(maxStr, 10, 64)
		if err != nil || max < 1 {
			return nil, fmt.Errorf("entry %q: count must be a positive integer", entry)
		}
		r.max, rest = max, head
	}
	if head, match, ok := strings.Cut(rest, "@"); ok {
		r.match, rest = match, head
	}
	point, ok := pointByName(rest)
	if !ok {
		return nil, fmt.Errorf("entry %q: unknown point %q", entry, rest)
	}
	r.point = point
	return r, nil
}

func pointByName(name string) (Point, bool) {
	for p, n := range pointNames {
		if n == name {
			return Point(p), true
		}
	}
	return 0, false
}

// FromEnv parses CONGESTLB_FAULTS. Returns (nil, nil) when unset/empty.
func FromEnv() (*Injector, error) {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return nil, nil
	}
	return Parse(spec)
}

// Spec returns the spec the injector was parsed from.
func (in *Injector) Spec() string { return in.spec }

// Counts reports how many times each point fired, keyed by point name.
// Points that never fired are omitted.
func (in *Injector) Counts() map[string]int64 {
	m := make(map[string]int64)
	for p := range in.fired {
		if n := in.fired[p].Load(); n > 0 {
			m[Point(p).String()] = n
		}
	}
	return m
}

// decide is the core decision: does point p fire at site key, attempt n?
func (in *Injector) decide(p Point, key string, n uint64) bool {
	for _, r := range in.rules {
		if r.point != p {
			continue
		}
		if r.match != "" && !strings.Contains(key, r.match) {
			continue
		}
		if r.rate < 1 {
			// FNV-1a over (seed, point, key, attempt), mapped to [0,1).
			h := uint64(14695981039346656037)
			mix := func(b byte) { h ^= uint64(b); h *= 1099511628211 }
			for i := 0; i < 8; i++ {
				mix(byte(in.seed >> (8 * i)))
			}
			mix(byte(p))
			for i := 0; i < len(key); i++ {
				mix(key[i])
			}
			for i := 0; i < 8; i++ {
				mix(byte(n >> (8 * i)))
			}
			if float64(h>>11)/float64(1<<53) >= r.rate {
				continue
			}
		}
		if r.max > 0 && r.fired.Add(1) > r.max {
			continue
		}
		in.fired[p].Add(1)
		return true
	}
	return false
}

// active is the process-wide injector. Production never installs one, so
// every fault helper reduces to this single atomic load plus a nil check.
var active atomic.Pointer[Injector]

// Set installs in as the process-wide injector (nil disables injection)
// and returns the previous one, letting tests restore it in a Cleanup.
func Set(in *Injector) *Injector { return active.Swap(in) }

// Active returns the installed injector, or nil when injection is off.
func Active() *Injector { return active.Load() }

// Should reports whether point p fires at site key.
func Should(p Point, key string) bool {
	in := active.Load()
	return in != nil && in.decide(p, key, 0)
}

// ShouldN is Should for retried sites: attempt n is part of the decision,
// so a plan with rate<1 can fail attempt 0 and pass attempt 1 at the same
// key, exercising retry-then-succeed paths deterministically.
func ShouldN(p Point, key string, n uint64) bool {
	in := active.Load()
	return in != nil && in.decide(p, key, n)
}

// Err returns an injected error when point p fires at (key, attempt n),
// else nil. The error wraps ErrInjected.
func Err(p Point, key string, n uint64) error {
	if !ShouldN(p, key, n) {
		return nil
	}
	return fmt.Errorf("%s@%s#%d: %w", p, key, n, ErrInjected)
}

// Corrupt returns data with deterministically flipped bytes when
// DiskCorrupt fires at key; otherwise it returns data untouched.
func Corrupt(key string, data []byte) []byte {
	if !Should(DiskCorrupt, key) || len(data) == 0 {
		return data
	}
	out := make([]byte, len(data))
	copy(out, data)
	// Flip a byte in each third of the entry so both header and payload
	// damage are exercised; XOR with 0xff guarantees a change.
	for i := 0; i < 3; i++ {
		out[(len(out)*i)/3] ^= 0xff
	}
	return out
}

// MaybePanic panics with an identifiable value when point p fires at key.
func MaybePanic(p Point, key string) {
	if Should(p, key) {
		panic(fmt.Sprintf("fault: injected panic %s@%s", p, key))
	}
}

// Stall sleeps briefly when point p fires at key.
func Stall(p Point, key string) {
	if Should(p, key) {
		time.Sleep(stallDuration)
	}
}

// PanicError is the structured error a recovered panic becomes. Op names
// the owning work item ("job", "experiment:scaling", "solver worker w1",
// "pipeline worker 2", "batch instance 3"); Value is the recovered panic
// value and Stack the goroutine stack captured at recovery.
//
// Error() deliberately excludes the stack: report lines built from it
// must be byte-stable across runs, and stacks are not.
type PanicError struct {
	Op    string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic in %s: %v", e.Op, e.Value)
}

// NewPanicError captures the current goroutine's stack around a recovered
// panic value. Call it from inside the deferred recover handler.
func NewPanicError(op string, value any) *PanicError {
	buf := make([]byte, 16<<10)
	buf = buf[:runtime.Stack(buf, false)]
	return &PanicError{Op: op, Value: value, Stack: buf}
}

// RecoverTo is a deferred one-liner for the common containment shape:
//
//	defer fault.RecoverTo(&err, "job")
//
// If the function is panicking, the panic is recovered into *errp as a
// *PanicError (overwriting any earlier error — the panic is the more
// urgent fact).
func RecoverTo(errp *error, op string) {
	if r := recover(); r != nil {
		*errp = NewPanicError(op, r)
	}
}
