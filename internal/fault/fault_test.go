package fault

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func install(t *testing.T, spec string) *Injector {
	t.Helper()
	in, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	prev := Set(in)
	t.Cleanup(func() { Set(prev) })
	return in
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"",                  // no seed separator
		"disk-read",         // no seed
		"x:disk-read",       // non-numeric seed
		"1:",                // empty plan
		"1:frobnicate",      // unknown point
		"1:disk-read=2",     // rate out of range
		"1:disk-read=-0.5",  // negative rate
		"1:disk-read*0",     // zero count
		"1:disk-read*x",     // non-numeric count
		"1:disk-read=0.5=1", // double rate
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestParseAcceptsFullSyntax(t *testing.T) {
	in, err := Parse("42: disk-read=0.25, worker-panic@w1*1, job-panic@scaling, disk-corrupt*2=0.5 ,")
	if err != nil {
		t.Fatal(err)
	}
	if len(in.rules) != 4 {
		t.Fatalf("rules = %d, want 4", len(in.rules))
	}
	r := in.rules[1]
	if r.point != SolverPanic || r.match != "w1" || r.max != 1 || r.rate != 1 {
		t.Fatalf("rule[1] = %+v", r)
	}
	r = in.rules[3]
	if r.point != DiskCorrupt || r.max != 2 || r.rate != 0.5 {
		t.Fatalf("rule[3] = %+v", r)
	}
}

func TestDisabledHelpersAreNoOps(t *testing.T) {
	prev := Set(nil)
	t.Cleanup(func() { Set(prev) })
	if Should(DiskRead, "k") || ShouldN(DiskWrite, "k", 3) {
		t.Fatal("disabled injector fired")
	}
	if err := Err(DiskRead, "k", 0); err != nil {
		t.Fatal(err)
	}
	data := []byte("payload")
	if got := Corrupt("k", data); !bytes.Equal(got, data) {
		t.Fatal("Corrupt mutated data while disabled")
	}
	MaybePanic(JobPanic, "k") // must not panic
	Stall(WorkerStall, "k")   // must not stall noticeably
}

func TestDecisionsAreDeterministicAndKeyed(t *testing.T) {
	install(t, "7:disk-read=0.5")
	first := make(map[string]bool)
	for _, key := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		first[key] = Should(DiskRead, key)
	}
	fired := 0
	for key, want := range first {
		if Should(DiskRead, key) != want {
			t.Fatalf("decision for %q changed between calls", key)
		}
		if want {
			fired++
		}
	}
	if fired == 0 || fired == len(first) {
		t.Fatalf("rate 0.5 fired %d/%d keys — not discriminating", fired, len(first))
	}
	// A different seed must give a different firing pattern eventually.
	install(t, "8:disk-read=0.5")
	same := true
	for key, want := range first {
		if Should(DiskRead, key) != want {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical decisions on all keys")
	}
}

func TestAttemptIsPartOfTheDecision(t *testing.T) {
	install(t, "3:disk-read=0.5")
	varies := false
	for n := uint64(1); n < 16; n++ {
		if ShouldN(DiskRead, "fixed-key", n) != ShouldN(DiskRead, "fixed-key", 0) {
			varies = true
			break
		}
	}
	if !varies {
		t.Fatal("attempt number never changed the decision")
	}
}

func TestMatchAndCountBudget(t *testing.T) {
	in := install(t, "1:worker-panic@w1*2")
	if Should(SolverPanic, "w0") {
		t.Fatal("fired on non-matching key")
	}
	hits := 0
	for i := 0; i < 10; i++ {
		if Should(SolverPanic, "w1") {
			hits++
		}
	}
	if hits != 2 {
		t.Fatalf("count budget *2 fired %d times", hits)
	}
	if got := in.Counts()[SolverPanic.String()]; got != 2 {
		t.Fatalf("Counts() = %d, want 2", got)
	}
}

func TestErrWrapsSentinel(t *testing.T) {
	install(t, "1:disk-write")
	err := Err(DiskWrite, "key", 4)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "disk-write@key#4") {
		t.Fatalf("err = %v, want point@key#attempt", err)
	}
}

func TestCorruptChangesBytesDeterministically(t *testing.T) {
	install(t, "1:disk-corrupt")
	data := []byte(`{"schema":"x","payload":"0123456789abcdef"}`)
	orig := append([]byte(nil), data...)
	got := Corrupt("k", data)
	if bytes.Equal(got, orig) {
		t.Fatal("Corrupt returned unchanged bytes while firing")
	}
	if !bytes.Equal(data, orig) {
		t.Fatal("Corrupt mutated the caller's slice")
	}
	if again := Corrupt("k", orig); !bytes.Equal(again, got) {
		t.Fatal("Corrupt is not deterministic")
	}
}

func TestMaybePanicAndRecoverTo(t *testing.T) {
	install(t, "1:job-panic@boom")
	run := func(key string) (err error) {
		defer RecoverTo(&err, "job")
		MaybePanic(JobPanic, key)
		return nil
	}
	if err := run("quiet"); err != nil {
		t.Fatalf("non-matching key: %v", err)
	}
	err := run("boom")
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
	if pe.Op != "job" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = op %q, %d stack bytes", pe.Op, len(pe.Stack))
	}
	if s := pe.Error(); strings.Contains(s, "goroutine") || !strings.Contains(s, "panic in job") {
		t.Fatalf("Error() = %q — must be stack-free and name the op", s)
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(EnvVar, "")
	if in, err := FromEnv(); in != nil || err != nil {
		t.Fatalf("empty env: %v, %v", in, err)
	}
	t.Setenv(EnvVar, "9:disk-read=0.5")
	in, err := FromEnv()
	if err != nil || in == nil {
		t.Fatalf("FromEnv: %v, %v", in, err)
	}
	if in.Spec() != "9:disk-read=0.5" {
		t.Fatalf("Spec = %q", in.Spec())
	}
	t.Setenv(EnvVar, "nonsense")
	if _, err := FromEnv(); err == nil {
		t.Fatal("bad env accepted")
	}
}
