// Package field implements arithmetic over prime fields GF(p).
//
// The lower-bound constructions of Efron, Grossman and Khoury (PODC 2020)
// use large-distance error-correcting codes (Reed-Solomon) over an alphabet
// Σ whose size must be at least the code length ℓ+α. Reed-Solomon codes
// need a field, so this package provides GF(p) for word-sized primes p,
// together with deterministic primality testing and prime search used to
// pick the smallest valid alphabet.
//
// All elements are represented as uint64 values in [0, p). Operations are
// carefully written to avoid overflow for any p < 2^63 by routing products
// through math/bits 128-bit multiplication.
package field

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrNotPrime is returned by New when the requested modulus is not prime.
var ErrNotPrime = errors.New("field: modulus is not prime")

// Field is a prime field GF(p). The zero value is not usable; construct
// with New. Field values are immutable and safe for concurrent use.
type Field struct {
	p uint64
}

// New returns the field GF(p). It fails if p is not a prime in [2, 2^63).
func New(p uint64) (Field, error) {
	if p >= 1<<63 {
		return Field{}, fmt.Errorf("field: modulus %d too large (max 2^63-1)", p)
	}
	if !IsPrime(p) {
		return Field{}, fmt.Errorf("field: %d: %w", p, ErrNotPrime)
	}
	return Field{p: p}, nil
}

// MustNew is New for moduli known to be prime at compile time; it panics on
// invalid input. Intended for tests and fixed presets only.
func MustNew(p uint64) Field {
	f, err := New(p)
	if err != nil {
		panic(err)
	}
	return f
}

// P returns the field characteristic (the modulus).
func (f Field) P() uint64 { return f.p }

// Order returns the number of elements in the field, which equals P for a
// prime field.
func (f Field) Order() uint64 { return f.p }

// Valid reports whether x is a canonical element representation, i.e. x < p.
func (f Field) Valid(x uint64) bool { return x < f.p }

// Reduce maps an arbitrary uint64 into the canonical range [0, p).
func (f Field) Reduce(x uint64) uint64 { return x % f.p }

// Add returns x + y mod p. Arguments must be canonical.
func (f Field) Add(x, y uint64) uint64 {
	s := x + y
	if s >= f.p || s < x { // s < x detects wraparound (impossible for p < 2^63, kept for safety)
		s -= f.p
	}
	return s
}

// Sub returns x - y mod p. Arguments must be canonical.
func (f Field) Sub(x, y uint64) uint64 {
	if x >= y {
		return x - y
	}
	return x + (f.p - y)
}

// Neg returns -x mod p.
func (f Field) Neg(x uint64) uint64 {
	if x == 0 {
		return 0
	}
	return f.p - x
}

// Mul returns x * y mod p using 128-bit intermediate arithmetic.
func (f Field) Mul(x, y uint64) uint64 {
	hi, lo := bits.Mul64(x, y)
	_, rem := bits.Div64(hi%f.p, lo, f.p)
	return rem
}

// Pow returns x^e mod p by square-and-multiply. Pow(0, 0) is defined as 1,
// matching the empty-product convention used by polynomial evaluation.
func (f Field) Pow(x uint64, e uint64) uint64 {
	result := uint64(1 % f.p)
	base := x % f.p
	for e > 0 {
		if e&1 == 1 {
			result = f.Mul(result, base)
		}
		base = f.Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of x, using Fermat's little
// theorem (x^(p-2)). It panics if x == 0, which has no inverse; callers are
// expected to guard divisions themselves.
func (f Field) Inv(x uint64) uint64 {
	if x%f.p == 0 {
		panic("field: inverse of zero")
	}
	return f.Pow(x, f.p-2)
}

// Div returns x / y mod p. It panics if y == 0.
func (f Field) Div(x, y uint64) uint64 { return f.Mul(x, f.Inv(y)) }

// EvalPoly evaluates the polynomial with coefficient slice coeffs
// (coeffs[i] is the coefficient of x^i) at the point x, via Horner's rule.
// Coefficients need not be canonical; they are reduced.
func (f Field) EvalPoly(coeffs []uint64, x uint64) uint64 {
	var acc uint64
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = f.Add(f.Mul(acc, x), f.Reduce(coeffs[i]))
	}
	return acc
}

// Elements returns all field elements in order 0..p-1. It panics for
// fields too large to enumerate (p > 1<<20), which would be a programming
// error in this codebase where enumeration is only used for small alphabets.
func (f Field) Elements() []uint64 {
	if f.p > 1<<20 {
		panic("field: refusing to enumerate a field with more than 2^20 elements")
	}
	out := make([]uint64, f.p)
	for i := range out {
		out[i] = uint64(i)
	}
	return out
}

// String implements fmt.Stringer.
func (f Field) String() string { return fmt.Sprintf("GF(%d)", f.p) }

// IsPrime reports whether n is prime, using a deterministic Miller-Rabin
// test with a witness set proven exhaustive for all 64-bit integers.
func IsPrime(n uint64) bool {
	switch {
	case n < 2:
		return false
	case n < 4:
		return true
	case n%2 == 0:
		return false
	}
	// Write n-1 = d * 2^r with d odd.
	d := n - 1
	r := 0
	for d%2 == 0 {
		d /= 2
		r++
	}
	// These witnesses are deterministic for all n < 3,317,044,064,679,887,385,961,981
	// (Sorenson & Webster), which covers every uint64.
	witnesses := [...]uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}
	for _, a := range witnesses {
		if a%n == 0 {
			continue
		}
		if !millerRabinWitnessPasses(n, a, d, r) {
			return false
		}
	}
	return true
}

// millerRabinWitnessPasses runs one Miller-Rabin round: it returns true if n
// passes (is probably prime) with respect to witness a, where n-1 = d*2^r.
func millerRabinWitnessPasses(n, a, d uint64, r int) bool {
	x := powMod(a, d, n)
	if x == 1 || x == n-1 {
		return true
	}
	for i := 0; i < r-1; i++ {
		x = mulMod(x, x, n)
		if x == n-1 {
			return true
		}
	}
	return false
}

// mulMod returns a*b mod m without overflow for any 64-bit inputs.
func mulMod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}

// powMod returns a^e mod m.
func powMod(a, e, m uint64) uint64 {
	result := uint64(1 % m)
	a %= m
	for e > 0 {
		if e&1 == 1 {
			result = mulMod(result, a, m)
		}
		a = mulMod(a, a, m)
		e >>= 1
	}
	return result
}

// NextPrime returns the smallest prime >= n. It panics if the search would
// exceed the uint64 range, which cannot happen for the code parameters used
// in this library (alphabet sizes are tiny compared to 2^64).
func NextPrime(n uint64) uint64 {
	if n <= 2 {
		return 2
	}
	candidate := n
	if candidate%2 == 0 {
		if IsPrime(candidate) { // only true for 2, handled above; kept for clarity
			return candidate
		}
		candidate++
	}
	for {
		if IsPrime(candidate) {
			return candidate
		}
		if candidate > candidate+2 {
			panic("field: NextPrime overflow")
		}
		candidate += 2
	}
}

// PrevPrime returns the largest prime <= n, or 0 if there is none (n < 2).
func PrevPrime(n uint64) uint64 {
	if n < 2 {
		return 0
	}
	if n == 2 {
		return 2
	}
	candidate := n
	if candidate%2 == 0 {
		candidate--
	}
	for candidate >= 3 {
		if IsPrime(candidate) {
			return candidate
		}
		candidate -= 2
	}
	return 2
}
