package field

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewRejectsComposite(t *testing.T) {
	tests := []struct {
		name string
		p    uint64
		ok   bool
	}{
		{name: "zero", p: 0, ok: false},
		{name: "one", p: 1, ok: false},
		{name: "two", p: 2, ok: true},
		{name: "three", p: 3, ok: true},
		{name: "four", p: 4, ok: false},
		{name: "seventeen", p: 17, ok: true},
		{name: "large prime", p: 2147483647, ok: true},
		{name: "large composite", p: 2147483649, ok: false},
		{name: "carmichael 561", p: 561, ok: false},
		{name: "carmichael 41041", p: 41041, ok: false},
		{name: "mersenne 2^61-1", p: (1 << 61) - 1, ok: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.p)
			if (err == nil) != tt.ok {
				t.Fatalf("New(%d) error = %v, want ok=%v", tt.p, err, tt.ok)
			}
		})
	}
}

func TestMustNewPanicsOnComposite(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(4) did not panic")
		}
	}()
	MustNew(4)
}

func TestFieldAxiomsSmall(t *testing.T) {
	// Exhaustively check the field axioms for a few small primes.
	for _, p := range []uint64{2, 3, 5, 7, 11, 13} {
		f := MustNew(p)
		for x := uint64(0); x < p; x++ {
			for y := uint64(0); y < p; y++ {
				if got, want := f.Add(x, y), (x+y)%p; got != want {
					t.Fatalf("GF(%d): Add(%d,%d)=%d want %d", p, x, y, got, want)
				}
				if got, want := f.Mul(x, y), (x*y)%p; got != want {
					t.Fatalf("GF(%d): Mul(%d,%d)=%d want %d", p, x, y, got, want)
				}
				if got, want := f.Sub(x, y), (x+p-y)%p; got != want {
					t.Fatalf("GF(%d): Sub(%d,%d)=%d want %d", p, x, y, got, want)
				}
			}
			if x != 0 {
				inv := f.Inv(x)
				if f.Mul(x, inv) != 1%p {
					t.Fatalf("GF(%d): %d * Inv(%d)=%d != 1", p, x, x, f.Mul(x, inv))
				}
			}
			if got, want := f.Add(x, f.Neg(x)), uint64(0); got != want {
				t.Fatalf("GF(%d): x + (-x) = %d, want 0", p, got)
			}
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	f := MustNew(7)
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	f.Inv(0)
}

func TestMulNoOverflow(t *testing.T) {
	// Products near the top of the 64-bit range must not wrap.
	p := uint64((1 << 61) - 1) // Mersenne prime
	f := MustNew(p)
	x, y := p-1, p-2
	// (p-1)(p-2) mod p = (-1)(-2) = 2.
	if got := f.Mul(x, y); got != 2 {
		t.Fatalf("Mul near 2^61: got %d want 2", got)
	}
	if got := f.Mul(p-1, p-1); got != 1 {
		t.Fatalf("(p-1)^2 mod p: got %d want 1", got)
	}
}

func TestPow(t *testing.T) {
	f := MustNew(13)
	tests := []struct {
		x, e, want uint64
	}{
		{x: 0, e: 0, want: 1},
		{x: 0, e: 5, want: 0},
		{x: 2, e: 0, want: 1},
		{x: 2, e: 12, want: 1}, // Fermat
		{x: 3, e: 3, want: 1},  // 27 mod 13
		{x: 5, e: 2, want: 12},
	}
	for _, tt := range tests {
		if got := f.Pow(tt.x, tt.e); got != tt.want {
			t.Errorf("Pow(%d,%d)=%d want %d", tt.x, tt.e, got, tt.want)
		}
	}
}

func TestEvalPoly(t *testing.T) {
	f := MustNew(11)
	// p(x) = 3 + 2x + x^2
	coeffs := []uint64{3, 2, 1}
	for x := uint64(0); x < 11; x++ {
		want := (3 + 2*x + x*x) % 11
		if got := f.EvalPoly(coeffs, x); got != want {
			t.Fatalf("EvalPoly at %d: got %d want %d", x, got, want)
		}
	}
	if got := f.EvalPoly(nil, 5); got != 0 {
		t.Fatalf("EvalPoly(nil) = %d, want 0", got)
	}
}

func TestEvalPolyReducesCoefficients(t *testing.T) {
	f := MustNew(7)
	if got, want := f.EvalPoly([]uint64{14, 8}, 3), uint64((0+1*3)%7); got != want {
		t.Fatalf("EvalPoly with non-canonical coeffs: got %d want %d", got, want)
	}
}

func TestIsPrimeAgainstSieve(t *testing.T) {
	const limit = 10000
	sieve := make([]bool, limit) // sieve[i] true means composite
	for i := 2; i*i < limit; i++ {
		if sieve[i] {
			continue
		}
		for j := i * i; j < limit; j += i {
			sieve[j] = true
		}
	}
	for n := uint64(0); n < limit; n++ {
		want := n >= 2 && !sieve[n]
		if got := IsPrime(n); got != want {
			t.Fatalf("IsPrime(%d)=%v want %v", n, got, want)
		}
	}
}

func TestNextPrime(t *testing.T) {
	tests := []struct {
		n, want uint64
	}{
		{n: 0, want: 2},
		{n: 2, want: 2},
		{n: 3, want: 3},
		{n: 4, want: 5},
		{n: 8, want: 11},
		{n: 9, want: 11},
		{n: 11, want: 11},
		{n: 14, want: 17},
		{n: 90, want: 97},
		{n: 1000, want: 1009},
	}
	for _, tt := range tests {
		if got := NextPrime(tt.n); got != tt.want {
			t.Errorf("NextPrime(%d)=%d want %d", tt.n, got, tt.want)
		}
	}
}

func TestPrevPrime(t *testing.T) {
	tests := []struct {
		n, want uint64
	}{
		{n: 0, want: 0},
		{n: 1, want: 0},
		{n: 2, want: 2},
		{n: 3, want: 3},
		{n: 4, want: 3},
		{n: 10, want: 7},
		{n: 100, want: 97},
	}
	for _, tt := range tests {
		if got := PrevPrime(tt.n); got != tt.want {
			t.Errorf("PrevPrime(%d)=%d want %d", tt.n, got, tt.want)
		}
	}
}

func TestNextPrimeIsBertrand(t *testing.T) {
	// Bertrand's postulate: for n >= 1 there is a prime in (n, 2n]. The
	// alphabet-size argument in DESIGN.md relies on q = NextPrime(M) < 2M.
	for n := uint64(2); n < 2000; n++ {
		q := NextPrime(n)
		if q >= 2*n {
			t.Fatalf("NextPrime(%d) = %d violates Bertrand bound", n, q)
		}
	}
}

// Property-based tests.

func TestFieldPropertiesQuick(t *testing.T) {
	f := MustNew(104729) // 10000th prime
	cfg := &quick.Config{
		MaxCount: 500,
		Rand:     rand.New(rand.NewSource(1)),
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(r.Uint64() % f.P())
			}
		},
	}

	t.Run("mul distributes over add", func(t *testing.T) {
		prop := func(a, b, c uint64) bool {
			return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("add commutes and associates", func(t *testing.T) {
		prop := func(a, b, c uint64) bool {
			return f.Add(a, b) == f.Add(b, a) &&
				f.Add(f.Add(a, b), c) == f.Add(a, f.Add(b, c))
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("mul commutes and associates", func(t *testing.T) {
		prop := func(a, b, c uint64) bool {
			return f.Mul(a, b) == f.Mul(b, a) &&
				f.Mul(f.Mul(a, b), c) == f.Mul(a, f.Mul(b, c))
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("sub inverts add", func(t *testing.T) {
		prop := func(a, b, c uint64) bool {
			return f.Sub(f.Add(a, b), b) == a
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("div inverts mul for nonzero", func(t *testing.T) {
		prop := func(a, b, c uint64) bool {
			if b == 0 {
				return true
			}
			return f.Div(f.Mul(a, b), b) == a
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Error(err)
		}
	})
	t.Run("fermat little theorem", func(t *testing.T) {
		prop := func(a, b, c uint64) bool {
			if a == 0 {
				return true
			}
			return f.Pow(a, f.P()-1) == 1
		}
		if err := quick.Check(prop, cfg); err != nil {
			t.Error(err)
		}
	})
}

func TestElements(t *testing.T) {
	f := MustNew(5)
	elems := f.Elements()
	if len(elems) != 5 {
		t.Fatalf("Elements length = %d, want 5", len(elems))
	}
	for i, e := range elems {
		if e != uint64(i) {
			t.Fatalf("Elements[%d] = %d", i, e)
		}
	}
}

func BenchmarkMul(b *testing.B) {
	f := MustNew((1 << 61) - 1)
	x, y := uint64(123456789123456789), uint64(987654321987654321)%f.P()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = f.Mul(x, y)
	}
	_ = x
}

func BenchmarkIsPrime(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		IsPrime((1 << 61) - 1)
	}
}
