// Package graphs provides the vertex-weighted undirected graphs on which
// every construction in this library lives, together with the player
// partition machinery of Definition 4 in Efron, Grossman and Khoury
// (PODC 2020): a partition V = V¹ ∪̇ ... ∪̇ V^t of the nodes among t
// players, and the induced cut cut(G) = E \ ∪_i (V^i × V^i) whose size
// drives every round lower bound.
//
// Graphs are dense-friendly: adjacency is stored as a bitset matrix, which
// the exact MaxIS solver and the clique-heavy lower-bound constructions
// both exploit. Node identifiers are dense ints assigned by AddNode.
package graphs

import (
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

const wordBits = 64

// NodeID identifies a node within one Graph. IDs are dense: the i'th call
// to AddNode returns NodeID(i).
type NodeID = int

// Graph is a mutable vertex-weighted undirected graph without self-loops
// or parallel edges. The zero value is an empty graph ready to use.
type Graph struct {
	weights []int64
	labels  []string
	byLabel map[string]NodeID
	rows    [][]uint64 // rows[u] is the neighbour bitset of u
	edges   int

	// rowWords, when non-zero, is the pre-sized bitset row width set by
	// Grow/NewWithN: rows are materialised at this width up front, out of
	// the flat arena below, so AddEdge never regrows-and-copies.
	rowWords int
	arena    []uint64 // backing storage for pre-sized rows
	arenaOff int
	// hasAuto records that at least one node was added without a label
	// (AddNodeID); such labels are synthesised on demand.
	hasAuto bool
}

// New returns an empty graph. Capacity hints avoid re-allocation when the
// final node count is known; pass 0 if unknown.
func New(capacityHint int) *Graph {
	return &Graph{
		weights: make([]int64, 0, capacityHint),
		labels:  make([]string, 0, capacityHint),
		byLabel: make(map[string]NodeID, capacityHint),
	}
}

// NewWithN returns an empty graph pre-sized for exactly n nodes: node
// tables have capacity n and every bitset row is materialised at full
// n-bit width out of one contiguous allocation, making the subsequent
// AddNodeID/AddEdge calls allocation-free. This is the fast path used by
// CONGEST programs that rebuild the network graph locally every run.
func NewWithN(n int) *Graph {
	g := New(n)
	g.Grow(n)
	return g
}

// Grow pre-sizes the graph for n nodes (a no-op if n is not larger than
// the current pre-size or node count): existing rows are widened to the
// n-node width once, and rows of future nodes are carved out of a single
// flat arena, eliminating the lazy per-edge regrow-and-copy.
func (g *Graph) Grow(n int) {
	if n < g.N() {
		n = g.N()
	}
	w := (n + wordBits - 1) / wordBits
	if w <= g.rowWords {
		return
	}
	g.rowWords = w
	g.arena = make([]uint64, (n-g.N())*w)
	g.arenaOff = 0
	for u := range g.rows {
		grown := make([]uint64, w)
		copy(grown, g.rows[u])
		g.rows[u] = grown
	}
}

// newRow returns the bitset row for a node being added: a full-width slice
// from the arena when the graph is pre-sized, nil (lazily grown) otherwise.
func (g *Graph) newRow() []uint64 {
	if g.rowWords == 0 {
		return nil // grown lazily on first edge
	}
	if g.arenaOff+g.rowWords > len(g.arena) {
		// Pre-size exceeded; fall back to a direct allocation.
		return make([]uint64, g.rowWords)
	}
	row := g.arena[g.arenaOff : g.arenaOff+g.rowWords : g.arenaOff+g.rowWords]
	g.arenaOff += g.rowWords
	return row
}

// AddNode adds a node with the given label and weight and returns its ID.
// Labels must be unique and non-empty; the lower-bound constructions use
// them to address nodes symbolically (e.g. "v[i=1,m=3]" or "sigma[i=2,h=1,r=3]").
func (g *Graph) AddNode(label string, weight int64) (NodeID, error) {
	if label == "" {
		return 0, fmt.Errorf("graphs: empty node label")
	}
	if _, dup := g.byLabel[label]; dup {
		return 0, fmt.Errorf("graphs: duplicate node label %q", label)
	}
	id := len(g.weights)
	g.weights = append(g.weights, weight)
	g.labels = append(g.labels, label)
	g.byLabel[label] = id
	g.rows = append(g.rows, g.newRow())
	return id, nil
}

// AddNodeID adds a node with the given weight and no label, returning its
// ID. The label is synthesised lazily ("n<id>") only if Label or
// NodeByLabel is ever called, so graphs rebuilt purely by ID (the CONGEST
// gossip/collect programs) never pay for label formatting or the label
// table. On a pre-sized graph (NewWithN/Grow) this performs no allocation.
func (g *Graph) AddNodeID(weight int64) NodeID {
	id := len(g.weights)
	g.weights = append(g.weights, weight)
	g.labels = append(g.labels, "")
	g.rows = append(g.rows, g.newRow())
	g.hasAuto = true
	return id
}

// autoLabel is the synthesised label of an unlabelled node.
func autoLabel(id NodeID) string { return "n" + strconv.Itoa(id) }

// materializeLabels assigns the synthesised label to every unlabelled node
// and registers it in the label table, so label-based lookups see them. A
// synthesised label that collides with an explicit one gets apostrophes
// appended until unique (only possible when AddNode and AddNodeID are
// mixed with clashing names).
func (g *Graph) materializeLabels() {
	if !g.hasAuto {
		return
	}
	g.hasAuto = false
	for u, label := range g.labels {
		if label != "" {
			continue
		}
		candidate := autoLabel(u)
		for {
			if _, taken := g.byLabel[candidate]; !taken {
				break
			}
			candidate += "'"
		}
		g.labels[u] = candidate
		g.byLabel[candidate] = u
	}
}

// MustAddNode is AddNode panicking on error, for fixed constructions whose
// labels are generated and cannot collide.
func (g *Graph) MustAddNode(label string, weight int64) NodeID {
	id, err := g.AddNode(label, weight)
	if err != nil {
		panic(err)
	}
	return id
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.weights) }

// M returns the number of edges.
func (g *Graph) M() int { return g.edges }

// wordsPerRow returns the bitset row width for the current node count.
func (g *Graph) wordsPerRow() int { return (len(g.weights) + wordBits - 1) / wordBits }

// row returns the bitset row of u, materialising it at the current width.
func (g *Graph) row(u NodeID) []uint64 {
	w := g.wordsPerRow()
	if len(g.rows[u]) < w {
		grown := make([]uint64, w)
		copy(grown, g.rows[u])
		g.rows[u] = grown
	}
	return g.rows[u]
}

// AddEdge inserts the undirected edge {u, v}. Self-loops and out-of-range
// endpoints are errors. Adding an existing edge is a silent no-op so that
// constructions can be described redundantly.
func (g *Graph) AddEdge(u, v NodeID) error {
	if err := g.checkNode(u); err != nil {
		return err
	}
	if err := g.checkNode(v); err != nil {
		return err
	}
	if u == v {
		return fmt.Errorf("graphs: self-loop at node %d (%s)", u, g.labels[u])
	}
	if g.HasEdge(u, v) {
		return nil
	}
	g.row(u)[v/wordBits] |= 1 << (uint(v) % wordBits)
	g.row(v)[u/wordBits] |= 1 << (uint(u) % wordBits)
	g.edges++
	return nil
}

// MustAddEdge is AddEdge panicking on error.
func (g *Graph) MustAddEdge(u, v NodeID) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// RemoveEdge deletes the edge {u, v} if present, reporting whether it was.
func (g *Graph) RemoveEdge(u, v NodeID) bool {
	if u < 0 || v < 0 || u >= g.N() || v >= g.N() || u == v || !g.HasEdge(u, v) {
		return false
	}
	g.row(u)[v/wordBits] &^= 1 << (uint(v) % wordBits)
	g.row(v)[u/wordBits] &^= 1 << (uint(u) % wordBits)
	g.edges--
	return true
}

// HasEdge reports whether {u, v} is an edge. Out-of-range queries are false.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if u < 0 || v < 0 || u >= g.N() || v >= g.N() {
		return false
	}
	wi := v / wordBits
	if wi >= len(g.rows[u]) {
		return false
	}
	return g.rows[u][wi]&(1<<(uint(v)%wordBits)) != 0
}

func (g *Graph) checkNode(u NodeID) error {
	if u < 0 || u >= g.N() {
		return fmt.Errorf("graphs: node %d out of range [0,%d)", u, g.N())
	}
	return nil
}

// Weight returns the weight of u.
func (g *Graph) Weight(u NodeID) int64 { return g.weights[u] }

// SetWeight updates the weight of u.
func (g *Graph) SetWeight(u NodeID, w int64) { g.weights[u] = w }

// Label returns the label of u, synthesising it for nodes added by
// AddNodeID.
func (g *Graph) Label(u NodeID) string {
	if g.labels[u] == "" {
		g.materializeLabels()
	}
	return g.labels[u]
}

// NodeByLabel resolves a label to its node ID.
func (g *Graph) NodeByLabel(label string) (NodeID, bool) {
	g.materializeLabels()
	id, ok := g.byLabel[label]
	return id, ok
}

// Degree returns the number of neighbours of u.
func (g *Graph) Degree(u NodeID) int {
	d := 0
	for _, w := range g.rows[u] {
		d += bits.OnesCount64(w)
	}
	return d
}

// MaxDegree returns Δ(G), 0 for the empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for u := 0; u < g.N(); u++ {
		if d := g.Degree(u); d > max {
			max = d
		}
	}
	return max
}

// Neighbors returns the sorted neighbour list of u (freshly allocated).
func (g *Graph) Neighbors(u NodeID) []NodeID {
	out := make([]NodeID, 0, g.Degree(u))
	for wi, w := range g.rows[u] {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// ForEachNeighbor calls fn for every neighbour of u in increasing order,
// without allocating.
func (g *Graph) ForEachNeighbor(u NodeID, fn func(v NodeID)) {
	for wi, w := range g.rows[u] {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// NeighborRow copies u's neighbour bitset into a fresh slice padded to the
// current row width. Exact solvers use this to avoid per-query allocation.
func (g *Graph) NeighborRow(u NodeID) []uint64 {
	out := make([]uint64, g.wordsPerRow())
	copy(out, g.rows[u])
	return out
}

// Edge is an undirected edge with U < V.
type Edge struct {
	U, V NodeID
}

// Edges returns all edges sorted lexicographically.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for u := 0; u < g.N(); u++ {
		g.ForEachNeighbor(u, func(v NodeID) {
			if u < v {
				out = append(out, Edge{U: u, V: v})
			}
		})
	}
	return out
}

// TotalWeight returns the sum of all node weights.
func (g *Graph) TotalWeight() int64 {
	var total int64
	for _, w := range g.weights {
		total += w
	}
	return total
}

// WeightOfSet returns Σ_{v ∈ set} w(v), the paper's w(U) notation.
func (g *Graph) WeightOfSet(set []NodeID) int64 {
	var total int64
	for _, u := range set {
		total += g.weights[u]
	}
	return total
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := New(g.N())
	out.hasAuto = g.hasAuto
	out.weights = append(out.weights, g.weights...)
	out.labels = append(out.labels, g.labels...)
	for label, id := range g.byLabel {
		out.byLabel[label] = id
	}
	out.rows = make([][]uint64, len(g.rows))
	for u, row := range g.rows {
		out.rows[u] = append([]uint64(nil), row...)
	}
	out.edges = g.edges
	return out
}

// AddClique adds all edges among the given nodes (the paper's E(C)).
func (g *Graph) AddClique(nodes []NodeID) error {
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if err := g.AddEdge(nodes[i], nodes[j]); err != nil {
				return err
			}
		}
	}
	return nil
}

// AddBiclique adds all edges between the two node sets (a full bipartite
// connection, used by the Remark 1 unweighted transform).
func (g *Graph) AddBiclique(a, b []NodeID) error {
	for _, u := range a {
		for _, v := range b {
			if err := g.AddEdge(u, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// IsClique reports whether the given nodes are pairwise adjacent.
func (g *Graph) IsClique(nodes []NodeID) bool {
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if !g.HasEdge(nodes[i], nodes[j]) {
				return false
			}
		}
	}
	return true
}

// IsIndependentSet reports whether no two of the given nodes are adjacent.
func (g *Graph) IsIndependentSet(nodes []NodeID) bool {
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if g.HasEdge(nodes[i], nodes[j]) {
				return false
			}
		}
	}
	return true
}

// InducedSubgraph returns the subgraph induced by the given nodes, plus a
// mapping from new IDs back to the originals. Duplicate nodes are an error.
func (g *Graph) InducedSubgraph(nodes []NodeID) (*Graph, []NodeID, error) {
	sub := New(len(nodes))
	back := make([]NodeID, 0, len(nodes))
	newID := make(map[NodeID]NodeID, len(nodes))
	for _, u := range nodes {
		if err := g.checkNode(u); err != nil {
			return nil, nil, err
		}
		if _, dup := newID[u]; dup {
			return nil, nil, fmt.Errorf("graphs: duplicate node %d in induced subgraph", u)
		}
		id, err := sub.AddNode(g.Label(u), g.weights[u])
		if err != nil {
			return nil, nil, err
		}
		newID[u] = id
		back = append(back, u)
	}
	for _, u := range nodes {
		g.ForEachNeighbor(u, func(v NodeID) {
			nv, in := newID[v]
			if in && u < v {
				sub.MustAddEdge(newID[u], nv)
			}
		})
	}
	return sub, back, nil
}

// BFS returns hop distances from src (-1 for unreachable nodes).
func (g *Graph) BFS(src NodeID) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.N() {
		return dist
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		g.ForEachNeighbor(u, func(v NodeID) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		})
	}
	return dist
}

// IsConnected reports whether the graph is connected (true for empty and
// single-node graphs).
func (g *Graph) IsConnected() bool {
	if g.N() <= 1 {
		return true
	}
	for _, d := range g.BFS(0) {
		if d == -1 {
			return false
		}
	}
	return true
}

// Diameter returns the largest BFS eccentricity, or -1 if the graph is
// disconnected or empty. Quadratic; intended for analysis of constructed
// instances, not hot paths.
func (g *Graph) Diameter() int {
	if g.N() == 0 {
		return -1
	}
	diameter := 0
	for u := 0; u < g.N(); u++ {
		for _, d := range g.BFS(u) {
			if d == -1 {
				return -1
			}
			if d > diameter {
				diameter = d
			}
		}
	}
	return diameter
}

// Validate performs internal consistency checks: symmetric adjacency, no
// self-loops, edge count matching the bitsets, and label table integrity.
func (g *Graph) Validate() error {
	count := 0
	for u := 0; u < g.N(); u++ {
		if g.HasEdge(u, u) {
			return fmt.Errorf("graphs: self-loop at %d", u)
		}
		var failure error
		g.ForEachNeighbor(u, func(v NodeID) {
			if failure != nil {
				return
			}
			if v >= g.N() {
				failure = fmt.Errorf("graphs: node %d adjacent to out-of-range %d", u, v)
				return
			}
			if !g.HasEdge(v, u) {
				failure = fmt.Errorf("graphs: asymmetric edge {%d,%d}", u, v)
				return
			}
			if u < v {
				count++
			}
		})
		if failure != nil {
			return failure
		}
	}
	if count != g.edges {
		return fmt.Errorf("graphs: edge count %d, bitsets contain %d", g.edges, count)
	}
	for label, id := range g.byLabel {
		if id < 0 || id >= g.N() || g.labels[id] != label {
			return fmt.Errorf("graphs: label table corrupt at %q -> %d", label, id)
		}
	}
	return nil
}

// DOT renders the graph in Graphviz format. Weighted nodes show their
// weight; an optional partition colours nodes by owner.
func (g *Graph) DOT(name string, p *Partition) string {
	g.materializeLabels()
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph %q {\n", name)
	for u := 0; u < g.N(); u++ {
		attrs := []string{fmt.Sprintf("label=%q", fmt.Sprintf("%s (w=%d)", g.labels[u], g.weights[u]))}
		if p != nil {
			attrs = append(attrs, fmt.Sprintf("colorscheme=set19, style=filled, fillcolor=%d", p.Of(u)%9+1))
		}
		fmt.Fprintf(&sb, "  n%d [%s];\n", u, strings.Join(attrs, ", "))
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "  n%d -- n%d;\n", e.U, e.V)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// SortedLabels returns all labels in sorted order; deterministic output for
// golden tests.
func (g *Graph) SortedLabels() []string {
	g.materializeLabels()
	out := append([]string(nil), g.labels...)
	sort.Strings(out)
	return out
}
