package graphs

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// buildPath returns a path graph with n nodes of weight 1.
func buildPath(t *testing.T, n int) *Graph {
	t.Helper()
	g := New(n)
	for i := 0; i < n; i++ {
		g.MustAddNode(fmt.Sprintf("p%d", i), 1)
	}
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	return g
}

func TestAddNode(t *testing.T) {
	g := New(0)
	a, err := g.AddNode("a", 5)
	if err != nil {
		t.Fatal(err)
	}
	if a != 0 {
		t.Fatalf("first node ID = %d", a)
	}
	if _, err := g.AddNode("a", 1); err == nil {
		t.Fatal("duplicate label accepted")
	}
	if _, err := g.AddNode("", 1); err == nil {
		t.Fatal("empty label accepted")
	}
	if g.Weight(a) != 5 || g.Label(a) != "a" {
		t.Fatalf("node attributes wrong: w=%d label=%q", g.Weight(a), g.Label(a))
	}
	id, ok := g.NodeByLabel("a")
	if !ok || id != a {
		t.Fatalf("NodeByLabel = (%d,%v)", id, ok)
	}
	if _, ok := g.NodeByLabel("zz"); ok {
		t.Fatal("NodeByLabel found missing label")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := buildPath(t, 3)
	if err := g.AddEdge(0, 0); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.AddEdge(0, 7); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Fatal("negative endpoint accepted")
	}
	before := g.M()
	if err := g.AddEdge(0, 1); err != nil { // duplicate
		t.Fatal(err)
	}
	if g.M() != before {
		t.Fatal("duplicate edge changed edge count")
	}
}

func TestEdgesAndDegrees(t *testing.T) {
	g := buildPath(t, 4)
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	wantDeg := []int{1, 2, 2, 1}
	for u, want := range wantDeg {
		if got := g.Degree(u); got != want {
			t.Fatalf("Degree(%d)=%d want %d", u, got, want)
		}
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
	edges := g.Edges()
	want := []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}
	if !reflect.DeepEqual(edges, want) {
		t.Fatalf("Edges = %v", edges)
	}
	if !reflect.DeepEqual(g.Neighbors(1), []NodeID{0, 2}) {
		t.Fatalf("Neighbors(1) = %v", g.Neighbors(1))
	}
}

func TestRemoveEdge(t *testing.T) {
	g := buildPath(t, 3)
	if !g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge(0,1) returned false")
	}
	if g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("edge still present after removal")
	}
	if g.M() != 1 {
		t.Fatalf("M = %d after removal", g.M())
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("removing missing edge returned true")
	}
	if g.RemoveEdge(0, 0) || g.RemoveEdge(-1, 2) {
		t.Fatal("degenerate removals returned true")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLargeGraphCrossesWordBoundaries(t *testing.T) {
	// 200 nodes spans multiple bitset words; exercise edges across them.
	g := New(200)
	for i := 0; i < 200; i++ {
		g.MustAddNode(fmt.Sprintf("n%d", i), 1)
	}
	g.MustAddEdge(0, 199)
	g.MustAddEdge(63, 64)
	g.MustAddEdge(127, 128)
	if !g.HasEdge(199, 0) || !g.HasEdge(64, 63) || !g.HasEdge(128, 127) {
		t.Fatal("cross-word edges missing")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalGrowthKeepsEdges(t *testing.T) {
	// Add edges, then more nodes, then verify old edges survive row growth.
	g := New(0)
	g.MustAddNode("a", 1)
	g.MustAddNode("b", 1)
	g.MustAddEdge(0, 1)
	for i := 0; i < 100; i++ {
		g.MustAddNode(fmt.Sprintf("extra%d", i), 1)
	}
	g.MustAddEdge(0, 101)
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 101) {
		t.Fatal("edges lost after growth")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCliqueAndBiclique(t *testing.T) {
	g := New(6)
	var left, right []NodeID
	for i := 0; i < 3; i++ {
		left = append(left, g.MustAddNode(fmt.Sprintf("l%d", i), 1))
	}
	for i := 0; i < 3; i++ {
		right = append(right, g.MustAddNode(fmt.Sprintf("r%d", i), 1))
	}
	if err := g.AddClique(left); err != nil {
		t.Fatal(err)
	}
	if !g.IsClique(left) {
		t.Fatal("AddClique result is not a clique")
	}
	if g.M() != 3 {
		t.Fatalf("clique edge count = %d", g.M())
	}
	if err := g.AddBiclique(left, right); err != nil {
		t.Fatal(err)
	}
	if g.M() != 3+9 {
		t.Fatalf("biclique edge count = %d", g.M())
	}
	if !g.IsIndependentSet(right) {
		t.Fatal("right side should be independent")
	}
	if g.IsIndependentSet([]NodeID{left[0], right[0]}) {
		t.Fatal("biclique pair reported independent")
	}
}

func TestWeights(t *testing.T) {
	g := New(3)
	a := g.MustAddNode("a", 2)
	b := g.MustAddNode("b", 3)
	c := g.MustAddNode("c", 5)
	if g.TotalWeight() != 10 {
		t.Fatalf("TotalWeight = %d", g.TotalWeight())
	}
	if g.WeightOfSet([]NodeID{a, c}) != 7 {
		t.Fatalf("WeightOfSet = %d", g.WeightOfSet([]NodeID{a, c}))
	}
	g.SetWeight(b, 100)
	if g.Weight(b) != 100 {
		t.Fatalf("SetWeight not applied")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := buildPath(t, 5)
	sub, back, err := g.InducedSubgraph([]NodeID{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || sub.M() != 1 {
		t.Fatalf("sub N=%d M=%d, want 3,1", sub.N(), sub.M())
	}
	if !reflect.DeepEqual(back, []NodeID{1, 2, 4}) {
		t.Fatalf("back mapping = %v", back)
	}
	if !sub.HasEdge(0, 1) {
		t.Fatal("edge {1,2} missing in subgraph")
	}
	if sub.HasEdge(1, 2) || sub.HasEdge(0, 2) {
		t.Fatal("phantom edges in subgraph")
	}
	if _, _, err := g.InducedSubgraph([]NodeID{1, 1}); err == nil {
		t.Fatal("duplicate nodes accepted")
	}
	if _, _, err := g.InducedSubgraph([]NodeID{99}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestBFSAndDiameter(t *testing.T) {
	g := buildPath(t, 5)
	dist := g.BFS(0)
	if !reflect.DeepEqual(dist, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("BFS = %v", dist)
	}
	if g.Diameter() != 4 {
		t.Fatalf("Diameter = %d", g.Diameter())
	}
	if !g.IsConnected() {
		t.Fatal("path not connected")
	}
	g.MustAddNode("island", 1)
	if g.IsConnected() {
		t.Fatal("graph with island reported connected")
	}
	if g.Diameter() != -1 {
		t.Fatalf("disconnected Diameter = %d", g.Diameter())
	}
	empty := New(0)
	if empty.Diameter() != -1 {
		t.Fatal("empty graph diameter should be -1")
	}
	if !empty.IsConnected() {
		t.Fatal("empty graph should count as connected")
	}
}

func TestClone(t *testing.T) {
	g := buildPath(t, 4)
	c := g.Clone()
	c.MustAddEdge(0, 3)
	c.SetWeight(0, 42)
	if g.HasEdge(0, 3) {
		t.Fatal("clone shares adjacency")
	}
	if g.Weight(0) == 42 {
		t.Fatal("clone shares weights")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	g := buildPath(t, 3)
	// Corrupt: break symmetry by hand.
	g.rows[0][0] &^= 1 << 1 // remove 1 from 0's row only
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed asymmetric adjacency")
	}
}

func TestDOT(t *testing.T) {
	g := buildPath(t, 2)
	p := MustNewPartition(2, 2)
	p.MustAssign(1, 1)
	dot := g.DOT("test", p)
	for _, want := range []string{"graph \"test\"", "n0 -- n1", "fillcolor"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
	plain := g.DOT("plain", nil)
	if strings.Contains(plain, "fillcolor") {
		t.Fatal("DOT without partition should not colour")
	}
}

func TestSortedLabels(t *testing.T) {
	g := New(3)
	g.MustAddNode("c", 1)
	g.MustAddNode("a", 1)
	g.MustAddNode("b", 1)
	if got := g.SortedLabels(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("SortedLabels = %v", got)
	}
}

func TestPartitionBasics(t *testing.T) {
	p, err := NewPartition(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.T() != 3 || p.N() != 5 {
		t.Fatalf("T=%d N=%d", p.T(), p.N())
	}
	p.MustAssign(0, 0)
	p.MustAssign(1, 1)
	p.MustAssign(2, 1)
	p.MustAssign(3, 2)
	p.MustAssign(4, 2)
	if !reflect.DeepEqual(p.PlayerNodes(1), []NodeID{1, 2}) {
		t.Fatalf("PlayerNodes(1) = %v", p.PlayerNodes(1))
	}
	if !reflect.DeepEqual(p.Sizes(), []int{1, 2, 2}) {
		t.Fatalf("Sizes = %v", p.Sizes())
	}
	if err := p.Assign(9, 0); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if err := p.Assign(0, 5); err == nil {
		t.Fatal("out-of-range player accepted")
	}
	if _, err := NewPartition(5, 0); err == nil {
		t.Fatal("t=0 accepted")
	}
	if _, err := NewPartition(-1, 2); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestPartitionCut(t *testing.T) {
	// Path 0-1-2-3 with owners 0,0,1,1: only edge {1,2} crosses.
	g := buildPath(t, 4)
	p := MustNewPartition(4, 2)
	p.MustAssign(2, 1)
	p.MustAssign(3, 1)
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	cut := p.CutEdges(g)
	if len(cut) != 1 || cut[0] != (Edge{U: 1, V: 2}) {
		t.Fatalf("CutEdges = %v", cut)
	}
	if p.CutSize(g) != 1 {
		t.Fatalf("CutSize = %d", p.CutSize(g))
	}
	bad := MustNewPartition(3, 2)
	if err := bad.Validate(g); err == nil {
		t.Fatal("size-mismatched partition validated")
	}
}

func TestPartitionClone(t *testing.T) {
	p := MustNewPartition(3, 2)
	c := p.Clone()
	c.MustAssign(0, 1)
	if p.Of(0) != 0 {
		t.Fatal("partition clone shares storage")
	}
}

func TestRandomGraphInvariantsQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Rand:     rand.New(rand.NewSource(9)),
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Int63())
		},
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(80)
		g := New(n)
		for i := 0; i < n; i++ {
			g.MustAddNode(fmt.Sprintf("n%d", i), int64(r.Intn(10)))
		}
		target := r.Intn(n * 2)
		for e := 0; e < target; e++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.MustAddEdge(u, v)
			}
		}
		if err := g.Validate(); err != nil {
			return false
		}
		// Handshake lemma.
		degSum := 0
		for u := 0; u < n; u++ {
			degSum += g.Degree(u)
		}
		if degSum != 2*g.M() {
			return false
		}
		// Edges() agrees with HasEdge.
		for _, e := range g.Edges() {
			if !g.HasEdge(e.U, e.V) || !g.HasEdge(e.V, e.U) {
				return false
			}
		}
		return len(g.Edges()) == g.M()
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkAddEdgeDense(b *testing.B) {
	const n = 512
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := New(n)
		for j := 0; j < n; j++ {
			g.MustAddNode(fmt.Sprintf("n%d", j), 1)
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v += 7 {
				g.MustAddEdge(u, v)
			}
		}
	}
}
