package graphs

import "fmt"

// Partition assigns every node of a graph to one of t players, realising
// the V = ∪̇_{i∈[t]} V^i decomposition of Definition 4. Players are
// numbered 0..t-1 (the paper's p_1..p_t shifted to 0-based).
type Partition struct {
	owner []int
	t     int
}

// NewPartition creates a partition of n nodes among t players, all
// initially owned by player 0.
func NewPartition(n, t int) (*Partition, error) {
	if n < 0 {
		return nil, fmt.Errorf("graphs: negative node count %d", n)
	}
	if t < 1 {
		return nil, fmt.Errorf("graphs: partition needs t >= 1 players, got %d", t)
	}
	return &Partition{owner: make([]int, n), t: t}, nil
}

// MustNewPartition is NewPartition panicking on error.
func MustNewPartition(n, t int) *Partition {
	p, err := NewPartition(n, t)
	if err != nil {
		panic(err)
	}
	return p
}

// T returns the number of players.
func (p *Partition) T() int { return p.t }

// N returns the number of nodes covered.
func (p *Partition) N() int { return len(p.owner) }

// Assign gives node u to player i.
func (p *Partition) Assign(u NodeID, i int) error {
	if u < 0 || u >= len(p.owner) {
		return fmt.Errorf("graphs: node %d out of partition range [0,%d)", u, len(p.owner))
	}
	if i < 0 || i >= p.t {
		return fmt.Errorf("graphs: player %d out of range [0,%d)", i, p.t)
	}
	p.owner[u] = i
	return nil
}

// MustAssign is Assign panicking on error.
func (p *Partition) MustAssign(u NodeID, i int) {
	if err := p.Assign(u, i); err != nil {
		panic(err)
	}
}

// Of returns the player owning node u.
func (p *Partition) Of(u NodeID) int { return p.owner[u] }

// PlayerNodes returns the sorted node IDs owned by player i.
func (p *Partition) PlayerNodes(i int) []NodeID {
	var out []NodeID
	for u, o := range p.owner {
		if o == i {
			out = append(out, u)
		}
	}
	return out
}

// Sizes returns the number of nodes per player.
func (p *Partition) Sizes() []int {
	sizes := make([]int, p.t)
	for _, o := range p.owner {
		sizes[o]++
	}
	return sizes
}

// Validate checks the partition covers exactly the graph's nodes.
func (p *Partition) Validate(g *Graph) error {
	if len(p.owner) != g.N() {
		return fmt.Errorf("graphs: partition covers %d nodes, graph has %d", len(p.owner), g.N())
	}
	return nil
}

// CutEdges returns the edges crossing player boundaries:
// cut(G) = E \ ∪_i (V^i × V^i).
func (p *Partition) CutEdges(g *Graph) []Edge {
	var out []Edge
	for _, e := range g.Edges() {
		if p.owner[e.U] != p.owner[e.V] {
			out = append(out, e)
		}
	}
	return out
}

// CutSize returns |cut(G)| without materialising the edge list.
func (p *Partition) CutSize(g *Graph) int {
	size := 0
	for u := 0; u < g.N(); u++ {
		g.ForEachNeighbor(u, func(v NodeID) {
			if u < v && p.owner[u] != p.owner[v] {
				size++
			}
		})
	}
	return size
}

// Clone returns a deep copy of the partition.
func (p *Partition) Clone() *Partition {
	out := &Partition{owner: append([]int(nil), p.owner...), t: p.t}
	return out
}
