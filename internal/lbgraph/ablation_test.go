package lbgraph

import (
	"math/rand"
	"testing"

	"congestlb/internal/bitvec"
	"congestlb/internal/code"
)

// The ablation tests demonstrate that each design choice of the
// construction is load-bearing: removing it breaks the gap predicate that
// the faithful construction provably satisfies (Claims 1-7).

func TestAblationWeakCodeBreaksClaim5(t *testing.T) {
	// With a distance-1 code, Property 2's matching disappears: on a
	// disjoint input the independent set can keep both players' codeword
	// nodes in every shared position, exceeding the Claim 5 bound that
	// the faithful construction respects.
	p := Params{T: 2, Alpha: 1, Ell: 4} // M=5, q=5, k=5
	weak, err := code.NewFirstSymbol(p.Q(), p.M())
	if err != nil {
		t.Fatal(err)
	}
	fam, err := NewLinearVariant(p, LinearOptions{Code: weak})
	if err != nil {
		t.Fatal(err)
	}
	// Disjoint input with a weight-ℓ node on each side: x¹ = 10000,
	// x² = 01000.
	x1 := bitvec.New(p.K())
	x1.Set(0)
	x2 := bitvec.New(p.K())
	x2.Set(1)
	in := bitvec.Inputs{x1, x2}
	if !in.PairwiseDisjoint() {
		t.Fatal("inputs should be disjoint")
	}
	inst, err := fam.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	opt := exactOpt(t, inst)
	if opt <= p.LinearSmallMax() {
		t.Fatalf("weak code: disjoint OPT %d did not exceed SmallMax %d — ablation had no effect",
			opt, p.LinearSmallMax())
	}

	// Control: the faithful construction keeps the same input below the
	// bound.
	faithful, err := NewLinear(p)
	if err != nil {
		t.Fatal(err)
	}
	instF, err := faithful.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	optF := exactOpt(t, instF)
	if optF > p.LinearSmallMax() {
		t.Fatalf("faithful construction violated Claim 5: %d > %d", optF, p.LinearSmallMax())
	}
}

func TestAblationNoWiringDestroysGap(t *testing.T) {
	// Without the inter-copy wiring, every player's {v^i_m} ∪ Code^i_m is
	// globally independent, so even pairwise-disjoint inputs reach the
	// Beta threshold — the predicate no longer separates.
	p := Params{T: 2, Alpha: 1, Ell: 3}
	fam, err := NewLinearVariant(p, LinearOptions{OmitInterCopyWiring: true})
	if err != nil {
		t.Fatal(err)
	}
	x1 := bitvec.New(p.K())
	x1.Set(0)
	x2 := bitvec.New(p.K())
	x2.Set(1)
	in := bitvec.Inputs{x1, x2}
	inst, err := fam.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	opt := exactOpt(t, inst)
	if opt < p.LinearBeta() {
		t.Fatalf("no-wiring: disjoint OPT %d below Beta %d — wiring was not load-bearing?",
			opt, p.LinearBeta())
	}
}

func TestAblationUniformWeightsEqualizeCases(t *testing.T) {
	// With input-independent weights the two promise cases have identical
	// optima: the graph no longer encodes x̄ at all (in the linear family
	// the inputs act only through weights).
	p := Params{T: 2, Alpha: 1, Ell: 3}
	fam, err := NewLinearVariant(p, LinearOptions{UniformWeights: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	inter, _, err := bitvec.RandomUniquelyIntersecting(p.K(), p.T, bitvec.GenOptions{Density: 0.4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	dis, err := bitvec.RandomPairwiseDisjoint(p.K(), p.T, bitvec.GenOptions{Density: 0.4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	instI, err := fam.Build(inter)
	if err != nil {
		t.Fatal(err)
	}
	instD, err := fam.Build(dis)
	if err != nil {
		t.Fatal(err)
	}
	optI, optD := exactOpt(t, instI), exactOpt(t, instD)
	if optI != optD {
		t.Fatalf("uniform weights: intersecting OPT %d != disjoint OPT %d", optI, optD)
	}
}

func TestVariantValidation(t *testing.T) {
	p := Params{T: 2, Alpha: 1, Ell: 3} // M=4, q=5, k=4
	t.Run("wrong code length", func(t *testing.T) {
		short, err := code.NewRepetition(5, 3) // M=3 != 4
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewLinearVariant(p, LinearOptions{Code: short}); err == nil {
			t.Fatal("wrong-length code accepted")
		}
	})
	t.Run("too few messages", func(t *testing.T) {
		tiny, err := code.NewFirstSymbol(3, 4) // 3 messages < k=4... but q=3 ≤ 5 ok
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewLinearVariant(p, LinearOptions{Code: tiny}); err == nil {
			t.Fatal("too-small code accepted")
		}
	})
	t.Run("alphabet too large", func(t *testing.T) {
		big, err := code.NewRepetition(11, 4) // q=11 > 5
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewLinearVariant(p, LinearOptions{Code: big}); err == nil {
			t.Fatal("oversized alphabet accepted")
		}
	})
}

func TestVariantNamesDistinguish(t *testing.T) {
	p := Params{T: 2, Alpha: 1, Ell: 3}
	faithful, err := NewLinear(p)
	if err != nil {
		t.Fatal(err)
	}
	ablated, err := NewLinearVariant(p, LinearOptions{OmitInterCopyWiring: true, UniformWeights: true})
	if err != nil {
		t.Fatal(err)
	}
	if faithful.Name() == ablated.Name() {
		t.Fatal("variant names identical")
	}
}

func TestFirstSymbolCodeProperties(t *testing.T) {
	weak, err := code.NewFirstSymbol(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	report, err := code.AuditExhaustive(weak)
	if err != nil {
		t.Fatal(err)
	}
	if report.MinDistance != 1 {
		t.Fatalf("FirstSymbol min distance = %d, want 1", report.MinDistance)
	}
}
