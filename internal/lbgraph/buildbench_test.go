package lbgraph

import "testing"

func benchFixed(b *testing.B, p Params, cached bool) {
	l, err := NewLinear(p)
	if err != nil {
		b.Fatal(err)
	}
	SharedBuildCache().Reset()
	prev := SetCacheEnabled(cached)
	defer SetCacheEnabled(prev)
	if cached {
		if _, err := l.BuildFixed(); err != nil { // prime
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.BuildFixed(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildFixedUncachedT4(b *testing.B) { benchFixed(b, Params{T: 4, Alpha: 1, Ell: 5}, false) }
func BenchmarkBuildFixedCachedT4(b *testing.B)   { benchFixed(b, Params{T: 4, Alpha: 1, Ell: 5}, true) }
