package lbgraph

// Content-addressed memoisation of lower-bound graph construction.
//
// Building a fixed construction is the second-dominant cost of an
// experiment sweep after the exact solves: the k-clique plus the q⁴-edge
// inter-copy wiring is rebuilt identically for every sweep point, every
// promise case, and every experiment that touches the same parameters
// (the FigureParams(2) graph alone is built by six figure experiments,
// the diameter sweep, the lemma checks and the quadratic theorems). The
// build cache collapses those rebuilds the way internal/mis/cache
// collapses duplicate solves: the fixed graph of a family is keyed by a
// canonical hash of its *content* — construction kind, parameters, the
// full codeword table and the ablation flags — and repeated builds are
// served as deep copies of the one cached instance.
//
// Three properties mirror the solve cache deliberately:
//
//   - Copy-on-return. Build results are mutated by callers (Build applies
//     input weights or input edges on top of BuildFixed; experiments are
//     free to edit graphs), so the cache never hands out its own instance:
//     hits return a deep clone (graph, partition and clique cover), and
//     the entry itself is a private clone of what the builder produced.
//     Mutating a returned instance can never poison the cache.
//   - Single-flight. Concurrent builders of the same key — the sharded
//     sweep loops hammer exactly this pattern — block on the one build in
//     progress instead of racing duplicates.
//   - Session attribution. A CacheSession view counts exactly the hits
//     and misses its caller generated, which is what makes the runner's
//     per-experiment lbgraph numbers in the JSON envelope exact at any
//     -jobs count.
//
// The cache is transparent by construction: builds are deterministic, so
// a cloned cached instance is identical to a fresh build and enabling the
// cache never changes any report. SetCacheEnabled(false) bypasses it for
// A/B tests.

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"congestlb/internal/core"
	"congestlb/internal/graphs"
	"congestlb/internal/obs"
)

// CacheKey is the canonical content hash of one construction.
type CacheKey [sha256.Size]byte

// DefaultCacheCapacity bounds the shared build cache. Fixed graphs are a
// few hundred kilobytes at experiment sizes and the suite builds a few
// dozen distinct parameterisations, so this is generous.
const DefaultCacheCapacity = 64

// CacheStats is a snapshot of the build cache counters.
type CacheStats struct {
	// Hits counts builds served from a cached (or in-flight) construction.
	Hits uint64 `json:"hits"`
	// Misses counts builds that constructed the graph from scratch.
	Misses uint64 `json:"misses"`
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64 `json:"evictions"`
	// Entries is the number of constructions currently cached.
	Entries int `json:"entries"`
}

// buildEntry is one cached (or in-flight) construction. ready is closed
// once inst/err are final; done flips under the cache lock at the same
// moment so eviction can skip in-flight entries.
type buildEntry struct {
	key   CacheKey
	inst  core.Instance
	err   error
	done  bool
	ready chan struct{}
}

// BuildCache is a content-addressed, LRU-bounded, single-flight memo over
// fixed-graph constructions. The zero value is not usable; call
// NewBuildCache.
type BuildCache struct {
	mu       sync.Mutex
	capacity int
	index    map[CacheKey]*list.Element
	lru      *list.List // front = most recently used; values are *buildEntry
	stats    CacheStats
	// om holds the observability handles attached by SetRegistry (an
	// atomic pointer so attachment races no lookup and the detached
	// fast path costs one load — mirrors mis/cache).
	om atomic.Pointer[buildMetrics]
}

// buildMetrics is the build cache's resolved registry handle set.
// Events mirror the CacheStats/CacheSession bookkeeping one for one.
// Note that a session in bypass mode (NewUncachedCacheSession) never
// reaches the cache, so uncached-builds A/B runs book no build_cache_*
// events — the envelope's legacy lbgraph block is the record there.
type buildMetrics struct {
	hits, misses, waits *obs.Counter
	latency             *obs.Histogram
}

// SetRegistry attaches (or with nil detaches) an observability
// registry: subsequent builds book hit/miss/single-flight-wait counts
// and fresh builds record a latency histogram.
func (c *BuildCache) SetRegistry(r *obs.Registry) {
	if r == nil {
		c.om.Store(nil)
		return
	}
	c.om.Store(&buildMetrics{
		hits:    r.Counter(obs.MBuildCacheHits),
		misses:  r.Counter(obs.MBuildCacheMisses),
		waits:   r.Counter(obs.MBuildCacheWaits),
		latency: r.Histogram(obs.MBuildLatencyNS),
	})
}

// NewBuildCache returns an empty cache bounded to the given number of
// constructions (DefaultCacheCapacity if capacity is not positive).
func NewBuildCache(capacity int) *BuildCache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &BuildCache{
		capacity: capacity,
		index:    make(map[CacheKey]*list.Element, capacity),
		lru:      list.New(),
	}
}

// instance returns the construction for key, building it via build on a
// miss. The first caller for a key runs build; concurrent callers with the
// same key wait for that build instead of duplicating it. The returned
// instance is always a private deep copy. Errors are not cached: a failed
// build is retried by the next caller.
func (c *BuildCache) instance(key CacheKey, build func() (core.Instance, error), sess *CacheSession) (core.Instance, error) {
	m := c.om.Load()
	c.mu.Lock()
	if el, found := c.index[key]; found {
		e := el.Value.(*buildEntry)
		c.lru.MoveToFront(el)
		c.stats.Hits++
		done := e.done
		c.mu.Unlock()
		sess.record(func(st *CacheStats) { st.Hits++ })
		if m != nil {
			m.hits.Inc()
			if !done {
				m.waits.Inc()
			}
		}
		<-e.ready
		if e.err != nil {
			return core.Instance{}, e.err
		}
		return cloneInstance(e.inst), nil
	}
	e := &buildEntry{key: key, ready: make(chan struct{})}
	el := c.lru.PushFront(e)
	c.index[key] = el
	c.stats.Misses++
	c.evictLocked()
	c.mu.Unlock()
	sess.record(func(st *CacheStats) { st.Misses++ })
	if m != nil {
		m.misses.Inc()
	}

	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	inst, err := build()
	if m != nil && err == nil {
		m.latency.Observe(time.Since(t0).Nanoseconds())
	}

	c.mu.Lock()
	if err != nil {
		e.err = err
		e.done = true
		// Do not cache failures: drop the entry so later callers retry
		// (waiters already holding e still observe the error once).
		if cur, present := c.index[key]; present && cur == el {
			c.lru.Remove(el)
			delete(c.index, key)
		}
		c.mu.Unlock()
		close(e.ready)
		return core.Instance{}, err
	}
	// The entry keeps its own clone: the builder's instance goes to the
	// caller, who is free to mutate it.
	e.inst = cloneInstance(inst)
	e.done = true
	c.mu.Unlock()
	close(e.ready)
	return inst, nil
}

// evictLocked trims the LRU to capacity, skipping in-flight entries.
// Callers must hold c.mu.
func (c *BuildCache) evictLocked() {
	for c.lru.Len() > c.capacity {
		el := c.lru.Back()
		for el != nil && !el.Value.(*buildEntry).done {
			el = el.Prev()
		}
		if el == nil {
			return // everything in flight; over-capacity resolves later
		}
		e := el.Value.(*buildEntry)
		c.lru.Remove(el)
		delete(c.index, e.key)
		c.stats.Evictions++
	}
}

// Stats returns a snapshot of the counters.
func (c *BuildCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	return s
}

// Reset drops every entry and zeroes the counters. In-flight builds
// complete normally but are no longer indexed.
func (c *BuildCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.index = make(map[CacheKey]*list.Element, c.capacity)
	c.lru = list.New()
	c.stats = CacheStats{}
}

// cloneInstance deep-copies an instance: graph, partition and clique
// cover share no storage with the original.
func cloneInstance(inst core.Instance) core.Instance {
	out := core.Instance{}
	if inst.Graph != nil {
		out.Graph = inst.Graph.Clone()
	}
	if inst.Partition != nil {
		out.Partition = inst.Partition.Clone()
	}
	if inst.CliqueCover != nil {
		out.CliqueCover = make([][]graphs.NodeID, len(inst.CliqueCover))
		for i, part := range inst.CliqueCover {
			out.CliqueCover[i] = append([]graphs.NodeID(nil), part...)
		}
	}
	return out
}

// CacheSession is a per-caller view of a BuildCache: it forwards builds to
// the underlying cache (the process-wide shared one by default) while
// keeping its own exact hit/miss counters. A nil *CacheSession is valid
// and counts nothing, so deep callers can be handed "no session" without
// branching. Mirrors cache.Session in internal/mis/cache.
type CacheSession struct {
	c *BuildCache // nil = the shared cache, resolved at call time
	// bypass skips every cache entirely: builds run from scratch and book
	// as misses. It is how a Lab configured with the build cache off
	// expresses that choice per-handle instead of flipping the process-wide
	// SetCacheEnabled switch under everyone else.
	bypass bool

	mu    sync.Mutex
	stats CacheStats
}

// NewCacheSession returns a session over c (nil = the shared build cache).
func NewCacheSession(c *BuildCache) *CacheSession {
	return &CacheSession{c: c}
}

// NewUncachedCacheSession returns a session that never consults any build
// cache: every construction runs from scratch (recorded as a miss), with
// attribution still exact. Builds are deterministic so results are
// identical either way; the mode exists for per-handle A/B measurements.
func NewUncachedCacheSession() *CacheSession {
	return &CacheSession{bypass: true}
}

// Stats returns a snapshot of the session's counters. Entries is always 0:
// occupancy belongs to the cache, not to a view of it.
func (s *CacheSession) Stats() CacheStats {
	if s == nil {
		return CacheStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// record applies a counter mutation; safe on a nil session (no-op).
func (s *CacheSession) record(f func(*CacheStats)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// instance routes a build through the session: the shared (or
// session-pinned) cache serves or runs it, the session books the traffic.
// With the cache disabled the build runs directly but attribution stays
// exact.
func (s *CacheSession) instance(key CacheKey, build func() (core.Instance, error)) (core.Instance, error) {
	c := (*BuildCache)(nil)
	if s != nil {
		if s.bypass {
			inst, err := build()
			s.record(func(st *CacheStats) { st.Misses++ })
			return inst, err
		}
		c = s.c
	}
	if c == nil {
		if !cacheEnabled.Load() {
			inst, err := build()
			s.record(func(st *CacheStats) { st.Misses++ })
			return inst, err
		}
		c = sharedBuildCache
	}
	return c.instance(key, build, s)
}

// sharedBuildCache is the process-wide cache behind every family build.
var sharedBuildCache = NewBuildCache(DefaultCacheCapacity)

// cacheEnabled gates the shared build cache.
var cacheEnabled atomic.Bool

func init() { cacheEnabled.Store(true) }

// SharedBuildCache returns the process-wide build cache instance.
func SharedBuildCache() *BuildCache { return sharedBuildCache }

// SetCacheEnabled switches the shared build-cache fast path on or off and
// reports the previous setting. Disabling does not clear the cache; call
// SharedBuildCache().Reset() for that. Intended for tests comparing cached
// and uncached builds.
func SetCacheEnabled(on bool) bool { return cacheEnabled.Swap(on) }

// CacheEnabled reports whether the shared build-cache fast path is on.
func CacheEnabled() bool { return cacheEnabled.Load() }

// keyHasher accumulates the canonical content of a construction. The hash
// covers a kind tag (no two families can collide whatever their
// parameters), the parameter triple, the full codeword table (so custom
// ablation codes key by what they encode, not by identity) and the
// ablation flags — never pointer identities or build order.
type keyHasher struct {
	buf []byte
}

func (h *keyHasher) str(s string) {
	h.buf = binary.LittleEndian.AppendUint32(h.buf, uint32(len(s)))
	h.buf = append(h.buf, s...)
}

func (h *keyHasher) ints(vs ...int) {
	for _, v := range vs {
		h.buf = binary.LittleEndian.AppendUint64(h.buf, uint64(int64(v)))
	}
}

func (h *keyHasher) bools(vs ...bool) {
	for _, v := range vs {
		if v {
			h.buf = append(h.buf, 1)
		} else {
			h.buf = append(h.buf, 0)
		}
	}
}

func (h *keyHasher) words(words [][]int) {
	h.ints(len(words))
	for _, w := range words {
		h.ints(len(w))
		h.ints(w...)
	}
}

func (h *keyHasher) sum() CacheKey { return sha256.Sum256(h.buf) }

// fixedKey is the content key of the family's fixed construction.
func (l *Linear) fixedKey() CacheKey {
	h := &keyHasher{buf: make([]byte, 0, 256)}
	h.str("lbgraph/linear/v1")
	h.ints(l.p.T, l.p.Alpha, l.p.Ell)
	h.words(l.words)
	h.bools(l.opts.OmitInterCopyWiring, l.opts.UniformWeights)
	return h.sum()
}

// fixedKey is the content key of the family's fixed construction. The
// input-edge ablation flags do not participate: they only change what
// Build adds on top, so the faithful family and its variants share one
// fixed graph — deliberate reuse, not a collision.
func (f *Quadratic) fixedKey() CacheKey {
	h := &keyHasher{buf: make([]byte, 0, 256)}
	h.str("lbgraph/quadratic/v1")
	h.ints(f.p.T, f.p.Alpha, f.p.Ell)
	h.words(f.words)
	return h.sum()
}
