package lbgraph

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"congestlb/internal/bitvec"
	"congestlb/internal/code"
	"congestlb/internal/core"
	"congestlb/internal/graphs"
)

// freshBuildCache points the tests at a private, empty shared cache and
// restores the previous state afterwards.
func freshBuildCache(t *testing.T) {
	t.Helper()
	SharedBuildCache().Reset()
	t.Cleanup(func() { SharedBuildCache().Reset() })
}

// graphsEqual compares two graphs on content: node count, weights, edges
// and labels.
func graphsEqual(t *testing.T, a, b *graphs.Graph) bool {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for v := 0; v < a.N(); v++ {
		if a.Weight(v) != b.Weight(v) || a.Label(v) != b.Label(v) {
			return false
		}
	}
	for _, e := range a.Edges() {
		if !b.HasEdge(e.U, e.V) {
			return false
		}
	}
	return true
}

// TestBuildCacheTransparent pins the foundational property: a cached
// build is content-identical to an uncached one.
func TestBuildCacheTransparent(t *testing.T) {
	freshBuildCache(t)
	p := Params{T: 2, Alpha: 1, Ell: 3}
	l := mustLinear(t, p)

	prev := SetCacheEnabled(false)
	uncached, err := l.BuildFixed()
	SetCacheEnabled(prev)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := l.BuildFixed() // miss
	if err != nil {
		t.Fatal(err)
	}
	warm, err := l.BuildFixed() // hit
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(t, uncached.Graph, cold.Graph) || !graphsEqual(t, uncached.Graph, warm.Graph) {
		t.Fatal("cached build differs from uncached build")
	}
	st := SharedBuildCache().Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("expected 1 miss + 1 hit, got %+v", st)
	}
}

// TestBuildCacheKeysDistinct drives every axis that must separate cache
// entries: family kind, parameters, ablation flags and the codeword table
// of a custom code. Two different constructions sharing a key would serve
// one family's graph to the other — the collision the content hash must
// prevent.
func TestBuildCacheKeysDistinct(t *testing.T) {
	p := Params{T: 2, Alpha: 1, Ell: 3}
	lin := mustLinear(t, p)
	quad, err := NewQuadratic(p)
	if err != nil {
		t.Fatal(err)
	}
	linBig := mustLinear(t, Params{T: 3, Alpha: 1, Ell: 3})
	noWire, err := NewLinearVariant(p, LinearOptions{OmitInterCopyWiring: true})
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := NewLinearVariant(p, LinearOptions{UniformWeights: true})
	if err != nil {
		t.Fatal(err)
	}
	weak, err := code.NewFirstSymbol(p.Q(), p.M())
	if err != nil {
		t.Fatal(err)
	}
	weakFam, err := NewLinearVariant(p, LinearOptions{Code: weak})
	if err != nil {
		t.Fatal(err)
	}

	keys := map[CacheKey]string{}
	add := func(name string, k CacheKey) {
		if prev, dup := keys[k]; dup {
			t.Fatalf("key collision: %s and %s share a cache key", prev, name)
		}
		keys[k] = name
	}
	add("linear t=2", lin.fixedKey())
	add("quadratic t=2", quad.fixedKey())
	add("linear t=3", linBig.fixedKey())
	add("linear no-wiring", noWire.fixedKey())
	add("linear weak-code", weakFam.fixedKey())

	// UniformWeights changes Build, not BuildFixed — but the two variants
	// must still not share an entry, because callers receive private copies
	// keyed on the whole option set.
	if uniform.fixedKey() == lin.fixedKey() {
		t.Fatal("uniform-weights variant shares the faithful fixed key")
	}

	// The quadratic input-edge ablations deliberately share the fixed key
	// with the faithful quadratic family: the fixed graph is identical and
	// input edges are applied to the returned private copy.
	inv, err := NewQuadraticVariant(p, QuadraticOptions{InvertInputEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	if inv.fixedKey() != quad.fixedKey() {
		t.Fatal("quadratic variants should share the fixed construction entry")
	}
}

// TestBuildCacheCrossFamilyServesRightGraph is the end-to-end collision
// check: interleaved builds of different families with the same parameters
// must each get their own construction.
func TestBuildCacheCrossFamilyServesRightGraph(t *testing.T) {
	freshBuildCache(t)
	p := Params{T: 2, Alpha: 1, Ell: 3}
	lin := mustLinear(t, p)
	quad, err := NewQuadratic(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		li, err := lin.BuildFixed()
		if err != nil {
			t.Fatal(err)
		}
		qi, err := quad.BuildFixed()
		if err != nil {
			t.Fatal(err)
		}
		if li.Graph.N() != p.LinearN() {
			t.Fatalf("round %d: linear build has %d nodes, want %d", i, li.Graph.N(), p.LinearN())
		}
		if qi.Graph.N() != p.QuadraticN() {
			t.Fatalf("round %d: quadratic build has %d nodes, want %d", i, qi.Graph.N(), p.QuadraticN())
		}
	}
	st := SharedBuildCache().Stats()
	if st.Misses != 2 || st.Hits != 2 {
		t.Fatalf("expected 2 misses + 2 hits, got %+v", st)
	}
}

// TestBuildCacheCopyOnReturnIsolation mutates every component of a
// returned instance and asserts the next hit is pristine: mutating a
// returned graph must not poison the cache.
func TestBuildCacheCopyOnReturnIsolation(t *testing.T) {
	freshBuildCache(t)
	p := Params{T: 2, Alpha: 1, Ell: 3}
	l := mustLinear(t, p)

	first, err := l.BuildFixed()
	if err != nil {
		t.Fatal(err)
	}
	wantN, wantM := first.Graph.N(), first.Graph.M()
	wantW := first.Graph.Weight(0)
	wantCover0 := first.Graph.N() // sentinel below overwrites cover[0][0]

	// Vandalise the returned copy: weights, edges, cover, partition.
	first.Graph.SetWeight(0, 999)
	if !first.Graph.HasEdge(0, 1) {
		t.Fatal("A-clique edge {0,1} missing")
	}
	first.Graph.RemoveEdge(0, 1)
	first.CliqueCover[0][0] = wantCover0
	_ = first.Partition.Assign(0, 1)

	second, err := l.BuildFixed()
	if err != nil {
		t.Fatal(err)
	}
	if second.Graph.N() != wantN || second.Graph.M() != wantM {
		t.Fatalf("cache poisoned: graph now %d nodes / %d edges, want %d / %d",
			second.Graph.N(), second.Graph.M(), wantN, wantM)
	}
	if second.Graph.Weight(0) != wantW {
		t.Fatalf("cache poisoned: weight(0) = %d, want %d", second.Graph.Weight(0), wantW)
	}
	if !second.Graph.HasEdge(0, 1) {
		t.Fatal("cache poisoned: removed edge is gone from the cached entry")
	}
	if second.CliqueCover[0][0] == wantCover0 {
		t.Fatal("cache poisoned: clique cover shares storage with the returned copy")
	}
	if second.Partition.Of(0) != 0 {
		t.Fatal("cache poisoned: partition shares storage with the returned copy")
	}
	st := SharedBuildCache().Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("expected 1 miss + 1 hit, got %+v", st)
	}

	// Build applies weights to the returned copy, so a weighted build after
	// a vandalised fixed build must still see clean weights.
	x1, x2 := bitvec.New(p.K()), bitvec.New(p.K())
	x1.Set(0)
	x2.Set(1)
	weighted, err := l.Build(bitvec.Inputs{x1, x2})
	if err != nil {
		t.Fatal(err)
	}
	if weighted.Graph.N() != wantN || !weighted.Graph.HasEdge(0, 1) {
		t.Fatal("weighted build inherited the vandalised copy")
	}
}

// TestBuildCacheSingleFlight runs many concurrent builders of one key and
// asserts exactly one construction executes while everyone receives an
// isolated copy.
func TestBuildCacheSingleFlight(t *testing.T) {
	c := NewBuildCache(8)
	var builds atomic.Int64
	key := CacheKey{1, 2, 3}
	build := func() (core.Instance, error) {
		builds.Add(1)
		time.Sleep(10 * time.Millisecond) // widen the race window
		g := graphs.New(2)
		g.MustAddNode("a", 1)
		g.MustAddNode("b", 1)
		return core.Instance{Graph: g}, nil
	}

	const callers = 16
	got := make([]core.Instance, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			inst, err := c.instance(key, build, nil)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = inst
		}()
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("single-flight failed: %d builds for one key", n)
	}
	for i := 0; i < callers; i++ {
		for j := i + 1; j < callers; j++ {
			if got[i].Graph == got[j].Graph {
				t.Fatalf("callers %d and %d share a graph pointer", i, j)
			}
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != callers-1 {
		t.Fatalf("expected 1 miss + %d hits, got %+v", callers-1, st)
	}
}

// TestBuildCacheSessionAttribution pins the per-caller counters: two
// sessions over the shared cache each see exactly their own traffic, and
// the shared counters see the sum.
func TestBuildCacheSessionAttribution(t *testing.T) {
	freshBuildCache(t)
	p := Params{T: 2, Alpha: 1, Ell: 3}
	l := mustLinear(t, p)

	a, b := NewCacheSession(nil), NewCacheSession(nil)
	if _, err := l.BuildFixedWith(a); err != nil { // miss
		t.Fatal(err)
	}
	if _, err := l.BuildFixedWith(b); err != nil { // hit
		t.Fatal(err)
	}
	if _, err := l.BuildFixedWith(b); err != nil { // hit
		t.Fatal(err)
	}
	sa, sb := a.Stats(), b.Stats()
	if sa.Misses != 1 || sa.Hits != 0 {
		t.Fatalf("session a stats %+v, want 1 miss", sa)
	}
	if sb.Misses != 0 || sb.Hits != 2 {
		t.Fatalf("session b stats %+v, want 2 hits", sb)
	}
	shared := SharedBuildCache().Stats()
	if shared.Hits != sa.Hits+sb.Hits || shared.Misses != sa.Misses+sb.Misses {
		t.Fatalf("shared stats %+v do not sum sessions %+v + %+v", shared, sa, sb)
	}
	// Entries belongs to the cache, never to a view of it.
	if sa.Entries != 0 || sb.Entries != 0 {
		t.Fatal("session stats report cache occupancy")
	}
	// A nil session is the no-attribution fast path.
	var nilSess *CacheSession
	if _, err := l.BuildFixedWith(nilSess); err != nil {
		t.Fatal(err)
	}
	if nilSess.Stats() != (CacheStats{}) {
		t.Fatal("nil session accumulated stats")
	}
}

// TestBuildCacheEviction fills a bounded cache past capacity and checks
// LRU eviction re-misses the evicted key.
func TestBuildCacheEviction(t *testing.T) {
	c := NewBuildCache(2)
	mk := func(id byte) (CacheKey, func() (core.Instance, error)) {
		key := CacheKey{id}
		return key, func() (core.Instance, error) {
			g := graphs.New(1)
			g.MustAddNode("x", int64(id))
			return core.Instance{Graph: g}, nil
		}
	}
	for _, id := range []byte{1, 2, 3} { // 3 evicts 1
		key, build := mk(id)
		if _, err := c.instance(key, build, nil); err != nil {
			t.Fatal(err)
		}
	}
	key1, build1 := mk(1)
	if _, err := c.instance(key1, build1, nil); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions recorded: %+v", st)
	}
	if st.Misses != 4 {
		t.Fatalf("evicted key should re-miss: %+v", st)
	}
	if st.Entries > 2 {
		t.Fatalf("capacity exceeded: %+v", st)
	}
}

// TestBuildCacheDisabledBypasses pins SetCacheEnabled(false): builds run
// directly, the shared cache sees no traffic, sessions still count misses.
func TestBuildCacheDisabledBypasses(t *testing.T) {
	freshBuildCache(t)
	prev := SetCacheEnabled(false)
	defer SetCacheEnabled(prev)

	p := Params{T: 2, Alpha: 1, Ell: 3}
	l := mustLinear(t, p)
	sess := NewCacheSession(nil)
	for i := 0; i < 2; i++ {
		if _, err := l.BuildFixedWith(sess); err != nil {
			t.Fatal(err)
		}
	}
	if st := SharedBuildCache().Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("disabled cache saw traffic: %+v", st)
	}
	if st := sess.Stats(); st.Misses != 2 {
		t.Fatalf("session attribution lost while disabled: %+v", st)
	}
}
