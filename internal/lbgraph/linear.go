package lbgraph

import (
	"fmt"

	"congestlb/internal/bitvec"
	"congestlb/internal/code"
	"congestlb/internal/core"
	"congestlb/internal/graphs"
)

// Linear is the Section 4 family {G_x̄}: t copies H^1..H^t of the base
// graph H, where H consists of a k-clique A and the code gadget — M = ℓ+α
// cliques C_1..C_M of q nodes each. Node v_m of A is adjacent to all code
// nodes except Code_m (the nodes spelling codeword C(m)), and for i ≠ j
// the cliques C^i_h and C^j_h are joined by a complete bipartite graph
// minus the natural perfect matching. Given inputs x̄, node v^i_m gets
// weight ℓ when x^i_m = 1 and weight 1 otherwise; all code nodes have
// weight 1.
type Linear struct {
	p     Params
	opts  LinearOptions
	words [][]int // words[m] = codeword of message m, symbols in [1,q]
}

var _ core.Family = (*Linear)(nil)

// LinearOptions alter the construction for ablation studies. The zero
// value is the faithful paper construction.
type LinearOptions struct {
	// Code overrides the Reed-Solomon code-mapping. It must produce
	// length-M codewords with symbols in [1, q] and admit at least k
	// messages. Plugging in a low-distance code (e.g. code.FirstSymbol)
	// breaks Property 2 and, with it, the disjoint-case upper bound.
	Code code.Code
	// OmitInterCopyWiring drops the C^i_h ↔ C^j_h connections between
	// copies. Without them each player's Property 1 set becomes globally
	// independent even on disjoint inputs, destroying the gap.
	OmitInterCopyWiring bool
	// UniformWeights ignores x̄ and leaves every node at weight 1. The
	// two promise cases then have identical optima: the weights are what
	// couple the graph to the inputs.
	UniformWeights bool
}

// NewLinear constructs the faithful family for the given parameters,
// building the underlying Reed-Solomon code-mapping.
func NewLinear(p Params) (*Linear, error) {
	return NewLinearVariant(p, LinearOptions{})
}

// NewLinearVariant constructs the family with ablation options applied.
func NewLinearVariant(p Params, opts LinearOptions) (*Linear, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cm := opts.Code
	if cm == nil {
		rs, err := code.NewReedSolomon(p.Alpha, p.M(), uint64(p.Q()), p.K())
		if err != nil {
			return nil, fmt.Errorf("lbgraph: code: %w", err)
		}
		cm = rs
	}
	if _, m, _, q := cm.Params(); m != p.M() || q > p.Q() {
		return nil, fmt.Errorf("lbgraph: code has (M=%d,q=%d), construction needs (M=%d,q≤%d)",
			m, q, p.M(), p.Q())
	}
	if cm.NumMessages() < p.K() {
		return nil, fmt.Errorf("lbgraph: code admits %d messages, need k=%d", cm.NumMessages(), p.K())
	}
	words := make([][]int, p.K())
	for m := range words {
		w, err := cm.Encode(m)
		if err != nil {
			return nil, fmt.Errorf("lbgraph: encode %d: %w", m, err)
		}
		for h, sym := range w {
			if sym < 1 || sym > p.Q() {
				return nil, fmt.Errorf("lbgraph: codeword %d has symbol %d at position %d outside [1,%d]",
					m, sym, h, p.Q())
			}
		}
		words[m] = w
	}
	return &Linear{p: p, opts: opts, words: words}, nil
}

// Params returns the family's parameters.
func (l *Linear) Params() Params { return l.p }

// Codeword returns the codeword of message m (1-based symbols), shared
// storage — callers must not mutate it.
func (l *Linear) Codeword(m int) []int { return l.words[m] }

// Name implements core.Family.
func (l *Linear) Name() string {
	name := fmt.Sprintf("linear[%s]", l.p)
	if l.opts.Code != nil {
		name += "+customCode"
	}
	if l.opts.OmitInterCopyWiring {
		name += "+noWiring"
	}
	if l.opts.UniformWeights {
		name += "+uniformWeights"
	}
	return name
}

// Players implements core.Family.
func (l *Linear) Players() int { return l.p.T }

// InputBits implements core.Family: the strings have length k.
func (l *Linear) InputBits() int { return l.p.K() }

// Gap implements core.Family with the Lemma 2 thresholds.
func (l *Linear) Gap() core.GapPredicate {
	return core.GapPredicate{Beta: l.p.LinearBeta(), SmallMax: l.p.LinearSmallMax()}
}

// ANode returns the node ID of v^i_m (0-based i ∈ [0,t), m ∈ [0,k)).
func (l *Linear) ANode(i, m int) graphs.NodeID {
	return i*l.p.NodesPerCopy() + m
}

// SigmaNode returns the node ID of σ^i_(h,r): position h ∈ [0,M), symbol
// index r ∈ [0,q) (the paper's symbol r+1).
func (l *Linear) SigmaNode(i, h, r int) graphs.NodeID {
	return i*l.p.NodesPerCopy() + l.p.K() + h*l.p.Q() + r
}

// CodeNodes returns Code^i_m — the M nodes spelling codeword C(m) in copy
// i, one per code-gadget clique.
func (l *Linear) CodeNodes(i, m int) []graphs.NodeID {
	out := make([]graphs.NodeID, l.p.M())
	for h, sym := range l.words[m] {
		out[h] = l.SigmaNode(i, h, sym-1)
	}
	return out
}

// BuildFixed constructs the fixed graph G (all weights 1) with its player
// partition and natural clique cover. The weights of G_x̄ are applied on
// top by Build. Repeated builds are served from the shared build cache as
// private deep copies; see cache.go.
func (l *Linear) BuildFixed() (core.Instance, error) {
	return l.BuildFixedWith(nil)
}

// BuildFixedWith is BuildFixed with the cache traffic attributed to the
// given session (nil = shared cache, no attribution).
func (l *Linear) BuildFixedWith(sess *CacheSession) (core.Instance, error) {
	return sess.instance(l.fixedKey(), l.buildFixedUncached)
}

// buildFixedUncached performs the actual construction.
func (l *Linear) buildFixedUncached() (core.Instance, error) {
	p := l.p
	k, m, q, t := p.K(), p.M(), p.Q(), p.T
	g := graphs.New(t * p.NodesPerCopy())
	part, err := graphs.NewPartition(t*p.NodesPerCopy(), t)
	if err != nil {
		return core.Instance{}, err
	}
	var cover [][]graphs.NodeID

	for i := 0; i < t; i++ {
		// Clique A^i = {v^i_1..v^i_k}.
		aNodes := make([]graphs.NodeID, k)
		for mm := 0; mm < k; mm++ {
			id, err := g.AddNode(fmt.Sprintf("v[i=%d,m=%d]", i+1, mm+1), 1)
			if err != nil {
				return core.Instance{}, err
			}
			if id != l.ANode(i, mm) {
				return core.Instance{}, fmt.Errorf("lbgraph: node layout drift at v[%d,%d]", i, mm)
			}
			aNodes[mm] = id
			part.MustAssign(id, i)
		}
		// Code gadget cliques C^i_h = {σ^i_(h,1)..σ^i_(h,q)}.
		for h := 0; h < m; h++ {
			for r := 0; r < q; r++ {
				id, err := g.AddNode(fmt.Sprintf("sigma[i=%d,h=%d,r=%d]", i+1, h+1, r+1), 1)
				if err != nil {
					return core.Instance{}, err
				}
				if id != l.SigmaNode(i, h, r) {
					return core.Instance{}, fmt.Errorf("lbgraph: node layout drift at sigma[%d,%d,%d]", i, h, r)
				}
				part.MustAssign(id, i)
			}
		}
		if err := g.AddClique(aNodes); err != nil {
			return core.Instance{}, err
		}
		cover = append(cover, aNodes)
		for h := 0; h < m; h++ {
			cNodes := make([]graphs.NodeID, q)
			for r := 0; r < q; r++ {
				cNodes[r] = l.SigmaNode(i, h, r)
			}
			if err := g.AddClique(cNodes); err != nil {
				return core.Instance{}, err
			}
			cover = append(cover, cNodes)
		}
		// v^i_m is adjacent to Code^i \ Code^i_m.
		for mm := 0; mm < k; mm++ {
			word := l.words[mm]
			for h := 0; h < m; h++ {
				for r := 0; r < q; r++ {
					if r+1 == word[h] {
						continue // this is Code^i_mm's node at position h
					}
					if err := g.AddEdge(l.ANode(i, mm), l.SigmaNode(i, h, r)); err != nil {
						return core.Instance{}, err
					}
				}
			}
		}
	}

	// Inter-copy wiring: complete bipartite minus perfect matching between
	// C^i_h and C^j_h for all i < j and all h.
	if l.opts.OmitInterCopyWiring {
		return core.Instance{Graph: g, Partition: part, CliqueCover: cover}, nil
	}
	for i := 0; i < t; i++ {
		for j := i + 1; j < t; j++ {
			for h := 0; h < m; h++ {
				for r := 0; r < q; r++ {
					for s := 0; s < q; s++ {
						if r == s {
							continue
						}
						if err := g.AddEdge(l.SigmaNode(i, h, r), l.SigmaNode(j, h, s)); err != nil {
							return core.Instance{}, err
						}
					}
				}
			}
		}
	}
	return core.Instance{Graph: g, Partition: part, CliqueCover: cover}, nil
}

// Build implements core.Family: the fixed graph with the x̄-dependent
// weights w(v^i_m) = ℓ if x^i_m = 1 else 1.
func (l *Linear) Build(in bitvec.Inputs) (core.Instance, error) {
	return l.BuildWith(nil, in)
}

// BuildWith is Build with the fixed-construction cache traffic attributed
// to the given session. The input weights are applied to the private copy
// the cache returns, so the cached fixed graph is never mutated.
func (l *Linear) BuildWith(sess *CacheSession, in bitvec.Inputs) (core.Instance, error) {
	if err := l.checkInputs(in); err != nil {
		return core.Instance{}, err
	}
	inst, err := l.BuildFixedWith(sess)
	if err != nil {
		return core.Instance{}, err
	}
	if l.opts.UniformWeights {
		return inst, nil
	}
	for i := 0; i < l.p.T; i++ {
		for m := 0; m < l.p.K(); m++ {
			if in[i].Get(m) {
				inst.Graph.SetWeight(l.ANode(i, m), int64(l.p.Ell))
			}
		}
	}
	return inst, nil
}

func (l *Linear) checkInputs(in bitvec.Inputs) error {
	if err := in.Validate(); err != nil {
		return err
	}
	if in.Players() != l.p.T {
		return fmt.Errorf("lbgraph: %d inputs for t=%d players", in.Players(), l.p.T)
	}
	if in.Len() != l.InputBits() {
		return fmt.Errorf("lbgraph: inputs of length %d, want k=%d", in.Len(), l.InputBits())
	}
	return nil
}

// WitnessLarge implements core.Family: for a uniquely-intersecting input
// with common index m it returns the Property 1 independent set
// (∪_i Code^i_m) ∪ {v^i_m | i ∈ [t]}, whose weight is t(2ℓ+α) = Beta.
func (l *Linear) WitnessLarge(in bitvec.Inputs, inst core.Instance) ([]graphs.NodeID, error) {
	if err := l.checkInputs(in); err != nil {
		return nil, err
	}
	m, ok := in.UniqueIntersection()
	if !ok {
		return nil, fmt.Errorf("lbgraph: no common index; witness requires a uniquely-intersecting input")
	}
	var set []graphs.NodeID
	for i := 0; i < l.p.T; i++ {
		set = append(set, l.ANode(i, m))
		set = append(set, l.CodeNodes(i, m)...)
	}
	return set, nil
}

// BuildBase constructs a single copy of the base graph H with unit weights
// — the object of the paper's Figure 1. It is the t=1 slice of the fixed
// construction.
func BuildBase(p Params) (*graphs.Graph, error) {
	return BuildBaseWith(nil, p)
}

// BuildBaseWith is BuildBase with build-cache attribution.
func BuildBaseWith(sess *CacheSession, p Params) (*graphs.Graph, error) {
	single := p
	single.T = 2 // NewLinear requires t ≥ 2; we keep only copy 0 below.
	l, err := NewLinear(single)
	if err != nil {
		return nil, err
	}
	inst, err := l.BuildFixedWith(sess)
	if err != nil {
		return nil, err
	}
	nodes := make([]graphs.NodeID, l.p.NodesPerCopy())
	for u := range nodes {
		nodes[u] = u // copy 0 occupies the first NodesPerCopy IDs
	}
	base, _, err := inst.Graph.InducedSubgraph(nodes)
	if err != nil {
		return nil, err
	}
	return base, nil
}
