package lbgraph

import (
	"fmt"
	"math/rand"
	"testing"

	"congestlb/internal/bitvec"
	"congestlb/internal/code"
	"congestlb/internal/core"
	"congestlb/internal/mis"
)

// mustLinear builds the family or fails the test.
func mustLinear(t *testing.T, p Params) *Linear {
	t.Helper()
	l, err := NewLinear(p)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// exactOpt solves an instance exactly using its natural clique cover.
func exactOpt(t *testing.T, inst core.Instance) int64 {
	t.Helper()
	sol, err := mis.Exact(inst.Graph, mis.Options{CliqueCover: inst.CliqueCover})
	if err != nil {
		t.Fatal(err)
	}
	return sol.Weight
}

func TestBuildBaseMatchesFigure1(t *testing.T) {
	// Figure 1: ℓ=2, α=1, k=3. A = {v1,v2,v3}; three cliques C1,C2,C3 of
	// three nodes each. C(1) = "2,3,1", so v1 is adjacent to all code
	// nodes except σ(1,2), σ(2,3), σ(3,1).
	base, err := BuildBase(FigureParams(2))
	if err != nil {
		t.Fatal(err)
	}
	if base.N() != 12 {
		t.Fatalf("N = %d, want 12", base.N())
	}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	v1, ok := base.NodeByLabel("v[i=1,m=1]")
	if !ok {
		t.Fatal("v1 missing")
	}
	nonNeighbors := []string{"sigma[i=1,h=1,r=2]", "sigma[i=1,h=2,r=3]", "sigma[i=1,h=3,r=1]"}
	nonSet := map[string]bool{}
	for _, lbl := range nonNeighbors {
		nonSet[lbl] = true
		u, ok := base.NodeByLabel(lbl)
		if !ok {
			t.Fatalf("%s missing", lbl)
		}
		if base.HasEdge(v1, u) {
			t.Fatalf("v1 adjacent to %s, must not be (Code_1)", lbl)
		}
	}
	// v1 adjacent to the other six code nodes and the two other A nodes.
	for h := 1; h <= 3; h++ {
		for r := 1; r <= 3; r++ {
			lbl := fmt.Sprintf("sigma[i=1,h=%d,r=%d]", h, r)
			if nonSet[lbl] {
				continue
			}
			u, ok := base.NodeByLabel(lbl)
			if !ok {
				t.Fatalf("%s missing", lbl)
			}
			if !base.HasEdge(v1, u) {
				t.Fatalf("v1 not adjacent to %s", lbl)
			}
		}
	}
	if base.Degree(v1) != 2+6 {
		t.Fatalf("deg(v1) = %d, want 8", base.Degree(v1))
	}
	// Edge count: E(A)=3, three C cliques 3·3=9, and each v_m is adjacent
	// to 6 code nodes → 18. Total 30.
	if base.M() != 30 {
		t.Fatalf("edges = %d, want 30", base.M())
	}
}

func TestBuildFixedStructure(t *testing.T) {
	p := FigureParams(3)
	l := mustLinear(t, p)
	inst, err := l.BuildFixed()
	if err != nil {
		t.Fatal(err)
	}
	g, part := inst.Graph, inst.Partition
	if g.N() != p.LinearN() {
		t.Fatalf("N = %d, want %d", g.N(), p.LinearN())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := part.Validate(g); err != nil {
		t.Fatal(err)
	}
	for i, size := range part.Sizes() {
		if size != p.NodesPerCopy() {
			t.Fatalf("player %d owns %d nodes, want %d", i, size, p.NodesPerCopy())
		}
	}
	// Cut: for each pair i<j and each h, q(q-1) edges.
	wantCut := (p.T * (p.T - 1) / 2) * p.M() * p.Q() * (p.Q() - 1)
	if got := part.CutSize(g); got != wantCut {
		t.Fatalf("cut = %d, want %d", got, wantCut)
	}
	// No edges between A^i and anything outside copy i.
	for i := 0; i < p.T; i++ {
		for m := 0; m < p.K(); m++ {
			v := l.ANode(i, m)
			g.ForEachNeighbor(v, func(u int) {
				if part.Of(u) != i {
					t.Fatalf("A-node %s adjacent to other player's node %s", g.Label(v), g.Label(u))
				}
			})
		}
	}
	// Clique cover parts are cliques covering everything.
	if len(inst.CliqueCover) != p.T*(1+p.M()) {
		t.Fatalf("cover has %d parts, want %d", len(inst.CliqueCover), p.T*(1+p.M()))
	}
	covered := 0
	for _, part := range inst.CliqueCover {
		if !g.IsClique(part) {
			t.Fatal("cover part is not a clique")
		}
		covered += len(part)
	}
	if covered != g.N() {
		t.Fatalf("cover covers %d of %d nodes", covered, g.N())
	}
}

func TestInterCopyWiringMatchesFigure2(t *testing.T) {
	// Figure 2: σ^i_(h,r) is connected to all of C^j_h except σ^j_(h,r).
	p := FigureParams(2)
	l := mustLinear(t, p)
	inst, err := l.BuildFixed()
	if err != nil {
		t.Fatal(err)
	}
	g := inst.Graph
	for h := 0; h < p.M(); h++ {
		for r := 0; r < p.Q(); r++ {
			for s := 0; s < p.Q(); s++ {
				has := g.HasEdge(l.SigmaNode(0, h, r), l.SigmaNode(1, h, s))
				if (r == s) == has {
					t.Fatalf("wiring wrong at h=%d r=%d s=%d: edge=%v", h, r, s, has)
				}
			}
		}
	}
	// Different positions h ≠ h' are never wired across copies.
	if g.HasEdge(l.SigmaNode(0, 0, 0), l.SigmaNode(1, 1, 0)) {
		t.Fatal("cross-position inter-copy edge exists")
	}
}

func TestProperty1(t *testing.T) {
	// Property 1: (∪_i Code^i_m) ∪ {v^i_m} is an independent set, for
	// every m — in the fixed graph, hence in every G_x̄.
	for _, p := range []Params{FigureParams(2), FigureParams(4), {T: 3, Alpha: 2, Ell: 2}} {
		l := mustLinear(t, p)
		inst, err := l.BuildFixed()
		if err != nil {
			t.Fatal(err)
		}
		for m := 0; m < p.K(); m++ {
			var set []int
			for i := 0; i < p.T; i++ {
				set = append(set, l.ANode(i, m))
				set = append(set, l.CodeNodes(i, m)...)
			}
			if !inst.Graph.IsIndependentSet(set) {
				t.Fatalf("%v: Property 1 fails at m=%d", p, m)
			}
		}
	}
}

func TestProperty2(t *testing.T) {
	// Property 2: for i≠j and m1≠m2, the bipartite graph between
	// Code^i_m1 and Code^j_m2 contains a matching of size ≥ ℓ. The
	// matching is explicit: every position h where the codewords differ
	// contributes the edge (σ^i_(h,w1_h), σ^j_(h,w2_h)).
	p := Params{T: 2, Alpha: 2, Ell: 2} // M=4, q=5, k=16
	l := mustLinear(t, p)
	inst, err := l.BuildFixed()
	if err != nil {
		t.Fatal(err)
	}
	for m1 := 0; m1 < p.K(); m1++ {
		for m2 := 0; m2 < p.K(); m2++ {
			if m1 == m2 {
				continue
			}
			w1, w2 := l.Codeword(m1), l.Codeword(m2)
			if d := code.Distance(w1, w2); d < p.Ell {
				t.Fatalf("codewords %d,%d at distance %d < ℓ=%d", m1, m2, d, p.Ell)
			}
			matching := 0
			for h := 0; h < p.M(); h++ {
				if w1[h] != w2[h] {
					u := l.SigmaNode(0, h, w1[h]-1)
					v := l.SigmaNode(1, h, w2[h]-1)
					if !inst.Graph.HasEdge(u, v) {
						t.Fatalf("matching edge missing at h=%d for (%d,%d)", h, m1, m2)
					}
					matching++
				}
			}
			if matching < p.Ell {
				t.Fatalf("matching size %d < ℓ=%d", matching, p.Ell)
			}
		}
	}
}

func TestProperty3ViaExactSolver(t *testing.T) {
	// Property 3: any independent set contains, for i≠j and m1≠m2, at
	// most α positions h with both σ^i_(h,w1_h) and σ^j_(h,w2_h) inside.
	// Check it on exact optima of random weighted instances.
	p := Params{T: 2, Alpha: 1, Ell: 3}
	l := mustLinear(t, p)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 6; trial++ {
		in, _, err := bitvec.RandomPromiseInstance(p.K(), p.T, bitvec.GenOptions{Density: 0.5}, 0.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := l.Build(in)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := mis.Exact(inst.Graph, mis.Options{CliqueCover: inst.CliqueCover})
		if err != nil {
			t.Fatal(err)
		}
		inSet := make(map[int]bool, len(sol.Set))
		for _, u := range sol.Set {
			inSet[u] = true
		}
		for m1 := 0; m1 < p.K(); m1++ {
			for m2 := 0; m2 < p.K(); m2++ {
				if m1 == m2 {
					continue
				}
				w1, w2 := l.Codeword(m1), l.Codeword(m2)
				both := 0
				for h := 0; h < p.M(); h++ {
					if inSet[l.SigmaNode(0, h, w1[h]-1)] && inSet[l.SigmaNode(1, h, w2[h]-1)] {
						both++
					}
				}
				if both > p.Alpha {
					t.Fatalf("Property 3 violated: %d shared positions > α=%d", both, p.Alpha)
				}
			}
		}
	}
}

func TestBuildAppliesWeights(t *testing.T) {
	p := FigureParams(2)
	l := mustLinear(t, p)
	in := bitvec.Inputs{
		bitvec.MustFromBits([]int{1, 0, 1}),
		bitvec.MustFromBits([]int{0, 0, 1}),
	}
	inst, err := l.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	wantW := func(i, m int) int64 {
		if in[i].Get(m) {
			return int64(p.Ell)
		}
		return 1
	}
	for i := 0; i < p.T; i++ {
		for m := 0; m < p.K(); m++ {
			if got := inst.Graph.Weight(l.ANode(i, m)); got != wantW(i, m) {
				t.Fatalf("w(v^%d_%d) = %d, want %d", i, m, got, wantW(i, m))
			}
		}
	}
	// Code nodes stay weight 1.
	if inst.Graph.Weight(l.SigmaNode(0, 0, 0)) != 1 {
		t.Fatal("code node weight changed")
	}
}

func TestBuildInputValidation(t *testing.T) {
	l := mustLinear(t, FigureParams(2))
	if _, err := l.Build(bitvec.Inputs{bitvec.New(3)}); err == nil {
		t.Fatal("wrong player count accepted")
	}
	if _, err := l.Build(bitvec.Inputs{bitvec.New(4), bitvec.New(4)}); err == nil {
		t.Fatal("wrong string length accepted")
	}
	if _, err := l.Build(nil); err == nil {
		t.Fatal("nil inputs accepted")
	}
}

func TestWitnessLargeWeightEqualsBeta(t *testing.T) {
	for _, p := range []Params{FigureParams(2), {T: 3, Alpha: 1, Ell: 4}, {T: 4, Alpha: 1, Ell: 5}} {
		l := mustLinear(t, p)
		rng := rand.New(rand.NewSource(9))
		in, _, err := bitvec.RandomUniquelyIntersecting(p.K(), p.T, bitvec.GenOptions{Density: 0.3}, rng)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := l.Build(in)
		if err != nil {
			t.Fatal(err)
		}
		witness, err := l.WitnessLarge(in, inst)
		if err != nil {
			t.Fatal(err)
		}
		weight, err := mis.Verify(inst.Graph, witness)
		if err != nil {
			t.Fatalf("%v: witness not independent: %v", p, err)
		}
		if weight < p.LinearBeta() {
			t.Fatalf("%v: witness weight %d < Beta %d", p, weight, p.LinearBeta())
		}
	}
}

func TestWitnessLargeRejectsDisjoint(t *testing.T) {
	p := FigureParams(2)
	l := mustLinear(t, p)
	in := bitvec.Inputs{
		bitvec.MustFromBits([]int{1, 0, 0}),
		bitvec.MustFromBits([]int{0, 1, 0}),
	}
	inst, err := l.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.WitnessLarge(in, inst); err == nil {
		t.Fatal("witness produced for disjoint input")
	}
}

func TestClaim1And2TwoPlayers(t *testing.T) {
	// Lemma 1's exact case analysis at t=2: intersecting instances have
	// MaxIS ≥ 4ℓ+2α; pairwise disjoint ones have MaxIS ≤ 3ℓ+2α+1.
	p := Params{T: 2, Alpha: 1, Ell: 3} // M=4, q=5, k=4, n=48
	l := mustLinear(t, p)
	rng := rand.New(rand.NewSource(11))
	ell, alpha := int64(p.Ell), int64(p.Alpha)
	for trial := 0; trial < 8; trial++ {
		inter, _, err := bitvec.RandomUniquelyIntersecting(p.K(), p.T, bitvec.GenOptions{Density: 0.4}, rng)
		if err != nil {
			t.Fatal(err)
		}
		instI, err := l.Build(inter)
		if err != nil {
			t.Fatal(err)
		}
		if opt := exactOpt(t, instI); opt < 4*ell+2*alpha {
			t.Fatalf("trial %d: intersecting OPT %d < 4ℓ+2α = %d", trial, opt, 4*ell+2*alpha)
		}

		dis, err := bitvec.RandomPairwiseDisjoint(p.K(), p.T, bitvec.GenOptions{Density: 0.4}, rng)
		if err != nil {
			t.Fatal(err)
		}
		instD, err := l.Build(dis)
		if err != nil {
			t.Fatal(err)
		}
		if opt := exactOpt(t, instD); opt > 3*ell+2*alpha+1 {
			t.Fatalf("trial %d: disjoint OPT %d > 3ℓ+2α+1 = %d", trial, opt, 3*ell+2*alpha+1)
		}
	}
}

func TestClaims3And5MultiParty(t *testing.T) {
	// Lemma 2's case analysis for t>2 via AuditGap: intersecting → OPT ≥
	// t(2ℓ+α); disjoint → OPT ≤ (t+1)ℓ+αt².
	p := SmallestValidLinear(3, 1) // t=3, ℓ=4: M=5, q=5, k=5, n=90
	if !p.LinearGapValid() {
		t.Fatal("chosen params should have a valid gap")
	}
	l := mustLinear(t, p)
	rng := rand.New(rand.NewSource(13))
	solver := func(inst core.Instance) (int64, error) {
		sol, err := mis.Exact(inst.Graph, mis.Options{CliqueCover: inst.CliqueCover})
		if err != nil {
			return 0, err
		}
		return sol.Weight, nil
	}
	for trial := 0; trial < 5; trial++ {
		in, _, err := bitvec.RandomPromiseInstance(p.K(), p.T, bitvec.GenOptions{Density: 0.4}, 0.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.AuditGap(l, in, solver); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestLocalityOfConstruction(t *testing.T) {
	// Definition 4 condition 1, checked mechanically: changing player i's
	// string may only change weights in V^i (the linear family adds no
	// input edges at all).
	p := FigureParams(3)
	l := mustLinear(t, p)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < p.T; i++ {
		a := make(bitvec.Inputs, p.T)
		b := make(bitvec.Inputs, p.T)
		for j := range a {
			v := bitvec.New(p.K())
			for m := 0; m < p.K(); m++ {
				if rng.Intn(2) == 1 {
					v.Set(m)
				}
			}
			a[j] = v
			b[j] = v.Clone()
		}
		b[i] = bitvec.New(p.K()) // zero out player i's string
		if err := core.AuditLocality(l, a, b, i); err != nil {
			t.Fatalf("player %d: %v", i, err)
		}
	}
}

func BenchmarkBuildLinearT4(b *testing.B) {
	p := Params{T: 4, Alpha: 1, Ell: 5}
	l, err := NewLinear(p)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	in, _, err := bitvec.RandomUniquelyIntersecting(p.K(), p.T, bitvec.GenOptions{Density: 0.3}, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Build(in); err != nil {
			b.Fatal(err)
		}
	}
}
