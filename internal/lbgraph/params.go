// Package lbgraph builds the lower-bound graph families of Efron, Grossman
// and Khoury (PODC 2020): the linear family G_x̄ of Section 4 (Theorem 1)
// and the quadratic family F_x̄ of Section 5 (Theorem 2), together with the
// Remark 1 unweighted blow-up.
//
// # Parameterisation
//
// The constructions are driven by three integers: the number of players t,
// and the code parameters α and ℓ. From these derive
//
//   - M = ℓ+α, the code length — the number of code-gadget cliques per copy;
//   - q, the alphabet size — the paper uses q = M; we use the smallest
//     prime q ≥ M so Reed-Solomon applies, making each code-gadget clique
//     have q nodes (Bertrand: q < 2M, so all asymptotics are unchanged,
//     and none of Properties 1-3 or Claims 1-7 are affected — their proofs
//     only use "an independent set holds at most one node per clique" and
//     "distinct codewords disagree in ≥ ℓ positions");
//   - k = M^α, the number of codewords used — the size of each clique A^i
//     and the per-player input length (k² for the quadratic family).
//
// The paper's asymptotic schedule ℓ = log k − log k/log log k,
// α = log k/log log k is realised by ParamsForK.
package lbgraph

import (
	"fmt"
	"math"

	"congestlb/internal/field"
)

// MaxK bounds the clique size k; beyond this the Θ(k²) clique edges make
// instances unbuildable in memory anyway.
const MaxK = 1 << 16

// Params selects one member of the family of constructions.
type Params struct {
	// T is the number of players, t ≥ 2.
	T int
	// Alpha is the code message length α ≥ 1.
	Alpha int
	// Ell is the guaranteed code distance ℓ ≥ 1 (and the weight given to
	// selected clique nodes).
	Ell int
}

// Validate checks the parameters define a buildable construction.
func (p Params) Validate() error {
	if p.T < 2 {
		return fmt.Errorf("lbgraph: t=%d must be >= 2", p.T)
	}
	if p.Alpha < 1 {
		return fmt.Errorf("lbgraph: alpha=%d must be >= 1", p.Alpha)
	}
	if p.Ell < 1 {
		return fmt.Errorf("lbgraph: ell=%d must be >= 1", p.Ell)
	}
	if k := p.K(); k < 1 || k > MaxK {
		return fmt.Errorf("lbgraph: k=(ℓ+α)^α=%d out of range [1,%d]", k, MaxK)
	}
	return nil
}

// M returns the code length ℓ+α (number of code-gadget cliques per copy).
func (p Params) M() int { return p.Ell + p.Alpha }

// Q returns the alphabet size: the smallest prime ≥ M. Each code-gadget
// clique C^i_h has Q nodes.
func (p Params) Q() int { return int(field.NextPrime(uint64(p.M()))) }

// K returns k = M^α, the size of each clique A^i. Overflow saturates above
// MaxK (which Validate rejects).
func (p Params) K() int {
	k := 1
	for i := 0; i < p.Alpha; i++ {
		k *= p.M()
		if k > MaxK {
			return MaxK + 1
		}
	}
	return k
}

// NodesPerCopy returns |V_H| = k + M·q for one copy of the base graph H.
func (p Params) NodesPerCopy() int { return p.K() + p.M()*p.Q() }

// LinearN returns |V| = t·(k + M·q) for the linear construction.
func (p Params) LinearN() int { return p.T * p.NodesPerCopy() }

// QuadraticN returns |V| = 2t·(k + M·q) for the quadratic construction.
func (p Params) QuadraticN() int { return 2 * p.LinearN() }

// LinearBeta is the intersecting-case MaxIS lower threshold of Claim 3:
// t(2ℓ+α).
func (p Params) LinearBeta() int64 {
	return int64(p.T) * (2*int64(p.Ell) + int64(p.Alpha))
}

// LinearSmallMax is the pairwise-disjoint-case MaxIS upper bound of
// Claim 5: (t+1)ℓ + αt².
func (p Params) LinearSmallMax() int64 {
	t := int64(p.T)
	return (t+1)*int64(p.Ell) + int64(p.Alpha)*t*t
}

// LinearGapValid reports whether the linear predicate separates, which
// happens exactly when ℓ > αt.
func (p Params) LinearGapValid() bool { return p.LinearBeta() > p.LinearSmallMax() }

// QuadraticBeta is the intersecting-case threshold of Claim 6: t(4ℓ+2α).
func (p Params) QuadraticBeta() int64 {
	return int64(p.T) * (4*int64(p.Ell) + 2*int64(p.Alpha))
}

// QuadraticSmallMax is the disjoint-case upper bound of Claim 7:
// 3(t+1)ℓ + 3αt³.
func (p Params) QuadraticSmallMax() int64 {
	t := int64(p.T)
	return 3*(t+1)*int64(p.Ell) + 3*int64(p.Alpha)*t*t*t
}

// QuadraticGapValid reports whether the quadratic predicate separates.
func (p Params) QuadraticGapValid() bool { return p.QuadraticBeta() > p.QuadraticSmallMax() }

// String implements fmt.Stringer.
func (p Params) String() string {
	return fmt.Sprintf("t=%d α=%d ℓ=%d (M=%d q=%d k=%d)", p.T, p.Alpha, p.Ell, p.M(), p.Q(), p.K())
}

// FigureParams returns the preset used throughout the paper's figures:
// ℓ=2, α=1, hence M=q=3 and k=3, with C(1)="2,3,1".
func FigureParams(t int) Params {
	return Params{T: t, Alpha: 1, Ell: 2}
}

// ParamsForK approximates the paper's asymptotic schedule for a target k:
// α ≈ log k/log log k and ℓ ≈ log k − α, rounded to integers with
// k = (ℓ+α)^α re-derived. The returned Params' K() is the closest
// realisable k, not necessarily the target.
func ParamsForK(targetK, t int) (Params, error) {
	if targetK < 2 {
		return Params{}, fmt.Errorf("lbgraph: target k=%d must be >= 2", targetK)
	}
	lk := math.Log2(float64(targetK))
	llk := math.Log2(lk)
	alpha := 1
	if llk > 1 {
		alpha = int(math.Round(lk / llk))
		if alpha < 1 {
			alpha = 1
		}
	}
	m := int(math.Round(math.Pow(float64(targetK), 1/float64(alpha))))
	if m < alpha+1 {
		m = alpha + 1
	}
	p := Params{T: t, Alpha: alpha, Ell: m - alpha}
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}

// SmallestValidLinear returns the smallest-ℓ parameterisation with a valid
// linear gap for the given t and α (ℓ = αt+1).
func SmallestValidLinear(t, alpha int) Params {
	return Params{T: t, Alpha: alpha, Ell: alpha*t + 1}
}
