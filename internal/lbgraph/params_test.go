package lbgraph

import (
	"strings"
	"testing"
)

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name string
		p    Params
		ok   bool
	}{
		{name: "figure preset", p: FigureParams(2), ok: true},
		{name: "three players", p: Params{T: 3, Alpha: 1, Ell: 4}, ok: true},
		{name: "alpha two", p: Params{T: 2, Alpha: 2, Ell: 2}, ok: true},
		{name: "one player", p: Params{T: 1, Alpha: 1, Ell: 2}, ok: false},
		{name: "zero alpha", p: Params{T: 2, Alpha: 0, Ell: 2}, ok: false},
		{name: "zero ell", p: Params{T: 2, Alpha: 1, Ell: 0}, ok: false},
		{name: "k overflow", p: Params{T: 2, Alpha: 9, Ell: 120}, ok: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate()
			if (err == nil) != tt.ok {
				t.Fatalf("Validate(%+v) = %v, want ok=%v", tt.p, err, tt.ok)
			}
		})
	}
}

func TestParamsDerived(t *testing.T) {
	tests := []struct {
		name          string
		p             Params
		m, q, k, copy int
	}{
		{name: "figure", p: FigureParams(2), m: 3, q: 3, k: 3, copy: 12},
		{name: "t3 ell4", p: Params{T: 3, Alpha: 1, Ell: 4}, m: 5, q: 5, k: 5, copy: 30},
		{name: "alpha2", p: Params{T: 2, Alpha: 2, Ell: 2}, m: 4, q: 5, k: 16, copy: 36},
		{name: "nonprime M", p: Params{T: 2, Alpha: 1, Ell: 5}, m: 6, q: 7, k: 6, copy: 48},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.M(); got != tt.m {
				t.Errorf("M = %d, want %d", got, tt.m)
			}
			if got := tt.p.Q(); got != tt.q {
				t.Errorf("Q = %d, want %d", got, tt.q)
			}
			if got := tt.p.K(); got != tt.k {
				t.Errorf("K = %d, want %d", got, tt.k)
			}
			if got := tt.p.NodesPerCopy(); got != tt.copy {
				t.Errorf("NodesPerCopy = %d, want %d", got, tt.copy)
			}
			if got := tt.p.LinearN(); got != tt.p.T*tt.copy {
				t.Errorf("LinearN = %d", got)
			}
			if got := tt.p.QuadraticN(); got != 2*tt.p.T*tt.copy {
				t.Errorf("QuadraticN = %d", got)
			}
		})
	}
}

func TestThresholdFormulas(t *testing.T) {
	p := Params{T: 3, Alpha: 1, Ell: 4}
	if got := p.LinearBeta(); got != 3*(2*4+1) {
		t.Errorf("LinearBeta = %d", got)
	}
	if got := p.LinearSmallMax(); got != 4*4+1*9 {
		t.Errorf("LinearSmallMax = %d", got)
	}
	if got := p.QuadraticBeta(); got != 3*(4*4+2) {
		t.Errorf("QuadraticBeta = %d", got)
	}
	if got := p.QuadraticSmallMax(); got != 3*4*4+3*27 {
		t.Errorf("QuadraticSmallMax = %d", got)
	}
}

func TestLinearGapValidBoundary(t *testing.T) {
	// The linear gap separates iff ℓ > αt.
	for _, tc := range []struct {
		alpha, tp int
	}{{1, 2}, {1, 3}, {2, 3}, {1, 5}} {
		atEdge := Params{T: tc.tp, Alpha: tc.alpha, Ell: tc.alpha * tc.tp}
		if atEdge.LinearGapValid() {
			t.Errorf("%v: ℓ=αt should NOT separate", atEdge)
		}
		above := SmallestValidLinear(tc.tp, tc.alpha)
		if !above.LinearGapValid() {
			t.Errorf("%v: ℓ=αt+1 should separate", above)
		}
	}
}

func TestFigureParamsMatchPaper(t *testing.T) {
	p := FigureParams(3)
	if p.Ell != 2 || p.Alpha != 1 || p.K() != 3 || p.Q() != 3 {
		t.Fatalf("figure params wrong: %v", p)
	}
	if p.LinearGapValid() {
		t.Fatal("figure params are illustrative; their gap should be vacuous for t=3")
	}
}

func TestParamsForK(t *testing.T) {
	for _, target := range []int{8, 64, 256, 1024, 4096} {
		p, err := ParamsForK(target, 3)
		if err != nil {
			t.Fatalf("ParamsForK(%d): %v", target, err)
		}
		k := p.K()
		// Must land within a factor 4 of the target (integer rounding).
		if k < target/4 || k > target*4 {
			t.Errorf("ParamsForK(%d) realised k=%d (params %v)", target, k, p)
		}
	}
	if _, err := ParamsForK(1, 2); err == nil {
		t.Fatal("k=1 accepted")
	}
}

func TestParamsString(t *testing.T) {
	s := Params{T: 2, Alpha: 1, Ell: 2}.String()
	for _, want := range []string{"t=2", "k=3", "q=3"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}
