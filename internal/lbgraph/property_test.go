package lbgraph

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"congestlb/internal/bitvec"
	"congestlb/internal/graphs"
	"congestlb/internal/mis"
)

// Property-based tests over random small parameterisations: structural
// invariants that must hold for every member of the family.

// randomSmallParams draws parameters with buildable sizes.
func randomSmallParams(r *rand.Rand) Params {
	return Params{
		T:     2 + r.Intn(3),
		Alpha: 1 + r.Intn(2),
		Ell:   1 + r.Intn(4),
	}
}

func quickCfg(seed int64, count int) *quick.Config {
	return &quick.Config{
		MaxCount: count,
		Rand:     rand.New(rand.NewSource(seed)),
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Int63())
		},
	}
}

func TestQuickLinearStructuralInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomSmallParams(r)
		if p.K() > 64 { // keep instances tiny
			return true
		}
		l, err := NewLinear(p)
		if err != nil {
			return false
		}
		inst, err := l.BuildFixed()
		if err != nil {
			return false
		}
		g, part := inst.Graph, inst.Partition
		if g.N() != p.LinearN() {
			return false
		}
		if err := g.Validate(); err != nil {
			return false
		}
		// Cut formula.
		wantCut := (p.T * (p.T - 1) / 2) * p.M() * p.Q() * (p.Q() - 1)
		if part.CutSize(g) != wantCut {
			return false
		}
		// Every A-node: degree = (k-1) + M·(q-1) (clique + non-codeword
		// code nodes).
		wantDeg := p.K() - 1 + p.M()*(p.Q()-1)
		for i := 0; i < p.T; i++ {
			for m := 0; m < p.K(); m++ {
				if g.Degree(l.ANode(i, m)) != wantDeg {
					return false
				}
			}
		}
		// Property 1 witness independent for a random m.
		m := r.Intn(p.K())
		var set []int
		for i := 0; i < p.T; i++ {
			set = append(set, l.ANode(i, m))
			set = append(set, l.CodeNodes(i, m)...)
		}
		return g.IsIndependentSet(set)
	}
	if err := quick.Check(prop, quickCfg(101, 25)); err != nil {
		t.Error(err)
	}
}

func TestQuickWitnessAlwaysMeetsBeta(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomSmallParams(r)
		if p.K() > 64 {
			return true
		}
		l, err := NewLinear(p)
		if err != nil {
			return false
		}
		in, _, err := bitvec.RandomUniquelyIntersecting(p.K(), p.T, bitvec.GenOptions{Density: r.Float64() / 2}, r)
		if err != nil {
			return false
		}
		inst, err := l.Build(in)
		if err != nil {
			return false
		}
		witness, err := l.WitnessLarge(in, inst)
		if err != nil {
			return false
		}
		weight, err := mis.Verify(inst.Graph, witness)
		if err != nil {
			return false
		}
		return weight >= p.LinearBeta()
	}
	if err := quick.Check(prop, quickCfg(103, 20)); err != nil {
		t.Error(err)
	}
}

func TestQuickQuadraticCutIsTwiceLinear(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomSmallParams(r)
		if p.K() > 16 {
			return true
		}
		l, err := NewLinear(p)
		if err != nil {
			return false
		}
		q, err := NewQuadratic(p)
		if err != nil {
			return false
		}
		li, err := l.BuildFixed()
		if err != nil {
			return false
		}
		qi, err := q.BuildFixed()
		if err != nil {
			return false
		}
		return qi.Partition.CutSize(qi.Graph) == 2*li.Partition.CutSize(li.Graph)
	}
	if err := quick.Check(prop, quickCfg(107, 12)); err != nil {
		t.Error(err)
	}
}

func TestQuickLabelsAreUniqueAndResolvable(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomSmallParams(r)
		if p.K() > 32 {
			return true
		}
		l, err := NewLinear(p)
		if err != nil {
			return false
		}
		inst, err := l.BuildFixed()
		if err != nil {
			return false
		}
		g := inst.Graph
		for u := 0; u < g.N(); u++ {
			id, ok := g.NodeByLabel(g.Label(u))
			if !ok || id != u {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(109, 15)); err != nil {
		t.Error(err)
	}
}

func TestQuickGapThresholdsConsistent(t *testing.T) {
	// Beta and SmallMax formulas must satisfy their defining identities
	// for arbitrary parameters.
	cfg := &quick.Config{
		MaxCount: 200,
		Rand:     rand.New(rand.NewSource(113)),
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(2 + r.Intn(30))  // t
			vals[1] = reflect.ValueOf(1 + r.Intn(10))  // alpha
			vals[2] = reflect.ValueOf(1 + r.Intn(200)) // ell
		},
	}
	prop := func(t, alpha, ell int) bool {
		p := Params{T: t, Alpha: alpha, Ell: ell}
		beta := p.LinearBeta()
		small := p.LinearSmallMax()
		if beta != int64(t)*(2*int64(ell)+int64(alpha)) {
			return false
		}
		if small != int64(t+1)*int64(ell)+int64(alpha)*int64(t)*int64(t) {
			return false
		}
		// Validity iff ℓ > αt, as derived in DESIGN.md.
		return p.LinearGapValid() == (ell > alpha*t)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickBlowupWeightConservation(t *testing.T) {
	// Blow-up node count always equals the original total weight, and
	// edge count equals Σ_{(u,v)∈E} w(u)·w(v).
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		g := buildRandomWeighted(n, r)
		res, err := Blowup(g, nil)
		if err != nil {
			return false
		}
		if int64(res.Graph.N()) != g.TotalWeight() {
			return false
		}
		var wantEdges int64
		for _, e := range g.Edges() {
			wantEdges += g.Weight(e.U) * g.Weight(e.V)
		}
		return int64(res.Graph.M()) == wantEdges
	}
	if err := quick.Check(prop, quickCfg(127, 40)); err != nil {
		t.Error(err)
	}
}

func buildRandomWeighted(n int, r *rand.Rand) *graphs.Graph {
	g := graphs.New(n)
	for i := 0; i < n; i++ {
		g.MustAddNode(fmt.Sprintf("n%d", i), 1+r.Int63n(4))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < 0.4 {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}
