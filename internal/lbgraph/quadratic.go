package lbgraph

import (
	"fmt"

	"congestlb/internal/bitvec"
	"congestlb/internal/code"
	"congestlb/internal/core"
	"congestlb/internal/graphs"
)

// Quadratic is the Section 5 family {F_x̄}: two copies G¹, G² of the fixed
// linear construction, with player i owning V^i = V^(i,1) ∪ V^(i,2) — its
// copy-pair of cliques and code gadgets. All A-clique nodes have fixed
// weight ℓ and all code nodes weight 1; the input no longer selects
// weights but edges: player i's string x^i ∈ {0,1}^(k²) places an edge
// between v^(i,1)_m1 and v^(i,2)_m2 exactly when x^i_(m1,m2) = 0.
//
// Because both endpoints of every input edge belong to player i, the
// strings can be k² bits long while the cut stays polylogarithmic — that
// is what upgrades the linear lower bound to a near-quadratic one.
type Quadratic struct {
	p     Params
	opts  QuadraticOptions
	rs    *code.ReedSolomon
	words [][]int
}

var _ core.Family = (*Quadratic)(nil)

// QuadraticOptions alter the construction for ablation studies. The zero
// value is the faithful paper construction.
type QuadraticOptions struct {
	// InvertInputEdges places the input edge on 1 bits instead of 0 bits.
	// A uniquely-intersecting input then wires v^(i,1)_m1 to v^(i,2)_m2 at
	// the common pair, destroying the Claim 6 witness: the intersecting
	// case loses its large independent set and the gap inverts.
	InvertInputEdges bool
	// OmitInputEdges drops the input edges entirely, decoupling F from x̄:
	// both promise cases then share one optimum.
	OmitInputEdges bool
}

// NewQuadratic constructs the faithful family for the given parameters.
func NewQuadratic(p Params) (*Quadratic, error) {
	return NewQuadraticVariant(p, QuadraticOptions{})
}

// NewQuadraticVariant constructs the family with ablation options applied.
func NewQuadraticVariant(p Params, opts QuadraticOptions) (*Quadratic, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rs, err := code.NewReedSolomon(p.Alpha, p.M(), uint64(p.Q()), p.K())
	if err != nil {
		return nil, fmt.Errorf("lbgraph: code: %w", err)
	}
	words := make([][]int, p.K())
	for m := range words {
		w, err := rs.Encode(m)
		if err != nil {
			return nil, fmt.Errorf("lbgraph: encode %d: %w", m, err)
		}
		words[m] = w
	}
	return &Quadratic{p: p, opts: opts, rs: rs, words: words}, nil
}

// Params returns the family's parameters.
func (f *Quadratic) Params() Params { return f.p }

// Name implements core.Family.
func (f *Quadratic) Name() string {
	name := fmt.Sprintf("quadratic[%s]", f.p)
	if f.opts.InvertInputEdges {
		name += "+invertedInputs"
	}
	if f.opts.OmitInputEdges {
		name += "+noInputs"
	}
	return name
}

// Players implements core.Family.
func (f *Quadratic) Players() int { return f.p.T }

// InputBits implements core.Family: strings have length k².
func (f *Quadratic) InputBits() int { return f.p.K() * f.p.K() }

// Gap implements core.Family with the Lemma 3 thresholds.
func (f *Quadratic) Gap() core.GapPredicate {
	return core.GapPredicate{Beta: f.p.QuadraticBeta(), SmallMax: f.p.QuadraticSmallMax()}
}

// copyOffset returns the first node ID of copy (i, b), b ∈ {0, 1}
// standing for the paper's superscripts (i, 1) and (i, 2). Player i owns
// the two consecutive copies 2i and 2i+1, keeping V^i contiguous.
func (f *Quadratic) copyOffset(i, b int) int {
	return (2*i + b) * f.p.NodesPerCopy()
}

// ANode returns v^(i,b)_m.
func (f *Quadratic) ANode(i, b, m int) graphs.NodeID {
	return f.copyOffset(i, b) + m
}

// SigmaNode returns σ^(i,b)_(h,r), r ∈ [0,q).
func (f *Quadratic) SigmaNode(i, b, h, r int) graphs.NodeID {
	return f.copyOffset(i, b) + f.p.K() + h*f.p.Q() + r
}

// CodeNodes returns Code^(i,b)_m.
func (f *Quadratic) CodeNodes(i, b, m int) []graphs.NodeID {
	out := make([]graphs.NodeID, f.p.M())
	for h, sym := range f.words[m] {
		out[h] = f.SigmaNode(i, b, h, sym-1)
	}
	return out
}

// BuildFixed constructs the fixed graph F: all structure except the
// input edges. Weights are already final (they do not depend on x̄).
// Repeated builds are served from the shared build cache as private deep
// copies; see cache.go.
func (f *Quadratic) BuildFixed() (core.Instance, error) {
	return f.BuildFixedWith(nil)
}

// BuildFixedWith is BuildFixed with the cache traffic attributed to the
// given session (nil = shared cache, no attribution).
func (f *Quadratic) BuildFixedWith(sess *CacheSession) (core.Instance, error) {
	return sess.instance(f.fixedKey(), f.buildFixedUncached)
}

// buildFixedUncached performs the actual construction.
func (f *Quadratic) buildFixedUncached() (core.Instance, error) {
	p := f.p
	k, m, q, t := p.K(), p.M(), p.Q(), p.T
	n := p.QuadraticN()
	g := graphs.New(n)
	part, err := graphs.NewPartition(n, t)
	if err != nil {
		return core.Instance{}, err
	}
	var cover [][]graphs.NodeID

	for i := 0; i < t; i++ {
		for b := 0; b < 2; b++ {
			aNodes := make([]graphs.NodeID, k)
			for mm := 0; mm < k; mm++ {
				id, err := g.AddNode(fmt.Sprintf("v[i=%d,b=%d,m=%d]", i+1, b+1, mm+1), int64(p.Ell))
				if err != nil {
					return core.Instance{}, err
				}
				if id != f.ANode(i, b, mm) {
					return core.Instance{}, fmt.Errorf("lbgraph: node layout drift at v[%d,%d,%d]", i, b, mm)
				}
				aNodes[mm] = id
				part.MustAssign(id, i)
			}
			for h := 0; h < m; h++ {
				for r := 0; r < q; r++ {
					id, err := g.AddNode(fmt.Sprintf("sigma[i=%d,b=%d,h=%d,r=%d]", i+1, b+1, h+1, r+1), 1)
					if err != nil {
						return core.Instance{}, err
					}
					if id != f.SigmaNode(i, b, h, r) {
						return core.Instance{}, fmt.Errorf("lbgraph: node layout drift at sigma[%d,%d,%d,%d]", i, b, h, r)
					}
					part.MustAssign(id, i)
				}
			}
			if err := g.AddClique(aNodes); err != nil {
				return core.Instance{}, err
			}
			cover = append(cover, aNodes)
			for h := 0; h < m; h++ {
				cNodes := make([]graphs.NodeID, q)
				for r := 0; r < q; r++ {
					cNodes[r] = f.SigmaNode(i, b, h, r)
				}
				if err := g.AddClique(cNodes); err != nil {
					return core.Instance{}, err
				}
				cover = append(cover, cNodes)
			}
			for mm := 0; mm < k; mm++ {
				word := f.words[mm]
				for h := 0; h < m; h++ {
					for r := 0; r < q; r++ {
						if r+1 == word[h] {
							continue
						}
						if err := g.AddEdge(f.ANode(i, b, mm), f.SigmaNode(i, b, h, r)); err != nil {
							return core.Instance{}, err
						}
					}
				}
			}
		}
	}

	// Inter-player wiring inside each of G¹ and G²: complete bipartite
	// minus perfect matching between C^(i,b)_h and C^(j,b)_h.
	for b := 0; b < 2; b++ {
		for i := 0; i < t; i++ {
			for j := i + 1; j < t; j++ {
				for h := 0; h < m; h++ {
					for r := 0; r < q; r++ {
						for s := 0; s < q; s++ {
							if r == s {
								continue
							}
							if err := g.AddEdge(f.SigmaNode(i, b, h, r), f.SigmaNode(j, b, h, s)); err != nil {
								return core.Instance{}, err
							}
						}
					}
				}
			}
		}
	}
	return core.Instance{Graph: g, Partition: part, CliqueCover: cover}, nil
}

// Build implements core.Family: the fixed graph plus the input edges
// {v^(i,1)_m1, v^(i,2)_m2} for every 0 bit x^i_(m1,m2).
func (f *Quadratic) Build(in bitvec.Inputs) (core.Instance, error) {
	return f.BuildWith(nil, in)
}

// BuildWith is Build with the fixed-construction cache traffic attributed
// to the given session. Input edges are added to the private copy the
// cache returns, so the cached fixed graph is never mutated.
func (f *Quadratic) BuildWith(sess *CacheSession, in bitvec.Inputs) (core.Instance, error) {
	if err := f.checkInputs(in); err != nil {
		return core.Instance{}, err
	}
	inst, err := f.BuildFixedWith(sess)
	if err != nil {
		return core.Instance{}, err
	}
	if f.opts.OmitInputEdges {
		return inst, nil
	}
	k := f.p.K()
	for i := 0; i < f.p.T; i++ {
		mat, err := bitvec.MatrixFromVector(in[i], k)
		if err != nil {
			return core.Instance{}, err
		}
		for m1 := 0; m1 < k; m1++ {
			for m2 := 0; m2 < k; m2++ {
				if mat.Get(m1, m2) == f.opts.InvertInputEdges {
					if err := inst.Graph.AddEdge(f.ANode(i, 0, m1), f.ANode(i, 1, m2)); err != nil {
						return core.Instance{}, err
					}
				}
			}
		}
	}
	return inst, nil
}

func (f *Quadratic) checkInputs(in bitvec.Inputs) error {
	if err := in.Validate(); err != nil {
		return err
	}
	if in.Players() != f.p.T {
		return fmt.Errorf("lbgraph: %d inputs for t=%d players", in.Players(), f.p.T)
	}
	if in.Len() != f.InputBits() {
		return fmt.Errorf("lbgraph: inputs of length %d, want k²=%d", in.Len(), f.InputBits())
	}
	return nil
}

// WitnessLarge implements core.Family: for a uniquely-intersecting input
// with common pair (m1, m2) it returns the Claim 6 independent set
// ∪_i {v^(i,1)_m1} ∪ Code^(i,1)_m1 ∪ {v^(i,2)_m2} ∪ Code^(i,2)_m2 of
// weight t(4ℓ+2α) = Beta.
func (f *Quadratic) WitnessLarge(in bitvec.Inputs, inst core.Instance) ([]graphs.NodeID, error) {
	if err := f.checkInputs(in); err != nil {
		return nil, err
	}
	flat, ok := in.UniqueIntersection()
	if !ok {
		return nil, fmt.Errorf("lbgraph: no common index pair; witness requires a uniquely-intersecting input")
	}
	k := f.p.K()
	m1, m2 := flat/k, flat%k
	var set []graphs.NodeID
	for i := 0; i < f.p.T; i++ {
		set = append(set, f.ANode(i, 0, m1))
		set = append(set, f.CodeNodes(i, 0, m1)...)
		set = append(set, f.ANode(i, 1, m2))
		set = append(set, f.CodeNodes(i, 1, m2)...)
	}
	return set, nil
}
