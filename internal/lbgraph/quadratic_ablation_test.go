package lbgraph

import (
	"testing"

	"congestlb/internal/bitvec"
)

// allOnes returns t all-ones k²-bit strings (uniquely intersecting, no
// input edges in the faithful construction).
func allOnes(p Params) bitvec.Inputs {
	in := make(bitvec.Inputs, p.T)
	for i := range in {
		m := bitvec.NewMatrix(p.K())
		m.SetAll()
		in[i] = m.Vector()
	}
	return in
}

func TestQuadraticInvertedEdgesDestroyWitness(t *testing.T) {
	p := FigureParams(2)
	inverted, err := NewQuadraticVariant(p, QuadraticOptions{InvertInputEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := inverted.Build(allOnes(p))
	if err != nil {
		t.Fatal(err)
	}
	// All-ones input now adds ALL k² edges per player; the witness pair
	// v^(i,1)_m1, v^(i,2)_m2 is wired for every (m1,m2).
	opt := exactOpt(t, inst)
	if opt >= p.QuadraticBeta() {
		t.Fatalf("inverted edges: OPT %d still reaches Beta %d", opt, p.QuadraticBeta())
	}

	// Control: the faithful family keeps the witness.
	faithful, err := NewQuadratic(p)
	if err != nil {
		t.Fatal(err)
	}
	instF, err := faithful.Build(allOnes(p))
	if err != nil {
		t.Fatal(err)
	}
	if opt := exactOpt(t, instF); opt < p.QuadraticBeta() {
		t.Fatalf("faithful family lost the witness: %d < %d", opt, p.QuadraticBeta())
	}
}

func TestQuadraticOmitInputEdgesDecouples(t *testing.T) {
	p := FigureParams(2)
	fam, err := NewQuadraticVariant(p, QuadraticOptions{OmitInputEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	// Intersecting (all ones) and disjoint (all zeros) inputs must build
	// identical graphs.
	interInst, err := fam.Build(allOnes(p))
	if err != nil {
		t.Fatal(err)
	}
	zeros := make(bitvec.Inputs, p.T)
	for i := range zeros {
		zeros[i] = bitvec.New(p.K() * p.K())
	}
	disInst, err := fam.Build(zeros)
	if err != nil {
		t.Fatal(err)
	}
	if interInst.Graph.M() != disInst.Graph.M() {
		t.Fatalf("edge counts differ: %d vs %d", interInst.Graph.M(), disInst.Graph.M())
	}
	if exactOpt(t, interInst) != exactOpt(t, disInst) {
		t.Fatal("optima differ despite decoupled inputs")
	}
}

func TestQuadraticVariantNames(t *testing.T) {
	p := FigureParams(2)
	a, err := NewQuadraticVariant(p, QuadraticOptions{InvertInputEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewQuadraticVariant(p, QuadraticOptions{OmitInputEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewQuadratic(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() == f.Name() || b.Name() == f.Name() || a.Name() == b.Name() {
		t.Fatalf("variant names not distinct: %q %q %q", a.Name(), b.Name(), f.Name())
	}
}
