package lbgraph

import (
	"math/rand"
	"testing"

	"congestlb/internal/bitvec"
	"congestlb/internal/core"
	"congestlb/internal/mis"
)

func mustQuadratic(t *testing.T, p Params) *Quadratic {
	t.Helper()
	f, err := NewQuadratic(p)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// allOnesInputs returns t all-ones strings of length k² (no input edges).
func allOnesInputs(p Params) bitvec.Inputs {
	in := make(bitvec.Inputs, p.T)
	for i := range in {
		m := bitvec.NewMatrix(p.K())
		m.SetAll()
		in[i] = m.Vector()
	}
	return in
}

func TestQuadraticFixedStructure(t *testing.T) {
	p := FigureParams(2)
	f := mustQuadratic(t, p)
	inst, err := f.BuildFixed()
	if err != nil {
		t.Fatal(err)
	}
	g, part := inst.Graph, inst.Partition
	if g.N() != p.QuadraticN() {
		t.Fatalf("N = %d, want %d", g.N(), p.QuadraticN())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, size := range part.Sizes() {
		if size != 2*p.NodesPerCopy() {
			t.Fatalf("player %d owns %d nodes, want %d", i, size, 2*p.NodesPerCopy())
		}
	}
	// Cut is twice the linear cut (one copy of the wiring per b).
	wantCut := 2 * (p.T * (p.T - 1) / 2) * p.M() * p.Q() * (p.Q() - 1)
	if got := part.CutSize(g); got != wantCut {
		t.Fatalf("cut = %d, want %d", got, wantCut)
	}
	// A-clique nodes have fixed weight ℓ; code nodes weight 1.
	if g.Weight(f.ANode(0, 0, 0)) != int64(p.Ell) {
		t.Fatalf("A-node weight = %d, want ℓ=%d", g.Weight(f.ANode(0, 0, 0)), p.Ell)
	}
	if g.Weight(f.SigmaNode(1, 1, 0, 0)) != 1 {
		t.Fatal("code node weight != 1")
	}
	// No fixed edges between the two halves' A cliques.
	for m1 := 0; m1 < p.K(); m1++ {
		for m2 := 0; m2 < p.K(); m2++ {
			if g.HasEdge(f.ANode(0, 0, m1), f.ANode(0, 1, m2)) {
				t.Fatal("fixed graph contains input edges")
			}
		}
	}
	// Code gadgets of different halves are never wired.
	if g.HasEdge(f.SigmaNode(0, 0, 0, 0), f.SigmaNode(1, 1, 0, 1)) {
		t.Fatal("cross-half code wiring exists")
	}
}

func TestQuadraticInputEdgesFollowZeroBits(t *testing.T) {
	// Figure 6's example: the (1,1) bit of x¹ is 0, everything else 1 →
	// exactly one input edge, between v^(1,1)_1 and v^(1,2)_1.
	p := FigureParams(2)
	f := mustQuadratic(t, p)
	in := allOnesInputs(p)
	m0, err := bitvec.MatrixFromVector(in[0], p.K())
	if err != nil {
		t.Fatal(err)
	}
	m0.Clear(0, 0)
	inst, err := f.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	g := inst.Graph
	if !g.HasEdge(f.ANode(0, 0, 0), f.ANode(0, 1, 0)) {
		t.Fatal("zero bit did not create its input edge")
	}
	count := 0
	for i := 0; i < p.T; i++ {
		for m1 := 0; m1 < p.K(); m1++ {
			for m2 := 0; m2 < p.K(); m2++ {
				if g.HasEdge(f.ANode(i, 0, m1), f.ANode(i, 1, m2)) {
					count++
				}
			}
		}
	}
	if count != 1 {
		t.Fatalf("input edge count = %d, want 1", count)
	}
}

func TestQuadraticInputValidation(t *testing.T) {
	f := mustQuadratic(t, FigureParams(2))
	if _, err := f.Build(bitvec.Inputs{bitvec.New(9)}); err == nil {
		t.Fatal("wrong player count accepted")
	}
	if _, err := f.Build(bitvec.Inputs{bitvec.New(3), bitvec.New(3)}); err == nil {
		t.Fatal("length k (not k²) accepted")
	}
}

func TestQuadraticWitnessWeightEqualsBeta(t *testing.T) {
	for _, p := range []Params{FigureParams(2), FigureParams(3), {T: 2, Alpha: 1, Ell: 4}} {
		f := mustQuadratic(t, p)
		rng := rand.New(rand.NewSource(21))
		in, _, err := bitvec.RandomUniquelyIntersecting(f.InputBits(), p.T, bitvec.GenOptions{Density: 0.2}, rng)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := f.Build(in)
		if err != nil {
			t.Fatal(err)
		}
		witness, err := f.WitnessLarge(in, inst)
		if err != nil {
			t.Fatal(err)
		}
		weight, err := mis.Verify(inst.Graph, witness)
		if err != nil {
			t.Fatalf("%v: witness invalid: %v", p, err)
		}
		if weight < p.QuadraticBeta() {
			t.Fatalf("%v: witness weight %d < Beta %d", p, weight, p.QuadraticBeta())
		}
	}
}

func TestClaim6ExactlyOnSmallInstance(t *testing.T) {
	// Claim 6: uniquely intersecting at (m1,m2) → MaxIS ≥ 4tℓ+2αt.
	p := FigureParams(2)
	f := mustQuadratic(t, p)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 6; trial++ {
		in, _, err := bitvec.RandomUniquelyIntersecting(f.InputBits(), p.T, bitvec.GenOptions{Density: 0.3}, rng)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := f.Build(in)
		if err != nil {
			t.Fatal(err)
		}
		opt := exactOpt(t, inst)
		if opt < p.QuadraticBeta() {
			t.Fatalf("trial %d: OPT %d < Beta %d", trial, opt, p.QuadraticBeta())
		}
	}
}

func TestClaim7BoundOnDisjointInstances(t *testing.T) {
	// Claim 7: pairwise disjoint → MaxIS ≤ 3(t+1)ℓ + 3αt³. At small
	// parameters the bound is loose; exact optima must stay under it.
	for _, p := range []Params{FigureParams(2), FigureParams(3)} {
		f := mustQuadratic(t, p)
		rng := rand.New(rand.NewSource(37))
		for trial := 0; trial < 4; trial++ {
			in, err := bitvec.RandomPairwiseDisjoint(f.InputBits(), p.T, bitvec.GenOptions{Density: 0.3}, rng)
			if err != nil {
				t.Fatal(err)
			}
			inst, err := f.Build(in)
			if err != nil {
				t.Fatal(err)
			}
			opt := exactOpt(t, inst)
			if opt > p.QuadraticSmallMax() {
				t.Fatalf("%v trial %d: OPT %d > bound %d", p, trial, opt, p.QuadraticSmallMax())
			}
		}
	}
}

func TestQuadraticLocality(t *testing.T) {
	// Definition 4 condition 1 for the quadratic family: player i's string
	// controls only the edges inside V^i (between A^(i,1) and A^(i,2)).
	p := FigureParams(2)
	f := mustQuadratic(t, p)
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < p.T; i++ {
		a := make(bitvec.Inputs, p.T)
		b := make(bitvec.Inputs, p.T)
		for j := range a {
			v := bitvec.New(f.InputBits())
			for x := 0; x < f.InputBits(); x++ {
				if rng.Intn(2) == 1 {
					v.Set(x)
				}
			}
			a[j] = v
			b[j] = v.Clone()
		}
		b[i] = bitvec.New(f.InputBits())
		if err := core.AuditLocality(f, a, b, i); err != nil {
			t.Fatalf("player %d: %v", i, err)
		}
	}
}

func TestQuadraticGapDecide(t *testing.T) {
	p := Params{T: 4, Alpha: 1, Ell: 200} // huge ℓ: gap genuinely valid
	if !p.QuadraticGapValid() {
		t.Fatalf("expected valid quadratic gap for %v", p)
	}
	gap := core.GapPredicate{Beta: p.QuadraticBeta(), SmallMax: p.QuadraticSmallMax()}
	if v, err := gap.Decide(p.QuadraticBeta()); err != nil || v {
		t.Fatalf("Beta should decide FALSE (intersecting): %v %v", v, err)
	}
	if v, err := gap.Decide(p.QuadraticSmallMax()); err != nil || !v {
		t.Fatalf("SmallMax should decide TRUE (disjoint): %v %v", v, err)
	}
	if _, err := gap.Decide(p.QuadraticSmallMax() + 1); err == nil {
		t.Fatal("gap interior accepted")
	}
}

func BenchmarkBuildQuadraticT2(b *testing.B) {
	p := FigureParams(2)
	f, err := NewQuadratic(p)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	in, _, err := bitvec.RandomUniquelyIntersecting(f.InputBits(), p.T, bitvec.GenOptions{Density: 0.3}, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Build(in); err != nil {
			b.Fatal(err)
		}
	}
}
