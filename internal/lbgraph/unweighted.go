package lbgraph

import (
	"fmt"

	"congestlb/internal/graphs"
)

// BlowupResult is the unweighted graph produced by Remark 1's transform,
// with the bookkeeping needed to interpret it.
type BlowupResult struct {
	// Graph is the unweighted (all weights 1) blow-up.
	Graph *graphs.Graph
	// Partition assigns blown-up nodes to the owner of their original.
	Partition *graphs.Partition
	// Groups maps each original node to its copies: Groups[v] lists the
	// new node IDs of the independent set I(v) replacing v.
	Groups [][]graphs.NodeID
}

// Blowup applies the Remark 1 transform: every node v of weight w(v) is
// replaced by an independent set I(v) of w(v) unit-weight nodes, and every
// original edge {u, v} becomes the complete bipartite graph between I(u)
// and I(v). The maximum independent set weight is preserved exactly: any
// IS of the blow-up can be normalised to take all or none of each group,
// and groups behave like their original node.
func Blowup(g *graphs.Graph, part *graphs.Partition) (BlowupResult, error) {
	if part != nil {
		if err := part.Validate(g); err != nil {
			return BlowupResult{}, err
		}
	}
	total := g.TotalWeight()
	if total > 1<<22 {
		return BlowupResult{}, fmt.Errorf("lbgraph: blow-up would have %d nodes", total)
	}
	out := graphs.New(int(total))
	groups := make([][]graphs.NodeID, g.N())
	owners := make([]int, 0, total)
	for v := 0; v < g.N(); v++ {
		w := g.Weight(v)
		if w < 1 {
			return BlowupResult{}, fmt.Errorf("lbgraph: node %d has weight %d < 1", v, w)
		}
		group := make([]graphs.NodeID, w)
		for c := int64(0); c < w; c++ {
			id, err := out.AddNode(fmt.Sprintf("%s#%d", g.Label(v), c+1), 1)
			if err != nil {
				return BlowupResult{}, err
			}
			group[c] = id
			if part != nil {
				owners = append(owners, part.Of(v))
			}
		}
		groups[v] = group
	}
	for _, e := range g.Edges() {
		if err := out.AddBiclique(groups[e.U], groups[e.V]); err != nil {
			return BlowupResult{}, err
		}
	}
	var newPart *graphs.Partition
	if part != nil {
		var err error
		newPart, err = graphs.NewPartition(out.N(), part.T())
		if err != nil {
			return BlowupResult{}, err
		}
		for u, o := range owners {
			newPart.MustAssign(u, o)
		}
	}
	return BlowupResult{Graph: out, Partition: newPart, Groups: groups}, nil
}

// BlowupCover translates a clique cover of the original graph to the
// blow-up. A clique of originals does not stay a clique (each group is
// independent), so each original clique part becomes w_max parts: the
// c-th copy of every member with at least c copies forms a clique (all
// groups of a clique are pairwise fully connected).
func BlowupCover(cover [][]graphs.NodeID, res BlowupResult) [][]graphs.NodeID {
	var out [][]graphs.NodeID
	for _, part := range cover {
		maxLayer := 0
		for _, v := range part {
			if len(res.Groups[v]) > maxLayer {
				maxLayer = len(res.Groups[v])
			}
		}
		for layer := 0; layer < maxLayer; layer++ {
			var clique []graphs.NodeID
			for _, v := range part {
				if layer < len(res.Groups[v]) {
					clique = append(clique, res.Groups[v][layer])
				}
			}
			if len(clique) > 0 {
				out = append(out, clique)
			}
		}
	}
	return out
}
