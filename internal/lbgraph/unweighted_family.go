package lbgraph

import (
	"fmt"

	"congestlb/internal/bitvec"
	"congestlb/internal/core"
	"congestlb/internal/graphs"
)

// UnweightedLinear is the Remark 1 family: the linear construction pushed
// through the weighted→unweighted blow-up. Its instances are unweighted
// graphs (every node has weight 1) whose MaxIS values equal the weighted
// originals, so the gap thresholds are unchanged and any CONGEST algorithm
// for unweighted MaxIS decides the same promise function.
//
// Note one structural difference from the weighted family: the number of
// nodes depends on the inputs (a 1 bit turns one node into ℓ), so the
// node set itself varies with x̄. This is faithful to Remark 1 — each
// blown-up group lies entirely inside its owner's part V^i, which is all
// Definition 4's locality condition needs — but it means the strict
// fixed-node-set audit (core.AuditLocality) does not apply to this family.
type UnweightedLinear struct {
	inner *Linear
}

var _ core.Family = (*UnweightedLinear)(nil)

// NewUnweightedLinear constructs the family for the given parameters.
func NewUnweightedLinear(p Params) (*UnweightedLinear, error) {
	inner, err := NewLinear(p)
	if err != nil {
		return nil, err
	}
	return &UnweightedLinear{inner: inner}, nil
}

// Params returns the underlying parameters.
func (u *UnweightedLinear) Params() Params { return u.inner.Params() }

// Name implements core.Family.
func (u *UnweightedLinear) Name() string { return "unweighted-" + u.inner.Name() }

// Players implements core.Family.
func (u *UnweightedLinear) Players() int { return u.inner.Players() }

// InputBits implements core.Family.
func (u *UnweightedLinear) InputBits() int { return u.inner.InputBits() }

// Gap implements core.Family: the blow-up preserves MaxIS exactly, so the
// thresholds carry over unchanged.
func (u *UnweightedLinear) Gap() core.GapPredicate { return u.inner.Gap() }

// Build implements core.Family: the weighted instance followed by the
// Remark 1 blow-up, with the clique cover translated layer by layer. The
// underlying fixed construction is served from the shared build cache;
// the blow-up itself is linear in the output size and recomputed.
func (u *UnweightedLinear) Build(in bitvec.Inputs) (core.Instance, error) {
	return u.BuildWith(nil, in)
}

// BuildWith is Build with the fixed-construction cache traffic attributed
// to the given session.
func (u *UnweightedLinear) BuildWith(sess *CacheSession, in bitvec.Inputs) (core.Instance, error) {
	weighted, err := u.inner.BuildWith(sess, in)
	if err != nil {
		return core.Instance{}, err
	}
	res, err := Blowup(weighted.Graph, weighted.Partition)
	if err != nil {
		return core.Instance{}, fmt.Errorf("lbgraph: remark 1 blow-up: %w", err)
	}
	return core.Instance{
		Graph:       res.Graph,
		Partition:   res.Partition,
		CliqueCover: BlowupCover(weighted.CliqueCover, res),
	}, nil
}

// WitnessLarge implements core.Family: the weighted witness mapped through
// the blow-up groups — every copy of every witness node. Group copies of a
// weighted node are mutually independent and inherit their original's
// non-adjacencies, so the image remains independent, with unweighted size
// equal to the weighted witness weight ≥ Beta.
func (u *UnweightedLinear) WitnessLarge(in bitvec.Inputs, inst core.Instance) ([]graphs.NodeID, error) {
	weighted, err := u.inner.Build(in)
	if err != nil {
		return nil, err
	}
	res, err := Blowup(weighted.Graph, weighted.Partition)
	if err != nil {
		return nil, err
	}
	innerWitness, err := u.inner.WitnessLarge(in, weighted)
	if err != nil {
		return nil, err
	}
	var out []graphs.NodeID
	for _, v := range innerWitness {
		out = append(out, res.Groups[v]...)
	}
	return out, nil
}
