package lbgraph

import (
	"math/rand"
	"testing"

	"congestlb/internal/bitvec"
	"congestlb/internal/core"
	"congestlb/internal/mis"
)

func TestUnweightedLinearGapBothCases(t *testing.T) {
	p := Params{T: 2, Alpha: 1, Ell: 3}
	fam, err := NewUnweightedLinear(p)
	if err != nil {
		t.Fatal(err)
	}
	if fam.Players() != p.T || fam.InputBits() != p.K() {
		t.Fatalf("family shape wrong: %d players, %d bits", fam.Players(), fam.InputBits())
	}
	rng := rand.New(rand.NewSource(5))
	solver := func(inst core.Instance) (int64, error) {
		sol, err := mis.Exact(inst.Graph, mis.Options{CliqueCover: inst.CliqueCover})
		if err != nil {
			return 0, err
		}
		return sol.Weight, nil
	}
	for trial := 0; trial < 6; trial++ {
		in, _, err := bitvec.RandomPromiseInstance(p.K(), p.T, bitvec.GenOptions{Density: 0.4}, 0.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.AuditGap(fam, in, solver); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestUnweightedLinearInstancesAreUnweighted(t *testing.T) {
	p := Params{T: 2, Alpha: 1, Ell: 3}
	fam, err := NewUnweightedLinear(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	in, _, err := bitvec.RandomUniquelyIntersecting(p.K(), p.T, bitvec.GenOptions{Density: 0.5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := fam.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < inst.Graph.N(); u++ {
		if inst.Graph.Weight(u) != 1 {
			t.Fatalf("node %d has weight %d", u, inst.Graph.Weight(u))
		}
	}
	// Size grows with the number of 1 bits (each worth ℓ-1 extra nodes).
	ones := 0
	for _, v := range in {
		ones += v.Count()
	}
	want := p.LinearN() + ones*(p.Ell-1)
	if inst.Graph.N() != want {
		t.Fatalf("blow-up has %d nodes, want %d", inst.Graph.N(), want)
	}
}

func TestUnweightedLinearWitness(t *testing.T) {
	p := Params{T: 2, Alpha: 1, Ell: 3}
	fam, err := NewUnweightedLinear(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	in, _, err := bitvec.RandomUniquelyIntersecting(p.K(), p.T, bitvec.GenOptions{Density: 0.3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := fam.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	witness, err := fam.WitnessLarge(in, inst)
	if err != nil {
		t.Fatal(err)
	}
	weight, err := mis.Verify(inst.Graph, witness)
	if err != nil {
		t.Fatalf("witness invalid: %v", err)
	}
	if weight < fam.Gap().Beta {
		t.Fatalf("witness size %d below Beta %d", weight, fam.Gap().Beta)
	}
}

func TestUnweightedLinearMatchesWeightedOptimum(t *testing.T) {
	p := FigureParams(2)
	weightedFam, err := NewLinear(p)
	if err != nil {
		t.Fatal(err)
	}
	unweightedFam, err := NewUnweightedLinear(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 4; trial++ {
		in, _, err := bitvec.RandomPromiseInstance(p.K(), p.T, bitvec.GenOptions{Density: 0.4}, 0.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		wInst, err := weightedFam.Build(in)
		if err != nil {
			t.Fatal(err)
		}
		uInst, err := unweightedFam.Build(in)
		if err != nil {
			t.Fatal(err)
		}
		wOpt, err := mis.Exact(wInst.Graph, mis.Options{CliqueCover: wInst.CliqueCover})
		if err != nil {
			t.Fatal(err)
		}
		uOpt, err := mis.Exact(uInst.Graph, mis.Options{CliqueCover: uInst.CliqueCover})
		if err != nil {
			t.Fatal(err)
		}
		if wOpt.Weight != uOpt.Weight {
			t.Fatalf("trial %d: weighted OPT %d, unweighted OPT %d", trial, wOpt.Weight, uOpt.Weight)
		}
	}
}

func TestUnweightedLinearName(t *testing.T) {
	fam, err := NewUnweightedLinear(FigureParams(2))
	if err != nil {
		t.Fatal(err)
	}
	if fam.Name() == "" || fam.Name()[:10] != "unweighted" {
		t.Fatalf("name %q", fam.Name())
	}
}
