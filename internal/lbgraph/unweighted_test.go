package lbgraph

import (
	"fmt"
	"math/rand"
	"testing"

	"congestlb/internal/bitvec"
	"congestlb/internal/graphs"
	"congestlb/internal/mis"
)

func TestBlowupSmallKnownGraph(t *testing.T) {
	// Edge {a(w=3), b(w=2)} plus isolated c(w=1): blow-up has 6 nodes and
	// a 3×2 biclique. MaxIS weight 3+1=4 in both.
	g := graphs.New(3)
	a := g.MustAddNode("a", 3)
	b := g.MustAddNode("b", 2)
	g.MustAddNode("c", 1)
	g.MustAddEdge(a, b)

	res, err := Blowup(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.N() != 6 {
		t.Fatalf("N = %d, want 6", res.Graph.N())
	}
	if res.Graph.M() != 6 {
		t.Fatalf("M = %d, want 6 (3×2 biclique)", res.Graph.M())
	}
	if len(res.Groups[a]) != 3 || len(res.Groups[b]) != 2 {
		t.Fatalf("groups sized %d,%d", len(res.Groups[a]), len(res.Groups[b]))
	}
	if !res.Graph.IsIndependentSet(res.Groups[a]) {
		t.Fatal("group I(a) is not independent")
	}
	orig, err := mis.Exhaustive(g)
	if err != nil {
		t.Fatal(err)
	}
	blown, err := mis.Exhaustive(res.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Weight != blown.Weight {
		t.Fatalf("MaxIS changed: weighted %d vs unweighted %d", orig.Weight, blown.Weight)
	}
}

func TestBlowupPreservesOptimumRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(8)
		g := graphs.New(n)
		for i := 0; i < n; i++ {
			g.MustAddNode(fmt.Sprintf("n%d", i), 1+rng.Int63n(3))
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.4 {
					g.MustAddEdge(u, v)
				}
			}
		}
		res, err := Blowup(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Graph.Validate(); err != nil {
			t.Fatal(err)
		}
		orig, err := mis.Exhaustive(g)
		if err != nil {
			t.Fatal(err)
		}
		blown, err := mis.Exact(res.Graph, mis.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if orig.Weight != blown.Weight {
			t.Fatalf("trial %d: weighted OPT %d vs blow-up OPT %d", trial, orig.Weight, blown.Weight)
		}
	}
}

func TestBlowupPartitionFollowsOwners(t *testing.T) {
	g := graphs.New(2)
	a := g.MustAddNode("a", 2)
	b := g.MustAddNode("b", 3)
	g.MustAddEdge(a, b)
	part := graphs.MustNewPartition(2, 2)
	part.MustAssign(b, 1)

	res, err := Blowup(g, part)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range res.Groups[a] {
		if res.Partition.Of(u) != 0 {
			t.Fatal("copy of a owned by wrong player")
		}
	}
	for _, u := range res.Groups[b] {
		if res.Partition.Of(u) != 1 {
			t.Fatal("copy of b owned by wrong player")
		}
	}
}

func TestBlowupRejectsNonPositiveWeights(t *testing.T) {
	g := graphs.New(1)
	g.MustAddNode("zero", 0)
	if _, err := Blowup(g, nil); err == nil {
		t.Fatal("zero weight accepted")
	}
}

func TestBlowupRejectsHuge(t *testing.T) {
	g := graphs.New(1)
	g.MustAddNode("huge", 1<<23)
	if _, err := Blowup(g, nil); err == nil {
		t.Fatal("oversized blow-up accepted")
	}
}

func TestBlowupCoverIsValidCover(t *testing.T) {
	// Blow up a weighted triangle and check the translated cover solves
	// exactly.
	g := graphs.New(3)
	for i := 0; i < 3; i++ {
		g.MustAddNode(fmt.Sprintf("t%d", i), int64(i+1))
	}
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2)
	cover := [][]graphs.NodeID{{0, 1, 2}}

	res, err := Blowup(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	blownCover := BlowupCover(cover, res)
	sol, err := mis.Exact(res.Graph, mis.Options{CliqueCover: blownCover})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Weight != 3 {
		t.Fatalf("blow-up triangle OPT = %d, want 3", sol.Weight)
	}
}

func TestRemark1OnLinearFamily(t *testing.T) {
	// The full Remark 1 pipeline: build G_x̄, blow it up, and check the
	// unweighted MaxIS equals the weighted one in both promise cases.
	p := FigureParams(2)
	l := mustLinear(t, p)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 4; trial++ {
		in, _, err := bitvec.RandomPromiseInstance(p.K(), p.T, bitvec.GenOptions{Density: 0.4}, 0.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := l.Build(in)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Blowup(inst.Graph, inst.Partition)
		if err != nil {
			t.Fatal(err)
		}
		weighted, err := mis.Exact(inst.Graph, mis.Options{CliqueCover: inst.CliqueCover})
		if err != nil {
			t.Fatal(err)
		}
		unweighted, err := mis.Exact(res.Graph, mis.Options{CliqueCover: BlowupCover(inst.CliqueCover, res)})
		if err != nil {
			t.Fatal(err)
		}
		if weighted.Weight != unweighted.Weight {
			t.Fatalf("trial %d: weighted %d vs unweighted %d", trial, weighted.Weight, unweighted.Weight)
		}
		// Node count grows to Θ(k·ℓ) as Remark 1 states.
		if res.Graph.N() <= inst.Graph.N() && inst.Graph.TotalWeight() > int64(inst.Graph.N()) {
			t.Fatal("blow-up did not grow despite weights > 1")
		}
	}
}
