// Package cache memoises exact MaxIS solves behind a content-addressed
// key. It exists for one dominant workload: in GossipExact-style CONGEST
// runs every one of the n nodes reconstructs the *identical* network graph
// and branch-and-bounds it locally, so n-1 of the n solves are pure waste.
// Keying the solve by a canonical hash of the graph's content — adjacency
// structure, node weights, clique cover and step budget — collapses them
// to one branch-and-bound plus n-1 cache hits, independent of how each
// caller happened to build its copy of the graph.
//
// The cache is LRU-bounded, safe for concurrent use, and deduplicates
// in-flight solves: concurrent callers with the same key block on the one
// solve in progress instead of racing their own. Hit/miss/eviction and
// branch-and-bound step counters are exposed for the experiment runner's
// JSON result envelope and for tests asserting the one-solve-per-distinct-
// graph property. Per-caller exact attribution of that traffic is
// available through Session views; SetDir attaches a persistent
// content-addressed disk tier (see disk.go) that survives the process, so
// repeated suite runs skip branch-and-bound entirely.
//
// A process-wide Shared instance backs the package-level Exact function,
// which the CONGEST programs and the experiment suite call in place of
// mis.Exact. SetEnabled turns the shared cache off (tests use this to
// compare cached and uncached runs); because the underlying solver is
// deterministic, cached and fresh results are identical, so enabling the
// cache never changes any report.
package cache

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"congestlb/internal/fault"
	"congestlb/internal/graphs"
	"congestlb/internal/mis"
	"congestlb/internal/obs"
)

// isPanicError reports whether err carries a recovered solver panic
// (*fault.PanicError) — the marker of a degraded solve.
func isPanicError(err error) bool {
	var pe *fault.PanicError
	return errors.As(err, &pe)
}

// Key is the canonical content hash of one solve: graph structure, node
// weights, clique cover and step budget.
type Key [sha256.Size]byte

// DefaultCapacity is the entry bound of the shared cache. Solutions are
// small (a node-ID slice plus counters), so a few hundred distinct graphs
// fit comfortably; the dominant workload needs exactly one entry live at a
// time.
const DefaultCapacity = 256

// Stats is a snapshot of the cache counters.
type Stats struct {
	// Hits counts lookups served from a cached (or in-flight) solve.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that ran a fresh branch-and-bound.
	Misses uint64 `json:"misses"`
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64 `json:"evictions"`
	// Entries is the number of entries currently cached.
	Entries int `json:"entries"`
	// StepsSolved sums the branch-and-bound steps of all misses — the work
	// actually performed.
	StepsSolved int64 `json:"steps_solved"`
	// StepsSaved sums the steps of the cached solutions returned on hits —
	// the work the cache avoided. Solves served from the disk tier count
	// here too: their branch-and-bound ran in some earlier process.
	StepsSaved int64 `json:"steps_saved"`

	// SharedHits counts the subset of Hits served by an attached
	// cross-cache SharedTier — solves some *other* cache (typically
	// another tenant of the same daemon) already paid for. Zero with no
	// tier attached.
	SharedHits uint64 `json:"shared_hits,omitempty"`

	// DiskHits counts in-memory misses served by the persistent disk tier
	// (cmd/experiments -cache-dir); DiskMisses counts lookups that reached
	// a configured tier and found nothing valid (corrupt entries are
	// discarded and land here). Both stay zero with no tier attached.
	DiskHits   uint64 `json:"disk_hits,omitempty"`
	DiskMisses uint64 `json:"disk_misses,omitempty"`
	// DiskWrites counts solutions persisted; DiskEvictions counts entries
	// the tier's size bound deleted.
	DiskWrites    uint64 `json:"disk_writes,omitempty"`
	DiskEvictions uint64 `json:"disk_evictions,omitempty"`

	// Fault-containment accounting (see docs/robustness.md). DiskRetries
	// counts disk-tier I/O attempts retried after transient errors;
	// DiskQuarantined counts invalid entries moved to the quarantine
	// sidecar. WorkerPanics counts solver-worker panics recovered inside
	// fresh solves; DegradedSolves counts fresh solves that lost every
	// worker and fell back to the incumbent (surfaced as an error, so
	// degraded results are never cached).
	DiskRetries     uint64 `json:"disk_retries,omitempty"`
	DiskQuarantined uint64 `json:"disk_quarantined,omitempty"`
	WorkerPanics    uint64 `json:"worker_panics,omitempty"`
	DegradedSolves  uint64 `json:"degraded_solves,omitempty"`
}

// entry is one cached (or in-flight) solve. ready is closed once sol/err
// are final; done flips under the cache lock at the same moment, so the
// eviction scan can skip in-flight entries without touching the channel.
type entry struct {
	key   Key
	sol   mis.Solution
	err   error
	done  bool
	ready chan struct{}
}

// Cache is a content-addressed, LRU-bounded memoisation layer over
// mis.Exact. The zero value is not usable; call New.
type Cache struct {
	mu       sync.Mutex
	capacity int
	index    map[Key]*list.Element
	lru      *list.List // front = most recently used; values are *entry
	stats    Stats
	disk     *diskTier // nil until SetDir attaches the persistent tier
	// sharedTier is the optional cross-cache read-through tier (see
	// shared.go); nil until SetSharedTier attaches one.
	sharedTier *SharedTier
	// om holds the observability handles attached by SetRegistry; an
	// atomic pointer (not the cache mutex) so the nil-registry fast path
	// costs one load and the attach can race live lookups under -race.
	om atomic.Pointer[cacheMetrics]
}

// cacheMetrics is the cache's resolved registry handle set. Events
// mirror the Stats/Session bookkeeping one for one, which is what makes
// the registry's solve_cache_* counters sum-consistent with the
// envelope's legacy cache block.
type cacheMetrics struct {
	hits, misses, waits          *obs.Counter
	sharedHits                   *obs.Counter
	diskHits, diskMisses         *obs.Counter
	diskRetries, diskQuarantined *obs.Counter
	workerPanics, degraded       *obs.Counter
	steps, stepsSaved            *obs.Counter
	latency, stepsHist           *obs.Histogram
}

// SetRegistry attaches (or with nil detaches) an observability registry:
// every subsequent lookup books its hit/miss/single-flight-wait and
// fresh solves record latency and step histograms. The per-Lab registry
// wiring (congestlb.WithMetrics) calls this once at construction.
func (c *Cache) SetRegistry(r *obs.Registry) {
	if r == nil {
		c.om.Store(nil)
		return
	}
	c.om.Store(&cacheMetrics{
		hits:            r.Counter(obs.MSolveCacheHits),
		misses:          r.Counter(obs.MSolveCacheMisses),
		waits:           r.Counter(obs.MSolveCacheWaits),
		sharedHits:      r.Counter(obs.MSolveCacheSharedHits),
		diskHits:        r.Counter(obs.MSolveCacheDiskHits),
		diskMisses:      r.Counter(obs.MSolveCacheDiskMisses),
		diskRetries:     r.Counter(obs.MSolveCacheDiskRetries),
		diskQuarantined: r.Counter(obs.MSolveCacheDiskQuarantined),
		workerPanics:    r.Counter(obs.MSolverWorkerPanics),
		degraded:        r.Counter(obs.MSolverDegradedSolves),
		steps:           r.Counter(obs.MSolveSteps),
		stepsSaved:      r.Counter(obs.MSolveStepsSaved),
		latency:         r.Histogram(obs.MSolveLatencyNS),
		stepsHist:       r.Histogram(obs.MSolveStepsHist),
	})
}

// New returns an empty cache bounded to the given number of entries
// (DefaultCapacity if capacity is not positive).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		capacity: capacity,
		index:    make(map[Key]*list.Element, capacity),
		lru:      list.New(),
	}
}

// Exact returns the maximum-weight independent set of g under opts,
// serving repeated solves of content-identical inputs from the cache. The
// first caller for a key runs mis.Exact; concurrent callers with the same
// key wait for that solve instead of duplicating it. Errors are not
// cached: a failed solve is retried by the next caller. Solves whose
// clique cover cannot be canonicalised (malformed covers mis.Exact will
// reject anyway) bypass the cache entirely.
func (c *Cache) Exact(g *graphs.Graph, opts mis.Options) (mis.Solution, error) {
	return c.exact(context.Background(), g, opts, nil)
}

// ExactCtx is Exact under a context: the underlying branch-and-bound
// observes cancellation on its batched step cadence, and a caller waiting
// on another goroutine's in-flight solve of the same key stops waiting when
// its own context fires. Cancelled solves return ctx.Err() and are never
// cached (errors are not cached), so a later caller retries cleanly.
func (c *Cache) ExactCtx(ctx context.Context, g *graphs.Graph, opts mis.Options) (mis.Solution, error) {
	return c.exact(ctx, g, opts, nil)
}

// exact is the session-aware lookup behind Exact and Session.Exact: every
// counter event lands in the cache's stats and, when sess is non-nil, in
// the session's — giving callers exact attribution of the traffic they
// generated even while other goroutines share the cache.
func (c *Cache) exact(ctx context.Context, g *graphs.Graph, opts mis.Options, sess *Session) (mis.Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	key, ok := KeyOf(g, opts)
	if !ok {
		return mis.ExactCtx(ctx, g, opts)
	}
	// Loop rather than recurse on the owner-cancelled retry below: a
	// long-lived waiter repeatedly losing the re-ownership race to a
	// stream of short-deadline owners must not grow a stack frame per
	// attempt.
	for {
		sol, err, retry := c.exactAttempt(ctx, key, g, opts, sess)
		if !retry {
			return sol, err
		}
	}
}

// exactAttempt is one pass of the lookup protocol; retry reports that the
// joined entry died of its owner's cancellation and the (still-live)
// caller should attempt the lookup again.
func (c *Cache) exactAttempt(ctx context.Context, key Key, g *graphs.Graph, opts mis.Options, sess *Session) (_ mis.Solution, _ error, retry bool) {
	m := c.om.Load() // nil when no registry is attached; every use is nil-guarded
	c.mu.Lock()
	disk := c.disk
	tier := c.sharedTier
	if el, found := c.index[key]; found {
		e := el.Value.(*entry)
		c.lru.MoveToFront(el)
		done := e.done
		c.mu.Unlock()
		// A completed entry is served unconditionally — even under a dead
		// context: the result is already in hand, and racing a closed
		// ready channel against a closed ctx.Done() in a select would
		// make the outcome a coin flip. Only genuinely in-flight solves
		// wait, honouring the waiter's own deadline: its context firing
		// must not leave it blocked on a solve another caller owns (which
		// may be running under a context that never cancels).
		if !done {
			if m != nil {
				m.waits.Inc()
			}
			select {
			case <-e.ready:
			case <-ctx.Done():
				// No cached result to hand over, so meet the incumbent
				// contract the direct solve path provides: the greedy
				// seed — a valid witness — alongside ctx.Err(). The
				// abandoned lookup books no counter events; the solve's
				// owner keeps its own accounting.
				return mis.SeedIncumbent(g), ctx.Err(), false
			}
		}
		if e.err != nil {
			// The owner's context dying is the owner's problem, not this
			// waiter's: its entry was already dropped, so a waiter whose
			// own context is still alive retries fresh (becoming the new
			// owner or joining one) instead of reporting a cancellation
			// that never happened to it. The retry books its own lookup;
			// this one books nothing, keeping attribution at one event
			// per call. Non-context errors propagate as always — they
			// describe the solve, not the caller.
			if ctx.Err() == nil &&
				(errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
				return mis.Solution{}, nil, true
			}
			c.mu.Lock()
			c.stats.Hits++
			c.mu.Unlock()
			sess.record(func(st *Stats) { st.Hits++ })
			if m != nil {
				m.hits.Inc()
			}
			return clone(e.sol), e.err, false
		}
		c.mu.Lock()
		c.stats.Hits++
		c.stats.StepsSaved += e.sol.Steps
		c.mu.Unlock()
		sess.record(func(st *Stats) {
			st.Hits++
			st.StepsSaved += e.sol.Steps
		})
		if m != nil {
			m.hits.Inc()
			m.stepsSaved.Add(e.sol.Steps)
		}
		return clone(e.sol), nil, false
	}
	// A weight-only miss may be served by a completed canonical solve of
	// the same graph: a canonical Solution is a strict superset of what a
	// weight-only caller needs (same Weight/Optimal, valid witness). The
	// reverse never holds — a weight-only witness is schedule-dependent —
	// which is why the flag is in the key at all. In-flight canonical
	// solves are not waited on (the rare race costs one duplicate solve,
	// not a wrong answer).
	if opts.WeightOnly {
		canonOpts := opts
		canonOpts.WeightOnly = false
		if ckey, cok := KeyOf(g, canonOpts); cok {
			if cel, found := c.index[ckey]; found {
				if ce := cel.Value.(*entry); ce.done && ce.err == nil {
					c.lru.MoveToFront(cel)
					c.stats.Hits++
					c.stats.StepsSaved += ce.sol.Steps
					c.mu.Unlock()
					sess.record(func(st *Stats) {
						st.Hits++
						st.StepsSaved += ce.sol.Steps
					})
					if m != nil {
						m.hits.Inc()
						m.stepsSaved.Add(ce.sol.Steps)
					}
					return clone(ce.sol), nil, false
				}
			}
		}
	}
	// A cross-cache tier hit is consulted *before* booking a miss: a
	// solve another cache already paid for is a hit from this cache's
	// point of view (zero branch-and-bound steps ran anywhere on its
	// behalf), attributed separately as SharedHits. The result also fills
	// the private LRU as a completed entry, so the tenant's next lookup
	// is an ordinary private hit. Lock order is c.mu → tier.mu (the tier
	// never calls back), so holding c.mu here is safe.
	if tier != nil {
		tsol, tok := tier.get(key)
		if !tok && opts.WeightOnly {
			// Mirror the private weight-only fallback: a canonical
			// solution published by any cache is a strict superset of
			// what a weight-only caller needs.
			canonOpts := opts
			canonOpts.WeightOnly = false
			if ckey, cok := KeyOf(g, canonOpts); cok {
				tsol, tok = tier.get(ckey)
			}
		}
		if tok {
			ready := make(chan struct{})
			close(ready)
			te := &entry{key: key, sol: tsol, done: true, ready: ready}
			c.index[key] = c.lru.PushFront(te)
			c.stats.Hits++
			c.stats.SharedHits++
			c.stats.StepsSaved += tsol.Steps
			c.evictLocked()
			c.mu.Unlock()
			sess.record(func(st *Stats) {
				st.Hits++
				st.SharedHits++
				st.StepsSaved += tsol.Steps
			})
			if m != nil {
				m.hits.Inc()
				m.sharedHits.Inc()
				m.stepsSaved.Add(tsol.Steps)
			}
			return clone(tsol), nil, false
		}
	}
	e := &entry{key: key, ready: make(chan struct{})}
	el := c.lru.PushFront(e)
	c.index[key] = el
	c.stats.Misses++
	c.evictLocked()
	c.mu.Unlock()
	sess.record(func(st *Stats) { st.Misses++ })
	if m != nil {
		m.misses.Inc()
	}

	// In-memory miss: try the persistent tier before paying for a solve.
	var sol mis.Solution
	var err error
	fromDisk := false
	if disk != nil {
		var dio diskIO
		sol, fromDisk, dio = disk.load(key, g)
		c.mu.Lock()
		if fromDisk {
			c.stats.DiskHits++
			c.stats.StepsSaved += sol.Steps
		} else {
			c.stats.DiskMisses++
		}
		c.stats.DiskRetries += dio.retries
		c.stats.DiskQuarantined += dio.quarantined
		c.mu.Unlock()
		sess.record(func(st *Stats) {
			if fromDisk {
				st.DiskHits++
				st.StepsSaved += sol.Steps
			} else {
				st.DiskMisses++
			}
			st.DiskRetries += dio.retries
			st.DiskQuarantined += dio.quarantined
		})
		if m != nil {
			if fromDisk {
				m.diskHits.Inc()
				m.stepsSaved.Add(sol.Steps)
			} else {
				m.diskMisses.Inc()
			}
			m.diskRetries.Add(int64(dio.retries))
			m.diskQuarantined.Add(int64(dio.quarantined))
		}
	}
	if !fromDisk {
		// This is the fresh-solve site: the only place branch-and-bound
		// actually runs, so it carries the solve span and the latency/step
		// histograms. With no registry, obs.Begin is one context lookup.
		solveCtx, sp := obs.Begin(ctx, "solve")
		var t0 time.Time
		if m != nil {
			t0 = time.Now()
		}
		sol, err = mis.ExactCtx(solveCtx, g, opts)
		sp.End()
		if m != nil && err == nil {
			m.latency.Observe(time.Since(t0).Nanoseconds())
			m.steps.Add(sol.Steps)
			m.stepsHist.Observe(sol.Steps)
		}
		if sol.WorkerPanics > 0 || isPanicError(err) {
			// Fault containment: attribute recovered worker panics (the
			// solve still completed canonically on the survivors) and
			// degraded solves (every worker lost — err is the structured
			// panic and the incumbent came back) to this caller's session
			// and the registry. Errors are never cached, so a degraded
			// solve is retried by the next caller for the key.
			panics := uint64(sol.WorkerPanics)
			degraded := uint64(0)
			if isPanicError(err) {
				degraded = 1
			}
			c.mu.Lock()
			c.stats.WorkerPanics += panics
			c.stats.DegradedSolves += degraded
			c.mu.Unlock()
			sess.record(func(st *Stats) {
				st.WorkerPanics += panics
				st.DegradedSolves += degraded
			})
			if m != nil {
				m.workerPanics.Add(int64(panics))
				m.degraded.Add(int64(degraded))
			}
		}
		if err == nil && disk != nil {
			evicted, dio, werr := disk.store(key, sol)
			c.mu.Lock()
			if werr == nil {
				c.stats.DiskWrites++
				c.stats.DiskEvictions += uint64(evicted)
			}
			c.stats.DiskRetries += dio.retries
			c.mu.Unlock()
			sess.record(func(st *Stats) {
				if werr == nil {
					st.DiskWrites++
					st.DiskEvictions += uint64(evicted)
				}
				st.DiskRetries += dio.retries
			})
			if m != nil {
				m.diskRetries.Add(int64(dio.retries))
			}
		}
	}

	c.mu.Lock()
	cached := sol
	// Worker panics are attributed to the solve that actually ran them:
	// later hits (and single-flight waiters) see a clean count.
	cached.WorkerPanics = 0
	e.sol, e.err, e.done = cached, err, true
	if err != nil {
		// Do not cache failures: drop the entry so later callers retry
		// (waiters already holding e still observe the error once).
		if cur, present := c.index[key]; present && cur == el {
			c.lru.Remove(el)
			delete(c.index, key)
		}
	} else if !fromDisk {
		c.stats.StepsSolved += sol.Steps
	}
	c.mu.Unlock()
	if err == nil && !fromDisk {
		sess.record(func(st *Stats) { st.StepsSolved += sol.Steps })
	}
	if err == nil && tier != nil {
		// Publish the completed solution (fresh or disk-served) so every
		// other cache on the tier skips its own solve for this key.
		tier.put(key, cached)
	}
	close(e.ready)
	return clone(sol), err, false
}

// SetDir attaches (or, with an empty dir, detaches) the persistent on-disk
// tier. Entries a previous process left in dir become immediately
// servable; maxBytes bounds the tier's total size (0 = DefaultDiskBytes).
// Attaching is not retroactive for in-flight solves.
func (c *Cache) SetDir(dir string, maxBytes int64) error {
	if dir == "" {
		c.mu.Lock()
		c.disk = nil
		c.mu.Unlock()
		return nil
	}
	d, err := newDiskTier(dir, maxBytes)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.disk = d
	c.mu.Unlock()
	return nil
}

// DiskDir reports the attached disk tier's directory ("" when none).
func (c *Cache) DiskDir() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.disk == nil {
		return ""
	}
	return c.disk.dir
}

// evictLocked trims the LRU to capacity, skipping in-flight entries (they
// are always near the front anyway). Callers must hold c.mu.
func (c *Cache) evictLocked() {
	for c.lru.Len() > c.capacity {
		el := c.lru.Back()
		for el != nil && !el.Value.(*entry).done {
			el = el.Prev()
		}
		if el == nil {
			return // everything in flight; over-capacity resolves later
		}
		e := el.Value.(*entry)
		c.lru.Remove(el)
		delete(c.index, e.key)
		c.stats.Evictions++
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	return s
}

// Reset drops every in-memory entry and zeroes the counters; an attached
// disk tier keeps its files (detach with SetDir("")). In-flight solves
// complete normally but are not re-inserted observable-y: their entries
// are simply no longer indexed.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.index = make(map[Key]*list.Element, c.capacity)
	c.lru = list.New()
	c.stats = Stats{}
}

// clone returns a Solution whose Set is an independent copy, so callers
// can never corrupt the cached witness (or each other's).
func clone(sol mis.Solution) mis.Solution {
	out := sol
	if sol.Set != nil {
		out.Set = append([]graphs.NodeID(nil), sol.Set...)
	}
	return out
}

// KeyOf computes the canonical content key of a solve. The hash covers the
// node count, per-node weights, the sorted edge list, the clique cover as
// a canonical partition (clique ids renumbered by first appearance in node
// order, so the same partition hashes identically however its parts are
// ordered), the step budget and the WeightOnly flag. It depends only on the graph's final
// content — never on labels or on the order nodes and edges were inserted.
// ok is false when the cover is malformed (a node missing, repeated or out
// of range); such solves are uncacheable and fall through to mis.Exact,
// which reports the precise validation error.
func KeyOf(g *graphs.Graph, opts mis.Options) (Key, bool) {
	n := g.N()
	buf := make([]byte, 0, 16+8*n+8*g.M()+4*n)
	buf = append(buf, 'm', 'i', 's', 'v', '1')
	buf = binary.LittleEndian.AppendUint64(buf, uint64(n))
	for v := 0; v < n; v++ {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(g.Weight(v)))
	}
	for u := 0; u < n; u++ {
		g.ForEachNeighbor(u, func(v graphs.NodeID) {
			if u < v {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(u))
				buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
			}
		})
	}
	if opts.CliqueCover == nil {
		buf = append(buf, 0)
	} else {
		buf = append(buf, 1)
		id := make([]int32, n)
		for i := range id {
			id[i] = -1
		}
		for ci, clique := range opts.CliqueCover {
			for _, v := range clique {
				if v < 0 || v >= n || id[v] != -1 {
					return Key{}, false
				}
				id[v] = int32(ci)
			}
		}
		// Renumber clique ids by first appearance so the key depends on
		// the partition, not on the ordering of its parts.
		renum := make([]int32, len(opts.CliqueCover))
		for i := range renum {
			renum[i] = -1
		}
		var next int32
		for v := 0; v < n; v++ {
			if id[v] == -1 {
				return Key{}, false
			}
			if renum[id[v]] == -1 {
				renum[id[v]] = next
				next++
			}
			buf = binary.LittleEndian.AppendUint32(buf, uint32(renum[id[v]]))
		}
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(opts.MaxSteps))
	// Weight-only solves may carry a schedule-dependent (non-canonical)
	// witness set, so they must never share an entry with solves whose
	// callers rely on the canonical witness.
	if opts.WeightOnly {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return sha256.Sum256(buf), true
}

// shared is the process-wide cache behind the package-level Exact.
var shared = New(DefaultCapacity)

// enabled gates the shared cache; non-zero means on.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Shared returns the process-wide cache instance.
func Shared() *Cache { return shared }

// SetEnabled switches the shared-cache fast path on or off and reports the
// previous setting. Disabling does not clear the cache; call
// Shared().Reset() for that. Intended for tests comparing cached and
// uncached runs.
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// Enabled reports whether the shared-cache fast path is on.
func Enabled() bool { return enabled.Load() }

// Exact is the drop-in replacement for mis.Exact used by the CONGEST
// programs and the experiment suite: it routes through the shared cache
// when enabled and falls back to a direct solve otherwise.
func Exact(g *graphs.Graph, opts mis.Options) (mis.Solution, error) {
	return ExactCtx(context.Background(), g, opts)
}

// ExactCtx is Exact under a context (see Cache.ExactCtx for the
// cancellation contract).
func ExactCtx(ctx context.Context, g *graphs.Graph, opts mis.Options) (mis.Solution, error) {
	if !enabled.Load() {
		return mis.ExactCtx(ctx, g, opts)
	}
	return shared.ExactCtx(ctx, g, opts)
}
