package cache

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"congestlb/internal/graphs"
	"congestlb/internal/mis"
)

// pathGraph builds a weighted path 0-1-...-(n-1) with weight w(v)=v+1.
func pathGraph(n int) *graphs.Graph {
	g := graphs.NewWithN(n)
	for v := 0; v < n; v++ {
		g.AddNodeID(int64(v + 1))
	}
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(v, v+1)
	}
	return g
}

func randomGraph(n int, p float64, maxW int64, rng *rand.Rand) *graphs.Graph {
	g := graphs.NewWithN(n)
	for v := 0; v < n; v++ {
		g.AddNodeID(1 + rng.Int63n(maxW))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

func TestHitMissAccounting(t *testing.T) {
	c := New(8)
	g := randomGraph(30, 0.3, 6, rand.New(rand.NewSource(1)))

	first, err := c.Exact(g, mis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Exact(g, mis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 1 || s.Entries != 1 {
		t.Fatalf("stats after two identical solves: %+v", s)
	}
	if s.StepsSolved != first.Steps || s.StepsSaved != second.Steps {
		t.Fatalf("step accounting: %+v (solve steps %d)", s, first.Steps)
	}
	if first.Weight != second.Weight || len(first.Set) != len(second.Set) {
		t.Fatalf("cached solution differs: %+v vs %+v", first, second)
	}
	direct, err := mis.Exact(g, mis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Weight != first.Weight {
		t.Fatalf("cache weight %d, direct %d", first.Weight, direct.Weight)
	}

	// A content-identical rebuild of the graph hits too.
	rebuilt := randomGraph(30, 0.3, 6, rand.New(rand.NewSource(1)))
	if _, err := c.Exact(rebuilt, mis.Options{}); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits != 2 {
		t.Fatalf("content-identical rebuild missed: %+v", s)
	}
}

func TestReturnedSetIsACopy(t *testing.T) {
	c := New(8)
	g := pathGraph(6)
	first, err := c.Exact(g, mis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range first.Set {
		first.Set[i] = -999
	}
	second, err := c.Exact(g, mis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mis.Verify(g, second.Set); err != nil {
		t.Fatalf("cached witness corrupted by caller mutation: %v", err)
	}
}

// TestKeyInsensitiveToInsertionOrder builds the same graph three ways —
// labelled nodes with edges in construction order, unlabelled nodes with
// edges reversed, and edges added redundantly — and requires one key.
func TestKeyInsensitiveToInsertionOrder(t *testing.T) {
	weights := []int64{5, 3, 8, 1, 9, 4}
	edges := [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {1, 5}}

	labelled := graphs.New(len(weights))
	for v, w := range weights {
		labelled.MustAddNode(string(rune('a'+v)), w)
	}
	for _, e := range edges {
		labelled.MustAddEdge(e[0], e[1])
	}

	reversed := graphs.NewWithN(len(weights))
	for _, w := range weights {
		reversed.AddNodeID(w)
	}
	for i := len(edges) - 1; i >= 0; i-- {
		reversed.MustAddEdge(edges[i][1], edges[i][0])
	}

	redundant := graphs.NewWithN(len(weights))
	for _, w := range weights {
		redundant.AddNodeID(w)
	}
	for _, e := range edges {
		redundant.MustAddEdge(e[0], e[1])
		redundant.MustAddEdge(e[1], e[0]) // duplicate inserts are no-ops
	}

	k1, ok1 := KeyOf(labelled, mis.Options{})
	k2, ok2 := KeyOf(reversed, mis.Options{})
	k3, ok3 := KeyOf(redundant, mis.Options{})
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("cacheable graphs reported uncacheable")
	}
	if k1 != k2 || k1 != k3 {
		t.Fatal("same graph content hashed to different keys")
	}
}

func TestKeySeparatesDifferentContent(t *testing.T) {
	base := pathGraph(6)
	baseKey, _ := KeyOf(base, mis.Options{})

	extraEdge := pathGraph(6)
	extraEdge.MustAddEdge(0, 5)
	if k, _ := KeyOf(extraEdge, mis.Options{}); k == baseKey {
		t.Fatal("extra edge did not change the key")
	}

	otherWeight := pathGraph(6)
	otherWeight.SetWeight(3, 1000)
	if k, _ := KeyOf(otherWeight, mis.Options{}); k == baseKey {
		t.Fatal("weight change did not change the key")
	}

	if k, _ := KeyOf(base, mis.Options{MaxSteps: 7}); k == baseKey {
		t.Fatal("step budget did not change the key")
	}

	cover := [][]graphs.NodeID{{0, 1}, {2, 3}, {4, 5}}
	withCover, ok := KeyOf(base, mis.Options{CliqueCover: cover})
	if !ok {
		t.Fatal("valid cover reported uncacheable")
	}
	if withCover == baseKey {
		t.Fatal("cover did not change the key")
	}

	// The same partition with its parts listed in another order is the
	// same cover — the key must agree.
	permuted := [][]graphs.NodeID{{4, 5}, {0, 1}, {2, 3}}
	if k, _ := KeyOf(base, mis.Options{CliqueCover: permuted}); k != withCover {
		t.Fatal("part order changed the cover key")
	}

	// A genuinely different partition must not collide.
	other := [][]graphs.NodeID{{0}, {1, 2}, {3, 4}, {5}}
	if k, _ := KeyOf(base, mis.Options{CliqueCover: other}); k == withCover {
		t.Fatal("different partition hashed to the same key")
	}
}

func TestKeyRejectsMalformedCovers(t *testing.T) {
	g := pathGraph(4)
	for name, cover := range map[string][][]graphs.NodeID{
		"missing node": {{0, 1}, {2}},
		"repeated":     {{0, 1}, {1, 2}, {3}},
		"out of range": {{0, 1}, {2, 3}, {4}},
	} {
		if _, ok := KeyOf(g, mis.Options{CliqueCover: cover}); ok {
			t.Errorf("%s cover reported cacheable", name)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	rng := rand.New(rand.NewSource(7))
	g1 := randomGraph(12, 0.3, 4, rng)
	g2 := randomGraph(12, 0.3, 4, rng)
	g3 := randomGraph(12, 0.3, 4, rng)
	for _, g := range []*graphs.Graph{g1, g2, g3} {
		if _, err := c.Exact(g, mis.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("eviction stats: %+v", s)
	}
	// g1 was least recently used: it must have been the victim.
	if _, err := c.Exact(g1, mis.Options{}); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Misses != 4 || s.Hits != 0 {
		t.Fatalf("evicted entry served a hit: %+v", s)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New(8)
	g := randomGraph(40, 0.1, 5, rand.New(rand.NewSource(5)))
	for i := 0; i < 2; i++ {
		sol, err := c.Exact(g, mis.Options{MaxSteps: 3})
		if !errors.Is(err, mis.ErrBudgetExceeded) {
			t.Fatalf("call %d: error = %v, want ErrBudgetExceeded", i, err)
		}
		if len(sol.Set) == 0 || sol.Optimal {
			t.Fatalf("call %d: budget-capped incumbent lost: %+v", i, sol)
		}
	}
	s := c.Stats()
	if s.Misses != 2 || s.Entries != 0 {
		t.Fatalf("failed solves were cached: %+v", s)
	}
}

// TestConcurrentSingleFlight hammers one key from many goroutines and
// requires exactly one miss: the in-flight solve must absorb every
// concurrent caller.
func TestConcurrentSingleFlight(t *testing.T) {
	c := New(8)
	g := randomGraph(40, 0.3, 6, rand.New(rand.NewSource(11)))
	const callers = 16
	var wg sync.WaitGroup
	weights := make([]int64, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sol, err := c.Exact(g, mis.Options{})
			if err != nil {
				t.Error(err)
				return
			}
			weights[i] = sol.Weight
		}(i)
	}
	wg.Wait()
	s := c.Stats()
	if s.Misses != 1 || s.Hits != callers-1 {
		t.Fatalf("single-flight violated: %+v", s)
	}
	for i := 1; i < callers; i++ {
		if weights[i] != weights[0] {
			t.Fatalf("caller %d got weight %d, caller 0 got %d", i, weights[i], weights[0])
		}
	}
}

func TestSharedToggle(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	Shared().Reset()
	g := pathGraph(8)
	if _, err := Exact(g, mis.Options{}); err != nil {
		t.Fatal(err)
	}
	if s := Shared().Stats(); s.Misses != 0 && s.Hits != 0 {
		t.Fatalf("disabled cache still recorded traffic: %+v", s)
	}
	SetEnabled(true)
	if _, err := Exact(g, mis.Options{}); err != nil {
		t.Fatal(err)
	}
	if s := Shared().Stats(); s.Misses != 1 {
		t.Fatalf("enabled cache did not record the solve: %+v", s)
	}
	Shared().Reset()
}

// TestWeightOnlyServedByCanonicalEntry pins the one-directional fallback:
// a weight-only lookup is served by a completed canonical entry for the
// same graph (no duplicate branch-and-bound), while a canonical lookup is
// never served by a weight-only entry (its witness is schedule-dependent).
func TestWeightOnlyServedByCanonicalEntry(t *testing.T) {
	c := New(16)
	g := randomGraph(30, 0.3, 6, rand.New(rand.NewSource(21)))

	canonical, err := c.Exact(g, mis.Options{}) // miss: solves
	if err != nil {
		t.Fatal(err)
	}
	wo, err := c.Exact(g, mis.Options{WeightOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if wo.Weight != canonical.Weight {
		t.Fatalf("weight-only fallback returned %d, canonical %d", wo.Weight, canonical.Weight)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("canonical entry did not serve the weight-only lookup: %+v", st)
	}

	// The reverse direction must stay a miss: canonical callers need the
	// canonical witness, which a weight-only entry cannot guarantee.
	c2 := New(16)
	if _, err := c2.Exact(g, mis.Options{WeightOnly: true}); err != nil { // miss
		t.Fatal(err)
	}
	if _, err := c2.Exact(g, mis.Options{}); err != nil { // must also miss
		t.Fatal(err)
	}
	if st := c2.Stats(); st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("weight-only entry leaked to a canonical caller: %+v", st)
	}
}
