package cache

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"congestlb/internal/graphs"
	"congestlb/internal/mis"
)

// ctxTestGraph builds a random weighted graph. n=130/p=0.18 is hard
// enough (~1M sequential search nodes) that a solve is reliably in
// flight when a concurrent caller joins it; the entry-check tests use a
// smaller instance so their clean re-solves stay cheap under -race.
func ctxTestGraph(n int, p float64) *graphs.Graph {
	rng := rand.New(rand.NewSource(33))
	g := graphs.New(n)
	for i := 0; i < n; i++ {
		g.MustAddNode(fmt.Sprintf("n%d", i), 1+rng.Int63n(9))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

// TestCacheExactCtxCancelledNotCached pins the error-caching contract
// under cancellation: a cancelled solve returns the incumbent with
// ctx.Err() and leaves no poisoned entry — the next caller runs (and
// caches) a clean solve.
func TestCacheExactCtxCancelledNotCached(t *testing.T) {
	c := New(8)
	g := ctxTestGraph(70, 0.2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.ExactCtx(ctx, g, mis.Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	st := c.Stats()
	if st.Entries != 0 {
		t.Fatalf("cancelled solve left %d cache entries", st.Entries)
	}
	sol, err := c.ExactCtx(context.Background(), g, mis.Options{})
	if err != nil {
		t.Fatalf("retry after cancellation: %v", err)
	}
	if !sol.Optimal {
		t.Fatal("retry did not produce an optimal solve")
	}
	if st := c.Stats(); st.Entries != 1 || st.Misses != 2 {
		t.Fatalf("retry accounting off: %+v", st)
	}
}

// TestCacheWaiterHonoursOwnContext: a caller blocked on another
// goroutine's in-flight solve must unblock when its own context dies,
// even though the owner keeps solving.
func TestCacheWaiterHonoursOwnContext(t *testing.T) {
	c := New(8)
	g := ctxTestGraph(130, 0.18)

	ownerStarted := make(chan struct{})
	ownerDone := make(chan error, 1)
	ownerCtx, ownerCancel := context.WithCancel(context.Background())
	defer ownerCancel()
	go func() {
		close(ownerStarted)
		_, err := c.ExactCtx(ownerCtx, g, mis.Options{})
		ownerDone <- err
	}()
	<-ownerStarted

	// Join the in-flight solve with a context that dies immediately. The
	// waiter must return promptly with its own ctx error; the test would
	// hang (and time out) if it blocked on the owner's full solve.
	waiterCtx, waiterCancel := context.WithCancel(context.Background())
	for {
		// Spin until the owner's entry is actually registered (its miss is
		// visible in the stats), so the waiter provably joins in flight.
		if st := c.Stats(); st.Misses > 0 {
			break
		}
		runtime.Gosched() // don't starve the owner's registration on 1 core
	}
	waiterCancel()
	if _, err := c.ExactCtx(waiterCtx, g, mis.Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want its own context.Canceled", err)
	}
	// The owner is unaffected by the waiter's cancellation.
	ownerCancel()
	if err := <-ownerDone; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("owner err = %v", err)
	}
}

// TestCompletedEntryServedUnderDeadContext: once a solve is cached, a
// lookup under an already-cancelled context returns the cached result
// deterministically — never a coin-flip between the result and ctx.Err()
// (the select race this pins down had both channels ready).
func TestCompletedEntryServedUnderDeadContext(t *testing.T) {
	c := New(8)
	g := ctxTestGraph(70, 0.2)
	want, err := c.ExactCtx(context.Background(), g, mis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 50; i++ {
		sol, err := c.ExactCtx(ctx, g, mis.Options{})
		if err != nil {
			t.Fatalf("iteration %d: cached hit returned %v under a dead context", i, err)
		}
		if sol.Weight != want.Weight || !sol.Optimal {
			t.Fatalf("iteration %d: cached hit degraded: %+v", i, sol)
		}
	}
	if st := c.Stats(); st.Hits != 50 {
		t.Fatalf("hits = %d, want 50", st.Hits)
	}
}

// TestWaiterSurvivesOwnerCancellation: when the single-flight owner's
// context dies mid-solve, a waiter whose own context is healthy must not
// inherit the spurious cancellation — it retries fresh and returns a real
// solution.
func TestWaiterSurvivesOwnerCancellation(t *testing.T) {
	c := New(8)
	g := ctxTestGraph(130, 0.18)

	ownerCtx, ownerCancel := context.WithCancel(context.Background())
	ownerDone := make(chan error, 1)
	go func() {
		_, err := c.ExactCtx(ownerCtx, g, mis.Options{})
		ownerDone <- err
	}()
	for {
		if st := c.Stats(); st.Misses > 0 {
			break
		}
		runtime.Gosched()
	}
	waiterDone := make(chan struct{})
	var waiterSol mis.Solution
	var waiterErr error
	go func() {
		defer close(waiterDone)
		waiterSol, waiterErr = c.ExactCtx(context.Background(), g, mis.Options{})
	}()
	ownerCancel()
	if err := <-ownerDone; !errors.Is(err, context.Canceled) {
		// The owner may legitimately have finished before the cancel; the
		// waiter then sees a completed entry and the retry path is moot.
		t.Skipf("owner finished before cancellation: %v", err)
	}
	<-waiterDone
	if waiterErr != nil {
		t.Fatalf("healthy waiter inherited the owner's cancellation: %v", waiterErr)
	}
	if !waiterSol.Optimal {
		t.Fatal("waiter's retried solve not optimal")
	}
}

// TestSessionWithContext pins the session binding: a session bound to a
// dead context cancels its solves (attribution intact), and an explicit
// ExactCtx overrides the bound context per call.
func TestSessionWithContext(t *testing.T) {
	c := New(8)
	g := ctxTestGraph(70, 0.2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	sess := NewSession(c, 0).WithContext(ctx)
	if _, err := sess.Exact(g, mis.Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("bound-context solve err = %v, want context.Canceled", err)
	}
	if st := sess.Stats(); st.Misses != 1 {
		t.Fatalf("cancelled solve not attributed: %+v", st)
	}
	// Per-call override: Background beats the dead bound context.
	sol, err := sess.ExactCtx(context.Background(), g, mis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Optimal {
		t.Fatal("override solve not optimal")
	}
	// nil session stays valid with contexts too.
	var nilSess *Session
	if _, err := nilSess.ExactCtx(ctx, g, mis.Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("nil-session ctx solve err = %v", err)
	}
}
