// Persistent on-disk tier of the solve cache.
//
// Entries are content-addressed by the same SHA-256 canonical hash as the
// in-memory tier, one JSON file per solve named <hex(key)>.json. Files are
// written atomically (temp file + rename) so a crashed or concurrent
// writer can never leave a half-entry that parses; on load every entry is
// re-validated against the live graph (schema, key, independence, weight),
// so truncated or garbage files — however they got there — are discarded
// and fall back to a fresh solve. The tier is size-bounded: when the byte
// budget is exceeded, least-recently-used entries (by load/store recency,
// seeded from file mtime at attach time) are deleted.
//
// The point of the tier is cross-process reuse: a second experiment-suite
// run, a CI re-run or a benchmark iteration with the same -cache-dir skips
// branch-and-bound entirely for every graph the previous process already
// solved.
package cache

import (
	"container/list"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"congestlb/internal/graphs"
	"congestlb/internal/mis"
)

// diskSchema identifies the entry format; bump on incompatible change (old
// entries then fail validation and are re-solved, never mis-read).
const diskSchema = "congestlb/solve-cache/v1"

// DefaultDiskBytes is the disk tier's default size bound. Entries are a
// few hundred bytes (a node-ID list plus counters), so this comfortably
// holds every distinct solve the experiment suite can produce.
const DefaultDiskBytes int64 = 64 << 20

// diskEntry is the JSON schema of one persisted solve.
type diskEntry struct {
	Schema string `json:"schema"`
	// Key is the hex canonical hash, duplicated inside the file so a
	// renamed or copied entry cannot impersonate another solve.
	Key    string          `json:"key"`
	Weight int64           `json:"weight"`
	Steps  int64           `json:"steps"`
	Set    []graphs.NodeID `json:"set"`
}

// diskTier is the bookkeeping over one directory. The lock guards only
// the recency index — file I/O, JSON codecs and witness verification all
// run outside it, so concurrent jobs missing on different keys do not
// serialise behind each other's disk reads (atomic rename already makes
// the files themselves safe) — and it is never taken while the owning
// Cache's lock is held.
type diskTier struct {
	dir      string
	maxBytes int64

	mu    sync.Mutex
	index map[Key]*list.Element
	lru   *list.List // front = most recently used; values are *diskFile
	bytes int64
}

type diskFile struct {
	key  Key
	size int64
}

// newDiskTier attaches a directory, creating it if needed and indexing any
// entries a previous process left behind (recency seeded from mtime).
func newDiskTier(dir string, maxBytes int64) (*diskTier, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultDiskBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: disk tier: %w", err)
	}
	d := &diskTier{
		dir:      dir,
		maxBytes: maxBytes,
		index:    make(map[Key]*list.Element),
		lru:      list.New(),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cache: disk tier: %w", err)
	}
	type seen struct {
		key   Key
		size  int64
		mtime time.Time
	}
	var found []seen
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		raw, err := hex.DecodeString(strings.TrimSuffix(name, ".json"))
		if err != nil || len(raw) != len(Key{}) {
			continue // foreign file; leave it alone
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		var k Key
		copy(k[:], raw)
		found = append(found, seen{key: k, size: info.Size(), mtime: info.ModTime()})
	}
	// Oldest first so the LRU ends up newest-at-front.
	sort.Slice(found, func(i, j int) bool { return found[i].mtime.Before(found[j].mtime) })
	for _, f := range found {
		d.index[f.key] = d.lru.PushFront(&diskFile{key: f.key, size: f.size})
		d.bytes += f.size
	}
	return d, nil
}

func (d *diskTier) path(key Key) string {
	return filepath.Join(d.dir, hex.EncodeToString(key[:])+".json")
}

// load returns the persisted solution for key if a valid entry exists.
// Anything that fails validation — wrong schema, key mismatch, a set that
// is not independent in g or whose weight disagrees — is deleted and
// reported as a miss, so corruption degrades to a re-solve, never to a
// wrong answer.
func (d *diskTier) load(key Key, g *graphs.Graph) (mis.Solution, bool) {
	path := d.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return mis.Solution{}, false
	}
	var e diskEntry
	if err := json.Unmarshal(data, &e); err != nil {
		d.discard(key, path)
		return mis.Solution{}, false
	}
	if e.Schema != diskSchema || e.Key != hex.EncodeToString(key[:]) {
		d.discard(key, path)
		return mis.Solution{}, false
	}
	weight, err := mis.Verify(g, e.Set)
	if err != nil || weight != e.Weight {
		d.discard(key, path)
		return mis.Solution{}, false
	}
	d.mu.Lock()
	d.touch(key, int64(len(data)))
	d.mu.Unlock()
	// Refresh mtime so a future process's recency seed sees the use.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	set := append([]graphs.NodeID(nil), e.Set...)
	sort.Ints(set)
	return mis.Solution{Set: set, Weight: e.Weight, Optimal: true, Steps: e.Steps}, true
}

// store persists an optimal solution atomically and returns how many old
// entries the size bound evicted.
func (d *diskTier) store(key Key, sol mis.Solution) (evicted int, err error) {
	e := diskEntry{
		Schema: diskSchema,
		Key:    hex.EncodeToString(key[:]),
		Weight: sol.Weight,
		Steps:  sol.Steps,
		Set:    sol.Set,
	}
	data, err := json.Marshal(e)
	if err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(d.dir, "tmp-*")
	if err != nil {
		return 0, err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := os.Rename(tmp.Name(), d.path(key)); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	d.mu.Lock()
	d.touch(key, int64(len(data)))
	victims := d.evictLocked(key)
	d.mu.Unlock()
	for _, path := range victims {
		_ = os.Remove(path)
	}
	return len(victims), nil
}

// touch records (key, size) as most recently used; callers hold d.mu.
func (d *diskTier) touch(key Key, size int64) {
	if el, ok := d.index[key]; ok {
		f := el.Value.(*diskFile)
		d.bytes += size - f.size
		f.size = size
		d.lru.MoveToFront(el)
		return
	}
	d.index[key] = d.lru.PushFront(&diskFile{key: key, size: size})
	d.bytes += size
}

// discard drops a corrupt entry from disk and the index.
func (d *diskTier) discard(key Key, path string) {
	_ = os.Remove(path)
	d.mu.Lock()
	defer d.mu.Unlock()
	if el, ok := d.index[key]; ok {
		d.bytes -= el.Value.(*diskFile).size
		d.lru.Remove(el)
		delete(d.index, key)
	}
}

// evictLocked unindexes least-recently-used entries until the byte budget
// holds, never evicting the entry just touched (keep), and returns the
// victims' paths for the caller to delete outside the lock. Callers hold
// d.mu.
func (d *diskTier) evictLocked(keep Key) []string {
	var victims []string
	for d.bytes > d.maxBytes && d.lru.Len() > 1 {
		el := d.lru.Back()
		f := el.Value.(*diskFile)
		if f.key == keep {
			// keep is the only remaining candidate at the back; stop.
			break
		}
		victims = append(victims, d.path(f.key))
		d.bytes -= f.size
		d.lru.Remove(el)
		delete(d.index, f.key)
	}
	return victims
}
