// Persistent on-disk tier of the solve cache.
//
// Entries are content-addressed by the same SHA-256 canonical hash as the
// in-memory tier, one JSON file per solve named <hex(key)>.json. Files are
// written atomically (temp file + fsync + rename + parent-directory fsync)
// so a crashed or concurrent writer can never leave a half-entry that
// parses, and a completed store survives power loss; on load every entry
// is re-validated against the live graph (schema, key, independence,
// weight), so truncated or garbage files — however they got there — fall
// back to a fresh solve. Invalid entries are not deleted but moved into a
// `quarantine/` sidecar directory (suffixed with the rejection reason) so
// operators can inspect what corrupted them; transient read/write errors
// are retried with a short backoff before giving up. Both paths are
// counted (Stats.DiskQuarantined / Stats.DiskRetries and the matching
// obs counters). The tier is size-bounded: when the byte budget is
// exceeded, least-recently-used entries (by load/store recency, seeded
// from file mtime at attach time) are deleted. Orphaned tmp-* files a
// crashed writer left behind are swept on attach once they are old
// enough to be provably dead.
//
// The point of the tier is cross-process reuse: a second experiment-suite
// run, a CI re-run or a benchmark iteration with the same -cache-dir skips
// branch-and-bound entirely for every graph the previous process already
// solved.
package cache

import (
	"container/list"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"congestlb/internal/fault"
	"congestlb/internal/graphs"
	"congestlb/internal/mis"
)

const (
	// diskAttempts bounds how many times a transient read/write error is
	// tried in total; diskBackoff is the sleep before the first retry,
	// doubling per attempt. The budget is deliberately tiny — the tier is
	// an optimisation, so after ~1.5 ms of bad luck the caller re-solves.
	diskAttempts = 3
	diskBackoff  = 500 * time.Microsecond

	// quarantineDirName is the sidecar directory (inside the tier
	// directory) that invalid entries are moved to instead of deleted.
	quarantineDirName = "quarantine"

	// tmpOrphanAge is how old a tmp-* file must be before the attach-time
	// sweep deletes it: anything younger may belong to a live writer in
	// another process racing the attach.
	tmpOrphanAge = time.Minute
)

// diskIO accounts one load/store call's fault traffic: how many attempts
// were retried after transient errors and how many entries were moved to
// quarantine. The cache layer folds it into Stats and the obs registry.
type diskIO struct {
	retries     uint64
	quarantined uint64
}

// diskSchema identifies the entry format; bump on incompatible change (old
// entries then fail validation and are re-solved, never mis-read).
const diskSchema = "congestlb/solve-cache/v1"

// DefaultDiskBytes is the disk tier's default size bound. Entries are a
// few hundred bytes (a node-ID list plus counters), so this comfortably
// holds every distinct solve the experiment suite can produce.
const DefaultDiskBytes int64 = 64 << 20

// diskEntry is the JSON schema of one persisted solve.
type diskEntry struct {
	Schema string `json:"schema"`
	// Key is the hex canonical hash, duplicated inside the file so a
	// renamed or copied entry cannot impersonate another solve.
	Key    string          `json:"key"`
	Weight int64           `json:"weight"`
	Steps  int64           `json:"steps"`
	Set    []graphs.NodeID `json:"set"`
}

// diskTier is the bookkeeping over one directory. The lock guards only
// the recency index — file I/O, JSON codecs and witness verification all
// run outside it, so concurrent jobs missing on different keys do not
// serialise behind each other's disk reads (atomic rename already makes
// the files themselves safe) — and it is never taken while the owning
// Cache's lock is held.
type diskTier struct {
	dir      string
	maxBytes int64

	mu    sync.Mutex
	index map[Key]*list.Element
	lru   *list.List // front = most recently used; values are *diskFile
	bytes int64
}

type diskFile struct {
	key  Key
	size int64
}

// newDiskTier attaches a directory, creating it if needed and indexing any
// entries a previous process left behind (recency seeded from mtime).
func newDiskTier(dir string, maxBytes int64) (*diskTier, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultDiskBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: disk tier: %w", err)
	}
	d := &diskTier{
		dir:      dir,
		maxBytes: maxBytes,
		index:    make(map[Key]*list.Element),
		lru:      list.New(),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cache: disk tier: %w", err)
	}
	type seen struct {
		key   Key
		size  int64
		mtime time.Time
	}
	var found []seen
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasPrefix(name, "tmp-") {
			// A crashed writer's orphan. Swept only once it is old enough
			// that no live writer (this process or another sharing the
			// directory) can still be about to rename it.
			if info, err := e.Info(); err == nil && time.Since(info.ModTime()) >= tmpOrphanAge {
				_ = os.Remove(filepath.Join(dir, name))
			}
			continue
		}
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		raw, err := hex.DecodeString(strings.TrimSuffix(name, ".json"))
		if err != nil || len(raw) != len(Key{}) {
			continue // foreign file; leave it alone
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		var k Key
		copy(k[:], raw)
		found = append(found, seen{key: k, size: info.Size(), mtime: info.ModTime()})
	}
	// Oldest first so the LRU ends up newest-at-front.
	sort.Slice(found, func(i, j int) bool { return found[i].mtime.Before(found[j].mtime) })
	for _, f := range found {
		d.index[f.key] = d.lru.PushFront(&diskFile{key: f.key, size: f.size})
		d.bytes += f.size
	}
	return d, nil
}

func (d *diskTier) path(key Key) string {
	return filepath.Join(d.dir, hex.EncodeToString(key[:])+".json")
}

// load returns the persisted solution for key if a valid entry exists.
// Anything that fails validation — wrong schema, key mismatch, a set that
// is not independent in g or whose weight disagrees — is quarantined and
// reported as a miss, so corruption degrades to a re-solve, never to a
// wrong answer. Transient read errors are retried (diskAttempts total)
// before degrading to a miss.
func (d *diskTier) load(key Key, g *graphs.Graph) (mis.Solution, bool, diskIO) {
	var io diskIO
	path := d.path(key)
	hexKey := hex.EncodeToString(key[:])
	fault.Stall(fault.DiskSlow, hexKey)
	var data []byte
	for attempt := 0; ; attempt++ {
		err := fault.Err(fault.DiskRead, hexKey, uint64(attempt))
		if err == nil {
			data, err = os.ReadFile(path)
		}
		if err == nil {
			break
		}
		if os.IsNotExist(err) {
			return mis.Solution{}, false, io // a plain miss, not a fault
		}
		if attempt+1 >= diskAttempts {
			return mis.Solution{}, false, io
		}
		io.retries++
		time.Sleep(diskBackoff << attempt)
	}
	data = fault.Corrupt(hexKey, data)
	var e diskEntry
	if err := json.Unmarshal(data, &e); err != nil {
		d.quarantine(key, path, "parse", &io)
		return mis.Solution{}, false, io
	}
	if e.Schema != diskSchema {
		d.quarantine(key, path, "schema", &io)
		return mis.Solution{}, false, io
	}
	if e.Key != hexKey {
		d.quarantine(key, path, "impostor", &io)
		return mis.Solution{}, false, io
	}
	weight, err := mis.Verify(g, e.Set)
	if err != nil || weight != e.Weight {
		d.quarantine(key, path, "witness", &io)
		return mis.Solution{}, false, io
	}
	d.mu.Lock()
	d.touch(key, int64(len(data)))
	d.mu.Unlock()
	// Refresh mtime so a future process's recency seed sees the use.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	set := append([]graphs.NodeID(nil), e.Set...)
	sort.Ints(set)
	return mis.Solution{Set: set, Weight: e.Weight, Optimal: true, Steps: e.Steps}, true, io
}

// store persists an optimal solution atomically and crash-durably (temp
// file + fsync + rename + parent-directory fsync) and returns how many
// old entries the size bound evicted. Transient write errors are retried
// (diskAttempts total) before the store is abandoned — the cache keeps
// working either way, the entry just is not persisted.
func (d *diskTier) store(key Key, sol mis.Solution) (evicted int, io diskIO, err error) {
	hexKey := hex.EncodeToString(key[:])
	e := diskEntry{
		Schema: diskSchema,
		Key:    hexKey,
		Weight: sol.Weight,
		Steps:  sol.Steps,
		Set:    sol.Set,
	}
	data, err := json.Marshal(e)
	if err != nil {
		return 0, io, err
	}
	fault.Stall(fault.DiskSlow, hexKey)
	for attempt := 0; ; attempt++ {
		err = fault.Err(fault.DiskWrite, hexKey, uint64(attempt))
		if err == nil {
			err = d.writeEntry(d.path(key), data)
		}
		if err == nil {
			break
		}
		if attempt+1 >= diskAttempts {
			return 0, io, err
		}
		io.retries++
		time.Sleep(diskBackoff << attempt)
	}
	d.mu.Lock()
	d.touch(key, int64(len(data)))
	victims := d.evictLocked(key)
	d.mu.Unlock()
	for _, path := range victims {
		_ = os.Remove(path)
	}
	return len(victims), io, nil
}

// writeEntry is the durable atomic write: data lands in a tmp file that
// is fsynced before the rename, and the parent directory is fsynced after
// it, so once store returns the entry survives a crash or power loss (on
// platforms whose directory fsync is a no-op this degrades to the old
// atomic-but-not-durable behaviour).
func (d *diskTier) writeEntry(path string, data []byte) error {
	tmp, err := os.CreateTemp(d.dir, "tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	fsyncDir(d.dir)
	return nil
}

// fsyncDir makes a completed rename durable by syncing the directory.
// Errors are deliberately ignored: not every filesystem supports syncing
// directories, and the write itself already succeeded atomically.
func fsyncDir(dir string) {
	f, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = f.Sync()
	f.Close()
}

// touch records (key, size) as most recently used; callers hold d.mu.
func (d *diskTier) touch(key Key, size int64) {
	if el, ok := d.index[key]; ok {
		f := el.Value.(*diskFile)
		d.bytes += size - f.size
		f.size = size
		d.lru.MoveToFront(el)
		return
	}
	d.index[key] = d.lru.PushFront(&diskFile{key: key, size: size})
	d.bytes += size
}

// quarantine moves an invalid entry into the quarantine sidecar directory
// — named <entry>.<reason> so operators can see why it was rejected — and
// drops it from the index. Entries are preserved, not deleted: a corrupt
// file is evidence of a bug or bad disk that deleting would destroy. If
// the move itself fails the file is removed (the one thing that must not
// happen is re-serving it).
func (d *diskTier) quarantine(key Key, path, reason string, io *diskIO) {
	io.quarantined++
	qdir := filepath.Join(d.dir, quarantineDirName)
	moved := false
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		dst := filepath.Join(qdir, filepath.Base(path)+"."+reason)
		if err := os.Rename(path, dst); err == nil || os.IsNotExist(err) {
			moved = true
		}
	}
	if !moved {
		_ = os.Remove(path)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if el, ok := d.index[key]; ok {
		d.bytes -= el.Value.(*diskFile).size
		d.lru.Remove(el)
		delete(d.index, key)
	}
}

// evictLocked unindexes least-recently-used entries until the byte budget
// holds, never evicting the entry just touched (keep), and returns the
// victims' paths for the caller to delete outside the lock. Callers hold
// d.mu.
func (d *diskTier) evictLocked(keep Key) []string {
	var victims []string
	for d.bytes > d.maxBytes && d.lru.Len() > 1 {
		el := d.lru.Back()
		f := el.Value.(*diskFile)
		if f.key == keep {
			// keep is the only remaining candidate at the back; stop.
			break
		}
		victims = append(victims, d.path(f.key))
		d.bytes -= f.size
		d.lru.Remove(el)
		delete(d.index, f.key)
	}
	return victims
}
