package cache

import (
	"encoding/hex"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"congestlb/internal/graphs"
	"congestlb/internal/mis"
)

// buildGraph is a seeded random graph for disk-tier tests.
func buildGraph(t *testing.T, n int, p float64, seed int64) *graphs.Graph {
	t.Helper()
	return randomGraph(n, p, 6, rand.New(rand.NewSource(seed)))
}

// TestDiskRoundTrip is the cross-process story in miniature: a cache with a
// disk tier solves once and persists; a brand-new cache over the same
// directory (a "second process") serves the solve from disk without any
// branch-and-bound.
func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := buildGraph(t, 12, 0.3, 7)

	first := New(8)
	if err := first.SetDir(dir, 0); err != nil {
		t.Fatal(err)
	}
	want, err := first.Exact(g, mis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := first.Stats()
	if st.DiskMisses != 1 || st.DiskWrites != 1 || st.DiskHits != 0 {
		t.Fatalf("cold run disk stats: %+v", st)
	}

	second := New(8)
	if err := second.SetDir(dir, 0); err != nil {
		t.Fatal(err)
	}
	got, err := second.Exact(g, mis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Weight != want.Weight || !reflect.DeepEqual(got.Set, want.Set) {
		t.Fatalf("disk-served solution %+v differs from solved %+v", got, want)
	}
	st = second.Stats()
	if st.DiskHits != 1 || st.DiskMisses != 0 {
		t.Fatalf("warm run disk stats: %+v", st)
	}
	if st.StepsSolved != 0 {
		t.Fatalf("warm run ran branch-and-bound: %+v", st)
	}
	if st.StepsSaved != want.Steps {
		t.Fatalf("warm run StepsSaved = %d, want the persisted %d", st.StepsSaved, want.Steps)
	}
}

// diskEntryPath returns the single entry file a one-solve cache wrote.
func diskEntryPath(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") {
			return filepath.Join(dir, e.Name())
		}
	}
	t.Fatal("no entry file written")
	return ""
}

// TestDiskCorruptionFallsBackToSolve truncates and garbages the persisted
// entry: both must be discarded and re-solved, never trusted.
func TestDiskCorruptionFallsBackToSolve(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt func(path string) error
	}{
		{name: "truncated", corrupt: func(path string) error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			return os.WriteFile(path, data[:len(data)/2], 0o644)
		}},
		{name: "garbage", corrupt: func(path string) error {
			return os.WriteFile(path, []byte("{\"schema\":\"congestlb/solve-cache/v1\",\"weight\":999999}"), 0o644)
		}},
		{name: "wrong set", corrupt: func(path string) error {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			// Claim an absurd weight for the recorded set: Verify's weight
			// cross-check must reject it.
			return os.WriteFile(path, []byte(strings.Replace(string(data), "\"weight\":", "\"weight\":1", 1)), 0o644)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			g := buildGraph(t, 12, 0.3, 7)
			first := New(8)
			if err := first.SetDir(dir, 0); err != nil {
				t.Fatal(err)
			}
			want, err := first.Exact(g, mis.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := tc.corrupt(diskEntryPath(t, dir)); err != nil {
				t.Fatal(err)
			}

			second := New(8)
			if err := second.SetDir(dir, 0); err != nil {
				t.Fatal(err)
			}
			got, err := second.Exact(g, mis.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got.Weight != want.Weight {
				t.Fatalf("post-corruption solve weight %d, want %d", got.Weight, want.Weight)
			}
			st := second.Stats()
			if st.DiskHits != 0 {
				t.Fatalf("corrupt entry served as a hit: %+v", st)
			}
			if st.DiskMisses != 1 || st.StepsSolved == 0 {
				t.Fatalf("corrupt entry did not fall back to a fresh solve: %+v", st)
			}
		})
	}
}

// TestDiskSizeBoundEvicts caps the tier low enough that distinct solves
// push each other out, oldest first.
func TestDiskSizeBoundEvicts(t *testing.T) {
	dir := t.TempDir()
	c := New(16)
	// ~2 entries worth of budget: entries here are ≈150-300 bytes.
	if err := c.SetDir(dir, 600); err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		if _, err := c.Exact(buildGraph(t, 10+int(seed), 0.3, 100+seed), mis.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.DiskWrites != 5 {
		t.Fatalf("writes = %d, want 5 (%+v)", st.DiskWrites, st)
	}
	if st.DiskEvictions == 0 {
		t.Fatalf("size bound never evicted: %+v", st)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var left int
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") {
			left++
		}
	}
	if uint64(left) != 5-st.DiskEvictions {
		t.Fatalf("%d entry files on disk, stats claim %d evicted of 5", left, st.DiskEvictions)
	}
}

// TestDiskForeignFilesIgnored drops unrelated files into the directory:
// the tier must neither index nor delete them.
func TestDiskForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	foreign := filepath.Join(dir, "README.txt")
	if err := os.WriteFile(foreign, []byte("not a cache entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	notHex := filepath.Join(dir, "zz-not-hex.json")
	if err := os.WriteFile(notHex, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := New(8)
	if err := c.SetDir(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exact(buildGraph(t, 10, 0.4, 3), mis.Options{}); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{foreign, notHex} {
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("foreign file %s disturbed: %v", path, err)
		}
	}
}

// TestDiskKeyMismatchRejected renames a valid entry to another key's name:
// the embedded key must unmask it.
func TestDiskKeyMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	g := buildGraph(t, 12, 0.3, 7)
	c := New(8)
	if err := c.SetDir(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exact(g, mis.Options{}); err != nil {
		t.Fatal(err)
	}
	// Impersonate the key of the same graph under a different step budget.
	otherKey, ok := KeyOf(g, mis.Options{MaxSteps: 123})
	if !ok {
		t.Fatal("key not computable")
	}
	src := diskEntryPath(t, dir)
	dst := filepath.Join(dir, hex.EncodeToString(otherKey[:])+".json")
	if err := os.Rename(src, dst); err != nil {
		t.Fatal(err)
	}

	second := New(8)
	if err := second.SetDir(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := second.Exact(g, mis.Options{MaxSteps: 123}); err != nil {
		t.Fatal(err)
	}
	st := second.Stats()
	if st.DiskHits != 0 {
		t.Fatalf("renamed entry impersonated another solve: %+v", st)
	}
	if st.DiskMisses != 1 || st.DiskWrites != 1 {
		t.Fatalf("impersonator not discarded and re-solved: %+v", st)
	}
	// The fresh solve rewrote the slot; the entry there now declares the
	// right key.
	data, err := os.ReadFile(dst)
	if err != nil {
		t.Fatalf("re-solved entry missing: %v", err)
	}
	if !strings.Contains(string(data), hex.EncodeToString(otherKey[:])) {
		t.Fatalf("rewritten entry does not embed its own key:\n%s", data)
	}
}
