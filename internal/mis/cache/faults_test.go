package cache

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"congestlb/internal/fault"
	"congestlb/internal/mis"
)

// armFaults installs a fault-injection plan for one test and restores the
// previous injector afterwards. Fault tests must not run in parallel:
// the injector is process-global.
func armFaults(t *testing.T, spec string) {
	t.Helper()
	inj, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	prev := fault.Set(inj)
	t.Cleanup(func() { fault.Set(prev) })
}

// TestDiskReadRetryThenServe: transient read errors are retried with
// backoff, counted, and the entry is still served — a flaky disk costs
// retries, not solves. The *2 budget fails attempts 0 and 1; the third
// (and last) attempt succeeds.
func TestDiskReadRetryThenServe(t *testing.T) {
	dir := t.TempDir()
	g := buildGraph(t, 12, 0.3, 7)
	first := New(8)
	if err := first.SetDir(dir, 0); err != nil {
		t.Fatal(err)
	}
	want, err := first.Exact(g, mis.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Armed only now, so the cold run's own lookup doesn't consume the
	// read budget.
	armFaults(t, "42:disk-read*2")
	second := New(8)
	if err := second.SetDir(dir, 0); err != nil {
		t.Fatal(err)
	}
	got, err := second.Exact(g, mis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Weight != want.Weight {
		t.Fatalf("retried read served weight %d, want %d", got.Weight, want.Weight)
	}
	st := second.Stats()
	if st.DiskHits != 1 || st.StepsSolved != 0 {
		t.Fatalf("entry not served from disk after retries: %+v", st)
	}
	if st.DiskRetries != 2 {
		t.Fatalf("DiskRetries = %d, want 2 (the *2 budget)", st.DiskRetries)
	}
}

// TestDiskWriteRetryThenPersist: the same contract on the write path —
// injected write failures burn retries, the entry still lands, and a
// second cache over the directory serves it.
func TestDiskWriteRetryThenPersist(t *testing.T) {
	dir := t.TempDir()
	g := buildGraph(t, 12, 0.3, 7)
	armFaults(t, "42:disk-write*2")
	first := New(8)
	if err := first.SetDir(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := first.Exact(g, mis.Options{}); err != nil {
		t.Fatal(err)
	}
	st := first.Stats()
	if st.DiskWrites != 1 {
		t.Fatalf("entry not persisted after retries: %+v", st)
	}
	if st.DiskRetries != 2 {
		t.Fatalf("DiskRetries = %d, want 2 (the *2 budget)", st.DiskRetries)
	}

	second := New(8)
	if err := second.SetDir(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := second.Exact(g, mis.Options{}); err != nil {
		t.Fatal(err)
	}
	if st := second.Stats(); st.DiskHits != 1 {
		t.Fatalf("retried write produced no servable entry: %+v", st)
	}
}

// TestDiskCorruptEntryQuarantined: an entry whose bytes rot on disk (the
// disk-corrupt point flips bits at read time) is moved to the
// quarantine/ sidecar with a reason suffix — preserved for inspection,
// never re-served, never silently deleted — and the solve falls back to
// branch-and-bound.
func TestDiskCorruptEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	g := buildGraph(t, 12, 0.3, 7)
	first := New(8)
	if err := first.SetDir(dir, 0); err != nil {
		t.Fatal(err)
	}
	want, err := first.Exact(g, mis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	entry := diskEntryPath(t, dir)

	armFaults(t, "42:disk-corrupt*1")
	second := New(8)
	if err := second.SetDir(dir, 0); err != nil {
		t.Fatal(err)
	}
	got, err := second.Exact(g, mis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Weight != want.Weight {
		t.Fatalf("post-quarantine solve weight %d, want %d", got.Weight, want.Weight)
	}
	st := second.Stats()
	if st.DiskHits != 0 || st.DiskMisses != 1 || st.StepsSolved == 0 {
		t.Fatalf("corrupt entry not treated as a miss with fresh solve: %+v", st)
	}
	if st.DiskQuarantined != 1 {
		t.Fatalf("DiskQuarantined = %d, want 1", st.DiskQuarantined)
	}
	// The main path holds a freshly re-written entry (the fallback solve
	// stores its result); a third cache must serve it cleanly.
	third := New(8)
	if err := third.SetDir(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := third.Exact(g, mis.Options{}); err != nil {
		t.Fatal(err)
	}
	if st := third.Stats(); st.DiskHits != 1 {
		t.Fatalf("re-written entry not served: %+v", st)
	}
	qfiles, err := os.ReadDir(filepath.Join(dir, quarantineDirName))
	if err != nil {
		t.Fatal(err)
	}
	if len(qfiles) != 1 {
		t.Fatalf("quarantine holds %d file(s), want 1", len(qfiles))
	}
	name := qfiles[0].Name()
	if !strings.HasPrefix(name, filepath.Base(entry)+".") {
		t.Fatalf("quarantined file %q does not carry a reason suffix on %q", name, filepath.Base(entry))
	}
}

// TestDiskTmpOrphanSweep: attach-time hygiene. A tmp-* file stranded by a
// crashed writer is deleted once it is old enough; a fresh tmp-* file (a
// concurrent writer mid-rename) is left alone; the quarantine sidecar
// and real entries are untouched.
func TestDiskTmpOrphanSweep(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, "tmp-stranded")
	fresh := filepath.Join(dir, "tmp-inflight")
	for _, p := range []string{old, fresh} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	stale := time.Now().Add(-2 * tmpOrphanAge)
	if err := os.Chtimes(old, stale, stale); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, quarantineDirName), 0o755); err != nil {
		t.Fatal(err)
	}

	c := New(8)
	if err := c.SetDir(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(old); !os.IsNotExist(err) {
		t.Fatalf("stale tmp file survived the sweep: %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh tmp file swept: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDirName)); err != nil {
		t.Fatalf("quarantine sidecar swept: %v", err)
	}
}

// TestDiskFaultsDisabledNoRetries: with no injector the retry loop runs
// exactly once per I/O and books nothing — the disabled-path guard.
func TestDiskFaultsDisabledNoRetries(t *testing.T) {
	prev := fault.Set(nil)
	t.Cleanup(func() { fault.Set(prev) })
	dir := t.TempDir()
	g := buildGraph(t, 12, 0.3, 7)
	c := New(8)
	if err := c.SetDir(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exact(g, mis.Options{}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.DiskRetries != 0 || st.DiskQuarantined != 0 {
		t.Fatalf("clean run booked fault traffic: %+v", st)
	}
}
