package cache

import (
	"context"
	"sync"

	"congestlb/internal/graphs"
	"congestlb/internal/mis"
	"congestlb/internal/obs"
)

// Session is a per-caller view of a Cache: it forwards every solve to the
// underlying cache (the process-wide Shared one by default) while keeping
// its own exact event counters, and applies a default solver worker count
// to solves that do not pin one.
//
// Sessions exist for attribution. The runner's experiment jobs all meet in
// the one shared cache, so diffing the process-global counters around a job
// misattributes whatever concurrent jobs did in the window; handing each
// job its own Session makes the per-experiment cache/step numbers in the
// JSON envelope exact at any -jobs count. With single-flight dedup, the
// session that runs a solve books its steps under StepsSolved while every
// session served by someone else's solve books them under StepsSaved.
//
// A nil *Session is valid: it behaves exactly like the package-level Exact
// with no local accounting, so deep callers (the CONGEST node programs) can
// be handed "no session" without branching.
type Session struct {
	c       *Cache // nil = the Shared cache, resolved at call time
	workers int
	// ctx is the context bound by WithContext (nil = Background): every
	// Exact call through the session observes it. It exists because the
	// deep solve sites — the CONGEST node programs — receive a session, not
	// a context; binding the run's context to the session threads
	// cancellation through them without widening NodeProgram.
	ctx context.Context
	// progress is the default incumbent observer bound by WithProgress:
	// solves that do not pin their own Options.Progress get it. Like ctx
	// it is set while the session has a single owner and read-only after.
	progress obs.ProgressObserver

	mu    sync.Mutex
	stats Stats
}

// NewSession returns a session over c (nil = the Shared cache) whose solves
// default to the given solver worker count (0 = leave Options.Workers
// alone).
func NewSession(c *Cache, workers int) *Session {
	return &Session{c: c, workers: workers}
}

// WithContext binds ctx to the session and returns it: every subsequent
// Exact call observes the context (cancellation stops in-flight
// branch-and-bound on its batched cadence and returns the incumbent with
// ctx.Err()). Bind before handing the session out — the field is not
// synchronised, so it must be set while the session still has a single
// owner. A nil receiver is returned unchanged.
func (s *Session) WithContext(ctx context.Context) *Session {
	if s != nil {
		s.ctx = ctx
	}
	return s
}

// WithProgress binds a default incumbent observer to the session and
// returns it: every subsequent solve that leaves Options.Progress nil
// fires this observer on each improvement (see mis.Options.Progress —
// in particular, lookups served from cache or collapsed onto another
// caller's in-flight solve deliver no events). Like WithContext, bind
// before handing the session out. A nil receiver is returned unchanged.
func (s *Session) WithProgress(o obs.ProgressObserver) *Session {
	if s != nil {
		s.progress = o
	}
	return s
}

// context resolves the bound context (Background when none).
func (s *Session) context() context.Context {
	if s == nil || s.ctx == nil {
		return context.Background()
	}
	return s.ctx
}

// Workers reports the solver worker count this session stamps onto solves.
func (s *Session) Workers() int {
	if s == nil {
		return 0
	}
	return s.workers
}

// Stats returns a snapshot of the session's counters. Entries is always 0:
// occupancy belongs to the cache, not to a view of it.
func (s *Session) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// record applies a counter mutation; safe on a nil session (no-op).
func (s *Session) record(f func(*Stats)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

// Exact solves through the session: the underlying cache serves or runs the
// solve, the session books the traffic, and the session's bound context
// (WithContext) governs cancellation. On a nil session this is exactly the
// package-level Exact.
func (s *Session) Exact(g *graphs.Graph, opts mis.Options) (mis.Solution, error) {
	return s.ExactCtx(s.context(), g, opts)
}

// ExactCtx is Exact under an explicit context, overriding the session's
// bound one for this call.
func (s *Session) ExactCtx(ctx context.Context, g *graphs.Graph, opts mis.Options) (mis.Solution, error) {
	if s == nil {
		return ExactCtx(ctx, g, opts)
	}
	if opts.Workers == 0 {
		opts.Workers = s.workers
	}
	if opts.Progress == nil {
		opts.Progress = s.progress
	}
	c := s.c
	if c == nil {
		if !enabled.Load() {
			// Shared-cache fast path switched off (tests): solve directly
			// but keep the attribution exact.
			sol, err := mis.ExactCtx(ctx, g, opts)
			s.record(func(st *Stats) {
				st.Misses++
				if err == nil {
					st.StepsSolved += sol.Steps
				}
			})
			return sol, err
		}
		c = shared
	}
	return c.exact(ctx, g, opts, s)
}
