package cache

import (
	"math/rand"
	"sync"
	"testing"

	"congestlb/internal/graphs"
	"congestlb/internal/mis"
)

// TestSessionExactAttribution is the satellite property the runner relies
// on: concurrent sessions over one cache each see exactly their own
// traffic, and the per-session counters sum to the cache totals.
func TestSessionExactAttribution(t *testing.T) {
	c := New(32)
	const sessions = 4
	const solvesPer = 6
	// Each session gets its own family of graphs plus one graph shared by
	// everyone, so both distinct and contended keys are exercised.
	shared := randomGraph(16, 0.3, 5, rand.New(rand.NewSource(7)))
	graphsBySession := make([][]*graphs.Graph, sessions)
	for si := range graphsBySession {
		for j := 0; j < solvesPer; j++ {
			graphsBySession[si] = append(graphsBySession[si],
				randomGraph(12+si, 0.3, 5, rand.New(rand.NewSource(int64(100*si+j)))))
		}
	}

	sess := make([]*Session, sessions)
	var wg sync.WaitGroup
	for si := 0; si < sessions; si++ {
		sess[si] = NewSession(c, 0)
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			for _, g := range graphsBySession[si] {
				if _, err := sess[si].Exact(g, mis.Options{}); err != nil {
					t.Error(err)
					return
				}
			}
			if _, err := sess[si].Exact(shared, mis.Options{}); err != nil {
				t.Error(err)
			}
		}(si)
	}
	wg.Wait()

	var sum Stats
	for si := 0; si < sessions; si++ {
		st := sess[si].Stats()
		if st.Hits+st.Misses != solvesPer+1 {
			t.Fatalf("session %d saw %d lookups, did %d", si, st.Hits+st.Misses, solvesPer+1)
		}
		sum.Hits += st.Hits
		sum.Misses += st.Misses
		sum.StepsSolved += st.StepsSolved
		sum.StepsSaved += st.StepsSaved
	}
	total := c.Stats()
	if sum.Hits != total.Hits || sum.Misses != total.Misses {
		t.Fatalf("session sums %+v disagree with cache totals %+v", sum, total)
	}
	if sum.StepsSolved != total.StepsSolved || sum.StepsSaved != total.StepsSaved {
		t.Fatalf("step attribution leaked: sessions %+v, cache %+v", sum, total)
	}
}

// TestSessionStampsWorkers pins the Options.Workers threading: a session
// built with a worker count applies it to solves that left Workers at 0
// and never overrides an explicit choice.
func TestSessionStampsWorkers(t *testing.T) {
	// Workers does not enter the cache key, so the same graph solved under
	// different session worker defaults must be one miss + one hit.
	c := New(8)
	g := randomGraph(14, 0.3, 5, rand.New(rand.NewSource(3)))
	s2 := NewSession(c, 2)
	s8 := NewSession(c, 8)
	a, err := s2.Exact(g, mis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s8.Exact(g, mis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Weight != b.Weight {
		t.Fatalf("weights diverged across worker defaults: %d vs %d", a.Weight, b.Weight)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("Workers leaked into the cache key: %+v", st)
	}
	if s2.Workers() != 2 || s8.Workers() != 8 {
		t.Fatalf("Workers() = %d, %d", s2.Workers(), s8.Workers())
	}
}

// TestNilSessionDelegatesToShared keeps the nil-receiver contract deep
// callers (CONGEST programs without a session) depend on.
func TestNilSessionDelegatesToShared(t *testing.T) {
	Shared().Reset()
	defer Shared().Reset()
	g := randomGraph(10, 0.4, 4, rand.New(rand.NewSource(9)))
	var s *Session
	if _, err := s.Exact(g, mis.Options{}); err != nil {
		t.Fatal(err)
	}
	if st := Shared().Stats(); st.Misses != 1 {
		t.Fatalf("nil session bypassed the shared cache: %+v", st)
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Fatalf("nil session has stats: %+v", st)
	}
	if s.Workers() != 0 {
		t.Fatalf("nil session Workers() = %d", s.Workers())
	}
}

// TestSessionUncachedFallback keeps attribution exact even when the shared
// fast path is disabled (the configuration the cached-vs-uncached
// comparison tests run under).
func TestSessionUncachedFallback(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	g := randomGraph(12, 0.35, 5, rand.New(rand.NewSource(17)))
	s := NewSession(nil, 0)
	sol, err := s.Exact(g, mis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("uncached fallback stats: %+v", st)
	}
	if st.StepsSolved != sol.Steps {
		t.Fatalf("uncached fallback steps %d, want %d", st.StepsSolved, sol.Steps)
	}
}
