package cache

import (
	"container/list"
	"sync"

	"congestlb/internal/mis"
)

// DefaultSharedCapacity is the entry bound of a SharedTier built with a
// non-positive capacity. The tier holds completed solutions for the whole
// process (every tenant of a daemon), so it is bounded a notch wider than
// one private cache.
const DefaultSharedCapacity = 1024

// SharedTierStats is a snapshot of a SharedTier's counters.
type SharedTierStats struct {
	// Hits counts private-cache misses served by the tier — solves some
	// other cache (typically another tenant's) already paid for.
	Hits uint64 `json:"hits"`
	// Misses counts private-cache misses that found nothing in the tier
	// and went on to a disk lookup or a fresh branch-and-bound.
	Misses uint64 `json:"misses"`
	// Puts counts completed solutions published into the tier (repeat
	// publications of a key it already holds are counted but change
	// nothing).
	Puts uint64 `json:"puts"`
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64 `json:"evictions"`
	// Entries is the number of solutions currently held.
	Entries int `json:"entries"`
}

// sharedEntry is one completed solution in the tier. Unlike the private
// cache's entry there is no in-flight state: only finished, error-free
// solves are ever published.
type sharedEntry struct {
	key Key
	sol mis.Solution
}

// SharedTier is a content-addressed, LRU-bounded store of *completed*
// solve results, designed to sit underneath several private Caches (one
// per tenant of a daemon) as a read-through tier: a private-cache miss
// consults the tier before booking a miss, so an identical solve already
// paid for by any other cache is served with zero branch-and-bound steps
// and booked as a hit (Stats.SharedHits) by the consulting cache.
//
// The tier never deduplicates *in-flight* work across caches — two
// tenants racing the same cold key both solve it (the race costs one
// duplicate solve, never a wrong answer) and the second publication is a
// no-op. Single-flight dedup stays a private-cache property so one
// tenant's cancellation semantics can never leak into another's lookup.
//
// A SharedTier is safe for concurrent use by any number of caches. Lock
// order is always Cache.mu → SharedTier.mu; the tier never calls back
// into a cache.
type SharedTier struct {
	mu       sync.Mutex
	capacity int
	index    map[Key]*list.Element
	lru      *list.List // front = most recently used; values are *sharedEntry
	stats    SharedTierStats
}

// NewSharedTier returns an empty tier bounded to the given number of
// entries (DefaultSharedCapacity if capacity is not positive).
func NewSharedTier(capacity int) *SharedTier {
	if capacity <= 0 {
		capacity = DefaultSharedCapacity
	}
	return &SharedTier{
		capacity: capacity,
		index:    make(map[Key]*list.Element, capacity),
		lru:      list.New(),
	}
}

// get returns the tier's solution for key, booking a tier hit or miss.
// The returned Solution's Set is an independent copy.
func (t *SharedTier) get(key Key) (mis.Solution, bool) {
	if t == nil {
		return mis.Solution{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	el, found := t.index[key]
	if !found {
		t.stats.Misses++
		return mis.Solution{}, false
	}
	t.lru.MoveToFront(el)
	t.stats.Hits++
	return clone(el.Value.(*sharedEntry).sol), true
}

// put publishes a completed solution under key. The first publication
// wins; repeats refresh recency but keep the stored solution (solves are
// deterministic, so the results are identical anyway). The stored Set is
// an independent copy, so callers cannot corrupt the tier afterwards.
func (t *SharedTier) put(key Key, sol mis.Solution) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Puts++
	if el, found := t.index[key]; found {
		t.lru.MoveToFront(el)
		return
	}
	el := t.lru.PushFront(&sharedEntry{key: key, sol: clone(sol)})
	t.index[key] = el
	for t.lru.Len() > t.capacity {
		back := t.lru.Back()
		t.lru.Remove(back)
		delete(t.index, back.Value.(*sharedEntry).key)
		t.stats.Evictions++
	}
}

// Stats returns a snapshot of the tier's counters.
func (t *SharedTier) Stats() SharedTierStats {
	if t == nil {
		return SharedTierStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.stats
	s.Entries = t.lru.Len()
	return s
}

// Reset drops every entry and zeroes the counters.
func (t *SharedTier) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.index = make(map[Key]*list.Element, t.capacity)
	t.lru = list.New()
	t.stats = SharedTierStats{}
}

// SetSharedTier attaches (or with nil detaches) a cross-cache read-through
// tier. Subsequent in-memory misses consult the tier before booking a
// miss: a tier hit is booked as Hits+SharedHits with StepsSaved credit and
// fills the private cache, so the "exactly one branch-and-bound per
// distinct graph" property extends across every cache sharing the tier.
// Completed error-free solves (fresh or disk-served) are published back.
// Attaching is not retroactive for in-flight solves.
func (c *Cache) SetSharedTier(t *SharedTier) {
	c.mu.Lock()
	c.sharedTier = t
	c.mu.Unlock()
}

// SharedTier reports the attached cross-cache tier (nil when none).
func (c *Cache) SharedTier() *SharedTier {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sharedTier
}
