package cache

import (
	"math/rand"
	"sync"
	"testing"

	"congestlb/internal/mis"
	"congestlb/internal/obs"
)

func TestSharedTierCrossCacheDedup(t *testing.T) {
	tier := NewSharedTier(16)
	a, b := New(8), New(8)
	a.SetSharedTier(tier)
	b.SetSharedTier(tier)
	g := randomGraph(30, 0.3, 6, rand.New(rand.NewSource(7)))

	cold, err := a.Exact(g, mis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := b.Exact(g, mis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Weight != warm.Weight || !warm.Optimal {
		t.Fatalf("tier-served solve differs: %+v vs %+v", cold, warm)
	}

	sa, sb := a.Stats(), b.Stats()
	if sa.Misses != 1 || sa.SharedHits != 0 {
		t.Fatalf("cold cache stats: %+v", sa)
	}
	// The acceptance-criterion shape: exactly one miss *total* across both
	// caches, with the second solve booked as a shared hit, zero fresh
	// branch-and-bound steps on its behalf.
	if sb.Misses != 0 || sb.Hits != 1 || sb.SharedHits != 1 || sb.StepsSolved != 0 {
		t.Fatalf("warm cache stats: %+v", sb)
	}
	if sb.StepsSaved != cold.Steps {
		t.Fatalf("warm StepsSaved = %d, want %d", sb.StepsSaved, cold.Steps)
	}

	// The tier hit filled b's private cache: the next lookup is an
	// ordinary private hit, not another tier consultation.
	if _, err := b.Exact(g, mis.Options{}); err != nil {
		t.Fatal(err)
	}
	sb = b.Stats()
	if sb.Hits != 2 || sb.SharedHits != 1 {
		t.Fatalf("private fill stats: %+v", sb)
	}

	ts := tier.Stats()
	if ts.Hits != 1 || ts.Puts != 1 || ts.Entries != 1 {
		t.Fatalf("tier stats: %+v", ts)
	}
}

func TestSharedTierIsolationAcrossKeys(t *testing.T) {
	tier := NewSharedTier(16)
	a, b := New(8), New(8)
	a.SetSharedTier(tier)
	b.SetSharedTier(tier)
	rng := rand.New(rand.NewSource(11))
	ga := randomGraph(25, 0.3, 5, rng)
	gb := randomGraph(25, 0.3, 5, rng)

	if _, err := a.Exact(ga, mis.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Exact(gb, mis.Options{}); err != nil {
		t.Fatal(err)
	}
	// Distinct graphs share nothing: both caches miss, the tier records
	// two failed consultations and two publications.
	if sa, sb := a.Stats(), b.Stats(); sa.SharedHits != 0 || sb.SharedHits != 0 || sa.Misses != 1 || sb.Misses != 1 {
		t.Fatalf("distinct-key stats: %+v / %+v", sa, sb)
	}
	if ts := tier.Stats(); ts.Hits != 0 || ts.Misses != 2 || ts.Entries != 2 {
		t.Fatalf("tier stats: %+v", ts)
	}
}

func TestSharedTierWeightOnlyFallback(t *testing.T) {
	tier := NewSharedTier(16)
	a, b := New(8), New(8)
	a.SetSharedTier(tier)
	b.SetSharedTier(tier)
	g := pathGraph(12)

	canonical, err := a.Exact(g, mis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A weight-only lookup in a different cache is served by the tier's
	// canonical solution for the same graph.
	wo, err := b.Exact(g, mis.Options{WeightOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if wo.Weight != canonical.Weight {
		t.Fatalf("weight-only tier hit weight %d, want %d", wo.Weight, canonical.Weight)
	}
	if sb := b.Stats(); sb.SharedHits != 1 || sb.Misses != 0 {
		t.Fatalf("weight-only fallback stats: %+v", sb)
	}
}

func TestSharedTierEviction(t *testing.T) {
	tier := NewSharedTier(2)
	c := New(8)
	c.SetSharedTier(tier)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4; i++ {
		if _, err := c.Exact(randomGraph(15, 0.3, 4, rng), mis.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	ts := tier.Stats()
	if ts.Entries != 2 || ts.Evictions != 2 || ts.Puts != 4 {
		t.Fatalf("bounded tier stats: %+v", ts)
	}
}

func TestSharedTierConcurrentCaches(t *testing.T) {
	tier := NewSharedTier(64)
	g := randomGraph(28, 0.3, 5, rand.New(rand.NewSource(9)))
	const caches = 8
	var wg sync.WaitGroup
	weights := make([]int64, caches)
	for i := 0; i < caches; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := New(4)
			c.SetSharedTier(tier)
			sol, err := c.Exact(g, mis.Options{})
			if err != nil {
				t.Error(err)
				return
			}
			weights[i] = sol.Weight
		}(i)
	}
	wg.Wait()
	for i := 1; i < caches; i++ {
		if weights[i] != weights[0] {
			t.Fatalf("weight[%d] = %d, want %d", i, weights[i], weights[0])
		}
	}
	// Races may cost duplicate solves but never a wrong answer; the tier
	// ends with exactly one entry for the one distinct graph.
	if ts := tier.Stats(); ts.Entries != 1 {
		t.Fatalf("tier entries = %d, want 1 (%+v)", ts.Entries, ts)
	}
}

func TestSharedTierRegistryCounter(t *testing.T) {
	tier := NewSharedTier(16)
	a, b := New(8), New(8)
	a.SetSharedTier(tier)
	b.SetSharedTier(tier)
	reg := obs.NewRegistry()
	b.SetRegistry(reg)
	g := pathGraph(10)
	if _, err := a.Exact(g, mis.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Exact(g, mis.Options{}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counter(obs.MSolveCacheSharedHits) != 1 {
		t.Fatalf("shared-hits counter = %d, want 1", snap.Counter(obs.MSolveCacheSharedHits))
	}
	// The registry's hit counter stays sum-consistent with Stats.Hits —
	// the invariant benchjson's metrics cross-check relies on.
	if snap.Counter(obs.MSolveCacheHits) != int64(b.Stats().Hits) {
		t.Fatalf("hits counter %d != stats hits %d", snap.Counter(obs.MSolveCacheHits), b.Stats().Hits)
	}
}
