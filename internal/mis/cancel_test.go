package mis

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"congestlb/internal/graphs"
)

// Cancellation contract (the Lab API's gating property): ExactCtx observes
// a cancelled context on the same batched cadence as the step budget and
// returns the best incumbent found so far together with ctx.Err() — a
// valid independent set, never a torn result — at every worker count.

// cancelTestGraph is a deliberately hard instance (~1M sequential search
// nodes, ~300ms on the dev container) so a millisecond-scale cancel lands
// reliably mid-solve.
func cancelTestGraph() *graphs.Graph {
	return randomGraph(130, 0.18, 9, rand.New(rand.NewSource(33)))
}

// TestExactCtxPreCancelled pins the fast path deterministically: a context
// that is dead on arrival returns the greedy seed incumbent before the
// search explores a single node — trivially within one budget-batch
// cadence — at Workers 1, 2, 4 and 8.
func TestExactCtxPreCancelled(t *testing.T) {
	g := cancelTestGraph()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	greedy := Greedy(g, GreedyByRatio)
	for _, workers := range []int{1, 2, 4, 8} {
		sol, err := ExactCtx(ctx, g, Options{Workers: workers})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if sol.Optimal {
			t.Fatalf("workers=%d: cancelled solve claims optimality", workers)
		}
		if sol.Steps != 0 {
			t.Fatalf("workers=%d: pre-cancelled solve explored %d nodes", workers, sol.Steps)
		}
		w, verr := Verify(g, sol.Set)
		if verr != nil || w != sol.Weight {
			t.Fatalf("workers=%d: incumbent invalid: w=%d err=%v", workers, w, verr)
		}
		if sol.Weight < greedy.Weight {
			t.Fatalf("workers=%d: incumbent %d below greedy seed %d", workers, sol.Weight, greedy.Weight)
		}
	}
}

// TestExactCtxCancelMidSolve cancels a running solve at Workers 1/2/4/8:
// the incumbent comes back valid with context.Canceled, having explored
// strictly less of the tree than a full solve (the search actually
// stopped), within one batch cadence per worker of the cancel point.
func TestExactCtxCancelMidSolve(t *testing.T) {
	g := cancelTestGraph()
	full, err := Exact(g, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(5 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		// MaxSteps is a failsafe: if cancellation regressed entirely the
		// budget still stops the solve, and the error assertion below
		// reports the regression instead of hanging the suite.
		sol, err := ExactCtx(ctx, g, Options{Workers: workers, MaxSteps: 20_000_000})
		elapsed := time.Since(start)
		cancel()
		if err == nil {
			// An implausibly fast host finished the ~1M-node search inside
			// the 5ms fuse; the contract was not exercised, not violated.
			t.Skipf("workers=%d: solve completed in %v before the cancel fired", workers, elapsed)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if sol.Optimal {
			t.Fatalf("workers=%d: cancelled solve claims optimality", workers)
		}
		w, verr := Verify(g, sol.Set)
		if verr != nil || w != sol.Weight {
			t.Fatalf("workers=%d: incumbent invalid: w=%d err=%v", workers, w, verr)
		}
		if sol.Weight < Greedy(g, GreedyByRatio).Weight {
			t.Fatalf("workers=%d: incumbent below the greedy seed", workers)
		}
		// The parallel engine legitimately explores up to ~11% more nodes
		// than the sequential full solve (pruning races), so the "it
		// actually stopped" bound carries a 2x margin — a broken stop
		// would run to the 20M-step budget, far past it.
		if sol.Steps >= 2*full.Steps {
			t.Fatalf("workers=%d: cancelled solve explored %d nodes, full solve only %d — it never stopped",
				workers, sol.Steps, full.Steps)
		}
		// The return must trail the cancel by at most the batched poll
		// cadence, not by anything proportional to the remaining tree.
		// 250ms is orders of magnitude above one 1024-node batch while
		// still far below the ~50x-budget tail a broken poll would take.
		if elapsed > 250*time.Millisecond {
			t.Fatalf("workers=%d: solve returned %v after start (cancel at 5ms) — poll cadence broken", workers, elapsed)
		}
	}
}

// TestExactCtxBackgroundMatchesExact pins that the context plumbing is
// inert when unused: ExactCtx(Background) returns the bit-identical
// Solution (set, weight, steps) Exact returns.
func TestExactCtxBackgroundMatchesExact(t *testing.T) {
	g := parallelTestGraph(parallelMinNodes+8, 0.3, 21)
	plain, err := Exact(g, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := ExactCtx(context.Background(), g, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Weight != ctxed.Weight || plain.Steps != ctxed.Steps || len(plain.Set) != len(ctxed.Set) {
		t.Fatalf("background-ctx solve diverged: %+v vs %+v", ctxed, plain)
	}
	for i := range plain.Set {
		if plain.Set[i] != ctxed.Set[i] {
			t.Fatalf("witness diverged at %d", i)
		}
	}
	// nil ctx is documented to mean Background.
	niled, err := ExactCtx(nil, g, Options{Workers: 1}) //nolint:staticcheck
	if err != nil || niled.Weight != plain.Weight {
		t.Fatalf("nil-ctx solve diverged: %+v err=%v", niled, err)
	}
}
