package mis

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"congestlb/internal/graphs"
)

// ErrBudgetExceeded is returned when branch-and-bound exhausts its step
// budget before proving optimality.
var ErrBudgetExceeded = errors.New("mis: search budget exceeded")

// Options configures the Exact solver. The zero value is valid: a greedy
// clique cover is computed and a default step budget applies.
type Options struct {
	// CliqueCover optionally supplies a partition of the nodes into
	// cliques. The lower-bound constructions know their natural cover
	// (the cliques A^i and C^i_h), which yields much tighter upper bounds
	// than the greedy cover. Each node must appear in exactly one clique,
	// and each part must be a clique in the graph.
	CliqueCover [][]graphs.NodeID
	// MaxSteps bounds the number of branch-and-bound nodes explored;
	// 0 means the default (50 million).
	MaxSteps int64
}

const defaultMaxSteps = 50_000_000

// Exact computes a maximum-weight independent set by branch-and-bound with
// a clique-cover upper bound: any independent set contains at most one node
// per clique, so Σ_cliques max_{v ∈ P ∩ C} w(v) bounds what remains of the
// candidate set P.
//
// When the step budget runs out, Exact returns ErrBudgetExceeded together
// with the best incumbent found so far (Optimal false) — a valid, possibly
// sub-optimal witness budget-capped callers can still use.
func Exact(g *graphs.Graph, opts Options) (Solution, error) {
	n := g.N()
	if n == 0 {
		return Solution{Optimal: true}, nil
	}
	cover, err := resolveCover(g, opts.CliqueCover)
	if err != nil {
		return Solution{}, err
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = defaultMaxSteps
	}

	words := (n + 63) / 64
	s := &exactSolver{
		n:           n,
		words:       words,
		weights:     make([]int64, n),
		closed:      make([][]uint64, n),
		cover:       cover.id,
		nCliques:    cover.count,
		maxSteps:    maxSteps,
		cliqueMax:   make([]int64, cover.count),
		cliqueStamp: make([]int64, cover.count),
	}
	for v := 0; v < n; v++ {
		s.weights[v] = g.Weight(v)
		row := make([]uint64, words)
		copy(row, g.NeighborRow(v))
		row[v/64] |= 1 << (uint(v) % 64)
		s.closed[v] = row
	}
	// Seed the incumbent with a greedy solution so pruning bites early.
	seed := Greedy(g, GreedyByRatio)
	s.best = seed.Weight
	s.bestSet = make([]uint64, words)
	for _, v := range seed.Set {
		s.bestSet[v/64] |= 1 << (uint(v) % 64)
	}

	// Buffers per recursion depth avoid per-call allocation.
	s.bufP = make([][]uint64, n+1)
	for d := range s.bufP {
		s.bufP[d] = make([]uint64, words)
	}
	s.curSet = make([]uint64, words)

	root := make([]uint64, words)
	for v := 0; v < n; v++ {
		root[v/64] |= 1 << (uint(v) % 64)
	}
	if err := s.search(root, 0, 0); err != nil {
		// Budget exhausted: the incumbent (seeded with the greedy solution
		// and only ever improved) is still a valid independent set, so
		// return it with Optimal unset alongside the error. Budget-capped
		// callers get a usable lower-bound witness instead of nothing.
		return s.solution(false), err
	}
	return s.solution(true), nil
}

// solution materialises the solver's incumbent as a Solution.
func (s *exactSolver) solution(optimal bool) Solution {
	set := make([]graphs.NodeID, 0)
	for v := 0; v < s.n; v++ {
		if s.bestSet[v/64]&(1<<(uint(v)%64)) != 0 {
			set = append(set, v)
		}
	}
	sort.Ints(set)
	return Solution{Set: set, Weight: s.best, Optimal: optimal, Steps: s.steps}
}

type exactSolver struct {
	n, words int
	weights  []int64
	closed   [][]uint64 // closed[v] = {v} ∪ N(v) as a bitset
	cover    []int      // clique id per node
	nCliques int

	best    int64
	bestSet []uint64
	curSet  []uint64

	steps    int64
	maxSteps int64

	bufP [][]uint64

	// Stamped scratch for the clique bound, avoiding clears per call.
	cliqueMax   []int64
	cliqueStamp []int64
	stamp       int64
}

// bound returns the clique-cover upper bound on the weight obtainable from
// the candidate set P.
func (s *exactSolver) bound(p []uint64) int64 {
	s.stamp++
	var total int64
	for wi, w := range p {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			v := wi*64 + b
			w &= w - 1
			c := s.cover[v]
			if s.cliqueStamp[c] != s.stamp {
				s.cliqueStamp[c] = s.stamp
				s.cliqueMax[c] = s.weights[v]
				total += s.weights[v]
			} else if s.weights[v] > s.cliqueMax[c] {
				total += s.weights[v] - s.cliqueMax[c]
				s.cliqueMax[c] = s.weights[v]
			}
		}
	}
	return total
}

// pickBranchNode returns the maximum-weight node in P (first by weight,
// then by lowest index), or -1 if P is empty.
func (s *exactSolver) pickBranchNode(p []uint64) int {
	bestV := -1
	var bestW int64
	for wi, w := range p {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			v := wi*64 + b
			w &= w - 1
			if bestV == -1 || s.weights[v] > bestW {
				bestV, bestW = v, s.weights[v]
			}
		}
	}
	return bestV
}

func (s *exactSolver) search(p []uint64, cur int64, depth int) error {
	s.steps++
	if s.steps > s.maxSteps {
		return fmt.Errorf("%w after %d steps", ErrBudgetExceeded, s.steps)
	}
	if cur > s.best {
		s.best = cur
		copy(s.bestSet, s.curSet)
	}
	v := s.pickBranchNode(p)
	if v == -1 {
		return nil
	}
	if cur+s.bound(p) <= s.best {
		return nil
	}
	// Branch 1: include v.
	child := s.bufP[depth]
	for i := range child {
		child[i] = p[i] &^ s.closed[v][i]
	}
	s.curSet[v/64] |= 1 << (uint(v) % 64)
	if err := s.search(child, cur+s.weights[v], depth+1); err != nil {
		return err
	}
	s.curSet[v/64] &^= 1 << (uint(v) % 64)
	// Branch 2: exclude v. Mutating p in place is safe: the parent frame
	// never re-reads its candidate set after this call.
	p[v/64] &^= 1 << (uint(v) % 64)
	return s.search(p, cur, depth)
}

type coverInfo struct {
	id    []int // clique id per node
	count int
}

// resolveCover validates a provided clique cover or computes a greedy one.
func resolveCover(g *graphs.Graph, provided [][]graphs.NodeID) (coverInfo, error) {
	n := g.N()
	if provided != nil {
		id := make([]int, n)
		for i := range id {
			id[i] = -1
		}
		for c, clique := range provided {
			if !g.IsClique(clique) {
				return coverInfo{}, fmt.Errorf("mis: cover part %d is not a clique", c)
			}
			for _, v := range clique {
				if v < 0 || v >= n {
					return coverInfo{}, fmt.Errorf("mis: cover node %d out of range", v)
				}
				if id[v] != -1 {
					return coverInfo{}, fmt.Errorf("mis: node %d appears in cover parts %d and %d", v, id[v], c)
				}
				id[v] = c
			}
		}
		for v, c := range id {
			if c == -1 {
				return coverInfo{}, fmt.Errorf("mis: node %d (%s) missing from cover", v, g.Label(v))
			}
		}
		return coverInfo{id: id, count: len(provided)}, nil
	}
	return greedyCover(g), nil
}

// greedyCover partitions nodes into cliques greedily: nodes in descending
// degree order join the first existing clique they are fully adjacent to.
func greedyCover(g *graphs.Graph) coverInfo {
	n := g.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := g.Degree(order[a]), g.Degree(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	words := (n + 63) / 64
	id := make([]int, n)
	var members [][]uint64 // bitset of members per clique
	for _, v := range order {
		row := g.NeighborRow(v)
		placed := false
		for c, mem := range members {
			fits := true
			for i := 0; i < words; i++ {
				if mem[i]&^row[i] != 0 {
					fits = false
					break
				}
			}
			if fits {
				mem[v/64] |= 1 << (uint(v) % 64)
				id[v] = c
				placed = true
				break
			}
		}
		if !placed {
			mem := make([]uint64, words)
			mem[v/64] |= 1 << (uint(v) % 64)
			members = append(members, mem)
			id[v] = len(members) - 1
		}
	}
	return coverInfo{id: id, count: len(members)}
}
