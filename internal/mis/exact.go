package mis

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"congestlb/internal/fault"
	"congestlb/internal/graphs"
	"congestlb/internal/obs"
)

// ErrBudgetExceeded is returned when branch-and-bound exhausts its step
// budget before proving optimality.
var ErrBudgetExceeded = errors.New("mis: search budget exceeded")

// Options configures the Exact solver. The zero value is valid: a greedy
// clique cover is computed, a default step budget applies and the worker
// count follows the package default.
type Options struct {
	// CliqueCover optionally supplies a partition of the nodes into
	// cliques. The lower-bound constructions know their natural cover
	// (the cliques A^i and C^i_h), which yields much tighter upper bounds
	// than the greedy cover. Each node must appear in exactly one clique,
	// and each part must be a clique in the graph.
	CliqueCover [][]graphs.NodeID
	// MaxSteps bounds the number of branch-and-bound nodes explored;
	// 0 means the default (50 million). The parallel engine accounts steps
	// in batches, so it may overshoot the budget by at most
	// Workers × stepFlushBatch before stopping.
	MaxSteps int64
	// Workers is the number of branch-and-bound workers exploring the
	// search tree concurrently. 0 selects the package default
	// (SetDefaultWorkers; GOMAXPROCS until overridden), 1 forces the
	// sequential engine. Graphs below parallelMinNodes always solve
	// sequentially — at that size goroutine startup costs more than the
	// whole search. Optimal solutions are identical — weight and witness
	// set — at every worker count: parallel witnesses are canonicalised to
	// the sequential engine's. Only Solution.Steps (work performed, not
	// part of the result) varies between parallel runs.
	Workers int
	// WeightOnly declares that the caller consumes Solution.Weight alone.
	// The parallel engine then skips its canonicalisation pass — the
	// serial tail that replays the sequential DFS to stabilise the witness
	// (~10% of a solve) — and returns whichever optimal set the worker
	// race kept. Weight and Optimal are exactly as without the flag;
	// Solution.Set remains a valid maximum-weight independent set but is
	// schedule-dependent at Workers > 1. Gap checks and other
	// value-consumers set this; anything that compares or stores witness
	// sets must not. The flag participates in the solve-cache key
	// (internal/mis/cache), so weight-only solves can never serve a
	// caller that expects the canonical witness.
	WeightOnly bool
	// Progress, when non-nil, receives one event per incumbent
	// improvement: the initial greedy seed before the search starts,
	// then every strictly better independent set either engine installs.
	// Improvements are serialised (inline in the sequential engine,
	// under the incumbent mutex in the parallel one), so a single solve
	// delivers a strictly weight-increasing sequence. The field is
	// deliberately excluded from the solve-cache key (internal/mis/cache
	// KeyOf): observing a solve must not change what it computes — but
	// that also means a lookup served from cache, or collapsed onto
	// another caller's in-flight solve, fires no events.
	//
	// The per-node hot path is untouched: the only added branches sit on
	// the improvement sites, which fire at most once per distinct
	// incumbent weight — the same rarity class as the existing
	// stepFlushBatch bookkeeping.
	Progress obs.ProgressObserver
}

const defaultMaxSteps = 50_000_000

// parallelMinNodes gates the parallel engine: below this node count a
// solve is microseconds of work and spawning workers would dominate it.
const parallelMinNodes = 48

// defaultWorkers holds the package-wide worker default applied when
// Options.Workers is 0; 0 or negative means GOMAXPROCS at solve time.
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the worker count used by solves whose
// Options.Workers is zero and returns the previous setting (0 meaning the
// initial GOMAXPROCS-at-solve-time default). Pass 0 to restore that
// default, 1 to force sequential solving process-wide.
func SetDefaultWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(defaultWorkers.Swap(int64(n)))
}

// DefaultWorkers reports the current package default (0 = GOMAXPROCS at
// solve time).
func DefaultWorkers() int { return int(defaultWorkers.Load()) }

// resolveWorkers turns an Options.Workers request into the effective
// worker count for an n-node solve.
func resolveWorkers(requested, n int) int {
	if n < parallelMinNodes {
		return 1
	}
	w := requested
	if w <= 0 {
		w = int(defaultWorkers.Load())
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Exact computes a maximum-weight independent set by branch-and-bound with
// a clique-cover upper bound: any independent set contains at most one node
// per clique, so Σ_cliques max_{v ∈ P ∩ C} w(v) bounds what remains of the
// candidate set P.
//
// With Workers > 1 (resolved per Options.Workers) the search tree is
// explored by a pool of workers over a shared frame deque: every worker
// prunes against the global incumbent, and the winning witness is
// canonicalised afterwards, so results are deterministic at any worker
// count.
//
// When the step budget runs out, Exact returns ErrBudgetExceeded together
// with the best incumbent found so far (Optimal false) — a valid, possibly
// sub-optimal witness budget-capped callers can still use.
func Exact(g *graphs.Graph, opts Options) (Solution, error) {
	return ExactCtx(context.Background(), g, opts)
}

// ExactCtx is Exact under a context: cancellation is observed on the same
// batched cadence as the step budget (every stepFlushBatch explored nodes
// per worker), and a cancelled solve returns the best incumbent found so
// far together with ctx.Err() — exactly the ErrBudgetExceeded contract, so
// cancellation is deterministic-safe: the witness is a valid independent
// set whatever instant the context fired. A nil ctx means Background.
func ExactCtx(ctx context.Context, g *graphs.Graph, opts Options) (Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := g.N()
	if n == 0 {
		return Solution{Optimal: true}, nil
	}
	// A context that is already dead never starts the search: the greedy
	// seed incumbent comes back immediately, well inside one batch cadence
	// — checked before any solver state is built, so the n per-node solves
	// of a cancelled CONGEST run don't each pay the bitset/cover setup.
	if err := ctx.Err(); err != nil {
		return SeedIncumbent(g), err
	}
	cover, err := resolveCover(g, opts.CliqueCover)
	if err != nil {
		return Solution{}, err
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = defaultMaxSteps
	}
	st := newExactState(g, cover, maxSteps)
	st.weightOnly = opts.WeightOnly
	st.ctx = ctx
	st.ctxDone = ctx.Done()
	st.progress = opts.Progress
	if st.progress != nil {
		// The seed event: observers see the greedy starting weight before
		// any engine events, so even a search that never improves (or is
		// cancelled instantly) reports where it stood.
		st.progress.OnIncumbent(obs.ProgressEvent{Weight: st.seedWeight})
	}
	if workers := resolveWorkers(opts.Workers, n); workers > 1 {
		return exactParallel(st, workers)
	}
	return exactSequential(st)
}

// exactState is the read-mostly problem data plus the shared incumbent and
// budget accounting of one Exact call. The sequential engine touches it
// from a single goroutine; the parallel engine shares one instance between
// its workers, which prune against the atomic incumbent weight and settle
// improvements through the mutex.
type exactState struct {
	n, words int
	weights  []int64
	closed   [][]uint64 // closed[v] = {v} ∪ N(v) as a bitset
	cover    []int      // clique id per node
	nCliques int

	maxSteps int64
	// weightOnly skips the parallel engine's canonicalisation pass: the
	// caller consumes the weight alone, so the schedule-dependent witness
	// the race kept is good enough (Options.WeightOnly).
	weightOnly bool
	// ctx/ctxDone carry the caller's cancellation signal; both engines poll
	// ctxDone on the stepFlushBatch cadence. ctxDone is nil for contexts
	// that can never cancel, which keeps the poll free on the common path.
	ctx     context.Context
	ctxDone <-chan struct{}
	// cancelled records that the stop below was triggered by the context
	// rather than the step budget, so the engines report ctx.Err() instead
	// of ErrBudgetExceeded.
	cancelled atomic.Bool
	steps     atomic.Int64 // explored nodes; workers flush in batches
	stop      atomic.Bool  // budget exhausted or cancelled: every worker unwinds
	// warmedUp gates donations: the first worker dives the root in
	// sequential order for one step batch before the tree is split, so the
	// incumbent is strong by the time top-level exclude branches start
	// running concurrently — without this the early breadth costs a
	// multiple of the sequential step count in lost pruning.
	warmedUp atomic.Bool

	// Panic containment (see docs/robustness.md): panics counts recovered
	// solver-worker panics, firstPanic keeps the first one's structured
	// error, and degraded marks a parallel solve that lost every worker
	// and fell back to the incumbent (the budget/ctx contract).
	panics     atomic.Int64
	firstPanic atomic.Pointer[fault.PanicError]
	degraded   atomic.Bool

	best    atomic.Int64 // incumbent weight, read lock-free for pruning
	mu      sync.Mutex   // guards bestSet and best-improvement ordering
	bestSet []uint64
	// progress, when set, is fired on every incumbent improvement —
	// inline in the sequential engine, under mu in the parallel one, so
	// events arrive strictly weight-increasing (Options.Progress).
	progress obs.ProgressObserver
	// seedWeight is the greedy incumbent the search started from. When the
	// search never improves on it, both engines return the seed set
	// itself, so the parallel engine must not canonicalise in that case
	// (the canonical DFS prefix is generally a different optimal set).
	seedWeight int64
}

// newExactState builds the shared solver state and seeds the incumbent
// with a greedy solution so pruning bites early.
func newExactState(g *graphs.Graph, cover coverInfo, maxSteps int64) *exactState {
	n := g.N()
	words := (n + 63) / 64
	st := &exactState{
		n:        n,
		words:    words,
		weights:  make([]int64, n),
		closed:   make([][]uint64, n),
		cover:    cover.id,
		nCliques: cover.count,
		maxSteps: maxSteps,
		bestSet:  make([]uint64, words),
	}
	for v := 0; v < n; v++ {
		st.weights[v] = g.Weight(v)
		row := make([]uint64, words)
		copy(row, g.NeighborRow(v))
		row[v/64] |= 1 << (uint(v) % 64)
		st.closed[v] = row
	}
	seed := SeedIncumbent(g)
	st.best.Store(seed.Weight)
	st.seedWeight = seed.Weight
	for _, v := range seed.Set {
		st.bestSet[v/64] |= 1 << (uint(v) % 64)
	}
	return st
}

// rootCandidates returns the full candidate bitset.
func (st *exactState) rootCandidates() []uint64 {
	root := make([]uint64, st.words)
	for v := 0; v < st.n; v++ {
		root[v/64] |= 1 << (uint(v) % 64)
	}
	return root
}

// offerIncumbent installs (cur, set) as the incumbent if it still beats the
// best known weight. The double check under the mutex serialises racing
// improvements; pruning reads st.best lock-free and may be momentarily
// stale, which only costs wasted work, never correctness.
func (st *exactState) offerIncumbent(cur int64, set []uint64) {
	st.mu.Lock()
	if cur > st.best.Load() {
		st.best.Store(cur)
		copy(st.bestSet, set)
		if st.progress != nil {
			// Fired while still holding mu: the lock is what guarantees
			// racing workers deliver a strictly weight-increasing sequence
			// (an improvement observed outside the lock could overtake a
			// larger one already installed).
			st.progress.OnIncumbent(obs.ProgressEvent{Weight: cur, Steps: st.steps.Load()})
		}
	}
	st.mu.Unlock()
}

// solution materialises the incumbent as a Solution.
func (st *exactState) solution(optimal bool, steps int64) Solution {
	set := make([]graphs.NodeID, 0)
	for v := 0; v < st.n; v++ {
		if st.bestSet[v/64]&(1<<(uint(v)%64)) != 0 {
			set = append(set, v)
		}
	}
	sort.Ints(set)
	return Solution{
		Set:          set,
		Weight:       st.best.Load(),
		Optimal:      optimal,
		Steps:        steps,
		WorkerPanics: int(st.panics.Load()),
	}
}

// searcher is the per-worker search machinery: per-depth candidate buffers,
// the current chosen-set bitset, and the stamped clique-bound scratch. Each
// worker owns its own searcher — the clique scratch is written on every
// bound() call and would race if it lived on the shared state (where the
// sequential solver used to keep it).
type searcher struct {
	st   *exactState
	pool *workPool // nil for the sequential engine

	curSet []uint64
	bufP   [][]uint64 // per-depth candidate buffers, no per-call allocation

	cliqueMax   []int64
	cliqueStamp []int64
	stamp       int64

	// faultKey names this worker at the fault layer ("w0", "w1", …): the
	// chaos harness targets individual workers by it, and recovered
	// panics carry it as the owning identity.
	faultKey string

	localSteps int64 // steps not yet flushed to st.steps
	canonSteps int64 // nodes visited by the canonicalisation pass
	// canonAborted marks a canonicalisation pass cut short by the context;
	// the replay unwinds without touching the incumbent set.
	canonAborted bool
}

func newSearcher(st *exactState, pool *workPool) *searcher {
	w := &searcher{
		st:          st,
		pool:        pool,
		curSet:      make([]uint64, st.words),
		bufP:        make([][]uint64, st.n+1),
		cliqueMax:   make([]int64, st.nCliques),
		cliqueStamp: make([]int64, st.nCliques),
	}
	for d := range w.bufP {
		w.bufP[d] = make([]uint64, st.words)
	}
	return w
}

// bound returns the clique-cover upper bound on the weight obtainable from
// the candidate set P.
func (w *searcher) bound(p []uint64) int64 {
	w.stamp++
	st := w.st
	var total int64
	for wi, word := range p {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			v := wi*64 + b
			word &= word - 1
			c := st.cover[v]
			if w.cliqueStamp[c] != w.stamp {
				w.cliqueStamp[c] = w.stamp
				w.cliqueMax[c] = st.weights[v]
				total += st.weights[v]
			} else if st.weights[v] > w.cliqueMax[c] {
				total += st.weights[v] - w.cliqueMax[c]
				w.cliqueMax[c] = st.weights[v]
			}
		}
	}
	return total
}

// pickBranchNode returns the maximum-weight node in P (first by weight,
// then by lowest index), or -1 if P is empty.
func (w *searcher) pickBranchNode(p []uint64) int {
	st := w.st
	bestV := -1
	var bestW int64
	for wi, word := range p {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			v := wi*64 + b
			word &= word - 1
			if bestV == -1 || st.weights[v] > bestW {
				bestV, bestW = v, st.weights[v]
			}
		}
	}
	return bestV
}

// exactSequential runs the single-goroutine engine: the exact code path
// (and step accounting) the solver always had. The search is wrapped in
// panic containment: the incumbent is only ever written as a complete
// valid independent set, so a panic anywhere in the recursion degrades
// the solve to the incumbent with a *fault.PanicError — the same shape a
// blown budget has. The single worker is named "w0" at the fault layer,
// matching the parallel engine's worker-0 key.
func exactSequential(st *exactState) (Solution, error) {
	w := newSearcher(st, nil)
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				st.panics.Add(1)
				err = fault.NewPanicError("solver worker w0", r)
			}
		}()
		fault.MaybePanic(fault.SolverPanic, "w0")
		return w.searchSeq(st.rootCandidates(), 0, 0)
	}()
	st.steps.Store(w.localSteps)
	if err != nil {
		// Budget exhausted: the incumbent (seeded with the greedy solution
		// and only ever improved) is still a valid independent set, so
		// return it with Optimal unset alongside the error. Budget-capped
		// callers get a usable lower-bound witness instead of nothing.
		return st.solution(false, w.localSteps), err
	}
	return st.solution(true, w.localSteps), nil
}

func (w *searcher) searchSeq(p []uint64, cur int64, depth int) error {
	st := w.st
	w.localSteps++
	// Cancellation polls on the budget-batch cadence, not per node — and
	// additionally whenever the budget is about to trip, so a solve that
	// is both cancelled and over budget reports the context, matching the
	// parallel engine's precedence (flushAndCheck) at every worker count.
	if st.ctxDone != nil && (w.localSteps%stepFlushBatch == 0 || w.localSteps > st.maxSteps) {
		select {
		case <-st.ctxDone:
			st.cancelled.Store(true)
			return st.ctx.Err()
		default:
		}
	}
	if w.localSteps > st.maxSteps {
		return fmt.Errorf("%w after %d steps", ErrBudgetExceeded, w.localSteps)
	}
	if cur > st.best.Load() {
		st.best.Store(cur)
		copy(st.bestSet, w.curSet)
		if st.progress != nil {
			st.progress.OnIncumbent(obs.ProgressEvent{Weight: cur, Steps: w.localSteps})
		}
	}
	v := w.pickBranchNode(p)
	if v == -1 {
		return nil
	}
	if cur+w.bound(p) <= st.best.Load() {
		return nil
	}
	// Branch 1: include v.
	child := w.bufP[depth]
	for i := range child {
		child[i] = p[i] &^ st.closed[v][i]
	}
	w.curSet[v/64] |= 1 << (uint(v) % 64)
	if err := w.searchSeq(child, cur+st.weights[v], depth+1); err != nil {
		return err
	}
	w.curSet[v/64] &^= 1 << (uint(v) % 64)
	// Branch 2: exclude v. Mutating p in place is safe: the parent frame
	// never re-reads its candidate set after this call.
	p[v/64] &^= 1 << (uint(v) % 64)
	return w.searchSeq(p, cur, depth)
}

type coverInfo struct {
	id    []int // clique id per node
	count int
}

// resolveCover validates a provided clique cover or computes a greedy one.
func resolveCover(g *graphs.Graph, provided [][]graphs.NodeID) (coverInfo, error) {
	n := g.N()
	if provided != nil {
		id := make([]int, n)
		for i := range id {
			id[i] = -1
		}
		for c, clique := range provided {
			if !g.IsClique(clique) {
				return coverInfo{}, fmt.Errorf("mis: cover part %d is not a clique", c)
			}
			for _, v := range clique {
				if v < 0 || v >= n {
					return coverInfo{}, fmt.Errorf("mis: cover node %d out of range", v)
				}
				if id[v] != -1 {
					return coverInfo{}, fmt.Errorf("mis: node %d appears in cover parts %d and %d", v, id[v], c)
				}
				id[v] = c
			}
		}
		for v, c := range id {
			if c == -1 {
				return coverInfo{}, fmt.Errorf("mis: node %d (%s) missing from cover", v, g.Label(v))
			}
		}
		return coverInfo{id: id, count: len(provided)}, nil
	}
	return greedyCover(g), nil
}

// greedyCover partitions nodes into cliques greedily: nodes in descending
// degree order join the first existing clique they are fully adjacent to.
func greedyCover(g *graphs.Graph) coverInfo {
	n := g.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := g.Degree(order[a]), g.Degree(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	words := (n + 63) / 64
	id := make([]int, n)
	var members [][]uint64 // bitset of members per clique
	for _, v := range order {
		row := g.NeighborRow(v)
		placed := false
		for c, mem := range members {
			fits := true
			for i := 0; i < words; i++ {
				if mem[i]&^row[i] != 0 {
					fits = false
					break
				}
			}
			if fits {
				mem[v/64] |= 1 << (uint(v) % 64)
				id[v] = c
				placed = true
				break
			}
		}
		if !placed {
			mem := make([]uint64, words)
			mem[v/64] |= 1 << (uint(v) % 64)
			members = append(members, mem)
			id[v] = len(members) - 1
		}
	}
	return coverInfo{id: id, count: len(members)}
}
