// Package mis computes maximum-weight independent sets. It is the
// verification engine for the lower-bound graph families of Efron,
// Grossman and Khoury (PODC 2020): Claims 1-7 of the paper assert exact
// bounds on the MaxIS weight of the constructed graphs, and this package
// checks them mechanically.
//
// Three solvers are provided with different trust/performance profiles:
//
//   - Exhaustive: subset dynamic programming, O(2^n); the reference oracle
//     for n ≤ ~24.
//   - Exact: branch-and-bound with a clique-cover upper bound; handles the
//     clique-dense lower-bound constructions into the hundreds of nodes.
//     The caller may supply the construction's natural clique cover.
//   - Greedy: the classical weight/(degree+1) heuristic; no optimality
//     guarantee, used as a lower-bound seed and an experiment baseline.
//
// All solvers return witness sets, never just values, so every result can
// be re-verified with Verify.
package mis

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"congestlb/internal/graphs"
)

// Solution is an independent set together with its total weight.
type Solution struct {
	// Set holds the chosen nodes in increasing ID order.
	Set []graphs.NodeID
	// Weight is the sum of node weights of Set.
	Weight int64
	// Optimal reports whether the producing solver guarantees optimality.
	Optimal bool
	// Steps counts the branch-and-bound nodes explored by Exact (0 for
	// the other solvers); it quantifies how much pruning the clique-cover
	// bound bought. Deterministic for sequential solves; for parallel
	// solves (Options.Workers > 1) it varies run to run with incumbent
	// timing, unlike Set and Weight which are canonical.
	Steps int64
	// WorkerPanics counts solver-worker panics recovered during this
	// solve (see docs/robustness.md). A recovered panic retires the
	// worker and requeues its frame for the survivors, so Set and Weight
	// stay canonical; only when every worker is lost does the solve
	// degrade to the incumbent and report a *fault.PanicError. Always 0
	// for cache hits — panics are attributed to the solve that ran.
	WorkerPanics int
}

// Verify checks that set is an independent set in g with no duplicates and
// returns its weight.
func Verify(g *graphs.Graph, set []graphs.NodeID) (int64, error) {
	seen := make(map[graphs.NodeID]bool, len(set))
	var weight int64
	for _, u := range set {
		if u < 0 || u >= g.N() {
			return 0, fmt.Errorf("mis: node %d out of range [0,%d)", u, g.N())
		}
		if seen[u] {
			return 0, fmt.Errorf("mis: duplicate node %d", u)
		}
		seen[u] = true
		weight += g.Weight(u)
	}
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if g.HasEdge(set[i], set[j]) {
				return 0, fmt.Errorf("mis: nodes %d (%s) and %d (%s) are adjacent",
					set[i], g.Label(set[i]), set[j], g.Label(set[j]))
			}
		}
	}
	return weight, nil
}

// IsMaximal reports whether set is a maximal independent set: independent,
// and every node outside it has a neighbour inside it.
func IsMaximal(g *graphs.Graph, set []graphs.NodeID) (bool, error) {
	if _, err := Verify(g, set); err != nil {
		return false, err
	}
	in := make([]bool, g.N())
	for _, u := range set {
		in[u] = true
	}
	for v := 0; v < g.N(); v++ {
		if in[v] {
			continue
		}
		dominated := false
		g.ForEachNeighbor(v, func(u graphs.NodeID) {
			if in[u] {
				dominated = true
			}
		})
		if !dominated {
			return false, nil
		}
	}
	return true, nil
}

// ErrTooLarge is returned when a solver's safety limit would be exceeded.
var ErrTooLarge = errors.New("mis: instance exceeds solver limit")

// Exhaustive computes a maximum-weight independent set by subset dynamic
// programming over all 2^n node subsets. It refuses graphs with more than
// 24 nodes. Its independence from the branch-and-bound code path makes it
// the cross-check oracle in tests.
func Exhaustive(g *graphs.Graph) (Solution, error) {
	n := g.N()
	if n > 24 {
		return Solution{}, fmt.Errorf("%w: %d nodes (Exhaustive max 24)", ErrTooLarge, n)
	}
	if n == 0 {
		return Solution{Optimal: true}, nil
	}
	// closed[v] = bitmask of v and its neighbours.
	closed := make([]uint32, n)
	for v := 0; v < n; v++ {
		mask := uint32(1) << uint(v)
		g.ForEachNeighbor(v, func(u graphs.NodeID) {
			mask |= 1 << uint(u)
		})
		closed[v] = mask
	}
	// best[mask] = max IS weight within the node set `mask`.
	best := make([]int64, 1<<uint(n))
	for mask := uint32(1); mask < 1<<uint(n); mask++ {
		v := bits.TrailingZeros32(mask)
		without := best[mask&^(1<<uint(v))]
		with := g.Weight(v) + best[mask&^closed[v]]
		if with > without {
			best[mask] = with
		} else {
			best[mask] = without
		}
	}
	// Reconstruct a witness.
	var set []graphs.NodeID
	mask := uint32(1<<uint(n)) - 1
	for mask != 0 {
		v := bits.TrailingZeros32(mask)
		if best[mask] == best[mask&^(1<<uint(v))] {
			mask &^= 1 << uint(v)
			continue
		}
		set = append(set, v)
		mask &^= closed[v]
	}
	sort.Ints(set)
	return Solution{Set: set, Weight: best[len(best)-1], Optimal: true}, nil
}

// GreedyStrategy selects how Greedy ranks candidate nodes.
type GreedyStrategy int

const (
	// GreedyByRatio picks the node maximising weight/(degree+1), the
	// classical weighted-greedy rule.
	GreedyByRatio GreedyStrategy = iota + 1
	// GreedyByWeight picks the heaviest remaining node.
	GreedyByWeight
	// GreedyByDegree picks the minimum-degree remaining node (breaking
	// ties by weight), the classical unweighted rule.
	GreedyByDegree
)

// SeedIncumbent returns the greedy solution the Exact search seeds its
// incumbent with — the floor every cancelled or budget-capped solve is
// guaranteed to return at least. It exists as the single definition of
// that seed: the solver's state constructor, the dead-context fast path
// and the cache's abandoned-waiter fallback all call it, so a future
// change of seed strategy cannot silently diverge between them.
func SeedIncumbent(g *graphs.Graph) Solution { return Greedy(g, GreedyByRatio) }

// Greedy computes a maximal independent set with the given strategy. The
// result is maximal but generally not optimal.
func Greedy(g *graphs.Graph, strategy GreedyStrategy) Solution {
	n := g.N()
	alive := make([]bool, n)
	degree := make([]int, n)
	for v := 0; v < n; v++ {
		alive[v] = true
		degree[v] = g.Degree(v)
	}
	remaining := n
	var set []graphs.NodeID
	var weight int64
	for remaining > 0 {
		bestV := -1
		var bestKey float64
		for v := 0; v < n; v++ {
			if !alive[v] {
				continue
			}
			var key float64
			switch strategy {
			case GreedyByWeight:
				key = float64(g.Weight(v))
			case GreedyByDegree:
				key = -float64(degree[v]) + float64(g.Weight(v))*1e-9
			default: // GreedyByRatio
				key = float64(g.Weight(v)) / float64(degree[v]+1)
			}
			if bestV == -1 || key > bestKey {
				bestV, bestKey = v, key
			}
		}
		set = append(set, bestV)
		weight += g.Weight(bestV)
		// Remove closed neighbourhood of bestV.
		kill := []graphs.NodeID{bestV}
		g.ForEachNeighbor(bestV, func(u graphs.NodeID) {
			if alive[u] {
				kill = append(kill, u)
			}
		})
		for _, u := range kill {
			alive[u] = false
			remaining--
			g.ForEachNeighbor(u, func(x graphs.NodeID) {
				if alive[x] {
					degree[x]--
				}
			})
		}
	}
	sort.Ints(set)
	return Solution{Set: set, Weight: weight, Optimal: false}
}
