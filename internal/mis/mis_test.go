package mis

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"congestlb/internal/graphs"
)

// randomGraph builds a random weighted graph with n nodes and edge
// probability prob, weights in [1, maxW].
func randomGraph(n int, prob float64, maxW int64, rng *rand.Rand) *graphs.Graph {
	g := graphs.New(n)
	for i := 0; i < n; i++ {
		g.MustAddNode(fmt.Sprintf("n%d", i), 1+rng.Int63n(maxW))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < prob {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

func TestVerify(t *testing.T) {
	g := graphs.New(3)
	a := g.MustAddNode("a", 2)
	b := g.MustAddNode("b", 3)
	c := g.MustAddNode("c", 4)
	g.MustAddEdge(a, b)

	w, err := Verify(g, []graphs.NodeID{a, c})
	if err != nil {
		t.Fatal(err)
	}
	if w != 6 {
		t.Fatalf("weight = %d, want 6", w)
	}
	if _, err := Verify(g, []graphs.NodeID{a, b}); err == nil {
		t.Fatal("adjacent pair accepted")
	}
	if _, err := Verify(g, []graphs.NodeID{a, a}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := Verify(g, []graphs.NodeID{99}); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if w, err := Verify(g, nil); err != nil || w != 0 {
		t.Fatalf("empty set: w=%d err=%v", w, err)
	}
}

func TestIsMaximal(t *testing.T) {
	// Path a-b-c: {b} is maximal, {a} is not (c is undominated), {a,c} is
	// maximal and maximum.
	g := graphs.New(3)
	a := g.MustAddNode("a", 1)
	b := g.MustAddNode("b", 1)
	c := g.MustAddNode("c", 1)
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, c)

	tests := []struct {
		name string
		set  []graphs.NodeID
		want bool
	}{
		{name: "center", set: []graphs.NodeID{b}, want: true},
		{name: "one end", set: []graphs.NodeID{a}, want: false},
		{name: "both ends", set: []graphs.NodeID{a, c}, want: true},
		{name: "empty", set: nil, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := IsMaximal(g, tt.set)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Fatalf("IsMaximal = %v, want %v", got, tt.want)
			}
		})
	}
	if _, err := IsMaximal(g, []graphs.NodeID{a, b}); err == nil {
		t.Fatal("dependent set accepted")
	}
}

func TestExhaustiveEmptyGraph(t *testing.T) {
	sol, err := Exhaustive(graphs.New(0))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Weight != 0 || len(sol.Set) != 0 {
		t.Fatalf("empty graph solution %+v", sol)
	}
}

func TestExhaustiveTriangle(t *testing.T) {
	g := graphs.New(3)
	a := g.MustAddNode("a", 1)
	b := g.MustAddNode("b", 5)
	c := g.MustAddNode("c", 3)
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, c)
	g.MustAddEdge(a, c)
	sol, err := Exhaustive(g)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Weight != 5 || !reflect.DeepEqual(sol.Set, []graphs.NodeID{b}) {
		t.Fatalf("triangle solution %+v", sol)
	}
}

func TestExhaustiveC5(t *testing.T) {
	// 5-cycle with unit weights: MaxIS = 2.
	g := graphs.New(5)
	for i := 0; i < 5; i++ {
		g.MustAddNode(fmt.Sprintf("c%d", i), 1)
	}
	for i := 0; i < 5; i++ {
		g.MustAddEdge(i, (i+1)%5)
	}
	sol, err := Exhaustive(g)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Weight != 2 {
		t.Fatalf("C5 MaxIS weight = %d, want 2", sol.Weight)
	}
	if _, err := Verify(g, sol.Set); err != nil {
		t.Fatal(err)
	}
}

func TestExhaustiveRefusesLarge(t *testing.T) {
	g := randomGraph(25, 0.2, 3, rand.New(rand.NewSource(1)))
	if _, err := Exhaustive(g); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("error = %v, want ErrTooLarge", err)
	}
}

func TestExactMatchesExhaustiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(16)
		prob := rng.Float64()
		g := randomGraph(n, prob, 8, rng)
		want, err := Exhaustive(g)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Exact(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Weight != want.Weight {
			t.Fatalf("trial %d (n=%d p=%.2f): Exact=%d Exhaustive=%d",
				trial, n, prob, got.Weight, want.Weight)
		}
		if w, err := Verify(g, got.Set); err != nil || w != got.Weight {
			t.Fatalf("trial %d: witness invalid: w=%d err=%v", trial, w, err)
		}
		if !got.Optimal {
			t.Fatal("Exact solution not flagged optimal")
		}
	}
}

func TestExactWithProvidedCover(t *testing.T) {
	// Two disjoint triangles joined by one edge; natural cover = the two
	// triangles.
	g := graphs.New(6)
	for i := 0; i < 6; i++ {
		g.MustAddNode(fmt.Sprintf("n%d", i), int64(i+1))
	}
	tri1 := []graphs.NodeID{0, 1, 2}
	tri2 := []graphs.NodeID{3, 4, 5}
	if err := g.AddClique(tri1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddClique(tri2); err != nil {
		t.Fatal(err)
	}
	g.MustAddEdge(2, 3)

	sol, err := Exact(g, Options{CliqueCover: [][]graphs.NodeID{tri1, tri2}})
	if err != nil {
		t.Fatal(err)
	}
	// Best: node 2 (w=3) from tri1 and node 5 (w=6) from tri2 → 9.
	if sol.Weight != 9 {
		t.Fatalf("weight = %d, want 9", sol.Weight)
	}
}

func TestExactCoverValidation(t *testing.T) {
	g := graphs.New(3)
	a := g.MustAddNode("a", 1)
	b := g.MustAddNode("b", 1)
	c := g.MustAddNode("c", 1)
	g.MustAddEdge(a, b)

	tests := []struct {
		name  string
		cover [][]graphs.NodeID
	}{
		{name: "not a clique", cover: [][]graphs.NodeID{{a, c}, {b}}},
		{name: "missing node", cover: [][]graphs.NodeID{{a, b}}},
		{name: "duplicate node", cover: [][]graphs.NodeID{{a, b}, {a}, {c}}},
		{name: "out of range", cover: [][]graphs.NodeID{{a, b}, {c}, {9}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Exact(g, Options{CliqueCover: tt.cover}); err == nil {
				t.Fatal("invalid cover accepted")
			}
		})
	}
}

func TestExactBudget(t *testing.T) {
	g := randomGraph(40, 0.1, 5, rand.New(rand.NewSource(5)))
	if _, err := Exact(g, Options{MaxSteps: 3}); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("error = %v, want ErrBudgetExceeded", err)
	}
}

func TestExactBudgetReturnsIncumbent(t *testing.T) {
	g := randomGraph(40, 0.1, 5, rand.New(rand.NewSource(5)))
	sol, err := Exact(g, Options{MaxSteps: 3})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("error = %v, want ErrBudgetExceeded", err)
	}
	if sol.Optimal {
		t.Fatal("budget-capped solution claims optimality")
	}
	if len(sol.Set) == 0 {
		t.Fatal("budget-capped solution lost the incumbent set")
	}
	weight, err := Verify(g, sol.Set)
	if err != nil {
		t.Fatalf("incumbent is not independent: %v", err)
	}
	if weight != sol.Weight {
		t.Fatalf("incumbent weight %d, reported %d", weight, sol.Weight)
	}
	// The incumbent is seeded with the greedy solution, so it is at least
	// as good as greedy even when the budget dies immediately.
	if greedy := Greedy(g, GreedyByRatio); sol.Weight < greedy.Weight {
		t.Fatalf("incumbent weight %d below greedy seed %d", sol.Weight, greedy.Weight)
	}
}

func TestExactEmptyAndSingleton(t *testing.T) {
	sol, err := Exact(graphs.New(0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Weight != 0 {
		t.Fatalf("empty weight = %d", sol.Weight)
	}
	g := graphs.New(1)
	g.MustAddNode("solo", 7)
	sol, err = Exact(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Weight != 7 || len(sol.Set) != 1 {
		t.Fatalf("singleton solution %+v", sol)
	}
}

func TestGreedyStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	strategies := []GreedyStrategy{GreedyByRatio, GreedyByWeight, GreedyByDegree}
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(2+rng.Intn(40), 0.3, 6, rng)
		for _, st := range strategies {
			sol := Greedy(g, st)
			if _, err := Verify(g, sol.Set); err != nil {
				t.Fatalf("strategy %d produced invalid set: %v", st, err)
			}
			maximal, err := IsMaximal(g, sol.Set)
			if err != nil {
				t.Fatal(err)
			}
			if !maximal {
				t.Fatalf("strategy %d produced non-maximal set", st)
			}
			if sol.Optimal {
				t.Fatal("greedy flagged optimal")
			}
		}
	}
}

func TestGreedyNeverBeatsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		g := randomGraph(1+rng.Intn(15), 0.4, 9, rng)
		exact, err := Exhaustive(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range []GreedyStrategy{GreedyByRatio, GreedyByWeight, GreedyByDegree} {
			if got := Greedy(g, st); got.Weight > exact.Weight {
				t.Fatalf("greedy %d weight %d beats optimum %d", st, got.Weight, exact.Weight)
			}
		}
	}
}

func TestExactQuickAgainstExhaustive(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 40,
		Rand:     rand.New(rand.NewSource(21)),
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Int63())
		},
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(1+r.Intn(14), r.Float64(), 5, r)
		want, err := Exhaustive(g)
		if err != nil {
			return false
		}
		got, err := Exact(g, Options{})
		if err != nil {
			return false
		}
		return got.Weight == want.Weight
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkExactRandom60(b *testing.B) {
	g := randomGraph(60, 0.3, 8, rand.New(rand.NewSource(3)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exact(g, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyRandom500(b *testing.B) {
	g := randomGraph(500, 0.1, 8, rand.New(rand.NewSource(4)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy(g, GreedyByRatio)
	}
}
