package mis

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"congestlb/internal/fault"
)

// armFaults installs a fault-injection plan for one test and restores the
// previous injector afterwards. Tests using it must not run in parallel:
// the injector is process-global.
func armFaults(t *testing.T, spec string) {
	t.Helper()
	inj, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	prev := fault.Set(inj)
	t.Cleanup(func() { fault.Set(prev) })
}

// TestSolverWorkerPanicRecovered: a panic in one branch-and-bound worker
// degrades the solve to the surviving workers, not to failure — the
// panicked worker's frame is requeued, the result stays canonical
// (bit-equal to the clean sequential witness), and the panic is counted
// on the Solution. Checked at Workers ∈ {2, 4, 8}. The @w match hits
// whichever worker draws a frame first (which worker that is depends on
// scheduling) and the *1 budget caps the plan at exactly one panic, so
// the count assertion is exact at any schedule.
func TestSolverWorkerPanicRecovered(t *testing.T) {
	g := parallelTestGraph(64, 0.3, 71)
	want, err := Exact(g, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 4, 8} {
		// A fresh plan per worker count: the *1 budget is per injector.
		armFaults(t, "7:worker-panic@w*1")
		sol, err := Exact(g, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: solve failed despite %d survivors: %v", workers, workers-1, err)
		}
		if !sol.Optimal || sol.Weight != want.Weight || !reflect.DeepEqual(sol.Set, want.Set) {
			t.Fatalf("workers=%d: degraded result optimal=%v weight=%d set=%v, want clean %d %v",
				workers, sol.Optimal, sol.Weight, sol.Set, want.Weight, want.Set)
		}
		if sol.WorkerPanics != 1 {
			t.Fatalf("workers=%d: WorkerPanics = %d, want exactly 1 (*1 budget)", workers, sol.WorkerPanics)
		}
	}
}

// TestSolverPanicSequentialDegrades: with Workers=1 the sequential engine
// recovers the panic itself (the single worker is "w0" at the fault
// layer) and degrades to the greedy-seeded incumbent — a valid witness
// alongside a *fault.PanicError, the same contract as a blown budget.
func TestSolverPanicSequentialDegrades(t *testing.T) {
	armFaults(t, "7:worker-panic@w0*1")
	g := randomGraph(30, 0.3, 9, rand.New(rand.NewSource(5)))
	sol, err := Exact(g, Options{Workers: 1})
	var pe *fault.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a *fault.PanicError", err)
	}
	if !strings.Contains(pe.Op, "w0") {
		t.Fatalf("panic attributed to %q, want solver worker w0", pe.Op)
	}
	if sol.Optimal {
		t.Fatal("degraded solve flagged optimal")
	}
	if sol.WorkerPanics != 1 {
		t.Fatalf("WorkerPanics = %d, want 1", sol.WorkerPanics)
	}
	if w, verr := Verify(g, sol.Set); verr != nil || w != sol.Weight {
		t.Fatalf("incumbent witness invalid: w=%d err=%v", w, verr)
	}
}

// TestAllSolverWorkersPanicDegrades: when every worker panics (the @w
// match hits w0..wN with no budget), the pool drains, the last retiree
// flags the solve degraded, and the caller still gets the greedy-seeded
// incumbent — valid, non-optimal — with an error wrapping the first
// panic. The solve must terminate (no deadlock on the requeued frames).
func TestAllSolverWorkersPanicDegrades(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		armFaults(t, "7:worker-panic@w")
		g := parallelTestGraph(64, 0.3, 71)
		sol, err := Exact(g, Options{Workers: workers})
		if err == nil || !strings.Contains(err.Error(), "solver workers panicked") {
			t.Fatalf("workers=%d: err = %v, want all-workers-panicked", workers, err)
		}
		var pe *fault.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: error does not wrap the first PanicError: %v", workers, err)
		}
		if sol.Optimal {
			t.Fatalf("workers=%d: fully degraded solve flagged optimal", workers)
		}
		if sol.WorkerPanics != workers {
			t.Fatalf("workers=%d: WorkerPanics = %d, want one per worker", workers, sol.WorkerPanics)
		}
		if w, verr := Verify(g, sol.Set); verr != nil || w != sol.Weight {
			t.Fatalf("workers=%d: incumbent witness invalid: w=%d err=%v", workers, w, verr)
		}
	}
}

// TestSolverPanicDisabledInjectorClean: with no injector installed the
// fault sites are no-ops and solves are exactly as before — the guard
// that chaos plumbing costs nothing when off.
func TestSolverPanicDisabledInjectorClean(t *testing.T) {
	prev := fault.Set(nil)
	t.Cleanup(func() { fault.Set(prev) })
	g := parallelTestGraph(56, 0.3, 13)
	seq, err := Exact(g, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Exact(g, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par.WorkerPanics != 0 || seq.WorkerPanics != 0 {
		t.Fatalf("panics counted with injection disabled: seq=%d par=%d", seq.WorkerPanics, par.WorkerPanics)
	}
	if !reflect.DeepEqual(par.Set, seq.Set) {
		t.Fatal("parallel witness differs from sequential with injection disabled")
	}
}
