package mis

import (
	"fmt"
	"math/bits"
	"strconv"
	"sync"
	"sync/atomic"

	"congestlb/internal/fault"
)

// Parallel branch-and-bound engine.
//
// The search tree is explored by a pool of workers over a shared
// best-first deque of subproblem frames (candidate bitset, chosen-set
// bitset, accumulated weight, clique-bound ceiling). Every worker runs the
// same depth-first search as the sequential engine over its own scratch
// buffers; when the pool runs dry (a worker goes idle), busy workers
// donate the exclude branch of their current node — the largest pending
// subproblem they hold — instead of iterating it in place. Donation at the
// top of the tree splits the biggest subtrees first, so the pool saturates
// after a handful of donations without any upfront partitioning pass, and
// the highest-ceiling frame is handed out first so the incumbent converges
// quickly (see frame.pri).
//
// Correctness and determinism:
//
//   - The incumbent weight lives in an atomic read lock-free on every
//     prune; improvements re-check under a mutex before installing, so a
//     stale read can only cost wasted exploration, never a wrong result.
//   - The search is exhaustive modulo sound pruning at every worker count,
//     so the returned optimal weight is always identical to the
//     sequential engine's.
//   - Which optimal witness the race happens to keep is schedule-dependent,
//     so after the search proves optimality a sequential canonicalisation
//     pass (see canonicalize) replaces the incumbent set with the witness
//     the sequential engine would return — making the returned Set and
//     Weight deterministic (and engine-independent) at any worker count.
//     Solution.Steps is the one schedule-dependent field: how many nodes
//     the pruning races away varies run to run once donation engages.
//   - Step budgeting is an atomic counter workers flush every
//     stepFlushBatch nodes; overshoot is bounded by workers × batch. On
//     exhaustion every worker unwinds and the incumbent is returned with
//     ErrBudgetExceeded, exactly like the sequential engine.

const (
	// stepFlushBatch is how many locally-counted search nodes a worker
	// explores between flushes into the shared atomic step counter (and
	// budget checks).
	stepFlushBatch = 1024
	// donateMinCandidates is the smallest candidate-set population worth
	// donating: smaller subproblems finish faster locally than the
	// lock + copy + wake of a handoff.
	donateMinCandidates = 8
)

// frame is one queued subproblem: the candidate set still to explore, the
// chosen set on the path to it, and that path's accumulated weight. pri is
// the subproblem's optimistic ceiling cur + bound(p): frames are handed
// out best-first, so the subtree that can still contain the optimum runs
// earliest, the incumbent converges fast, and the pruning loss that plagues
// breadth-ordered parallel branch-and-bound stays small.
type frame struct {
	p   []uint64
	set []uint64
	cur int64
	pri int64
}

// workPool is the shared frame deque plus termination bookkeeping.
type workPool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	frames  frameHeap // max-heap on pri: best-first handout
	free    []*frame  // recycled frame buffers
	pending int       // queued + popped-but-unfinished frames
	idle    int       // workers blocked in pop
	workers int
	live    int  // workers that have not retired after a recovered panic
	aborted bool // budget blown: pop drains immediately

	// wantDonations is the lock-free "please donate" signal workers poll on
	// every exclude branch: true when someone is idle or the queue is
	// shallow.
	wantDonations atomic.Bool
}

func newWorkPool(workers int) *workPool {
	wp := &workPool{workers: workers, live: workers}
	wp.cond = sync.NewCond(&wp.mu)
	return wp
}

// frameHeap is a max-heap of frames by pri (container/heap shape, inlined
// to keep push/pop free of interface boxing).
type frameHeap []*frame

func (h *frameHeap) push(f *frame) {
	*h = append(*h, f)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].pri >= (*h)[i].pri {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *frameHeap) pop() *frame {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = nil
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && (*h)[l].pri > (*h)[largest].pri {
			largest = l
		}
		if r < n && (*h)[r].pri > (*h)[largest].pri {
			largest = r
		}
		if largest == i {
			break
		}
		(*h)[i], (*h)[largest] = (*h)[largest], (*h)[i]
		i = largest
	}
	return top
}

// updateHungryLocked recomputes the donation signal; callers hold wp.mu.
func (wp *workPool) updateHungryLocked() {
	wp.wantDonations.Store(wp.idle > 0 || len(wp.frames) < wp.workers)
}

// push enqueues a frame the caller filled (root injection).
func (wp *workPool) push(f *frame) {
	wp.mu.Lock()
	wp.frames.push(f)
	wp.pending++
	wp.updateHungryLocked()
	wp.mu.Unlock()
	wp.cond.Signal()
}

// donate copies (p, set, cur) into a recycled frame and enqueues it with
// the given best-first priority.
func (wp *workPool) donate(p, set []uint64, cur, pri int64) {
	wp.mu.Lock()
	var f *frame
	if n := len(wp.free); n > 0 {
		f = wp.free[n-1]
		wp.free = wp.free[:n-1]
	} else {
		f = &frame{p: make([]uint64, len(p)), set: make([]uint64, len(set))}
	}
	copy(f.p, p)
	copy(f.set, set)
	f.cur = cur
	f.pri = pri
	wp.frames.push(f)
	wp.pending++
	wp.updateHungryLocked()
	wp.mu.Unlock()
	wp.cond.Signal()
}

// pop returns the next frame to explore, blocking while the queue is empty
// but other workers still hold unfinished frames (they may donate). nil
// means the search is complete or aborted and the worker should exit.
func (wp *workPool) pop() *frame {
	wp.mu.Lock()
	defer wp.mu.Unlock()
	for {
		if wp.aborted || (len(wp.frames) == 0 && wp.pending == 0) {
			return nil
		}
		if len(wp.frames) > 0 {
			f := wp.frames.pop()
			wp.updateHungryLocked()
			return f
		}
		wp.idle++
		wp.updateHungryLocked()
		wp.cond.Wait()
		wp.idle--
	}
}

// finish marks a popped frame fully explored and recycles its buffers.
func (wp *workPool) finish(f *frame) {
	wp.mu.Lock()
	wp.free = append(wp.free, f)
	wp.pending--
	done := wp.pending == 0 && len(wp.frames) == 0
	wp.mu.Unlock()
	if done {
		wp.cond.Broadcast()
	}
}

// requeue returns a popped frame to the queue unexplored after its worker
// recovered a panic: pending stays unchanged (the frame was counted at
// push and never finished), so a surviving worker picks it up and the
// termination condition still closes.
func (wp *workPool) requeue(f *frame) {
	wp.mu.Lock()
	wp.frames.push(f)
	wp.updateHungryLocked()
	wp.mu.Unlock()
	wp.cond.Signal()
}

// retire removes a worker that cannot continue (it recovered a panic);
// true means it was the last live one, so nobody is left to drain the
// queue and the caller must abort the search.
func (wp *workPool) retire() bool {
	wp.mu.Lock()
	wp.live--
	last := wp.live == 0
	wp.mu.Unlock()
	return last
}

// abort drains the pool: pop returns nil for everyone from now on.
func (wp *workPool) abort() {
	wp.mu.Lock()
	wp.aborted = true
	wp.mu.Unlock()
	wp.cond.Broadcast()
}

// exactParallel runs the worker-pool engine over the prepared state.
func exactParallel(st *exactState, workers int) (Solution, error) {
	pool := newWorkPool(workers)
	root := &frame{p: st.rootCandidates(), set: make([]uint64, st.words)}
	pool.push(root)

	searchers := make([]*searcher, workers)
	var wg sync.WaitGroup
	for i := range searchers {
		searchers[i] = newSearcher(st, pool)
		searchers[i].faultKey = "w" + strconv.Itoa(i)
		wg.Add(1)
		go searchers[i].runWorker(&wg)
	}
	wg.Wait()

	total := st.steps.Load()
	if st.degraded.Load() {
		// Every worker panicked and retired with frames still pending: the
		// search cannot complete, so return the incumbent — a valid,
		// possibly sub-optimal witness, exactly the blown-budget contract —
		// with the first recovered panic as the cause.
		return st.solution(false, total), fmt.Errorf("mis: all %d solver workers panicked: %w", workers, st.firstPanic.Load())
	}
	if st.stop.Load() {
		if st.cancelled.Load() {
			return st.solution(false, total), st.ctx.Err()
		}
		return st.solution(false, total), fmt.Errorf("%w after %d steps", ErrBudgetExceeded, total)
	}
	// The weight is now provably optimal; stabilise the witness so the
	// returned set is schedule-independent. When the greedy seed was
	// already optimal no worker ever improved the incumbent — bestSet is
	// still the seed set, which is exactly what the sequential engine
	// returns (its strict-improvement update never fires either), so
	// canonicalising would *introduce* a divergence rather than remove
	// one. Weight-only callers (Options.WeightOnly) skip the pass
	// entirely: it is the engine's serial tail, and they never look at
	// the witness.
	var canonSteps int64
	if !st.weightOnly && st.best.Load() > st.seedWeight {
		canonSteps2, ok, err := searchers[0].canonicalizeSafe()
		canonSteps = canonSteps2
		if err != nil {
			// The canonicalisation replay panicked: the weight is provably
			// optimal but the witness is the schedule-dependent one, so
			// report non-optimal with the structured panic error — the
			// cancellation contract below, with a different cause.
			return st.solution(false, total+canonSteps), err
		}
		if !ok {
			// Cancelled mid-canonicalisation: the weight is provably
			// optimal but the witness is still the schedule-dependent one
			// the race kept, so the result reports non-optimal with the
			// context error — the incumbent contract, applied to the
			// serial tail too (its latency is otherwise unbounded by the
			// batch cadence the API promises).
			return st.solution(false, total+canonSteps), st.ctx.Err()
		}
	}
	return st.solution(true, total+canonSteps), nil
}

// runWorker is one pool worker: pop a frame, explore its subtree (donating
// under-explored branches when the pool is hungry), repeat until the pool
// reports completion — or until the worker recovers a panic, at which
// point it requeues its frame for the survivors and retires. The last
// retiree aborts the search, degrading the solve to the incumbent.
func (w *searcher) runWorker(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		f := w.pool.pop()
		if f == nil {
			break
		}
		if !w.exploreFrame(f) {
			if w.pool.retire() {
				w.st.degraded.Store(true)
				w.st.stop.Store(true)
				w.pool.abort()
			}
			break
		}
	}
	// Flush the remainder so Solution.Steps is the true total. This runs
	// after the search settled, so it must not flip the budget stop.
	w.st.steps.Add(w.localSteps)
	w.localSteps = 0
}

// exploreFrame explores one popped frame to completion; false means a
// panic was recovered and the frame went back to the pool. The requeue is
// sound: f.set is never mutated during the search (workers explore over
// their own curSet copy), and f.p only drops a depth-0 node after that
// node's include branch completed — so a resumed frame re-explores a
// superset of the unexplored subtree and the search stays exhaustive
// modulo pruning, keeping Set and Weight canonical even across recovered
// panics.
func (w *searcher) exploreFrame(f *frame) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			w.st.panics.Add(1)
			w.st.firstPanic.CompareAndSwap(nil, fault.NewPanicError("solver worker "+w.faultKey, r))
			w.pool.requeue(f)
			ok = false
		}
	}()
	fault.MaybePanic(fault.SolverPanic, w.faultKey)
	fault.Stall(fault.WorkerStall, w.faultKey)
	copy(w.curSet, f.set)
	w.searchPar(f.p, f.cur, 0)
	w.pool.finish(f)
	return true
}

// canonicalizeSafe is canonicalize with panic containment: the replay runs
// on the caller's goroutine after the parallel search settled, so a panic
// there (the only solver code left outside exploreFrame's recovery) must
// not escape either.
func (w *searcher) canonicalizeSafe() (steps int64, ok bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			w.st.panics.Add(1)
			steps, ok = w.canonSteps, false
			err = fault.NewPanicError("solver canonicalisation", r)
		}
	}()
	steps, ok = w.canonicalize()
	return steps, ok, nil
}

// flushAndCheck moves the local step count into the shared counter and
// enforces the budget and the caller's context; false means the solve must
// stop and the worker unwind. Cancellation is checked before the budget so
// a solve that is both cancelled and over budget reports the context —
// the caller asked for the stop, the budget merely coincided.
func (w *searcher) flushAndCheck() bool {
	st := w.st
	total := st.steps.Add(w.localSteps)
	w.localSteps = 0
	st.warmedUp.Store(true)
	if st.ctxDone != nil {
		select {
		case <-st.ctxDone:
			st.cancelled.Store(true)
			st.stop.Store(true)
			w.pool.abort()
			return false
		default:
		}
	}
	if total > st.maxSteps {
		st.stop.Store(true)
		w.pool.abort()
		return false
	}
	return true
}

// searchPar is the parallel-engine recursion: identical branching, bounding
// and incumbent handling to searchSeq, plus batched step accounting, a stop
// poll, and exclude-branch donation. Returns false when unwinding on a
// blown budget.
func (w *searcher) searchPar(p []uint64, cur int64, depth int) bool {
	st := w.st
	w.localSteps++
	if w.localSteps >= stepFlushBatch && !w.flushAndCheck() {
		return false
	}
	if st.stop.Load() {
		return false
	}
	if cur > st.best.Load() {
		st.offerIncumbent(cur, w.curSet)
	}
	v := w.pickBranchNode(p)
	if v == -1 {
		return true
	}
	if cur+w.bound(p) <= st.best.Load() {
		return true
	}
	// Branch 1: include v.
	child := w.bufP[depth]
	for i := range child {
		child[i] = p[i] &^ st.closed[v][i]
	}
	w.curSet[v/64] |= 1 << (uint(v) % 64)
	if !w.searchPar(child, cur+st.weights[v], depth+1) {
		return false
	}
	w.curSet[v/64] &^= 1 << (uint(v) % 64)
	// Branch 2: exclude v. Donated to a starving pool if big enough to be
	// worth the handoff, otherwise explored in place (p mutation is safe:
	// the parent never re-reads its candidate set).
	p[v/64] &^= 1 << (uint(v) % 64)
	if w.pool.wantDonations.Load() && st.warmedUp.Load() && popAtLeast(p, donateMinCandidates) {
		// The ceiling cur + bound(p) doubles as the frame's best-first
		// priority; branches already provably under the incumbent are not
		// worth queueing at all.
		if ceiling := cur + w.bound(p); ceiling > st.best.Load() {
			w.pool.donate(p, w.curSet, cur, ceiling)
		}
		return true
	}
	return w.searchPar(p, cur, depth)
}

// popAtLeast reports whether the bitset has at least k set bits, without
// scanning past the answer.
func popAtLeast(p []uint64, k int) bool {
	count := 0
	for _, word := range p {
		count += bits.OnesCount64(word)
		if count >= k {
			return true
		}
	}
	return count >= k
}

// canonicalize rewrites the incumbent as the canonical maximum-weight
// witness: the one the sequential engine returns. It replays the
// sequential DFS (same branching rule) with the incumbent pre-seeded to
// W−1, pruning every subtree whose clique bound cannot reach the known
// optimum W, and stops at the first prefix of weight W.
//
// That prefix is provably the sequential witness whenever the search
// improved on the greedy seed (the only case the caller invokes this):
// the DFS visiting order is incumbent-independent (pruning only skips
// subtrees), a skipped subtree has ceiling < W and therefore contains no
// weight-W prefix, and with W strictly above the seed the sequential
// engine's strict-improvement update necessarily fires first at the first
// weight-W prefix of that order and never again (nothing exceeds W). So
// parallel solves return the sequential engine's exact witness set at
// every worker count, and the pass costs only the optimum-certificate
// sliver of the sequential search — maximal pruning from the first node.
// (When the seed is already optimal both engines return the seed set and
// this pass must not run — see exactParallel.) Returns the nodes visited
// (added to Solution.Steps) and whether the pass completed: false means
// the context fired mid-replay — polled on the same batch cadence as the
// search proper, so even this serial tail honours the cancellation
// latency contract — and the incumbent set was left untouched.
func (w *searcher) canonicalize() (int64, bool) {
	st := w.st
	target := st.best.Load()
	for i := range w.curSet {
		w.curSet[i] = 0
	}
	w.canonSteps = 0
	w.canonAborted = false
	if w.canonSearch(st.rootCandidates(), 0, 0, target) {
		copy(st.bestSet, w.curSet)
	}
	return w.canonSteps, !w.canonAborted
}

// canonSearch mirrors searchSeq node for node under a fixed target bound.
func (w *searcher) canonSearch(p []uint64, cur int64, depth int, target int64) bool {
	st := w.st
	if w.canonAborted {
		return false
	}
	w.canonSteps++
	if st.ctxDone != nil && w.canonSteps%stepFlushBatch == 0 {
		select {
		case <-st.ctxDone:
			w.canonAborted = true
			return false
		default:
		}
	}
	if cur == target {
		return true
	}
	v := w.pickBranchNode(p)
	if v == -1 {
		return false
	}
	if cur+w.bound(p) < target {
		return false
	}
	child := w.bufP[depth]
	for i := range child {
		child[i] = p[i] &^ st.closed[v][i]
	}
	w.curSet[v/64] |= 1 << (uint(v) % 64)
	if w.canonSearch(child, cur+st.weights[v], depth+1, target) {
		return true
	}
	w.curSet[v/64] &^= 1 << (uint(v) % 64)
	p[v/64] &^= 1 << (uint(v) % 64)
	return w.canonSearch(p, cur, depth, target)
}
