package mis

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"congestlb/internal/graphs"
)

// parallelTestGraph returns a random graph above parallelMinNodes so the
// parallel engine actually engages for Workers > 1.
func parallelTestGraph(n int, prob float64, seed int64) *graphs.Graph {
	return randomGraph(n, prob, 9, rand.New(rand.NewSource(seed)))
}

// TestParallelMatchesSequentialRandom is the core equivalence property:
// at Workers ∈ {1, 2, 4, 8} on randomized graphs every solve returns not
// just the same optimal weight but the identical canonical witness set —
// parallel Solutions are bit-equal to sequential ones.
func TestParallelMatchesSequentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 8; trial++ {
		n := parallelMinNodes + rng.Intn(16)
		prob := 0.2 + 0.4*rng.Float64()
		g := randomGraph(n, prob, 9, rng)

		seq, err := Exact(g, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !seq.Optimal {
			t.Fatalf("trial %d: sequential solve not optimal", trial)
		}
		for _, workers := range []int{2, 4, 8} {
			par, err := Exact(g, Options{Workers: workers})
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, workers, err)
			}
			if par.Weight != seq.Weight {
				t.Fatalf("trial %d (n=%d p=%.2f) workers=%d: weight %d, sequential %d",
					trial, n, prob, workers, par.Weight, seq.Weight)
			}
			if !par.Optimal {
				t.Fatalf("trial %d workers=%d: not flagged optimal", trial, workers)
			}
			if w, err := Verify(g, par.Set); err != nil || w != par.Weight {
				t.Fatalf("trial %d workers=%d: witness invalid: w=%d err=%v", trial, workers, w, err)
			}
			if !reflect.DeepEqual(par.Set, seq.Set) {
				t.Fatalf("trial %d workers=%d: witness %v differs from sequential witness %v — canonicalisation broken",
					trial, workers, par.Set, seq.Set)
			}
		}
	}
}

// TestParallelSeedOptimalMatchesSequential targets the regime where the
// greedy seed is frequently already optimal (small weight range, so many
// optima tie): the sequential engine then returns the seed set untouched,
// and the parallel engine must return exactly the same set — not a
// canonical DFS prefix. Regression test for the unconditional
// canonicalisation bug.
func TestParallelSeedOptimalMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	seedOptimal := 0
	for trial := 0; trial < 60; trial++ {
		n := parallelMinNodes + rng.Intn(8)
		g := randomGraph(n, 0.3+0.3*rng.Float64(), 3, rng)
		seq, err := Exact(g, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if Greedy(g, GreedyByRatio).Weight == seq.Weight {
			seedOptimal++
		}
		par, err := Exact(g, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if par.Weight != seq.Weight || !reflect.DeepEqual(par.Set, seq.Set) {
			t.Fatalf("trial %d (n=%d): parallel %v (w=%d) != sequential %v (w=%d)",
				trial, n, par.Set, par.Weight, seq.Set, seq.Weight)
		}
	}
	if seedOptimal == 0 {
		t.Fatal("test never hit the seed-optimal regime; tighten the weight range")
	}
}

// TestParallelWitnessDeterministic re-solves the same graph repeatedly at
// the same worker count: the full Solution (set and weight) must be
// identical every time despite scheduling noise.
func TestParallelWitnessDeterministic(t *testing.T) {
	g := parallelTestGraph(parallelMinNodes+12, 0.35, 99)
	ref, err := Exact(g, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		got, err := Exact(g, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if got.Weight != ref.Weight || !reflect.DeepEqual(got.Set, ref.Set) {
			t.Fatalf("run %d: solution %v (w=%d) differs from reference %v (w=%d)",
				run, got.Set, got.Weight, ref.Set, ref.Weight)
		}
	}
}

// TestParallelBudgetReturnsIncumbent pins the ErrBudgetExceeded contract
// under concurrency: the error surfaces, and the incumbent is a valid
// independent set at least as good as the greedy seed.
func TestParallelBudgetReturnsIncumbent(t *testing.T) {
	g := parallelTestGraph(parallelMinNodes+32, 0.15, 5)
	sol, err := Exact(g, Options{Workers: 4, MaxSteps: 3})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("error = %v, want ErrBudgetExceeded", err)
	}
	if sol.Optimal {
		t.Fatal("budget-capped solution claims optimality")
	}
	if len(sol.Set) == 0 {
		t.Fatal("budget-capped solution lost the incumbent set")
	}
	weight, err := Verify(g, sol.Set)
	if err != nil {
		t.Fatalf("incumbent is not independent: %v", err)
	}
	if weight != sol.Weight {
		t.Fatalf("incumbent weight %d, reported %d", weight, sol.Weight)
	}
	if greedy := Greedy(g, GreedyByRatio); sol.Weight < greedy.Weight {
		t.Fatalf("incumbent weight %d below greedy seed %d", sol.Weight, greedy.Weight)
	}
}

// TestParallelBudgetConcurrentSolves hammers budget-capped parallel solves
// from concurrent callers (the cache's single-flight normally prevents
// this, but the solver itself must tolerate it). Run with -race.
func TestParallelBudgetConcurrentSolves(t *testing.T) {
	g := parallelTestGraph(parallelMinNodes+20, 0.2, 7)
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			sol, err := Exact(g, Options{Workers: 3, MaxSteps: 2000})
			if !errors.Is(err, ErrBudgetExceeded) {
				done <- fmt.Errorf("error = %v, want ErrBudgetExceeded", err)
				return
			}
			if w, verr := Verify(g, sol.Set); verr != nil || w != sol.Weight {
				done <- fmt.Errorf("incumbent invalid: w=%d err=%v", w, verr)
				return
			}
			done <- nil
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestParallelSmallGraphFallsBackSequential documents the size gate: below
// parallelMinNodes the solve is sequential whatever Workers says, so tiny
// solves never pay goroutine startup.
func TestParallelSmallGraphFallsBackSequential(t *testing.T) {
	if got := resolveWorkers(8, parallelMinNodes-1); got != 1 {
		t.Fatalf("resolveWorkers(8, small) = %d, want 1", got)
	}
	if got := resolveWorkers(8, parallelMinNodes); got != 8 {
		t.Fatalf("resolveWorkers(8, %d) = %d, want 8", parallelMinNodes, got)
	}
	// And the result on a small graph is byte-for-byte the sequential one.
	g := randomGraph(20, 0.4, 6, rand.New(rand.NewSource(11)))
	seq, err := Exact(g, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Exact(g, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("small-graph solve changed under Workers=8: %+v vs %+v", par, seq)
	}
}

// TestSetDefaultWorkers pins the package-default plumbing Options.Workers=0
// resolves through.
func TestSetDefaultWorkers(t *testing.T) {
	prev := SetDefaultWorkers(3)
	defer SetDefaultWorkers(prev)
	if got := DefaultWorkers(); got != 3 {
		t.Fatalf("DefaultWorkers = %d, want 3", got)
	}
	if got := resolveWorkers(0, parallelMinNodes); got != 3 {
		t.Fatalf("resolveWorkers(0) = %d, want the package default 3", got)
	}
	if got := resolveWorkers(2, parallelMinNodes); got != 2 {
		t.Fatalf("resolveWorkers(2) = %d, explicit option must win", got)
	}
	SetDefaultWorkers(0)
	if got := DefaultWorkers(); got != 0 {
		t.Fatalf("DefaultWorkers after reset = %d, want 0 (GOMAXPROCS)", got)
	}
}

// BenchmarkExactWorkers measures single-solve scaling of the parallel
// engine on a hard random instance (the cache-miss path every experiment
// bottlenecks on). docs/performance.md records the table; on a single-core
// host the interesting number is the parallel engine's overhead, on a
// multi-core one its speedup.
func BenchmarkExactWorkers(b *testing.B) {
	g := randomGraph(95, 0.28, 8, rand.New(rand.NewSource(17)))
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var steps int64
			for i := 0; i < b.N; i++ {
				sol, err := Exact(g, Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				steps = sol.Steps
			}
			b.ReportMetric(float64(steps), "steps/op")
		})
	}
}

// TestParallelMatchesExhaustiveViaBigGraphs cross-checks the parallel
// engine against the sequential one on denser graphs where the clique
// bound prunes hard — the regime the lower-bound constructions live in.
func TestParallelDenseClique(t *testing.T) {
	// Disjoint cliques joined by random edges: the greedy cover is exact,
	// so the bound is tight and canonicalisation must still terminate fast.
	rng := rand.New(rand.NewSource(42))
	n := parallelMinNodes + 16
	g := graphs.New(n)
	for i := 0; i < n; i++ {
		g.MustAddNode(fmt.Sprintf("n%d", i), 1+rng.Int63n(9))
	}
	cliqueSize := 8
	for c := 0; c*cliqueSize < n; c++ {
		lo := c * cliqueSize
		hi := lo + cliqueSize
		if hi > n {
			hi = n
		}
		for u := lo; u < hi; u++ {
			for v := u + 1; v < hi; v++ {
				g.MustAddEdge(u, v)
			}
		}
	}
	for trial := 0; trial < 4*n; trial++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
		}
	}
	seq, err := Exact(g, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Exact(g, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par.Weight != seq.Weight {
		t.Fatalf("clique graph: parallel weight %d, sequential %d", par.Weight, seq.Weight)
	}
	if w, err := Verify(g, par.Set); err != nil || w != par.Weight {
		t.Fatalf("clique graph witness invalid: w=%d err=%v", w, err)
	}
}
