package mis

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"congestlb/internal/obs"
)

// Progress contract (Options.Progress): a solve delivers the greedy
// seed weight first, then one event per strict incumbent improvement,
// strictly weight-increasing end to end, at every worker count — even
// when the solve is cancelled mid-search. This is the channel
// Lab.WatchSolve and the planned anytime-portfolio racing build on.

// progressSink collects events; safe for parallel-engine delivery.
type progressSink struct {
	mu     sync.Mutex
	events []obs.ProgressEvent
}

func (p *progressSink) OnIncumbent(ev obs.ProgressEvent) {
	p.mu.Lock()
	p.events = append(p.events, ev)
	p.mu.Unlock()
}

func (p *progressSink) weights() []int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	ws := make([]int64, len(p.events))
	for i, ev := range p.events {
		ws[i] = ev.Weight
	}
	return ws
}

func assertStrictlyIncreasing(t *testing.T, ws []int64) {
	t.Helper()
	for i := 1; i < len(ws); i++ {
		if ws[i] <= ws[i-1] {
			t.Fatalf("progress weights not strictly increasing at %d: %v", i, ws)
		}
	}
}

func TestProgressObserverSequence(t *testing.T) {
	g := randomGraph(90, 0.15, 9, rand.New(rand.NewSource(11)))
	seed := SeedIncumbent(g)
	for _, workers := range []int{1, 2, 4} {
		sink := &progressSink{}
		sol, err := Exact(g, Options{Workers: workers, Progress: sink})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		ws := sink.weights()
		if len(ws) == 0 {
			t.Fatalf("workers=%d: no progress events", workers)
		}
		if ws[0] != seed.Weight {
			t.Fatalf("workers=%d: first event %d, want greedy seed %d", workers, ws[0], seed.Weight)
		}
		assertStrictlyIncreasing(t, ws)
		if last := ws[len(ws)-1]; last != sol.Weight {
			t.Fatalf("workers=%d: last event %d, want final weight %d", workers, last, sol.Weight)
		}
	}
}

// TestProgressObserverCancelled is the ISSUE's acceptance shape: a
// cancelled large solve still delivers a strictly weight-increasing
// sequence whose last event matches the returned incumbent.
func TestProgressObserverCancelled(t *testing.T) {
	g := cancelTestGraph()
	for _, workers := range []int{1, 4} {
		sink := &progressSink{}
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(5 * time.Millisecond)
			cancel()
		}()
		sol, err := ExactCtx(ctx, g, Options{Workers: workers, MaxSteps: 20_000_000, Progress: sink})
		cancel()
		if err == nil {
			t.Skipf("workers=%d: solve finished before the cancel fired", workers)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		ws := sink.weights()
		if len(ws) == 0 {
			t.Fatalf("workers=%d: cancelled solve delivered no events", workers)
		}
		assertStrictlyIncreasing(t, ws)
		if last := ws[len(ws)-1]; last != sol.Weight {
			t.Fatalf("workers=%d: last event %d, incumbent %d", workers, last, sol.Weight)
		}
	}
}

// TestProgressObserverInert pins that observing a solve cannot change
// its result: with and without an observer, weight, witness, and step
// count are identical (the observer fires on improvement sites only and
// the search never reads it).
func TestProgressObserverInert(t *testing.T) {
	g := randomGraph(70, 0.2, 7, rand.New(rand.NewSource(42)))
	plain, err := Exact(g, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sink := &progressSink{}
	observed, err := Exact(g, Options{Workers: 1, Progress: sink})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Weight != observed.Weight || plain.Steps != observed.Steps {
		t.Fatalf("observer perturbed the solve: %+v vs %+v", observed, plain)
	}
	for i := range plain.Set {
		if plain.Set[i] != observed.Set[i] {
			t.Fatalf("observer perturbed the witness at %d", i)
		}
	}
}
