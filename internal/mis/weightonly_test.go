package mis

import (
	"math/rand"
	"testing"
)

// TestWeightOnlyMatchesCanonicalWeight is the WeightOnly contract: at
// every worker count the flag changes nothing about Weight or Optimal —
// only the witness's canonicality. The returned set must still verify as
// an independent set of exactly the optimal weight.
func TestWeightOnlyMatchesCanonicalWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 6; trial++ {
		n := parallelMinNodes + rng.Intn(16)
		prob := 0.2 + 0.4*rng.Float64()
		g := randomGraph(n, prob, 9, rng)

		canonical, err := Exact(g, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			wo, err := Exact(g, Options{Workers: workers, WeightOnly: true})
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, workers, err)
			}
			if wo.Weight != canonical.Weight {
				t.Fatalf("trial %d workers=%d: weight-only solve returned %d, canonical weight %d",
					trial, workers, wo.Weight, canonical.Weight)
			}
			if !wo.Optimal {
				t.Fatalf("trial %d workers=%d: weight-only solve not flagged optimal", trial, workers)
			}
			// The witness is schedule-dependent but must stay a valid
			// independent set of the optimal weight.
			if w, err := Verify(g, wo.Set); err != nil || w != wo.Weight {
				t.Fatalf("trial %d workers=%d: weight-only witness invalid: w=%d err=%v",
					trial, workers, w, err)
			}
		}
	}
}

// TestWeightOnlySkipsCanonicalisation pins the point of the flag: on a
// solve where the parallel engine improves on the greedy seed, the
// weight-only run must not pay the canonicalisation replay. Steps is
// schedule-dependent, so the assertion is structural instead: a
// sequential weight-only solve is bit-identical to a canonical one (the
// sequential engine has no canonicalisation pass to skip).
func TestWeightOnlySkipsCanonicalisation(t *testing.T) {
	g := parallelTestGraph(parallelMinNodes+12, 0.3, 55)
	seq, err := Exact(g, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	seqWO, err := Exact(g, Options{Workers: 1, WeightOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if seqWO.Weight != seq.Weight || seqWO.Steps != seq.Steps {
		t.Fatalf("sequential weight-only diverged: %+v vs %+v", seqWO, seq)
	}
}
