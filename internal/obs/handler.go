package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
)

// Handler returns the opt-in ops endpoint for a registry:
//
//	/metrics        Prometheus text exposition (counters suffixed
//	                _total, histograms as cumulative le buckets, all
//	                names prefixed congestlb_)
//	/metrics.json   the Snapshot as JSON
//	/spans.json     raw span records plus the dropped count
//	/debug/pprof/*  the standard pprof mux (explicitly wired — the
//	                handler never touches http.DefaultServeMux)
//
// The handler is read-only and safe to scrape while a run is in
// flight; it is exposed by cmd/experiments -metrics-addr and
// Lab.MetricsHandler. Returns nil for a nil registry so callers can
// gate serving on observability being enabled.
func Handler(r *Registry) http.Handler {
	if r == nil {
		return nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writePrometheus(w, r.Snapshot())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/spans.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Spans   []SpanRecord `json:"spans"`
			Dropped int64        `json:"dropped,omitempty"`
		}{Spans: r.Spans(), Dropped: r.SpansDropped()})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// promPrefix namespaces every exported series.
const promPrefix = "congestlb_"

// splitLabels separates a registry name produced by Labeled into its
// metric family and label block: "a{t=\"x\"}" → ("a", "{t=\"x\"}"). An
// unlabeled name comes back unchanged with empty labels.
func splitLabels(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// writePrometheus renders a snapshot in the Prometheus text format.
// Counter suffixes and TYPE lines are spliced against the metric family,
// so labeled series ("serve_requests{tenant=\"a\"}") render as
// congestlb_serve_requests_total{tenant="a"} under a single family TYPE
// line shared by every labeled variant.
func writePrometheus(w http.ResponseWriter, s Snapshot) {
	typed := make(map[string]bool)
	for _, name := range sortedKeys(s.Counters) {
		base, labels := splitLabels(name)
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(w, "# TYPE %s%s_total counter\n", promPrefix, base)
		}
		fmt.Fprintf(w, "%s%s_total%s %d\n", promPrefix, base, labels, s.Counters[name])
	}
	typed = make(map[string]bool)
	for _, name := range sortedKeys(s.Gauges) {
		base, labels := splitLabels(name)
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(w, "# TYPE %s%s gauge\n", promPrefix, base)
		}
		fmt.Fprintf(w, "%s%s%s %d\n", promPrefix, base, labels, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fmt.Fprintf(w, "# TYPE %s%s histogram\n", promPrefix, name)
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			fmt.Fprintf(w, "%s%s_bucket{le=\"%d\"} %d\n", promPrefix, name, b.Le, cum)
		}
		fmt.Fprintf(w, "%s%s_bucket{le=\"+Inf\"} %d\n", promPrefix, name, h.Count)
		fmt.Fprintf(w, "%s%s_sum %d\n", promPrefix, name, h.Sum)
		fmt.Fprintf(w, "%s%s_count %d\n", promPrefix, name, h.Count)
	}
}
