// Package obs is the repository's observability layer: a per-Lab
// metrics registry (counters, gauges, bounded histograms), lightweight
// begin/end spans forming a timing tree, and a ProgressObserver channel
// for live incumbent-weight streaming from the exact solvers.
//
// The package is a leaf: it imports only the standard library, so every
// internal package (mis, cache, lbgraph, congest, experiments, runner)
// can depend on it without cycles.
//
// # Nil-registry fast path
//
// Everything in this package is nil-safe by construction. A nil
// *Registry hands out nil handles, and every handle method
// (Counter.Add, Gauge.Set, Histogram.Observe, Span.End) is a no-op on a
// nil/zero receiver. Call sites therefore never branch on "is
// observability on" — they hold a possibly-nil handle and call through
// it unconditionally, which the compiler reduces to a single
// predictable nil check. This is what makes the instrumentation
// provably free when disabled: with no registry attached the hot paths
// execute the same loads and branches as before the layer existed.
//
// # Naming
//
// Metric names are lower_snake_case. Most are unlabeled (a registry is
// per-Lab, which is usually the only dimension we need); the service
// layer's per-tenant series attach a label via Labeled, which the
// Prometheus exposition understands. The canonical names used across the
// repository are the M* constants below; the Prometheus exposition in
// Handler prefixes them with "congestlb_" and suffixes counters with
// "_total" (before the label braces, when present).
package obs

import (
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Canonical metric names. Instrumented packages resolve handles by
// these names so benchjson, the docs, and the scrape endpoint all agree
// on spelling.
const (
	// Solve cache (mis/cache) — memory tier, disk tier, single-flight.
	MSolveCacheHits   = "solve_cache_hits"
	MSolveCacheMisses = "solve_cache_misses"
	// MSolveCacheWaits counts lookups that blocked on another caller's
	// in-flight solve of the same key (single-flight collapse).
	MSolveCacheWaits = "solve_cache_singleflight_waits"
	// MSolveCacheSharedHits counts the subset of hits served by a
	// cross-cache SharedTier (a solve another tenant already paid for).
	MSolveCacheSharedHits = "solve_cache_shared_hits"
	MSolveCacheDiskHits   = "solve_cache_disk_hits"
	MSolveCacheDiskMisses = "solve_cache_disk_misses"

	// Exact solver, recorded at the cache's fresh-solve site.
	MSolveSteps      = "solver_steps"           // counter: branch-and-bound nodes across all fresh solves
	MSolveStepsSaved = "solver_steps_saved"     // counter: nodes avoided via cache hits
	MSolveLatencyNS  = "solve_latency_ns"       // histogram: wall time per fresh solve
	MSolveStepsHist  = "solver_steps_per_solve" // histogram: nodes per fresh solve

	// Incumbent updates (fired via the registry's IncumbentObserver).
	MSolverIncumbents      = "solver_incumbent_updates" // counter
	MSolverIncumbentWeight = "solver_incumbent_weight"  // gauge: last reported weight

	// Lower-bound-graph build cache (lbgraph).
	MBuildCacheHits   = "build_cache_hits"
	MBuildCacheMisses = "build_cache_misses"
	MBuildCacheWaits  = "build_cache_singleflight_waits"
	MBuildLatencyNS   = "build_latency_ns" // histogram: wall time per fresh build

	// Scheduler (experiments.Scheduler).
	MSchedQueueDepth = "sched_queue_depth" // gauge: jobs sitting in the two queues
	MSchedJobs       = "sched_jobs"        // counter: jobs ever enqueued
	MSchedJobWaitNS  = "sched_job_wait_ns" // histogram: enqueue→claim latency

	// CONGEST round engines (sequential, pipelined, batched).
	MEngineRuns     = "engine_runs"     // counter: completed simulations
	MEngineRounds   = "engine_rounds"   // counter: rounds across completed simulations
	MEngineMessages = "engine_messages" // counter: messages delivered
	MEngineBits     = "engine_bits"     // counter: payload bits delivered

	// Lockstep batch engine (congest.RunBatch).
	MBatchPasses       = "batch_passes"        // counter: RunBatch invocations
	MBatchInstances    = "batch_instances"     // counter: instances across passes
	MBatchSharedGraphs = "batch_shared_graphs" // counter: distinct graphs across passes
	MBatchOccupancy    = "batch_occupancy"     // histogram: instances per pass

	// Fault containment (see docs/robustness.md). Panic recoveries are
	// counted where they are caught; disk retry/quarantine traffic is
	// counted at the solve cache's disk-tier call sites.
	MSchedJobPanics            = "sched_job_panics"             // counter: panics recovered in scheduler jobs
	MSolverWorkerPanics        = "solver_worker_panics"         // counter: panics recovered in exact-solver workers
	MSolverDegradedSolves      = "solver_degraded_solves"       // counter: solves that fell back to the incumbent after worker loss
	MSolveCacheDiskRetries     = "solve_cache_disk_retries"     // counter: disk-tier I/O attempts retried
	MSolveCacheDiskQuarantined = "solve_cache_disk_quarantined" // counter: corrupt disk entries moved to quarantine

	// Service layer (internal/serve). Per-tenant series carry a tenant
	// label (see Labeled); the unlabeled name is the daemon-wide series.
	MServeRequests    = "serve_requests"            // counter: admitted API requests
	MServeRejected    = "serve_rejected"            // counter: requests turned away with 429
	MServeQueueDepth  = "serve_queue_depth"         // gauge: jobs waiting for an executor
	MServeInflight    = "serve_inflight_jobs"       // gauge: admitted jobs not yet finished
	MServeTierEntries = "serve_shared_tier_entries" // gauge: solutions held by the cross-tenant tier
	MServeTierHits    = "serve_shared_tier_hits"    // gauge: cumulative cross-tenant tier hits
)

// Labeled renders a metric name with label pairs attached in the
// Prometheus exposition style: Labeled("serve_requests", "tenant", "a")
// → `serve_requests{tenant="a"}`. The registry treats the result as an
// ordinary (interned) name; the scrape endpoint knows to splice counter
// suffixes before the brace. Pairs must come as key, value, key, value —
// a trailing odd key is ignored.
func Labeled(name string, pairs ...string) string {
	if len(pairs) < 2 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(pairs[i+1])
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing int64. The zero value is ready
// to use; a nil *Counter is a no-op sink.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 value. The zero value is ready to
// use; a nil *Gauge is a no-op sink.
type Gauge struct{ v atomic.Int64 }

// Set stores the value. No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n (negative to decrement). No-op on nil.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 for a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of every histogram: bucket i
// (i ≥ 1) holds observations whose bit length is i, i.e. values in
// [2^(i-1), 2^i); bucket 0 holds values ≤ 0. Power-of-two buckets keep
// Observe allocation-free and branch-cheap (one bits.Len64) while
// spanning the full int64 range — fine-grained enough for latency and
// step distributions, bounded enough to live in a 64-entry array.
const histBuckets = 64

// Histogram is a bounded power-of-two histogram. The zero value is
// ready to use; a nil *Histogram is a no-op sink.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.buckets[i].Add(1)
}

// bucketLe returns the inclusive upper bound of bucket i.
func bucketLe(i int) int64 {
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// Registry owns a flat namespace of counters, gauges, and histograms
// plus the span log. Handles are interned: Counter("x") always returns
// the same *Counter, so instrumented code resolves names once and holds
// the handle. All methods are safe for concurrent use and nil-safe
// (a nil *Registry hands out nil handles and zero snapshots).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	spans    spanLog
	nextSpan atomic.Int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the interned counter with the given name, creating
// it on first use. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the interned gauge with the given name, creating it on
// first use. Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the interned histogram with the given name,
// creating it on first use. Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// BucketCount is one non-empty histogram bucket in a snapshot. Le is
// the bucket's inclusive upper bound (2^k−1; 0 for the ≤0 bucket).
type BucketCount struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of one histogram.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a registry's metrics, suitable
// for JSON embedding (it is what the v6 experiment envelope carries).
// Zero-valued metrics are omitted.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Counter returns the snapshot's value for a named counter (0 if
// absent), saving callers the nil-map dance.
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns the snapshot's value for a named gauge (0 if absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Snapshot captures the registry's current metric values. A nil
// registry yields the zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		if v := c.Value(); v != 0 {
			if s.Counters == nil {
				s.Counters = make(map[string]int64)
			}
			s.Counters[name] = v
		}
	}
	for name, g := range r.gauges {
		if v := g.Value(); v != 0 {
			if s.Gauges == nil {
				s.Gauges = make(map[string]int64)
			}
			s.Gauges[name] = v
		}
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
		if hs.Count == 0 {
			continue
		}
		for i := range h.buckets {
			if n := h.buckets[i].Load(); n != 0 {
				hs.Buckets = append(hs.Buckets, BucketCount{Le: bucketLe(i), Count: n})
			}
		}
		if s.Histograms == nil {
			s.Histograms = make(map[string]HistogramSnapshot)
		}
		s.Histograms[name] = hs
	}
	return s
}

// DeltaSince returns the change from prev to s: counters and histogram
// counts/sums/buckets are subtracted (entries that did not move are
// dropped), while gauges keep their end-of-window value — a gauge is a
// level, not a flow. This is how the runner embeds a per-run metrics
// block that stays sum-consistent with the envelope's legacy counters
// even when the same Lab runs several suites back to back.
func (s Snapshot) DeltaSince(prev Snapshot) Snapshot {
	var d Snapshot
	for name, v := range s.Counters {
		if dv := v - prev.Counters[name]; dv != 0 {
			if d.Counters == nil {
				d.Counters = make(map[string]int64)
			}
			d.Counters[name] = dv
		}
	}
	for name, v := range s.Gauges {
		if d.Gauges == nil {
			d.Gauges = make(map[string]int64)
		}
		d.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		p := prev.Histograms[name]
		dh := HistogramSnapshot{Count: h.Count - p.Count, Sum: h.Sum - p.Sum}
		if dh.Count == 0 && dh.Sum == 0 {
			continue
		}
		prevByLe := make(map[int64]int64, len(p.Buckets))
		for _, b := range p.Buckets {
			prevByLe[b.Le] = b.Count
		}
		for _, b := range h.Buckets {
			if n := b.Count - prevByLe[b.Le]; n != 0 {
				dh.Buckets = append(dh.Buckets, BucketCount{Le: b.Le, Count: n})
			}
		}
		if d.Histograms == nil {
			d.Histograms = make(map[string]HistogramSnapshot)
		}
		d.Histograms[name] = dh
	}
	return d
}

// sortedKeys returns map keys in deterministic order for exposition.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
