package obs

import (
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety is the nil-registry fast-path contract: every handle
// and method chain must be a no-op, never a panic, when observability
// is disabled.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(3)
	r.Counter("x").Inc()
	r.Gauge("g").Set(7)
	r.Gauge("g").Add(-1)
	r.Histogram("h").Observe(42)
	if got := r.Snapshot(); got.Counters != nil || got.Gauges != nil || got.Histograms != nil {
		t.Fatalf("nil registry snapshot not zero: %+v", got)
	}
	sp := r.StartSpan("s", 0)
	sp.End()
	_, sp2 := Begin(context.Background(), "s2")
	sp2.End()
	if FromContext(NewContext(context.Background(), nil)) != nil {
		t.Fatal("nil registry leaked into context")
	}
	if Handler(nil) != nil {
		t.Fatal("Handler(nil) should be nil")
	}
	if r.IncumbentObserver() != nil {
		t.Fatal("nil registry produced an observer")
	}
	var m *Monotonic
	m.OnIncumbent(ProgressEvent{Weight: 1})
	m.Finish(1, 0)
	if r.SpanStatsSince(0) != nil || r.SpanMark() != 0 {
		t.Fatal("nil registry span accessors not zero")
	}
}

func TestCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	if r.Counter("c") != r.Counter("c") {
		t.Fatal("counter handles not interned")
	}
	r.Counter("c").Add(5)
	r.Gauge("g").Set(9)
	h := r.Histogram("h")
	for _, v := range []int64{0, 1, 2, 3, 1000, -5} {
		h.Observe(v)
	}
	s := r.Snapshot()
	if s.Counter("c") != 5 || s.Gauge("g") != 9 {
		t.Fatalf("snapshot values wrong: %+v", s)
	}
	hs := s.Histograms["h"]
	if hs.Count != 6 || hs.Sum != 1001 {
		t.Fatalf("histogram count/sum wrong: %+v", hs)
	}
	var total int64
	for _, b := range hs.Buckets {
		total += b.Count
	}
	if total != hs.Count {
		t.Fatalf("bucket counts %d do not sum to total %d", total, hs.Count)
	}
	// 0 and -5 land in the ≤0 bucket; 1 in le=1; 2,3 in le=3; 1000 in le=1023.
	want := map[int64]int64{0: 2, 1: 1, 3: 2, 1023: 1}
	for _, b := range hs.Buckets {
		if want[b.Le] != b.Count {
			t.Fatalf("bucket le=%d count %d, want %d", b.Le, b.Count, want[b.Le])
		}
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(10)
	r.Gauge("g").Set(1)
	r.Histogram("h").Observe(100)
	before := r.Snapshot()
	r.Counter("c").Add(4)
	r.Gauge("g").Set(2)
	r.Histogram("h").Observe(100)
	r.Histogram("h").Observe(3)
	d := r.Snapshot().DeltaSince(before)
	if d.Counter("c") != 4 {
		t.Fatalf("counter delta %d, want 4", d.Counter("c"))
	}
	if d.Gauge("g") != 2 {
		t.Fatalf("gauge in delta must be the end value, got %d", d.Gauge("g"))
	}
	dh := d.Histograms["h"]
	if dh.Count != 2 || dh.Sum != 103 {
		t.Fatalf("histogram delta %+v", dh)
	}
}

func TestSpanTree(t *testing.T) {
	r := NewRegistry()
	ctx := NewContext(context.Background(), r)
	ctx, root := Begin(ctx, "run")
	ctx2, child := Begin(ctx, "experiment")
	_, leaf := Begin(ctx2, "solve")
	leaf.End()
	child.End()
	root.End()
	recs := r.Spans()
	if len(recs) != 3 {
		t.Fatalf("want 3 spans, got %d", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, rec := range recs {
		byName[rec.Name] = rec
	}
	if byName["experiment"].Parent != byName["run"].ID {
		t.Fatal("experiment span not parented to run")
	}
	if byName["solve"].Parent != byName["experiment"].ID {
		t.Fatal("solve span not parented to experiment")
	}
	stats := r.SpanStatsSince(0)
	if len(stats) != 3 {
		t.Fatalf("want 3 span stats, got %+v", stats)
	}
	mark := r.SpanMark()
	if got := r.SpanStatsSince(mark); got != nil {
		t.Fatalf("stats past watermark should be nil, got %+v", got)
	}
}

func TestSpanLogBounded(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < maxSpanRecords+10; i++ {
		r.StartSpan("s", 0).End()
	}
	if n := len(r.Spans()); n != maxSpanRecords {
		t.Fatalf("span log holds %d records, cap is %d", n, maxSpanRecords)
	}
	if d := r.SpansDropped(); d != 10 {
		t.Fatalf("dropped %d, want 10", d)
	}
}

func TestMonotonic(t *testing.T) {
	var got []ProgressEvent
	m := NewMonotonic(ObserverFunc(func(ev ProgressEvent) { got = append(got, ev) }))
	for _, w := range []int64{5, 3, 5, 8, 8, 12} {
		m.OnIncumbent(ProgressEvent{Weight: w})
	}
	m.Finish(12, 99)
	weights := make([]int64, len(got))
	for i, ev := range got {
		weights[i] = ev.Weight
	}
	want := []int64{5, 8, 12, 12}
	if len(weights) != len(want) {
		t.Fatalf("got %v, want %v", weights, want)
	}
	for i := range want {
		if weights[i] != want[i] {
			t.Fatalf("got %v, want %v", weights, want)
		}
	}
	if !got[len(got)-1].Final || got[len(got)-1].Steps != 99 {
		t.Fatalf("last event not the Final marker: %+v", got[len(got)-1])
	}
	// Every non-final weight is strictly increasing.
	for i := 1; i < len(got)-1; i++ {
		if got[i].Weight <= got[i-1].Weight {
			t.Fatalf("weights not strictly increasing: %v", weights)
		}
	}
}

func TestTee(t *testing.T) {
	var a, b int
	oa := ObserverFunc(func(ProgressEvent) { a++ })
	ob := ObserverFunc(func(ProgressEvent) { b++ })
	if Tee(nil, nil) != nil {
		t.Fatal("Tee(nil, nil) should be nil")
	}
	Tee(oa, nil).OnIncumbent(ProgressEvent{})
	Tee(nil, ob).OnIncumbent(ProgressEvent{})
	Tee(oa, ob).OnIncumbent(ProgressEvent{})
	if a != 2 || b != 2 {
		t.Fatalf("tee fan-out wrong: a=%d b=%d", a, b)
	}
}

func TestLabeled(t *testing.T) {
	if got := Labeled(MServeRequests, "tenant", "alice"); got != `serve_requests{tenant="alice"}` {
		t.Fatalf("Labeled = %q", got)
	}
	if got := Labeled("g", "a", "1", "b", "2"); got != `g{a="1",b="2"}` {
		t.Fatalf("Labeled two pairs = %q", got)
	}
	if got := Labeled("g"); got != "g" {
		t.Fatalf("Labeled no pairs = %q", got)
	}
}

func TestPrometheusLabeledSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter(Labeled(MServeRequests, "tenant", "alice")).Add(4)
	r.Counter(Labeled(MServeRequests, "tenant", "bob")).Add(2)
	r.Gauge(Labeled(MServeQueueDepth, "tenant", "alice")).Set(1)
	r.Gauge(MServeQueueDepth).Set(3)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := new(strings.Builder)
	if _, err := io.Copy(body, resp.Body); err != nil {
		t.Fatal(err)
	}
	prom := body.String()
	// The counter suffix splices before the label block, and the family
	// gets exactly one TYPE line shared by its labeled variants.
	for _, want := range []string{
		"congestlb_serve_requests_total{tenant=\"alice\"} 4",
		"congestlb_serve_requests_total{tenant=\"bob\"} 2",
		"congestlb_serve_queue_depth{tenant=\"alice\"} 1",
		"congestlb_serve_queue_depth 3",
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, prom)
		}
	}
	if n := strings.Count(prom, "# TYPE congestlb_serve_requests_total counter"); n != 1 {
		t.Fatalf("TYPE line count for labeled counter family = %d, want 1:\n%s", n, prom)
	}
	if n := strings.Count(prom, "# TYPE congestlb_serve_queue_depth gauge"); n != 1 {
		t.Fatalf("TYPE line count for labeled gauge family = %d, want 1:\n%s", n, prom)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter(MSolveCacheHits).Add(3)
	r.Gauge(MSchedQueueDepth).Set(2)
	r.Histogram(MSolveLatencyNS).Observe(1500)
	r.StartSpan("run", 0).End()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		return sb.String()
	}

	prom := get("/metrics")
	for _, want := range []string{
		"congestlb_solve_cache_hits_total 3",
		"congestlb_sched_queue_depth 2",
		"congestlb_solve_latency_ns_bucket{le=\"+Inf\"} 1",
		"congestlb_solve_latency_ns_sum 1500",
		"congestlb_solve_latency_ns_count 1",
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, prom)
		}
	}
	js := get("/metrics.json")
	if !strings.Contains(js, "\"solve_cache_hits\": 3") {
		t.Fatalf("/metrics.json missing counter:\n%s", js)
	}
	spans := get("/spans.json")
	if !strings.Contains(spans, "\"name\": \"run\"") {
		t.Fatalf("/spans.json missing span:\n%s", spans)
	}
	if !strings.Contains(get("/debug/pprof/cmdline"), "obs") {
		t.Log("pprof cmdline served (content varies)") // reachable is enough
	}
}

// TestConcurrentRegistry exercises interning and recording under
// concurrency (run with -race in CI).
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(int64(j))
				r.Gauge("g").Add(1)
				r.StartSpan("s", 0).End()
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counter("c") != 8000 || s.Gauge("g") != 8000 {
		t.Fatalf("lost updates: %+v", s)
	}
	if s.Histograms["h"].Count != 8000 {
		t.Fatalf("histogram lost observations: %+v", s.Histograms["h"])
	}
}
