package obs

import "sync"

// ProgressEvent is one incumbent improvement reported by an exact
// solver (or the final result of a watched solve).
type ProgressEvent struct {
	// Weight is the incumbent independent set's total weight after the
	// improvement.
	Weight int64
	// Steps is the number of branch-and-bound nodes explored when the
	// improvement was found. Under the parallel engine this is the
	// reporting worker's batched global count, so it is approximate
	// (within one stepFlushBatch per worker) but monotone enough to
	// plot anytime curves against.
	Steps int64
	// Final marks the closing event of a watched solve
	// (Lab.WatchSolve): the solve has returned and Weight is the
	// result's weight. Engines never set it.
	Final bool
}

// ProgressObserver receives incumbent improvements. Implementations
// must be safe for concurrent use when the parallel solver engine is
// enabled (events themselves are serialised — see mis — but a solve
// may run concurrently with whatever else the observer's owner does)
// and must return quickly: the sequential engine fires the observer
// inline from the search loop.
type ProgressObserver interface {
	OnIncumbent(ev ProgressEvent)
}

// ObserverFunc adapts a function to the ProgressObserver interface.
type ObserverFunc func(ProgressEvent)

// OnIncumbent calls f(ev).
func (f ObserverFunc) OnIncumbent(ev ProgressEvent) { f(ev) }

// Tee fans one event stream out to both observers. Either may be nil;
// with at most one non-nil argument the non-nil one (or nil) is
// returned directly.
func Tee(a, b ProgressObserver) ProgressObserver {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	return ObserverFunc(func(ev ProgressEvent) {
		a.OnIncumbent(ev)
		b.OnIncumbent(ev)
	})
}

// IncumbentObserver returns an observer that books improvements into
// the registry: MSolverIncumbents counts events, MSolverIncumbentWeight
// tracks the last reported weight. Nil registry → nil observer.
func (r *Registry) IncumbentObserver() ProgressObserver {
	if r == nil {
		return nil
	}
	n := r.Counter(MSolverIncumbents)
	w := r.Gauge(MSolverIncumbentWeight)
	return ObserverFunc(func(ev ProgressEvent) {
		n.Inc()
		w.Set(ev.Weight)
	})
}

// Monotonic wraps an observer with a strictly-increasing weight filter:
// events whose weight does not exceed the best already delivered are
// dropped, and delivery is serialised under a mutex, so the downstream
// observer sees a strictly weight-increasing sequence no matter how
// engine events interleave. Finish emits the closing Final event
// unconditionally — it is the termination marker and may repeat the
// last weight.
type Monotonic struct {
	o    ProgressObserver
	mu   sync.Mutex
	last int64
	has  bool
}

// NewMonotonic wraps o; a nil o yields a nil *Monotonic, whose methods
// are no-ops.
func NewMonotonic(o ProgressObserver) *Monotonic {
	if o == nil {
		return nil
	}
	return &Monotonic{o: o}
}

// OnIncumbent delivers ev downstream iff its weight strictly exceeds
// every weight delivered so far.
func (m *Monotonic) OnIncumbent(ev ProgressEvent) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.has && ev.Weight <= m.last {
		return
	}
	m.last, m.has = ev.Weight, true
	m.o.OnIncumbent(ev)
}

// Finish delivers the Final event with the solve's result weight. It
// always fires (even when the weight equals the last improvement —
// e.g. a cache hit delivered no engine events at all), so stream
// consumers get exactly one termination marker.
func (m *Monotonic) Finish(weight, steps int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if weight > m.last {
		m.last = weight
	}
	m.has = true
	m.o.OnIncumbent(ProgressEvent{Weight: weight, Steps: steps, Final: true})
}
