package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// SpanID identifies one span within its registry. Zero means "no
// span" (a root, or a no-op span from a registry-less context).
type SpanID int64

// SpanRecord is one completed span. StartNS is relative to the
// registry's creation instant (monotonic), so a record set from one run
// sorts and nests without wall-clock skew; DurNS is the span's length.
// Parent is 0 for roots, otherwise the enclosing span's ID — following
// Parent pointers reconstructs the run → experiment → job/simulate/
// solve timing tree.
type SpanRecord struct {
	ID      SpanID `json:"id"`
	Parent  SpanID `json:"parent,omitempty"`
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// maxSpanRecords bounds the span log. Past the cap new records are
// counted as dropped rather than evicting old ones — eviction would
// orphan children and invalidate watermarks handed to SpanStatsSince.
const maxSpanRecords = 8192

type spanLog struct {
	mu      sync.Mutex
	epoch   time.Time // set lazily on first record
	recs    []SpanRecord
	dropped int64
}

// Span is an open span. The zero Span (from a nil registry or a
// registry-less context) is a valid no-op: End does nothing.
type Span struct {
	r     *Registry
	id    SpanID
	name  string
	par   SpanID
	start time.Time
}

// ID returns the span's ID (0 for a no-op span).
func (s Span) ID() SpanID { return s.id }

// StartSpan opens a span under the given parent (0 for a root). Nil
// registries return a no-op span.
func (r *Registry) StartSpan(name string, parent SpanID) Span {
	if r == nil {
		return Span{}
	}
	return Span{
		r:     r,
		id:    SpanID(r.nextSpan.Add(1)),
		name:  name,
		par:   parent,
		start: time.Now(),
	}
}

// End closes the span and appends its record to the registry's bounded
// span log. Safe (and a no-op) on the zero Span.
func (s Span) End() {
	if s.r == nil {
		return
	}
	end := time.Now()
	l := &s.r.spans
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.epoch.IsZero() {
		l.epoch = s.start
	}
	if len(l.recs) >= maxSpanRecords {
		l.dropped++
		return
	}
	l.recs = append(l.recs, SpanRecord{
		ID:      s.id,
		Parent:  s.par,
		Name:    s.name,
		StartNS: s.start.Sub(l.epoch).Nanoseconds(),
		DurNS:   end.Sub(s.start).Nanoseconds(),
	})
}

// Spans returns a copy of the recorded spans, in completion order.
func (r *Registry) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.spans.mu.Lock()
	defer r.spans.mu.Unlock()
	return append([]SpanRecord(nil), r.spans.recs...)
}

// SpansDropped reports how many spans were discarded after the log
// filled up.
func (r *Registry) SpansDropped() int64 {
	if r == nil {
		return 0
	}
	r.spans.mu.Lock()
	defer r.spans.mu.Unlock()
	return r.spans.dropped
}

// SpanMark returns a watermark: the current record count. Pass it to
// SpanStatsSince to summarise only the spans completed after the mark
// (the runner uses this to scope the envelope's span block to one run).
func (r *Registry) SpanMark() int {
	if r == nil {
		return 0
	}
	r.spans.mu.Lock()
	defer r.spans.mu.Unlock()
	return len(r.spans.recs)
}

// SpanStat aggregates completed spans sharing a name.
type SpanStat struct {
	Name    string `json:"name"`
	Count   int64  `json:"count"`
	TotalNS int64  `json:"total_ns"`
	MaxNS   int64  `json:"max_ns"`
}

// SpanStatsSince aggregates spans recorded after the given watermark by
// name, sorted by name for deterministic output. A nil registry (or an
// up-to-date mark) yields nil.
func (r *Registry) SpanStatsSince(mark int) []SpanStat {
	if r == nil {
		return nil
	}
	r.spans.mu.Lock()
	recs := r.spans.recs
	if mark < 0 {
		mark = 0
	}
	if mark > len(recs) {
		mark = len(recs)
	}
	byName := make(map[string]*SpanStat)
	for _, rec := range recs[mark:] {
		st := byName[rec.Name]
		if st == nil {
			st = &SpanStat{Name: rec.Name}
			byName[rec.Name] = st
		}
		st.Count++
		st.TotalNS += rec.DurNS
		if rec.DurNS > st.MaxNS {
			st.MaxNS = rec.DurNS
		}
	}
	r.spans.mu.Unlock()
	out := make([]SpanStat, 0, len(byName))
	for _, st := range byName {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	if len(out) == 0 {
		return nil
	}
	return out
}

// ctxKey carries the registry plus the current span through a context.
type ctxKey struct{}

type ctxVal struct {
	reg  *Registry
	span SpanID
}

// NewContext binds a registry to the context so downstream layers
// (core.Simulate*, the solve cache, Ctx.Go job wrappers) can open spans
// and resolve engine metrics without threading the registry through
// every signature. A nil registry returns ctx unchanged.
func NewContext(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{reg: r})
}

// FromContext returns the registry bound by NewContext, or nil.
func FromContext(ctx context.Context) *Registry {
	if ctx == nil {
		return nil
	}
	v, _ := ctx.Value(ctxKey{}).(ctxVal)
	return v.reg
}

// Begin opens a span named name as a child of the context's current
// span and returns a derived context carrying the new span as parent
// for further Begin calls. Without a registry in ctx it returns ctx
// unchanged and a no-op Span — a context Value lookup and nothing else,
// which is the whole disabled-path cost.
func Begin(ctx context.Context, name string) (context.Context, Span) {
	v, _ := ctx.Value(ctxKey{}).(ctxVal)
	if v.reg == nil {
		return ctx, Span{}
	}
	sp := v.reg.StartSpan(name, v.span)
	return context.WithValue(ctx, ctxKey{}, ctxVal{reg: v.reg, span: sp.id}), sp
}
