package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"congestlb/internal/experiments"
	"congestlb/internal/lbgraph"
	"congestlb/internal/mis/cache"
)

// TestRunCtxCancelMidRun drives a deterministic mid-run cancellation with
// synthetic experiments: the first experiment signals once it is running
// and then blocks on its context; the rest sit queued behind it on a
// single-worker pool. After the cancel, the envelope must still carry one
// record per experiment, flag every unfinished one cancelled, and the
// in-flight experiment must have observed the context rather than being
// abandoned.
func TestRunCtxCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	running := make(chan struct{})
	exps := []experiments.Experiment{
		{ID: "blocker", Title: "B", PaperRef: "ref", Run: func(w *experiments.Ctx) error {
			fmt.Fprintln(w, "blocker started")
			close(running)
			<-w.Context().Done()
			return w.Context().Err()
		}},
		{ID: "queued1", Title: "Q1", PaperRef: "ref", Run: func(w *experiments.Ctx) error {
			fmt.Fprintln(w, "queued1 body")
			return nil
		}},
		{ID: "queued2", Title: "Q2", PaperRef: "ref", Run: func(w *experiments.Ctx) error {
			fmt.Fprintln(w, "queued2 body")
			return nil
		}},
	}
	go func() {
		<-running
		cancel()
	}()
	var report bytes.Buffer
	env, err := RunCtx(ctx, exps, Options{Jobs: 1}, &report)
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if len(env.Experiments) != 3 {
		t.Fatalf("envelope lost records: %d", len(env.Experiments))
	}
	if env.Cancelled != 3 || env.Failed != 3 || env.OK != 0 {
		t.Fatalf("cancelled=%d failed=%d ok=%d, want 3/3/0", env.Cancelled, env.Failed, env.OK)
	}
	for _, r := range env.Experiments {
		if !r.Cancelled || r.Status != StatusFailed {
			t.Fatalf("%s: %+v not flagged as a cancellation", r.ID, r)
		}
		if !strings.Contains(r.Error, "context canceled") {
			t.Fatalf("%s error %q does not carry the context error", r.ID, r.Error)
		}
	}
	out := report.String()
	if !strings.Contains(out, "blocker started") {
		t.Fatalf("in-flight experiment's partial output lost:\n%s", out)
	}
	if strings.Contains(out, "queued1 body") || strings.Contains(out, "queued2 body") {
		t.Fatalf("queued experiment body ran after cancellation:\n%s", out)
	}
	// Every record still renders a section with a FAILED marker.
	for _, id := range []string{"blocker", "queued1", "queued2"} {
		if !strings.Contains(out, "## "+id) {
			t.Fatalf("report missing section for %s:\n%s", id, out)
		}
	}
}

// TestRunCtxBackgroundMatchesRun pins the inert path: RunCtx with a
// background context produces byte-identical markdown to Run.
func TestRunCtxBackgroundMatchesRun(t *testing.T) {
	exps := fastSubset(t)
	var plain, ctxed bytes.Buffer
	if _, err := Run(exps, Options{Jobs: 2}, &plain); err != nil {
		t.Fatal(err)
	}
	if _, err := RunCtx(context.Background(), exps, Options{Jobs: 2}, &ctxed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), ctxed.Bytes()) {
		t.Fatal("background-context run diverged from plain run")
	}
}

// TestGoldenReportThroughLabCaches is the golden-report determinism suite
// run the way a congestlb.Lab runs it: private solve and build caches, a
// caller-owned scheduler and an explicit background context. One cache
// pair serves the sequential baseline and every sharded rerun — exactly a
// Lab's lifecycle — and the markdown must stay byte-identical at every
// pool size.
func TestGoldenReportThroughLabCaches(t *testing.T) {
	fast, _ := goldenPartition()
	solve := cache.New(0)
	builds := lbgraph.NewBuildCache(0)
	labOpts := func(sched *experiments.Scheduler) Options {
		return Options{SolveCache: solve, BuildCache: builds, Scheduler: sched}
	}

	seqSched := experiments.NewScheduler(1)
	var golden bytes.Buffer
	_, err := RunCtx(context.Background(), fast, labOpts(seqSched), &golden)
	seqSched.Close()
	if err != nil {
		t.Fatal(err)
	}
	if golden.Len() == 0 {
		t.Fatal("sequential Lab-style run produced no report")
	}
	for _, jobs := range []int{2, 4, 8} {
		jobs := jobs
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			sched := experiments.NewScheduler(jobs)
			defer sched.Close()
			var sharded bytes.Buffer
			if _, err := RunCtx(context.Background(), fast, labOpts(sched), &sharded); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(golden.Bytes(), sharded.Bytes()) {
				t.Fatalf("Lab-style report at jobs=%d diverged:\n%s",
					jobs, firstDiff(golden.Bytes(), sharded.Bytes()))
			}
		})
	}
	// The private caches — not the shared ones — absorbed the traffic.
	if st := solve.Stats(); st.Hits+st.Misses == 0 {
		t.Fatalf("private solve cache saw no traffic: %+v", st)
	}
	if st := builds.Stats(); st.Hits+st.Misses == 0 {
		t.Fatalf("private build cache saw no traffic: %+v", st)
	}
}

// TestRunCtxScheduledEnvelopeJobs pins that a caller-owned scheduler's
// size is what the envelope reports.
func TestRunCtxScheduledEnvelopeJobs(t *testing.T) {
	sched := experiments.NewScheduler(3)
	defer sched.Close()
	env, err := RunCtx(context.Background(), nil, Options{Jobs: 99, Scheduler: sched}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if env.Jobs != 3 {
		t.Fatalf("envelope jobs = %d, want the scheduler's 3", env.Jobs)
	}
}

// TestUncachedBuildsEnvelopeAttribution: with UncachedBuilds the run-level
// lbgraph block must equal the sum of the per-experiment (all-miss)
// session counters — never a diff of the shared build cache the run
// bypassed, which would book other tenants' traffic.
func TestUncachedBuildsEnvelopeAttribution(t *testing.T) {
	exps, err := experiments.Select([]string{"figure1", "codes"})
	if err != nil {
		t.Fatal(err)
	}
	env, err := RunCtx(context.Background(), exps, Options{Jobs: 2, UncachedBuilds: true}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var hits, misses uint64
	for _, r := range env.Experiments {
		hits += r.LBGraphHits
		misses += r.LBGraphMisses
	}
	if env.LBGraph.Hits != hits || env.LBGraph.Misses != misses {
		t.Fatalf("run-level lbgraph %d/%d, per-experiment sum %d/%d",
			env.LBGraph.Hits, env.LBGraph.Misses, hits, misses)
	}
	if hits != 0 {
		t.Fatalf("uncached builds recorded %d hits", hits)
	}
	if misses == 0 {
		t.Fatal("no build traffic recorded at all")
	}
	if env.LBGraph.Entries != 0 {
		t.Fatalf("uncached run reports %d cache entries", env.LBGraph.Entries)
	}
}

// TestRunCtxNonCancelFailureNotFlagged ensures ordinary failures are not
// mislabelled as cancellations.
func TestRunCtxNonCancelFailureNotFlagged(t *testing.T) {
	boom := errors.New("real assertion failure")
	exps := []experiments.Experiment{
		{ID: "bad", Title: "B", PaperRef: "ref", Run: func(w *experiments.Ctx) error { return boom }},
	}
	env, err := RunCtx(context.Background(), exps, Options{Jobs: 1}, io.Discard)
	if err == nil {
		t.Fatal("failure did not surface")
	}
	if env.Cancelled != 0 || env.Experiments[0].Cancelled {
		t.Fatalf("plain failure flagged cancelled: %+v", env.Experiments[0])
	}
}
