package runner

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"congestlb/internal/experiments"
	"congestlb/internal/fault"
	"congestlb/internal/mis/cache"
)

// armFaults installs a fault-injection plan for one test and restores the
// previous injector afterwards. Chaos tests must not run in parallel:
// the injector is process-global.
func armFaults(t *testing.T, spec string) {
	t.Helper()
	inj, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	prev := fault.Set(inj)
	t.Cleanup(func() { fault.Set(prev) })
}

// jobCounts is the pool-size axis every containment test sweeps: the
// inline path (1) and increasingly contended pools.
var jobCounts = []int{1, 2, 4, 8}

// TestExperimentBodyPanicContained: a panic inside an experiment's Run
// (injected at the job-panic point runBody guards) fails exactly that
// experiment — siblings complete, the scheduler survives, the envelope
// attributes one recovered panic to the panicking experiment — and the
// report, FAILED line included, is byte-identical at every pool size.
func TestExperimentBodyPanicContained(t *testing.T) {
	exps := []experiments.Experiment{
		{ID: "alpha", Title: "A", PaperRef: "ref A", Run: func(w *experiments.Ctx) error {
			fmt.Fprintln(w, "alpha body")
			return nil
		}},
		{ID: "boom", Title: "B", PaperRef: "ref B", Run: func(w *experiments.Ctx) error {
			fmt.Fprintln(w, "boom body")
			return nil
		}},
		{ID: "gamma", Title: "C", PaperRef: "ref C", Run: func(w *experiments.Ctx) error {
			fmt.Fprintln(w, "gamma body")
			return nil
		}},
	}
	var reports []string
	for _, jobs := range jobCounts {
		armFaults(t, "11:job-panic@boom*1")
		var report bytes.Buffer
		env, err := Run(exps, Options{Jobs: jobs}, &report)
		if err == nil {
			t.Fatalf("jobs=%d: contained panic did not surface as a run error", jobs)
		}
		if env.OK != 2 || env.Failed != 1 {
			t.Fatalf("jobs=%d: ok=%d failed=%d, want 2/1", jobs, env.OK, env.Failed)
		}
		rec := env.Experiments[1]
		if rec.ID != "boom" || rec.Status != StatusFailed {
			t.Fatalf("jobs=%d: wrong record failed: %+v", jobs, rec)
		}
		if !strings.Contains(rec.Error, "panic in experiment:boom") {
			t.Fatalf("jobs=%d: error not attributed to the experiment body: %q", jobs, rec.Error)
		}
		if rec.Failures == nil || rec.Failures.PanicsRecovered != 1 {
			t.Fatalf("jobs=%d: failures block %+v, want exactly 1 recovered panic", jobs, rec.Failures)
		}
		if env.Failures == nil || *env.Failures != *rec.Failures {
			t.Fatalf("jobs=%d: run-level failures %+v do not mirror the single failing experiment", jobs, env.Failures)
		}
		out := report.String()
		if !strings.Contains(out, "**FAILED**: panic in experiment:boom") {
			t.Fatalf("jobs=%d: report missing the stable FAILED line:\n%s", jobs, out)
		}
		if !strings.Contains(out, "gamma body") {
			t.Fatalf("jobs=%d: experiment after the panic missing:\n%s", jobs, out)
		}
		reports = append(reports, out)
	}
	for i := 1; i < len(reports); i++ {
		if reports[i] != reports[0] {
			t.Fatalf("report at jobs=%d differs from jobs=%d:\n--- jobs=%d ---\n%.400s\n--- jobs=%d ---\n%.400s",
				jobCounts[i], jobCounts[0], jobCounts[0], reports[0], jobCounts[i], reports[i])
		}
	}
}

// TestInstanceJobPanicContained: a panic inside one Ctx.Go instance job
// becomes a *fault.PanicError from Gather — sibling jobs of the same
// experiment still ran, sibling experiments are untouched — with the
// identical FAILED line on the inline (jobs=1) and pooled paths.
func TestInstanceJobPanicContained(t *testing.T) {
	var reports []string
	for _, jobs := range jobCounts {
		done := make([]bool, 4)
		exps := []experiments.Experiment{
			{ID: "sweep", Title: "S", PaperRef: "ref S", Run: func(w *experiments.Ctx) error {
				for i := range done {
					i := i
					w.Go(func() error {
						if i == 2 {
							panic("job kaboom")
						}
						done[i] = true
						return nil
					})
				}
				return w.Gather()
			}},
			{ID: "calm", Title: "C", PaperRef: "ref C", Run: func(w *experiments.Ctx) error {
				fmt.Fprintln(w, "calm body")
				return nil
			}},
		}
		var report bytes.Buffer
		env, err := Run(exps, Options{Jobs: jobs}, &report)
		if err == nil {
			t.Fatalf("jobs=%d: job panic did not fail the experiment", jobs)
		}
		for i, ok := range done {
			if i != 2 && !ok {
				t.Fatalf("jobs=%d: sibling job %d did not run", jobs, i)
			}
		}
		rec := env.Experiments[0]
		if rec.Status != StatusFailed || !strings.Contains(rec.Error, "panic in job: job kaboom") {
			t.Fatalf("jobs=%d: record %+v, want the job's PanicError", jobs, rec)
		}
		if rec.Failures == nil || rec.Failures.PanicsRecovered != 1 {
			t.Fatalf("jobs=%d: failures block %+v, want exactly 1 recovered panic", jobs, rec.Failures)
		}
		if env.Experiments[1].Status != StatusOK {
			t.Fatalf("jobs=%d: sibling experiment dragged down: %+v", jobs, env.Experiments[1])
		}
		out := report.String()
		if !strings.Contains(out, "**FAILED**: panic in job: job kaboom") {
			t.Fatalf("jobs=%d: report missing the stable FAILED line:\n%s", jobs, out)
		}
		reports = append(reports, out)
	}
	for i := 1; i < len(reports); i++ {
		if reports[i] != reports[0] {
			t.Fatalf("report at jobs=%d differs from jobs=%d", jobCounts[i], jobCounts[0])
		}
	}
}

// TestGoldenReportUnderDiskFaults: a seeded disk-fault-only plan (flaky
// reads and writes, rotting entries, slow I/O) must leave the markdown
// report byte-identical to a fault-free run at every pool size — the
// disk tier absorbs every such fault without touching results.
func TestGoldenReportUnderDiskFaults(t *testing.T) {
	exps := fastSubset(t)
	var clean bytes.Buffer
	if _, err := Run(exps, Options{Jobs: 2}, &clean); err != nil {
		t.Fatal(err)
	}

	for _, jobs := range jobCounts {
		armFaults(t, "99:disk-read=0.4,disk-write=0.4,disk-corrupt=0.5,disk-slow=0.1")
		c := cache.New(256)
		if err := c.SetDir(t.TempDir(), 0); err != nil {
			t.Fatal(err)
		}
		var report bytes.Buffer
		env, err := Run(exps, Options{Jobs: jobs, SolveCache: c}, &report)
		if err != nil {
			t.Fatalf("jobs=%d: disk faults failed the run: %v", jobs, err)
		}
		if report.String() != clean.String() {
			t.Fatalf("jobs=%d: report under disk faults differs from the clean run", jobs)
		}
		// The faults must actually have been exercised for this to prove
		// anything: rate-based reads fire on the cold lookups.
		if env.Failures == nil || env.Failures.DiskRetries == 0 {
			t.Fatalf("jobs=%d: plan injected nothing (failures %+v)", jobs, env.Failures)
		}
	}
}

// TestChaosSuite is the harness end to end: a real experiment subset under
// a plan combining one experiment-body panic, one solver-worker panic and
// rate-based disk faults. The run must complete without crashing, the
// envelope must attribute every contained fault exactly (the *1 budgets
// make the counts exact), and every experiment that saw no fault must
// render byte-identically to the clean run.
func TestChaosSuite(t *testing.T) {
	exps := fastSubset(t)
	var clean bytes.Buffer
	if _, err := Run(exps, Options{Jobs: 2, SolverWorkers: 2}, &clean); err != nil {
		t.Fatal(err)
	}

	armFaults(t, "13:job-panic@cutsize*1,worker-panic@w*1,disk-read=0.3,disk-corrupt=0.5")
	c := cache.New(256)
	if err := c.SetDir(t.TempDir(), 0); err != nil {
		t.Fatal(err)
	}
	var report bytes.Buffer
	env, err := Run(exps, Options{Jobs: 2, SolverWorkers: 2, SolveCache: c}, &report)
	if err == nil {
		t.Fatal("chaos run reported no failures")
	}

	if env.Failures == nil {
		t.Fatal("chaos run carries no run-level failures block")
	}
	f := *env.Failures
	if f.PanicsRecovered < 1 {
		t.Fatalf("injected experiment-body panic not recovered: %+v", f)
	}
	if f.SolverWorkerPanics != 1 {
		t.Fatalf("SolverWorkerPanics = %d, want exactly 1 (*1 budget)", f.SolverWorkerPanics)
	}
	// Exact attribution: the run-level block is the sum of the
	// per-experiment blocks, and the injected body panic belongs to
	// cutsize alone.
	var sum FailureStats
	for _, rec := range env.Experiments {
		if rec.Failures != nil {
			sum.Add(*rec.Failures)
		}
		if rec.ID == "cutsize" {
			if rec.Status != StatusFailed || rec.Failures == nil || rec.Failures.PanicsRecovered != 1 {
				t.Fatalf("cutsize not attributed its injected panic: %+v", rec)
			}
		}
	}
	if sum != f {
		t.Fatalf("run-level failures %+v do not sum the per-experiment blocks %+v", f, sum)
	}

	// Fault-free experiments must be untouched: their report sections are
	// byte-identical to the clean run's.
	cleanSec := reportSections(clean.String())
	chaosSec := reportSections(report.String())
	compared := 0
	for _, rec := range env.Experiments {
		if rec.Status != StatusOK || rec.Failures != nil {
			continue
		}
		if chaosSec[rec.ID] != cleanSec[rec.ID] {
			t.Fatalf("fault-free experiment %s rendered differently under chaos:\n--- clean ---\n%.300s\n--- chaos ---\n%.300s",
				rec.ID, cleanSec[rec.ID], chaosSec[rec.ID])
		}
		compared++
	}
	if compared == 0 {
		t.Fatal("no fault-free experiment to compare — plan too aggressive for the assertion to mean anything")
	}
}

// reportSections splits a markdown report into per-experiment sections
// keyed by the ID that opens each "## <id> — ..." header.
func reportSections(report string) map[string]string {
	sections := make(map[string]string)
	for _, sec := range strings.Split(report, "\n## ")[1:] {
		header, _, _ := strings.Cut(sec, "\n")
		id := header
		if i := strings.IndexAny(header, " —"); i >= 0 {
			id = header[:i]
		}
		sections[id] = sec
	}
	return sections
}
