package runner

import (
	"bytes"
	"fmt"
	"testing"

	"congestlb/internal/experiments"
	"congestlb/internal/obs"
)

// The golden-report determinism suite: the contract that intra-experiment
// sharding must never be observable in the markdown output. Every
// experiment runs sequentially (Jobs: 1 — one pool worker, so experiment
// and instance jobs execute in strict submission order) and at -jobs
// 2/4/8, and the combined reports must be byte-identical. This is what
// licenses running the suite at any -jobs N in CI and still diffing
// reports across commits.
//
// The heavy pair (scaling, theorem5 — the two full-reduction sweeps that
// dominate the suite's wall clock) is gated behind -short like everywhere
// else in the repository.

// goldenPartition splits the registry into the fast set and the heavy
// sweep pair.
func goldenPartition() (fast, heavy []experiments.Experiment) {
	for _, e := range experiments.All() {
		switch e.ID {
		case "scaling", "theorem5":
			heavy = append(heavy, e)
		default:
			fast = append(fast, e)
		}
	}
	return fast, heavy
}

func TestGoldenReportDeterminism(t *testing.T) {
	fast, heavy := goldenPartition()
	cases := []struct {
		name  string
		exps  []experiments.Experiment
		short bool // skipped under -short
	}{
		{name: "fast", exps: fast},
		{name: "heavy-sweeps", exps: heavy, short: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.short && testing.Short() {
				t.Skip("heavy full-reduction sweeps; skipped in -short mode")
			}
			var golden bytes.Buffer
			if _, err := Run(tc.exps, Options{Jobs: 1}, &golden); err != nil {
				t.Fatal(err)
			}
			if golden.Len() == 0 {
				t.Fatal("sequential run produced no report")
			}
			for _, jobs := range []int{2, 4, 8} {
				jobs := jobs
				t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
					var sharded bytes.Buffer
					if _, err := Run(tc.exps, Options{Jobs: jobs}, &sharded); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(golden.Bytes(), sharded.Bytes()) {
						t.Fatalf("report at -jobs %d differs from sequential run:\n%s",
							jobs, firstDiff(golden.Bytes(), sharded.Bytes()))
					}
				})
			}
		})
	}
}

// TestGoldenReportDeterminismPipelined re-runs the determinism contract
// with the pipelined CONGEST engine forced on for every simulation
// (CONGESTLB_PIPELINE=force overrides Config.Parallel), so the suite
// pins that pipelining — like sharding — is never observable in the
// markdown: the baseline here is the plain sequential-engine Jobs:1
// report, and pipelined runs at every jobs count must reproduce it byte
// for byte. CI runs this under -race with multiple cores, where the
// pipeline actually spins up workers.
func TestGoldenReportDeterminismPipelined(t *testing.T) {
	fast, heavy := goldenPartition()
	exps := fast
	if !testing.Short() {
		exps = append(append([]experiments.Experiment{}, fast...), heavy...)
	}
	var golden bytes.Buffer
	if _, err := Run(exps, Options{Jobs: 1}, &golden); err != nil {
		t.Fatal(err)
	}
	t.Setenv("CONGESTLB_PIPELINE", "force")
	for _, jobs := range []int{1, 2, 4} {
		var piped bytes.Buffer
		if _, err := Run(exps, Options{Jobs: jobs}, &piped); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(golden.Bytes(), piped.Bytes()) {
			t.Fatalf("pipelined report at -jobs %d differs from sequential-engine run:\n%s",
				jobs, firstDiff(golden.Bytes(), piped.Bytes()))
		}
	}
}

// TestGoldenReportDeterminismObserved re-runs the determinism contract
// with full observability attached: a live registry (metrics recorded by
// caches, scheduler and engines; spans opened around every experiment,
// job, simulate and solve) and the pipelined engine forced on. The
// baseline is the plain registry-less sequential run, so the test pins
// the non-perturbation guarantee — enabling observability must never be
// observable in the markdown report, at any jobs count.
func TestGoldenReportDeterminismObserved(t *testing.T) {
	fast, heavy := goldenPartition()
	exps := fast
	if !testing.Short() {
		exps = append(append([]experiments.Experiment{}, fast...), heavy...)
	}
	var golden bytes.Buffer
	if _, err := Run(exps, Options{Jobs: 1}, &golden); err != nil {
		t.Fatal(err)
	}
	t.Setenv("CONGESTLB_PIPELINE", "force")
	for _, jobs := range []int{1, 2, 4, 8} {
		reg := obs.NewRegistry()
		var observed bytes.Buffer
		env, err := Run(exps, Options{Jobs: jobs, Obs: reg}, &observed)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(golden.Bytes(), observed.Bytes()) {
			t.Fatalf("observed report at -jobs %d differs from plain run:\n%s",
				jobs, firstDiff(golden.Bytes(), observed.Bytes()))
		}
		if env.Metrics == nil {
			t.Fatalf("jobs=%d: envelope carries no metrics block", jobs)
		}
		// The envelope's metrics delta must agree with the legacy counters
		// it rides next to — the sum-consistency contract of schema v6.
		if got, want := env.Metrics.Counter(obs.MSolveCacheHits), int64(env.Cache.Hits); got != want {
			t.Fatalf("jobs=%d: metrics solve hits %d, envelope %d", jobs, got, want)
		}
		if got, want := env.Metrics.Counter(obs.MSolveCacheMisses), int64(env.Cache.Misses); got != want {
			t.Fatalf("jobs=%d: metrics solve misses %d, envelope %d", jobs, got, want)
		}
		if got, want := env.Metrics.Counter(obs.MBuildCacheHits), int64(env.LBGraph.Hits); got != want {
			t.Fatalf("jobs=%d: metrics build hits %d, envelope %d", jobs, got, want)
		}
		if got, want := env.Metrics.Counter(obs.MBuildCacheMisses), int64(env.LBGraph.Misses); got != want {
			t.Fatalf("jobs=%d: metrics build misses %d, envelope %d", jobs, got, want)
		}
		if got, want := env.Metrics.Counter(obs.MBatchPasses), env.Batch.BatchJobs; got != want {
			t.Fatalf("jobs=%d: metrics batch passes %d, envelope %d", jobs, got, want)
		}
		if got, want := env.Metrics.Counter(obs.MBatchInstances), env.Batch.BatchedInstances; got != want {
			t.Fatalf("jobs=%d: metrics batch instances %d, envelope %d", jobs, got, want)
		}
		if len(env.Spans) == 0 {
			t.Fatalf("jobs=%d: envelope carries no span summary", jobs)
		}
	}
}

// TestGoldenReportMatchesRunAll pins the Jobs:1 golden baseline itself to
// the legacy sequential aggregator, closing the chain
// RunAll == Run(Jobs:1) == Run(Jobs:N).
func TestGoldenReportMatchesRunAll(t *testing.T) {
	fast, _ := goldenPartition()
	var legacy bytes.Buffer
	for _, e := range fast {
		fmt.Fprintf(&legacy, "## %s — %s\n\n*Reproduces: %s*\n\n", e.ID, e.Title, e.PaperRef)
		if err := e.Run(experiments.NewCtx(&legacy, nil)); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		fmt.Fprintf(&legacy, "\n")
	}
	var pooled bytes.Buffer
	if _, err := Run(fast, Options{Jobs: 1}, &pooled); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacy.Bytes(), pooled.Bytes()) {
		t.Fatalf("Jobs:1 runner output diverged from inline sequential execution:\n%s",
			firstDiff(legacy.Bytes(), pooled.Bytes()))
	}
}

// firstDiff renders the first divergence between two reports with a
// little context, so a determinism failure points at the guilty
// experiment instead of dumping two full suites.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	at := n // first differing index; n if one is a prefix of the other
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			at = i
			break
		}
	}
	if at == n && len(a) == len(b) {
		return "(no byte difference)"
	}
	lo := at - 120
	if lo < 0 {
		lo = 0
	}
	hiA, hiB := at+120, at+120
	if hiA > len(a) {
		hiA = len(a)
	}
	if hiB > len(b) {
		hiB = len(b)
	}
	return fmt.Sprintf("first difference at byte %d\n--- sequential ---\n…%s…\n--- sharded ---\n…%s…",
		at, a[lo:hiA], b[lo:hiB])
}
